#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# The packages whose state is shared across sim procs (or any caller):
# re-run under the race detector. internal/experiments exercises the
# parallel runner, whose worlds must not share mutable state.
go test -race mpixccl/internal/metrics mpixccl/internal/sim mpixccl/internal/fault
go test -race -run 'TestRunAll' mpixccl/internal/experiments
# Bench smoke: one fixed iteration proves the benchmark harness still
# runs end to end (full baselines come from scripts/bench.sh).
go test -run '^$' -bench '^BenchmarkFig1aAllreduceCrossover$' -benchtime 1x .
echo "check.sh: all clean"
