#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# Docs are a public surface too: every relative link and repo path they
# mention must resolve.
scripts/doclinks.sh
# The packages whose state is shared across sim procs (or any caller):
# re-run under the race detector. internal/experiments exercises the
# parallel runner, whose worlds must not share mutable state; internal/core
# includes the concurrent-runtime breaker and fail-stop recovery tests plus
# the persistent-handle property tests (the zero-alloc measurements carry a
# !race build tag and step aside here — ReadMemStats deltas are meaningless
# under the detector's instrumented allocator). internal/fabric joins for
# the integrity retransmit loop (corruption probe + CRC verify on shared
# buffers).
# internal/sim's suite includes the sharded-engine tests (shard_test.go),
# whose windows genuinely run shards on separate OS threads — the race
# detector is the proof that cross-shard traffic only moves through the
# outbox/flush protocol.
# internal/ccl/comp is the collective compiler: the plan search is pure,
# but its lowered programs drive the executor's pipelined primitives, so
# the IR/cost/search suite joins the race rotation wholesale (it is small).
go test -race mpixccl/internal/metrics mpixccl/internal/sim mpixccl/internal/fault mpixccl/internal/fabric mpixccl/internal/core mpixccl/internal/ccl/comp
# The experiments race leg covers the parallel runner, the chaos soak
# (short rotation: collective, elastic, and partition schedules; shard
# invariance pins the partition verdicts at 1 vs 4 shards), and the
# scale model's cross-shard fault/partition determinism tests.
go test -race -run 'TestRunAll|TestChaosShort|TestChaosShardInvariant|TestScale|TestPartitionVerdicts' mpixccl/internal/experiments
# dl's recovery path (watchdog + shrink + rollback) and the persistent hot
# loop are the dl surfaces with cross-layer shared state; the remaining
# Train* exhibits are single-kernel and wall-clock heavy, so the race pass
# is scoped to the elastic + persistent tests.
go test -race -run 'TestTrainElastic|TestTrainPersistent' mpixccl/internal/dl
# The hierarchical collectives recycle opArgs/runCtx through shared pools
# and spawn pipeline helper procs; the property tests cover every phase
# interleaving, so they are the ccl surface worth a race pass. TestCompiled
# adds the compiled executor: every plan strategy's primitive DAG runs its
# steps through the same pooled pipes.
go test -race -run 'TestHier|TestForcedFlat|TestCollectivePools|TestCompiled' mpixccl/internal/ccl
# Bench smoke: one fixed iteration proves the benchmark harness still
# runs end to end (full baselines come from scripts/bench.sh).
go test -run '^$' -bench '^BenchmarkFig1aAllreduceCrossover$' -benchtime 1x .
# Chaos smoke: a short seeded soak through the CLI entry point proves the
# randomized fault schedules — including two partition schedules in the
# six-run rotation — still terminate with every invariant held, inside
# the per-schedule wall-clock deadline.
go run ./cmd/xcclbench -chaos seed=7,runs=6 >/dev/null
# Sharded-engine smoke: regenerating an exhibit through the CLI at
# -shards 4 must be byte-identical to the serial run (wall-time footer
# lines excluded; the full proof across world constructors is
# TestGoldenShardInvariance). Plus one scaling-sweep row to keep the
# -scale ranks= entry point alive.
serial=$(go run ./cmd/xcclbench -exp fig1a | grep -v 'wall time')
sharded=$(go run ./cmd/xcclbench -exp fig1a -shards 4 | grep -v 'wall time')
if [ "$serial" != "$sharded" ]; then
	echo "check.sh: xcclbench -shards 4 output diverged from serial" >&2
	exit 1
fi
go run ./cmd/xcclbench -scale ranks=256,shards=2 >/dev/null
# Compiler smoke: -compile must leave the exhibit pipeline deterministic —
# the compiled fig5 grid (the only exhibit with an alltoall column) must be
# byte-identical between the serial and 4-shard engines. With -compile OFF
# the goldens are already pinned byte-for-byte by TestGoldenVirtualTime, so
# together the two proofs bracket the flag.
comp_serial=$(go run ./cmd/xcclbench -exp fig5 -compile | grep -v 'wall time')
comp_sharded=$(go run ./cmd/xcclbench -exp fig5 -compile -shards 4 | grep -v 'wall time')
if [ "$comp_serial" != "$comp_sharded" ]; then
	echo "check.sh: xcclbench -exp fig5 -compile diverged at -shards 4" >&2
	exit 1
fi
# Partition smoke: the quorum/fence/rejoin exhibit regenerates through the
# CLI at 1 and 4 shards with identical output. With partitions off the
# other exhibits are pinned byte-for-byte against the committed golden by
# TestGoldenVirtualTime in the suite above.
pserial=$(go run ./cmd/xcclbench -exp partition | grep -v 'wall time')
psharded=$(go run ./cmd/xcclbench -exp partition -shards 4 | grep -v 'wall time')
if [ "$pserial" != "$psharded" ]; then
	echo "check.sh: xcclbench -exp partition diverged at -shards 4" >&2
	exit 1
fi
echo "check.sh: all clean"
