#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run from the repo root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# The packages whose state is shared across sim procs (or any caller):
# re-run under the race detector.
go test -race mpixccl/internal/metrics mpixccl/internal/sim mpixccl/internal/fault
echo "check.sh: all clean"
