#!/bin/sh
# Bench baseline: run the root benchmark suite (one benchmark per paper
# exhibit plus the ablations) with -benchmem and persist the numbers as
# JSON, so perf PRs can diff wall time and allocations against a committed
# baseline (BENCH_pr8.json) instead of eyeballing `go test -bench` output.
#
# Usage: scripts/bench.sh [out.json] [bench-regex] [benchtime]
#   out.json     output file (default BENCH_pr10.json in the repo root)
#   bench-regex  -bench selector (default '.')
#   benchtime    -benchtime value (default 4x: fixed iteration count keeps
#                run time bounded and exhibits comparable)
#
# Each benchmark entry records iterations, ns/op, B/op, allocs/op, and any
# custom virtual-time metrics the exhibit reports (virt-us/op, img/s, MB/s,
# speedup). Wall-clock fields measure the simulator; the virtual metrics
# must stay bit-identical across perf work (see the golden-trace test).
#
# Regression gate: before overwriting the committed baseline, the script
# snapshots its Fig6/Fig7 wall-clock numbers and asserts the fresh run is
# within XCCL_BENCH_TOLERANCE percent (default 2) — the watchdog and
# fail-stop machinery must stay free on the non-faulty path. Override the
# tolerance when the machine is known to differ from the baseline's:
#
#   XCCL_BENCH_TOLERANCE=10 scripts/bench.sh
#
# Sharded-engine gate: the Scale4096AllReduce benchmarks measure the
# partitioned event engine's wall-clock speedup. On hosts with 4+ CPUs the
# Shards4 variant must run >= XCCL_BENCH_SPEEDUP x faster (default 2.5)
# than Shards1; on smaller hosts the gate is skipped loudly (the shards
# serialize onto the same core and no speedup is physically possible). The
# host's CPU count is recorded in the JSON as "cpus" so a baseline's
# speedup numbers can be read in context.
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_pr10.json}
bench=${2:-.}
benchtime=${3:-4x}
baseline=${XCCL_BENCH_BASELINE:-BENCH_pr8.json}
tolerance=${XCCL_BENCH_TOLERANCE:-2}
speedup_want=${XCCL_BENCH_SPEEDUP:-2.5}
cpus=$(nproc 2>/dev/null || echo 1)

# ns_op of one benchmark entry in a baseline JSON ('' if absent).
ns_op() {
	[ -f "$1" ] || return 0
	sed -n "s/.*\"name\": \"$2\",.*\"ns_op\": \([0-9]*\).*/\1/p" "$1"
}

# virt_us_op (virtual-time metric) of one benchmark entry ('' if absent).
virt_us() {
	[ -f "$1" ] || return 0
	sed -n "s/.*\"name\": \"$2\",.*\"virt_us_op\": \([0-9.]*\).*/\1/p" "$1"
}
base_fig6=$(ns_op "$baseline" Fig6MultiNodeCollectives)
base_fig7=$(ns_op "$baseline" Fig7HorovodNvidia)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# No pipe: POSIX sh has no pipefail, and a benchmark crash (or go test's
# own timeout) must fail the script rather than persist a partial
# baseline. The suite at 4x runs well past go test's default 10m on
# small hosts, so the deadline is explicit.
go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem \
	-timeout "${XCCL_BENCH_TIMEOUT:-30m}" . >"$raw" 2>&1 || {
	cat "$raw"
	echo "bench.sh: benchmark run failed; baseline not written" >&2
	exit 1
}
cat "$raw"

awk -v benchtime="$benchtime" -v cpus="$cpus" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"cpus\": %s,\n  \"benchmarks\": [", benchtime, cpus
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix if present
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit) # "virt-us/op" -> "virt_us_op"
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "bench.sh: wrote $(grep -c '"name"' "$out") benchmark entries to $out"

# Wall-clock gate against the pre-run baseline snapshot.
gate=0
check_ns() { # name baseline-ns new-ns
	if [ -z "$2" ] || [ -z "$3" ]; then
		echo "bench.sh: $1: no baseline to gate against (skipped)"
		return 0
	fi
	awk -v name="$1" -v base="$2" -v new="$3" -v tol="$tolerance" 'BEGIN {
		pct = (new - base) * 100 / base
		printf "bench.sh: %s wall clock %+.1f%% vs baseline (tolerance %s%%)\n", name, pct, tol
		exit pct > tol ? 1 : 0
	}' || return 1
}
check_ns Fig6MultiNodeCollectives "$base_fig6" "$(ns_op "$out" Fig6MultiNodeCollectives)" || gate=1
check_ns Fig7HorovodNvidia "$base_fig7" "$(ns_op "$out" Fig7HorovodNvidia)" || gate=1
if [ "$gate" != 0 ]; then
	echo "bench.sh: wall-clock regression beyond ${tolerance}% (set XCCL_BENCH_TOLERANCE to override)" >&2
	exit 1
fi

# Sharded-engine speedup gate (see header). Gated on the selector having
# actually run the scale pair, and on the host having the cores to show it.
scale1=$(ns_op "$out" Scale4096AllReduceShards1)
scale4=$(ns_op "$out" Scale4096AllReduceShards4)
if [ -n "$scale1" ] && [ -n "$scale4" ]; then
	if [ "$cpus" -ge 4 ]; then
		awk -v s1="$scale1" -v s4="$scale4" -v want="$speedup_want" 'BEGIN {
			r = s1 / s4
			printf "bench.sh: Scale4096AllReduce shards=4 speedup %.2fx (want >= %sx)\n", r, want
			exit r >= want ? 0 : 1
		}' || {
			echo "bench.sh: sharded engine speedup below ${speedup_want}x (set XCCL_BENCH_SPEEDUP to override)" >&2
			exit 1
		}
	else
		echo "bench.sh: SKIPPING sharded-engine speedup gate: host has $cpus CPU(s), need >= 4 for parallel shards to beat serial"
	fi
fi

# Compiled-collective gate: on the Fig 6 multi-node topology the compiler's
# planned alltoall (phased permutation schedule) must beat the grouped
# send-recv loop by >= XCCL_BENCH_COMPILED_WIN percent of VIRTUAL time
# (default 20). Virtual time is machine-independent, so this gate has no
# tolerance knob for slow hosts — a miss means the plan search or the
# schedule itself regressed.
loop_us=$(virt_us "$out" Fig6AlltoallLoop)
comp_us=$(virt_us "$out" Fig6AlltoallCompiled)
if [ -n "$loop_us" ] && [ -n "$comp_us" ]; then
	awk -v loop="$loop_us" -v comp="$comp_us" -v want="${XCCL_BENCH_COMPILED_WIN:-20}" 'BEGIN {
		win = (loop - comp) * 100 / loop
		printf "bench.sh: compiled alltoall virtual-time win %.1f%% over the send-recv loop (want >= %s%%)\n", win, want
		exit win >= want ? 0 : 1
	}' || {
		echo "bench.sh: compiled alltoall win below ${XCCL_BENCH_COMPILED_WIN:-20}% (set XCCL_BENCH_COMPILED_WIN to override)" >&2
		exit 1
	}
fi
