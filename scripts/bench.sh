#!/bin/sh
# Bench baseline: run the root benchmark suite (one benchmark per paper
# exhibit plus the ablations) with -benchmem and persist the numbers as
# JSON, so perf PRs can diff wall time and allocations against a committed
# baseline (BENCH_pr3.json) instead of eyeballing `go test -bench` output.
#
# Usage: scripts/bench.sh [out.json] [bench-regex] [benchtime]
#   out.json     output file (default BENCH_pr3.json in the repo root)
#   bench-regex  -bench selector (default '.')
#   benchtime    -benchtime value (default 4x: fixed iteration count keeps
#                run time bounded and exhibits comparable)
#
# Each benchmark entry records iterations, ns/op, B/op, allocs/op, and any
# custom virtual-time metrics the exhibit reports (virt-us/op, img/s, MB/s,
# speedup). Wall-clock fields measure the simulator; the virtual metrics
# must stay bit-identical across perf work (see the golden-trace test).
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_pr3.json}
bench=${2:-.}
benchtime=${3:-4x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix if present
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit) # "virt-us/op" -> "virt_us_op"
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "bench.sh: wrote $(grep -c '"name"' "$out") benchmark entries to $out"
