#!/bin/sh
# Bench baseline: run the root benchmark suite (one benchmark per paper
# exhibit plus the ablations) with -benchmem and persist the numbers as
# JSON, so perf PRs can diff wall time and allocations against a committed
# baseline (BENCH_pr5.json) instead of eyeballing `go test -bench` output.
#
# Usage: scripts/bench.sh [out.json] [bench-regex] [benchtime]
#   out.json     output file (default BENCH_pr6.json in the repo root)
#   bench-regex  -bench selector (default '.')
#   benchtime    -benchtime value (default 4x: fixed iteration count keeps
#                run time bounded and exhibits comparable)
#
# Each benchmark entry records iterations, ns/op, B/op, allocs/op, and any
# custom virtual-time metrics the exhibit reports (virt-us/op, img/s, MB/s,
# speedup). Wall-clock fields measure the simulator; the virtual metrics
# must stay bit-identical across perf work (see the golden-trace test).
#
# Regression gate: before overwriting the committed baseline, the script
# snapshots its Fig6/Fig7 wall-clock numbers and asserts the fresh run is
# within XCCL_BENCH_TOLERANCE percent (default 2) — the watchdog and
# fail-stop machinery must stay free on the non-faulty path. Override the
# tolerance when the machine is known to differ from the baseline's:
#
#   XCCL_BENCH_TOLERANCE=10 scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
out=${1:-BENCH_pr6.json}
bench=${2:-.}
benchtime=${3:-4x}
baseline=${XCCL_BENCH_BASELINE:-BENCH_pr5.json}
tolerance=${XCCL_BENCH_TOLERANCE:-2}

# ns_op of one benchmark entry in a baseline JSON ('' if absent).
ns_op() {
	[ -f "$1" ] || return 0
	sed -n "s/.*\"name\": \"$2\",.*\"ns_op\": \([0-9]*\).*/\1/p" "$1"
}
base_fig6=$(ns_op "$baseline" Fig6MultiNodeCollectives)
base_fig7=$(ns_op "$baseline" Fig7HorovodNvidia)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix if present
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit) # "virt-us/op" -> "virt_us_op"
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "bench.sh: wrote $(grep -c '"name"' "$out") benchmark entries to $out"

# Wall-clock gate against the pre-run baseline snapshot.
gate=0
check_ns() { # name baseline-ns new-ns
	if [ -z "$2" ] || [ -z "$3" ]; then
		echo "bench.sh: $1: no baseline to gate against (skipped)"
		return 0
	fi
	awk -v name="$1" -v base="$2" -v new="$3" -v tol="$tolerance" 'BEGIN {
		pct = (new - base) * 100 / base
		printf "bench.sh: %s wall clock %+.1f%% vs baseline (tolerance %s%%)\n", name, pct, tol
		exit pct > tol ? 1 : 0
	}' || return 1
}
check_ns Fig6MultiNodeCollectives "$base_fig6" "$(ns_op "$out" Fig6MultiNodeCollectives)" || gate=1
check_ns Fig7HorovodNvidia "$base_fig7" "$(ns_op "$out" Fig7HorovodNvidia)" || gate=1
if [ "$gate" != 0 ]; then
	echo "bench.sh: wall-clock regression beyond ${tolerance}% (set XCCL_BENCH_TOLERANCE to override)" >&2
	exit 1
fi
