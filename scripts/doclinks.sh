#!/bin/sh
# Doc link checker: every relative markdown link in docs/*.md, README.md and
# EXPERIMENTS.md must resolve to a file in the repo, and every backticked
# repo path (internal/..., cmd/..., scripts/..., docs/...) they mention must
# exist — so the docs can't silently rot as the tree moves underneath them.
#
# Backticked tokens may carry a :line suffix (internal/core/xccl.go:42) or a
# Go symbol suffix (internal/ccl.Error); both resolve against the underlying
# path. External links (http/https/mailto) and pure anchors are skipped.
#
# Usage: scripts/doclinks.sh   (exits non-zero listing every broken ref)
set -eu
cd "$(dirname "$0")/.."
fail=0

for f in docs/*.md README.md EXPERIMENTS.md; do
	[ -f "$f" ] || continue
	dir=$(dirname "$f")

	# Relative markdown links: [text](target), minus external URLs/anchors.
	grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//' |
		while IFS= read -r t; do
			case $t in
			http://* | https://* | mailto:* | '#'*) continue ;;
			esac
			t=${t%%#*}
			[ -n "$t" ] || continue
			if [ ! -e "$dir/$t" ] && [ ! -e "$t" ]; then
				echo "doclinks: $f: broken link ($t)" >&2
				echo broken >>"${TMPDIR:-/tmp}/doclinks.$$"
			fi
		done

	# Backticked repo paths.
	grep -o '`[A-Za-z0-9_./:-]*`' "$f" | tr -d '`' |
		while IFS= read -r t; do
			case $t in
			internal/* | cmd/* | scripts/* | docs/*) ;;
			*) continue ;;
			esac
			p=${t%%:*} # strip a :line suffix
			# internal/ccl.Error -> internal/ccl (package path + symbol)
			if [ ! -e "$p" ] && [ ! -e "${p%.*}" ]; then
				echo "doclinks: $f: dangling repo path ($t)" >&2
				echo broken >>"${TMPDIR:-/tmp}/doclinks.$$"
			fi
		done
done

# The per-file loops run in pipelines (subshells), so failures are collected
# through a marker file rather than a shell variable.
if [ -e "${TMPDIR:-/tmp}/doclinks.$$" ]; then
	rm -f "${TMPDIR:-/tmp}/doclinks.$$"
	fail=1
fi
[ "$fail" = 0 ] && echo "doclinks: all documentation links resolve"
exit "$fail"
