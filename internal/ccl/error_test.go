package ccl

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorUnwrapsToResult(t *testing.T) {
	e := &Error{Backend: "nccl", Msg: "allreduce failed", Result: ErrInternal}
	if !errors.Is(e, ErrInternal) {
		t.Error("errors.Is(e, ErrInternal) = false")
	}
	if errors.Is(e, ErrRemote) {
		t.Error("errors.Is(e, ErrRemote) = true for an internal error")
	}
	wrapped := fmt.Errorf("collective failed: %w", e)
	if !errors.Is(wrapped, ErrInternal) {
		t.Error("errors.Is lost the result through fmt.Errorf %%w")
	}
	var ce *Error
	if !errors.As(wrapped, &ce) || ce.Backend != "nccl" {
		t.Errorf("errors.As(wrapped, &ce) failed: %v", ce)
	}
}

func TestIsTransient(t *testing.T) {
	remote := fmt.Errorf("wrap: %w", &Error{Backend: "rccl", Result: ErrRemote})
	if !IsTransient(remote) {
		t.Error("remote error not transient")
	}
	for _, err := range []error{
		&Error{Result: ErrInternal},
		&Error{Result: ErrInvalidArgument},
		errors.New("plain"),
		nil,
	} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true", err)
		}
	}
}

func TestResultError(t *testing.T) {
	if got := ErrRemote.Error(); got != "xcclRemoteError" {
		t.Errorf("ErrRemote.Error() = %q", got)
	}
	if !ErrRemote.Transient() || ErrInternal.Transient() {
		t.Error("Transient(): want true only for ErrRemote")
	}
}
