package ccl_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/device"
	"mpixccl/internal/elem"
	"mpixccl/internal/sim"
)

// hierCase is one collective call issued by every rank of the property
// test. The same case list runs once with the flat (auto) algorithms and
// once forced hierarchical; the recv buffers must match bytewise.
type hierCase struct {
	coll  string // allreduce | broadcast | allgather | reducescatter
	dt    ccl.Datatype
	kind  elem.Kind
	op    ccl.RedOp
	count int
	root  int
}

// hierCases builds the sweep: every datatype × reduction × uneven count
// for allreduce, plus broadcast (leader and non-leader roots), allgather,
// and reducescatter coverage. Values are chosen so every reduction is
// exact under any association order (see hierFill), making bytewise
// comparison valid even for the reassociating hierarchical schedules.
func hierCases(nranks int) []hierCase {
	dts := []struct {
		dt   ccl.Datatype
		kind elem.Kind
	}{
		{ccl.Int8, elem.U8}, {ccl.Int32, elem.I32}, {ccl.Int64, elem.I64},
		{ccl.Float16, elem.F16}, {ccl.Float32, elem.F32}, {ccl.Float64, elem.F64},
	}
	ops := []ccl.RedOp{ccl.Sum, ccl.Prod, ccl.Max, ccl.Min}
	counts := []int{1, 7, 4097} // deliberately not multiples of ranks or chunks
	var cases []hierCase
	for _, d := range dts {
		for _, op := range ops {
			for _, n := range counts {
				cases = append(cases, hierCase{coll: "allreduce", dt: d.dt, kind: d.kind, op: op, count: n})
			}
		}
	}
	for _, root := range []int{0, nranks - 1} {
		for _, n := range []int{1, 4097} {
			cases = append(cases, hierCase{coll: "broadcast", dt: ccl.Int64, kind: elem.I64, count: n, root: root})
		}
	}
	for _, n := range counts {
		cases = append(cases, hierCase{coll: "allgather", dt: ccl.Int32, kind: elem.I32, count: n})
	}
	for _, op := range ops {
		cases = append(cases, hierCase{coll: "reducescatter", dt: ccl.Float64, kind: elem.F64, op: op, count: 7})
	}
	return cases
}

// hierFill writes rank r's deterministic payload. Sum/max/min values are
// small integers (exact in every datatype, sums bounded well below the
// float16 integer range and the uint8 clamp); prod values are 1 or 2, so
// any partial product divides the total and stays exact regardless of how
// the schedule associates the reduction.
func hierFill(buf *device.Buffer, kind elem.Kind, count, r int, op ccl.RedOp) {
	for i := 0; i < count; i++ {
		v := (r*31 + i*7) % 8
		if op == ccl.Prod {
			v = 1 + (r+i)%2
		}
		elem.Set(kind, buf.Bytes(), i, float64(v), 0)
	}
}

// runHierSchedule executes the case list under one forced algorithm and
// returns every case's recv contents per rank.
func runHierSchedule(t *testing.T, nranks int, algo ccl.Algorithm, chunk int64) [][][]byte {
	t.Helper()
	cases := hierCases(nranks)
	h := newHarness(t, "thetagpu", nranks, nccl.New)
	out := make([][][]byte, len(cases))
	for i := range out {
		out[i] = make([][]byte, nranks)
	}
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		c.SetAlgorithm(algo, chunk)
		for ci, cs := range cases {
			esz := int64(cs.dt.Size())
			n := int64(cs.count) * esz
			var send, recv *device.Buffer
			var err error
			switch cs.coll {
			case "allreduce":
				send, recv = c.Device().MustMalloc(n), c.Device().MustMalloc(n)
				hierFill(send, cs.kind, cs.count, r, cs.op)
				err = c.AllReduce(send, recv, cs.count, cs.dt, cs.op, s)
			case "broadcast":
				send, recv = c.Device().MustMalloc(n), c.Device().MustMalloc(n)
				if r == cs.root {
					hierFill(send, cs.kind, cs.count, r, cs.op)
				}
				err = c.Broadcast(send, recv, cs.count, cs.dt, cs.root, s)
			case "allgather":
				send, recv = c.Device().MustMalloc(n), c.Device().MustMalloc(n*int64(nranks))
				hierFill(send, cs.kind, cs.count, r, cs.op)
				err = c.AllGather(send, recv, cs.count, cs.dt, s)
			case "reducescatter":
				send, recv = c.Device().MustMalloc(n*int64(nranks)), c.Device().MustMalloc(n)
				hierFill(send, cs.kind, cs.count*nranks, r, cs.op)
				err = c.ReduceScatter(send, recv, cs.count, cs.dt, cs.op, s)
			}
			if err != nil {
				t.Errorf("case %d (%s): %v", ci, cs.coll, err)
				return
			}
			s.Synchronize(p)
			out[ci][r] = append([]byte(nil), recv.Bytes()...)
			send.Free()
			recv.Free()
		}
	})
	return out
}

// TestHierarchicalMatchesFlat is the property test: forced-hierarchical
// collectives must produce bytewise the results of the flat algorithms,
// across datatypes, reductions, uneven counts, uneven nodes (12 ranks on
// 8-GPU nodes = 8+4), and single-node shapes where hierarchical must
// degenerate to the flat path.
func TestHierarchicalMatchesFlat(t *testing.T) {
	shapes := []struct {
		nranks int
		chunk  int64 // forced pipeline chunk; 0 = backend default
	}{
		{16, 1024}, // 2 even nodes, many small chunks
		{16, 0},    // 2 even nodes, backend default chunk
		{12, 1024}, // 2 uneven nodes (8 + 4)
		{8, 1024},  // 1 node: hierarchical must degenerate to flat
		{3, 1024},  // 1 node, non-power-of-two
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("ranks=%d/chunk=%d", sh.nranks, sh.chunk), func(t *testing.T) {
			flat := runHierSchedule(t, sh.nranks, ccl.AlgoAuto, 0)
			hier := runHierSchedule(t, sh.nranks, ccl.AlgoHierarchical, sh.chunk)
			cases := hierCases(sh.nranks)
			for ci := range cases {
				for r := 0; r < sh.nranks; r++ {
					if !bytes.Equal(flat[ci][r], hier[ci][r]) {
						t.Errorf("case %d (%s %v op=%v count=%d root=%d) rank %d: hierarchical != flat",
							ci, cases[ci].coll, cases[ci].dt, cases[ci].op, cases[ci].count, cases[ci].root, r)
					}
				}
			}
		})
	}
}

// TestForcedFlatAlgorithms pins the remaining selector values: a forced
// flat ring must match auto at a large count, a forced tree at any count,
// and a forced ring with fewer elements than ranks must degrade to the
// tree rather than schedule empty ring segments.
func TestForcedFlatAlgorithms(t *testing.T) {
	const nranks = 8
	for _, algo := range []ccl.Algorithm{ccl.AlgoFlatRing, ccl.AlgoTree} {
		for _, count := range []int{3, 1024} {
			h := newHarness(t, "thetagpu", nranks, nccl.New)
			results := make([][]byte, nranks)
			h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
				c.SetAlgorithm(algo, 0)
				send, recv := c.Device().MustMalloc(int64(count)*4), c.Device().MustMalloc(int64(count)*4)
				hierFill(send, elem.I32, count, r, ccl.Sum)
				if err := c.AllReduce(send, recv, count, ccl.Int32, ccl.Sum, s); err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				s.Synchronize(p)
				results[r] = append([]byte(nil), recv.Bytes()...)
			})
			for i := 0; i < count; i++ {
				want := int32(0)
				for r := 0; r < nranks; r++ {
					want += int32((r*31 + i*7) % 8)
				}
				for r := 0; r < nranks; r++ {
					if got := int32(binary.LittleEndian.Uint32(results[r][i*4:])); got != want {
						t.Fatalf("algo=%v count=%d rank=%d elem %d = %d, want %d", algo, count, r, i, got, want)
					}
				}
			}
		}
	}
}
