package rccl

import (
	"testing"
	"time"

	"mpixccl/internal/device"
)

func TestConfigPersonality(t *testing.T) {
	cfg := Config()
	if cfg.Launch != 25*time.Microsecond {
		t.Errorf("launch = %v, want 25µs (paper §4.2)", cfg.Launch)
	}
	if !cfg.SupportsKind(device.AMDGPU) || cfg.SupportsKind(device.NvidiaGPU) {
		t.Error("RCCL must drive AMD GPUs only")
	}
	if cfg.Channels != 4 {
		t.Errorf("channels = %d, want 4 (HDR rails; PCIe clamps intra)", cfg.Channels)
	}
	if cfg.InterNodePenalty <= 1 {
		t.Error("RCCL's IB transport should carry an inter-node penalty")
	}
}
