// Package rccl models the ROCm Collective Communication Library: AMD's
// NCCL-compatible library driving MI-series GPUs over PCIe/xGMI via the
// HIP runtime. Constants are calibrated to the paper's MRI measurements:
// 25 µs launch overhead, ~6.3 GB/s intra-node point-to-point bandwidth.
package rccl

import (
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
)

// Version is the RCCL release modeled.
const Version = "2.11.4"

// Config returns RCCL's personality.
func Config() ccl.Config {
	return ccl.Config{
		Name:  "rccl-" + Version,
		Kinds: []device.Kind{device.AMDGPU},
		Datatypes: map[ccl.Datatype]bool{
			ccl.Int8: true, ccl.Int32: true, ccl.Int64: true,
			ccl.Float16: true, ccl.Float32: true, ccl.Float64: true,
		},
		Ops: map[ccl.RedOp]bool{
			ccl.Sum: true, ccl.Prod: true, ccl.Max: true, ccl.Min: true,
		},
		Launch:   25 * time.Microsecond,
		StepCost: 1500 * time.Nanosecond,
		// Four rails: intra-node PCIe clamps transfers to its two lanes,
		// but across nodes RCCL drives all four HDR rails — which is why
		// it overtakes the 2-rail MPI path for large messages (Fig 1b).
		Channels:       4,
		ChunkBytes:     256 << 10,
		HierChunkBytes: 512 << 10,
		TreeThreshold:  64 << 10,
		// RCCL's IB verbs transport still trails tuned MPI RDMA slightly.
		InterNodePenalty: 1.25,
	}
}

// New creates RCCL communicators over the devices.
func New(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, Config())
}
