package ccl

import (
	"testing"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// These tests pin the recycling contract of the collective enqueue hot
// path (see the sim package's alloc guards for the scheduler side): the
// opArgs and runCtx free lists must absorb the per-wave objects, so a
// steady stream of collectives does not grow the allocation rate. A
// regression here does not break correctness, but it puts one allocation
// per rank per collective (plus one per putAsync helper) back on the
// simulator's wall-clock profile.

// testBackend is a minimal NCCL-like personality for in-package tests.
func testBackend() Config {
	return Config{
		Name:  "testccl",
		Kinds: []device.Kind{device.NvidiaGPU},
		Datatypes: map[Datatype]bool{
			Int8: true, Int32: true, Int64: true,
			Float16: true, Float32: true, Float64: true,
		},
		Ops:              map[RedOp]bool{Sum: true, Prod: true, Max: true, Min: true},
		Launch:           20 * time.Microsecond,
		StepCost:         1200 * time.Nanosecond,
		Channels:         12,
		ChunkBytes:       512 << 10,
		TreeThreshold:    256 << 10,
		InterNodePenalty: 1.0,
	}
}

// TestPoolPrimitivesAllocFree pins the acquire/release cycle itself: once
// the free lists hold an entry, newArgs/getCtx/putCtx must not allocate.
func TestPoolPrimitivesAllocFree(t *testing.T) {
	co := &core{}
	st := &opState{}
	a := co.newArgs(nil, nil, 0, 0)
	*a = opArgs{}
	co.argsFree = append(co.argsFree, a)
	co.putCtx(co.getCtx(st, 0, nil))
	allocs := testing.AllocsPerRun(100, func() {
		a := co.newArgs(nil, nil, 1, 0)
		*a = opArgs{}
		co.argsFree = append(co.argsFree, a)
		co.putCtx(co.getCtx(st, 0, nil))
	})
	if allocs != 0 {
		t.Errorf("pooled opArgs/runCtx cycle allocates %.2f objects per op; want 0", allocs)
	}
}

// TestCollectivePoolsReachSteadyState runs repeated AllReduce waves and
// checks that the shared free lists stop growing after the first wave:
// every wave's opArgs and runCtxs (stream tasks and putAsync helpers) are
// recycled rather than freshly allocated.
func TestCollectivePoolsReachSteadyState(t *testing.T) {
	const nranks = 4
	const waves = 10
	const count = 4096
	k := sim.NewKernel()
	sys, err := topology.Preset(k, "thetagpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(k, sys)
	comms, err := NewComms(fab, sys.Devices()[:nranks], testBackend())
	if err != nil {
		t.Fatal(err)
	}
	co := comms[0].core
	bar := sim.NewBarrier(k, nranks)
	// Pool sizes observed by rank 0 at the wave boundaries (all stream
	// tasks joined, so every recycle for the wave has happened).
	var argsLens, ctxLens [waves]int
	for r := range comms {
		r := r
		c := comms[r]
		k.Spawn("rank", func(p *sim.Proc) {
			s := c.Device().NewStream()
			send := c.Device().MustMalloc(count * 4)
			recv := c.Device().MustMalloc(count * 4)
			for w := 0; w < waves; w++ {
				if err := c.AllReduce(send, recv, count, Float32, Sum, s); err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				s.Synchronize(p)
				bar.Wait(p)
				if r == 0 {
					argsLens[w] = len(co.argsFree)
					ctxLens[w] = len(co.ctxFree)
				}
				bar.Wait(p)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if argsLens[0] < nranks {
		t.Errorf("after one wave the opArgs pool holds %d entries; want >= %d (finish must recycle)",
			argsLens[0], nranks)
	}
	if ctxLens[0] < nranks {
		t.Errorf("after one wave the runCtx pool holds %d entries; want >= %d", ctxLens[0], nranks)
	}
	for w := 1; w < waves; w++ {
		if argsLens[w] > argsLens[0] || ctxLens[w] > ctxLens[0] {
			t.Fatalf("pools keep growing: wave %d args=%d ctx=%d, wave 0 args=%d ctx=%d — "+
				"collectives are allocating instead of recycling",
				w, argsLens[w], ctxLens[w], argsLens[0], ctxLens[0])
		}
	}
}
