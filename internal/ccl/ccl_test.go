package ccl_test

import (
	"errors"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/hccl"
	"mpixccl/internal/ccl/msccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/ccl/rccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// harness builds a system, fabric, comms and one stream per rank.
type harness struct {
	k       *sim.Kernel
	sys     *topology.System
	fab     *fabric.Fabric
	comms   []*ccl.Comm
	streams []*device.Stream
}

func newHarness(t *testing.T, system string, nranks int, mk func(*fabric.Fabric, []*device.Device) ([]*ccl.Comm, error)) *harness {
	t.Helper()
	k := sim.NewKernel()
	perNode := map[string]int{"thetagpu": 8, "mri": 2, "voyager": 8}[system]
	nodes := (nranks + perNode - 1) / perNode
	sys, err := topology.Preset(k, system, nodes)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(k, sys)
	comms, err := mk(fab, sys.Devices()[:nranks])
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, sys: sys, fab: fab, comms: comms}
	for _, c := range comms {
		h.streams = append(h.streams, c.Device().NewStream())
	}
	return h
}

// runRanks runs fn per rank on its own process and drives the simulation.
func (h *harness) runRanks(t *testing.T, fn func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc)) {
	t.Helper()
	for r := range h.comms {
		r := r
		h.k.Spawn("main", func(p *sim.Proc) {
			fn(r, h.comms[r], h.streams[r], p)
		})
	}
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNCCLAllReduceCorrectness(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		for _, count := range []int{1, 5, 1000, 300000} {
			h := newHarness(t, "thetagpu", n, nccl.New)
			results := make([]*device.Buffer, n)
			h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
				send := c.Device().MustMalloc(int64(count) * 4)
				recv := c.Device().MustMalloc(int64(count) * 4)
				for i := 0; i < count; i++ {
					send.SetFloat32(i, float32(r+1))
				}
				if err := c.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				s.Synchronize(p)
				results[r] = recv
			})
			want := float32(n*(n+1)) / 2
			for r, buf := range results {
				for _, i := range []int{0, count / 2, count - 1} {
					if got := buf.Float32(i); got != want {
						t.Fatalf("n=%d count=%d rank=%d elem %d = %v, want %v", n, count, r, i, got, want)
					}
				}
			}
		}
	}
}

func TestNCCLBroadcastAndReduce(t *testing.T) {
	const n, count = 8, 2048
	h := newHarness(t, "thetagpu", n, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(count * 4)
		recv := c.Device().MustMalloc(count * 4)
		if r == 2 {
			for i := 0; i < count; i++ {
				send.SetFloat32(i, float32(i))
			}
		}
		if err := c.Broadcast(send, recv, count, ccl.Float32, 2, s); err != nil {
			t.Errorf("broadcast: %v", err)
		}
		s.Synchronize(p)
		if recv.Float32(100) != 100 {
			t.Errorf("rank %d bcast elem = %v", r, recv.Float32(100))
		}
		// Now reduce the broadcast data to root 0: every element i sums to n*i.
		out := c.Device().MustMalloc(count * 4)
		if err := c.Reduce(recv, out, count, ccl.Float32, ccl.Sum, 0, s); err != nil {
			t.Errorf("reduce: %v", err)
		}
		s.Synchronize(p)
		if r == 0 && out.Float32(10) != float32(10*n) {
			t.Errorf("reduce elem = %v, want %v", out.Float32(10), 10*n)
		}
	})
}

func TestNCCLAllGatherAndReduceScatter(t *testing.T) {
	const n, count = 8, 1024
	h := newHarness(t, "thetagpu", n, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(count * 4)
		all := c.Device().MustMalloc(n * count * 4)
		for i := 0; i < count; i++ {
			send.SetFloat32(i, float32(r*1000+i%7))
		}
		if err := c.AllGather(send, all, count, ccl.Float32, s); err != nil {
			t.Errorf("allgather: %v", err)
		}
		s.Synchronize(p)
		for blk := 0; blk < n; blk++ {
			if got := all.Float32(blk*count + 3); got != float32(blk*1000+3) {
				t.Errorf("rank %d allgather block %d = %v", r, blk, got)
			}
		}
		// ReduceScatter over the gathered buffer: block r sums to n×value.
		out := c.Device().MustMalloc(count * 4)
		if err := c.ReduceScatter(all, out, count, ccl.Float32, ccl.Sum, s); err != nil {
			t.Errorf("reducescatter: %v", err)
		}
		s.Synchronize(p)
		if got := out.Float32(3); got != float32(n)*float32(r*1000+3) {
			t.Errorf("rank %d reducescatter = %v, want %v", r, got, float32(n)*float32(r*1000+3))
		}
	})
}

func TestCCLSendRecvPair(t *testing.T) {
	h := newHarness(t, "thetagpu", 2, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		buf := c.Device().MustMalloc(4096)
		if r == 0 {
			buf.FillFloat32(7.5)
			if err := c.Send(buf, 1024, ccl.Float32, 1, s); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			if err := c.Recv(buf, 1024, ccl.Float32, 0, s); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
		s.Synchronize(p)
		if r == 1 && buf.Float32(512) != 7.5 {
			t.Errorf("recv elem = %v", buf.Float32(512))
		}
	})
}

// Group-call AlltoAllv per the paper's Listing 1, built directly on the CCL
// layer: every rank posts n-1 sends and n-1 recvs inside one group.
func TestGroupAlltoAll(t *testing.T) {
	const n, count = 8, 256
	h := newHarness(t, "thetagpu", n, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(n * count * 4)
		recv := c.Device().MustMalloc(n * count * 4)
		for peer := 0; peer < n; peer++ {
			for i := 0; i < count; i++ {
				send.SetFloat32(peer*count+i, float32(r*100+peer))
			}
		}
		if err := c.GroupStart(); err != nil {
			t.Errorf("group start: %v", err)
		}
		for peer := 0; peer < n; peer++ {
			if peer == r {
				copy(recv.Bytes()[peer*count*4:(peer+1)*count*4], send.Bytes()[peer*count*4:(peer+1)*count*4])
				continue
			}
			if err := c.Send(send.Slice(int64(peer)*count*4, count*4), count, ccl.Float32, peer, s); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := c.Recv(recv.Slice(int64(peer)*count*4, count*4), count, ccl.Float32, peer, s); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
		if err := c.GroupEnd(); err != nil {
			t.Errorf("group end: %v", err)
		}
		s.Synchronize(p)
		for peer := 0; peer < n; peer++ {
			if got := recv.Float32(peer*count + 9); got != float32(peer*100+r) {
				t.Errorf("rank %d block %d = %v, want %v", r, peer, got, peer*100+r)
			}
		}
	})
}

func TestHCCLRejectsNonFloat(t *testing.T) {
	h := newHarness(t, "voyager", 2, hccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		buf := c.Device().MustMalloc(64)
		err := c.AllReduce(buf, buf, 8, ccl.Float64, ccl.Sum, s)
		var ce *ccl.Error
		if !errors.As(err, &ce) || ce.Result != ccl.ErrUnsupportedDatatype {
			t.Errorf("float64 on hccl: err = %v", err)
		}
		// Float32 must work.
		send := c.Device().MustMalloc(64)
		recv := c.Device().MustMalloc(64)
		send.FillFloat32(1)
		if err := c.AllReduce(send, recv, 16, ccl.Float32, ccl.Sum, s); err != nil {
			t.Errorf("float32 on hccl: %v", err)
		}
		s.Synchronize(p)
		if recv.Float32(3) != 2 {
			t.Errorf("hccl allreduce = %v", recv.Float32(3))
		}
	})
}

func TestBackendDeviceKindChecks(t *testing.T) {
	k := sim.NewKernel()
	theta := topology.ThetaGPU(k, 1)
	fab := fabric.New(k, theta)
	// RCCL cannot drive NVIDIA GPUs.
	_, err := rccl.New(fab, theta.Devices()[:2])
	var ce *ccl.Error
	if !errors.As(err, &ce) || ce.Result != ccl.ErrUnsupportedDevice {
		t.Fatalf("rccl on nvidia: %v", err)
	}
	if _, err := nccl.New(fab, theta.Devices()[:2]); err != nil {
		t.Fatalf("nccl on nvidia: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	h := newHarness(t, "thetagpu", 2, nccl.New)
	c := h.comms[0]
	s := h.streams[0]
	buf := c.Device().MustMalloc(64)
	if err := c.AllReduce(buf, buf, -1, ccl.Float32, ccl.Sum, s); err == nil {
		t.Error("negative count accepted")
	}
	if err := c.AllReduce(buf, buf, 1000, ccl.Float32, ccl.Sum, s); err == nil {
		t.Error("oversized count accepted")
	}
	if err := c.Broadcast(buf, buf, 4, ccl.Float32, 9, s); err == nil {
		t.Error("bad root accepted")
	}
	if err := c.Send(buf, 4, ccl.Float32, 7, s); err == nil {
		t.Error("bad peer accepted")
	}
	if err := c.GroupEnd(); err == nil {
		t.Error("group end without start accepted")
	}
	if err := c.GroupStart(); err != nil {
		t.Error(err)
	}
	if err := c.GroupStart(); err == nil {
		t.Error("nested group start accepted")
	}
}

// The launch overhead must dominate small-message latency, giving each
// backend its measured latency floor (20/25/270/28 µs).
func TestLaunchOverheadFloors(t *testing.T) {
	cases := []struct {
		system  string
		mk      func(*fabric.Fabric, []*device.Device) ([]*ccl.Comm, error)
		floor   time.Duration
		ceiling time.Duration
	}{
		{"thetagpu", nccl.New, 20 * time.Microsecond, 40 * time.Microsecond},
		{"mri", rccl.New, 25 * time.Microsecond, 50 * time.Microsecond},
		{"voyager", hccl.New, 270 * time.Microsecond, 330 * time.Microsecond},
		{"thetagpu", msccl.New, 28 * time.Microsecond, 50 * time.Microsecond},
	}
	for _, tc := range cases {
		h := newHarness(t, tc.system, 2, tc.mk)
		var lat time.Duration
		h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
			buf := c.Device().MustMalloc(4)
			start := p.Now()
			if r == 0 {
				if err := c.Send(buf, 1, ccl.Float32, 1, s); err != nil {
					t.Errorf("send: %v", err)
				}
			} else {
				if err := c.Recv(buf, 1, ccl.Float32, 0, s); err != nil {
					t.Errorf("recv: %v", err)
				}
			}
			s.Synchronize(p)
			if r == 1 {
				lat = p.Now() - start
			}
		})
		if lat < tc.floor || lat > tc.ceiling {
			t.Errorf("%s small-message latency %v, want in [%v, %v]",
				tc.system, lat, tc.floor, tc.ceiling)
		}
	}
}

func TestMSCCLCustomAlgoCorrectAndFaster(t *testing.T) {
	const n = 8
	const count = 4096 // 16 KB: inside the allpairs window
	run := func(mk func(*fabric.Fabric, []*device.Device) ([]*ccl.Comm, error)) (time.Duration, float32) {
		h := newHarness(t, "thetagpu", n, mk)
		var lat time.Duration
		var sample float32
		h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
			send := c.Device().MustMalloc(count * 4)
			recv := c.Device().MustMalloc(count * 4)
			for i := 0; i < count; i++ {
				send.SetFloat32(i, float32(r+1))
			}
			start := p.Now()
			if err := c.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
				t.Errorf("allreduce: %v", err)
			}
			s.Synchronize(p)
			if d := p.Now() - start; d > lat {
				lat = d
			}
			if r == 0 {
				sample = recv.Float32(count / 2)
			}
		})
		return lat, sample
	}
	customLat, customVal := run(msccl.New)
	plainLat, plainVal := run(msccl.NewPlain)
	want := float32(n*(n+1)) / 2
	if customVal != want || plainVal != want {
		t.Fatalf("values: custom=%v plain=%v want %v", customVal, plainVal, want)
	}
	if customLat >= plainLat {
		t.Errorf("allpairs (%v) not faster than embedded NCCL (%v) in medium window", customLat, plainLat)
	}
}

func TestAlgoValidation(t *testing.T) {
	bad := &ccl.Algo{Name: "bad", Collective: "allreduce", Ranks: 4, NChunks: 4,
		Steps: []ccl.Step{{Xfers: []ccl.ChunkXfer{{From: 0, To: 9, SrcChunk: 0, DstChunk: 0}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad endpoints accepted")
	}
	selfloop := &ccl.Algo{Name: "self", Collective: "allreduce", Ranks: 4, NChunks: 2,
		Steps: []ccl.Step{{Xfers: []ccl.ChunkXfer{{From: 1, To: 1}}}}}
	if err := selfloop.Validate(); err == nil {
		t.Error("self loop accepted")
	}
	good := ccl.AllPairsAllReduce(4, 0, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("allpairs invalid: %v", err)
	}
	if !good.Matches("allreduce", 4, 1024) {
		t.Error("allpairs should match")
	}
	if good.Matches("broadcast", 4, 1024) || good.Matches("allreduce", 8, 1024) {
		t.Error("mismatched collective/ranks accepted")
	}
	bounded := ccl.AllPairsAllReduce(4, 256, 1024)
	if bounded.Matches("allreduce", 4, 100) || bounded.Matches("allreduce", 4, 5000) {
		t.Error("size bounds ignored")
	}
}

func TestRCCLOnMRI(t *testing.T) {
	const n, count = 4, 10000
	h := newHarness(t, "mri", n, rccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(count * 4)
		recv := c.Device().MustMalloc(count * 4)
		send.FillFloat32(float32(r + 1))
		if err := c.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
			t.Errorf("allreduce: %v", err)
		}
		s.Synchronize(p)
		if recv.Float32(77) != 10 {
			t.Errorf("rccl allreduce = %v", recv.Float32(77))
		}
	})
}

// Streams make collectives asynchronous: the enqueue returns immediately in
// virtual time, and only Synchronize blocks.
func TestCollectiveIsAsynchronous(t *testing.T) {
	h := newHarness(t, "thetagpu", 2, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(1 << 20)
		recv := c.Device().MustMalloc(1 << 20)
		start := p.Now()
		if err := c.AllReduce(send, recv, 1<<18, ccl.Float32, ccl.Sum, s); err != nil {
			t.Errorf("allreduce: %v", err)
		}
		if p.Now() != start {
			t.Error("enqueue blocked the caller")
		}
		s.Synchronize(p)
		if p.Now() == start {
			t.Error("synchronize did not advance time")
		}
	})
}

func TestCommSplit(t *testing.T) {
	h := newHarness(t, "thetagpu", 8, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		sub, err := c.CommSplit(p, r%2, r)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if sub.Size() != 4 {
			t.Errorf("sub size = %d", sub.Size())
		}
		subStream := sub.Device().NewStream()
		send := sub.Device().MustMalloc(1024)
		recv := sub.Device().MustMalloc(1024)
		send.FillFloat32(float32(r))
		if err := sub.AllReduce(send, recv, 256, ccl.Float32, ccl.Sum, subStream); err != nil {
			t.Errorf("sub allreduce: %v", err)
			return
		}
		subStream.Synchronize(p)
		want := float32(0 + 2 + 4 + 6)
		if r%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if recv.Float32(3) != want {
			t.Errorf("rank %d sub sum = %v, want %v", r, recv.Float32(3), want)
		}
	})
}

func TestCommSplitOptOut(t *testing.T) {
	h := newHarness(t, "thetagpu", 4, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		color := 0
		if r == 3 {
			color = -1
		}
		sub, err := c.CommSplit(p, color, r)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if r == 3 {
			if sub != nil {
				t.Error("opt-out rank got a communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
	})
}
