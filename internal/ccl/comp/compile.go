package comp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Strategy is a parsed plan key: the decomposition family plus its search
// attributes. The serialized form persists in version-3 tuning tables.
//
// Key grammar:
//
//	direct[:chunk=N]                         one shuffle/multicast phase
//	phased[:chunk=N]                         node-permutation phases
//	staged:intra=flat|tree,stripe=W,depth=D[,chunk=N]
//	                                         leader-staged hierarchy
//	native:hier|flat                         delegate to a built-in family
type Strategy struct {
	Name   string // direct | phased | staged | native
	Intra  string // flat | tree (staged only)
	Stripe int    // concurrent inter-node lanes per leader flow (staged)
	Depth  int    // chunked pipeline rounds (staged)
	Chunk  int64  // fabric pipeline granularity override (0 = default)
	Native string // hier | flat (native only)
}

// Key serializes the strategy in canonical form.
func (s Strategy) Key() string {
	switch s.Name {
	case "native":
		return "native:" + s.Native
	case "staged":
		key := fmt.Sprintf("staged:intra=%s,stripe=%d,depth=%d", s.Intra, s.Stripe, s.Depth)
		if s.Chunk > 0 {
			key += fmt.Sprintf(",chunk=%d", s.Chunk)
		}
		return key
	default:
		if s.Chunk > 0 {
			return fmt.Sprintf("%s:chunk=%d", s.Name, s.Chunk)
		}
		return s.Name
	}
}

// ParseKey parses a plan key back into a Strategy, validating the grammar
// and attribute ranges.
func ParseKey(key string) (Strategy, error) {
	name, attrs, _ := strings.Cut(key, ":")
	s := Strategy{Name: name}
	switch name {
	case "direct", "phased":
		if attrs != "" {
			c, err := parseAttrs(key, attrs, map[string]bool{"chunk": true})
			if err != nil {
				return Strategy{}, err
			}
			s.Chunk = c.chunk
		}
	case "staged":
		c, err := parseAttrs(key, attrs, map[string]bool{"intra": true, "stripe": true, "depth": true, "chunk": true})
		if err != nil {
			return Strategy{}, err
		}
		s.Intra, s.Stripe, s.Depth, s.Chunk = c.intra, c.stripe, c.depth, c.chunk
		if s.Intra == "" {
			s.Intra = "flat"
		}
		if s.Intra != "flat" && s.Intra != "tree" {
			return Strategy{}, fmt.Errorf("comp: plan key %q: intra must be flat or tree", key)
		}
		if s.Stripe < 1 {
			s.Stripe = 1
		}
		if s.Depth < 1 {
			s.Depth = 1
		}
		if s.Intra == "tree" && s.Depth > 1 {
			return Strategy{}, fmt.Errorf("comp: plan key %q: intra=tree does not chunk (depth must be 1)", key)
		}
	case "native":
		s.Native = attrs
		if s.Native != "hier" && s.Native != "flat" {
			return Strategy{}, fmt.Errorf("comp: plan key %q: native family must be hier or flat", key)
		}
	default:
		return Strategy{}, fmt.Errorf("comp: plan key %q: unknown strategy %q", key, name)
	}
	return s, nil
}

type attrSet struct {
	intra         string
	stripe, depth int
	chunk         int64
}

func parseAttrs(key, attrs string, allowed map[string]bool) (attrSet, error) {
	var out attrSet
	if attrs == "" {
		return out, nil
	}
	for _, kv := range strings.Split(attrs, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || !allowed[k] {
			return out, fmt.Errorf("comp: plan key %q: bad attribute %q", key, kv)
		}
		switch k {
		case "intra":
			out.intra = v
		case "stripe", "depth", "chunk":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 1 {
				return out, fmt.Errorf("comp: plan key %q: %s wants a positive integer, got %q", key, k, v)
			}
			switch k {
			case "stripe":
				out.stripe = int(n)
			case "depth":
				out.depth = int(n)
			case "chunk":
				out.chunk = n
			}
		}
	}
	return out, nil
}

// compiledOps lists the collectives the compiler lowers to move phases.
var compiledOps = map[string]bool{
	"alltoall": true, "alltoallv": true, "scatter": true, "gather": true,
}

// nativeOps lists the built-in collectives whose decomposition the search
// ranks via native plans (execution delegates to the existing algorithms).
var nativeOps = map[string]bool{
	"allreduce": true, "bcast": true, "allgather": true, "reducescatter": true,
}

// ValidKey reports whether key names a strategy the given op can run
// (table-v3 validation: reject bands that could never dispatch).
func ValidKey(op, key string) error {
	s, err := ParseKey(key)
	if err != nil {
		return err
	}
	switch {
	case compiledOps[op]:
		if s.Name == "native" {
			return fmt.Errorf("comp: op %s cannot run native plan %q", op, key)
		}
		if s.Name == "staged" && (op == "alltoall" || op == "alltoallv") {
			return fmt.Errorf("comp: op %s has no staged lowering (plan %q)", op, key)
		}
	case nativeOps[op]:
		if s.Name != "native" {
			return fmt.Errorf("comp: op %s takes native plans only, got %q", op, key)
		}
	default:
		return fmt.Errorf("comp: unknown op %q for plan %q", op, key)
	}
	return nil
}

// Candidates enumerates the search space for op on the topology: the
// decomposition families times their attribute sweeps. Single-node worlds
// collapse to the direct plan — every hierarchy degenerates there.
func Candidates(op string, t *Topo) []Strategy {
	multi := t.Nodes > 1
	switch op {
	case "alltoall", "alltoallv":
		out := []Strategy{{Name: "direct"}}
		if multi {
			out = append(out,
				Strategy{Name: "phased"},
				Strategy{Name: "phased", Chunk: 1 << 20},
				Strategy{Name: "phased", Chunk: 2 << 20},
			)
		}
		return out
	case "scatter", "gather":
		out := []Strategy{{Name: "direct"}}
		if multi {
			for _, stripe := range []int{1, 2, 4} {
				for _, depth := range []int{1, 2, 4} {
					out = append(out, Strategy{Name: "staged", Intra: "flat", Stripe: stripe, Depth: depth})
				}
			}
			out = append(out,
				Strategy{Name: "staged", Intra: "tree", Stripe: 1, Depth: 1},
				Strategy{Name: "staged", Intra: "tree", Stripe: 2, Depth: 1},
			)
		}
		return out
	case "allreduce", "bcast", "allgather", "reducescatter":
		out := []Strategy{{Name: "native", Native: "flat"}}
		if multi {
			out = append(out, Strategy{Name: "native", Native: "hier"})
		}
		return out
	}
	return nil
}

// Shape is the call signature the compiler lowers: the per-block payload
// and the root (rooted collectives only). For alltoall/scatter/gather,
// BlockBytes is the per-pair block; for the native ops it is the total
// payload (costing only).
type Shape struct {
	BlockBytes int64
	Root       int
}

// Lower compiles (op, shape, strategy) for the topology into an
// executable plan: build the primitive DAG, schedule it into phases, and
// attach the execution attributes. The plan cost is NOT set — Search
// prices candidates; direct callers can use Topo.PlanCost.
func Lower(op string, t *Topo, sh Shape, s Strategy) (*Plan, error) {
	if t.Ranks() == 0 {
		return nil, fmt.Errorf("comp: empty topology")
	}
	var (
		d     *DAG
		err   error
		plan  *Plan
		fence bool
		stage []int
		depth = 1
	)
	switch {
	case s.Name == "native":
		d, err = lowerNative(op, t, sh, s)
	case op == "alltoall" || op == "alltoallv":
		switch s.Name {
		case "direct":
			d = lowerAlltoallDirect(t, sh.BlockBytes)
		case "phased":
			d = lowerAlltoallPhased(t, sh.BlockBytes)
			fence = true
		default:
			err = fmt.Errorf("comp: op %s has no %s lowering", op, s.Name)
		}
	case op == "scatter" || op == "gather":
		switch s.Name {
		case "direct":
			d = lowerRootDirect(op, t, sh)
		case "staged":
			d, stage, err = lowerRootStaged(op, t, sh, s)
			depth = s.Depth
		default:
			err = fmt.Errorf("comp: op %s has no %s lowering", op, s.Name)
		}
	default:
		err = fmt.Errorf("comp: unknown op %q", op)
	}
	if err != nil {
		return nil, err
	}
	plan, err = d.Schedule(s.Key())
	if err != nil {
		return nil, err
	}
	plan.Op = op
	plan.Fenced = fence
	plan.ChunkBytes = s.Chunk
	plan.PipeDepth = depth
	if depth > 1 {
		plan.StageOf = stage
	}
	if s.Name == "native" {
		plan.Native = s.Native
	}
	return plan, nil
}

// Search lowers every candidate strategy for (op, shape), prices each with
// the α–β model, and returns the cheapest plan (ties keep the earlier,
// simpler candidate). The search is deterministic: candidate order and the
// cost model are pure functions of (op, shape, topo).
func Search(op string, t *Topo, sh Shape) (*Plan, error) {
	var best *Plan
	for _, s := range Candidates(op, t) {
		p, err := Lower(op, t, sh, s)
		if err != nil {
			return nil, err
		}
		p.Cost = t.PlanCost(p)
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("comp: no candidates for op %q", op)
	}
	return best, nil
}

// CompileKey lowers the exact strategy a tuning-table band names.
func CompileKey(op string, t *Topo, sh Shape, key string) (*Plan, error) {
	s, err := ParseKey(key)
	if err != nil {
		return nil, err
	}
	p, err := Lower(op, t, sh, s)
	if err != nil {
		return nil, err
	}
	p.Cost = t.PlanCost(p)
	return p, nil
}

// NumPhases returns the phase count of the pairing schedule for the
// strategy on this topology (alltoallv builds its per-rank moves at run
// time from local counts; only the pairing is compiled).
func NumPhases(t *Topo, s Strategy) int {
	if s.Name == "phased" && t.Nodes > 1 {
		return t.Nodes - 1
	}
	return 1
}

// PairPhase places the (from → to) flow in its phase under the strategy's
// pairing schedule. Phased plans run node-permutation rounds — in phase p
// node i talks only to node (i+p+1) mod m, so each egress pool serves
// exactly one ingress pool — with intra-node traffic folded into phase 0.
func PairPhase(t *Topo, s Strategy, from, to int) int {
	if s.Name != "phased" || t.Nodes <= 1 {
		return 0
	}
	o := offsetMod(t.NodeOf[to]-t.NodeOf[from], t.Nodes)
	if o == 0 {
		return 0
	}
	return o - 1
}

func offsetMod(d, m int) int {
	d %= m
	if d < 0 {
		d += m
	}
	return d
}

// --- Lowerings ---

// lowerAlltoallDirect: one shuffle prim with every pairwise block move —
// the schedule the send-recv synthesized path approximates.
func lowerAlltoallDirect(t *Topo, blk int64) *DAG {
	n := t.Ranks()
	pr := Prim{Kind: Shuffle, Group: allRanks(n)}
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			pr.Moves = append(pr.Moves, Move{
				From: r, To: q,
				SrcBuf: SendBuf, SrcOff: int64(q) * blk,
				DstBuf: RecvBuf, DstOff: int64(r) * blk,
				Bytes: blk,
			})
		}
	}
	return &DAG{Op: "alltoall", Ranks: n, Prims: []Prim{pr}}
}

// lowerAlltoallPhased: m-1 node-permutation shuffle prims separated by
// fences. In phase p, node i sends only to node (i+p+1) mod m, so every
// egress pool feeds exactly one ingress pool — no flow parks on a
// foreign-contended pool holding grants (the head-of-line convoy the
// direct schedule suffers on ≥3 nodes). Intra-node and self moves fold
// into phase 0, overlapping the first exchange on the local links.
func lowerAlltoallPhased(t *Topo, blk int64) *DAG {
	n := t.Ranks()
	m := t.Nodes
	if m <= 1 {
		return lowerAlltoallDirect(t, blk)
	}
	d := &DAG{Op: "alltoall", Ranks: n}
	prev := -1
	for p := 0; p < m-1; p++ {
		pr := Prim{Kind: Shuffle, Group: allRanks(n)}
		if prev >= 0 {
			pr.Deps = []int{prev}
		}
		for r := 0; r < n; r++ {
			for q := 0; q < n; q++ {
				o := offsetMod(t.NodeOf[q]-t.NodeOf[r], m)
				if (o == 0 && p == 0) || o == p+1 {
					pr.Moves = append(pr.Moves, Move{
						From: r, To: q,
						SrcBuf: SendBuf, SrcOff: int64(q) * blk,
						DstBuf: RecvBuf, DstOff: int64(r) * blk,
						Bytes: blk,
					})
				}
			}
		}
		d.Prims = append(d.Prims, pr)
		prev = len(d.Prims) - 1
	}
	return d
}

// lowerRootDirect: scatter/gather as one multicast/reduce-free fan
// between root and every rank — the synthesized baseline's shape.
func lowerRootDirect(op string, t *Topo, sh Shape) *DAG {
	n := t.Ranks()
	blk, root := sh.BlockBytes, sh.Root
	kind := Multicast
	if op == "gather" {
		kind = Reduce // fan-in shape (no combining — moves carry no Reduce flag)
	}
	pr := Prim{Kind: kind, Group: allRanks(n), Root: root}
	for q := 0; q < n; q++ {
		if op == "scatter" {
			pr.Moves = append(pr.Moves, Move{
				From: root, To: q,
				SrcBuf: SendBuf, SrcOff: int64(q) * blk,
				DstBuf: RecvBuf, DstOff: 0,
				Bytes: blk,
			})
		} else {
			pr.Moves = append(pr.Moves, Move{
				From: q, To: root,
				SrcBuf: SendBuf, SrcOff: 0,
				DstBuf: RecvBuf, DstOff: int64(q) * blk,
				Bytes: blk,
			})
		}
	}
	return &DAG{Op: op, Ranks: n, Prims: []Prim{pr}}
}

// chunkBounds splits [0, blk) into depth byte ranges.
func chunkBounds(blk int64, depth int) []int64 {
	if depth < 1 {
		depth = 1
	}
	bounds := make([]int64, depth+1)
	for i := 0; i <= depth; i++ {
		bounds[i] = blk * int64(i) / int64(depth)
	}
	return bounds
}

// laneSplit splits the byte range [off, off+ln) into w lane sub-moves.
func laneSplit(m Move, w int) []Move {
	if w <= 1 || m.Bytes < int64(w) {
		return []Move{m}
	}
	out := make([]Move, 0, w)
	for l := 0; l < w; l++ {
		lo := m.Bytes * int64(l) / int64(w)
		hi := m.Bytes * int64(l+1) / int64(w)
		if hi == lo {
			continue
		}
		sub := m
		sub.SrcOff += lo
		sub.DstOff += lo
		sub.Bytes = hi - lo
		sub.Lane = l
		out = append(out, sub)
	}
	return out
}

// lowerRootStaged: scatter/gather through node leaders. Scatter rounds
// (chunked by depth, unfenced so rounds pipeline): root ships each remote
// node's blocks into the leader's scratch (stripe lanes saturate the NIC
// pool past one flow's per-direction channel cap), then the leader fans
// out intra-node — flat (direct writes) or a binomial tree over the local
// group. Gather is the mirror image. Root's own node always moves
// directly. Returns the DAG plus each emitted prim-level's stage class
// (0 = inter hop, 1 = intra hop) aligned with the scheduled phases.
func lowerRootStaged(op string, t *Topo, sh Shape, s Strategy) (*DAG, []int, error) {
	n, m := t.Ranks(), t.Nodes
	blk, root := sh.BlockBytes, sh.Root
	if m <= 1 {
		d := lowerRootDirect(op, t, sh)
		return d, []int{0}, nil
	}
	rootNode := t.NodeOf[root]
	nodes := t.nodes()
	leaders := map[int]int{}
	locals := map[int][]int{}
	for _, nd := range nodes {
		g := groupRanks(t, nd)
		locals[nd] = g
		leaders[nd] = g[0]
	}
	d := &DAG{Op: op, Ranks: n}
	var stages []int
	bounds := chunkBounds(blk, s.Depth)
	prev := -1
	emit := func(pr Prim, stage int) int {
		if prev >= 0 {
			pr.Deps = []int{prev}
		}
		d.Prims = append(d.Prims, pr)
		stages = append(stages, stage)
		prev = len(d.Prims) - 1
		return prev
	}
	for c := 0; c < s.Depth; c++ {
		c0, c1 := bounds[c], bounds[c+1]
		ln := c1 - c0
		if ln == 0 {
			continue
		}
		if op == "scatter" {
			// Inter hop: root → leaders (scratch), root's node direct.
			inter := Prim{Kind: Multicast, Group: allRanks(n), Root: root, Stripe: s.Stripe, ChunkBytes: s.Chunk}
			for _, nd := range nodes {
				if nd == rootNode {
					for _, q := range locals[nd] {
						inter.Moves = append(inter.Moves, Move{
							From: root, To: q,
							SrcBuf: SendBuf, SrcOff: int64(q)*blk + c0,
							DstBuf: RecvBuf, DstOff: c0,
							Bytes: ln,
						})
					}
					continue
				}
				lead := leaders[nd]
				for li, q := range locals[nd] {
					base := Move{
						From: root, To: lead,
						SrcBuf: SendBuf, SrcOff: int64(q)*blk + c0,
						DstBuf: ScratchBuf, DstOff: int64(li)*blk + c0,
						Bytes: ln,
					}
					inter.Moves = append(inter.Moves, laneSplit(base, s.Stripe)...)
				}
			}
			emit(inter, 0)
			// Intra hop: leaders fan out scratch → recv.
			if s.Intra == "tree" {
				emitTreeFan(d, emit, t, locals, leaders, rootNode, blk, c0, ln, true)
			} else {
				intra := Prim{Kind: Multicast, Group: allRanks(n)}
				for _, nd := range nodes {
					if nd == rootNode {
						continue
					}
					lead := leaders[nd]
					for li, q := range locals[nd] {
						intra.Moves = append(intra.Moves, Move{
							From: lead, To: q,
							SrcBuf: ScratchBuf, SrcOff: int64(li)*blk + c0,
							DstBuf: RecvBuf, DstOff: c0,
							Bytes: ln,
						})
					}
				}
				emit(intra, 1)
			}
		} else { // gather
			// Intra hop: locals → leader scratch, root's node direct to root.
			if s.Intra == "tree" {
				emitTreeFan(d, emit, t, locals, leaders, rootNode, blk, c0, ln, false)
			} else {
				intra := Prim{Kind: Reduce, Group: allRanks(n)}
				for _, nd := range nodes {
					if nd == rootNode {
						continue
					}
					lead := leaders[nd]
					for li, q := range locals[nd] {
						intra.Moves = append(intra.Moves, Move{
							From: q, To: lead,
							SrcBuf: SendBuf, SrcOff: c0,
							DstBuf: ScratchBuf, DstOff: int64(li)*blk + c0,
							Bytes: ln,
						})
					}
				}
				emit(intra, 1)
			}
			// Root's node ranks send direct; root self-copies. Same level as
			// the remote nodes' intra hop via its own prim (merged level
			// would chain deps; emit then the inter hop).
			direct := Prim{Kind: Reduce, Group: locals[rootNode], Root: root}
			for _, q := range locals[rootNode] {
				direct.Moves = append(direct.Moves, Move{
					From: q, To: root,
					SrcBuf: SendBuf, SrcOff: c0,
					DstBuf: RecvBuf, DstOff: int64(q)*blk + c0,
					Bytes: ln,
				})
			}
			emit(direct, 1)
			// Inter hop: leaders ship their node's aggregate to root.
			inter := Prim{Kind: Reduce, Group: allRanks(n), Root: root, Stripe: s.Stripe, ChunkBytes: s.Chunk}
			for _, nd := range nodes {
				if nd == rootNode {
					continue
				}
				lead := leaders[nd]
				for li, q := range locals[nd] {
					base := Move{
						From: lead, To: root,
						SrcBuf: ScratchBuf, SrcOff: int64(li)*blk + c0,
						DstBuf: RecvBuf, DstOff: int64(q)*blk + c0,
						Bytes: ln,
					}
					inter.Moves = append(inter.Moves, laneSplit(base, s.Stripe)...)
				}
			}
			emit(inter, 0)
		}
	}
	return d, stages, nil
}

// emitTreeFan emits the binomial intra-node relay levels for staged
// scatter (down = true: leader fans block ranges out through relays) or
// gather (down = false: relays fan block ranges in toward the leader).
// Every emitted level is an intra hop (stage 1). Ranges live in scratch at
// every hop; a final copy level moves each rank's own block between
// scratch and the user buffer.
func emitTreeFan(d *DAG, emit func(Prim, int) int, t *Topo,
	locals map[int][]int, leaders map[int]int, rootNode int,
	blk, c0, ln int64, down bool) {
	// Level distances: largest power of two below the biggest group.
	maxL := 0
	for nd, g := range locals {
		if nd != rootNode && len(g) > maxL {
			maxL = len(g)
		}
	}
	pow := 1
	for pow*2 < maxL {
		pow *= 2
	}
	step := func(dist int, f func(nd int, g []int)) {
		for nd, g := range locals {
			if nd == rootNode || dist >= len(g) {
				continue
			}
			f(nd, g)
		}
	}
	dists := []int{}
	for dd := pow; dd >= 1; dd /= 2 {
		dists = append(dists, dd)
	}
	if !down {
		// Gather relays run smallest distance first (fan-in).
		for i, j := 0, len(dists)-1; i < j; i, j = i+1, j-1 {
			dists[i], dists[j] = dists[j], dists[i]
		}
		// Each rank seeds its own block into its scratch range first.
		seed := Prim{Kind: Reduce}
		step(0, func(nd int, g []int) {
			for li, q := range g {
				seed.Group = append(seed.Group, q)
				seed.Moves = append(seed.Moves, Move{
					From: q, To: q,
					SrcBuf: SendBuf, SrcOff: c0,
					DstBuf: ScratchBuf, DstOff: int64(li)*blk + c0,
					Bytes: ln,
				})
			}
		})
		emit(seed, 1)
	}
	for _, dist := range dists {
		pr := Prim{Kind: Multicast}
		if !down {
			pr.Kind = Reduce
		}
		step(dist, func(nd int, g []int) {
			for i := 0; i < len(g); i += 2 * dist {
				j := i + dist
				if j >= len(g) {
					continue
				}
				// The range [j, min(j+dist, len)) of local blocks moves
				// between holder g[i] and relay g[j], one move per block so
				// the executor stays uniform across chunked rounds.
				hi := j + dist
				if hi > len(g) {
					hi = len(g)
				}
				for b := j; b < hi; b++ {
					src, dst := g[i], g[j]
					if !down {
						src, dst = g[j], g[i]
					}
					pr.Group = append(pr.Group, src, dst)
					pr.Moves = append(pr.Moves, Move{
						From: src, To: dst,
						SrcBuf: ScratchBuf, SrcOff: int64(b)*blk + c0,
						DstBuf: ScratchBuf, DstOff: int64(b)*blk + c0,
						Bytes: ln,
					})
				}
			}
		})
		if len(pr.Moves) > 0 {
			emit(pr, 1)
		}
	}
	if down {
		// Each rank lifts its own block scratch → recv.
		lift := Prim{Kind: Multicast}
		step(0, func(nd int, g []int) {
			for li, q := range g {
				lift.Group = append(lift.Group, q)
				lift.Moves = append(lift.Moves, Move{
					From: q, To: q,
					SrcBuf: ScratchBuf, SrcOff: int64(li)*blk + c0,
					DstBuf: RecvBuf, DstOff: c0,
					Bytes: ln,
				})
			}
		})
		emit(lift, 1)
	}
}

// lowerNative builds the coarse costing DAG for a built-in family; the
// executor delegates to the existing hier/flat implementations, so these
// phases exist only for the search to rank hier vs flat per size band.
func lowerNative(op string, t *Topo, sh Shape, s Strategy) (*DAG, error) {
	n := t.Ranks()
	total := sh.BlockBytes
	d := &DAG{Op: op, Ranks: n}
	prev := -1
	emit := func(pr Prim) {
		if prev >= 0 {
			pr.Deps = []int{prev}
		}
		d.Prims = append(d.Prims, pr)
		prev = len(d.Prims) - 1
	}
	ringPhases := func(group []int, bytes int64, rounds int, reduce bool) {
		for p := 0; p < rounds; p++ {
			pr := Prim{Kind: Shuffle, Group: group}
			for i, r := range group {
				q := group[(i+1)%len(group)]
				pr.Moves = append(pr.Moves, Move{From: r, To: q,
					SrcBuf: RecvBuf, DstBuf: RecvBuf, Bytes: bytes,
					Reduce: reduce, Staged: true})
			}
			emit(pr)
		}
	}
	treePhases := func(group []int, root int, bytes int64, toRoot bool) {
		// Binomial over the group: log2 levels of halving/doubling fans.
		for dist := 1; dist < len(group); dist *= 2 {
			pr := Prim{Kind: Multicast, Group: group, Root: root}
			if toRoot {
				pr.Kind = Reduce
			}
			for i := 0; i+dist < len(group); i += 2 * dist {
				a, b := group[i], group[i+dist]
				if toRoot {
					pr.Moves = append(pr.Moves, Move{From: b, To: a,
						SrcBuf: RecvBuf, DstBuf: RecvBuf, Bytes: bytes,
						Reduce: true, Staged: true})
				} else {
					pr.Moves = append(pr.Moves, Move{From: a, To: b,
						SrcBuf: RecvBuf, DstBuf: RecvBuf, Bytes: bytes, Staged: true})
				}
			}
			emit(pr)
		}
	}
	all := allRanks(n)
	switch s.Native {
	case "flat":
		switch op {
		case "allreduce":
			if n > 1 {
				ringPhases(all, total/int64(n), n-1, true)
				ringPhases(all, total/int64(n), n-1, false)
			}
		case "bcast":
			treePhases(all, 0, total, false)
		case "allgather":
			ringPhases(all, total, n-1, false)
		case "reducescatter":
			ringPhases(all, total, n-1, true)
		default:
			return nil, fmt.Errorf("comp: no native lowering for %q", op)
		}
	case "hier":
		nodes := t.nodes()
		var leaders []int
		for _, nd := range nodes {
			g := groupRanks(t, nd)
			leaders = append(leaders, g[0])
			switch op {
			case "allreduce", "reducescatter":
				treePhases(g, g[0], total, true)
			case "allgather":
				treePhases(g, g[0], total, true) // fan-in of local blocks
			}
		}
		m := len(leaders)
		if m > 1 {
			switch op {
			case "allreduce":
				ringPhases(leaders, total/int64(m), m-1, true)
				ringPhases(leaders, total/int64(m), m-1, false)
			case "bcast", "allgather", "reducescatter":
				ringPhases(leaders, total/int64(m), m-1, op == "reducescatter")
			}
		}
		for _, nd := range nodes {
			g := groupRanks(t, nd)
			switch op {
			case "allreduce", "bcast", "allgather":
				treePhases(g, g[0], total, false)
			}
		}
	default:
		return nil, fmt.Errorf("comp: unknown native family %q", s.Native)
	}
	if len(d.Prims) == 0 {
		emit(Prim{Kind: Fence, Group: all})
	}
	return d, nil
}

func allRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Keys returns the canonical candidate keys for op on the topology —
// the sweep surface omb.Tune measures.
func Keys(op string, t *Topo) []string {
	cands := Candidates(op, t)
	out := make([]string, 0, len(cands))
	for _, s := range cands {
		out = append(out, s.Key())
	}
	sort.Strings(out)
	return out
}
