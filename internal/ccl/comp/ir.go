// Package comp is the compositional collective compiler: a primitive IR
// (multicast / reduce / shuffle / fence steps over rank groups with
// chunking and striping attributes), a lowering from every collective —
// including the send-recv-synthesized ones (Alltoall(v), Scatter, Gather)
// — into a primitive DAG, and an α–β cost model that searches
// decompositions against the machine hierarchy and emits an executable
// schedule (a Plan of fence-separated move phases).
//
// The package is machine-agnostic and dependency-free: the ccl layer
// extracts a Topo from its fabric and executes the emitted Plan through
// its existing engine/sender processes; internal/core persists winning
// plan keys in version-3 tuning tables.
//
// IR grammar (one primitive per DAG node):
//
//	prim     := multicast | reduce | shuffle | fence
//	multicast: root ∈ group sends distinct or identical blocks to every
//	           member (Scatter fan-out, Bcast relay, leader fan-in/out)
//	reduce   : every member combines its block into root (ReduceOp moves)
//	shuffle  : a bipartite block permutation between two rank groups
//	           (Alltoall phases, leader exchanges)
//	fence    : a cross-group barrier ordering the prims depending on it
//
// Attributes: Stripe splits a prim's inter-node flows across w concurrent
// sub-flows (multi-rail saturation when a lone transfer's DirChannels cap
// is below the NIC pool), ChunkBytes sets the pipeline granularity, and
// the derived pipeline depth is Stripe × ⌈bytes/ChunkBytes⌉ in-flight
// chunks. Scheduling linearizes the DAG into fence-separated phases whose
// moves execute concurrently.
package comp

import (
	"fmt"
	"sort"
)

// PrimKind enumerates the IR primitives.
type PrimKind int

const (
	// Multicast distributes blocks from Root to the group.
	Multicast PrimKind = iota
	// Reduce combines the group's blocks into Root.
	Reduce
	// Shuffle permutes blocks between ranks (bipartite exchange).
	Shuffle
	// Fence orders dependents after every move of the prims it depends on.
	Fence
)

// String names the primitive kind.
func (k PrimKind) String() string {
	switch k {
	case Multicast:
		return "multicast"
	case Reduce:
		return "reduce"
	case Shuffle:
		return "shuffle"
	case Fence:
		return "fence"
	}
	return fmt.Sprintf("prim(%d)", int(k))
}

// BufRole says which buffer of a rank a move offset indexes.
type BufRole int

const (
	// SendBuf is the rank's user send buffer.
	SendBuf BufRole = iota
	// RecvBuf is the rank's user receive buffer.
	RecvBuf
	// ScratchBuf is per-rank compiler-allocated staging space.
	ScratchBuf
)

// Move is one concrete block movement: Bytes bytes from From's SrcBuf at
// SrcOff into To's DstBuf at DstOff. From == To models a local copy.
// Reduce moves combine into the destination with the call's reduction
// operator; they require staged transport (the executor ships them through
// scratch pipes and reduces on arrival). Staged forces pipe transport for
// non-reducing moves too — the MSCCL interpreter compiles to staged moves
// so converted schedules keep their exact flow control.
type Move struct {
	From, To       int
	SrcBuf, DstBuf BufRole
	SrcOff, DstOff int64
	Bytes          int64
	// SrcBytes overrides the byte count shipped from the source when it
	// differs from the destination chunk (uneven MSCCL partitions); zero
	// means Bytes.
	SrcBytes int64
	Reduce   bool
	Staged   bool
	// Lane stripes concurrent sub-flows: the executor runs one sender
	// process per (destination, lane), so moves on distinct lanes to the
	// same peer proceed in parallel.
	Lane int
}

// srcLen is the byte count shipped from the source.
func (m *Move) srcLen() int64 {
	if m.SrcBytes != 0 {
		return m.SrcBytes
	}
	return m.Bytes
}

// SrcLen is the byte count shipped from the source (Bytes unless
// overridden by SrcBytes).
func (m *Move) SrcLen() int64 { return m.srcLen() }

// Prim is one IR node: a primitive over a rank group with chunking and
// striping attributes, lowered to concrete moves, plus DAG dependencies
// (indices into the owning DAG's node list).
type Prim struct {
	Kind       PrimKind
	Group      []int // participating ranks (world ranks)
	Root       int   // multicast source / reduce destination
	Stripe     int   // concurrent inter-node sub-flows (0/1 = unstriped)
	ChunkBytes int64 // pipeline granularity (0 = whole-block)
	Moves      []Move
	Deps       []int
}

// DAG is a compiled primitive graph for one collective call shape.
type DAG struct {
	Op    string
	Ranks int
	Prims []Prim
}

// Validate checks the DAG's structural consistency: endpoint ranks in
// range, dependency indices acyclic (deps must point at earlier prims —
// lowerings emit nodes in topological order), and reduce moves staged.
func (d *DAG) Validate() error {
	for i, pr := range d.Prims {
		for _, dep := range pr.Deps {
			if dep < 0 || dep >= i {
				return fmt.Errorf("comp: %s dag prim %d: dep %d not an earlier prim", d.Op, i, dep)
			}
		}
		for mi, m := range pr.Moves {
			if m.From < 0 || m.From >= d.Ranks || m.To < 0 || m.To >= d.Ranks {
				return fmt.Errorf("comp: %s dag prim %d move %d: endpoints %d->%d out of %d ranks",
					d.Op, i, mi, m.From, m.To, d.Ranks)
			}
			if m.Bytes < 0 || m.SrcOff < 0 || m.DstOff < 0 {
				return fmt.Errorf("comp: %s dag prim %d move %d: negative size or offset", d.Op, i, mi)
			}
			if m.Reduce && !m.Staged {
				return fmt.Errorf("comp: %s dag prim %d move %d: reduce move must be staged", d.Op, i, mi)
			}
		}
	}
	return nil
}

// Phase is one fence-separated schedule step: its moves may proceed
// concurrently; every move completes before the next phase starts.
type Phase struct {
	Moves []Move
}

// Plan is the executable schedule emitted for one collective call shape:
// fence-separated phases of concrete moves, per-rank scratch requirements,
// and the modeled cost the search ranked it by (virtual seconds).
type Plan struct {
	Op    string
	Key   string // strategy key, persisted in v3 tuning tables
	Ranks int
	// Phases execute in order. With Fenced set, a cross-rank barrier
	// separates them (permutation schedules need clean phase separation to
	// keep egress/ingress pools 1:1). Unfenced plans order phases per rank
	// only — cross-rank ordering comes from data dependencies, which lets
	// chunked rounds pipeline across the hierarchy exactly like the MSCCL
	// interpreter's steps.
	Phases []Phase
	// Fenced requests a global barrier between phases.
	Fenced bool
	// ChunkBytes overrides the fabric pipeline granularity (0 = default).
	ChunkBytes int64
	// StageOf classifies each phase for pipelined costing (same length as
	// Phases when PipeDepth > 1): phases of the same stage class share a
	// resource and serialize; different classes overlap across rounds.
	StageOf []int
	// PipeDepth is the chunked round count (1 = unpipelined).
	PipeDepth int
	// Native delegates execution to a built-in algorithm family
	// ("hier", "flat") instead of the phase list; the phases then exist
	// only for the cost model.
	Native string
	// Scratch is the staging bytes each rank must provide (nil = none).
	Scratch []int64
	// Cost is the α–β model's estimate for the whole plan.
	Cost float64

	rankProgs []*RankProgram // lazy per-rank split (single-threaded use)
}

// Schedule linearizes the DAG into a Plan: prims are levelled by their
// dependency depth (every prim lands one level after its deepest dep), a
// fence between levels orders the phases, and each level's moves merge in
// prim order. Fence prims contribute ordering only.
func (d *DAG) Schedule(key string) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	level := make([]int, len(d.Prims))
	max := 0
	for i, pr := range d.Prims {
		l := 0
		for _, dep := range pr.Deps {
			if level[dep]+1 > l {
				l = level[dep] + 1
			}
		}
		level[i] = l
		if l > max {
			max = l
		}
	}
	p := &Plan{Op: d.Op, Key: key, Ranks: d.Ranks, Phases: make([]Phase, max+1)}
	scratch := make([]int64, d.Ranks)
	var hasScratch bool
	for i, pr := range d.Prims {
		ph := &p.Phases[level[i]]
		for _, m := range pr.Moves {
			ph.Moves = append(ph.Moves, m)
			for _, end := range [2]struct {
				rank int
				role BufRole
				off  int64
			}{{m.From, m.SrcBuf, m.SrcOff + m.Bytes}, {m.To, m.DstBuf, m.DstOff + m.Bytes}} {
				if end.role == ScratchBuf && end.off > scratch[end.rank] {
					scratch[end.rank] = end.off
					hasScratch = true
				}
			}
		}
	}
	if hasScratch {
		p.Scratch = scratch
	}
	// Drop empty trailing/interior phases (pure-fence levels).
	kept := p.Phases[:0]
	for _, ph := range p.Phases {
		if len(ph.Moves) > 0 {
			kept = append(kept, ph)
		}
	}
	p.Phases = kept
	return p, nil
}

// Dest identifies one sender process: a destination rank plus a stripe
// lane. The executor runs each Dest's moves in order on one process.
type Dest struct {
	To, Lane int
}

// RankPhase is one rank's slice of a phase: the moves it originates
// (grouped per (destination, lane) in first-appearance order, preserving
// per-pair FIFO) and the moves it receives.
type RankPhase struct {
	Outs  []Move
	Dests []Dest // distinct (destination, lane) pairs, in first-out order
	Ins   []Move
}

// RankProgram is one rank's executable slice of a Plan.
type RankProgram struct {
	Phases []RankPhase
}

// Rank splits the plan into one rank's program (memoized; plans are
// confined to one simulated world, which is cooperatively scheduled).
// Self moves (From == To) appear in Outs only — the executor performs
// them as local copies.
func (p *Plan) Rank(r int) *RankProgram {
	if p.rankProgs == nil {
		p.rankProgs = make([]*RankProgram, p.Ranks)
	}
	if p.rankProgs[r] != nil {
		return p.rankProgs[r]
	}
	rp := &RankProgram{Phases: make([]RankPhase, len(p.Phases))}
	for pi, ph := range p.Phases {
		dst := &rp.Phases[pi]
		seen := map[Dest]bool{}
		for _, m := range ph.Moves {
			if m.From == r {
				dst.Outs = append(dst.Outs, m)
				if k := (Dest{m.To, m.Lane}); m.To != r && !seen[k] {
					seen[k] = true
					dst.Dests = append(dst.Dests, k)
				}
			}
			if m.To == r && m.From != r {
				dst.Ins = append(dst.Ins, m)
			}
		}
	}
	p.rankProgs[r] = rp
	return rp
}

// groupRanks returns the sorted distinct ranks of a node-grouped world.
func groupRanks(t *Topo, node int) []int {
	var g []int
	for r, n := range t.NodeOf {
		if n == node {
			g = append(g, r)
		}
	}
	sort.Ints(g)
	return g
}
