package comp

import "sort"

// Topo is the machine description the cost model prices plans against:
// the rank→node map from the cached hierarchy plan plus the α–β link
// parameters the fabric charges. All rates are bytes per virtual second,
// all latencies virtual seconds.
type Topo struct {
	NodeOf []int // rank → dense node index
	Nodes  int

	// Intra-node link (per device pair): α, per-channel rate, the
	// per-direction channel cap one transfer may drive, and the duplex
	// pool total.
	IntraAlpha   float64
	IntraChanBW  float64
	IntraDirCh   int
	IntraTotalCh int

	// Inter-node link (per node egress/ingress pool): same parameters;
	// TotalCh is the pool size every flow leaving (entering) a node
	// shares.
	InterAlpha   float64
	InterChanBW  float64
	InterDirCh   int
	InterTotalCh int

	// Launch is the per-collective kernel launch latency, Step the
	// per-schedule-step cost, both charged once resp. per phase.
	Launch float64
	Step   float64

	// InterPenalty scales inter-node transfer time (backend-specific).
	InterPenalty float64

	// Channels caps how many channels one transfer requests (ccl config).
	Channels int
}

// Ranks returns the world size described by the topo.
func (t *Topo) Ranks() int { return len(t.NodeOf) }

// perFlowCap is the rate one transfer can drive on a link given the
// per-direction cap and the configured channel request.
func perFlowCap(chanBW float64, dirCh, cfgCh int) float64 {
	ch := dirCh
	if cfgCh > 0 && cfgCh < ch {
		ch = cfgCh
	}
	if ch < 1 {
		ch = 1
	}
	return float64(ch) * chanBW
}

// holCoeff calibrates the head-of-line convoy penalty: when the flows
// sharing an egress pool target ingress pools that are themselves fed by
// x other egress pools, a flow parked FIFO on a busy ingress keeps
// holding its egress grant, idling the NIC. Measured on the 4-node
// ThetaGPU alltoall (every ingress fed by 3 other egresses): observed
// 1.48× the saturation floor, i.e. utilization ≈ 1/(1+0.16·3).
const holCoeff = 0.16

// PhaseCost prices one phase: the bottleneck pool's drain time under the
// head-of-line utilization model, plus one α per serialized message on
// the critical path and the per-phase step cost.
func (t *Topo) PhaseCost(moves []Move) float64 {
	if len(moves) == 0 {
		return 0
	}
	type pool struct {
		bytes   float64
		flows   int
		targets map[int]bool // dst nodes (egress) / src nodes (ingress)
	}
	egress := map[int]*pool{}
	ingress := map[int]*pool{}
	intraBytes := map[int]float64{} // per device: local-link bytes moved
	get := func(m map[int]*pool, k int) *pool {
		p := m[k]
		if p == nil {
			p = &pool{targets: map[int]bool{}}
			m[k] = p
		}
		return p
	}
	// Serialized messages per (src,dst) pair: α charges per message on a
	// FIFO pair queue, and concurrent pairs overlap, so the α term is the
	// deepest pair queue.
	pairMsgs := map[[2]int]int{}
	maxPair := 0
	interSeen := false
	for _, m := range moves {
		if m.Bytes == 0 {
			continue
		}
		sn, dn := t.NodeOf[m.From], t.NodeOf[m.To]
		pairMsgs[[2]int{m.From, m.To}]++
		if pairMsgs[[2]int{m.From, m.To}] > maxPair {
			maxPair = pairMsgs[[2]int{m.From, m.To}]
		}
		if m.From == m.To {
			continue // local copy: negligible next to link time
		}
		if sn == dn {
			intraBytes[m.From] += float64(m.Bytes)
			intraBytes[m.To] += float64(m.Bytes)
			continue
		}
		interSeen = true
		e := get(egress, sn)
		e.bytes += float64(m.Bytes)
		e.flows++
		e.targets[dn] = true
		in := get(ingress, dn)
		in.bytes += float64(m.Bytes)
		in.flows++
		in.targets[sn] = true
	}
	// Cross-feed count per ingress pool: how many egress pools feed it.
	feeders := map[int]int{}
	for dn, p := range ingress {
		feeders[dn] = len(p.targets)
	}
	interCap := float64(t.InterTotalCh) * t.InterChanBW
	flowCap := perFlowCap(t.InterChanBW, t.InterDirCh, t.Channels)
	var worst float64
	for sn, p := range egress {
		// Convoy exposure: flows from this egress parked on ingress pools
		// that other egresses also feed.
		cross := 0
		for dn := range p.targets {
			if n := feeders[dn]; n > 1 {
				if n-1 > cross {
					cross = n - 1
				}
			}
		}
		util := 1.0 / (1.0 + holCoeff*float64(cross))
		rate := float64(p.flows) * flowCap
		if rate > interCap {
			rate = interCap
		}
		rate *= util
		if d := p.bytes / rate; d > worst {
			worst = d
		}
		_ = sn
	}
	for _, p := range ingress {
		rate := float64(p.flows) * flowCap
		if rate > interCap {
			rate = interCap
		}
		if d := p.bytes / rate; d > worst {
			worst = d
		}
	}
	worst *= t.InterPenalty
	intraFlowCap := perFlowCap(t.IntraChanBW, t.IntraDirCh, t.Channels)
	for _, b := range intraBytes {
		// Each endpoint device sees the sum of its local-link traffic.
		if d := b / intraFlowCap; d > worst {
			worst = d
		}
	}
	alpha := t.IntraAlpha
	if interSeen {
		alpha = t.InterAlpha * t.InterPenalty
	}
	return worst + alpha*float64(maxPair) + t.Step
}

// PlanCost prices a whole plan: launch once, then the phases. Fenced (or
// unpipelined) plans serialize every phase. Pipelined plans overlap their
// stage classes across rounds — the classic pipeline bound: the bottleneck
// stage runs end to end, and each other stage is exposed only for its
// first round (total/D).
func (t *Topo) PlanCost(p *Plan) float64 {
	c := t.Launch
	if p.PipeDepth > 1 && len(p.StageOf) == len(p.Phases) {
		totals := map[int]float64{}
		for i, ph := range p.Phases {
			totals[p.StageOf[i]] += t.PhaseCost(ph.Moves)
		}
		var bottleneck, rest float64
		for _, tot := range totals {
			if tot > bottleneck {
				bottleneck, rest = tot, rest+bottleneck
			} else {
				rest += tot
			}
		}
		return c + bottleneck + rest/float64(p.PipeDepth)
	}
	for _, ph := range p.Phases {
		c += t.PhaseCost(ph.Moves)
	}
	return c
}

// nodesOf returns the sorted distinct node ids present in the topo.
func (t *Topo) nodes() []int {
	seen := map[int]bool{}
	var out []int
	for _, n := range t.NodeOf {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}
