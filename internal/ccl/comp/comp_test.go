package comp

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// thetaTopo builds an m-node × g-GPU ThetaGPU-like topology (the Fig6
// machine the benchmarks use): NVLink3 intra, IBHDR inter.
func thetaTopo(m, g int) *Topo {
	nodeOf := make([]int, m*g)
	for r := range nodeOf {
		nodeOf[r] = r / g
	}
	return &Topo{
		NodeOf: nodeOf, Nodes: m,
		IntraAlpha: 1800e-9, IntraChanBW: 11.42e9, IntraDirCh: 12, IntraTotalCh: 16,
		InterAlpha: 2500e-9, InterChanBW: 4.55e9, InterDirCh: 4, InterTotalCh: 6,
		Launch: 20e-6, Step: 1200e-9, InterPenalty: 1.0, Channels: 12,
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	keys := []string{
		"direct",
		"direct:chunk=1048576",
		"phased",
		"phased:chunk=2097152",
		"staged:intra=flat,stripe=2,depth=4",
		"staged:intra=tree,stripe=1,depth=1",
		"staged:intra=flat,stripe=4,depth=2,chunk=524288",
		"native:hier",
		"native:flat",
	}
	for _, k := range keys {
		s, err := ParseKey(k)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k, err)
		}
		if got := s.Key(); got != k {
			t.Fatalf("round trip %q -> %q", k, got)
		}
	}
	bad := []string{
		"", "ring", "direct:stripe=2", "staged:intra=star,stripe=1,depth=1",
		"staged:intra=tree,stripe=1,depth=2", "native:ring", "phased:chunk=0",
		"phased:chunk=x",
	}
	for _, k := range bad {
		if _, err := ParseKey(k); err == nil {
			t.Fatalf("ParseKey(%q): want error", k)
		}
	}
}

func TestValidKey(t *testing.T) {
	cases := []struct {
		op, key string
		ok      bool
	}{
		{"alltoall", "direct", true},
		{"alltoall", "phased:chunk=1048576", true},
		{"alltoall", "staged:intra=flat,stripe=1,depth=1", false},
		{"alltoall", "native:hier", false},
		{"alltoallv", "phased", true},
		{"scatter", "staged:intra=tree,stripe=2,depth=1", true},
		{"gather", "staged:intra=flat,stripe=4,depth=4", true},
		{"gather", "native:flat", false},
		{"allreduce", "native:hier", true},
		{"allreduce", "direct", false},
		{"bcast", "native:flat", true},
		{"frobnicate", "direct", false},
	}
	for _, c := range cases {
		err := ValidKey(c.op, c.key)
		if (err == nil) != c.ok {
			t.Fatalf("ValidKey(%s, %s) = %v, want ok=%v", c.op, c.key, err, c.ok)
		}
	}
}

// byteMap flattens a plan into the set of (src rank/buf/off -> dst
// rank/buf/off) byte mappings, collapsing scratch relays: a byte is traced
// from its original user-buffer source through any scratch hops to its
// final user-buffer destination, phase order respected.
func byteMap(t *testing.T, p *Plan) map[string]string {
	t.Helper()
	// owner[rank][scratchOff] = original source coordinate.
	type coord struct {
		rank int
		buf  BufRole
		off  int64
	}
	scratch := map[coord]coord{} // scratch byte -> origin byte
	out := map[string]string{}
	key := func(c coord) string { return fmt.Sprintf("r%d/b%d/%d", c.rank, c.buf, c.off) }
	for _, ph := range p.Phases {
		for _, m := range ph.Moves {
			for b := int64(0); b < m.Bytes; b++ {
				src := coord{m.From, m.SrcBuf, m.SrcOff + b}
				if m.SrcBuf == ScratchBuf {
					if o, ok := scratch[src]; ok {
						src = o
					} else {
						t.Fatalf("move reads scratch byte %v before any write", src)
					}
				}
				dst := coord{m.To, m.DstBuf, m.DstOff + b}
				if m.DstBuf == ScratchBuf {
					scratch[dst] = src
				} else {
					out[key(dst)] = key(src)
				}
			}
		}
	}
	return out
}

// TestLoweringsEquivalent: every strategy of an op induces the same
// user-buffer byte mapping as the direct lowering, on several shapes
// including 1-node degeneration and a root off rank 0.
func TestLoweringsEquivalent(t *testing.T) {
	shapes := []struct {
		name string
		topo *Topo
	}{
		{"1node", thetaTopo(1, 4)},
		{"2x2", thetaTopo(2, 2)},
		{"4x3", thetaTopo(4, 3)},
	}
	const blk = 16
	for _, sh := range shapes {
		for _, op := range []string{"alltoall", "scatter", "gather"} {
			root := 0
			if sh.topo.Ranks() > 2 {
				root = 2 // off node 0 on the 4x3 shape
			}
			shape := Shape{BlockBytes: blk, Root: root}
			var ref map[string]string
			for _, s := range Candidates(op, sh.topo) {
				p, err := Lower(op, sh.topo, shape, s)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", sh.name, op, s.Key(), err)
				}
				got := byteMap(t, p)
				if ref == nil {
					ref = got
					if len(ref) == 0 {
						t.Fatalf("%s/%s/%s: empty byte map", sh.name, op, s.Key())
					}
					continue
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s/%s: strategy %s maps bytes differently from direct (%d vs %d entries)",
						sh.name, op, s.Key(), len(got), len(ref))
				}
			}
		}
	}
}

func TestScheduleLevelsAndScratch(t *testing.T) {
	topo := thetaTopo(2, 2)
	p, err := Lower("scatter", topo, Shape{BlockBytes: 64, Root: 0},
		Strategy{Name: "staged", Intra: "flat", Stripe: 1, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("staged scatter depth=1: want 2 phases, got %d", len(p.Phases))
	}
	if p.Scratch == nil || p.Scratch[2] != 2*64 {
		t.Fatalf("leader rank 2 wants 128B scratch, got %v", p.Scratch)
	}
	if p.Scratch[0] != 0 || p.Scratch[1] != 0 {
		t.Fatalf("non-leader scratch should be 0, got %v", p.Scratch)
	}
}

func TestRankProgramSplit(t *testing.T) {
	topo := thetaTopo(2, 2)
	p, err := Lower("alltoall", topo, Shape{BlockBytes: 8}, Strategy{Name: "direct"})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		rp := p.Rank(r)
		if len(rp.Phases) != 1 {
			t.Fatalf("rank %d: want 1 phase, got %d", r, len(rp.Phases))
		}
		ph := rp.Phases[0]
		if len(ph.Outs) != 4 || len(ph.Ins) != 3 || len(ph.Dests) != 3 {
			t.Fatalf("rank %d: outs=%d ins=%d dests=%d, want 4/3/3",
				r, len(ph.Outs), len(ph.Ins), len(ph.Dests))
		}
		for _, d := range ph.Dests {
			if d.To == r {
				t.Fatalf("rank %d: self move leaked into Dests", r)
			}
		}
	}
}

func TestPairPhaseCoversAllPairs(t *testing.T) {
	topo := thetaTopo(4, 2)
	s := Strategy{Name: "phased"}
	if n := NumPhases(topo, s); n != 3 {
		t.Fatalf("NumPhases = %d, want 3", n)
	}
	// Within a phase, each node pair is a permutation: every node sends to
	// exactly one other node (plus phase-0 self traffic).
	for p := 0; p < 3; p++ {
		egressTo := map[int]map[int]bool{}
		for from := 0; from < topo.Ranks(); from++ {
			for to := 0; to < topo.Ranks(); to++ {
				if PairPhase(topo, s, from, to) != p {
					continue
				}
				sn, dn := topo.NodeOf[from], topo.NodeOf[to]
				if sn == dn {
					if p != 0 {
						t.Fatalf("intra traffic in phase %d", p)
					}
					continue
				}
				if egressTo[sn] == nil {
					egressTo[sn] = map[int]bool{}
				}
				egressTo[sn][dn] = true
			}
		}
		for sn, tos := range egressTo {
			if len(tos) != 1 {
				t.Fatalf("phase %d: node %d egresses to %d nodes, want 1", p, sn, len(tos))
			}
		}
	}
}

// TestSearchPrefersPhased: on the 4-node Fig6 shape the HOL model must
// rank the phased permutation schedule ahead of the direct shuffle at
// large sizes, and collapse to direct on 1 node and 2 nodes.
func TestSearchPrefersPhased(t *testing.T) {
	big := Shape{BlockBytes: 4 << 20}
	p4, err := Search("alltoall", thetaTopo(4, 2), big)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustParse(t, p4.Key).Name; got != "phased" {
		t.Fatalf("4-node 4MB alltoall: want phased, got %s", p4.Key)
	}
	p1, err := Search("alltoall", thetaTopo(1, 4), big)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Key != "direct" {
		t.Fatalf("1-node alltoall: want direct, got %s", p1.Key)
	}
	p2, err := Search("alltoall", thetaTopo(2, 2), big)
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes: one ingress per egress already — no convoy, direct is at
	// the saturation floor and phased only adds fences.
	if p2.Key != "direct" {
		t.Fatalf("2-node alltoall: want direct, got %s", p2.Key)
	}
}

func TestSearchDeterministic(t *testing.T) {
	topo := thetaTopo(4, 3)
	for _, op := range []string{"alltoall", "scatter", "gather", "allreduce", "bcast"} {
		a, err := Search(op, topo, Shape{BlockBytes: 1 << 20, Root: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Search(op, topo, Shape{BlockBytes: 1 << 20, Root: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Key != b.Key || a.Cost != b.Cost {
			t.Fatalf("%s: search not deterministic: %s/%g vs %s/%g", op, a.Key, a.Cost, b.Key, b.Cost)
		}
	}
}

func TestNativeLoweringsCost(t *testing.T) {
	topo := thetaTopo(4, 2)
	for _, op := range []string{"allreduce", "bcast", "allgather", "reducescatter"} {
		p, err := Search(op, topo, Shape{BlockBytes: 8 << 20})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if p.Native == "" {
			t.Fatalf("%s: want a native plan, got %s", op, p.Key)
		}
		if p.Cost <= 0 {
			t.Fatalf("%s: non-positive cost %g", op, p.Cost)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	ks := Keys("scatter", thetaTopo(2, 4))
	if len(ks) < 3 {
		t.Fatalf("scatter candidate keys: got %v", ks)
	}
	if !sort.StringsAreSorted(ks) {
		t.Fatalf("keys not sorted: %v", ks)
	}
}

func TestValidateRejects(t *testing.T) {
	d := &DAG{Op: "x", Ranks: 2, Prims: []Prim{
		{Kind: Shuffle, Moves: []Move{{From: 0, To: 5, Bytes: 1}}},
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range endpoint not rejected")
	}
	d = &DAG{Op: "x", Ranks: 2, Prims: []Prim{
		{Kind: Shuffle, Deps: []int{0}},
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("self dep not rejected")
	}
	d = &DAG{Op: "x", Ranks: 2, Prims: []Prim{
		{Kind: Reduce, Moves: []Move{{From: 0, To: 1, Bytes: 1, Reduce: true}}},
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("unstaged reduce move not rejected")
	}
}

func mustParse(t *testing.T, key string) Strategy {
	t.Helper()
	s, err := ParseKey(key)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", key, err)
	}
	return s
}
