package ccl

// Persistent collectives: the MPI-4 MPI_Allreduce_init analogue at the CCL
// layer. AllReduceInit performs everything a one-shot AllReduce pays per
// call — argument validation, plan (schedule family) selection, op-state
// and scratch-pipe setup, helper-process creation — exactly once, and
// returns a handle whose Start/Wait execute the pre-built schedule with
// zero steady-state heap allocations:
//
//   - the stream work item and its completion event are reused
//     (device.PersistentTask + sim.Event.Reset);
//   - sub-buffer views and segment-bound tables are memoized per handle, so
//     the offsets a wave touches are materialized once during the first
//     (warm-up) wave;
//   - asynchronous ring puts run on a resident sender daemon recycling one
//     completion latch (persistSender), replacing the per-step process
//     spawn of the one-shot path;
//   - the hierarchical leader's inter-node engine is a resident daemon fed
//     through a reusable chunk queue, with per-chunk done events Reset each
//     wave.
//
// Partitioned readiness (MPI_Pready analogue): a handle built with
// AllReduceInitPartitioned gates the schedule on per-partition readiness
// tokens, so an application can overlap filling the payload (backprop
// producing gradient partitions) with the collective. The hierarchical
// schedule maps partitions onto its pipeline chunks: the intra-node
// reduction of partition k starts as soon as Pready(k) lands, and the
// inter-node leader ring consumes partitions as they arrive. Flat schedules
// (tree, ring) run whole-payload and simply wait for all partitions.

import (
	"fmt"

	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// sliceKey identifies one memoized sub-buffer view.
type sliceKey struct {
	buf    *device.Buffer
	off, n int64
}

// persistState carries one rank-handle's schedule caches and hooks, shared
// by every process executing part of that handle (stream task, resident
// sender, inter-node engine). The simulation is cooperatively scheduled, so
// the maps need no locking.
type persistState struct {
	slices map[sliceKey]*device.Buffer
	bounds map[[2]int][]int
	gate   *partGate      // nil unless the handle is partitioned
	eng    *persistEngine // nil unless this rank is a hierarchical leader
	// reps memoizes hierBroadcast's root-substituted representative group
	// (allocated on the first wave when the root is not its node's leader).
	reps []int
	// fwd is the hierarchical allgather leader's resident block-set
	// forwarder (nil elsewhere).
	fwd *persistForwarder
}

// slice returns a view of b[off, off+n), memoized on the persistent
// schedule: a wave touches the same offsets every time, so the views built
// during the warm-up wave make the steady state allocation-free. One-shot
// contexts (nil pers) build views directly.
func (rc *runCtx) slice(b *device.Buffer, off, n int64) *device.Buffer {
	ps := rc.pers
	if ps == nil {
		return b.Slice(off, n)
	}
	k := sliceKey{buf: b, off: off, n: n}
	if s, ok := ps.slices[k]; ok {
		return s
	}
	s := b.Slice(off, n)
	ps.slices[k] = s
	return s
}

// segs is segBounds with the same persistent-schedule memoization.
func (rc *runCtx) segs(count, n int) []int {
	ps := rc.pers
	if ps == nil {
		return segBounds(count, n)
	}
	k := [2]int{count, n}
	if b, ok := ps.bounds[k]; ok {
		return b
	}
	b := segBounds(count, n)
	ps.bounds[k] = b
	return b
}

// gate returns the partition gate of a partitioned persistent schedule, or
// nil on one-shot and non-partitioned paths.
func (rc *runCtx) gate() *partGate {
	if rc.pers == nil {
		return nil
	}
	return rc.pers.gate
}

// partGate tracks which payload partitions the application has marked ready
// in the current wave. Readiness tokens buffer in the channel, so Pready
// may run before the schedule starts consuming, and in any order.
type partGate struct {
	n    int
	ch   *sim.Chan[int]
	sent []bool // producer side: partitions marked ready this wave
	seen []bool // consumer side: partitions the schedule has observed
	left int    // partitions not yet observed this wave
}

func newPartGate(k *sim.Kernel, n int) *partGate {
	return &partGate{n: n, ch: sim.NewChan[int](k, n),
		sent: make([]bool, n), seen: make([]bool, n), left: n}
}

func (g *partGate) reset() {
	for i := range g.sent {
		g.sent[i] = false
		g.seen[i] = false
	}
	g.left = g.n
}

// waitPart blocks until partition ck has been marked ready, recording any
// other partitions whose tokens arrive first.
func (rc *runCtx) waitPart(ck int) {
	g := rc.gate()
	if g == nil || ck >= g.n {
		return
	}
	for !g.seen[ck] {
		i := g.ch.Recv(rc.p)
		if !g.seen[i] {
			g.seen[i] = true
			g.left--
		}
	}
}

// waitAllParts drains the gate until every partition has been marked ready:
// the whole-payload gate of the flat schedules, and the end-of-phase drain
// that keeps the channel empty across waves.
func (rc *runCtx) waitAllParts() {
	g := rc.gate()
	if g == nil {
		return
	}
	for g.left > 0 {
		i := g.ch.Recv(rc.p)
		if !g.seen[i] {
			g.seen[i] = true
			g.left--
		}
	}
}

// stageChunk waits for chunk ck's partition and stages it from the send
// buffer into the accumulation buffer. Only the partition-gated hierarchical
// schedule stages per chunk; everywhere else the gate is nil and the payload
// was staged whole before the first chunk.
func (rc *runCtx) stageChunk(a *opArgs, off, bytes int64, ck int) {
	if rc.gate() == nil {
		return
	}
	rc.waitPart(ck)
	rc.localCopy(rc.slice(a.recv, off, bytes), rc.slice(a.send, off, bytes), bytes)
}

// putJob is one asynchronous put order for a resident sender.
type putJob struct {
	to           int
	src          *device.Buffer
	n, slotBytes int64
}

// persistSender is a resident helper process performing the asynchronous
// puts of one executing process of a persistent schedule: putAsync posts a
// job and returns the recycled completion latch instead of spawning a fresh
// helper (and latch) per ring step. At most one job is outstanding at a
// time — every ring schedule waits a step's send before issuing the next.
type persistSender struct {
	jobs *sim.Chan[putJob]
	done *sim.Counter
}

func newPersistSender(co *core, st *opState, rank int, ps *persistState, name string) *persistSender {
	k := co.fab.Kernel()
	sn := &persistSender{jobs: sim.NewChan[putJob](k, 1), done: sim.NewCounter(k, 0)}
	rc := &runCtx{co: co, st: st, rank: rank, pers: ps}
	k.SpawnDaemon(name, func(p *sim.Proc) {
		rc.p = p
		for {
			j := sn.jobs.Recv(p)
			rc.put(j.to, j.src, j.n, j.slotBytes)
			sn.done.Done()
		}
	})
	return sn
}

func (sn *persistSender) post(to int, src *device.Buffer, n, slotBytes int64) *sim.Counter {
	sn.done.Reset(1)
	sn.jobs.TrySend(putJob{to: to, src: src, n: n, slotBytes: slotBytes})
	return sn.done
}

// persistEngine is a hierarchical leader's resident inter-node engine: the
// chunk queue and per-chunk completion events hierAllReduce reuses every
// wave instead of rebuilding per call.
type persistEngine struct {
	ready *sim.Chan[int]
	done  []*sim.Event
}

// persistForwarder is a resident helper running one preset send routine
// per posted job — the hierarchical allgather leader's per-step block-set
// forwarding — replacing the per-step process (and latch) spawn of the
// one-shot path. At most one job is outstanding at a time.
type persistForwarder struct {
	jobs *sim.Chan[int]
	done *sim.Counter
}

func newPersistForwarder(co *core, st *opState, rank int, ps *persistState,
	name string, run func(rc *runCtx, job int)) *persistForwarder {
	k := co.fab.Kernel()
	fw := &persistForwarder{jobs: sim.NewChan[int](k, 1), done: sim.NewCounter(k, 0)}
	rc := &runCtx{co: co, st: st, rank: rank, pers: ps}
	k.SpawnDaemon(name, func(p *sim.Proc) {
		rc.p = p
		for {
			j := fw.jobs.Recv(p)
			run(rc, j)
			fw.done.Done()
		}
	})
	return fw
}

func (fw *persistForwarder) post(job int) *sim.Counter {
	fw.done.Reset(1)
	fw.jobs.TrySend(job)
	return fw.done
}

// persistShared is the cross-rank Init rendezvous record: the i-th
// persistent Init of every rank joins the same shared op state. Ranks must
// create persistent ops in the same order, like collectives themselves,
// and the i-th Init must be the same collective kind on every rank.
type persistShared struct {
	st     *opState
	kind   string
	count  int
	dt     Datatype
	op     RedOp
	parts  int
	root   int
	joined int
}

// persistJoin runs the cross-rank Init rendezvous for the caller's next
// persistent op, validating argument agreement across ranks.
func (c *Comm) persistJoin(kind string, count int, dt Datatype, op RedOp, parts, root int) (*persistShared, int, error) {
	co := c.core
	id := c.pseq
	c.pseq++
	ps, ok := co.persist[id]
	if !ok {
		ps = &persistShared{
			st: &opState{
				seq:   -(id + 1), // outside the one-shot sequence space
				args:  make([]*opArgs, co.n),
				start: sim.NewBarrier(co.fab.Kernel(), co.n),
				pipes: make(map[[2]int]*pipe),
			},
			kind: kind, count: count, dt: dt, op: op, parts: parts, root: root,
		}
		co.persist[id] = ps
	} else if ps.kind != kind || ps.count != count || ps.dt != dt || ps.op != op ||
		ps.parts != parts || ps.root != root {
		return nil, 0, &Error{Backend: co.cfg.Name, Result: ErrInvalidArgument, Op: kind + "-init",
			Rank: c.rank, Msg: fmt.Sprintf("persistent op #%d: mismatched arguments across ranks", id)}
	}
	ps.joined++
	if ps.joined == co.n {
		delete(co.persist, id) // rendezvous complete; state lives in the handles
	}
	return ps, id, nil
}

// persistStartWait runs a wave's start rendezvous under the collective
// watchdog; false means the wave was judged dead and the verdict raised.
func (c *Comm) persistStartWait(rc *runCtx, st *opState, op string) bool {
	co := c.core
	if co.watchdog > 0 {
		if st.aborted || !st.start.WaitTimeout(rc.p, co.watchdog) {
			st.aborted = true
			c.raiseAsync(co.deadVerdict(op, rc.p.Now()))
			return false
		}
	} else {
		st.start.Wait(rc.p)
	}
	return true
}

// PersistentColl is one rank's handle on a persistent collective. The
// state machine is Init → (Start → [Pready…] → Wait)* → Free: Start
// launches the pre-built schedule on the stream without blocking, Pready
// marks payload partitions ready (partitioned handles only), Wait blocks
// until the wave completes and surfaces this rank's failure verdict.
// A handle whose wave was judged dead by the collective watchdog is broken
// permanently — every later wave fails with the same verdict — and the
// application must rebuild it on a repaired communicator (see the elastic
// training loop in internal/dl).
type PersistentColl struct {
	c     *Comm
	st    *opState
	task  *device.PersistentTask
	pers  *persistState
	algo  Algorithm
	op    string // collective kind, for fault-hook probes and task names
	parts int
	ev    *sim.Event // completion event of the wave in flight
	freed bool
}

// AllReduceInit builds a persistent allreduce handle over the given
// buffers: plan selection (tree / flat ring / hierarchical, honoring
// SetAlgorithm and the backend's size split), validation, and helper
// process setup happen here, exactly once. Custom MSCCL schedules are not
// eligible for persistence. Every rank must call Init with consistent
// arguments and in the same handle order.
func (c *Comm) AllReduceInit(send, recv *device.Buffer, count int, dt Datatype, op RedOp, s *device.Stream) (*PersistentColl, error) {
	return c.AllReduceInitPartitioned(send, recv, count, dt, op, 1, s)
}

// AllReduceInitPartitioned is AllReduceInit with the send payload split
// into parts contiguous element ranges whose readiness the application
// signals per wave with Pready. parts is clamped to count (at most one
// element per partition); parts = 1 behaves like AllReduceInit.
func (c *Comm) AllReduceInitPartitioned(send, recv *device.Buffer, count int, dt Datatype, op RedOp, parts int, s *device.Stream) (*PersistentColl, error) {
	co := c.core
	if err := c.validateArgs("allreduce", send, recv, count, dt, &op, 0); err != nil {
		return nil, err
	}
	if parts < 1 {
		return nil, &Error{Backend: co.cfg.Name, Result: ErrInvalidArgument, Op: "allreduce-init",
			Rank: c.rank, Msg: "partitions must be >= 1"}
	}
	if parts > count {
		parts = count
	}
	if parts < 1 {
		parts = 1 // count == 0
	}

	// Init rendezvous: the i-th Init of every rank joins one shared state.
	ps, id, err := c.persistJoin("allreduce", count, dt, op, parts, 0)
	if err != nil {
		return nil, err
	}
	st := ps.st
	st.args[c.rank] = &opArgs{send: send, recv: recv, count: count} // owned by the handle, never pooled

	// Plan selection, once: the forced family (SetAlgorithm, fed by the
	// tuning table) or the backend's built-in size-based split.
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	algo, chunk := c.resolveAlgo(count)
	if algo == AlgoAuto {
		if bytes <= co.cfg.TreeThreshold || count < co.n {
			algo = AlgoTree
		} else {
			algo = AlgoFlatRing
		}
	}
	if algo == AlgoHierarchical && parts > 1 {
		// Align the pipeline chunk with the partitions so the leader ring
		// consumes partitions as the application marks them ready.
		chunk = int64((count+parts-1)/parts) * esz
	}

	k := co.fab.Kernel()
	pstate := &persistState{
		slices: make(map[sliceKey]*device.Buffer),
		bounds: make(map[[2]int][]int),
	}
	if parts > 1 {
		pstate.gate = newPartGate(k, parts)
	}
	rcMain := &runCtx{co: co, st: st, rank: c.rank, pers: pstate}
	if algo == AlgoFlatRing && co.n > 1 {
		rcMain.sender = newPersistSender(co, st, c.rank, pstate,
			fmt.Sprintf("%s/persist%d/sender/r%d", co.cfg.Name, id, c.rank))
	}
	if algo == AlgoHierarchical {
		hp := co.hier()
		if hp.localIdx[c.rank] == 0 && len(hp.leaders) > 1 {
			ce := int(chunk / esz)
			if ce < 1 {
				ce = 1
			}
			nchunks := (count + ce - 1) / ce
			eng := &persistEngine{
				ready: sim.NewChan[int](k, nchunks+1),
				done:  make([]*sim.Event, nchunks),
			}
			for i := range eng.done {
				eng.done[i] = sim.NewEvent(k)
			}
			pstate.eng = eng
			rcEng := &runCtx{co: co, st: st, rank: c.rank, pers: pstate}
			rcEng.sender = newPersistSender(co, st, c.rank, pstate,
				fmt.Sprintf("%s/persist%d/hier/sender/r%d", co.cfg.Name, id, c.rank))
			hpl, dtl, opl := hp, dt, op
			k.SpawnDaemon(fmt.Sprintf("%s/persist%d/hier/engine/r%d", co.cfg.Name, id, c.rank), func(p *sim.Proc) {
				rcEng.p = p
				for {
					ck := eng.ready.Recv(p)
					rcEng.hierInterAllReduce(hpl, dtl, opl, count, ce, ck)
					eng.done[ck].Fire()
				}
			})
		}
	}

	pc := &PersistentColl{c: c, st: st, pers: pstate, algo: algo, op: "allreduce", parts: parts}
	name := fmt.Sprintf("%s/allreduce-persist%d/r%d", co.cfg.Name, id, c.rank)
	chunkArg := chunk
	pc.task = s.NewPersistentTask(name, func(p *sim.Proc) {
		rcMain.p = p
		c.delay(p, "allreduce")
		rcMain.launch(bytes)
		if !c.persistStartWait(rcMain, st, "allreduce") {
			return
		}
		a := st.args[c.rank]
		if co.n == 1 {
			rcMain.waitAllParts()
			rcMain.localCopy(a.recv, a.send, bytes)
			return
		}
		switch algo {
		case AlgoHierarchical:
			rcMain.hierAllReduce(dt, op, count, chunkArg)
		case AlgoTree:
			rcMain.waitAllParts()
			rcMain.treeAllReduce(dt, op, count)
		default:
			rcMain.waitAllParts()
			rcMain.ringAllReduce(dt, op, count)
		}
		if st.abortErr != nil {
			// A wave transfer crossed a network cut: the shared verdict
			// voids every rank's result for this wave (and the handle —
			// the persistent op state is permanent, so the owner rebuilds
			// after the membership layer shrinks or regrows).
			c.raiseAsync(st.abortErr)
		}
	})
	return pc, nil
}

// BcastInit builds a persistent broadcast handle (the MPI_Bcast_init
// analogue): validation, schedule selection (binomial tree, or the chunked
// hierarchical fan-out when forced on a multi-node shape), and scratch-pipe
// setup run once; steady-state waves replay the schedule allocation-free.
// Every rank must call Init with consistent arguments and in the same
// handle order. Broadcast handles are not partitionable (only the root
// produces payload).
func (c *Comm) BcastInit(send, recv *device.Buffer, count int, dt Datatype, root int, s *device.Stream) (*PersistentColl, error) {
	co := c.core
	if err := c.validateArgs("broadcast", send, recv, count, dt, nil, root); err != nil {
		return nil, err
	}
	ps, id, err := c.persistJoin("broadcast", count, dt, Sum, 1, root)
	if err != nil {
		return nil, err
	}
	st := ps.st
	st.args[c.rank] = &opArgs{send: send, recv: recv, count: count, root: root}

	bytes := int64(count) * int64(dt.Size())
	algo, chunk := c.resolveAlgo(count)
	if algo != AlgoHierarchical {
		algo = AlgoTree // broadcast's flat schedule is always the binomial tree
	}
	pstate := &persistState{
		slices: make(map[sliceKey]*device.Buffer),
		bounds: make(map[[2]int][]int),
	}
	rcMain := &runCtx{co: co, st: st, rank: c.rank, pers: pstate}
	pc := &PersistentColl{c: c, st: st, pers: pstate, algo: algo, op: "broadcast", parts: 1}
	pc.task = s.NewPersistentTask(fmt.Sprintf("%s/broadcast-persist%d/r%d", co.cfg.Name, id, c.rank),
		func(p *sim.Proc) {
			rcMain.p = p
			c.delay(p, "broadcast")
			rcMain.launch(bytes)
			if !c.persistStartWait(rcMain, st, "broadcast") {
				return
			}
			if algo == AlgoHierarchical && co.n > 1 {
				rcMain.hierBroadcast(dt, count, root, chunk)
			} else {
				rcMain.treeBroadcast(dt, count, root)
			}
			if st.abortErr != nil {
				c.raiseAsync(st.abortErr)
			}
		})
	return pc, nil
}

// AllgatherInit builds a persistent allgather handle (MPI_Allgather_init):
// the block ring, or the hierarchical leader-ring schedule when forced on a
// multi-node shape. The ring's asynchronous block forwarding runs on a
// resident sender daemon, and a hierarchical leader's per-step block-set
// sends run on a resident forwarder, so steady-state waves spawn no
// processes and allocate nothing.
func (c *Comm) AllgatherInit(send, recv *device.Buffer, count int, dt Datatype, s *device.Stream) (*PersistentColl, error) {
	co := c.core
	if err := c.validateArgs("allgather", send, nil, count, dt, nil, 0); err != nil {
		return nil, err
	}
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	if recv.Len() < bytes*int64(co.n) {
		return nil, &Error{Backend: co.cfg.Name, Result: ErrInvalidArgument, Op: "allgather-init",
			Rank: c.rank, Msg: "allgather recv buffer too small"}
	}
	ps, id, err := c.persistJoin("allgather", count, dt, Sum, 1, 0)
	if err != nil {
		return nil, err
	}
	st := ps.st
	st.args[c.rank] = &opArgs{send: send, recv: recv, count: count}

	algo, chunk := c.resolveAlgo(count)
	if algo != AlgoHierarchical {
		algo = AlgoFlatRing // allgather's flat schedule is the block ring
	}
	pstate := &persistState{
		slices: make(map[sliceKey]*device.Buffer),
		bounds: make(map[[2]int][]int),
	}
	rcMain := &runCtx{co: co, st: st, rank: c.rank, pers: pstate}
	if algo == AlgoFlatRing && co.n > 1 {
		rcMain.sender = newPersistSender(co, st, c.rank, pstate,
			fmt.Sprintf("%s/persist%d/sender/r%d", co.cfg.Name, id, c.rank))
	}
	if algo == AlgoHierarchical {
		hp := co.hier()
		if hp.localIdx[c.rank] == 0 && len(hp.leaders) > 1 {
			// Resident phase-B forwarder: per step, ship one node's
			// block-set to the right-hand leader (hierAllGather posts the
			// source node index as the job).
			blk := bytes
			pstate.fwd = newPersistForwarder(co, st, c.rank, pstate,
				fmt.Sprintf("%s/persist%d/hier/fwd/r%d", co.cfg.Name, id, c.rank),
				func(rc *runCtx, srcNode int) {
					right := hp.leaders[(hp.nodeIdx[rc.rank]+1)%len(hp.leaders)]
					for _, r := range hp.locals[srcNode] {
						rc.putDirect(right, rc.slice(rc.st.args[right].recv, int64(r)*blk, blk),
							rc.slice(rc.st.args[rc.rank].recv, int64(r)*blk, blk), blk)
					}
				})
		}
	}
	pc := &PersistentColl{c: c, st: st, pers: pstate, algo: algo, op: "allgather", parts: 1}
	pc.task = s.NewPersistentTask(fmt.Sprintf("%s/allgather-persist%d/r%d", co.cfg.Name, id, c.rank),
		func(p *sim.Proc) {
			rcMain.p = p
			c.delay(p, "allgather")
			rcMain.launch(bytes)
			if !c.persistStartWait(rcMain, st, "allgather") {
				return
			}
			if algo == AlgoHierarchical && co.n > 1 {
				rcMain.hierAllGather(dt, count, chunk)
			} else {
				rcMain.ringAllGather(dt, count)
			}
			if st.abortErr != nil {
				c.raiseAsync(st.abortErr)
			}
		})
	return pc, nil
}

// Start launches one execution of the pre-built schedule on the stream
// without blocking. The previous execution must have been Waited. Fault
// hooks are probed per Start, exactly as per one-shot call: a fail-stopped
// rank's Start fails fast with ErrRankDead and never joins the wave its
// surviving peers will time out on.
func (pc *PersistentColl) Start() error {
	if err := pc.c.inject(pc.op); err != nil {
		return err
	}
	if g := pc.pers.gate; g != nil {
		g.reset()
	}
	pc.ev = pc.task.Launch()
	return nil
}

// Pready marks partition k of the send buffer ready for the wave in flight
// (MPI_Pready). Valid only between Start and Wait, once per partition per
// wave; non-partitioned handles ignore it (the whole payload is implicitly
// ready at Start).
func (pc *PersistentColl) Pready(k int) {
	g := pc.pers.gate
	if g == nil {
		return
	}
	if k < 0 || k >= g.n {
		panic(fmt.Sprintf("ccl: Pready(%d) on a %d-partition persistent op", k, g.n))
	}
	if g.sent[k] {
		panic(fmt.Sprintf("ccl: Pready(%d) called twice in one wave", k))
	}
	g.sent[k] = true
	if !g.ch.TrySend(k) {
		panic("ccl: partition gate overflow")
	}
}

// PreadyAll marks every partition of the wave in flight ready.
func (pc *PersistentColl) PreadyAll() {
	if pc.pers.gate == nil {
		return
	}
	for k := 0; k < pc.parts; k++ {
		pc.Pready(k)
	}
}

// Wait blocks p until the launched execution completes and returns this
// rank's failure verdict for it (nil on success). A watchdog abort lets the
// stream task complete, so the verdict is only visible here — the same
// contract as Stream.Synchronize + TakeAsyncErr on the one-shot path.
func (pc *PersistentColl) Wait(p *sim.Proc) error {
	if pc.ev != nil {
		pc.ev.Wait(p)
	}
	return pc.c.TakeAsyncErr()
}

// Do runs one complete execution: Start, every partition ready, Wait. With
// pre-filled buffers it is bytewise equivalent to a one-shot AllReduce.
func (pc *PersistentColl) Do(p *sim.Proc) error {
	if err := pc.Start(); err != nil {
		return err
	}
	pc.PreadyAll()
	return pc.Wait(p)
}

// Parts reports the partition count (1 for a plain persistent op).
func (pc *PersistentColl) Parts() int { return pc.parts }

// PlannedAlgorithm reports the schedule family Init selected.
func (pc *PersistentColl) PlannedAlgorithm() Algorithm { return pc.algo }

// Free releases the handle's scratch pipes once every rank handle has
// called it, after the final Wait. The resident helper processes are
// daemons: they stay parked on their empty queues and do not keep the
// simulation alive. A freed handle must not be Started again.
func (pc *PersistentColl) Free() {
	if pc.freed {
		return
	}
	pc.freed = true
	pc.st.done++
	if pc.st.done == pc.c.core.n {
		for _, pp := range pc.st.pipes {
			for _, s := range pp.slots {
				s.Free()
			}
		}
		pc.st.pipes = nil
	}
}
