// Package hccl models the Habana Collective Communications Library:
// Habana's NCCL-compatible API for Gaudi HPUs, built on the accelerator's
// on-chip RoCE-v2 NICs (SynapseAI suite). Calibrated to the paper's
// Voyager measurements: 270 µs launch overhead, ~3 GB/s intra-node
// bandwidth, float-only datatype support (§3.2), and step-curve latency
// degradations as payloads cross the RoCE descriptor inlining limits at
// 16 B and 64 B (§4.3: 7×–12× on multi-node collectives).
package hccl

import (
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
)

// Version is the HCCL (SynapseAI) release modeled.
const Version = "1.11"

// Config returns HCCL's personality.
func Config() ccl.Config {
	return ccl.Config{
		Name:  "hccl-" + Version,
		Kinds: []device.Kind{device.HabanaHPU},
		// "HCCL only supports float currently" (§3.2).
		Datatypes: map[ccl.Datatype]bool{ccl.Float32: true},
		Ops: map[ccl.RedOp]bool{
			ccl.Sum: true, ccl.Prod: true, ccl.Max: true, ccl.Min: true,
		},
		Launch:         270 * time.Microsecond,
		StepCost:       4 * time.Microsecond,
		Channels:       3,
		ChunkBytes:     256 << 10,
		HierChunkBytes: 512 << 10,
		TreeThreshold:  64 << 10,
		// RoCE work-request descriptors inline payloads up to 16 B; up to
		// 64 B they ride a single WQE with a doorbell; beyond that the
		// transport sets up a registered-buffer RDMA — each boundary adds
		// a visible latency step on every algorithm hop.
		StepOverheads: []ccl.SizeOverhead{
			{Threshold: 17, Extra: 700 * time.Microsecond, DecayBytes: 256},
			{Threshold: 65, Extra: 2200 * time.Microsecond, DecayBytes: 256},
		},
		// Voyager's early HCCL builds lost substantial efficiency across
		// the Arista fabric (Fig 9b: 4-node scaling efficiency ≈55%).
		InterNodePenalty: 4.0,
	}
}

// New creates HCCL communicators over the devices.
func New(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, Config())
}
