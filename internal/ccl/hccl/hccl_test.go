package hccl

import (
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
)

func TestConfigPersonality(t *testing.T) {
	cfg := Config()
	if cfg.Launch != 270*time.Microsecond {
		t.Errorf("launch = %v, want 270µs (paper §4.2)", cfg.Launch)
	}
	if !cfg.SupportsKind(device.HabanaHPU) || cfg.SupportsKind(device.NvidiaGPU) {
		t.Error("HCCL must drive Habana HPUs only")
	}
	// §3.2: "HCCL only supports float currently".
	if !cfg.Datatypes[ccl.Float32] {
		t.Error("HCCL must support float32")
	}
	for _, dt := range []ccl.Datatype{ccl.Float64, ccl.Float16, ccl.Int32, ccl.Int64, ccl.Int8} {
		if cfg.Datatypes[dt] {
			t.Errorf("HCCL must not support %v", dt)
		}
	}
	if len(cfg.StepOverheads) != 2 {
		t.Fatalf("HCCL needs the 16B and 64B step overheads, got %d", len(cfg.StepOverheads))
	}
	if cfg.StepOverheads[0].Threshold != 17 || cfg.StepOverheads[1].Threshold != 65 {
		t.Errorf("step thresholds = %+v, want 17 and 65", cfg.StepOverheads)
	}
}
