package msccl

import (
	"strings"
	"testing"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

const sampleSchedule = `
# two-rank exchange-and-reduce
algo swap allreduce ranks=2 chunks=2 min=8 max=4096
step
xfer 0 1 0 0 reduce
xfer 1 0 1 1 reduce
step
xfer 0 1 1 1 copy
xfer 1 0 0 0 copy
`

func TestParseAlgo(t *testing.T) {
	a, err := ParseAlgo(sampleSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "swap" || a.Collective != "allreduce" || a.Ranks != 2 || a.NChunks != 2 {
		t.Fatalf("header = %+v", a)
	}
	if a.MinBytes != 8 || a.MaxBytes != 4096 {
		t.Fatalf("window = [%d,%d]", a.MinBytes, a.MaxBytes)
	}
	if len(a.Steps) != 2 || len(a.Steps[0].Xfers) != 2 {
		t.Fatalf("steps = %+v", a.Steps)
	}
	if a.Steps[0].Xfers[0].Kind != ccl.ReduceOp || a.Steps[1].Xfers[0].Kind != ccl.Copy {
		t.Fatal("kinds wrong")
	}
}

func TestParseAlgoErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "step\nxfer 0 1 0 0 copy\n",
		"xfer before step": "algo a allreduce ranks=2 chunks=1\nxfer 0 1 0 0 copy\n",
		"bad kind":         "algo a allreduce ranks=2 chunks=1\nstep\nxfer 0 1 0 0 smear\n",
		"bad attr":         "algo a allreduce ranks=two chunks=1\n",
		"unknown attr":     "algo a allreduce ranks=2 chunks=1 colour=3\n",
		"bad directive":    "algo a allreduce ranks=2 chunks=1\nfrobnicate\n",
		"short xfer":       "algo a allreduce ranks=2 chunks=1\nstep\nxfer 0 1 0\n",
		"dup header":       "algo a allreduce ranks=2 chunks=1\nalgo b allreduce ranks=2 chunks=1\n",
		"invalid endpoint": "algo a allreduce ranks=2 chunks=1\nstep\nxfer 0 9 0 0 copy\n",
		"empty":            "",
	}
	for name, text := range cases {
		if _, err := ParseAlgo(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFormatAlgoRoundTrip(t *testing.T) {
	orig := ccl.AllPairsAllReduce(4, 256, 1<<20)
	text := FormatAlgo(orig)
	back, err := ParseAlgo(text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if FormatAlgo(back) != text {
		t.Fatal("round trip not stable")
	}
	if back.Ranks != orig.Ranks || len(back.Steps) != len(orig.Steps) {
		t.Fatal("round trip lost structure")
	}
}

func TestStats(t *testing.T) {
	out := Stats(ccl.AllPairsAllReduce(4, 0, 0))
	if !strings.Contains(out, "2 steps, 24 transfers") {
		t.Fatalf("stats = %q", out)
	}
	if !strings.Contains(out, "rank 0 sends 6 chunks") {
		t.Fatalf("stats = %q", out)
	}
}

// The generated ring schedule must produce identical results to the
// built-in ring implementation (interpreter validation).
func TestRingScheduleMatchesBuiltin(t *testing.T) {
	const n = 6
	const count = 1200 // divisible into 6 chunks of 200
	run := func(algo *ccl.Algo) []float32 {
		k := sim.NewKernel()
		sys := topology.ThetaGPU(k, 1)
		fab := fabric.New(k, sys)
		comms, err := NewPlain(fab, sys.Devices()[:n])
		if err != nil {
			t.Fatal(err)
		}
		if algo != nil {
			if err := comms[0].RegisterAlgo(algo); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float32, n)
		for r, cc := range comms {
			r, cc := r, cc
			k.Spawn("rank", func(p *sim.Proc) {
				s := cc.Device().NewStream()
				send := cc.Device().MustMalloc(count * 4)
				recv := cc.Device().MustMalloc(count * 4)
				for i := 0; i < count; i++ {
					send.SetFloat32(i, float32(r+1)*float32(i%13))
				}
				if err := cc.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
					t.Errorf("allreduce: %v", err)
				}
				s.Synchronize(p)
				out[r] = recv.Float32(777)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	builtin := run(nil)
	ring := run(RingAllReduce(n, 1, 1<<30))
	for r := range builtin {
		if builtin[r] != ring[r] {
			t.Fatalf("rank %d: builtin %v != ring schedule %v", r, builtin[r], ring[r])
		}
	}
}

// A parsed schedule must execute correctly end to end.
func TestParsedScheduleExecutes(t *testing.T) {
	a, err := ParseAlgo(sampleSchedule)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := topology.ThetaGPU(k, 1)
	fab := fabric.New(k, sys)
	comms, err := NewPlain(fab, sys.Devices()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if err := comms[0].RegisterAlgo(a); err != nil {
		t.Fatal(err)
	}
	const count = 512 // 2 KB: inside the window
	results := make([]float32, 2)
	for r, cc := range comms {
		r, cc := r, cc
		k.Spawn("rank", func(p *sim.Proc) {
			s := cc.Device().NewStream()
			send := cc.Device().MustMalloc(count * 4)
			recv := cc.Device().MustMalloc(count * 4)
			send.FillFloat32(float32(r + 1))
			if err := cc.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
				t.Errorf("allreduce: %v", err)
			}
			s.Synchronize(p)
			results[r] = recv.Float32(100)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 3 {
			t.Fatalf("rank %d = %v, want 3", r, v)
		}
	}
}
