package msccl

import (
	"testing"
	"time"

	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

func TestConfigEmbedsLegacyNCCL(t *testing.T) {
	cfg := Config()
	if cfg.Launch != 28*time.Microsecond {
		t.Errorf("launch = %v, want 28µs (paper §4.2)", cfg.Launch)
	}
	if cfg.Channels != 10 {
		t.Errorf("channels = %d, want the NCCL 2.12 budget of 10", cfg.Channels)
	}
	if BackendVersion != "2.12.12" {
		t.Errorf("backend version = %s, want 2.12.12", BackendVersion)
	}
}

func TestNewRegistersAllpairs(t *testing.T) {
	k := sim.NewKernel()
	sys := topology.ThetaGPU(k, 1)
	fab := fabric.New(k, sys)
	comms, err := New(fab, sys.Devices())
	if err != nil {
		t.Fatal(err)
	}
	algos := comms[0].Algos()
	if len(algos) != 1 || algos[0].Name != "allpairs" {
		t.Fatalf("algos = %v", algos)
	}
	if !algos[0].Matches("allreduce", 8, 4096) {
		t.Error("allpairs should cover 4KB allreduce on 8 ranks")
	}
	if algos[0].Matches("allreduce", 8, 1<<20) {
		t.Error("allpairs should not cover 1MB")
	}
	plain, err := NewPlain(fab, sys.Devices())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain[0].Algos()) != 0 {
		t.Error("NewPlain must not register schedules")
	}
}

func TestSingleDeviceCommHasNoAlgo(t *testing.T) {
	k := sim.NewKernel()
	sys := topology.ThetaGPU(k, 1)
	fab := fabric.New(k, sys)
	comms, err := New(fab, sys.Devices()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(comms[0].Algos()) != 0 {
		t.Error("1-rank communicator should skip allpairs registration")
	}
}
