package msccl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mpixccl/internal/ccl"
)

// Text format for custom collective schedules — the stand-in for MSCCL's
// XML algorithm files. A schedule reads:
//
//	# comment
//	algo allpairs allreduce ranks=8 chunks=8 min=256 max=262144
//	step
//	xfer 0 1 1 1 reduce
//	xfer 0 2 2 2 reduce
//	step
//	xfer 1 0 1 1 copy
//
// "algo" opens the header (name, collective, rank/chunk counts, optional
// size window); each "step" opens a set of concurrent transfers; "xfer"
// lines are FROM TO SRCCHUNK DSTCHUNK copy|reduce.

// ParseAlgo parses the text format into a validated schedule.
func ParseAlgo(text string) (*ccl.Algo, error) {
	var a *ccl.Algo
	var cur *ccl.Step
	flush := func() {
		if a != nil && cur != nil {
			a.Steps = append(a.Steps, *cur)
			cur = nil
		}
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "algo":
			if a != nil {
				return nil, fmt.Errorf("msccl: line %d: duplicate algo header", ln+1)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("msccl: line %d: algo needs name and collective", ln+1)
			}
			a = &ccl.Algo{Name: fields[1], Collective: fields[2]}
			for _, kv := range fields[3:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("msccl: line %d: bad attribute %q", ln+1, kv)
				}
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("msccl: line %d: %q: %v", ln+1, kv, err)
				}
				switch key {
				case "ranks":
					a.Ranks = int(n)
				case "chunks":
					a.NChunks = int(n)
				case "min":
					a.MinBytes = n
				case "max":
					a.MaxBytes = n
				default:
					return nil, fmt.Errorf("msccl: line %d: unknown attribute %q", ln+1, key)
				}
			}
		case "step":
			if a == nil {
				return nil, fmt.Errorf("msccl: line %d: step before algo header", ln+1)
			}
			flush()
			cur = &ccl.Step{}
		case "xfer":
			if cur == nil {
				return nil, fmt.Errorf("msccl: line %d: xfer outside a step", ln+1)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("msccl: line %d: xfer needs FROM TO SRC DST KIND", ln+1)
			}
			var nums [4]int
			for i := 0; i < 4; i++ {
				n, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("msccl: line %d: %v", ln+1, err)
				}
				nums[i] = n
			}
			var kind ccl.XferKind
			switch fields[5] {
			case "copy":
				kind = ccl.Copy
			case "reduce":
				kind = ccl.ReduceOp
			default:
				return nil, fmt.Errorf("msccl: line %d: unknown kind %q", ln+1, fields[5])
			}
			cur.Xfers = append(cur.Xfers, ccl.ChunkXfer{
				From: nums[0], To: nums[1], SrcChunk: nums[2], DstChunk: nums[3], Kind: kind,
			})
		default:
			return nil, fmt.Errorf("msccl: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if a == nil {
		return nil, fmt.Errorf("msccl: no algo header found")
	}
	flush()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// FormatAlgo serializes a schedule back to the text format (ParseAlgo's
// inverse).
func FormatAlgo(a *ccl.Algo) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "algo %s %s ranks=%d chunks=%d", a.Name, a.Collective, a.Ranks, a.NChunks)
	if a.MinBytes > 0 {
		fmt.Fprintf(&sb, " min=%d", a.MinBytes)
	}
	if a.MaxBytes > 0 {
		fmt.Fprintf(&sb, " max=%d", a.MaxBytes)
	}
	sb.WriteString("\n")
	for _, step := range a.Steps {
		sb.WriteString("step\n")
		for _, x := range step.Xfers {
			kind := "copy"
			if x.Kind == ccl.ReduceOp {
				kind = "reduce"
			}
			fmt.Fprintf(&sb, "xfer %d %d %d %d %s\n", x.From, x.To, x.SrcChunk, x.DstChunk, kind)
		}
	}
	return sb.String()
}

// RingAllReduce generates a ring allreduce as an explicit schedule:
// n−1 reduce-scatter steps followed by n−1 allgather steps, chunk-per-rank.
// It exists so the interpreter can be validated against the built-in ring
// and so users have a second generator to crib from.
func RingAllReduce(n int, minBytes, maxBytes int64) *ccl.Algo {
	a := &ccl.Algo{
		Name: "ring", Collective: "allreduce",
		Ranks: n, NChunks: n, MinBytes: minBytes, MaxBytes: maxBytes,
	}
	for step := 0; step < n-1; step++ { // reduce-scatter
		var s ccl.Step
		for r := 0; r < n; r++ {
			src := (r - step - 1 + 2*n) % n
			s.Xfers = append(s.Xfers, ccl.ChunkXfer{
				From: r, To: (r + 1) % n, SrcChunk: src, DstChunk: src, Kind: ccl.ReduceOp,
			})
		}
		a.Steps = append(a.Steps, s)
	}
	for step := 0; step < n-1; step++ { // allgather
		var s ccl.Step
		for r := 0; r < n; r++ {
			src := (r - step + n) % n
			s.Xfers = append(s.Xfers, ccl.ChunkXfer{
				From: r, To: (r + 1) % n, SrcChunk: src, DstChunk: src, Kind: ccl.Copy,
			})
		}
		a.Steps = append(a.Steps, s)
	}
	return a
}

// Stats summarizes a schedule for profiling output: steps, transfers, and
// per-rank send counts (MSCCL's profiling hooks expose the same shape).
func Stats(a *ccl.Algo) string {
	sends := make(map[int]int)
	total := 0
	for _, s := range a.Steps {
		for _, x := range s.Xfers {
			sends[x.From]++
			total++
		}
	}
	ranks := make([]int, 0, len(sends))
	for r := range sends {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var sb strings.Builder
	fmt.Fprintf(&sb, "algo %s: %d steps, %d transfers\n", a.Name, len(a.Steps), total)
	for _, r := range ranks {
		fmt.Fprintf(&sb, "  rank %d sends %d chunks\n", r, sends[r])
	}
	return sb.String()
}
