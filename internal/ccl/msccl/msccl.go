// Package msccl models the Microsoft Collective Communication Library: an
// inter-accelerator framework that embeds an NCCL backend (2.12.12 in the
// paper's setup) and adds programmable custom collective algorithms. New
// communicators come with the "allpairs" allreduce schedule registered for
// the medium-message window (256 B – 256 KB), which is where the paper
// measures MSCCL beating its own NCCL backend (Fig 5d).
package msccl

import (
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
)

// Version is the MSCCL release modeled.
const Version = "0.7"

// BackendVersion is the NCCL release MSCCL embeds.
const BackendVersion = nccl.LegacyVersion

// CustomMinBytes and CustomMaxBytes bound the payload window the built-in
// allpairs schedule covers.
const (
	CustomMinBytes = 256
	CustomMaxBytes = 256 << 10
)

// Config returns MSCCL's personality: the embedded legacy NCCL with
// MSCCL's own launch path on top.
func Config() ccl.Config {
	cfg := nccl.VersionConfig(BackendVersion)
	cfg.Name = "msccl-" + Version
	cfg.Launch = 28 * time.Microsecond
	return cfg
}

// New creates MSCCL communicators with the default custom schedules
// registered.
func New(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	comms, err := ccl.NewComms(fab, devs, Config())
	if err != nil {
		return nil, err
	}
	if len(devs) > 1 {
		algo := ccl.AllPairsAllReduce(len(devs), CustomMinBytes, CustomMaxBytes)
		if err := comms[0].RegisterAlgo(algo); err != nil {
			return nil, err
		}
	}
	return comms, nil
}

// NewPlain creates MSCCL communicators without any custom schedule (pure
// embedded-NCCL behaviour), for ablation benchmarks.
func NewPlain(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, Config())
}
