package ccl

import (
	"errors"
	"fmt"
	"time"

	"mpixccl/internal/ccl/comp"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/sim"
)

// core is the state shared by all rank handles of one communicator.
type core struct {
	cfg      Config
	fab      *fabric.Fabric
	devs     []*device.Device
	n        int
	faults   Injector        // nil = no injection
	failStop fabric.FailStop // nil = no fail-stop crashes
	watchdog time.Duration   // 0 = collective watchdog disarmed
	rankIDs  []int           // global identities for fault scoping; nil = local ranks

	ops     map[int]*opState
	p2pPost map[[2]int]*sim.Chan[*p2pSlot] // receiver-posted buffers per (src,dst)
	algos   []*Algo                        // registered custom schedules
	split   *splitState                    // in-flight CommSplit rendezvous
	reg     *metrics.Registry              // nil = no instrumentation
	chanCap int                            // 0 = no cap; see SetChannelCap

	// Capability sets flattened from cfg's maps at init: validate runs on
	// every operation of every rank, so the per-call map lookups are cached.
	dtOK [int(Float64) + 1]bool
	opOK [int(Min) + 1]bool

	putNames map[[2]int]string // memoized putAsync process names

	hierCache *hierPlan // lazily built node hierarchy (see hier.go)

	// Compiled-plan caches (see compiled.go): the cost-model topology, the
	// plans per (op, block, root, key) call shape, and the converted MSCCL
	// schedules per (algo, count, element size). Lazily built; safe without
	// locks under the cooperative scheduler.
	compTopoCache *comp.Topo
	compPlans     map[compPlanKey]*comp.Plan
	customPlans   map[customPlanKey]*customPlan

	// persist holds in-flight persistent-op Init rendezvous, keyed by each
	// rank's persistent-op ordinal (ranks must Init handles in the same
	// order; see persistent.go).
	persist map[int]*persistShared

	// Metric instruments resolved once at SetMetrics. The counting paths
	// below run per launch and per fabric transfer; resolving instruments
	// there would build a label map per call. All nil (method no-ops)
	// until a registry is wired.
	mLaunchColl  *metrics.Counter
	mLaunchP2P   *metrics.Counter
	mLaunchGroup *metrics.Counter
	mGroupCalls  *metrics.Counter
	mGroupFused  *metrics.Counter
	mXferBytes   *metrics.Counter

	// Free lists for the per-collective hot-path objects. Every collective
	// allocates one opArgs per rank and one runCtx per stream task (plus one
	// per putAsync helper); recycling them through the shared core keeps the
	// enqueue path's steady-state allocation rate flat. Safe without locks:
	// sim procs are serialized by the scheduler token.
	argsFree []*opArgs
	ctxFree  []*runCtx
}

// newArgs returns a recycled (or fresh) opArgs holding the call arguments.
func (co *core) newArgs(send, recv *device.Buffer, count, root int) *opArgs {
	if n := len(co.argsFree); n > 0 {
		a := co.argsFree[n-1]
		co.argsFree = co.argsFree[:n-1]
		*a = opArgs{send: send, recv: recv, count: count, root: root}
		return a
	}
	return &opArgs{send: send, recv: recv, count: count, root: root}
}

// getCtx returns a recycled (or fresh) runCtx for one process's part of a
// collective. Return it with putCtx when the process is done with it.
func (co *core) getCtx(st *opState, rank int, p *sim.Proc) *runCtx {
	if n := len(co.ctxFree); n > 0 {
		rc := co.ctxFree[n-1]
		co.ctxFree = co.ctxFree[:n-1]
		*rc = runCtx{co: co, st: st, rank: rank, p: p}
		return rc
	}
	return &runCtx{co: co, st: st, rank: rank, p: p}
}

func (co *core) putCtx(rc *runCtx) {
	*rc = runCtx{}
	co.ctxFree = append(co.ctxFree, rc)
}

// supportsDatatype is the cached form of cfg.Datatypes[dt].
func (co *core) supportsDatatype(dt Datatype) bool {
	if i := int(dt); i >= 0 && i < len(co.dtOK) {
		return co.dtOK[i]
	}
	return false
}

// supportsOp is the cached form of cfg.Ops[op].
func (co *core) supportsOp(op RedOp) bool {
	if i := int(op); i >= 0 && i < len(co.opOK) {
		return co.opOK[i]
	}
	return false
}

// putName memoizes the helper-process name for a (from, to) put, keeping
// fmt.Sprintf off the per-step spawn path of ring and tree algorithms.
func (co *core) putName(from, to int) string {
	key := [2]int{from, to}
	if n, ok := co.putNames[key]; ok {
		return n
	}
	n := fmt.Sprintf("%s/put/r%d-%d", co.cfg.Name, from, to)
	co.putNames[key] = n
	return n
}

// SetMetrics wires a registry into the communicator (shared by every rank
// handle): kernel-launch counts, group-call fusion sizes, and fabric
// transfer volume, labeled by backend. A nil registry disables
// instrumentation. Call before issuing operations.
func (c *Comm) SetMetrics(reg *metrics.Registry) {
	co := c.core
	co.reg = reg
	reg.Gauge("ccl_channels",
		"Fabric channels the backend drives per transfer (its configured budget).",
		metrics.Labels{"backend": co.cfg.Name}).Set(float64(co.cfg.Channels))
	lbl := metrics.Labels{"backend": co.cfg.Name}
	co.mLaunchColl = reg.Counter("ccl_launches_total",
		"Stream-task launches by kind (collective, p2p, group).",
		metrics.Labels{"backend": co.cfg.Name, "kind": "collective"})
	co.mLaunchP2P = reg.Counter("ccl_launches_total",
		"Stream-task launches by kind (collective, p2p, group).",
		metrics.Labels{"backend": co.cfg.Name, "kind": "p2p"})
	co.mLaunchGroup = reg.Counter("ccl_launches_total",
		"Stream-task launches by kind (collective, p2p, group).",
		metrics.Labels{"backend": co.cfg.Name, "kind": "group"})
	co.mGroupCalls = reg.Counter("ccl_group_calls_total",
		"GroupStart/GroupEnd fused submissions.", lbl)
	co.mGroupFused = reg.Counter("ccl_group_fused_ops_total",
		"Send/Recv operations fused into group submissions.", lbl)
	co.mXferBytes = reg.Counter("ccl_transfer_bytes_total",
		"Payload bytes moved over the fabric, per backend.", lbl)
}

// countLaunch records one stream-task launch: kind is "collective", "p2p",
// or "group" (a fused group pays one launch for all its operations — the
// advantage the fusion counter quantifies).
func (co *core) countLaunch(kind string) {
	switch kind {
	case "collective":
		co.mLaunchColl.Inc()
	case "p2p":
		co.mLaunchP2P.Inc()
	default:
		co.mLaunchGroup.Inc()
	}
}

// countGroup records one GroupEnd: n fused sends+recvs under one launch.
func (co *core) countGroup(n int) {
	co.mGroupCalls.Inc()
	co.mGroupFused.Add(float64(n))
}

// countXfer records payload bytes moved over the fabric on this
// communicator's behalf (scratch-pipeline hops included).
func (co *core) countXfer(bytes int64) {
	co.mXferBytes.Add(float64(bytes))
}

// Comm is one rank's handle on a CCL communicator (ncclComm_t analogue).
// All rank handles are created together by NewComms, matching
// ncclCommInitAll / the MPI-bootstrapped ncclCommInitRank flow.
type Comm struct {
	core  *core
	rank  int
	seq   int       // this rank's collective sequence number
	pseq  int       // this rank's persistent-op ordinal (Init rendezvous key)
	group *groupOps // non-nil between GroupStart and GroupEnd
	// asyncErr is a failure verdict raised inside this rank's stream task
	// (the collective watchdog firing on a dead peer), where the issuing
	// call has already returned. Callers collect it with TakeAsyncErr
	// after synchronizing the stream.
	asyncErr error
	// algo/algoChunk force a schedule family for this rank's collectives
	// (SetAlgorithm); the zero values keep the built-in size-based split.
	algo      Algorithm
	algoChunk int64
}

type groupOps struct {
	sends []p2pOp
	recvs []p2pOp
	// streams used by the grouped calls; GroupEnd enqueues on the first.
	stream *device.Stream
}

type p2pOp struct {
	peer  int
	buf   *device.Buffer
	bytes int64
}

type p2pSlot struct {
	buf   *device.Buffer
	bytes int64
	done  *sim.Event
}

// NewComms builds a communicator over the given devices and returns the
// per-rank handles. It validates that the backend can drive every device
// and consults the fault hook (explicit cfg.Faults, then the legacy
// InjectFailure flag, then any agent attached to the fabric) for an
// injected comm-init failure: if any rank's init is failed, the whole
// creation fails, as ncclCommInitAll would.
func NewComms(fab *fabric.Fabric, devs []*device.Device, cfg Config) ([]*Comm, error) {
	if len(devs) == 0 {
		return nil, &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Msg: "no devices"}
	}
	for _, d := range devs {
		if !cfg.SupportsKind(d.Kind) {
			return nil, &Error{Backend: cfg.Name, Result: ErrUnsupportedDevice,
				Msg: fmt.Sprintf("cannot drive %s", d)}
		}
	}
	inj := cfg.Faults
	if inj == nil && cfg.InjectFailure != Success {
		inj = StaticFailure(cfg.Name, cfg.InjectFailure)
	}
	if inj == nil && fab != nil {
		if a, ok := fab.Faults().(Injector); ok {
			inj = a
		}
	}
	if inj != nil {
		now := fab.Kernel().Now()
		for r := range devs {
			if err := inj.CommInitError(cfg.Name, r, now); err != nil {
				return nil, err
			}
		}
	}
	var fs fabric.FailStop
	if f, ok := inj.(fabric.FailStop); ok {
		fs = f
	} else if fab != nil {
		fs = fab.FailStop()
	}
	co := &core{
		cfg: cfg, fab: fab, devs: devs, n: len(devs), faults: inj, failStop: fs,
		ops:      make(map[int]*opState),
		p2pPost:  make(map[[2]int]*sim.Chan[*p2pSlot]),
		putNames: make(map[[2]int]string),
		persist:  make(map[int]*persistShared),
	}
	for dt, ok := range cfg.Datatypes {
		if i := int(dt); i >= 0 && i < len(co.dtOK) {
			co.dtOK[i] = ok
		}
	}
	for op, ok := range cfg.Ops {
		if i := int(op); i >= 0 && i < len(co.opOK) {
			co.opOK[i] = ok
		}
	}
	comms := make([]*Comm, len(devs))
	for r := range devs {
		comms[r] = &Comm{core: co, rank: r}
	}
	return comms, nil
}

// Rank returns this handle's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.core.n }

// Device returns the rank's device.
func (c *Comm) Device() *device.Device { return c.core.devs[c.rank] }

// Backend returns the backend configuration name (e.g. "nccl").
func (c *Comm) Backend() string { return c.core.cfg.Name }

// Config returns the backend personality.
func (c *Comm) Config() Config { return c.core.cfg }

// SetWatchdog arms the collective watchdog with deadline d (shared by all
// rank handles; 0 disarms). When armed, a rank's stream task that waits
// longer than d for its peers — at the collective start rendezvous or on a
// point-to-point match — abandons the operation with an ErrRankDead
// verdict instead of blocking forever on a fail-stopped peer. The verdict
// is asynchronous (the issuing call already returned); collect it with
// TakeAsyncErr after synchronizing the stream. The deadline must exceed
// the largest healthy inter-rank skew or slow ranks will be misread as
// dead.
func (c *Comm) SetWatchdog(d time.Duration) { c.core.watchdog = d }

// Watchdog reports the armed watchdog deadline (0 = disarmed).
func (c *Comm) Watchdog() time.Duration { return c.core.watchdog }

// TakeAsyncErr returns and clears this rank's asynchronous failure
// verdict, if any. Call after Stream.Synchronize: a watchdog abort lets
// the stream task complete, so synchronization returns normally and the
// verdict is only visible here.
func (c *Comm) TakeAsyncErr() error {
	err := c.asyncErr
	c.asyncErr = nil
	return err
}

// raiseAsync records an asynchronous failure verdict, keeping the first.
func (c *Comm) raiseAsync(err error) {
	if c.asyncErr == nil {
		c.asyncErr = err
	}
}

// SetRankIDs gives the communicator's ranks global identities (shared by
// every rank handle; ids[r] is local rank r's identity, typically its MPI
// world rank). Fault rules and failure verdicts then probe and report
// those identities instead of the communicator-local numbering — what
// keeps a crash rule naming world rank 5 from re-firing on whichever
// survivor inherits local rank 5 after a shrink. nil restores the default
// identity mapping.
func (c *Comm) SetRankIDs(ids []int) {
	if ids != nil && len(ids) != c.core.n {
		panic(fmt.Sprintf("ccl: %d rank ids for %d ranks", len(ids), c.core.n))
	}
	c.core.rankIDs = ids
}

// RankIDs returns the global identity mapping (nil = local ranks).
func (c *Comm) RankIDs() []int { return c.core.rankIDs }

// rankID resolves a local rank to the identity fault hooks see.
func (co *core) rankID(r int) int {
	if co.rankIDs != nil {
		return co.rankIDs[r]
	}
	return r
}

// SetChannelCap caps how many fabric channels this communicator's
// transfers drive (0 clears the cap; values above the configured budget
// have no effect). The cap is shared by every rank handle — it is the
// dispatch layer's reaction to a degraded link: drive fewer channels so
// concurrent flows keep a fair share of the shrunken pool.
func (c *Comm) SetChannelCap(n int) {
	if n < 0 {
		n = 0
	}
	c.core.chanCap = n
}

// ChannelCap reports the active channel-budget cap (0 = none).
func (c *Comm) ChannelCap() int { return c.core.chanCap }

func (c *Comm) kernel() *sim.Kernel { return c.core.fab.Kernel() }

// opState coordinates one collective across all ranks.
type opState struct {
	seq   int
	args  []*opArgs
	start *sim.Barrier
	done  int
	pipes map[[2]int]*pipe
	// aborted marks a collective judged dead by the watchdog: some rank
	// timed out at the start rendezvous, so the algorithm can no longer
	// run this sequence. Ranks arriving later fail fast with the same
	// verdict instead of waiting out their own deadline.
	aborted bool
	// abortErr is the shared mid-schedule verdict (first writer wins): a
	// transfer hit an active network cut after the start rendezvous, so
	// the whole sequence is void — including on ranks whose own hops
	// stayed on one side and "succeeded" with partial data. Each rank
	// raises it as its async verdict when its schedule task finishes.
	abortErr error
	// scratch is per-rank staging space a compiled plan requested
	// (comp.Plan.Scratch); allocated by the first rank to execute the
	// plan, freed with the op. Nil entries mean the rank needs none.
	scratch []*device.Buffer
	// vplan is the alltoallv move program built at run time from every
	// rank's counts (first arriving rank builds it; see compiled.go).
	vplan any
}

type opArgs struct {
	send, recv *device.Buffer
	count      int
	root       int
	// Vector-collective shapes (alltoallv): per-peer element counts and
	// displacements. The compiled executor reads every rank's counts after
	// the start rendezvous to build the move program.
	scounts, sdispls, rcounts, rdispls []int
}

// join registers rank args for collective #seq and returns the shared state.
func (co *core) join(seq, rank int, a *opArgs) *opState {
	st, ok := co.ops[seq]
	if !ok {
		st = &opState{
			seq:   seq,
			args:  make([]*opArgs, co.n),
			start: sim.NewBarrier(co.fab.Kernel(), co.n),
			pipes: make(map[[2]int]*pipe),
		}
		co.ops[seq] = st
	}
	st.args[rank] = a
	return st
}

// finish releases op state once every rank's task completed, recycling the
// per-rank argument records onto the core free list.
func (co *core) finish(st *opState) {
	st.done++
	if st.done == co.n {
		for _, pp := range st.pipes {
			for _, s := range pp.slots {
				s.Free()
			}
		}
		for _, b := range st.scratch {
			if b != nil {
				b.Free()
			}
		}
		st.scratch = nil
		for i, a := range st.args {
			if a != nil {
				st.args[i] = nil
				*a = opArgs{}
				co.argsFree = append(co.argsFree, a)
			}
		}
		delete(co.ops, st.seq)
	}
}

// pipe is a credit-managed scratch pipeline between a directed rank pair,
// modeling NCCL's bounded FIFO buffers (NCCL_BUFFSIZE slots).
type pipe struct {
	data   *sim.Chan[int]
	credit *sim.Chan[int]
	slots  []*device.Buffer
}

const pipeSlots = 2

// pipe returns (creating on first use) the pair pipe with slot capacity
// slotBytes at the receiver's device.
func (st *opState) pipe(co *core, from, to int, slotBytes int64) *pipe {
	key := [2]int{from, to}
	pp, ok := st.pipes[key]
	if !ok {
		k := co.fab.Kernel()
		pp = &pipe{
			data:   sim.NewChan[int](k, pipeSlots+1),
			credit: sim.NewChan[int](k, pipeSlots+1),
			slots:  make([]*device.Buffer, pipeSlots),
		}
		for i := range pp.slots {
			pp.slots[i] = co.devs[to].MustMallocScratch(slotBytes)
			pp.credit.TrySend(i)
		}
		st.pipes[key] = pp
	}
	return pp
}

// runCtx is the execution context of one rank's part of a collective.
type runCtx struct {
	co   *core
	st   *opState
	rank int
	p    *sim.Proc

	// Persistent-op hooks, nil on the one-shot path (see persistent.go):
	// pers carries the handle's caches and partition gate, sender is this
	// process's resident async-put helper (replacing per-step Spawns).
	pers   *persistState
	sender *persistSender

	// chunk overrides the fabric pipeline granularity for this context's
	// transfers (compiled plans carry a searched chunk size; 0 = backend
	// default).
	chunk int64
}

func (rc *runCtx) dev() *device.Device { return rc.co.devs[rc.rank] }

func (rc *runCtx) opts() fabric.Opts {
	o := rc.co.fabOpts()
	if rc.chunk > 0 {
		o.ChunkBytes = rc.chunk
	}
	return o
}

// fabOpts builds the transfer options, honoring any channel-budget cap the
// dispatch layer applied for a degraded link.
func (co *core) fabOpts() fabric.Opts {
	ch := co.cfg.Channels
	if co.chanCap > 0 && ch > co.chanCap {
		ch = co.chanCap
	}
	return fabric.Opts{Channels: ch, ChunkBytes: co.cfg.ChunkBytes}
}

// xfer moves bytes between devices applying the backend's inter-node
// penalty on cross-node hops. A hop severed by a network partition aborts
// the sequence: the copy is skipped, the shared verdict is recorded, and
// the schedule keeps draining — same-side hops still complete and the pipe
// signaling below still fires, so every rank finishes in bounded virtual
// time instead of stranding peers mid-collective.
func (rc *runCtx) xfer(dst, src *device.Buffer, n int64) {
	rc.co.countXfer(n)
	d, err := rc.co.fab.TryTransfer(rc.p, dst, src, n, rc.opts())
	if err != nil {
		if !errors.Is(err, fabric.ErrPartitioned) {
			panic(err)
		}
		rc.st.aborted = true
		if rc.st.abortErr == nil {
			rc.st.abortErr = rc.co.severedVerdict(rc.p.Now())
		}
		return
	}
	pen := rc.co.cfg.InterNodePenalty
	if pen > 1 && src.Device() != nil && dst.Device() != nil && src.Device().Node != dst.Device().Node {
		rc.p.Sleep(time.Duration(float64(d) * (pen - 1)))
	}
}

// putAsync runs put on a helper process so the caller can receive
// concurrently — rings are full duplex, exactly like the hardware channels
// they run on. Wait on the returned counter before reusing src.
func (rc *runCtx) putAsync(to int, src *device.Buffer, n int64, slotBytes int64) *sim.Counter {
	if rc.sender != nil {
		return rc.sender.post(to, src, n, slotBytes)
	}
	k := rc.p.Kernel()
	done := sim.NewCounter(k, 1)
	co, st, rank := rc.co, rc.st, rc.rank // rc may be recycled before p runs
	k.Spawn(co.putName(rank, to), func(p *sim.Proc) {
		sub := co.getCtx(st, rank, p)
		sub.put(to, src, n, slotBytes)
		co.putCtx(sub)
		done.Done()
	})
	return done
}

// put ships n bytes from src into a scratch slot at rank "to" and signals
// it; blocks on flow-control credits.
func (rc *runCtx) put(to int, src *device.Buffer, n int64, slotBytes int64) {
	pp := rc.st.pipe(rc.co, rc.rank, to, slotBytes)
	rc.p.Sleep(rc.co.cfg.StepCost)
	slot := pp.credit.Recv(rc.p)
	rc.xfer(rc.slice(pp.slots[slot], 0, n), src, n)
	pp.data.Send(rc.p, slot)
}

// get blocks until a scratch slot from rank "from" is ready and returns it;
// the caller must release it with release.
func (rc *runCtx) get(from int, slotBytes int64) (int, *device.Buffer) {
	pp := rc.st.pipe(rc.co, from, rc.rank, slotBytes)
	slot := pp.data.Recv(rc.p)
	return slot, pp.slots[slot]
}

func (rc *runCtx) release(from, slot int, slotBytes int64) {
	pp := rc.st.pipe(rc.co, from, rc.rank, slotBytes)
	pp.credit.TrySend(slot)
}

// putDirect ships n bytes straight into dst (a region of the receiving
// rank's user buffer that is written exactly once) and signals rank "to".
func (rc *runCtx) putDirect(to int, dst, src *device.Buffer, n int64) {
	pp := rc.st.pipe(rc.co, rc.rank, to, 1)
	rc.p.Sleep(rc.co.cfg.StepCost)
	rc.xfer(dst, src, n)
	pp.data.Send(rc.p, 0)
}

// waitDirect consumes one direct-write signal from rank "from".
func (rc *runCtx) waitDirect(from int) {
	pp := rc.st.pipe(rc.co, from, rc.rank, 1)
	pp.data.Recv(rc.p)
}

// reduceInto combines src into dst over count elements, charging device time.
func (rc *runCtx) reduceInto(op RedOp, dt Datatype, dst, src *device.Buffer, count int) {
	reduceBytes(op, dt, dst.Bytes(), src.Bytes(), count)
	rc.p.Sleep(rc.dev().ReduceTime(int64(count) * int64(dt.Size())))
}

// inject consults the fault hooks for an error to fail this call with.
// The fail-stop probe runs first: a dead rank's own call fails fast with
// ErrRankDead before any work enqueues, so it never joins the collective
// its surviving peers will time out on. The returned error is nil when no
// hook is attached or no rule fires.
func (c *Comm) inject(op string) error {
	co := c.core
	if co.faults == nil && co.failStop == nil {
		return nil
	}
	now := co.fab.Kernel().Now()
	id := co.rankID(c.rank)
	if co.failStop != nil && co.failStop.OpCrash(co.cfg.Name, op, id, now) {
		return &Error{Backend: co.cfg.Name, Result: ErrRankDead, Op: op, Rank: id,
			Msg: "rank fail-stopped"}
	}
	if co.faults == nil {
		return nil
	}
	if e := co.faults.OpError(co.cfg.Name, op, id, now); e != nil {
		e.Op, e.Rank = op, id
		return e
	}
	return nil
}

// deadVerdict builds the watchdog's ErrRankDead verdict for a rank whose
// collective timed out, attributing it to a known-dead peer when the
// fail-stop detector can name one (Rank -1 otherwise).
func (co *core) deadVerdict(op string, now time.Duration) *Error {
	if co.failStop != nil {
		if dead := co.failStop.DeadRanks(now); len(dead) > 0 {
			return &Error{Backend: co.cfg.Name, Result: ErrRankDead, Op: op, Rank: dead[0],
				Msg: fmt.Sprintf("peer fail-stopped; watchdog fired after %v", co.watchdog)}
		}
	}
	return &Error{Backend: co.cfg.Name, Result: ErrRankDead, Op: op, Rank: -1,
		Msg: fmt.Sprintf("watchdog fired after %v; failed peer unknown", co.watchdog)}
}

// severedVerdict builds the ErrUnreachable verdict for a schedule whose
// transfer crossed an active network cut. The fabric routes by node, so the
// specific far-side rank is unknown here (Rank -1); the membership layer
// re-derives the severed peers from the partition oracle.
func (co *core) severedVerdict(now time.Duration) *Error {
	return &Error{Backend: co.cfg.Name, Result: ErrUnreachable, Rank: -1,
		Msg: fmt.Sprintf("transfer severed by network partition at %v", now)}
}

// delay charges any injected straggler latency for this rank's part of op.
func (c *Comm) delay(p *sim.Proc, op string) {
	co := c.core
	if co.faults == nil {
		return
	}
	if d := co.faults.OpDelay(co.cfg.Name, op, co.rankID(c.rank), p.Now()); d > 0 {
		p.Sleep(d)
	}
}

// validate checks a collective call against the fault hook and the backend
// capability matrix. opName is the operation for fault-rule scoping.
func (c *Comm) validate(opName string, send, recv *device.Buffer, count int, dt Datatype, op *RedOp, root int) error {
	if err := c.inject(opName); err != nil {
		return err
	}
	return c.validateArgs(opName, send, recv, count, dt, op, root)
}

// validateArgs is validate without the fault-hook probe: persistent-op
// Init uses it so that building a handle does not consume a crash rule's
// call budget — fault rules scoped to an operation count executions
// (Start), not plan construction.
func (c *Comm) validateArgs(opName string, send, recv *device.Buffer, count int, dt Datatype, op *RedOp, root int) error {
	cfg := &c.core.cfg
	if count < 0 {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: "negative count"}
	}
	if !c.core.supportsDatatype(dt) {
		return &Error{Backend: cfg.Name, Result: ErrUnsupportedDatatype, Op: opName, Rank: c.rank,
			Msg: fmt.Sprintf("datatype %v not supported", dt)}
	}
	if op != nil && !c.core.supportsOp(*op) {
		return &Error{Backend: cfg.Name, Result: ErrUnsupportedOp, Op: opName, Rank: c.rank,
			Msg: fmt.Sprintf("reduction %v not supported", *op)}
	}
	if root < 0 || root >= c.core.n {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: fmt.Sprintf("root %d out of range", root)}
	}
	bytes := int64(count) * int64(dt.Size())
	if send != nil && send.Len() < bytes {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: "send buffer too small"}
	}
	if recv != nil && recv.Len() < bytes {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: "recv buffer too small"}
	}
	return nil
}

// launch charges the backend's fixed operation overhead plus any
// size-triggered step overhead.
func (rc *runCtx) launch(bytes int64) {
	rc.co.countLaunch("collective")
	rc.p.Sleep(rc.co.cfg.Launch + rc.co.cfg.stepExtra(bytes))
}
