package ccl

import (
	"sort"

	"mpixccl/internal/sim"
)

// CommSplit partitions the communicator by color, the ncclCommSplit API
// added in NCCL 2.18. Every rank must call it; ranks passing the same
// color land in a new communicator ordered by (key, old rank). A negative
// color returns nil (the rank opts out). The split is a blocking
// rendezvous on the calling process p.
func (c *Comm) CommSplit(p *sim.Proc, color, key int) (*Comm, error) {
	co := c.core
	if co.split == nil {
		co.split = &splitState{
			entries: make(map[int][2]int),
			ready:   sim.NewEvent(co.fab.Kernel()),
		}
	}
	sp := co.split
	sp.entries[c.rank] = [2]int{color, key}
	sp.arrived++
	if sp.arrived < co.n {
		sp.ready.Wait(p)
	} else {
		sp.result = make(map[int][]*Comm)
		colors := map[int][]int{}
		for r, ck := range sp.entries {
			if ck[0] >= 0 {
				colors[ck[0]] = append(colors[ck[0]], r)
			}
		}
		for color, members := range colors {
			sort.Slice(members, func(a, b int) bool {
				ka, kb := sp.entries[members[a]][1], sp.entries[members[b]][1]
				if ka != kb {
					return ka < kb
				}
				return members[a] < members[b]
			})
			devs := co.devs[:0:0]
			for _, r := range members {
				devs = append(devs, co.devs[r])
			}
			comms, err := NewComms(co.fab, devs, co.cfg)
			if err != nil {
				sp.err = err
				break
			}
			sp.result[color] = comms
		}
		co.split = nil
		sp.ready.Fire()
	}
	if sp.err != nil {
		return nil, sp.err
	}
	myColor := sp.entries[c.rank][0]
	if myColor < 0 {
		return nil, nil
	}
	comms := sp.result[myColor]
	// Locate this rank's handle: handles are ordered like the sorted
	// member list, so find our device.
	for _, cc := range comms {
		if cc.Device() == c.Device() {
			return cc, nil
		}
	}
	return nil, &Error{Backend: co.cfg.Name, Result: ErrInvalidArgument, Msg: "split lost a rank"}
}

// splitState coordinates one in-flight CommSplit across ranks.
type splitState struct {
	entries map[int][2]int
	arrived int
	ready   *sim.Event
	result  map[int][]*Comm
	err     error
}
