// Package nccl models the NVIDIA Collective Communication Library: the
// most mature xCCL, driving NVIDIA GPUs over NVLink/NVSwitch with a wide
// datatype matrix and a large channel budget. Constants are calibrated to
// the paper's §4.2 measurements: 20 µs launch overhead and ~137 GB/s
// intra-node point-to-point bandwidth on DGX A100.
package nccl

import (
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
)

// DefaultVersion is the modern NCCL release modeled by Config.
const DefaultVersion = "2.18.3"

// LegacyVersion is the older release MSCCL embeds (and the baseline used
// in Fig 5d); it drives fewer channels.
const LegacyVersion = "2.12.12"

// BrokenVersion names the 2.18.3 build that failed against the site's
// TensorFlow/Horovod/CUDA combination on ThetaGPU (§4.4). Communicators
// built from it error on every operation, which the xCCL layer survives
// by transparently falling back to the MPI path.
const BrokenVersion = "2.18.3-tf2.4-cuda11.4"

// Config returns the personality of the default NCCL version.
func Config() ccl.Config { return VersionConfig(DefaultVersion) }

// VersionConfig returns the personality of a specific NCCL release.
// Unknown versions fall back to the default.
func VersionConfig(version string) ccl.Config {
	cfg := ccl.Config{
		Name:  "nccl-" + version,
		Kinds: []device.Kind{device.NvidiaGPU},
		Datatypes: map[ccl.Datatype]bool{
			ccl.Int8: true, ccl.Int32: true, ccl.Int64: true,
			ccl.Float16: true, ccl.Float32: true, ccl.Float64: true,
		},
		Ops: map[ccl.RedOp]bool{
			ccl.Sum: true, ccl.Prod: true, ccl.Max: true, ccl.Min: true,
		},
		Launch:           20 * time.Microsecond,
		StepCost:         1200 * time.Nanosecond,
		Channels:         12,
		ChunkBytes:       512 << 10,
		HierChunkBytes:   1 << 20,
		TreeThreshold:    256 << 10,
		InterNodePenalty: 1.0,
	}
	switch version {
	case LegacyVersion:
		// NCCL 2.12 saturates fewer NVLink channels (~112 GB/s measured
		// by the paper under MSCCL) and switches to ring later.
		cfg.Channels = 10
		cfg.TreeThreshold = 128 << 10
		cfg.StepCost = 1600 * time.Nanosecond
	case BrokenVersion:
		cfg.InjectFailure = ccl.ErrInternal
	}
	return cfg
}

// New creates NCCL communicators over the devices (ncclCommInitAll).
func New(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, Config())
}

// NewVersion creates communicators for a specific NCCL release.
func NewVersion(fab *fabric.Fabric, devs []*device.Device, version string) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, VersionConfig(version))
}
