package nccl

import (
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
)

func TestConfigPersonality(t *testing.T) {
	cfg := Config()
	if cfg.Launch != 20*time.Microsecond {
		t.Errorf("launch = %v, want 20µs (paper §4.2)", cfg.Launch)
	}
	if cfg.Channels != 12 {
		t.Errorf("channels = %d, want 12", cfg.Channels)
	}
	if !cfg.SupportsKind(device.NvidiaGPU) || cfg.SupportsKind(device.AMDGPU) {
		t.Error("NCCL must drive NVIDIA GPUs only")
	}
	for _, dt := range ccl.Datatypes() {
		if !cfg.Datatypes[dt] {
			t.Errorf("NCCL should support %v", dt)
		}
	}
	for _, op := range ccl.RedOps() {
		if !cfg.Ops[op] {
			t.Errorf("NCCL should support %v", op)
		}
	}
}

func TestLegacyVersionDiffers(t *testing.T) {
	legacy := VersionConfig(LegacyVersion)
	modern := Config()
	if legacy.Channels >= modern.Channels {
		t.Error("NCCL 2.12 should drive fewer channels than 2.18")
	}
	if legacy.Name == modern.Name {
		t.Error("version must be part of the name")
	}
	if VersionConfig("9.9.9").Channels != modern.Channels {
		t.Error("unknown version should fall back to default personality")
	}
}
