package ccl_test

import (
	"bytes"
	"testing"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/ccl/rccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// mkFor picks the backend that can drive the system's accelerators.
func mkFor(system string) func(*fabric.Fabric, []*device.Device) ([]*ccl.Comm, error) {
	if system == "mri" {
		return rccl.New
	}
	return nccl.New
}

// fillBytes writes rank r's deterministic payload: pure data movement
// (no reductions), so bytewise comparison against the reference shuffle
// is exact for every plan.
func fillBytes(buf *device.Buffer, r int) {
	b := buf.Bytes()
	for i := range b {
		b[i] = byte((r*31 + i*7) % 251)
	}
}

// compiledDtypes is the 6-datatype sweep of the property tests.
var compiledDtypes = []ccl.Datatype{
	ccl.Int8, ccl.Int32, ccl.Int64, ccl.Float16, ccl.Float32, ccl.Float64,
}

// newPermHarness builds a harness whose rank→device mapping is shuffled:
// rank r sits on device perm[r], so node groups are discontiguous rank
// sets — the compiler's groupings must not assume rank order.
func newPermHarness(t *testing.T, system string, nranks int, perm []int) *harness {
	t.Helper()
	k := sim.NewKernel()
	perNode := map[string]int{"thetagpu": 8, "mri": 2}[system]
	nodes := (nranks + perNode - 1) / perNode
	sys, err := topology.Preset(k, system, nodes)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(k, sys)
	devs := make([]*device.Device, nranks)
	for r := range devs {
		devs[r] = sys.Devices()[perm[r]]
	}
	comms, err := mkFor(system)(fab, devs)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, sys: sys, fab: fab, comms: comms}
	for _, c := range comms {
		h.streams = append(h.streams, c.Device().NewStream())
	}
	return h
}

// compiledShapes enumerates the topologies the plan sweep runs on:
// multi-node even, multi-node uneven, single node (every hierarchy must
// degenerate), 4-node (phased permutation schedules), and a shuffled
// rank→node order.
type compiledShape struct {
	name   string
	system string
	nranks int
	perm   []int // nil = identity
}

func compiledShapeList() []compiledShape {
	return []compiledShape{
		{name: "2x8", system: "thetagpu", nranks: 16},
		{name: "8+4", system: "thetagpu", nranks: 12},
		{name: "1node", system: "thetagpu", nranks: 8},
		{name: "1node-odd", system: "thetagpu", nranks: 3},
		{name: "4x2", system: "mri", nranks: 8},
		{name: "4x2-shuffled", system: "mri", nranks: 8,
			perm: []int{5, 0, 3, 6, 1, 4, 7, 2}},
	}
}

func (sh compiledShape) harness(t *testing.T) *harness {
	if sh.perm != nil {
		return newPermHarness(t, sh.system, sh.nranks, sh.perm)
	}
	return newHarness(t, sh.system, sh.nranks, mkFor(sh.system))
}

// planKeysFor collects the candidate keys plus the search entry points.
func planKeysFor(t *testing.T, sh compiledShape, op string) []string {
	h := sh.harness(t)
	keys := append([]string{"", "auto"}, h.comms[0].PlanKeys(op)...)
	return keys
}

// TestCompiledAlltoall: every plan strategy must produce the exact MPI
// alltoall result (block q of rank r's send buffer lands at block r of
// rank q's recv buffer) across datatypes and uneven counts.
func TestCompiledAlltoall(t *testing.T) {
	for _, sh := range compiledShapeList() {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, key := range planKeysFor(t, sh, "alltoall") {
				for _, dt := range compiledDtypes {
					for _, count := range []int{1, 7, 129} {
						runCompiledAlltoall(t, sh, key, dt, count)
					}
				}
			}
		})
	}
}

func runCompiledAlltoall(t *testing.T, sh compiledShape, key string, dt ccl.Datatype, count int) {
	t.Helper()
	h := sh.harness(t)
	n := sh.nranks
	blk := int64(count) * int64(dt.Size())
	sends := make([][]byte, n)
	recvs := make([][]byte, n)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(blk * int64(n))
		recv := c.Device().MustMalloc(blk * int64(n))
		fillBytes(send, r)
		sends[r] = append([]byte(nil), send.Bytes()...)
		if err := c.Alltoall(send, recv, count, dt, key, s); err != nil {
			t.Errorf("alltoall key=%q: %v", key, err)
			return
		}
		s.Synchronize(p)
		recvs[r] = append([]byte(nil), recv.Bytes()...)
		send.Free()
		recv.Free()
	})
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			want := sends[q][int64(r)*blk : int64(r+1)*blk]
			got := recvs[r][int64(q)*blk : int64(q+1)*blk]
			if !bytes.Equal(want, got) {
				t.Fatalf("%s key=%q dt=%v count=%d: rank %d block %d wrong",
					sh.name, key, dt, count, r, q)
			}
		}
	}
}

// TestCompiledScatterGather: every plan strategy of the rooted fans must
// match MPI scatter/gather semantics, with roots on and off node 0.
func TestCompiledScatterGather(t *testing.T) {
	for _, sh := range compiledShapeList() {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			roots := []int{0, sh.nranks - 1}
			for _, op := range []string{"scatter", "gather"} {
				for _, key := range planKeysFor(t, sh, op) {
					for _, dt := range compiledDtypes {
						for _, root := range roots {
							runCompiledRooted(t, sh, op, key, dt, 37, root)
						}
					}
				}
			}
		})
	}
}

func runCompiledRooted(t *testing.T, sh compiledShape, op, key string, dt ccl.Datatype, count, root int) {
	t.Helper()
	h := sh.harness(t)
	n := sh.nranks
	blk := int64(count) * int64(dt.Size())
	rootBuf := make([]byte, blk*int64(n))
	got := make([][]byte, n)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		var err error
		switch op {
		case "scatter":
			var send *device.Buffer
			if r == root {
				send = c.Device().MustMalloc(blk * int64(n))
				fillBytes(send, r)
				copy(rootBuf, send.Bytes())
			}
			recv := c.Device().MustMalloc(blk)
			err = c.Scatter(send, recv, count, dt, root, key, s)
			if err == nil {
				s.Synchronize(p)
				got[r] = append([]byte(nil), recv.Bytes()...)
			}
		case "gather":
			send := c.Device().MustMalloc(blk)
			fillBytes(send, r)
			got[r] = append([]byte(nil), send.Bytes()...)
			var recv *device.Buffer
			if r == root {
				recv = c.Device().MustMalloc(blk * int64(n))
			}
			err = c.Gather(send, recv, count, dt, root, key, s)
			if err == nil {
				s.Synchronize(p)
				if r == root {
					copy(rootBuf, recv.Bytes())
				}
			}
		}
		if err != nil {
			t.Errorf("%s key=%q: %v", op, key, err)
		}
	})
	for r := 0; r < n; r++ {
		seg := rootBuf[int64(r)*blk : int64(r+1)*blk]
		if op == "scatter" {
			if !bytes.Equal(got[r], seg) {
				t.Fatalf("%s/%s key=%q dt=%v root=%d: rank %d block wrong", sh.name, op, key, dt, root, r)
			}
		} else {
			if !bytes.Equal(seg, got[r]) {
				t.Fatalf("%s/%s key=%q dt=%v root=%d: root's block %d wrong", sh.name, op, key, dt, root, r)
			}
		}
	}
}

// TestCompiledAlltoallv: uneven per-pair counts (including zero blocks)
// through both pairing schedules, against the reference exchange.
func TestCompiledAlltoallv(t *testing.T) {
	for _, sh := range compiledShapeList() {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, key := range []string{"", "direct", "phased"} {
				for _, dt := range []ccl.Datatype{ccl.Int8, ccl.Float32, ccl.Float64} {
					runCompiledAlltoallv(t, sh, key, dt)
				}
			}
		})
	}
}

func runCompiledAlltoallv(t *testing.T, sh compiledShape, key string, dt ccl.Datatype) {
	t.Helper()
	h := sh.harness(t)
	n := sh.nranks
	esz := int64(dt.Size())
	// cnt[r][q]: elements r sends to q — uneven, with zeros sprinkled in.
	cnt := make([][]int, n)
	for r := range cnt {
		cnt[r] = make([]int, n)
		for q := range cnt[r] {
			cnt[r][q] = (r + 2*q) % 5 // 0..4 elements
		}
	}
	packed := func(row []int) ([]int, int) {
		d := make([]int, len(row))
		off := 0
		for i, c := range row {
			d[i] = off
			off += c
		}
		return d, off
	}
	sends := make([][]byte, n)
	recvs := make([][]byte, n)
	sdis := make([][]int, n)
	rdis := make([][]int, n)
	rcnt := make([][]int, n)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		scounts := cnt[r]
		rcounts := make([]int, n)
		for q := 0; q < n; q++ {
			rcounts[q] = cnt[q][r]
		}
		sdispls, stot := packed(scounts)
		rdispls, rtot := packed(rcounts)
		sdis[r], rdis[r], rcnt[r] = sdispls, rdispls, rcounts
		send := c.Device().MustMalloc(max64(int64(stot)*esz, 1))
		recv := c.Device().MustMalloc(max64(int64(rtot)*esz, 1))
		fillBytes(send, r)
		sends[r] = append([]byte(nil), send.Bytes()...)
		if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, dt, key, s); err != nil {
			t.Errorf("alltoallv key=%q: %v", key, err)
			return
		}
		s.Synchronize(p)
		recvs[r] = append([]byte(nil), recv.Bytes()...)
		send.Free()
		recv.Free()
	})
	for r := 0; r < n; r++ {
		for q := 0; q < n; q++ {
			ln := int64(cnt[q][r]) * esz
			if ln == 0 {
				continue
			}
			so := int64(sdis[q][r]) * esz
			ro := int64(rdis[r][q]) * esz
			if !bytes.Equal(sends[q][so:so+ln], recvs[r][ro:ro+ln]) {
				t.Fatalf("%s key=%q dt=%v: %d->%d block wrong", sh.name, key, dt, q, r)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestCompiledPlanErrors: malformed or inapplicable keys surface as
// argument errors, not panics.
func TestCompiledPlanErrors(t *testing.T) {
	h := newHarness(t, "thetagpu", 4, nccl.New)
	h.runRanks(t, func(r int, c *ccl.Comm, s *device.Stream, p *sim.Proc) {
		send := c.Device().MustMalloc(4 * 16)
		recv := c.Device().MustMalloc(4 * 16)
		for _, key := range []string{"ring", "staged:intra=flat,stripe=1,depth=1", "native:hier"} {
			if err := c.Alltoall(send, recv, 4, ccl.Float32, key, s); err == nil {
				t.Errorf("alltoall key=%q: want error", key)
			}
		}
	})
}

// TestCompiledPlanFor pins the search outcomes the cost model promises:
// phased on a ≥3-node alltoall at large sizes, direct on one node.
func TestCompiledPlanFor(t *testing.T) {
	h := newHarness(t, "mri", 8, rccl.New) // 4 nodes × 2
	key, cost, err := h.comms[0].PlanFor("alltoall", 4<<20, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("non-positive cost %g", cost)
	}
	if key != "phased" && !hasPrefix(key, "phased:") {
		t.Fatalf("4-node 4MB alltoall search picked %q, want phased", key)
	}
	h1 := newHarness(t, "thetagpu", 8, nccl.New) // 1 node
	key1, _, err := h1.comms[0].PlanFor("alltoall", 4<<20, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if key1 != "direct" {
		t.Fatalf("1-node alltoall search picked %q, want direct", key1)
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}
