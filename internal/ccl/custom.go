package ccl

import (
	"fmt"

	"mpixccl/internal/ccl/comp"
)

// Custom collective schedules: a small interpreter for MSCCL-style
// user-defined algorithms. A schedule is a sequence of steps; each step is
// a set of chunk transfers executed concurrently. The interpreter runs the
// schedule SPMD across the communicator's ranks with the same credit-based
// flow control as the built-in algorithms, so custom algorithms are
// deadlock-safe by construction.

// XferKind says what the receiver does with an arriving chunk.
type XferKind int

const (
	// Copy overwrites the destination chunk.
	Copy XferKind = iota
	// ReduceOp combines into the destination chunk with the op of the call.
	ReduceOp
)

// ChunkXfer moves source chunk SrcChunk at rank From into DstChunk at rank
// To. Chunks index an NChunks-way partition of the payload.
type ChunkXfer struct {
	From, To           int
	SrcChunk, DstChunk int
	Kind               XferKind
}

// Step is a set of transfers that may proceed concurrently.
type Step struct {
	Xfers []ChunkXfer
}

// Algo is a custom collective schedule (an msccl-xml program analogue).
type Algo struct {
	// Name labels the algorithm in traces.
	Name string
	// Collective is the operation implemented; only "allreduce" custom
	// schedules are dispatched today (matching our MSCCL usage).
	Collective string
	// Ranks is the communicator size the schedule is generated for.
	Ranks int
	// NChunks is the payload partition the chunk indices refer to.
	NChunks int
	// MinBytes and MaxBytes bound the payload sizes the schedule applies
	// to (inclusive); zero MaxBytes means unbounded.
	MinBytes, MaxBytes int64
	// Steps execute in order.
	Steps []Step
}

// Validate checks the schedule's internal consistency.
func (a *Algo) Validate() error {
	if a.Ranks < 1 || a.NChunks < 1 {
		return fmt.Errorf("ccl: algo %q: invalid ranks/chunks %d/%d", a.Name, a.Ranks, a.NChunks)
	}
	for si, s := range a.Steps {
		for xi, x := range s.Xfers {
			if x.From < 0 || x.From >= a.Ranks || x.To < 0 || x.To >= a.Ranks || x.From == x.To {
				return fmt.Errorf("ccl: algo %q step %d xfer %d: bad endpoints %d->%d", a.Name, si, xi, x.From, x.To)
			}
			if x.SrcChunk < 0 || x.SrcChunk >= a.NChunks || x.DstChunk < 0 || x.DstChunk >= a.NChunks {
				return fmt.Errorf("ccl: algo %q step %d xfer %d: bad chunks %d->%d", a.Name, si, xi, x.SrcChunk, x.DstChunk)
			}
		}
	}
	return nil
}

// Matches reports whether the schedule applies to a payload of the given
// byte size on n ranks.
func (a *Algo) Matches(collective string, n int, bytes int64) bool {
	if a.Collective != collective || a.Ranks != n {
		return false
	}
	if bytes < a.MinBytes {
		return false
	}
	if a.MaxBytes > 0 && bytes > a.MaxBytes {
		return false
	}
	return true
}

// RegisterAlgo installs a custom schedule on the communicator (all rank
// handles share it). Calls whose size matches dispatch to the schedule
// instead of the built-in algorithm.
func (c *Comm) RegisterAlgo(a *Algo) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if a.Ranks != c.core.n {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument,
			Msg: fmt.Sprintf("algo %q built for %d ranks, communicator has %d", a.Name, a.Ranks, c.core.n)}
	}
	c.core.algos = append(c.core.algos, a)
	return nil
}

// Algos returns the registered custom schedules.
func (c *Comm) Algos() []*Algo { return c.core.algos }

// findAlgo returns the first matching registered schedule.
func (co *core) findAlgo(collective string, bytes int64) *Algo {
	for _, a := range co.algos {
		if a.Matches(collective, co.n, bytes) {
			return a
		}
	}
	return nil
}

// customPlanKey caches converted schedules per call shape.
type customPlanKey struct {
	algo  *Algo
	count int
	esz   int64
}

// customPlan is a converted MSCCL schedule: the unified-executor plan plus
// the staged pipe slot size (the largest chunk).
type customPlan struct {
	plan *comp.Plan
	slot int64
}

// customPlan converts a registered MSCCL schedule into a compiled plan:
// each step becomes one unfenced phase, each chunk transfer a staged
// recv-buffer move (SrcBytes carries the source chunk length when
// segBounds splits the payload unevenly). The conversion preserves the
// historical interpreter's exact execution — same per-destination sender
// processes, per-pair FIFO order, flow-control credits, and virtual-time
// charges — so converted schedules stay byte-identical with the goldens.
func (co *core) customPlan(a *Algo, count int, esz int64) *customPlan {
	if co.customPlans == nil {
		co.customPlans = map[customPlanKey]*customPlan{}
	}
	k := customPlanKey{algo: a, count: count, esz: esz}
	if cp, ok := co.customPlans[k]; ok {
		return cp
	}
	bounds := segBounds(count, a.NChunks)
	maxChunk := int64(bounds[1]-bounds[0]) * esz
	if maxChunk == 0 {
		maxChunk = esz
	}
	plan := &comp.Plan{Op: "custom/" + a.Name, Key: "msccl", Ranks: a.Ranks,
		Phases: make([]comp.Phase, len(a.Steps)), PipeDepth: 1}
	for si, stp := range a.Steps {
		for _, x := range stp.Xfers {
			plan.Phases[si].Moves = append(plan.Phases[si].Moves, comp.Move{
				From: x.From, To: x.To,
				SrcBuf: comp.RecvBuf, SrcOff: int64(bounds[x.SrcChunk]) * esz,
				DstBuf: comp.RecvBuf, DstOff: int64(bounds[x.DstChunk]) * esz,
				Bytes:    int64(bounds[x.DstChunk+1]-bounds[x.DstChunk]) * esz,
				SrcBytes: int64(bounds[x.SrcChunk+1]-bounds[x.SrcChunk]) * esz,
				Reduce:   x.Kind == ReduceOp, Staged: true,
			})
		}
	}
	cp := &customPlan{plan: plan, slot: maxChunk}
	co.customPlans[k] = cp
	return cp
}

// runCustom executes the schedule for this rank, operating on the recv
// buffer (which already holds the rank's contribution). The schedule is
// converted to a compiled plan and runs through the unified executor
// (compiled.go) with the interpreter's historical process names.
func (rc *runCtx) runCustom(a *Algo, dt Datatype, op RedOp, count int) {
	cp := rc.co.customPlan(a, count, int64(dt.Size()))
	rc.runPlan(cp.plan, dt, op, cp.slot, func(from, to, _ int) string {
		return fmt.Sprintf("custom/%s/r%d-%d", a.Name, from, to)
	})
}

// AllPairsAllReduce generates the MSCCL "allpairs" allreduce schedule for n
// ranks: step 1 sends chunk j of every rank to rank j (reduced on arrival),
// step 2 broadcasts each reduced chunk back. Two latency steps total —
// which is why it beats ring and tree in the medium-message window on
// NVSwitch-class fabrics.
func AllPairsAllReduce(n int, minBytes, maxBytes int64) *Algo {
	a := &Algo{
		Name:       "allpairs",
		Collective: "allreduce",
		Ranks:      n,
		NChunks:    n,
		MinBytes:   minBytes,
		MaxBytes:   maxBytes,
	}
	var s1, s2 Step
	for r := 0; r < n; r++ {
		for j := 0; j < n; j++ {
			if r == j {
				continue
			}
			s1.Xfers = append(s1.Xfers, ChunkXfer{From: r, To: j, SrcChunk: j, DstChunk: j, Kind: ReduceOp})
			s2.Xfers = append(s2.Xfers, ChunkXfer{From: j, To: r, SrcChunk: j, DstChunk: j, Kind: Copy})
		}
	}
	a.Steps = []Step{s1, s2}
	return a
}
