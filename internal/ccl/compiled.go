package ccl

// Unified executor for compiled collective plans (internal/ccl/comp).
// One code path runs both the compiler's output and converted MSCCL
// schedules: a comp.Plan is a list of phases of concrete moves, each rank
// executes its slice of every phase (sender processes per destination,
// inline receives, local copies), and the credit-managed pipes of the
// built-in algorithms provide the flow control. Two transports exist and a
// plan must use one consistently per rank pair (a pair pipe's slot size is
// fixed at first use): direct moves write straight into the receiver's
// buffer (compiled Alltoall/Scatter/Gather plans are all-direct), staged
// moves ship through scratch slots and may reduce on arrival (converted
// MSCCL schedules are all-staged).
//
// Deadlock safety: every rank always drains its full program — an aborted
// transfer (network partition) fails fast, skips the copy, and still
// signals its pipe, so receivers never strand. Fences (phased plans) are
// reached by every rank unconditionally; with the watchdog armed a
// crashed peer bounds the wait and the barrier's all-or-nobody release
// makes the timeout verdict uniform across survivors.

import (
	"fmt"

	"mpixccl/internal/ccl/comp"
	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// compTopo extracts (once) the cost-model topology from the fabric's
// system description and the backend personality.
func (co *core) compTopo() *comp.Topo {
	if co.compTopoCache != nil {
		return co.compTopoCache
	}
	sys := co.fab.System()
	dense := map[int]int{}
	nodeOf := make([]int, co.n)
	for r, d := range co.devs {
		id, ok := dense[d.Node]
		if !ok {
			id = len(dense)
			dense[d.Node] = id
		}
		nodeOf[r] = id
	}
	pen := co.cfg.InterNodePenalty
	if pen < 1 {
		pen = 1
	}
	co.compTopoCache = &comp.Topo{
		NodeOf: nodeOf, Nodes: len(dense),
		IntraAlpha: sys.Intra.Alpha.Seconds(), IntraChanBW: sys.Intra.ChannelBW,
		IntraDirCh: sys.Intra.DirChannels, IntraTotalCh: sys.Intra.TotalChannels,
		InterAlpha: sys.Inter.Alpha.Seconds(), InterChanBW: sys.Inter.ChannelBW,
		InterDirCh: sys.Inter.DirChannels, InterTotalCh: sys.Inter.TotalChannels,
		Launch: co.cfg.Launch.Seconds(), Step: co.cfg.StepCost.Seconds(),
		InterPenalty: pen, Channels: co.cfg.Channels,
	}
	return co.compTopoCache
}

type compPlanKey struct {
	op   string
	blk  int64
	root int
	key  string
}

// compiledPlan returns (compiling and caching on first use) the plan for
// one call shape: an explicit strategy key from the tuning table, or a
// cost-model search when the key is empty/"auto".
func (co *core) compiledPlan(op string, blk int64, root int, key string) (*comp.Plan, error) {
	if co.compPlans == nil {
		co.compPlans = map[compPlanKey]*comp.Plan{}
	}
	k := compPlanKey{op, blk, root, key}
	if p, ok := co.compPlans[k]; ok {
		return p, nil
	}
	t := co.compTopo()
	sh := comp.Shape{BlockBytes: blk, Root: root}
	var (
		p   *comp.Plan
		err error
	)
	if key == "" || key == "auto" {
		p, err = comp.Search(op, t, sh)
	} else if err = comp.ValidKey(op, key); err == nil {
		p, err = comp.CompileKey(op, t, sh, key)
	}
	if err != nil {
		return nil, err
	}
	co.compPlans[k] = p
	return p, nil
}

// planSlot is the staged-pipe slot size a plan needs: the largest staged
// move's source chunk (1 when the plan is all-direct — the slot is unused
// then, but pipes want a positive capacity).
func planSlot(p *comp.Plan) int64 {
	var max int64 = 1
	for pi := range p.Phases {
		for i := range p.Phases[pi].Moves {
			m := &p.Phases[pi].Moves[i]
			if m.Staged && m.SrcLen() > max {
				max = m.SrcLen()
			}
		}
	}
	return max
}

// fence synchronizes every rank between phases of a fenced plan, reusing
// the op's cyclic start barrier. Every rank reaches every fence (programs
// always drain), so the barrier's parties match. With the watchdog armed a
// hung peer bounds the wait; the barrier releases nobody unless all
// arrive, so every survivor times out together and abandons the remaining
// phases uniformly.
func (rc *runCtx) fence(op string) bool {
	st, co := rc.st, rc.co
	if co.watchdog > 0 {
		if !st.start.WaitTimeout(rc.p, co.watchdog) {
			st.aborted = true
			if st.abortErr == nil {
				st.abortErr = co.deadVerdict(op, rc.p.Now())
			}
			return false
		}
		return true
	}
	st.start.Wait(rc.p)
	return true
}

// bufAt resolves a move endpoint to a view of the owning rank's buffer.
func (rc *runCtx) bufAt(role comp.BufRole, rank int, off, n int64) *device.Buffer {
	st := rc.st
	switch role {
	case comp.SendBuf:
		return st.args[rank].send.Slice(off, n)
	case comp.RecvBuf:
		return st.args[rank].recv.Slice(off, n)
	default:
		return st.scratch[rank].Slice(off, n)
	}
}

// runPlan executes this rank's slice of a compiled plan. name builds the
// sender-process label (converted MSCCL schedules keep the historical
// "custom/..." names; compiled plans use "comp/..."). slot is the staged
// pipe slot size (planSlot).
func (rc *runCtx) runPlan(plan *comp.Plan, dt Datatype, op RedOp, slot int64,
	name func(from, to, lane int) string) {
	co, st := rc.co, rc.st
	if plan.Scratch != nil && st.scratch == nil {
		// First rank to arrive stages scratch for everyone (cooperative
		// scheduling; every rank's moves resolve buffers lazily).
		st.scratch = make([]*device.Buffer, co.n)
		for r, sz := range plan.Scratch {
			if sz > 0 {
				st.scratch[r] = co.devs[r].MustMallocScratch(sz)
			}
		}
	}
	rp := plan.Rank(rc.rank)
	k := rc.p.Kernel()
	esz := int64(dt.Size())
	for pi := range rp.Phases {
		if plan.Fenced && pi > 0 {
			if !rc.fence(plan.Op) {
				return
			}
		}
		ph := &rp.Phases[pi]
		counter := sim.NewCounter(k, len(ph.Dests))
		for _, d := range ph.Dests {
			d := d
			k.Spawn(name(rc.rank, d.To, d.Lane), func(p *sim.Proc) {
				sub := &runCtx{co: co, st: st, rank: rc.rank, p: p, chunk: rc.chunk}
				for i := range ph.Outs {
					m := &ph.Outs[i]
					if m.To != d.To || m.Lane != d.Lane || m.From == m.To {
						continue
					}
					src := sub.bufAt(m.SrcBuf, m.From, m.SrcOff, m.SrcLen())
					if m.Staged {
						sub.put(m.To, src, src.Len(), slot)
					} else {
						dst := sub.bufAt(m.DstBuf, m.To, m.DstOff, m.Bytes)
						sub.putDirect(m.To, dst, src, m.Bytes)
					}
				}
				counter.Done()
			})
		}
		for i := range ph.Outs {
			m := &ph.Outs[i]
			if m.From != m.To {
				continue
			}
			src := rc.bufAt(m.SrcBuf, m.From, m.SrcOff, m.Bytes)
			dst := rc.bufAt(m.DstBuf, m.To, m.DstOff, m.Bytes)
			rc.localCopy(dst, src, m.Bytes)
		}
		for i := range ph.Ins {
			m := &ph.Ins[i]
			if m.Staged {
				si, buf := rc.get(m.From, slot)
				dst := rc.bufAt(m.DstBuf, rc.rank, m.DstOff, m.Bytes)
				if m.Reduce {
					rc.reduceInto(op, dt, dst, buf.Slice(0, m.Bytes), int(m.Bytes/esz))
				} else {
					copy(dst.Bytes(), buf.Bytes()[:m.Bytes])
					rc.p.Sleep(rc.dev().CopyTime(m.Bytes))
				}
				rc.release(m.From, si, slot)
			} else {
				rc.waitDirect(m.From)
			}
		}
		counter.Wait(rc.p)
	}
}

// compName labels a compiled plan's sender processes.
func compName(op string) func(from, to, lane int) string {
	return func(from, to, lane int) string {
		return fmt.Sprintf("comp/%s/r%d-%d.%d", op, from, to, lane)
	}
}

// invalidPlan wraps a compile error as the backend's argument error.
func (c *Comm) invalidPlan(op string, err error) error {
	return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Op: op,
		Rank: c.rank, Msg: err.Error()}
}

// Alltoall exchanges count-element blocks between every rank pair through
// a compiled plan. plan names a strategy key ("direct", "phased", ...);
// empty or "auto" runs the cost-model search. Both buffers hold n blocks.
func (c *Comm) Alltoall(send, recv *device.Buffer, count int, dt Datatype, plan string, s *device.Stream) error {
	if err := c.validate("alltoall", nil, nil, count, dt, nil, 0); err != nil {
		return err
	}
	n := int64(c.core.n)
	blk := int64(count) * int64(dt.Size())
	if send == nil || recv == nil || send.Len() < blk*n || recv.Len() < blk*n {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Op: "alltoall",
			Rank: c.rank, Msg: "alltoall buffers must hold one block per rank"}
	}
	pl, err := c.core.compiledPlan("alltoall", blk, 0, plan)
	if err != nil {
		return c.invalidPlan("alltoall", err)
	}
	a := c.core.newArgs(send, recv, count, 0)
	slot := planSlot(pl)
	c.enqueueColl(s, "alltoall", a, blk, func(rc *runCtx, a *opArgs) {
		rc.chunk = pl.ChunkBytes
		rc.runPlan(pl, dt, Sum, slot, compName("alltoall"))
	})
	return nil
}

// Alltoallv exchanges per-peer-sized blocks through a compiled pairing
// schedule. Counts and displacements are in elements; each rank knows only
// its own, so the move program is built at run time once all ranks'
// arguments rendezvous (see vPlan).
func (c *Comm) Alltoallv(send *device.Buffer, scounts, sdispls []int,
	recv *device.Buffer, rcounts, rdispls []int, dt Datatype, plan string, s *device.Stream) error {
	if err := c.validate("alltoallv", nil, nil, 0, dt, nil, 0); err != nil {
		return err
	}
	n := c.core.n
	if len(scounts) != n || len(sdispls) != n || len(rcounts) != n || len(rdispls) != n {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Op: "alltoallv",
			Rank: c.rank, Msg: "alltoallv wants one count and displacement per rank"}
	}
	key := plan
	if key == "" || key == "auto" {
		// Search on the largest per-peer block — the size that drives the
		// convoy behavior the pairing schedule exists to avoid.
		var maxBytes int64
		esz := int64(dt.Size())
		for _, cnt := range scounts {
			if b := int64(cnt) * esz; b > maxBytes {
				maxBytes = b
			}
		}
		p, err := c.core.compiledPlan("alltoall", maxBytes, 0, "")
		if err != nil {
			return c.invalidPlan("alltoallv", err)
		}
		key = p.Key
	}
	strat, err := comp.ParseKey(key)
	if err != nil {
		return c.invalidPlan("alltoallv", err)
	}
	if err := comp.ValidKey("alltoallv", key); err != nil {
		return c.invalidPlan("alltoallv", err)
	}
	a := c.core.newArgs(send, recv, 0, 0)
	a.scounts, a.sdispls, a.rcounts, a.rdispls = scounts, sdispls, rcounts, rdispls
	esz := int64(dt.Size())
	c.enqueueColl(s, "alltoallv", a, 0, func(rc *runCtx, a *opArgs) {
		pl := rc.vPlan(strat, esz)
		rc.chunk = pl.ChunkBytes
		rc.runPlan(pl, dt, Sum, 1, compName("alltoallv"))
	})
	return nil
}

// vPlan builds (once per op, by the first rank to execute) the alltoallv
// move program from every rank's counts: the pairing schedule is compiled
// (comp.PairPhase), the move list is runtime data. Runs after the start
// rendezvous, so all ranks' opArgs are visible.
func (rc *runCtx) vPlan(strat comp.Strategy, esz int64) *comp.Plan {
	st, co := rc.st, rc.co
	if st.vplan != nil {
		return st.vplan.(*comp.Plan)
	}
	t := co.compTopo()
	nPhases := comp.NumPhases(t, strat)
	plan := &comp.Plan{Op: "alltoallv", Key: strat.Key(), Ranks: co.n,
		Phases: make([]comp.Phase, nPhases), Fenced: nPhases > 1,
		ChunkBytes: strat.Chunk, PipeDepth: 1}
	for r := 0; r < co.n; r++ {
		ar := st.args[r]
		for q := 0; q < co.n; q++ {
			ln := int64(ar.scounts[q]) * esz
			if ln == 0 {
				continue
			}
			ph := comp.PairPhase(t, strat, r, q)
			plan.Phases[ph].Moves = append(plan.Phases[ph].Moves, comp.Move{
				From: r, To: q,
				SrcBuf: comp.SendBuf, SrcOff: int64(ar.sdispls[q]) * esz,
				DstBuf: comp.RecvBuf, DstOff: int64(st.args[q].rdispls[r]) * esz,
				Bytes: ln,
			})
		}
	}
	st.vplan = plan
	return plan
}

// Scatter distributes root's n blocks through a compiled plan (direct fan
// or leader-staged hierarchy). Non-root send buffers may be nil.
func (c *Comm) Scatter(send, recv *device.Buffer, count int, dt Datatype, root int, plan string, s *device.Stream) error {
	if err := c.validate("scatter", nil, recv, count, dt, nil, root); err != nil {
		return err
	}
	n := int64(c.core.n)
	blk := int64(count) * int64(dt.Size())
	if c.rank == root && (send == nil || send.Len() < blk*n) {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Op: "scatter",
			Rank: c.rank, Msg: "scatter root send buffer must hold one block per rank"}
	}
	pl, err := c.core.compiledPlan("scatter", blk, root, plan)
	if err != nil {
		return c.invalidPlan("scatter", err)
	}
	a := c.core.newArgs(send, recv, count, root)
	slot := planSlot(pl)
	c.enqueueColl(s, "scatter", a, blk, func(rc *runCtx, a *opArgs) {
		rc.chunk = pl.ChunkBytes
		rc.runPlan(pl, dt, Sum, slot, compName("scatter"))
	})
	return nil
}

// Gather collects every rank's block at root through a compiled plan.
// Non-root recv buffers may be nil.
func (c *Comm) Gather(send, recv *device.Buffer, count int, dt Datatype, root int, plan string, s *device.Stream) error {
	if err := c.validate("gather", send, nil, count, dt, nil, root); err != nil {
		return err
	}
	n := int64(c.core.n)
	blk := int64(count) * int64(dt.Size())
	if c.rank == root && (recv == nil || recv.Len() < blk*n) {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Op: "gather",
			Rank: c.rank, Msg: "gather root recv buffer must hold one block per rank"}
	}
	pl, err := c.core.compiledPlan("gather", blk, root, plan)
	if err != nil {
		return c.invalidPlan("gather", err)
	}
	a := c.core.newArgs(send, recv, count, root)
	slot := planSlot(pl)
	c.enqueueColl(s, "gather", a, blk, func(rc *runCtx, a *opArgs) {
		rc.chunk = pl.ChunkBytes
		rc.runPlan(pl, dt, Sum, slot, compName("gather"))
	})
	return nil
}

// PlanFor reports the plan the communicator would run for (op, block
// size, root) under the given key (""/"auto" = search): the strategy key
// and its modeled cost. The tuner sweeps candidate keys with this.
func (c *Comm) PlanFor(op string, blockBytes int64, root int, key string) (string, float64, error) {
	p, err := c.core.compiledPlan(op, blockBytes, root, key)
	if err != nil {
		return "", 0, err
	}
	return p.Key, p.Cost, nil
}

// PlanKeys lists the candidate strategy keys for op on this
// communicator's topology.
func (c *Comm) PlanKeys(op string) []string {
	return comp.Keys(op, c.core.compTopo())
}
