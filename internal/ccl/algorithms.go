package ccl

import (
	"fmt"

	"mpixccl/internal/device"
	"mpixccl/internal/elem"
	"mpixccl/internal/sim"
)

func (d Datatype) kind() elem.Kind {
	switch d {
	case Int8:
		return elem.U8
	case Int32:
		return elem.I32
	case Int64:
		return elem.I64
	case Float16:
		return elem.F16
	case Float32:
		return elem.F32
	case Float64:
		return elem.F64
	}
	panic(fmt.Sprintf("ccl: kind for %v", d))
}

func (o RedOp) elemOp() elem.Op {
	switch o {
	case Sum:
		return elem.OpSum
	case Prod:
		return elem.OpProd
	case Max:
		return elem.OpMax
	case Min:
		return elem.OpMin
	}
	panic(fmt.Sprintf("ccl: elem op for %v", o))
}

// reduceBytes is the elementwise kernel used by runCtx.reduceInto.
func reduceBytes(op RedOp, dt Datatype, dst, src []byte, count int) {
	elem.Reduce(op.elemOp(), dt.kind(), dst, src, count)
}

// enqueueColl registers the rank's args under the next sequence number and
// enqueues the rank's part of the algorithm on the stream.
func (c *Comm) enqueueColl(s *device.Stream, name string, a *opArgs, bytes int64,
	run func(rc *runCtx, a *opArgs)) *sim.Event {
	seq := c.seq
	c.seq++
	st := c.core.join(seq, c.rank, a)
	rank := c.rank
	co := c.core
	return s.Enqueue(fmt.Sprintf("%s/%s/r%d", co.cfg.Name, name, rank), func(p *sim.Proc) {
		rc := co.getCtx(st, rank, p)
		defer co.putCtx(rc)
		c.delay(p, name) // injected straggler latency, if any
		rc.launch(bytes)
		if co.watchdog > 0 {
			// A peer already judged this collective dead, or the start
			// rendezvous times out on a fail-stopped peer: abandon the op
			// with an async verdict. finish still runs so the op state
			// drains for the ranks that did show up.
			if st.aborted || !st.start.WaitTimeout(p, co.watchdog) {
				st.aborted = true
				c.asyncErr = co.deadVerdict(name, p.Now())
				co.finish(st)
				return
			}
		} else {
			st.start.Wait(p)
		}
		run(rc, st.args[rank])
		if st.abortErr != nil {
			// A transfer crossed an active network cut mid-schedule. The
			// verdict is shared: every participant's result is void, even
			// ranks whose own hops stayed on one side of the cut.
			c.raiseAsync(st.abortErr)
		}
		co.finish(st)
	})
}

// resolveAlgo maps the forced schedule family (SetAlgorithm) onto what
// this call can actually run, degenerating gracefully: hierarchical on a
// shape without a node hierarchy (or an empty payload) falls back to the
// built-in auto split, and a forced flat ring with fewer elements than
// ranks runs the tree instead (the ring needs one segment per rank).
func (c *Comm) resolveAlgo(count int) (Algorithm, int64) {
	algo := c.algo
	if algo == AlgoAuto {
		return AlgoAuto, 0
	}
	switch algo {
	case AlgoHierarchical:
		if count == 0 || !c.core.hier().ok {
			return AlgoAuto, 0
		}
	case AlgoFlatRing:
		if count < c.core.n {
			return AlgoTree, 0
		}
	}
	return algo, c.hierChunk()
}

// AllReduce combines send into recv across all ranks with op. Large
// payloads run the multi-channel ring (reduce-scatter + allgather); small
// payloads run a latency-oriented binomial tree (reduce + broadcast),
// mirroring NCCL's ring/tree split. A forced algorithm (SetAlgorithm, fed
// by the tuning table) overrides the split and any custom MSCCL schedule.
func (c *Comm) AllReduce(send, recv *device.Buffer, count int, dt Datatype, op RedOp, s *device.Stream) error {
	if err := c.validate("allreduce", send, recv, count, dt, &op, 0); err != nil {
		return err
	}
	bytes := int64(count) * int64(dt.Size())
	a := c.core.newArgs(send, recv, count, 0)
	algo, chunk := c.resolveAlgo(count)
	tree := bytes <= c.core.cfg.TreeThreshold || count < c.core.n
	var custom *Algo
	if algo == AlgoAuto {
		custom = c.core.findAlgo("allreduce", bytes)
		if custom != nil && count < custom.NChunks {
			custom = nil // too few elements to partition
		}
	}
	c.enqueueColl(s, "allreduce", a, bytes, func(rc *runCtx, a *opArgs) {
		if rc.co.n == 1 {
			rc.localCopy(a.recv, a.send, bytes)
			return
		}
		switch algo {
		case AlgoHierarchical:
			rc.hierAllReduce(dt, op, count, chunk)
			return
		case AlgoTree:
			rc.treeAllReduce(dt, op, count)
			return
		case AlgoFlatRing:
			rc.ringAllReduce(dt, op, count)
			return
		}
		if custom != nil {
			rc.localCopy(a.recv, a.send, bytes)
			rc.runCustom(custom, dt, op, count)
			return
		}
		if tree {
			rc.treeAllReduce(dt, op, count)
			return
		}
		rc.ringAllReduce(dt, op, count)
	})
	return nil
}

// Broadcast copies root's send buffer into every rank's recv buffer.
func (c *Comm) Broadcast(send, recv *device.Buffer, count int, dt Datatype, root int, s *device.Stream) error {
	if err := c.validate("broadcast", send, recv, count, dt, nil, root); err != nil {
		return err
	}
	bytes := int64(count) * int64(dt.Size())
	a := c.core.newArgs(send, recv, count, root)
	algo, chunk := c.resolveAlgo(count)
	c.enqueueColl(s, "broadcast", a, bytes, func(rc *runCtx, a *opArgs) {
		if algo == AlgoHierarchical && rc.co.n > 1 {
			rc.hierBroadcast(dt, count, root, chunk)
			return
		}
		rc.treeBroadcast(dt, count, root)
	})
	return nil
}

// Reduce combines send across ranks with op into root's recv buffer.
func (c *Comm) Reduce(send, recv *device.Buffer, count int, dt Datatype, op RedOp, root int, s *device.Stream) error {
	if err := c.validate("reduce", send, recv, count, dt, &op, root); err != nil {
		return err
	}
	bytes := int64(count) * int64(dt.Size())
	a := c.core.newArgs(send, recv, count, root)
	c.enqueueColl(s, "reduce", a, bytes, func(rc *runCtx, a *opArgs) {
		rc.treeReduce(dt, op, count, root)
	})
	return nil
}

// AllGather concatenates each rank's count-element send buffer into every
// rank's recv buffer (size count×n), in rank order.
func (c *Comm) AllGather(send, recv *device.Buffer, count int, dt Datatype, s *device.Stream) error {
	if err := c.validate("allgather", send, nil, count, dt, nil, 0); err != nil {
		return err
	}
	bytes := int64(count) * int64(dt.Size())
	if recv.Len() < bytes*int64(c.core.n) {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Msg: "allgather recv buffer too small"}
	}
	a := c.core.newArgs(send, recv, count, 0)
	algo, chunk := c.resolveAlgo(count)
	c.enqueueColl(s, "allgather", a, bytes, func(rc *runCtx, a *opArgs) {
		if algo == AlgoHierarchical && rc.co.n > 1 {
			rc.hierAllGather(dt, count, chunk)
			return
		}
		rc.ringAllGather(dt, count)
	})
	return nil
}

// ReduceScatter reduces count×n elements with op and leaves rank r's
// count-element block in its recv buffer.
func (c *Comm) ReduceScatter(send, recv *device.Buffer, recvCount int, dt Datatype, op RedOp, s *device.Stream) error {
	if err := c.validate("reducescatter", nil, recv, recvCount, dt, &op, 0); err != nil {
		return err
	}
	bytes := int64(recvCount) * int64(dt.Size())
	if send.Len() < bytes*int64(c.core.n) {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Msg: "reducescatter send buffer too small"}
	}
	a := c.core.newArgs(send, recv, recvCount, 0)
	algo, chunk := c.resolveAlgo(recvCount)
	c.enqueueColl(s, "reducescatter", a, bytes, func(rc *runCtx, a *opArgs) {
		if algo == AlgoHierarchical && rc.co.n > 1 {
			rc.hierReduceScatter(dt, op, recvCount, chunk)
			return
		}
		rc.ringReduceScatter(dt, op, recvCount)
	})
	return nil
}

func (rc *runCtx) localCopy(dst, src *device.Buffer, n int64) {
	if dst != src {
		copy(dst.Bytes()[:n], src.Bytes()[:n])
		rc.p.Sleep(rc.dev().CopyTime(n))
	}
}

// segBounds splits count elements into n segments (element start offsets).
func segBounds(count, n int) []int {
	b := make([]int, n+1)
	base, rem := count/n, count%n
	off := 0
	for i := 0; i < n; i++ {
		b[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	b[n] = count
	return b
}

// ringAllReduce: ring reduce-scatter then ring allgather over the rank's
// recv buffer, with credit-managed scratch for the incoming segments.
func (rc *runCtx) ringAllReduce(dt Datatype, op RedOp, count int) {
	a := rc.st.args[rc.rank]
	n := rc.co.n
	esz := int64(dt.Size())
	rc.localCopy(a.recv, a.send, int64(count)*esz)
	bounds := rc.segs(count, n)
	maxSeg := int64(bounds[1]-bounds[0]) * esz
	if maxSeg == 0 {
		maxSeg = esz
	}
	right := (rc.rank + 1) % n
	left := (rc.rank - 1 + n) % n
	// Reduce-scatter: after n-1 steps rank r owns segment r fully reduced.
	for step := 0; step < n-1; step++ {
		sendSeg := (rc.rank - step - 1 + 2*n) % n
		recvSeg := (rc.rank - step - 2 + 2*n) % n
		so, sl := int64(bounds[sendSeg])*esz, int64(bounds[sendSeg+1]-bounds[sendSeg])*esz
		ro, rl := int64(bounds[recvSeg])*esz, int64(bounds[recvSeg+1]-bounds[recvSeg])*esz
		sent := rc.putAsync(right, rc.slice(a.recv, so, sl), sl, maxSeg)
		slot, buf := rc.get(left, maxSeg)
		if rl > 0 {
			rc.reduceInto(op, dt, rc.slice(a.recv, ro, rl), rc.slice(buf, 0, rl), int(rl/esz))
		}
		rc.release(left, slot, maxSeg)
		sent.Wait(rc.p)
	}
	// Allgather: forward segments through the same credit-managed pipes
	// (the receiver unpacks the slot into place), so a fast sender can
	// never overwrite state a slow neighbor has not consumed yet.
	for step := 0; step < n-1; step++ {
		sendSeg := (rc.rank - step + n) % n
		recvSeg := (rc.rank - step - 1 + 2*n) % n
		so, sl := int64(bounds[sendSeg])*esz, int64(bounds[sendSeg+1]-bounds[sendSeg])*esz
		ro, rl := int64(bounds[recvSeg])*esz, int64(bounds[recvSeg+1]-bounds[recvSeg])*esz
		sent := rc.putAsync(right, rc.slice(a.recv, so, sl), sl, maxSeg)
		slot, buf := rc.get(left, maxSeg)
		if rl > 0 {
			copy(a.recv.Bytes()[ro:ro+rl], buf.Bytes()[:rl])
			rc.p.Sleep(rc.dev().CopyTime(rl))
		}
		rc.release(left, slot, maxSeg)
		sent.Wait(rc.p)
	}
}

// treeAllReduce: binomial reduce to rank 0 followed by binomial broadcast —
// the latency-oriented path for small payloads.
func (rc *runCtx) treeAllReduce(dt Datatype, op RedOp, count int) {
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	rc.localCopy(a.recv, a.send, int64(count)*esz)
	rc.treeReduceInPlace(dt, op, count, 0)
	rc.treeBroadcastBuf(dt, count, 0)
}

// treeReduceInPlace runs a binomial reduction over each rank's recv buffer
// toward root.
func (rc *runCtx) treeReduceInPlace(dt Datatype, op RedOp, count int, root int) {
	n := rc.co.n
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	if bytes == 0 {
		bytes = esz
	}
	rel := (rc.rank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel - mask) + root) % n
			rc.put(parent, rc.st.args[rc.rank].recv, int64(count)*esz, bytes)
			return
		}
		childRel := rel + mask
		if childRel < n {
			child := (childRel + root) % n
			slot, buf := rc.get(child, bytes)
			if count > 0 {
				rc.reduceInto(op, dt, rc.slice(rc.st.args[rc.rank].recv, 0, int64(count)*esz), rc.slice(buf, 0, int64(count)*esz), count)
			}
			rc.release(child, slot, bytes)
		}
	}
}

// treeBroadcast copies root's send buffer down a binomial tree into each
// rank's recv buffer.
func (rc *runCtx) treeBroadcast(dt Datatype, count int, root int) {
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	if rc.rank == root {
		rc.localCopy(a.recv, a.send, int64(count)*esz)
	}
	rc.treeBroadcastBuf(dt, count, root)
}

// treeBroadcastBuf runs the binomial broadcast over each rank's recv buffer,
// assuming root's already holds the payload.
func (rc *runCtx) treeBroadcastBuf(dt Datatype, count int, root int) {
	n := rc.co.n
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	rel := (rc.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := ((rel - mask) + root + n) % n
			rc.waitDirect(parent)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			child := (rel + mask + root) % n
			rc.putDirect(child, rc.slice(rc.st.args[child].recv, 0, bytes), rc.slice(rc.st.args[rc.rank].recv, 0, bytes), bytes)
		}
		mask >>= 1
	}
}

// treeReduce is the standalone Reduce: binomial reduction into scratch so
// non-root send buffers are preserved, landing in root's recv.
func (rc *runCtx) treeReduce(dt Datatype, op RedOp, count int, root int) {
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	acc := rc.dev().MustMallocScratch(bytes) // fully written by the copy below
	defer acc.Free()
	rc.localCopy(acc, a.send, bytes)
	n := rc.co.n
	slotBytes := bytes
	if slotBytes == 0 {
		slotBytes = esz
	}
	rel := (rc.rank - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel - mask) + root) % n
			rc.put(parent, acc, bytes, slotBytes)
			return
		}
		childRel := rel + mask
		if childRel < n {
			child := (childRel + root) % n
			slot, buf := rc.get(child, slotBytes)
			if count > 0 {
				rc.reduceInto(op, dt, acc.Slice(0, bytes), buf.Slice(0, bytes), count)
			}
			rc.release(child, slot, slotBytes)
		}
	}
	if rc.rank == root {
		rc.localCopy(a.recv, acc, bytes)
	}
}

// ringAllGather: rank r's block lands at offset r·count; direct writes
// forward blocks around the ring.
func (rc *runCtx) ringAllGather(dt Datatype, count int) {
	a := rc.st.args[rc.rank]
	n := rc.co.n
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	copy(a.recv.Bytes()[int64(rc.rank)*bytes:(int64(rc.rank)+1)*bytes], a.send.Bytes()[:bytes])
	rc.p.Sleep(rc.dev().CopyTime(bytes))
	if n == 1 {
		return
	}
	right := (rc.rank + 1) % n
	left := (rc.rank - 1 + n) % n
	slotBytes := bytes
	if slotBytes == 0 {
		slotBytes = esz
	}
	for step := 0; step < n-1; step++ {
		sendSeg := (rc.rank - step + n) % n
		recvSeg := (rc.rank - step - 1 + 2*n) % n
		sent := rc.putAsync(right, rc.slice(a.recv, int64(sendSeg)*bytes, bytes), bytes, slotBytes)
		slot, buf := rc.get(left, slotBytes)
		copy(a.recv.Bytes()[int64(recvSeg)*bytes:(int64(recvSeg)+1)*bytes], buf.Bytes()[:bytes])
		rc.p.Sleep(rc.dev().CopyTime(bytes))
		rc.release(left, slot, slotBytes)
		sent.Wait(rc.p)
	}
}

// ringReduceScatter: the reduce-scatter phase alone; rank r's reduced block
// is copied into its recv buffer.
func (rc *runCtx) ringReduceScatter(dt Datatype, op RedOp, recvCount int) {
	a := rc.st.args[rc.rank]
	n := rc.co.n
	esz := int64(dt.Size())
	blk := int64(recvCount) * esz
	work := rc.dev().MustMallocScratch(blk * int64(n)) // fully written by the copy below
	defer work.Free()
	rc.localCopy(work, a.send, blk*int64(n))
	if n > 1 {
		right := (rc.rank + 1) % n
		left := (rc.rank - 1 + n) % n
		slotBytes := blk
		if slotBytes == 0 {
			slotBytes = esz
		}
		for step := 0; step < n-1; step++ {
			sendSeg := (rc.rank - step - 1 + 2*n) % n
			recvSeg := (rc.rank - step - 2 + 2*n) % n
			sent := rc.putAsync(right, work.Slice(int64(sendSeg)*blk, blk), blk, slotBytes)
			slot, buf := rc.get(left, slotBytes)
			rc.reduceInto(op, dt, work.Slice(int64(recvSeg)*blk, blk), buf.Slice(0, blk), recvCount)
			rc.release(left, slot, slotBytes)
			sent.Wait(rc.p)
		}
	}
	rc.localCopy(a.recv, work.Slice(int64(rc.rank)*blk, blk), blk)
}
