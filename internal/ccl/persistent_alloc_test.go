//go:build !race

// The race detector instruments allocations, so the zero-alloc pins in
// this file only hold in a normal build; check.sh runs them un-raced.

package ccl

import (
	"runtime"
	"runtime/debug"
	"testing"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// The persistent-collective contract this PR exists for: after the
// warm-up waves have materialized the schedule's sub-buffer views,
// segment tables, scratch pipes, fabric routes, and waiter-slice
// capacities, a steady-state Start → [Pready…] → Wait wave performs ZERO
// heap allocations on any rank — the stream work item, completion
// events, sender latches, partition gate, and inter-node engine are all
// recycled. The test measures the global malloc count across whole waves
// (every rank parked at a barrier between reads), with GC disabled so
// background collection cannot perturb the counter.

func measureWaveAllocs(t *testing.T, nodes, nranks int, algo Algorithm,
	init func(c *Comm, s *device.Stream) (*PersistentColl, error)) {
	t.Helper()
	const warmWaves = 3
	const measured = 8
	k := sim.NewKernel()
	sys, err := topology.Preset(k, "thetagpu", nodes)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(k, sys)
	comms, err := NewComms(fab, sys.Devices()[:nranks], testBackend())
	if err != nil {
		t.Fatal(err)
	}
	bar := sim.NewBarrier(k, nranks)
	var mallocs [warmWaves + measured]uint64
	for r := range comms {
		r := r
		c := comms[r]
		k.Spawn("rank", func(p *sim.Proc) {
			s := c.Device().NewStream()
			c.SetAlgorithm(algo, 0)
			po, err := init(c, s)
			if err != nil {
				t.Errorf("init: %v", err)
				return
			}
			bar.Wait(p)
			for w := 0; w < warmWaves+measured; w++ {
				if err := po.Do(p); err != nil {
					t.Errorf("wave %d: %v", w, err)
					return
				}
				bar.Wait(p)
				if r == 0 {
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					mallocs[w] = ms.Mallocs
				}
				bar.Wait(p)
			}
		})
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for w := warmWaves; w < warmWaves+measured; w++ {
		if d := mallocs[w] - mallocs[w-1]; d != 0 {
			t.Errorf("steady-state wave %d allocated %d objects across %d ranks; want 0",
				w, d, nranks)
		}
	}
}

// measurePersistentWaveAllocs keeps the historical allreduce entry point.
func measurePersistentWaveAllocs(t *testing.T, nodes, nranks, count, parts int, algo Algorithm) {
	t.Helper()
	measureWaveAllocs(t, nodes, nranks, algo, func(c *Comm, s *device.Stream) (*PersistentColl, error) {
		send := c.Device().MustMalloc(int64(count) * 4)
		recv := c.Device().MustMalloc(int64(count) * 4)
		return c.AllReduceInitPartitioned(send, recv, count, Float32, Sum, parts, s)
	})
}

func TestPersistentSteadyStateAllocFreeTree(t *testing.T) {
	measurePersistentWaveAllocs(t, 1, 4, 1024, 1, AlgoTree)
}

func TestPersistentSteadyStateAllocFreeRing(t *testing.T) {
	measurePersistentWaveAllocs(t, 1, 4, 256<<10/4, 1, AlgoFlatRing)
}

func TestPersistentSteadyStateAllocFreeHier(t *testing.T) {
	measurePersistentWaveAllocs(t, 2, 16, 256<<10/4, 1, AlgoHierarchical)
}

func TestPersistentSteadyStateAllocFreePartitionedHier(t *testing.T) {
	measurePersistentWaveAllocs(t, 2, 16, 256<<10/4, 8, AlgoHierarchical)
}

func TestPersistentSteadyStateAllocFreePartitionedTree(t *testing.T) {
	measurePersistentWaveAllocs(t, 1, 4, 1024, 4, AlgoTree)
}

// The same zero-alloc contract for the persistent broadcast handles (tree
// and chunked hierarchical fan-out, including the root-substituted rep
// group with root ≠ node leader, which must be memoized).
func TestPersistentSteadyStateAllocFreeBcastTree(t *testing.T) {
	measureWaveAllocs(t, 1, 4, AlgoTree, func(c *Comm, s *device.Stream) (*PersistentColl, error) {
		buf := c.Device().MustMalloc(4096 * 4)
		return c.BcastInit(buf, buf, 4096, Float32, 2, s)
	})
}

func TestPersistentSteadyStateAllocFreeBcastHier(t *testing.T) {
	measureWaveAllocs(t, 2, 16, AlgoHierarchical, func(c *Comm, s *device.Stream) (*PersistentColl, error) {
		buf := c.Device().MustMalloc(64 << 10)
		return c.BcastInit(buf, buf, 64<<10/4, Float32, 3, s)
	})
}

// ...and the persistent allgather handles: the ring's resident sender
// daemon and the hierarchical leader's resident block-set forwarder.
func TestPersistentSteadyStateAllocFreeAllgatherRing(t *testing.T) {
	measureWaveAllocs(t, 1, 4, AlgoFlatRing, func(c *Comm, s *device.Stream) (*PersistentColl, error) {
		send := c.Device().MustMalloc(16 << 10)
		recv := c.Device().MustMalloc(4 * 16 << 10)
		return c.AllgatherInit(send, recv, 16<<10/4, Float32, s)
	})
}

func TestPersistentSteadyStateAllocFreeAllgatherHier(t *testing.T) {
	measureWaveAllocs(t, 2, 16, AlgoHierarchical, func(c *Comm, s *device.Stream) (*PersistentColl, error) {
		send := c.Device().MustMalloc(16 << 10)
		recv := c.Device().MustMalloc(16 * 16 << 10)
		return c.AllgatherInit(send, recv, 16<<10/4, Float32, s)
	})
}
