package ccl

import (
	"sort"

	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// Topology-aware hierarchical collectives: the NCCL-style decomposition
// where the payload is combined within each node over the fast intra-node
// fabric first, only the node leaders exchange over the slow inter-node
// links, and the result fans back out inside each node. Payloads are split
// into fixed-size chunks that flow through the three phases as a software
// pipeline, so the inter-node exchange of chunk k overlaps the intra-node
// work of chunk k+1 (the leader drives the inter-node phase on a helper
// process fed through a chunk queue). All data movement reuses the
// credit-managed scratch pipes of the flat algorithms; intra-node,
// leader-leader, and fan-out hops use disjoint directed pipe keys, so the
// phases never contend for each other's flow-control credits.

// Algorithm selects a collective schedule family. The zero value (AlgoAuto)
// keeps the backend's built-in size-based ring/tree split; the dispatch
// layer forces a specific family per tuned size band (core.TuningTable v2).
type Algorithm int

const (
	// AlgoAuto is the backend default: tree below TreeThreshold, flat ring
	// above, custom MSCCL schedules when registered.
	AlgoAuto Algorithm = iota
	// AlgoFlatRing forces the flat (topology-blind) ring.
	AlgoFlatRing
	// AlgoTree forces the latency-oriented binomial tree.
	AlgoTree
	// AlgoHierarchical forces the two-level node-leader decomposition with
	// chunked pipelining. Degenerates to AlgoAuto when the communicator does
	// not span multiple nodes (or no node holds more than one rank), so a
	// tuned table built on a multi-node shape stays safe on any shape.
	AlgoHierarchical
)

// String names the algorithm as the tuning table spells it.
func (a Algorithm) String() string {
	switch a {
	case AlgoFlatRing:
		return "flat-ring"
	case AlgoTree:
		return "tree"
	case AlgoHierarchical:
		return "hierarchical"
	}
	return "auto"
}

// defaultHierChunkBytes is the pipeline chunk used when neither the caller
// nor the backend Config picks one.
const defaultHierChunkBytes = 1 << 20

// SetAlgorithm forces the schedule family (and hierarchical pipeline chunk;
// 0 = Config.HierChunkBytes) for this rank handle's subsequent collectives.
// AlgoAuto restores the backend default. The dispatch layer calls this with
// the tuned table's per-size-band choice; all ranks must agree per call,
// which holds because the choice is a pure function of (op, payload size).
func (c *Comm) SetAlgorithm(a Algorithm, chunkBytes int64) {
	c.algo = a
	c.algoChunk = chunkBytes
}

// Algorithm reports the forced schedule family and chunk override.
func (c *Comm) Algorithm() (Algorithm, int64) { return c.algo, c.algoChunk }

// hierChunk resolves the pipeline chunk size for this call.
func (c *Comm) hierChunk() int64 {
	if c.algoChunk > 0 {
		return c.algoChunk
	}
	if c.core.cfg.HierChunkBytes > 0 {
		return c.core.cfg.HierChunkBytes
	}
	return defaultHierChunkBytes
}

// hierPlan is the communicator's node hierarchy, read from device placement
// (device.Node): one leader per node plus per-rank positions. Built once
// and cached on the shared core — devices never move after NewComms.
type hierPlan struct {
	// ok reports the shape hierarchy helps: several nodes, and at least one
	// node holding more than one rank.
	ok bool
	// leaders holds one leader rank per node, in node-id order.
	leaders []int
	// locals[i] lists the comm ranks on node i (same node order), ascending.
	locals [][]int
	// nodeIdx[r] is rank r's node index into leaders/locals.
	nodeIdx []int
	// localIdx[r] is rank r's position within locals[nodeIdx[r]].
	localIdx []int
}

// hier returns (building on first use) the cached node plan.
func (co *core) hier() *hierPlan {
	if co.hierCache != nil {
		return co.hierCache
	}
	byNode := map[int][]int{}
	for r := 0; r < co.n; r++ {
		n := co.devs[r].Node
		byNode[n] = append(byNode[n], r)
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	hp := &hierPlan{
		nodeIdx:  make([]int, co.n),
		localIdx: make([]int, co.n),
	}
	packed := false
	for i, n := range nodes {
		ranks := byNode[n]
		hp.leaders = append(hp.leaders, ranks[0])
		hp.locals = append(hp.locals, ranks)
		if len(ranks) > 1 {
			packed = true
		}
		for j, r := range ranks {
			hp.nodeIdx[r] = i
			hp.localIdx[r] = j
		}
	}
	hp.ok = len(nodes) > 1 && packed
	co.hierCache = hp
	return hp
}

// chunkRange returns the element range [lo, lo+n) of chunk ck when count
// elements are cut into ce-element chunks.
func chunkRange(count, ce, ck int) (lo, n int) {
	lo = ck * ce
	n = count - lo
	if n > ce {
		n = ce
	}
	return lo, n
}

// hierAllReduce is the three-phase pipelined allreduce: per chunk, a
// binomial intra-node reduction into the node leader (phase A), a ring
// allreduce over the leader group (phase B, on a helper process so it
// overlaps phase A of the next chunk), and a binomial intra-node broadcast
// (phase C) as soon as the ring delivers the chunk.
func (rc *runCtx) hierAllReduce(dt Datatype, op RedOp, count int, chunkBytes int64) {
	hp := rc.co.hier()
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	// A partition-gated persistent schedule stages each chunk as its
	// partition becomes ready (stageChunk below); everything else stages the
	// whole payload up front.
	if rc.gate() == nil {
		rc.localCopy(a.recv, a.send, int64(count)*esz)
	}

	locals := hp.locals[hp.nodeIdx[rc.rank]]
	li := hp.localIdx[rc.rank]
	m := len(hp.leaders)
	ce := int(chunkBytes / esz)
	if ce < 1 {
		ce = 1
	}
	nchunks := (count + ce - 1) / ce
	slotBytes := int64(ce) * esz

	if li != 0 {
		// Non-leader: feed chunks up the intra tree, then receive results.
		for ck := 0; ck < nchunks; ck++ {
			lo, cn := chunkRange(count, ce, ck)
			rc.stageChunk(a, int64(lo)*esz, int64(cn)*esz, ck)
			rc.intraTreeReduce(locals, li, dt, op, a.recv, int64(lo)*esz, cn, slotBytes)
		}
		rc.waitAllParts()
		for ck := 0; ck < nchunks; ck++ {
			lo, cn := chunkRange(count, ce, ck)
			rc.intraTreeBcast(locals, li, 0, int64(lo)*esz, int64(cn)*esz)
		}
		return
	}

	// Leader: the inter-node engine runs the leader ring per chunk on its
	// own process, fed through a queue, so chunk k's inter-node exchange
	// overlaps chunk k+1's intra-node reduction. A persistent handle brings
	// its own resident engine (persistent.go); the one-shot path spawns one
	// per call.
	var ready *sim.Chan[int]
	var done []*sim.Event
	if m > 1 {
		if rc.pers != nil && rc.pers.eng != nil {
			ready, done = rc.pers.eng.ready, rc.pers.eng.done
			for _, ev := range done {
				ev.Reset()
			}
		} else {
			k := rc.p.Kernel()
			ready = sim.NewChan[int](k, nchunks+1)
			done = make([]*sim.Event, nchunks)
			for i := range done {
				done[i] = sim.NewEvent(k)
			}
			co, st, rank := rc.co, rc.st, rc.rank
			k.Spawn(co.cfg.Name+"/hier/engine", func(p *sim.Proc) {
				sub := co.getCtx(st, rank, p)
				for i := 0; i < nchunks; i++ {
					ck := ready.Recv(p)
					sub.hierInterAllReduce(hp, dt, op, count, ce, ck)
					done[ck].Fire()
				}
				co.putCtx(sub)
			})
		}
	}
	for ck := 0; ck < nchunks; ck++ {
		lo, cn := chunkRange(count, ce, ck)
		rc.stageChunk(a, int64(lo)*esz, int64(cn)*esz, ck)
		rc.intraTreeReduce(locals, li, dt, op, a.recv, int64(lo)*esz, cn, slotBytes)
		if m > 1 {
			ready.Send(rc.p, ck)
		}
	}
	rc.waitAllParts()
	for ck := 0; ck < nchunks; ck++ {
		if m > 1 {
			done[ck].Wait(rc.p)
		}
		lo, cn := chunkRange(count, ce, ck)
		rc.intraTreeBcast(locals, li, 0, int64(lo)*esz, int64(cn)*esz)
	}
}

// hierInterAllReduce runs one chunk's ring allreduce (reduce-scatter +
// allgather) over the leader group, in place over the leader's recv buffer.
func (rc *runCtx) hierInterAllReduce(hp *hierPlan, dt Datatype, op RedOp, count, ce, ck int) {
	m := len(hp.leaders)
	idx := hp.nodeIdx[rc.rank]
	right := hp.leaders[(idx+1)%m]
	left := hp.leaders[(idx-1+m)%m]
	lo, cn := chunkRange(count, ce, ck)
	esz := int64(dt.Size())
	base := int64(lo) * esz
	recv := rc.st.args[rc.rank].recv
	bounds := rc.segs(cn, m)
	slotBytes := int64(bounds[1]-bounds[0]) * esz
	if slotBytes == 0 {
		slotBytes = esz
	}
	seg := func(s int) (int64, int64) {
		return base + int64(bounds[s])*esz, int64(bounds[s+1]-bounds[s]) * esz
	}
	// Reduce-scatter: after m-1 steps leader idx owns segment idx reduced.
	for step := 0; step < m-1; step++ {
		so, sl := seg((idx - step - 1 + 2*m) % m)
		ro, rl := seg((idx - step - 2 + 2*m) % m)
		var sent *sim.Counter
		if sl > 0 {
			sent = rc.putAsync(right, rc.slice(recv, so, sl), sl, slotBytes)
		}
		if rl > 0 {
			slot, buf := rc.get(left, slotBytes)
			rc.reduceInto(op, dt, rc.slice(recv, ro, rl), rc.slice(buf, 0, rl), int(rl/esz))
			rc.release(left, slot, slotBytes)
		}
		if sent != nil {
			sent.Wait(rc.p)
		}
	}
	// Allgather: forward the reduced segments around the same ring.
	for step := 0; step < m-1; step++ {
		so, sl := seg((idx - step + m) % m)
		ro, rl := seg((idx - step - 1 + 2*m) % m)
		var sent *sim.Counter
		if sl > 0 {
			sent = rc.putAsync(right, rc.slice(recv, so, sl), sl, slotBytes)
		}
		if rl > 0 {
			slot, buf := rc.get(left, slotBytes)
			copy(recv.Bytes()[ro:ro+rl], buf.Bytes()[:rl])
			rc.p.Sleep(rc.dev().CopyTime(rl))
			rc.release(left, slot, slotBytes)
		}
		if sent != nil {
			sent.Wait(rc.p)
		}
	}
}

// intraTreeReduce runs a binomial reduction of buf[off:off+count·esz] over
// the same-node rank group toward group[0]. Every rank passes its own
// accumulation buffer; payload moves through the credit-managed pipes.
func (rc *runCtx) intraTreeReduce(group []int, idx int, dt Datatype, op RedOp,
	buf *device.Buffer, off int64, count int, slotBytes int64) {
	n := len(group)
	if n <= 1 || count == 0 {
		return
	}
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	mine := rc.slice(buf, off, bytes)
	for mask := 1; mask < n; mask <<= 1 {
		if idx&mask != 0 {
			rc.put(group[idx-mask], mine, bytes, slotBytes)
			return
		}
		if idx+mask < n {
			child := group[idx+mask]
			slot, s := rc.get(child, slotBytes)
			rc.reduceInto(op, dt, mine, rc.slice(s, 0, bytes), count)
			rc.release(child, slot, slotBytes)
		}
	}
}

// intraTreeBcast broadcasts each rank's recv[off:off+bytes] region down a
// binomial tree rooted at group[rootIdx], via direct writes into the user
// buffers (the region is written exactly once per chunk).
func (rc *runCtx) intraTreeBcast(group []int, idx, rootIdx int, off, bytes int64) {
	n := len(group)
	if n <= 1 || bytes == 0 {
		return
	}
	rel := (idx - rootIdx + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			rc.waitDirect(group[(rel-mask+rootIdx)%n])
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			child := group[(rel+mask+rootIdx)%n]
			rc.putDirect(child, rc.slice(rc.st.args[child].recv, off, bytes),
				rc.slice(rc.st.args[rc.rank].recv, off, bytes), bytes)
		}
		mask >>= 1
	}
}

// hierBroadcast: per chunk, a binomial broadcast over one representative
// per node (the root stands in for its node's leader), then a binomial
// fan-out within each node. Chunking lets the fan-out of chunk k overlap
// the inter-node hop of chunk k+1 as a wave pipeline.
func (rc *runCtx) hierBroadcast(dt Datatype, count, root int, chunkBytes int64) {
	hp := rc.co.hier()
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	if rc.rank == root {
		rc.localCopy(a.recv, a.send, int64(count)*esz)
	}
	if count == 0 {
		return
	}
	rootNode := hp.nodeIdx[root]
	reps := hp.leaders
	if hp.leaders[rootNode] != root {
		// The root stands in for its node's leader. Persistent schedules
		// memoize the substituted group — the root never changes per handle.
		if rc.pers != nil && rc.pers.reps != nil {
			reps = rc.pers.reps
		} else {
			reps = make([]int, len(hp.leaders))
			copy(reps, hp.leaders)
			reps[rootNode] = root
			if rc.pers != nil {
				rc.pers.reps = reps
			}
		}
	}
	locals := hp.locals[hp.nodeIdx[rc.rank]]
	li := hp.localIdx[rc.rank]
	// My node's representative position within locals (root may not be the
	// leader on its own node).
	repIdx := 0
	if hp.nodeIdx[rc.rank] == rootNode {
		repIdx = hp.localIdx[root]
	}
	isRep := rc.rank == reps[hp.nodeIdx[rc.rank]]
	ce := int(chunkBytes / esz)
	if ce < 1 {
		ce = 1
	}
	nchunks := (count + ce - 1) / ce
	for ck := 0; ck < nchunks; ck++ {
		lo, cn := chunkRange(count, ce, ck)
		off, bytes := int64(lo)*esz, int64(cn)*esz
		if isRep {
			rc.interTreeBcast(reps, hp.nodeIdx[rc.rank], rootNode, off, bytes)
		}
		rc.intraTreeBcast(locals, li, repIdx, off, bytes)
	}
}

// interTreeBcast is intraTreeBcast over the per-node representative group
// (kept separate for the name in pipe-key traces; same direct-write tree).
func (rc *runCtx) interTreeBcast(group []int, idx, rootIdx int, off, bytes int64) {
	rc.intraTreeBcast(group, idx, rootIdx, off, bytes)
}

// hierAllGather: local blocks gather at the node leader (direct writes at
// their final offsets), leaders ring-forward whole node block-sets, and
// each leader fans the assembled buffer out to its node in pipeline chunks.
func (rc *runCtx) hierAllGather(dt Datatype, count int, chunkBytes int64) {
	hp := rc.co.hier()
	a := rc.st.args[rc.rank]
	esz := int64(dt.Size())
	blk := int64(count) * esz
	copy(a.recv.Bytes()[int64(rc.rank)*blk:(int64(rc.rank)+1)*blk], a.send.Bytes()[:blk])
	rc.p.Sleep(rc.dev().CopyTime(blk))
	if count == 0 {
		return
	}
	ni := hp.nodeIdx[rc.rank]
	locals := hp.locals[ni]
	li := hp.localIdx[rc.rank]
	leader := locals[0]
	m := len(hp.leaders)

	if li != 0 {
		// Phase A: deliver my block straight into the leader's recv at its
		// final offset, then wait for the assembled result (phase C).
		rc.putDirect(leader, rc.slice(rc.st.args[leader].recv, int64(rc.rank)*blk, blk),
			rc.slice(a.recv, int64(rc.rank)*blk, blk), blk)
		rc.hierAllGatherFanIn(locals, li, int64(rc.co.n)*blk, chunkBytes)
		return
	}
	for _, r := range locals[1:] {
		rc.waitDirect(r)
	}
	// Phase B: m-1 ring steps; step s forwards the block-set of node
	// (idx-s) to the right while receiving node (idx-s-1) from the left.
	// Sends run on a helper process so the ring stays full duplex — the
	// resident forwarder of a persistent handle, or a per-step spawn on the
	// one-shot path.
	if m > 1 {
		right := hp.leaders[(ni+1)%m]
		left := hp.leaders[(ni-1+m)%m]
		co, st, rank := rc.co, rc.st, rc.rank
		for step := 0; step < m-1; step++ {
			srcNode := (ni - step + m) % m
			inNode := (ni - step - 1 + 2*m) % m
			var sent *sim.Counter
			if rc.pers != nil && rc.pers.fwd != nil {
				sent = rc.pers.fwd.post(srcNode)
			} else {
				oneShot := sim.NewCounter(rc.p.Kernel(), 1)
				rc.p.Kernel().Spawn(co.putName(rank, right), func(p *sim.Proc) {
					sub := co.getCtx(st, rank, p)
					for _, r := range hp.locals[srcNode] {
						sub.putDirect(right, st.args[right].recv.Slice(int64(r)*blk, blk),
							st.args[rank].recv.Slice(int64(r)*blk, blk), blk)
					}
					co.putCtx(sub)
					oneShot.Done()
				})
				sent = oneShot
			}
			for range hp.locals[inNode] {
				rc.waitDirect(left)
			}
			sent.Wait(rc.p)
		}
	}
	// Phase C: fan the fully assembled buffer out within the node.
	rc.hierAllGatherFanIn(locals, li, int64(rc.co.n)*blk, chunkBytes)
}

// hierAllGatherFanIn runs the chunked intra-node broadcast of the whole
// recv buffer from the leader (re-sending a rank its own block is harmless
// and keeps every chunk a contiguous direct write).
func (rc *runCtx) hierAllGatherFanIn(locals []int, li int, total int64, chunkBytes int64) {
	if len(locals) <= 1 {
		return
	}
	if chunkBytes < 1 {
		chunkBytes = 1
	}
	for off := int64(0); off < total; off += chunkBytes {
		bytes := total - off
		if bytes > chunkBytes {
			bytes = chunkBytes
		}
		rc.intraTreeBcast(locals, li, 0, off, bytes)
	}
}

// hierReduceScatter: chunked intra-node tree reduction of the full payload
// into the node leader, a leader ring reduce-scatter at node block-set
// granularity, then each leader delivers its local ranks' reduced blocks.
func (rc *runCtx) hierReduceScatter(dt Datatype, op RedOp, recvCount int, chunkBytes int64) {
	hp := rc.co.hier()
	a := rc.st.args[rc.rank]
	n := rc.co.n
	esz := int64(dt.Size())
	blk := int64(recvCount) * esz
	total := blk * int64(n)
	work := rc.dev().MustMallocScratch(total) // fully written by the copy below
	defer work.Free()
	rc.localCopy(work, a.send, total)

	ni := hp.nodeIdx[rc.rank]
	locals := hp.locals[ni]
	li := hp.localIdx[rc.rank]
	m := len(hp.leaders)

	// Phase A: chunked binomial reduction of the whole payload to the leader.
	ce := int(chunkBytes / esz)
	if ce < 1 {
		ce = 1
	}
	totalCount := recvCount * n
	nchunks := (totalCount + ce - 1) / ce
	slotBytes := int64(ce) * esz
	for ck := 0; ck < nchunks; ck++ {
		lo, cn := chunkRange(totalCount, ce, ck)
		rc.intraTreeReduce(locals, li, dt, op, work, int64(lo)*esz, cn, slotBytes)
	}

	if li != 0 {
		rc.waitDirect(locals[0])
		return
	}
	// Phase B: ring reduce-scatter over leaders; the segments are node
	// block-sets (one slot-pipelined put per member block, so uneven nodes
	// exchange unequal step volumes without extra synchronization).
	if m > 1 {
		right := hp.leaders[(ni+1)%m]
		left := hp.leaders[(ni-1+m)%m]
		co, st, rank := rc.co, rc.st, rc.rank
		for step := 0; step < m-1; step++ {
			sendNode := (ni - step - 1 + 2*m) % m
			recvNode := (ni - step - 2 + 2*m) % m
			sent := sim.NewCounter(rc.p.Kernel(), 1)
			rc.p.Kernel().Spawn(co.putName(rank, right), func(p *sim.Proc) {
				sub := co.getCtx(st, rank, p)
				for _, r := range hp.locals[sendNode] {
					sub.put(right, work.Slice(int64(r)*blk, blk), blk, blk)
				}
				co.putCtx(sub)
				sent.Done()
			})
			for _, r := range hp.locals[recvNode] {
				slot, buf := rc.get(left, blk)
				rc.reduceInto(op, dt, work.Slice(int64(r)*blk, blk), buf.Slice(0, blk), recvCount)
				rc.release(left, slot, blk)
			}
			sent.Wait(rc.p)
		}
	}
	// Phase C: deliver each local rank's reduced block.
	for _, r := range locals[1:] {
		rc.putDirect(r, rc.st.args[r].recv.Slice(0, blk), work.Slice(int64(r)*blk, blk), blk)
	}
	rc.localCopy(a.recv, work.Slice(int64(rc.rank)*blk, blk), blk)
}
