package ccl

import (
	"errors"
	"fmt"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
)

// p2pChan returns the posting channel for messages src→dst. CCL p2p has no
// tags: sends and receives between a pair match strictly in order.
func (co *core) p2pChan(src, dst int) *sim.Chan[*p2pSlot] {
	key := [2]int{src, dst}
	ch, ok := co.p2pPost[key]
	if !ok {
		ch = sim.NewChan[*p2pSlot](co.fab.Kernel(), 4096)
		co.p2pPost[key] = ch
	}
	return ch
}

func (c *Comm) validateP2P(opName string, buf *device.Buffer, count int, dt Datatype, peer int) error {
	cfg := &c.core.cfg
	if err := c.inject(opName); err != nil {
		return err
	}
	if peer < 0 || peer >= c.core.n {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: fmt.Sprintf("peer %d out of range", peer)}
	}
	if !cfg.Datatypes[dt] {
		return &Error{Backend: cfg.Name, Result: ErrUnsupportedDatatype, Op: opName, Rank: c.rank,
			Msg: fmt.Sprintf("datatype %v not supported", dt)}
	}
	if int64(count)*int64(dt.Size()) > buf.Len() {
		return &Error{Backend: cfg.Name, Result: ErrInvalidArgument, Op: opName, Rank: c.rank,
			Msg: "buffer too small"}
	}
	return nil
}

// runSend executes one send: wait for the peer's posted receive, move the
// bytes, signal completion. With the watchdog armed, a receive that is
// never posted (fail-stopped peer) resolves to an ErrRankDead verdict.
func (co *core) runSend(p *sim.Proc, rank int, op p2pOp) error {
	var slot *p2pSlot
	if co.watchdog > 0 {
		s, ok := co.p2pChan(rank, op.peer).RecvTimeout(p, co.watchdog)
		if !ok {
			return co.deadVerdict("send", p.Now())
		}
		slot = s
	} else {
		slot = co.p2pChan(rank, op.peer).Recv(p)
	}
	if slot.bytes < op.bytes {
		panic(fmt.Sprintf("ccl: send of %d bytes into %d-byte posted recv", op.bytes, slot.bytes))
	}
	co.countXfer(op.bytes)
	_, err := co.fab.TryTransfer(p, slot.buf.Slice(0, op.bytes), op.buf.Slice(0, op.bytes), op.bytes,
		co.fabOpts())
	if err != nil {
		if !errors.Is(err, fabric.ErrPartitioned) {
			panic(err)
		}
		// The route is severed: fire the peer's completion anyway so the
		// posted receive resolves in bounded time, and report the verdict —
		// the caller raises it as this rank's async error.
		slot.done.Fire()
		return co.severedVerdict(p.Now())
	}
	slot.done.Fire()
	return nil
}

// Send transmits count elements to peer on the stream. Outside a group it
// enqueues immediately; inside a group it is deferred to GroupEnd.
// CCL p2p matches by order per pair — there are no tags (§3.3).
func (c *Comm) Send(buf *device.Buffer, count int, dt Datatype, peer int, s *device.Stream) error {
	if err := c.validateP2P("send", buf, count, dt, peer); err != nil {
		return err
	}
	op := p2pOp{peer: peer, buf: buf, bytes: int64(count) * int64(dt.Size())}
	if c.group != nil {
		c.group.sends = append(c.group.sends, op)
		c.group.stream = s
		return nil
	}
	co := c.core
	rank := c.rank
	s.Enqueue(fmt.Sprintf("%s/send/r%d", co.cfg.Name, rank), func(p *sim.Proc) {
		co.countLaunch("p2p")
		c.delay(p, "send")
		p.Sleep(co.cfg.Launch)
		if err := co.runSend(p, rank, op); err != nil {
			c.raiseAsync(err)
		}
	})
	return nil
}

// Recv posts a receive of count elements from peer on the stream; deferred
// to GroupEnd inside a group.
func (c *Comm) Recv(buf *device.Buffer, count int, dt Datatype, peer int, s *device.Stream) error {
	if err := c.validateP2P("recv", buf, count, dt, peer); err != nil {
		return err
	}
	op := p2pOp{peer: peer, buf: buf, bytes: int64(count) * int64(dt.Size())}
	if c.group != nil {
		c.group.recvs = append(c.group.recvs, op)
		c.group.stream = s
		return nil
	}
	co := c.core
	rank := c.rank
	s.Enqueue(fmt.Sprintf("%s/recv/r%d", co.cfg.Name, rank), func(p *sim.Proc) {
		co.countLaunch("p2p")
		c.delay(p, "recv")
		p.Sleep(co.cfg.Launch)
		slot := &p2pSlot{buf: op.buf, bytes: op.bytes, done: sim.NewEvent(p.Kernel())}
		if co.watchdog > 0 {
			if !co.p2pChan(op.peer, rank).SendTimeout(p, slot, co.watchdog) ||
				!slot.done.WaitTimeout(p, co.watchdog) {
				c.raiseAsync(co.deadVerdict("recv", p.Now()))
			}
			return
		}
		co.p2pChan(op.peer, rank).Send(p, slot)
		slot.done.Wait(p)
	})
	return nil
}

// GroupStart begins batching Send/Recv calls on this rank handle
// (xcclGroupStart). Groups fuse the batched operations into one stream
// task: all receives are posted first, then sends run concurrently — the
// mechanism that makes Listing 1's AlltoAllv deadlock-free.
func (c *Comm) GroupStart() error {
	if c.group != nil {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Msg: "nested group"}
	}
	c.group = &groupOps{}
	return nil
}

// GroupEnd enqueues the batched operations as one fused task (xcclGroupEnd).
func (c *Comm) GroupEnd() error {
	if c.group == nil {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Msg: "group end without start"}
	}
	g := c.group
	c.group = nil
	if len(g.sends) == 0 && len(g.recvs) == 0 {
		return nil
	}
	if g.stream == nil {
		return &Error{Backend: c.core.cfg.Name, Result: ErrInvalidArgument, Msg: "group with no stream"}
	}
	co := c.core
	rank := c.rank

	g.stream.Enqueue(fmt.Sprintf("%s/group/r%d", co.cfg.Name, rank), func(p *sim.Proc) {
		// One launch for the whole fused group: this is why group calls
		// beat per-message launches.
		co.countLaunch("group")
		co.countGroup(len(g.sends) + len(g.recvs))
		c.delay(p, "group")
		p.Sleep(co.cfg.Launch)
		k := p.Kernel()
		// Post every receive first (non-blocking), so no send can wait
		// on a receive that is queued behind it.
		slots := make([]*p2pSlot, len(g.recvs))
		for i, op := range g.recvs {
			slots[i] = &p2pSlot{buf: op.buf, bytes: op.bytes, done: sim.NewEvent(k)}
			if co.watchdog > 0 {
				if !co.p2pChan(op.peer, rank).SendTimeout(p, slots[i], co.watchdog) {
					c.raiseAsync(co.deadVerdict("group", p.Now()))
				}
			} else {
				co.p2pChan(op.peer, rank).Send(p, slots[i])
			}
		}
		// Run sends concurrently; link contention serializes them physically.
		counter := sim.NewCounter(k, len(g.sends))
		for _, op := range g.sends {
			op := op
			k.Spawn(fmt.Sprintf("%s/gsend/r%d-%d", co.cfg.Name, rank, op.peer), func(cp *sim.Proc) {
				if err := co.runSend(cp, rank, op); err != nil {
					c.raiseAsync(err)
				}
				counter.Done()
			})
		}
		if co.watchdog > 0 {
			// Each timed wait is bounded on its own (the gsend helpers and
			// posted receives carry per-wait deadlines), so the fused task
			// as a whole resolves in bounded virtual time too.
			if !counter.WaitTimeout(p, 2*co.watchdog) {
				c.raiseAsync(co.deadVerdict("group", p.Now()))
			}
			for _, slot := range slots {
				if !slot.done.WaitTimeout(p, co.watchdog) {
					c.raiseAsync(co.deadVerdict("group", p.Now()))
				}
			}
			return
		}
		counter.Wait(p)
		for _, slot := range slots {
			slot.done.Wait(p)
		}
	})
	return nil
}

// GroupAbort discards a group left open by a failed batched call, so the
// next GroupStart (a fallback retry, or the MPI path's caller moving on)
// does not see a phantom nested group. Safe when no group is open.
func (c *Comm) GroupAbort() { c.group = nil }
