// Package ccl implements the common machinery of vendor collective
// communication libraries ("xCCLs"): NCCL-style communicators, the five
// built-in collectives (AllReduce, Broadcast, Reduce, AllGather,
// ReduceScatter), point-to-point Send/Recv with Group semantics, and the
// stream-ordered execution model. Vendor packages (ccl/nccl, ccl/rccl,
// ccl/hccl, ccl/msccl) instantiate this machinery with their own
// capability matrices, launch overheads, and channel budgets.
//
// Collectives execute on device streams: a call enqueues the rank's part
// of the algorithm and returns; peers' stream tasks rendezvous inside the
// simulation, move real bytes over the fabric, and complete in virtual
// time. This mirrors how the paper's abstraction layer has to manage CCL
// asynchrony (stream handling, §1.2 advantage 2).
package ccl

import (
	"errors"
	"fmt"
	"time"

	"mpixccl/internal/device"
)

// Datatype is the CCL element type (ncclDataType_t analogue).
type Datatype int

const (
	// Int8 is ncclInt8.
	Int8 Datatype = iota
	// Int32 is ncclInt32.
	Int32
	// Int64 is ncclInt64.
	Int64
	// Float16 is ncclFloat16.
	Float16
	// Float32 is ncclFloat32.
	Float32
	// Float64 is ncclFloat64.
	Float64
)

var cclTypeInfo = map[Datatype]struct {
	name string
	size int
}{
	Int8:    {"xcclInt8", 1},
	Int32:   {"xcclInt32", 4},
	Int64:   {"xcclInt64", 8},
	Float16: {"xcclFloat16", 2},
	Float32: {"xcclFloat32", 4},
	Float64: {"xcclFloat64", 8},
}

// Size returns the element size in bytes. It is consulted on every
// collective validation and algorithm step, so it avoids the map lookup.
func (d Datatype) Size() int {
	switch d {
	case Int8:
		return 1
	case Float16:
		return 2
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	}
	panic(fmt.Sprintf("ccl: unknown datatype %d", int(d)))
}

// String returns the xccl constant name.
func (d Datatype) String() string {
	if info, ok := cclTypeInfo[d]; ok {
		return info.name
	}
	return fmt.Sprintf("Datatype(%d)", int(d))
}

// Datatypes lists all CCL datatypes.
func Datatypes() []Datatype {
	return []Datatype{Int8, Int32, Int64, Float16, Float32, Float64}
}

// RedOp is the CCL reduction operator (ncclRedOp_t analogue).
type RedOp int

const (
	// Sum is ncclSum.
	Sum RedOp = iota
	// Prod is ncclProd.
	Prod
	// Max is ncclMax.
	Max
	// Min is ncclMin.
	Min
)

// String returns the xccl constant name.
func (o RedOp) String() string {
	switch o {
	case Sum:
		return "xcclSum"
	case Prod:
		return "xcclProd"
	case Max:
		return "xcclMax"
	case Min:
		return "xcclMin"
	}
	return fmt.Sprintf("RedOp(%d)", int(o))
}

// RedOps lists all CCL reduction operators.
func RedOps() []RedOp { return []RedOp{Sum, Prod, Max, Min} }

// Result is the CCL status code (ncclResult_t analogue).
type Result int

const (
	// Success is ncclSuccess.
	Success Result = iota
	// ErrUnsupportedDatatype reports a datatype outside the backend's matrix.
	ErrUnsupportedDatatype
	// ErrUnsupportedOp reports a reduction the backend cannot perform.
	ErrUnsupportedOp
	// ErrUnsupportedDevice reports an accelerator the backend cannot drive.
	ErrUnsupportedDevice
	// ErrInvalidArgument reports a malformed call.
	ErrInvalidArgument
	// ErrInternal reports a library-internal failure (the class of error
	// the paper hit with NCCL 2.18.3 on ThetaGPU, §4.4).
	ErrInternal
	// ErrRemote reports a transient peer/network failure (the
	// ncclRemoteError class): the call may succeed if reissued, so the
	// abstraction layer retries it before falling back to MPI.
	ErrRemote
	// ErrRankDead reports a fail-stop peer: the rank named in Error.Rank
	// has crashed and will never rejoin, either observed directly (the
	// dead rank's own call fails fast) or via the collective watchdog (a
	// survivor's operation timed out waiting for the dead peer). Not
	// transient — retrying cannot succeed and the MPI fallback would hang,
	// so the dispatch layer surfaces it for ULFM-style revoke/shrink
	// instead (internal/core).
	ErrRankDead
	// ErrUnreachable reports a live peer on the far side of an active
	// network partition: the rank named in Error.Rank (or the whole far
	// side, when Rank is -1) is healthy but no route reaches it. Not
	// transient within the cut — retrying burns the watchdog budget and
	// the MPI fallback would hang — so the dispatch layer surfaces it to
	// the quorum membership machinery (internal/core), which shrinks on
	// the majority side and fences the minority.
	ErrUnreachable
)

// String names the result code.
func (r Result) String() string {
	switch r {
	case Success:
		return "xcclSuccess"
	case ErrUnsupportedDatatype:
		return "xcclUnsupportedDatatype"
	case ErrUnsupportedOp:
		return "xcclUnsupportedOp"
	case ErrUnsupportedDevice:
		return "xcclUnsupportedDevice"
	case ErrInvalidArgument:
		return "xcclInvalidArgument"
	case ErrInternal:
		return "xcclInternalError"
	case ErrRemote:
		return "xcclRemoteError"
	case ErrRankDead:
		return "xcclRankDead"
	case ErrUnreachable:
		return "xcclUnreachable"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Error makes a Result usable as an errors.Is sentinel: callers write
// errors.Is(err, ccl.ErrInternal) instead of unwrapping to *Error and
// switching on the code.
func (r Result) Error() string { return r.String() }

// Transient reports whether a reissued call may succeed (retry-worthy),
// as opposed to a deterministic capability or argument failure.
func (r Result) Transient() bool { return r == ErrRemote }

// Error is a failed CCL call. The abstraction layer inspects Result to
// decide whether to fall back to the MPI path. Op and Rank, when set,
// identify the failing call site in the message itself, so log lines and
// test failures do not need errors.As to learn which rank's which
// operation produced the error.
type Error struct {
	Backend string
	Result  Result
	Msg     string
	// Op is the lower-case operation name of the failing call ("" when
	// the error is not tied to one call, e.g. comm-init failures).
	Op string
	// Rank is the rank the error is attributed to: the calling rank for
	// injected and argument errors, the dead peer for watchdog verdicts.
	// When the communicator carries global identities (Comm.SetRankIDs),
	// injected and crash errors report that identity, not the local rank.
	// Valid only when Op is set (rank 0 is a real rank); -1 means the
	// failing rank could not be identified.
	Rank int
}

func (e *Error) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("%s: %s: %s (op %s, rank %d)", e.Backend, e.Result, e.Msg, e.Op, e.Rank)
	}
	return fmt.Sprintf("%s: %s: %s", e.Backend, e.Result, e.Msg)
}

// Unwrap exposes the Result sentinel to errors.Is/errors.As chains.
func (e *Error) Unwrap() error {
	if e.Result == Success {
		return nil
	}
	return e.Result
}

// IsTransient reports whether err wraps a transient CCL failure — the
// classification the dispatch layer's retry policy runs on.
func IsTransient(err error) bool {
	var e *Error
	if errors.As(err, &e) {
		return e.Result.Transient()
	}
	return false
}

// Injector is the fault-plan hook consulted at every CCL call site (see
// internal/fault for the standard implementation). All methods take the
// backend name, the calling rank, and the current virtual time; op is the
// lower-case operation name ("allreduce", ..., "send", "recv", "group").
// A nil return means the call proceeds normally.
type Injector interface {
	// OpError reports an error to inject into one collective or p2p call,
	// evaluated before the call enqueues any work.
	OpError(backend, op string, rank int, now time.Duration) *Error
	// OpDelay reports extra straggler latency charged when the rank's
	// part of the operation executes on its stream.
	OpDelay(backend, op string, rank int, now time.Duration) time.Duration
	// CommInitError reports an error that fails communicator creation for
	// the given rank; any failing rank fails the whole init.
	CommInitError(backend string, rank int, now time.Duration) *Error
}

// staticInjector adapts the legacy Config.InjectFailure flag to the
// Injector hook: every collective and p2p call fails, communicator
// creation still succeeds (a broken build initializes fine and fails at
// first use, like the paper's NCCL 2.18.3).
type staticInjector struct {
	backend string
	result  Result
}

func (s *staticInjector) OpError(backend, op string, rank int, now time.Duration) *Error {
	return &Error{Backend: s.backend, Result: s.result, Msg: "injected library failure"}
}

func (s *staticInjector) OpDelay(string, string, int, time.Duration) time.Duration { return 0 }

func (s *staticInjector) CommInitError(string, int, time.Duration) *Error { return nil }

// StaticFailure returns an Injector that fails every collective and
// point-to-point call with result — the modern form of the legacy
// Config.InjectFailure flag.
func StaticFailure(backend string, result Result) Injector {
	return &staticInjector{backend: backend, result: result}
}

// SizeOverhead is an extra per-operation cost that kicks in once the
// message size reaches Threshold bytes. HCCL's RoCE transport exhibits
// such step curves (descriptor inlining limits) at 16 B and 64 B. When
// DecayBytes is set, the extra fades as Extra·DecayBytes/size beyond
// DecayBytes: large registered-buffer transfers amortize the per-descriptor
// cost away.
type SizeOverhead struct {
	Threshold  int64
	Extra      time.Duration
	DecayBytes int64
}

// Config is a backend's personality: what it supports and what it costs.
type Config struct {
	// Name is the library name, e.g. "nccl".
	Name string
	// Kinds lists the device kinds the backend can drive.
	Kinds []device.Kind
	// Datatypes is the supported element-type set.
	Datatypes map[Datatype]bool
	// Ops is the supported reduction set (per datatype checks are uniform).
	Ops map[RedOp]bool
	// Launch is the fixed overhead charged when a collective or p2p
	// operation starts executing on the stream (kernel launch + proxy).
	Launch time.Duration
	// Channels is the fabric channel budget per transfer — the mechanism
	// behind CCL's large-message bandwidth advantage over MPI.
	Channels int
	// ChunkBytes is the pipeline chunk for transfers.
	ChunkBytes int64
	// HierChunkBytes is the default pipeline chunk for the hierarchical
	// collectives: the payload slice that flows through the intra-node →
	// inter-node → fan-out phases as one pipeline stage. Smaller chunks
	// overlap more but pay more per-hop step costs; the offline tuner
	// sweeps this per backend. 0 selects a 1 MiB default.
	HierChunkBytes int64
	// TreeThreshold is the payload size below which latency-oriented tree
	// algorithms replace bandwidth-oriented rings.
	TreeThreshold int64
	// StepCost is the per-hop proxy/FIFO progress cost charged on every
	// pipelined put inside a collective algorithm. Algorithms with long
	// sequential hop chains (trees, rings) pay it serially; shallow
	// schedules (MSCCL allpairs) pay it once — the structural source of
	// MSCCL's medium-message advantage.
	StepCost time.Duration
	// StepOverheads are size-triggered extra costs charged when one of
	// the five built-in collectives launches (see SizeOverhead). They do
	// not apply to point-to-point operations, matching the paper's
	// observation that the HCCL step curves appear on Allreduce, Reduce,
	// and Bcast.
	StepOverheads []SizeOverhead
	// InterNodePenalty scales wire time for inter-node steps of
	// collective algorithms (protocol/proxy inefficiency), 1.0 = none.
	InterNodePenalty float64
	// InjectFailure, when not Success, makes every collective and
	// point-to-point call fail with that result — modeling a broken
	// library build (the paper's NCCL 2.18.3 + TensorFlow version
	// conflict, which the xCCL layer bypasses by falling back to MPI).
	// NewComms routes it through the Faults hook (see StaticFailure), so
	// both injection paths share one code path.
	InjectFailure Result
	// Faults, when non-nil, is consulted at every collective, p2p, and
	// comm-init call site. Takes precedence over InjectFailure. When nil,
	// NewComms falls back to InjectFailure and then to any fault agent
	// attached to the fabric (fabric.Fabric.SetFaults).
	Faults Injector
}

// SupportsKind reports whether the backend drives the device kind.
func (cfg *Config) SupportsKind(k device.Kind) bool {
	for _, s := range cfg.Kinds {
		if s == k {
			return true
		}
	}
	return false
}

// stepExtra returns the size-triggered overhead for an n-byte operation.
func (cfg *Config) stepExtra(n int64) time.Duration {
	var extra time.Duration
	for _, so := range cfg.StepOverheads {
		if n < so.Threshold {
			continue
		}
		e := so.Extra
		if so.DecayBytes > 0 && n > so.DecayBytes {
			e = time.Duration(float64(e) * float64(so.DecayBytes) / float64(n))
		}
		extra = e
	}
	return extra
}
