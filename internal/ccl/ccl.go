// Package ccl implements the common machinery of vendor collective
// communication libraries ("xCCLs"): NCCL-style communicators, the five
// built-in collectives (AllReduce, Broadcast, Reduce, AllGather,
// ReduceScatter), point-to-point Send/Recv with Group semantics, and the
// stream-ordered execution model. Vendor packages (ccl/nccl, ccl/rccl,
// ccl/hccl, ccl/msccl) instantiate this machinery with their own
// capability matrices, launch overheads, and channel budgets.
//
// Collectives execute on device streams: a call enqueues the rank's part
// of the algorithm and returns; peers' stream tasks rendezvous inside the
// simulation, move real bytes over the fabric, and complete in virtual
// time. This mirrors how the paper's abstraction layer has to manage CCL
// asynchrony (stream handling, §1.2 advantage 2).
package ccl

import (
	"fmt"
	"time"

	"mpixccl/internal/device"
)

// Datatype is the CCL element type (ncclDataType_t analogue).
type Datatype int

const (
	// Int8 is ncclInt8.
	Int8 Datatype = iota
	// Int32 is ncclInt32.
	Int32
	// Int64 is ncclInt64.
	Int64
	// Float16 is ncclFloat16.
	Float16
	// Float32 is ncclFloat32.
	Float32
	// Float64 is ncclFloat64.
	Float64
)

var cclTypeInfo = map[Datatype]struct {
	name string
	size int
}{
	Int8:    {"xcclInt8", 1},
	Int32:   {"xcclInt32", 4},
	Int64:   {"xcclInt64", 8},
	Float16: {"xcclFloat16", 2},
	Float32: {"xcclFloat32", 4},
	Float64: {"xcclFloat64", 8},
}

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	info, ok := cclTypeInfo[d]
	if !ok {
		panic(fmt.Sprintf("ccl: unknown datatype %d", int(d)))
	}
	return info.size
}

// String returns the xccl constant name.
func (d Datatype) String() string {
	if info, ok := cclTypeInfo[d]; ok {
		return info.name
	}
	return fmt.Sprintf("Datatype(%d)", int(d))
}

// Datatypes lists all CCL datatypes.
func Datatypes() []Datatype {
	return []Datatype{Int8, Int32, Int64, Float16, Float32, Float64}
}

// RedOp is the CCL reduction operator (ncclRedOp_t analogue).
type RedOp int

const (
	// Sum is ncclSum.
	Sum RedOp = iota
	// Prod is ncclProd.
	Prod
	// Max is ncclMax.
	Max
	// Min is ncclMin.
	Min
)

// String returns the xccl constant name.
func (o RedOp) String() string {
	switch o {
	case Sum:
		return "xcclSum"
	case Prod:
		return "xcclProd"
	case Max:
		return "xcclMax"
	case Min:
		return "xcclMin"
	}
	return fmt.Sprintf("RedOp(%d)", int(o))
}

// RedOps lists all CCL reduction operators.
func RedOps() []RedOp { return []RedOp{Sum, Prod, Max, Min} }

// Result is the CCL status code (ncclResult_t analogue).
type Result int

const (
	// Success is ncclSuccess.
	Success Result = iota
	// ErrUnsupportedDatatype reports a datatype outside the backend's matrix.
	ErrUnsupportedDatatype
	// ErrUnsupportedOp reports a reduction the backend cannot perform.
	ErrUnsupportedOp
	// ErrUnsupportedDevice reports an accelerator the backend cannot drive.
	ErrUnsupportedDevice
	// ErrInvalidArgument reports a malformed call.
	ErrInvalidArgument
	// ErrInternal reports a library-internal failure (the class of error
	// the paper hit with NCCL 2.18.3 on ThetaGPU, §4.4).
	ErrInternal
)

// String names the result code.
func (r Result) String() string {
	switch r {
	case Success:
		return "xcclSuccess"
	case ErrUnsupportedDatatype:
		return "xcclUnsupportedDatatype"
	case ErrUnsupportedOp:
		return "xcclUnsupportedOp"
	case ErrUnsupportedDevice:
		return "xcclUnsupportedDevice"
	case ErrInvalidArgument:
		return "xcclInvalidArgument"
	case ErrInternal:
		return "xcclInternalError"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Error is a failed CCL call. The abstraction layer inspects Result to
// decide whether to fall back to the MPI path.
type Error struct {
	Backend string
	Result  Result
	Msg     string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Backend, e.Result, e.Msg)
}

// SizeOverhead is an extra per-operation cost that kicks in once the
// message size reaches Threshold bytes. HCCL's RoCE transport exhibits
// such step curves (descriptor inlining limits) at 16 B and 64 B. When
// DecayBytes is set, the extra fades as Extra·DecayBytes/size beyond
// DecayBytes: large registered-buffer transfers amortize the per-descriptor
// cost away.
type SizeOverhead struct {
	Threshold  int64
	Extra      time.Duration
	DecayBytes int64
}

// Config is a backend's personality: what it supports and what it costs.
type Config struct {
	// Name is the library name, e.g. "nccl".
	Name string
	// Kinds lists the device kinds the backend can drive.
	Kinds []device.Kind
	// Datatypes is the supported element-type set.
	Datatypes map[Datatype]bool
	// Ops is the supported reduction set (per datatype checks are uniform).
	Ops map[RedOp]bool
	// Launch is the fixed overhead charged when a collective or p2p
	// operation starts executing on the stream (kernel launch + proxy).
	Launch time.Duration
	// Channels is the fabric channel budget per transfer — the mechanism
	// behind CCL's large-message bandwidth advantage over MPI.
	Channels int
	// ChunkBytes is the pipeline chunk for transfers.
	ChunkBytes int64
	// TreeThreshold is the payload size below which latency-oriented tree
	// algorithms replace bandwidth-oriented rings.
	TreeThreshold int64
	// StepCost is the per-hop proxy/FIFO progress cost charged on every
	// pipelined put inside a collective algorithm. Algorithms with long
	// sequential hop chains (trees, rings) pay it serially; shallow
	// schedules (MSCCL allpairs) pay it once — the structural source of
	// MSCCL's medium-message advantage.
	StepCost time.Duration
	// StepOverheads are size-triggered extra costs charged when one of
	// the five built-in collectives launches (see SizeOverhead). They do
	// not apply to point-to-point operations, matching the paper's
	// observation that the HCCL step curves appear on Allreduce, Reduce,
	// and Bcast.
	StepOverheads []SizeOverhead
	// InterNodePenalty scales wire time for inter-node steps of
	// collective algorithms (protocol/proxy inefficiency), 1.0 = none.
	InterNodePenalty float64
	// InjectFailure, when not Success, makes every collective and
	// point-to-point call fail with that result — modeling a broken
	// library build (the paper's NCCL 2.18.3 + TensorFlow version
	// conflict, which the xCCL layer bypasses by falling back to MPI).
	InjectFailure Result
}

// SupportsKind reports whether the backend drives the device kind.
func (cfg *Config) SupportsKind(k device.Kind) bool {
	for _, s := range cfg.Kinds {
		if s == k {
			return true
		}
	}
	return false
}

// stepExtra returns the size-triggered overhead for an n-byte operation.
func (cfg *Config) stepExtra(n int64) time.Duration {
	var extra time.Duration
	for _, so := range cfg.StepOverheads {
		if n < so.Threshold {
			continue
		}
		e := so.Extra
		if so.DecayBytes > 0 && n > so.DecayBytes {
			e = time.Duration(float64(e) * float64(so.DecayBytes) / float64(n))
		}
		extra = e
	}
	return extra
}
