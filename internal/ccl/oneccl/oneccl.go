// Package oneccl models Intel's oneAPI Collective Communications Library,
// the extension target the paper names as future work (§6): an
// NCCL-API-compatible library driving Intel GPUs over Xe Link bridges and
// SYCL queues. Unlike the other xCCLs, oneCCL ships a built-in Alltoall,
// which this model exposes through the common group machinery.
package oneccl

import (
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
)

// Version is the oneCCL release modeled.
const Version = "2021.10"

// Config returns oneCCL's personality. Constants follow public Aurora
// bring-up experience: launch overhead between NCCL's and RCCL's, a wide
// datatype matrix, and a moderate channel budget over Xe Link.
func Config() ccl.Config {
	return ccl.Config{
		Name:  "oneccl-" + Version,
		Kinds: []device.Kind{device.IntelGPU},
		Datatypes: map[ccl.Datatype]bool{
			ccl.Int8: true, ccl.Int32: true, ccl.Int64: true,
			ccl.Float16: true, ccl.Float32: true, ccl.Float64: true,
		},
		Ops: map[ccl.RedOp]bool{
			ccl.Sum: true, ccl.Prod: true, ccl.Max: true, ccl.Min: true,
		},
		Launch:           24 * time.Microsecond,
		StepCost:         1400 * time.Nanosecond,
		Channels:         8,
		ChunkBytes:       512 << 10,
		HierChunkBytes:   1 << 20,
		TreeThreshold:    128 << 10,
		InterNodePenalty: 1.15, // early Slingshot provider inefficiency
	}
}

// New creates oneCCL communicators over the devices.
func New(fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return ccl.NewComms(fab, devs, Config())
}
