package oneccl_test

import (
	"testing"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/oneccl"
	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

func TestConfigPersonality(t *testing.T) {
	cfg := oneccl.Config()
	if !cfg.SupportsKind(device.IntelGPU) || cfg.SupportsKind(device.NvidiaGPU) {
		t.Error("oneCCL must drive Intel GPUs only")
	}
	if !cfg.Datatypes[ccl.Float64] || !cfg.Datatypes[ccl.Float16] {
		t.Error("oneCCL should carry the full datatype matrix")
	}
}

func TestAllReduceOnAurora(t *testing.T) {
	k := sim.NewKernel()
	sys := topology.Aurora(k, 1)
	if sys.DevicesPerNode() != 6 {
		t.Fatalf("aurora has %d devices/node, want 6", sys.DevicesPerNode())
	}
	fab := fabric.New(k, sys)
	comms, err := oneccl.New(fab, sys.Devices())
	if err != nil {
		t.Fatal(err)
	}
	const count = 4096
	bar := sim.NewBarrier(k, len(comms))
	for _, cc := range comms {
		cc := cc
		k.Spawn("rank", func(p *sim.Proc) {
			s := cc.Device().NewStream()
			send := cc.Device().MustMalloc(count * 4)
			recv := cc.Device().MustMalloc(count * 4)
			send.FillFloat32(float32(cc.Rank() + 1))
			bar.Wait(p)
			if err := cc.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, s); err != nil {
				t.Errorf("allreduce: %v", err)
			}
			s.Synchronize(p)
			if recv.Float32(77) != 21 { // 1+2+…+6
				t.Errorf("sum = %v, want 21", recv.Float32(77))
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// The full xCCL layer must auto-select oneCCL on Intel systems and run the
// hybrid dispatch end to end — the paper's future-work scenario.
func TestXCCLLayerAutoSelectsOneCCL(t *testing.T) {
	k := sim.NewKernel()
	sys := topology.Aurora(k, 2)
	fab := fabric.New(k, sys)
	job := mpi.NewJobOnSystem(fab, mpi.MVAPICHProfile(), sys, 12)
	rt, err := core.NewRuntime(job, core.Options{Backend: core.Auto, Mode: core.Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != core.OneCCL {
		t.Fatalf("auto backend = %s, want oneccl", rt.Backend())
	}
	err = rt.Run(func(x *core.Comm) {
		small := x.Device().MustMalloc(1 << 10)
		large := x.Device().MustMalloc(4 << 20)
		out := x.Device().MustMalloc(4 << 20)
		small.FillFloat32(1)
		large.FillFloat32(1)
		x.Allreduce(small, out, 256, mpi.Float32, mpi.OpSum)
		if out.Float32(0) != 12 {
			t.Errorf("small sum = %v", out.Float32(0))
		}
		x.Allreduce(large, out, 1<<20, mpi.Float32, mpi.OpSum)
		if out.Float32(999) != 12 {
			t.Errorf("large sum = %v", out.Float32(999))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.MPIOps == 0 || st.CCLOps == 0 {
		t.Errorf("hybrid dispatch on aurora: %+v", st)
	}
}
