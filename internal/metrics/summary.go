package metrics

import (
	"fmt"
	"io"
	"sort"
)

// WriteSummary emits a human-readable table of every series: counters and
// gauges as one value row, histograms as count / mean / max-bucket rows.
// Rows sort by (family, labels) so the output is deterministic. Safe on a
// nil registry (writes nothing).
func (r *Registry) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %-48s %15s\n", "METRIC", "LABELS", "VALUE")
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			labels := key
			if labels == "" {
				labels = "{}"
			}
			switch f.kind {
			case kindHistogram:
				mean := 0.0
				if s.count > 0 {
					mean = s.sum / float64(s.count)
				}
				fmt.Fprintf(w, "%-40s %-48s %15s\n", f.name, truncateLabel(labels, 48),
					fmt.Sprintf("n=%d mean=%.3gs", s.count, mean))
			default:
				fmt.Fprintf(w, "%-40s %-48s %15s\n", f.name, truncateLabel(labels, 48),
					formatValue(s.value))
			}
		}
	}
}

func truncateLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
