package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE headers per family, one sample
// line per series, histograms expanded into _bucket/_sum/_count samples.
// Families and series are emitted in sorted order so output is
// deterministic and diffable. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := r.families[name]
		help := strings.ReplaceAll(f.help, `\`, `\\`)
		help = strings.ReplaceAll(help, "\n", `\n`)
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			switch f.kind {
			case kindHistogram:
				writeHistogram(bw, f, key, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, key, formatValue(s.value))
			}
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into cumulative _bucket
// samples plus _sum and _count.
func writeHistogram(w io.Writer, f *family, key string, s *series) {
	var cum uint64
	for i, ub := range f.buckets {
		cum += s.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketKey(key, formatValue(ub)), cum)
	}
	cum += s.counts[len(f.buckets)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketKey(key, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatValue(s.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, s.count)
}

// bucketKey appends the le label to a canonical label block.
func bucketKey(key, le string) string {
	if key == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`%s,le="%s"}`, key[:len(key)-1], le)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// promLineRe splits "name{labels} value" or "name value".
	promLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
)

// ParseText parses Prometheus text-format output back into a flat map of
// "name{labels}" (labels exactly as emitted, "" block omitted) to sample
// value. It validates metric-name syntax and numeric values, so tests can
// both assert on specific series and confirm the export is well-formed.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("metrics: line %d: malformed sample %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		if !promNameRe.MatchString(name) {
			return nil, fmt.Errorf("metrics: line %d: bad metric name %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value %q: %w", lineNo, valStr, err)
		}
		out[name+labels] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Key builds the "name{labels}" sample key ParseText produces for a
// counter or gauge series — the lookup convenience for tests.
func Key(name string, labels Labels) string {
	return name + labels.canonical()
}
