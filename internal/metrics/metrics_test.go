package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine resolves its own handle, as concurrent sim
			// procs do; all handles must hit the same underlying series.
			c := reg.Counter("test_total", "test", Labels{"op": "allreduce"})
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	got, ok := reg.CounterValue("test_total", Labels{"op": "allreduce"})
	if !ok || got != workers*perWorker {
		t.Fatalf("CounterValue = %v, %v; want %d, true", got, ok, workers*perWorker)
	}
}

func TestCounterNegativeAddIgnored(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("neg_total", "test", nil)
	c.Add(5)
	c.Add(-3)
	if v := c.Value(); v != 5 {
		t.Fatalf("counter after negative Add = %v, want 5", v)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "test", Labels{"backend": "nccl"})
	g.Set(4)
	g.Add(-1)
	if v := g.Value(); v != 3 {
		t.Fatalf("gauge = %v, want 3", v)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "test", []float64{1, 2, 5}, nil)
	// Observations exactly on a boundary belong to that bucket (le is
	// "less than or equal"), one past it spills to the next.
	for _, v := range []float64{0.5, 1, 1.0001, 2, 5, 7} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`lat_seconds_bucket{le="1"}`:    2, // 0.5 and 1
		`lat_seconds_bucket{le="2"}`:    4, // cumulative: + 1.0001, 2
		`lat_seconds_bucket{le="5"}`:    5, // + 5
		`lat_seconds_bucket{le="+Inf"}`: 6, // + 7
		`lat_seconds_count`:             6,
		`lat_seconds_sum`:               0.5 + 1 + 1.0001 + 2 + 5 + 7,
	}
	for k, w := range want {
		if got, ok := vals[k]; !ok || got != w {
			t.Errorf("%s = %v, %v; want %v", k, got, ok, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count() = %d, want 6", h.Count())
	}
}

func TestTimerVirtualTime(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_seconds", "test", []float64{0.001, 1}, nil)
	tm := StartTimer(h, 40*time.Millisecond)
	tm.Stop(65 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); got < 0.0249 || got > 0.0251 {
		t.Fatalf("Sum = %v, want 0.025 (virtual elapsed)", got)
	}
}

func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "Operations issued.", Labels{"op": "bcast", "path": "ccl"}).Add(3)
	reg.Counter("ops_total", "Operations issued.", Labels{"op": "bcast", "path": "mpi"}).Inc()
	reg.Gauge("channels", "Configured channels.", Labels{"backend": "nccl"}).Set(2)
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.5, 1}, nil)
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP channels Configured channels.",
		"# TYPE channels gauge",
		`channels{backend="nccl"} 2`,
		"# HELP lat_seconds Latency.",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 2.25",
		"lat_seconds_count 2",
		"# HELP ops_total Operations issued.",
		"# TYPE ops_total counter",
		`ops_total{op="bcast",path="ccl"} 3`,
		`ops_total{op="bcast",path="mpi"} 1`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a", Labels{"x": "1"}).Add(7)
	reg.Histogram("b_seconds", "b", []float64{1}, nil).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if vals[Key("a_total", Labels{"x": "1"})] != 7 {
		t.Errorf("a_total round trip failed: %v", vals)
	}
	if vals[`b_seconds_bucket{le="+Inf"}`] != 1 {
		t.Errorf("histogram +Inf bucket lost: %v", vals)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "x", nil)
	c.Inc()
	c.Add(2)
	g := reg.Gauge("y", "y", nil)
	g.Set(1)
	h := reg.Histogram("z_seconds", "z", []float64{1}, nil)
	h.Observe(0.5)
	StartTimer(h, 0).Stop(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil-registry instruments must read zero")
	}
	if _, ok := reg.CounterValue("x_total", nil); ok {
		t.Fatal("nil registry CounterValue must report not-found")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus = %v, %q", err, buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "m", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("m_total", "m", nil)
}

func TestSizeBucketLabel(t *testing.T) {
	cases := map[int64]string{
		0:         "0-1KiB",
		1024:      "0-1KiB",
		1025:      "1-16KiB",
		16 << 10:  "1-16KiB",
		256 << 10: "16-256KiB",
		4 << 20:   "256KiB-4MiB",
		5 << 20:   ">4MiB",
	}
	for bytes, want := range cases {
		if got := SizeBucketLabel(bytes); got != want {
			t.Errorf("SizeBucketLabel(%d) = %q, want %q", bytes, got, want)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "ops", Labels{"op": "bcast"}).Add(2)
	reg.Histogram("lat_seconds", "lat", []float64{1}, nil).Observe(0.5)
	var buf bytes.Buffer
	reg.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"ops_total", `op="bcast"`, "lat_seconds", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
