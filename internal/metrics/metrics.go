// Package metrics is a dependency-free, concurrency-safe metrics registry
// for the simulated runtime: counters, gauges, and fixed-bucket histograms,
// keyed by a metric name plus a small label set (op, path, backend,
// size_bucket, ...). It is the aggregate complement to package trace's
// per-record timelines: trace answers "what happened, in order", metrics
// answers "how often and at what cost" after a run — which path the hybrid
// dispatch picked, whether fallback fired, how the tuning table was used.
//
// Timers are virtual-time aware: callers pass sim virtual timestamps
// (sim.Proc.Now values) and histograms observe the elapsed virtual seconds,
// so latency distributions reflect simulated time, not wall time.
//
// Like trace.Recorder, a nil *Registry is a valid no-op sink: every
// constructor returns a nil instrument whose methods do nothing, so hot
// paths thread a registry unconditionally without nil checks.
//
// Output formats: WritePrometheus emits the Prometheus text exposition
// format (parsable back with ParseText, used by tests and the -metrics
// flags of cmd/xcclbench and cmd/ombrun); WriteSummary emits a
// human-readable table.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metricKind discriminates the three instrument families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Labels name one series within a metric family, e.g.
// {"op": "allreduce", "path": "ccl"}.
type Labels map[string]string

// canonical renders labels as a sorted, Prometheus-syntax label block
// ({a="x",b="y"}), or "" when empty — the series key within a family.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, escapeLabelValue(l[k]))
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	// %q handles \ and "; Prometheus additionally wants \n escaped, which
	// %q also covers. Strip the surrounding quotes %q would add by not
	// using it here: do the three escapes by hand.
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// family is one named metric with its type, help text, and series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit
	series  map[string]*series
}

// series is one label combination's state. All numeric state is guarded by
// the owning Registry's mutex.
type series struct {
	labels Labels
	value  float64  // counter / gauge
	counts []uint64 // histogram: per-bucket cumulative-style raw counts
	sum    float64  // histogram
	count  uint64   // histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, panicking on a
// type or bucket redefinition — that is a programming error, not runtime
// input. Help text is fixed by the first registration.
func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if kind == kindHistogram && len(buckets) != len(f.buckets) {
		panic(fmt.Sprintf("metrics: %s histogram re-registered with different buckets", name))
	}
	return f
}

func (f *family) get(labels Labels) *series {
	key := labels.canonical()
	s, ok := f.series[key]
	if !ok {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp}
		if f.kind == kindHistogram {
			s.counts = make([]uint64, len(f.buckets)+1) // +1 for +Inf
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing count. Nil counters ignore all
// operations.
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the counter for (name, labels), creating it at zero on
// first use. Safe on a nil registry (returns a no-op counter).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{r: r, s: r.family(name, help, kindCounter, nil).get(labels)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.r.mu.Lock()
	c.s.value += v
	c.r.mu.Unlock()
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down. Nil gauges ignore all
// operations.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the gauge for (name, labels). Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{r: r, s: r.family(name, help, kindGauge, nil).get(labels)}
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.value += v
	g.r.mu.Unlock()
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.value
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Nil
// histograms ignore all operations.
type Histogram struct {
	r *Registry
	f *family
	s *series
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (ascending). Safe on a nil registry. Re-registering
// a name with a different bucket count panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram, buckets)
	return &Histogram{r: r, f: f, s: f.get(labels)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	idx := len(h.f.buckets) // +Inf
	for i, ub := range h.f.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	h.s.counts[idx]++
	h.s.sum += v
	h.s.count++
	h.r.mu.Unlock()
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit. Works for both wall and virtual durations.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.sum
}

// Timer measures one virtual-time interval against a histogram. The zero
// Timer (and a Timer over a nil histogram) is a no-op. Virtual timestamps
// come from sim.Proc.Now; because sim.Time is a time.Duration offset from
// the simulation epoch, the elapsed interval is their difference.
type Timer struct {
	h     *Histogram
	start time.Duration
}

// StartTimer opens an interval at virtual time now.
func StartTimer(h *Histogram, now time.Duration) Timer {
	return Timer{h: h, start: now}
}

// Stop closes the interval at virtual time now and observes the elapsed
// virtual seconds.
func (t Timer) Stop(now time.Duration) {
	if t.h == nil {
		return
	}
	t.h.Observe((now - t.start).Seconds())
}

// CounterValue reports a counter series' value and whether it exists —
// a test and assertion convenience. Safe on nil (reports 0, false).
func (r *Registry) CounterValue(name string, labels Labels) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok || f.kind != kindCounter {
		return 0, false
	}
	s, ok := f.series[labels.canonical()]
	if !ok {
		return 0, false
	}
	return s.value, true
}

// HistogramCount reports a histogram series' observation count and whether
// it exists. Safe on nil.
func (r *Registry) HistogramCount(name string, labels Labels) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok || f.kind != kindHistogram {
		return 0, false
	}
	s, ok := f.series[labels.canonical()]
	if !ok {
		return 0, false
	}
	return s.count, true
}

// LatencyBuckets returns the default latency histogram bounds in seconds:
// a 1 µs – 1 s log sweep sized for the simulated operations (sub-10 µs
// kernel launches up to multi-ms large-message collectives).
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2e-6, 5e-6,
		1e-5, 2e-5, 5e-5,
		1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3,
		1e-2, 5e-2, 1e-1, 1,
	}
}

// SizeBucketLabel maps a payload size to the coarse size-band label used
// on dispatch counters, chosen to straddle the paper's MPI/CCL crossover
// region (≈4–128 KiB).
func SizeBucketLabel(bytes int64) string {
	switch {
	case bytes <= 1<<10:
		return "0-1KiB"
	case bytes <= 16<<10:
		return "1-16KiB"
	case bytes <= 256<<10:
		return "16-256KiB"
	case bytes <= 4<<20:
		return "256KiB-4MiB"
	default:
		return ">4MiB"
	}
}
