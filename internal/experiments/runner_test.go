package experiments

import "testing"

// TestRunAllMatchesSerial pins the parallel runner's determinism contract:
// because every experiment owns its own simulation kernel, a concurrent run
// must produce byte-identical output to a serial run, in the requested order.
func TestRunAllMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig1a", "fig1b"}
	serial := RunAll(ids, Quick, nil, 1)
	par := RunAll(ids, Quick, nil, 0)
	if len(serial) != len(ids) || len(par) != len(ids) {
		t.Fatalf("got %d serial / %d parallel results, want %d", len(serial), len(par), len(ids))
	}
	for i, id := range ids {
		if serial[i].ID != id || par[i].ID != id {
			t.Fatalf("result %d: ids %q (serial) / %q (parallel), want %q", i, serial[i].ID, par[i].ID, id)
		}
		if serial[i].Err != nil {
			t.Fatalf("%s: serial run failed: %v", id, serial[i].Err)
		}
		if par[i].Err != nil {
			t.Fatalf("%s: parallel run failed: %v", id, par[i].Err)
		}
		if serial[i].Output != par[i].Output {
			t.Errorf("%s: parallel output differs from serial output", id)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	results := RunAll([]string{"table1", "no-such-figure"}, Quick, nil, 2)
	if results[0].Err != nil {
		t.Errorf("table1 failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown experiment id did not report an error")
	}
}
