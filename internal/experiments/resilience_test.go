package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestResilienceFigureShape(t *testing.T) {
	f, err := Resilience(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want clean + 2 faulted", len(f.Series))
	}
	var cleanSum, faultedSum time.Duration
	for i, s := range f.Series {
		// Quick sweep is 1KB..1MB doubling: 11 points per series.
		if len(s.Points) != 11 {
			t.Fatalf("series %s has %d points, want 11", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Latency <= 0 {
				t.Fatalf("series %s has non-positive latency at %d bytes", s.Name, p.X)
			}
			switch i {
			case 0:
				cleanSum += p.Latency
			case 1:
				faultedSum += p.Latency
			}
		}
	}
	// Faults may only slow the hybrid stack down, and boundedly so: retries
	// and the degradation window cost time, never a hang or a free lunch.
	if faultedSum < cleanSum {
		t.Errorf("faulted sweep (%v) faster than clean (%v)", faultedSum, cleanSum)
	}
	if faultedSum > 64*cleanSum {
		t.Errorf("faulted sweep (%v) unbounded vs clean (%v)", faultedSum, cleanSum)
	}
	if len(f.Notes) != 2 {
		t.Fatalf("notes = %v, want fired-counts + slowdown", f.Notes)
	}
	if !strings.Contains(f.Notes[1], "slowdown under faults") {
		t.Errorf("missing slowdown note: %v", f.Notes)
	}
}

// The scenario must be bit-for-bit reproducible: same seed, same virtual
// timings, same note text.
func TestResilienceIsDeterministic(t *testing.T) {
	a, err := Resilience(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resilience(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns diverged:\n%v\nvs\n%v", a, b)
	}
}
