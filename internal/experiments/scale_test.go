package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mpixccl/internal/dl"
	"mpixccl/internal/fault"
)

// stripWall zeroes the fields that legitimately differ between a serial and
// a sharded run of the same model — host wall time and the shard count
// itself — so everything else can compare exactly.
func stripWall(r ScaleResult) ScaleResult {
	r.Wall = 0
	r.Shards = 0
	return r
}

func TestScaleDeterministicAcrossShards(t *testing.T) {
	base, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK || base.VirtTime == 0 {
		t.Fatalf("serial run: %+v", base)
	}
	for _, shards := range []int{2, 4, 8} {
		r, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stripWall(r), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: %+v\nserial: %+v", shards, got, want)
		}
	}
}

func TestScaleAcrossSystems(t *testing.T) {
	// Every preset (including non-power-of-two devices per node) must pass
	// the digest check at multiple shard counts.
	for _, sys := range []string{"thetagpu", "mri", "voyager", "aurora"} {
		dpn := map[string]int{"thetagpu": 8, "mri": 2, "voyager": 8, "aurora": 6}[sys]
		ranks := 16 * dpn
		base, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !base.OK {
			t.Fatalf("%s: digest check failed: %+v", sys, base)
		}
		sharded, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10, Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if got, want := stripWall(sharded), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("%s shards=4: %+v\nserial: %+v", sys, got, want)
		}
	}
}

// TestScaleFaultDeterminism is the cross-shard fault-injection contract:
// crash, brownout, and corrupt rules firing on cross-shard links must
// produce identical verdicts and counters at 1 and 4 shards. Rules are pure
// time-window rules (no probabilities, no call budgets on cross-links), the
// class the parallel engine guarantees order-independence for.
func TestScaleFaultDeterminism(t *testing.T) {
	const us = time.Microsecond
	cases := []struct {
		name   string
		faults func(shard int) *fault.Plan
		check  func(t *testing.T, r ScaleResult)
	}{
		{
			name: "crash",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddRule(fault.Rule{
					Name: "leader5-dies", Ranks: []int{5}, From: 50 * us, Crash: true,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if len(r.Crashed) != 1 || r.Crashed[0] != 5 {
					t.Errorf("crashed = %v, want [5]", r.Crashed)
				}
				if r.Timeouts == 0 || r.OK {
					t.Errorf("want detection timeouts and a failed check, got %+v", r)
				}
			},
		},
		{
			name: "brownout",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddLinkRule(fault.LinkRule{
					Name: "inter-brownout", Link: "inter",
					From: 30 * us, Until: 70 * us,
					BWScale: 0.25, AlphaScale: 3,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Degraded == 0 {
					t.Error("brownout window never hit a ring send")
				}
				if !r.OK {
					t.Errorf("brownout must not corrupt results: %+v", r)
				}
			},
		},
		{
			name: "corrupt",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddCorruptRule(fault.CorruptRule{
					Name: "node7-flaky-nic", Link: "inter", Nodes: []int{7},
					From: 40 * us, Until: 55 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.CorruptionsDetected == 0 || r.Retransmits == 0 {
					t.Errorf("corrupt window never fired: %+v", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ScaleConfig{Ranks: 128, Bytes: 256 << 10, Faults: tc.faults}
			serial, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripWall(sharded), stripWall(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=4: %+v\nserial: %+v", got, want)
			}
			tc.check(t, serial)
		})
	}
}

// TestScalePartitionDeterminism extends the cross-shard fault contract to
// partition rules: a node-scoped cut on the leader ring must produce the
// same severed counts, verdicts, and virtual clock at 1 and 4 shards. A
// healing cut delays the ring but completes OK; a permanent cut breaks it.
func TestScalePartitionDeterminism(t *testing.T) {
	const us = time.Microsecond
	cases := []struct {
		name   string
		faults func(shard int) *fault.Plan
		check  func(t *testing.T, r ScaleResult)
	}{
		{
			name: "heal",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddPartitionRule(fault.PartitionRule{
					Name: "node7-cut-heals", Nodes: []int{7},
					From: 40 * us, Until: 120 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Severed == 0 {
					t.Errorf("cut window never hit a ring send: %+v", r)
				}
				if !r.OK || r.Timeouts != 0 {
					t.Errorf("healed cut must deliver late, not fail: %+v", r)
				}
			},
		},
		{
			name: "permanent",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddPartitionRule(fault.PartitionRule{
					Name: "node7-cut", Nodes: []int{7}, From: 40 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Severed == 0 || r.Timeouts == 0 || r.OK {
					t.Errorf("permanent cut must break the ring: %+v", r)
				}
				if len(r.Crashed) != 0 {
					t.Errorf("a severed leader is alive, got crashed %v", r.Crashed)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ScaleConfig{Ranks: 128, Bytes: 256 << 10, Faults: tc.faults}
			serial, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripWall(sharded), stripWall(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=4: %+v\nserial: %+v", got, want)
			}
			tc.check(t, serial)
		})
	}
}

// TestPartitionVerdictsAcrossShards pins the membership layer's partition
// verdicts — epoch, fence and shrink counters, adopted ranks, and the loss
// trace — to be identical whether the exhibit world runs on 1 or 4 engine
// shards.
func TestPartitionVerdictsAcrossShards(t *testing.T) {
	model := &dl.Model{Name: "shard-mlp"}
	for i := 0; i < 8; i++ {
		model.Tensors = append(model.Tensors, dl.Tensor{Name: "fc", Elems: 128 << 10})
	}
	run := func(shards int) dl.ElasticReport {
		cfg := dl.Config{
			System: "thetagpu", Nodes: 2, Ranks: 12, Model: model,
			Steps: 6, CheckpointEvery: 2, Shards: shards,
		}
		cfg.Faults = fault.NewPlan(11).AddPartitionRule(fault.PartitionRule{
			Name: "cut-node1", Nodes: []int{1},
			From: 80 * time.Millisecond, Until: 150 * time.Millisecond,
		})
		rep, err := dl.TrainElastic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, sharded := run(1), run(4)
	type verdict struct {
		Partitions, FencedRanks, Epoch int
		Shrinks, Grows                 int
		StartRanks, FinalRanks         int
		Adopted                        []int
		Loss                           []float64
	}
	v := func(r dl.ElasticReport) verdict {
		return verdict{r.Partitions, r.FencedRanks, r.Epoch, r.Shrinks, r.Grows,
			r.StartRanks, r.FinalRanks, r.AdoptedRanks, r.Loss}
	}
	if got, want := v(sharded), v(serial); !reflect.DeepEqual(got, want) {
		t.Errorf("shards=4 verdicts: %+v\nserial: %+v", got, want)
	}
	if serial.Partitions != 1 || serial.FencedRanks != 4 || serial.Epoch < 2 {
		t.Errorf("expected one handled cut with a rejoin, got %+v", serial)
	}
}

func TestScaleRejectsUnevenRanks(t *testing.T) {
	if _, err := RunScale(ScaleConfig{Ranks: 100}); err == nil {
		t.Fatal("100 ranks on 8-device nodes should be rejected")
	}
}

func TestFormatScaleTable(t *testing.T) {
	r, err := RunScale(ScaleConfig{Ranks: 64, Bytes: 64 << 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScaleTable([]ScaleResult{r})
	for _, want := range []string{"ranks", "shards", "64KiB", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
