package experiments

import (
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/dl"
	"mpixccl/internal/fabric"
	"mpixccl/internal/fault"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// stripWall zeroes the fields that legitimately differ between a serial and
// a sharded run of the same model — host wall time and the shard count
// itself — so everything else can compare exactly.
func stripWall(r ScaleResult) ScaleResult {
	r.Wall = 0
	r.Shards = 0
	return r
}

func TestScaleDeterministicAcrossShards(t *testing.T) {
	base, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK || base.VirtTime == 0 {
		t.Fatalf("serial run: %+v", base)
	}
	for _, shards := range []int{2, 4, 8} {
		r, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stripWall(r), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: %+v\nserial: %+v", shards, got, want)
		}
	}
}

func TestScaleAcrossSystems(t *testing.T) {
	// Every preset (including non-power-of-two devices per node) must pass
	// the digest check at multiple shard counts.
	for _, sys := range []string{"thetagpu", "mri", "voyager", "aurora"} {
		dpn := map[string]int{"thetagpu": 8, "mri": 2, "voyager": 8, "aurora": 6}[sys]
		ranks := 16 * dpn
		base, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !base.OK {
			t.Fatalf("%s: digest check failed: %+v", sys, base)
		}
		sharded, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10, Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if got, want := stripWall(sharded), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("%s shards=4: %+v\nserial: %+v", sys, got, want)
		}
	}
}

// TestScaleFaultDeterminism is the cross-shard fault-injection contract:
// crash, brownout, and corrupt rules firing on cross-shard links must
// produce identical verdicts and counters at 1 and 4 shards. Rules are pure
// time-window rules (no probabilities, no call budgets on cross-links), the
// class the parallel engine guarantees order-independence for.
func TestScaleFaultDeterminism(t *testing.T) {
	const us = time.Microsecond
	cases := []struct {
		name   string
		faults func(shard int) *fault.Plan
		check  func(t *testing.T, r ScaleResult)
	}{
		{
			name: "crash",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddRule(fault.Rule{
					Name: "leader5-dies", Ranks: []int{5}, From: 50 * us, Crash: true,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if len(r.Crashed) != 1 || r.Crashed[0] != 5 {
					t.Errorf("crashed = %v, want [5]", r.Crashed)
				}
				if r.Timeouts == 0 || r.OK {
					t.Errorf("want detection timeouts and a failed check, got %+v", r)
				}
			},
		},
		{
			name: "brownout",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddLinkRule(fault.LinkRule{
					Name: "inter-brownout", Link: "inter",
					From: 30 * us, Until: 70 * us,
					BWScale: 0.25, AlphaScale: 3,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Degraded == 0 {
					t.Error("brownout window never hit a ring send")
				}
				if !r.OK {
					t.Errorf("brownout must not corrupt results: %+v", r)
				}
			},
		},
		{
			name: "corrupt",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddCorruptRule(fault.CorruptRule{
					Name: "node7-flaky-nic", Link: "inter", Nodes: []int{7},
					From: 40 * us, Until: 55 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.CorruptionsDetected == 0 || r.Retransmits == 0 {
					t.Errorf("corrupt window never fired: %+v", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ScaleConfig{Ranks: 128, Bytes: 256 << 10, Faults: tc.faults}
			serial, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripWall(sharded), stripWall(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=4: %+v\nserial: %+v", got, want)
			}
			tc.check(t, serial)
		})
	}
}

// TestScalePartitionDeterminism extends the cross-shard fault contract to
// partition rules: a node-scoped cut on the leader ring must produce the
// same severed counts, verdicts, and virtual clock at 1 and 4 shards. A
// healing cut delays the ring but completes OK; a permanent cut breaks it.
func TestScalePartitionDeterminism(t *testing.T) {
	const us = time.Microsecond
	cases := []struct {
		name   string
		faults func(shard int) *fault.Plan
		check  func(t *testing.T, r ScaleResult)
	}{
		{
			name: "heal",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddPartitionRule(fault.PartitionRule{
					Name: "node7-cut-heals", Nodes: []int{7},
					From: 40 * us, Until: 120 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Severed == 0 {
					t.Errorf("cut window never hit a ring send: %+v", r)
				}
				if !r.OK || r.Timeouts != 0 {
					t.Errorf("healed cut must deliver late, not fail: %+v", r)
				}
			},
		},
		{
			name: "permanent",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddPartitionRule(fault.PartitionRule{
					Name: "node7-cut", Nodes: []int{7}, From: 40 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Severed == 0 || r.Timeouts == 0 || r.OK {
					t.Errorf("permanent cut must break the ring: %+v", r)
				}
				if len(r.Crashed) != 0 {
					t.Errorf("a severed leader is alive, got crashed %v", r.Crashed)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ScaleConfig{Ranks: 128, Bytes: 256 << 10, Faults: tc.faults}
			serial, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripWall(sharded), stripWall(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=4: %+v\nserial: %+v", got, want)
			}
			tc.check(t, serial)
		})
	}
}

// TestPartitionVerdictsAcrossShards pins the membership layer's partition
// verdicts — epoch, fence and shrink counters, adopted ranks, and the loss
// trace — to be identical whether the exhibit world runs on 1 or 4 engine
// shards.
func TestPartitionVerdictsAcrossShards(t *testing.T) {
	model := &dl.Model{Name: "shard-mlp"}
	for i := 0; i < 8; i++ {
		model.Tensors = append(model.Tensors, dl.Tensor{Name: "fc", Elems: 128 << 10})
	}
	run := func(shards int) dl.ElasticReport {
		cfg := dl.Config{
			System: "thetagpu", Nodes: 2, Ranks: 12, Model: model,
			Steps: 6, CheckpointEvery: 2, Shards: shards,
		}
		cfg.Faults = fault.NewPlan(11).AddPartitionRule(fault.PartitionRule{
			Name: "cut-node1", Nodes: []int{1},
			From: 80 * time.Millisecond, Until: 150 * time.Millisecond,
		})
		rep, err := dl.TrainElastic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, sharded := run(1), run(4)
	type verdict struct {
		Partitions, FencedRanks, Epoch int
		Shrinks, Grows                 int
		StartRanks, FinalRanks         int
		Adopted                        []int
		Loss                           []float64
	}
	v := func(r dl.ElasticReport) verdict {
		return verdict{r.Partitions, r.FencedRanks, r.Epoch, r.Shrinks, r.Grows,
			r.StartRanks, r.FinalRanks, r.AdoptedRanks, r.Loss}
	}
	if got, want := v(sharded), v(serial); !reflect.DeepEqual(got, want) {
		t.Errorf("shards=4 verdicts: %+v\nserial: %+v", got, want)
	}
	if serial.Partitions != 1 || serial.FencedRanks != 4 || serial.Epoch < 2 {
		t.Errorf("expected one handled cut with a rejoin, got %+v", serial)
	}
}

// ---------------------------------------------------------------------------
// Compiled-collective shard determinism.
//
// The tests above pin the SYNTHETIC leader-ring model; the ones below pin
// the REAL dispatch: a compiler-planned Alltoall (core.Options.Compile)
// driven through the full core runtime — fault pre-checks, watchdog
// verdicts, quorum membership — at 1 vs 4 engine shards. Every field in a
// verdict is virtual-time-deterministic (payload CRCs, failure strings,
// membership stats, per-rank finish clocks), so reflect.DeepEqual must hold
// exactly, extending the stripWall pattern to the compiled executor.

// rankFate is one rank's distilled outcome.
type rankFate struct {
	Waves   int           // full-width compiled waves that completed
	CRC     uint32        // payload digest of the last good full-width wave
	Failure string        // the failure verdict the rank observed, verbatim
	PostCRC uint32        // payload digest after recovery (shrink or regrow)
	End     time.Duration // the rank's virtual finish time
}

// compiledVerdict is everything a run must reproduce across shard counts.
type compiledVerdict struct {
	Ranks []rankFate
	Stats core.Stats
}

// compiledWorld builds a two-node thetagpu world with the collective
// compiler on, the fault plan armed, and the engine split across shards.
func compiledWorld(t *testing.T, nranks, shards int, plan *fault.Plan) *core.Runtime {
	t.Helper()
	k := sim.NewKernel()
	sys, err := topology.Preset(k, "thetagpu", 2)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 1 {
		sim.Adopt(k, shards, sys.Inter.Alpha)
	}
	fab := fabric.New(k, sys)
	fab.SetFaults(plan)
	pol := core.DefaultResilience()
	pol.WatchdogTimeout = 200 * time.Microsecond
	rt, err := core.NewRuntime(mpi.NewJobOnSystem(fab, mpi.MVAPICHProfile(), sys, nranks),
		core.Options{Backend: core.Auto, Mode: core.PureCCL, Compile: true, Resilience: pol})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// runCompiledAlltoallCrash drives compiled Alltoall waves into a fail-stop
// crash of rank 5, lets the watchdog convert the stuck wave into ErrRankDead
// verdicts, shrinks, and runs one more compiled wave on the 15-rank group.
func runCompiledAlltoallCrash(t *testing.T, shards int) compiledVerdict {
	t.Helper()
	const nranks, count = 16, 1024
	blk := int64(count) * 4
	plan := fault.NewPlan(42).AddRule(fault.Rule{
		Name: "rank5-dies", Crash: true, Ranks: []int{5}, From: 60 * time.Microsecond,
	})
	rt := compiledWorld(t, nranks, shards, plan)
	v := compiledVerdict{Ranks: make([]rankFate, nranks)}
	if err := rt.Run(func(x *core.Comm) {
		p := x.MPI().Proc()
		rv := &v.Ranks[x.Rank()]
		send := x.Device().MustMalloc(blk * nranks)
		recv := x.Device().MustMalloc(blk * nranks)
		defer send.Free()
		defer recv.Free()
		for wave := 0; wave < 4 && x.Failure() == nil && !x.Dead(); wave++ {
			for i := 0; i < count*nranks; i++ {
				send.SetFloat32(i, float32(x.Rank()+1)*100+float32(wave)+float32(i%17))
			}
			x.Alltoall(send, count, mpi.Float32, recv)
			if x.Failure() == nil {
				rv.Waves++
				rv.CRC = crc32.ChecksumIEEE(recv.Bytes())
			}
			p.Sleep(20 * time.Microsecond)
		}
		f := x.Failure()
		if f == nil {
			t.Errorf("rank %d: crash never surfaced", x.Rank())
			return
		}
		rv.Failure = f.Error()
		if x.Dead() {
			rv.End = p.Now()
			return // the crashed rank exits; survivors recover
		}
		if !errors.Is(f, ccl.ErrRankDead) {
			t.Errorf("rank %d: failure = %v, want ErrRankDead", x.Rank(), f)
		}
		x.Revoke()
		nx, err := x.Shrink()
		if err != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), err)
			return
		}
		// One compiled wave on the shrunk (15-rank, non-power-of-two) group.
		n := int64(nx.Size())
		for i := 0; i < count*int(n); i++ {
			send.SetFloat32(i, float32(nx.Rank()+1)+float32(i%13))
		}
		nx.Alltoall(send.Slice(0, blk*n), count, mpi.Float32, recv.Slice(0, blk*n))
		if err := nx.Failure(); err != nil {
			t.Errorf("rank %d post-shrink: %v", nx.Rank(), err)
			return
		}
		rv.PostCRC = crc32.ChecksumIEEE(recv.Bytes()[:blk*n])
		rv.End = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	v.Stats = rt.Stats()
	return v
}

// runCompiledAlltoallPartition drives a compiled Alltoall through the full
// heal-and-rejoin arc: a pre-cut wave, a fast-failing wave inside a healing
// node cut, quorum shrink + fence + rejoin, and a post-heal full-width wave.
func runCompiledAlltoallPartition(t *testing.T, shards int) compiledVerdict {
	t.Helper()
	const nranks, count = 12, 256
	blk := int64(count) * 4
	cut, heal := 50*time.Microsecond, 400*time.Microsecond
	plan := fault.NewPlan(7).AddPartitionRule(fault.PartitionRule{
		Name: "node1-cut-heals", Nodes: []int{1}, From: cut, Until: heal,
	})
	rt := compiledWorld(t, nranks, shards, plan)
	v := compiledVerdict{Ranks: make([]rankFate, nranks)}
	if err := rt.Run(func(x *core.Comm) {
		p := x.MPI().Proc()
		wr := x.Rank() // world rank: stable across shrink/grow
		rv := &v.Ranks[wr]
		send := x.Device().MustMalloc(blk * nranks)
		recv := x.Device().MustMalloc(blk * nranks)
		defer send.Free()
		defer recv.Free()
		fill := func(rank, salt int) {
			for i := 0; i < count*nranks; i++ {
				send.SetFloat32(i, float32(rank+1)*10+float32(salt)+float32(i%29))
			}
		}

		// Before the cut: a full-width compiled wave completes everywhere.
		fill(wr, 0)
		x.Alltoall(send, count, mpi.Float32, recv)
		if err := x.Failure(); err != nil {
			t.Errorf("rank %d pre-cut: %v", wr, err)
			return
		}
		rv.Waves++
		rv.CRC = crc32.ChecksumIEEE(recv.Bytes())

		// Inside the window: the dispatch fast-fails instead of blocking.
		if now := p.Now(); now < cut+10*time.Microsecond {
			p.Sleep(cut + 10*time.Microsecond - now)
		}
		x.Alltoall(send, count, mpi.Float32, recv)
		f := x.Failure()
		if f == nil {
			t.Errorf("rank %d: cut wave succeeded", wr)
			return
		}
		if !errors.Is(f, ccl.ErrUnreachable) && !errors.Is(f, core.ErrCommRevoked) {
			t.Errorf("rank %d cut failure = %v, want ErrUnreachable or ErrCommRevoked", wr, f)
		}
		rv.Failure = f.Error()

		// Heal arc: the majority quorum-shrinks to 8 and polls Grow; the
		// minority loses the vote, fences, and rejoins once the cut heals.
		nx, serr := x.Shrink()
		if errors.Is(serr, core.ErrNoQuorum) {
			gx, ok := x.Rejoin(func() { p.Sleep(5 * time.Microsecond) })
			if !ok {
				t.Errorf("minority rank %d: rejoin not adopted", wr)
				return
			}
			x = gx
		} else if serr != nil {
			t.Errorf("rank %d shrink: %v", wr, serr)
			return
		} else {
			for {
				gx, _, gerr := nx.Grow(nranks - nx.Size())
				if gerr == nil {
					x = gx
					break
				}
				if !errors.Is(gerr, core.ErrNoSpares) {
					t.Errorf("rank %d grow: %v", wr, gerr)
					return
				}
				p.Sleep(50 * time.Microsecond)
			}
		}

		// Full width restored: the compiled wave completes on the regrown
		// communicator.
		if x.Size() != nranks {
			t.Errorf("rank %d: regrown size = %d, want %d", wr, x.Size(), nranks)
		}
		fill(x.Rank(), 1)
		x.Alltoall(send, count, mpi.Float32, recv)
		if err := x.Failure(); err != nil {
			t.Errorf("rank %d post-heal: %v", wr, err)
			return
		}
		rv.PostCRC = crc32.ChecksumIEEE(recv.Bytes())
		rv.End = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	v.Stats = rt.Stats()
	return v
}

// TestCompiledAlltoallShardDeterminism is the cross-shard contract for the
// collective compiler: the same crash and partition schedules must yield
// byte-identical verdicts whether the engine runs serial or on 4 shards.
func TestCompiledAlltoallShardDeterminism(t *testing.T) {
	t.Run("crash", func(t *testing.T) {
		serial := runCompiledAlltoallCrash(t, 1)
		sharded := runCompiledAlltoallCrash(t, 4)
		if !reflect.DeepEqual(sharded, serial) {
			t.Errorf("shards=4 verdicts diverged:\n%+v\nserial:\n%+v", sharded, serial)
		}
		if st := serial.Stats; st.RankFailures != 1 || st.Shrinks != 1 {
			t.Errorf("want one crash and one shrink, got %+v", st)
		}
		if st := serial.Stats; st.CCLOps == 0 || st.MPIOps != 0 {
			t.Errorf("pure-CCL compiled run took the wrong path: %+v", st)
		}
	})
	t.Run("partition-heal", func(t *testing.T) {
		serial := runCompiledAlltoallPartition(t, 1)
		sharded := runCompiledAlltoallPartition(t, 4)
		if !reflect.DeepEqual(sharded, serial) {
			t.Errorf("shards=4 verdicts diverged:\n%+v\nserial:\n%+v", sharded, serial)
		}
		if st := serial.Stats; st.Partitions != 1 || st.FencedRanks != 4 ||
			st.Shrinks != 1 || st.Grows != 1 || st.Epoch != 2 {
			t.Errorf("want one healed cut (shrink+grow, 4 fenced), got %+v", st)
		}
	})
}

func TestScaleRejectsUnevenRanks(t *testing.T) {
	if _, err := RunScale(ScaleConfig{Ranks: 100}); err == nil {
		t.Fatal("100 ranks on 8-device nodes should be rejected")
	}
}

func TestFormatScaleTable(t *testing.T) {
	r, err := RunScale(ScaleConfig{Ranks: 64, Bytes: 64 << 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScaleTable([]ScaleResult{r})
	for _, want := range []string{"ranks", "shards", "64KiB", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
