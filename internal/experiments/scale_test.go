package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mpixccl/internal/fault"
)

// stripWall zeroes the fields that legitimately differ between a serial and
// a sharded run of the same model — host wall time and the shard count
// itself — so everything else can compare exactly.
func stripWall(r ScaleResult) ScaleResult {
	r.Wall = 0
	r.Shards = 0
	return r
}

func TestScaleDeterministicAcrossShards(t *testing.T) {
	base, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK || base.VirtTime == 0 {
		t.Fatalf("serial run: %+v", base)
	}
	for _, shards := range []int{2, 4, 8} {
		r, err := RunScale(ScaleConfig{Ranks: 128, Bytes: 256 << 10, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := stripWall(r), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: %+v\nserial: %+v", shards, got, want)
		}
	}
}

func TestScaleAcrossSystems(t *testing.T) {
	// Every preset (including non-power-of-two devices per node) must pass
	// the digest check at multiple shard counts.
	for _, sys := range []string{"thetagpu", "mri", "voyager", "aurora"} {
		dpn := map[string]int{"thetagpu": 8, "mri": 2, "voyager": 8, "aurora": 6}[sys]
		ranks := 16 * dpn
		base, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !base.OK {
			t.Fatalf("%s: digest check failed: %+v", sys, base)
		}
		sharded, err := RunScale(ScaleConfig{System: sys, Ranks: ranks, Bytes: 64 << 10, Shards: 4})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if got, want := stripWall(sharded), stripWall(base); !reflect.DeepEqual(got, want) {
			t.Errorf("%s shards=4: %+v\nserial: %+v", sys, got, want)
		}
	}
}

// TestScaleFaultDeterminism is the cross-shard fault-injection contract:
// crash, brownout, and corrupt rules firing on cross-shard links must
// produce identical verdicts and counters at 1 and 4 shards. Rules are pure
// time-window rules (no probabilities, no call budgets on cross-links), the
// class the parallel engine guarantees order-independence for.
func TestScaleFaultDeterminism(t *testing.T) {
	const us = time.Microsecond
	cases := []struct {
		name   string
		faults func(shard int) *fault.Plan
		check  func(t *testing.T, r ScaleResult)
	}{
		{
			name: "crash",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddRule(fault.Rule{
					Name: "leader5-dies", Ranks: []int{5}, From: 50 * us, Crash: true,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if len(r.Crashed) != 1 || r.Crashed[0] != 5 {
					t.Errorf("crashed = %v, want [5]", r.Crashed)
				}
				if r.Timeouts == 0 || r.OK {
					t.Errorf("want detection timeouts and a failed check, got %+v", r)
				}
			},
		},
		{
			name: "brownout",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddLinkRule(fault.LinkRule{
					Name: "inter-brownout", Link: "inter",
					From: 30 * us, Until: 70 * us,
					BWScale: 0.25, AlphaScale: 3,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.Degraded == 0 {
					t.Error("brownout window never hit a ring send")
				}
				if !r.OK {
					t.Errorf("brownout must not corrupt results: %+v", r)
				}
			},
		},
		{
			name: "corrupt",
			faults: func(shard int) *fault.Plan {
				return fault.NewPlan(42).AddCorruptRule(fault.CorruptRule{
					Name: "node7-flaky-nic", Link: "inter", Nodes: []int{7},
					From: 40 * us, Until: 55 * us,
				})
			},
			check: func(t *testing.T, r ScaleResult) {
				if r.CorruptionsDetected == 0 || r.Retransmits == 0 {
					t.Errorf("corrupt window never fired: %+v", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ScaleConfig{Ranks: 128, Bytes: 256 << 10, Faults: tc.faults}
			serial, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = 4
			sharded, err := RunScale(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripWall(sharded), stripWall(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=4: %+v\nserial: %+v", got, want)
			}
			tc.check(t, serial)
		})
	}
}

func TestScaleRejectsUnevenRanks(t *testing.T) {
	if _, err := RunScale(ScaleConfig{Ranks: 100}); err == nil {
		t.Fatal("100 ranks on 8-device nodes should be rejected")
	}
}

func TestFormatScaleTable(t *testing.T) {
	r, err := RunScale(ScaleConfig{Ranks: 64, Bytes: 64 << 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScaleTable([]ScaleResult{r})
	for _, want := range []string{"ranks", "shards", "64KiB", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
