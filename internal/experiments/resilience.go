package experiments

import (
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/omb"
)

// resilienceSeed fixes every fault plan of the scenario: reruns inject the
// same faults at the same calls, so the figure is reproducible.
const resilienceSeed = 0x5eed

// resiliencePlan builds the scenario's fault plan. Each series gets a
// fresh plan (same seed) so one series' draws do not perturb another's.
func resiliencePlan() *fault.Plan {
	p := fault.NewPlan(resilienceSeed)
	// Transient peer failures on ~15% of Allreduce calls: the dispatch
	// layer's bounded retries should absorb them on the CCL path.
	p.AddRule(fault.Rule{
		Name: "flaky-allreduce", Op: "allreduce",
		Result: ccl.ErrRemote, Probability: 0.15,
	})
	// One straggler rank: extra stream latency on a quarter of its calls.
	p.AddRule(fault.Rule{
		Name: "straggler", Op: "allreduce", Ranks: []int{1},
		Delay: 5 * time.Microsecond, Probability: 0.25,
	})
	// A degraded NVLink window early in the run: half bandwidth, half the
	// channel pool. The runtime shrinks its channel budget while active.
	p.AddLinkRule(fault.LinkRule{
		Name: "nvlink-brownout", Link: "intra",
		From: 50 * time.Microsecond, Until: 2 * time.Millisecond,
		BWScale: 0.5, ChannelCap: 6,
	})
	return p
}

// Resilience sweeps Allreduce on one ThetaGPU node under the seeded fault
// plan: transient CCL errors, a straggler rank, and a link-degradation
// window. The hybrid stack must complete the sweep with bounded slowdown
// against its clean run (retries absorb the transients, the breaker and
// fallback absorb anything persistent); the pure-xCCL stack shows the
// same plan without a hybrid table deciding the path.
func Resilience(scale Scale, reg *metrics.Registry) (*Figure, error) {
	min, max := collSweep(scale)
	base := omb.Config{System: "thetagpu", Nodes: 1, MinBytes: min, MaxBytes: max,
		Iterations: iters(scale), Metrics: reg}
	// An unscoped probabilistic rule can fire on the same rank's call
	// repeatedly; a rank that exhausts its retries on a collective falls
	// back to MPI alone and deadlocks against peers still in the CCL op
	// (see docs/ARCHITECTURE.md). A deep retry budget makes exhaustion
	// vanishingly unlikely, and the fixed seed makes the run reproducible.
	base.Resilience = &core.Resilience{
		MaxRetries: 8, RetryBackoff: 10 * time.Microsecond,
		BreakerThreshold: 3, BreakerCooldown: time.Millisecond,
	}
	f := &Figure{ID: "resilience", Title: "Allreduce under injected faults (8 GPUs, 1 node)",
		XLabel: "bytes", Metric: "latency"}

	clean := base
	clean.Stack = omb.StackHybrid
	s, err := ombSeries("hybrid/clean", clean, omb.Allreduce)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)

	hybridPlan := resiliencePlan()
	faulted := base
	faulted.Stack = omb.StackHybrid
	faulted.Faults = hybridPlan
	s, err = ombSeries("hybrid/faulted", faulted, omb.Allreduce)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)

	purePlan := resiliencePlan()
	pure := base
	pure.Stack = omb.StackPureXCCL
	pure.Faults = purePlan
	s, err = ombSeries("pure-xccl/faulted", pure, omb.Allreduce)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)

	f.Notes = append(f.Notes,
		fmt.Sprintf("hybrid plan fired: %d transient errors, %d straggler delays",
			hybridPlan.Fired("flaky-allreduce"), hybridPlan.Fired("straggler")),
		slowdownNote(f.Series[0], f.Series[1]))
	return f, nil
}

// slowdownNote reports the aggregate slowdown of series b over series a.
func slowdownNote(a, b Series) string {
	var ta, tb time.Duration
	for _, p := range a.Points {
		ta += p.Latency
	}
	for _, p := range b.Points {
		tb += p.Latency
	}
	if ta <= 0 {
		return "slowdown: n/a"
	}
	return fmt.Sprintf("slowdown under faults: %.2fx (total %v vs %v)",
		float64(tb)/float64(ta), tb, ta)
}
