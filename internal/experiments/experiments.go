// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) from the simulated substrate: the Table 1 hardware
// summary, the Fig 1 motivation crossovers, the Fig 3–4 point-to-point
// sweeps, the Fig 5–6 collective grids, and the Fig 7–10 TensorFlow+Horovod
// application results. Each experiment returns a Figure of named series
// that mirrors the paper's plot, formatted as text tables by Format.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mpixccl/internal/core"
	"mpixccl/internal/dl"
	"mpixccl/internal/metrics"
	"mpixccl/internal/omb"
	"mpixccl/internal/topology"
)

// Scale selects run sizes: Quick shrinks node counts and size sweeps so the
// whole suite finishes in minutes; Full uses the paper's configurations.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Point is one measurement: X is message bytes (OMB figures) or batch size
// (application figures); Latency or Value carries the metric.
type Point struct {
	X       int64
	Latency time.Duration
	Value   float64 // bandwidth MB/s or img/s, figure-dependent
}

// Series is one labeled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string // "bytes" or "batch"
	Metric string // "latency", "MB/s", "img/s"
	Series []Series
	Notes  []string
}

// hierEnabled switches the hybrid/xCCL series onto hierarchical tuning
// tables (off by default so regenerated exhibits match the paper's flat
// schedules byte for byte).
var hierEnabled bool

// SetHierarchical toggles topology-aware hierarchical collectives for the
// hybrid-xCCL series of every figure: multi-node shapes run with
// core.HierarchicalTableFor instead of the builtin default table. Call it
// before Run/RunAll (the xcclbench -hier flag).
func SetHierarchical(on bool) { hierEnabled = on }

// hierTable returns the hierarchical tuning table for a shape, or nil when
// the feature is off or the shape has no inter-node tier to exploit.
func hierTable(system string, backend core.BackendKind, nodes int) *core.TuningTable {
	if !hierEnabled || nodes <= 1 {
		return nil
	}
	return core.HierarchicalTableFor(system, backend, true, 0)
}

// compileEnabled switches the xCCL series of every figure onto the
// collective compiler (off by default so regenerated exhibits match the
// paper's group send-recv synthesized collectives byte for byte).
var compileEnabled bool

// SetCompile toggles the collective compiler for the hybrid/pure-xCCL
// series of every figure: the synthesized collectives (alltoall(v),
// gather, scatter) run cost-model-compiled plans instead of the group
// send-recv loop. Call it before Run/RunAll (the xcclbench -compile flag).
func SetCompile(on bool) { compileEnabled = on }

// persistEnabled switches the Horovod exhibits' xCCL engine onto
// persistent partitioned allreduce handles (off by default so regenerated
// exhibits match the paper's per-call dispatch byte for byte).
var persistEnabled bool

// SetPersistent toggles persistent collectives for the hybrid-xCCL series
// of the training figures (Fig 7–10): gradient buckets ride pre-built
// partitioned handles with per-op negotiation amortized into Init. Call
// it before Run/RunAll (the xcclbench -persistent flag).
func SetPersistent(on bool) { persistEnabled = on }

// SetShards sets the event-engine shard count for every exhibit world
// built by this package (the xcclbench -shards flag). Exhibit worlds adopt
// the windowed engine with the whole world on shard 0, so regenerated
// output is byte-identical at any shard count — the setting exists to
// prove exactly that (scripts/check.sh compares goldens at 1 and 4).
func SetShards(n int) {
	omb.SetDefaultShards(n)
	dl.SetDefaultShards(n)
}

// sweep returns the OMB size list for the scale.
func sweep(scale Scale) (min, max int64) {
	if scale == Full {
		return 4, 4 << 20
	}
	return 1 << 10, 1 << 20
}

func collSweep(scale Scale) (min, max int64) {
	if scale == Full {
		return 64, 4 << 20
	}
	return 1 << 10, 1 << 20
}

func iters(scale Scale) int {
	if scale == Full {
		return 2
	}
	return 1
}

// ombSeries runs one collective config into a Series.
func ombSeries(name string, cfg omb.Config, op omb.Collective) (Series, error) {
	res, err := omb.RunCollective(cfg, op)
	if err != nil {
		return Series{}, fmt.Errorf("%s: %w", name, err)
	}
	s := Series{Name: name}
	for _, r := range res {
		s.Points = append(s.Points, Point{X: r.Bytes, Latency: r.Latency})
	}
	return s, nil
}

// Table1 formats the system-hardware summary.
func Table1() string {
	rows := topology.Table1()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Systems hardware information (single node)\n")
	fmt.Fprintf(&sb, "%-10s %-22s %-12s %-16s %-6s %-8s\n",
		"System", "CPU", "Memory", "Accelerator", "/Node", "DevMem")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-22s %-12s %-16s %-6d %-8s\n",
			r.System, r.CPU, r.Memory, r.Accelerator, r.PerNode, r.DeviceMem)
	}
	return sb.String()
}

// Fig1a reproduces the motivation: MPI vs pure NCCL Allreduce on 4 nodes /
// 32 GPUs of ThetaGPU, with the ≈16 KB crossover.
func Fig1a(scale Scale, reg *metrics.Registry) (*Figure, error) {
	min, max := collSweep(scale)
	base := omb.Config{System: "thetagpu", Nodes: 4, MinBytes: min, MaxBytes: max,
		Iterations: iters(scale), Metrics: reg}
	f := &Figure{ID: "fig1a", Title: "MPI vs NCCL Allreduce latency (32 GPUs, 4 nodes)",
		XLabel: "bytes", Metric: "latency"}
	mpiCfg := base
	mpiCfg.Stack = omb.StackMPI
	s, err := ombSeries("MPI", mpiCfg, omb.Allreduce)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)
	ncclCfg := base
	ncclCfg.Stack = omb.StackPureCCL
	s, err = ombSeries("NCCL", ncclCfg, omb.Allreduce)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, crossoverNote(f.Series[0], f.Series[1]))
	return f, nil
}

// Fig1b reproduces MPI vs pure RCCL Allgather on 4 nodes / 8 GPUs of MRI,
// with the ≈64 KB crossover.
func Fig1b(scale Scale, reg *metrics.Registry) (*Figure, error) {
	min, max := collSweep(scale)
	base := omb.Config{System: "mri", Nodes: 4, MinBytes: min, MaxBytes: max,
		Iterations: iters(scale), Metrics: reg}
	f := &Figure{ID: "fig1b", Title: "MPI vs RCCL Allgather latency (8 GPUs, 4 nodes)",
		XLabel: "bytes", Metric: "latency"}
	mpiCfg := base
	mpiCfg.Stack = omb.StackMPI
	s, err := ombSeries("MPI", mpiCfg, omb.Allgather)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)
	rcclCfg := base
	rcclCfg.Stack = omb.StackPureCCL
	s, err = ombSeries("RCCL", rcclCfg, omb.Allgather)
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, crossoverNote(f.Series[0], f.Series[1]))
	return f, nil
}

// crossoverNote locates where series b overtakes series a.
func crossoverNote(a, b Series) string {
	for i := range a.Points {
		if i < len(b.Points) && b.Points[i].Latency < a.Points[i].Latency {
			return fmt.Sprintf("crossover: %s wins above ≈%d bytes", b.Name, a.Points[i].X)
		}
	}
	return fmt.Sprintf("no crossover observed (%s always ahead)", a.Name)
}

// backendSpec describes one backend's evaluation shape.
type backendSpec struct {
	name        string
	system      string
	backend     core.BackendKind
	singleNodes int
	multiNodes  int
}

func backendSpecs(scale Scale) []backendSpec {
	specs := []backendSpec{
		{"NCCL", "thetagpu", core.NCCL, 1, 16},
		{"RCCL", "mri", core.RCCL, 1, 8},
		{"HCCL", "voyager", core.HCCL, 1, 4},
		{"MSCCL", "thetagpu", core.MSCCL, 1, 2},
	}
	if scale == Quick {
		specs[0].multiNodes = 2
		specs[1].multiNodes = 4
		specs[2].multiNodes = 2
	}
	return specs
}

// pt2pt runs Fig 3 (intra-node) or Fig 4 (inter-node): per backend the
// latency, bandwidth, and bidirectional bandwidth sweeps.
func pt2pt(id, title string, nodes func(backendSpec) int, scale Scale, reg *metrics.Registry) (*Figure, error) {
	min, max := sweep(scale)
	f := &Figure{ID: id, Title: title, XLabel: "bytes", Metric: "latency|MB/s"}
	for _, spec := range backendSpecs(scale) {
		cfg := omb.Config{System: spec.system, Nodes: nodes(spec), Backend: spec.backend,
			MinBytes: min, MaxBytes: max, Iterations: iters(scale), Metrics: reg}
		lat, err := omb.RunPt2Pt(cfg, omb.LatencyBench)
		if err != nil {
			return nil, err
		}
		bw, err := omb.RunPt2Pt(cfg, omb.BandwidthBench)
		if err != nil {
			return nil, err
		}
		bibw, err := omb.RunPt2Pt(cfg, omb.BiBandwidthBench)
		if err != nil {
			return nil, err
		}
		ls := Series{Name: spec.name + " latency"}
		for _, r := range lat {
			ls.Points = append(ls.Points, Point{X: r.Bytes, Latency: r.Latency})
		}
		bs := Series{Name: spec.name + " bw"}
		for _, r := range bw {
			bs.Points = append(bs.Points, Point{X: r.Bytes, Value: r.BandwidthMBs})
		}
		bbs := Series{Name: spec.name + " bibw"}
		for _, r := range bibw {
			bbs.Points = append(bbs.Points, Point{X: r.Bytes, Value: r.BandwidthMBs})
		}
		f.Series = append(f.Series, ls, bs, bbs)
		last := len(lat) - 1
		f.Notes = append(f.Notes, fmt.Sprintf("%s: %v at %d B, peak %.0f MB/s, bidir %.0f MB/s",
			spec.name, lat[last].Latency, lat[last].Bytes, bw[last].BandwidthMBs, bibw[last].BandwidthMBs))
	}
	return f, nil
}

// Fig3 is the intra-node point-to-point evaluation.
func Fig3(scale Scale, reg *metrics.Registry) (*Figure, error) {
	return pt2pt("fig3", "Intra-node point-to-point (latency/bw/bibw per backend)",
		func(backendSpec) int { return 1 }, scale, reg)
}

// Fig4 is the inter-node point-to-point evaluation.
func Fig4(scale Scale, reg *metrics.Registry) (*Figure, error) {
	return pt2pt("fig4", "Inter-node point-to-point (latency/bw/bibw per backend)",
		func(backendSpec) int { return 2 }, scale, reg)
}

// collectives runs the Fig 5 (single-node) or Fig 6 (multi-node) grid: four
// operations × four backends × {hybrid, pure-xCCL, pure CCL, and (NCCL
// only) Open MPI + UCX + UCC}.
func collectives(id, title string, multi bool, scale Scale, reg *metrics.Registry) (*Figure, error) {
	min, max := collSweep(scale)
	f := &Figure{ID: id, Title: title, XLabel: "bytes", Metric: "latency"}
	ops := []omb.Collective{omb.Allreduce, omb.Reduce, omb.Bcast, omb.Alltoall}
	for _, spec := range backendSpecs(scale) {
		nodes := spec.singleNodes
		if multi {
			nodes = spec.multiNodes
		}
		base := omb.Config{System: spec.system, Nodes: nodes, Backend: spec.backend,
			MinBytes: min, MaxBytes: max, Iterations: iters(scale), Metrics: reg}
		for _, op := range ops {
			type variant struct {
				label string
				stack omb.Stack
				bk    core.BackendKind
			}
			variants := []variant{
				{"hybrid", omb.StackHybrid, spec.backend},
				{"pure-xccl", omb.StackPureXCCL, spec.backend},
				{"pure-ccl", omb.StackPureCCL, spec.backend},
			}
			if spec.backend == core.NCCL {
				variants = append(variants, variant{"ompi-ucx-ucc", omb.StackUCC, spec.backend})
			}
			if spec.backend == core.MSCCL && op == omb.Allreduce {
				variants = append(variants, variant{"pure-nccl-2.12", omb.StackPureCCL, core.LegacyNCCL})
			}
			for _, v := range variants {
				cfg := base
				cfg.Stack = v.stack
				cfg.Backend = v.bk
				if v.label == "hybrid" {
					cfg.Table = hierTable(spec.system, v.bk, nodes)
				}
				s, err := ombSeries(fmt.Sprintf("%s/%s/%s", spec.name, op, v.label), cfg, op)
				if err != nil {
					return nil, err
				}
				f.Series = append(f.Series, s)
			}
		}
	}
	return f, nil
}

// Fig5 is the single-node collective grid.
func Fig5(scale Scale, reg *metrics.Registry) (*Figure, error) {
	return collectives("fig5", "Collective latency, single node (4 ops × 4 backends)", false, scale, reg)
}

// Fig6 is the multi-node collective grid.
func Fig6(scale Scale, reg *metrics.Registry) (*Figure, error) {
	return collectives("fig6", "Collective latency, multi node (4 ops × 4 backends)", true, scale, reg)
}

// dlFigure runs one application-level figure: per engine and batch size,
// aggregate img/s.
func dlFigure(id, title, system string, nodes int, backend core.BackendKind, engines []dl.Engine, reg *metrics.Registry) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XLabel: "batch", Metric: "img/s"}
	for _, eng := range engines {
		s := Series{Name: string(eng)}
		var table *core.TuningTable
		if eng == dl.EngineXCCL {
			table = hierTable(system, backend, nodes)
		}
		for _, bs := range []int{32, 64, 128} {
			rep, err := dl.Train(dl.Config{System: system, Nodes: nodes, BatchSize: bs,
				Steps: 1, Engine: eng, Backend: backend, Table: table, Metrics: reg,
				Persistent: persistEnabled && eng == dl.EngineXCCL,
				Compile:    compileEnabled && eng == dl.EngineXCCL})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: int64(bs), Value: rep.ImgPerSec})
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig7 is TensorFlow+Horovod on the NVIDIA system (1 node and multi-node).
func Fig7(scale Scale, reg *metrics.Registry) (*Figure, error) {
	engines := []dl.Engine{dl.EngineXCCL, dl.EnginePureCCL, dl.EngineOpenMPI, dl.EngineUCC}
	a, err := dlFigure("fig7a", "Horovod on NVIDIA, 1 node (8 GPUs)", "thetagpu", 1, core.NCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	nodes := 2
	if scale == Full {
		nodes = 16
	}
	b, err := dlFigure("fig7b", fmt.Sprintf("Horovod on NVIDIA, %d nodes (%d GPUs)", nodes, nodes*8),
		"thetagpu", nodes, core.NCCL, []dl.Engine{dl.EngineXCCL, dl.EngineOpenMPI, dl.EngineUCC}, reg)
	if err != nil {
		return nil, err
	}
	a.ID = "fig7"
	for _, s := range b.Series {
		s.Name = fmt.Sprintf("%dn/%s", nodes, s.Name)
		a.Series = append(a.Series, s)
	}
	return a, nil
}

// Fig8 is Horovod on the AMD system.
func Fig8(scale Scale, reg *metrics.Registry) (*Figure, error) {
	engines := []dl.Engine{dl.EngineXCCL, dl.EnginePureCCL}
	a, err := dlFigure("fig8a", "Horovod on AMD, 4 nodes (8 GPUs)", "mri", 4, core.RCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	b, err := dlFigure("fig8b", "Horovod on AMD, 8 nodes (16 GPUs)", "mri", 8, core.RCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	a.ID = "fig8"
	for _, s := range b.Series {
		s.Name = "8n/" + s.Name
		a.Series = append(a.Series, s)
	}
	return a, nil
}

// Fig9 is Horovod on the Habana system.
func Fig9(scale Scale, reg *metrics.Registry) (*Figure, error) {
	engines := []dl.Engine{dl.EngineXCCL, dl.EnginePureCCL}
	a, err := dlFigure("fig9a", "Horovod on Habana, 1 node (8 HPUs)", "voyager", 1, core.HCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	nodes := 2
	if scale == Full {
		nodes = 4
	}
	b, err := dlFigure("fig9b", fmt.Sprintf("Horovod on Habana, %d nodes (%d HPUs)", nodes, nodes*8),
		"voyager", nodes, core.HCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	a.ID = "fig9"
	for _, s := range b.Series {
		s.Name = fmt.Sprintf("%dn/%s", nodes, s.Name)
		a.Series = append(a.Series, s)
	}
	return a, nil
}

// Fig10 is Horovod with the MSCCL backend on the NVIDIA system.
func Fig10(scale Scale, reg *metrics.Registry) (*Figure, error) {
	engines := []dl.Engine{dl.EngineXCCL, dl.EnginePureCCL}
	a, err := dlFigure("fig10a", "Horovod with MSCCL, 1 node (8 GPUs)", "thetagpu", 1, core.MSCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	b, err := dlFigure("fig10b", "Horovod with MSCCL, 2 nodes (16 GPUs)", "thetagpu", 2, core.MSCCL, engines, reg)
	if err != nil {
		return nil, err
	}
	a.ID = "fig10"
	for _, s := range b.Series {
		s.Name = "2n/" + s.Name
		a.Series = append(a.Series, s)
	}
	return a, nil
}

// Format renders a figure as aligned text tables, one row per X value.
func Format(f *Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	// Collect the X axis.
	xs := map[int64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	axis := make([]int64, 0, len(xs))
	for x := range xs {
		axis = append(axis, x)
	}
	sort.Slice(axis, func(i, j int) bool { return axis[i] < axis[j] })
	fmt.Fprintf(&sb, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %26s", truncate(s.Name, 26))
	}
	sb.WriteString("\n")
	for _, x := range axis {
		fmt.Fprintf(&sb, "%12d", x)
		for _, s := range f.Series {
			var cell string
			for _, p := range s.Points {
				if p.X == x {
					if p.Value != 0 {
						cell = fmt.Sprintf("%.0f", p.Value)
					} else {
						cell = fmt.Sprintf("%.2fus", float64(p.Latency.Nanoseconds())/1000)
					}
					break
				}
			}
			fmt.Fprintf(&sb, " %26s", cell)
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// IDs lists every experiment id in paper order.
func IDs() []string {
	return []string{"table1", "fig1a", "fig1b", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "resilience", "elastic", "partition"}
}

// Run executes one experiment by id and returns its formatted output.
func Run(id string, scale Scale) (string, error) {
	return RunWith(id, scale, nil)
}

// RunWith is Run with a metrics registry wired through the whole stack
// under test: every rerun figure also aggregates dispatch-path counters,
// fallback causes, protocol choices, and latency histograms into reg
// (nil disables instrumentation).
func RunWith(id string, scale Scale, reg *metrics.Registry) (string, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "fig1a":
		f, err := Fig1a(scale, reg)
		return format(f, err)
	case "fig1b":
		f, err := Fig1b(scale, reg)
		return format(f, err)
	case "fig3":
		f, err := Fig3(scale, reg)
		return format(f, err)
	case "fig4":
		f, err := Fig4(scale, reg)
		return format(f, err)
	case "fig5":
		f, err := Fig5(scale, reg)
		return format(f, err)
	case "fig6":
		f, err := Fig6(scale, reg)
		return format(f, err)
	case "fig7":
		f, err := Fig7(scale, reg)
		return format(f, err)
	case "fig8":
		f, err := Fig8(scale, reg)
		return format(f, err)
	case "fig9":
		f, err := Fig9(scale, reg)
		return format(f, err)
	case "fig10":
		f, err := Fig10(scale, reg)
		return format(f, err)
	case "resilience":
		f, err := Resilience(scale, reg)
		return format(f, err)
	case "elastic":
		f, err := Elastic(scale, reg)
		return format(f, err)
	case "partition":
		f, err := Partition(scale, reg)
		return format(f, err)
	default:
		return "", fmt.Errorf("experiments: unknown id %q (want one of %s)", id, strings.Join(IDs(), ", "))
	}
}

func format(f *Figure, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return Format(f), nil
}
