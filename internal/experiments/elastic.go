package experiments

import (
	"fmt"

	"mpixccl/internal/dl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
)

// elasticSeed fixes the scenario's fault plan; crash rules are
// deterministic anyway (call-counted), but the seed keeps the plan
// constructor uniform with the resilience exhibit.
const elasticSeed = 0xdead

// elasticCrash is the exhibit's injected failure; zero values mean "use
// the scale's defaults". The golden run never overrides it.
var elasticCrash struct{ rank, step int }

// SetElasticCrash overrides which world rank fail-stops and during which
// training step (1-based) for the elastic exhibit — the CLI's
// `-crash rank@step` hook. A step of 0 keeps the scale's default.
func SetElasticCrash(rank, step int) {
	elasticCrash.rank, elasticCrash.step = rank, step
}

// Elastic demonstrates fail-stop recovery end to end: ResNet-50 data
// parallel on one ThetaGPU node, one rank fail-stops mid-step, the
// survivors' watchdogs detect it, the communicator is revoked and shrunk
// ULFM-style, training rolls back to the last checkpoint and completes on
// 7 GPUs. The exhibit reports the per-executed-step latency (the replayed
// step appears twice — once interrupted by detection, once clean on the
// shrunken world) and the loss trajectory across the rollback.
func Elastic(scale Scale, reg *metrics.Registry) (*Figure, error) {
	steps, crashStep, crashRank := 6, 4, 5
	if scale == Full {
		steps, crashStep = 12, 6
	}
	if elasticCrash.step != 0 {
		crashRank, crashStep = elasticCrash.rank, elasticCrash.step
	}
	if crashRank < 0 || crashRank >= 8 || crashStep < 1 || crashStep > steps {
		return nil, fmt.Errorf("elastic: crash %d@%d out of range (8 ranks, %d steps)", crashRank, crashStep, steps)
	}
	cfg := dl.Config{
		System: "thetagpu", Nodes: 1, Ranks: 8,
		Steps: steps, CheckpointEvery: 2, Metrics: reg,
	}
	// The victim dies halfway through crashStep's gradient exchange (call
	// budget counted in fused-bucket allreduces). At the default 4, step 3
	// is complete but not yet checkpointed, so the survivors lose it and
	// the replay is visible in the figure.
	nb := len(dl.FuseBuckets(dl.ResNet50().Tensors, 2<<20))
	cfg.Faults = fault.NewPlan(elasticSeed).AddRule(fault.Rule{
		Name: "fail-stop", Crash: true, Ranks: []int{crashRank}, Op: "allreduce",
		After: (crashStep-1)*nb + nb/2,
	})
	rep, err := dl.TrainElastic(cfg)
	if err != nil {
		return nil, err
	}

	f := &Figure{ID: "elastic", Title: "Elastic training under a fail-stop crash (8→7 GPUs, 1 node)",
		XLabel: "step", Metric: "latency"}
	lat := Series{Name: "step-latency"}
	for i, st := range rep.StepLatency {
		lat.Points = append(lat.Points, Point{X: int64(i + 1), Latency: st})
	}
	// Format renders Value with %.0f (it carries MB/s or img/s elsewhere),
	// so the loss series is scaled to milliunits to survive the rounding.
	loss := Series{Name: "loss (x1000)"}
	for i, l := range rep.Loss {
		loss.Points = append(loss.Points, Point{X: int64(i + 1), Value: l * 1000})
	}
	f.Series = append(f.Series, lat, loss)
	f.Notes = append(f.Notes,
		fmt.Sprintf("ranks %d -> %d after crash of world rank(s) %v", rep.StartRanks, rep.FinalRanks, rep.CrashedRanks),
		fmt.Sprintf("shrinks: %d, rollback steps replayed: %d, checkpoints: %d", rep.Shrinks, rep.RollbackSteps, rep.Checkpoints),
		fmt.Sprintf("final loss %.4f after %d executed steps, %.0f img/s on the shrunken world",
			rep.Loss[len(rep.Loss)-1], len(rep.Loss), rep.ImgPerSec))
	return f, nil
}
