package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestIDsAreRunnable(t *testing.T) {
	if len(IDs()) != 14 {
		t.Fatalf("IDs = %v", IDs())
	}
	if _, err := Run("nope", Quick); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1Output(t *testing.T) {
	out := Table1()
	for _, want := range []string{"ThetaGPU", "MRI", "Voyager", "A100", "MI100", "Gaudi"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig1aCrossoverReported(t *testing.T) {
	f, err := Fig1a(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	if len(f.Notes) != 1 || !strings.Contains(f.Notes[0], "NCCL wins above") {
		t.Fatalf("notes = %v", f.Notes)
	}
}

func TestFig3NotesCarryCalibration(t *testing.T) {
	f, err := Fig3(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 backends × 3 metrics.
	if len(f.Series) != 12 {
		t.Fatalf("series = %d, want 12", len(f.Series))
	}
	if len(f.Notes) != 4 {
		t.Fatalf("notes = %d, want one per backend", len(f.Notes))
	}
}

func TestFormatRendersAllSeries(t *testing.T) {
	f := &Figure{
		ID: "t", Title: "test", XLabel: "bytes", Metric: "latency",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 8, Latency: 3 * time.Microsecond}}},
			{Name: "b", Points: []Point{{X: 8, Value: 42}}},
		},
		Notes: []string{"hello"},
	}
	out := Format(f)
	for _, want := range []string{"== t: test ==", "3.00us", "42", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFig7SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("application figure is slow")
	}
	f, err := Fig7(Quick, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 single-node engines + 3 multi-node engines.
	if len(f.Series) != 7 {
		t.Fatalf("series = %d, want 7", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %s has %d points, want 3 batch sizes", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Value <= 0 {
				t.Fatalf("series %s has non-positive throughput", s.Name)
			}
		}
	}
}
