package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden file pins the virtual-time results of every exhibit at Quick
// scale. It was generated from the seed simulation kernel (before the
// hot-path overhaul) and must never change under a pure performance
// optimization: wall-clock time may drop, virtual time may not move.
//
// Regenerate (only after an intentional model change) with:
//
//	go test ./internal/experiments -run TestGoldenVirtualTime -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_quick.json from the current engine (model changes only)")

const goldenPath = "testdata/golden_quick.json"

// goldenVerifyIDs is the subset checked on every `go test` run. The
// application exhibits (fig7–fig10) take minutes each and are verified only
// when XCCL_GOLDEN_FULL is set (scripts/bench.sh does this); fig6 is the
// heaviest exhibit still checked by default and is skipped under -short.
func goldenVerifyIDs() []string {
	ids := []string{"table1", "fig1a", "fig1b", "fig3", "fig4", "fig5", "resilience", "elastic"}
	if !testing.Short() {
		ids = append(ids, "fig6", "partition")
	}
	if os.Getenv("XCCL_GOLDEN_FULL") != "" {
		ids = append(ids, "fig7", "fig8", "fig9", "fig10")
	}
	return ids
}

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	return golden
}

// TestGoldenVirtualTime proves the optimized engine reproduces the seed's
// virtual-time results bit-for-bit: every exhibit's formatted output (which
// embeds each series' virtual latencies) must match the pinned snapshot.
func TestGoldenVirtualTime(t *testing.T) {
	if *updateGolden {
		golden := map[string]string{}
		for _, id := range IDs() {
			out, err := Run(id, Quick)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			golden[id] = out
		}
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten with %d exhibits", len(golden))
		return
	}
	golden := readGolden(t)
	for _, id := range goldenVerifyIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			want, ok := golden[id]
			if !ok {
				t.Fatalf("golden file has no entry for %s", id)
			}
			got, err := Run(id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("virtual-time results drifted from the seed golden.\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
		})
	}
}

// TestGoldenShardInvariance proves the windowed sharded engine is an
// identity transformation for adopted exhibit worlds: regenerating exhibits
// at -shards 4 must reproduce the same pinned snapshots byte for byte. The
// default subset — one omb exhibit, one tuner exhibit, one dl exhibit —
// covers the world constructors that adopt the engine; XCCL_GOLDEN_FULL
// widens it to every exhibit in the golden file.
func TestGoldenShardInvariance(t *testing.T) {
	if *updateGolden {
		t.Skip("golden update runs serial")
	}
	golden := readGolden(t)
	SetShards(4)
	t.Cleanup(func() { SetShards(1) })
	ids := []string{"fig1a", "fig4", "elastic"}
	if os.Getenv("XCCL_GOLDEN_FULL") != "" {
		ids = IDs()
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			got, err := Run(id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			if got != golden[id] {
				t.Errorf("sharded regeneration drifted from the serial golden.\n--- want ---\n%s\n--- got ---\n%s", golden[id], got)
			}
		})
	}
}
