package experiments

import (
	"strings"
	"testing"

	"mpixccl/internal/metrics"
)

// The acceptance soak: 20 seeded schedules, every invariant holding —
// termination, bytewise-exact results, healed corruption, full-width
// recovery within the detection-latency bound. Short mode trims the
// schedule count, not the invariants.
func TestChaosSoak(t *testing.T) {
	runs := 20
	if testing.Short() {
		runs = 6
	}
	reg := metrics.NewRegistry()
	out, err := RunChaos(0xc4a05, runs, reg)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "all invariants held") {
		t.Errorf("report missing the success line:\n%s", out)
	}
	if v, ok := reg.CounterValue("xccl_chaos_schedules_total",
		metrics.Labels{"outcome": "ok"}); !ok || v != float64(runs) {
		t.Errorf("ok schedules counted = %v (exists %v), want %d", v, ok, runs)
	}
}

// A tiny soak for the -race leg of check.sh: three schedules exercise one
// collective soak, one elastic recovery, and one network partition.
func TestChaosShort(t *testing.T) {
	out, err := RunChaos(7, 3, nil)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

// The chaos soak is engine-shard invariant: the same seed must produce a
// byte-identical report at 1 and 4 scheduler shards — including the
// partition schedule's quorum/fence/rejoin verdicts.
func TestChaosShardInvariant(t *testing.T) {
	serial, err := RunChaos(7, 3, nil)
	if err != nil {
		t.Fatalf("serial: %v\n%s", err, serial)
	}
	SetShards(4)
	t.Cleanup(func() { SetShards(1) })
	sharded, err := RunChaos(7, 3, nil)
	if err != nil {
		t.Fatalf("shards=4: %v\n%s", err, sharded)
	}
	if serial != sharded {
		t.Errorf("report diverged at 4 shards:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
}

// Same seed, same report: the soak must be reproducible end to end.
func TestChaosDeterministic(t *testing.T) {
	a, errA := RunChaos(42, 4, nil)
	b, errB := RunChaos(42, 4, nil)
	if errA != nil || errB != nil {
		t.Fatalf("soak errors: %v, %v\n%s", errA, errB, a)
	}
	if a != b {
		t.Errorf("reports differ between identical seeds:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// The chaos soak must never appear in the exhibit registry — it would
// perturb golden outputs.
func TestChaosNotAnExhibit(t *testing.T) {
	for _, id := range IDs() {
		if strings.Contains(id, "chaos") {
			t.Errorf("chaos registered as exhibit %q", id)
		}
	}
}
