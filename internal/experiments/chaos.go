package experiments

import (
	"fmt"
	"strings"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/dl"
	"mpixccl/internal/fabric"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// Chaos soak: seeded, randomized fault schedules driven end to end through
// the full stack, with hard invariants instead of figures. Each schedule
// draws a scenario from the seed — a collective soak (corruption,
// transient errors, stragglers, and a brownout under the hybrid dispatch)
// or an elastic run (a random fail-stop with a spare rank standing by) —
// and asserts that the run terminates, results are bytewise exact, and
// recovery restores the world. The soak is NOT an exhibit: it never
// appears in IDs(), so golden outputs are untouched; the CLI reaches it
// through -chaos and the test suite through TestChaosSoak.

// chaosRNG is a splitmix64 stream independent of the fault plans' own
// draws (each plan gets a seed from this stream, not the stream itself).
type chaosRNG struct{ state uint64 }

func (r *chaosRNG) raw() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *chaosRNG) float() float64 { return float64(r.raw()>>11) / float64(1<<53) }

func (r *chaosRNG) intn(n int) int { return int(r.float() * float64(n)) }

func (r *chaosRNG) dur(lo, hi time.Duration) time.Duration {
	return lo + time.Duration(r.float()*float64(hi-lo))
}

// chaosDeadline bounds each schedule's wall-clock (not virtual) runtime.
// A schedule that exceeds it has hung — deadlock, livelock, or a runaway
// retry loop — and the soak fails loudly with the offending seed instead
// of wedging CI.
var chaosDeadline = 2 * time.Minute

// SetChaosDeadline overrides the per-schedule wall-clock deadline (the
// xcclbench -chaos-deadline flag). Non-positive values keep the default.
func SetChaosDeadline(d time.Duration) {
	if d > 0 {
		chaosDeadline = d
	}
}

// RunChaos executes runs randomized schedules derived from seed and
// returns a per-schedule report. The same seed always produces the same
// schedules, faults, and outcomes. A non-nil error means at least one
// invariant was violated; the report names every violation. Schedules
// rotate through three scenarios: a collective soak, an elastic crash
// run, and a partition run (cut, quorum shrink, heal, rejoin).
func RunChaos(seed uint64, runs int, reg *metrics.Registry) (string, error) {
	if runs <= 0 {
		runs = 20
	}
	rng := &chaosRNG{state: seed}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: seed %#x, %d schedules\n", seed, runs)
	failures := 0
	for i := 0; i < runs; i++ {
		type result struct {
			line string
			err  error
		}
		done := make(chan result, 1)
		go func(i int) {
			var line string
			var err error
			switch i % 3 {
			case 0:
				line, err = chaosCollective(rng)
			case 1:
				line, err = chaosElastic(rng)
			default:
				line, err = chaosPartition(rng)
			}
			done <- result{line, err}
		}(i)
		var line string
		var err error
		select {
		case res := <-done:
			line, err = res.line, res.err
		case <-time.After(chaosDeadline):
			// The schedule's goroutine is abandoned (it cannot be killed),
			// but the soak fails immediately and names the reproducer.
			return b.String(), fmt.Errorf(
				"chaos: schedule %d of seed %#x exceeded the %v wall-clock deadline (deadlock or livelock; rerun with -chaos seed=%d,runs=%d to reproduce)",
				i, seed, chaosDeadline, seed, i+1)
		}
		if reg != nil {
			outcome := "ok"
			if err != nil {
				outcome = "violated"
			}
			reg.Counter("xccl_chaos_schedules_total",
				"Chaos-soak schedules executed by outcome.",
				metrics.Labels{"outcome": outcome}).Inc()
		}
		if err != nil {
			failures++
			fmt.Fprintf(&b, "schedule %2d: VIOLATION: %v\n", i, err)
			continue
		}
		fmt.Fprintf(&b, "schedule %2d: %s\n", i, line)
	}
	if failures > 0 {
		return b.String(), fmt.Errorf("chaos: %d of %d schedules violated invariants", failures, runs)
	}
	fmt.Fprintf(&b, "all invariants held\n")
	return b.String(), nil
}

// chaosCollective soaks hybrid-dispatch Allreduce on one 8-GPU node under
// payload corruption (healed by end-to-end integrity), transient CCL
// errors, a straggler, and a bandwidth brownout. Payloads are int32 — sum
// is exact and order-independent — so every rank's result is checked
// element-for-element against the analytically computed reduction.
func chaosCollective(rng *chaosRNG) (string, error) {
	const nranks = 8
	rounds := 3 + rng.intn(3)
	counts := make([]int, rounds)
	for i := range counts {
		counts[i] = 1 << (8 + rng.intn(7)) // 1 KB – 256 KB payloads
	}
	plan := fault.NewPlan(rng.raw())
	plan.AddCorruptRule(fault.CorruptRule{
		Name: "wire-flip", Link: "intra",
		Probability: 0.1 + 0.3*rng.float(),
		Count:       4 + rng.intn(8),
		FlipBytes:   1 + rng.intn(3),
	})
	plan.AddRule(fault.Rule{
		Name: "flaky", Op: "allreduce", Result: ccl.ErrRemote, Probability: 0.15,
	})
	plan.AddRule(fault.Rule{
		Name: "straggler", Op: "allreduce", Ranks: []int{rng.intn(nranks)},
		Delay: rng.dur(50*time.Microsecond, 250*time.Microsecond), Probability: 0.5,
	})
	from := rng.dur(20*time.Microsecond, 100*time.Microsecond)
	plan.AddLinkRule(fault.LinkRule{
		Name: "brownout", Link: "intra",
		From: from, Until: from + rng.dur(500*time.Microsecond, 2*time.Millisecond),
		BWScale: 0.4 + 0.4*rng.float(),
	})

	k := sim.NewKernel()
	sys, err := topology.Preset(k, "thetagpu", 1)
	if err != nil {
		return "", err
	}
	fab := fabric.New(k, sys)
	fab.SetFaults(plan)
	reg := metrics.NewRegistry()
	fab.SetMetrics(reg)
	job := mpi.NewJobOnSystem(fab, mpi.MVAPICHProfile(), sys, nranks)
	rt, err := core.NewRuntime(job, core.Options{
		Backend: core.Auto, Mode: core.Hybrid, Metrics: reg,
		// Deep retry budget, as the resilience exhibit: an unscoped
		// probabilistic rule that exhausts one rank's retries would demote
		// that rank alone to the MPI path and deadlock against its peers.
		Resilience: &core.Resilience{
			MaxRetries: 8, RetryBackoff: 10 * time.Microsecond,
			BreakerThreshold: 3, BreakerCooldown: time.Millisecond,
			Integrity: true,
		},
	})
	if err != nil {
		return "", err
	}
	pattern := func(round, rank, i int) int32 {
		return int32((rank+1)*(i%17+1) + round)
	}
	bad := 0
	if err := rt.Run(func(x *core.Comm) {
		max := counts[0]
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		send := x.Device().MustMalloc(int64(max) * 4)
		recv := x.Device().MustMalloc(int64(max) * 4)
		defer send.Free()
		defer recv.Free()
		for round, count := range counts {
			for i := 0; i < count; i++ {
				send.SetInt32(i, pattern(round, x.Rank(), i))
			}
			x.Allreduce(send, recv, count, mpi.Int32, mpi.OpSum)
			if ferr := x.Failure(); ferr != nil {
				bad++
				return
			}
			for i := 0; i < count; i++ {
				var want int32
				for r := 0; r < nranks; r++ {
					want += pattern(round, r, i)
				}
				if got := recv.Int32(i); got != want {
					bad++
					return
				}
			}
		}
	}); err != nil {
		return "", fmt.Errorf("collective soak did not terminate: %w", err)
	}
	if bad > 0 {
		return "", fmt.Errorf("collective soak: %d ranks saw failures or inexact sums", bad)
	}
	if v, ok := reg.CounterValue("xccl_corruptions_unrecovered_total",
		metrics.Labels{"link": "intra"}); ok && v > 0 {
		return "", fmt.Errorf("collective soak: %v corruptions survived the retransmit budget", v)
	}
	healed, _ := reg.CounterValue("xccl_corruptions_detected_total", metrics.Labels{"link": "intra"})
	return fmt.Sprintf("collective soak: %d rounds exact; %d corruptions healed, %d transients retried, %d straggler delays",
		rounds, int(healed), plan.Fired("flaky"), plan.Fired("straggler")), nil
}

// chaosElastic trains with a random fail-stop and one spare rank: the
// heartbeat detector must confirm the death within half a watchdog, the
// world must grow back to full width, and the final loss must equal a
// fault-free run's — the recovered run processed exactly the same
// examples.
func chaosElastic(rng *chaosRNG) (string, error) {
	const nranks, steps = 4, 6
	model := &dl.Model{Name: "chaos-mlp"}
	for i := 0; i < 8; i++ {
		model.Tensors = append(model.Tensors, dl.Tensor{Name: "fc", Elems: 128 << 10})
	}
	pol := core.DefaultResilience()
	pol.WatchdogTimeout = 2 * time.Millisecond
	pol.HeartbeatInterval = pol.WatchdogTimeout / 8
	pol.MaxRetries = 8
	pol.Integrity = true
	cfg := dl.Config{
		System: "thetagpu", Nodes: 1, Ranks: nranks, Spares: 1,
		Model: model, Steps: steps, CheckpointEvery: 2,
		Persistent: rng.intn(2) == 1,
		Resilience: pol,
	}
	shadow := cfg
	shadow.Spares = 0
	shadow.Faults = nil
	want, err := dl.TrainElastic(shadow)
	if err != nil {
		return "", fmt.Errorf("elastic shadow run: %w", err)
	}

	crashRank := rng.intn(nranks)
	crashStep := 2 + rng.intn(steps-2)
	nb := len(dl.FuseBuckets(model.Tensors, 2<<20))
	// No brownouts here: a retraction's widened model could legitimately
	// push confirmation past the latency bound this scenario asserts.
	plan := fault.NewPlan(rng.raw()).AddRule(fault.Rule{
		Name: "fail-stop", Crash: true, Ranks: []int{crashRank}, Op: "allreduce",
		After: (crashStep-1)*nb + 1 + rng.intn(nb-1),
	})
	cfg.Faults = plan
	rep, err := dl.TrainElastic(cfg)
	if err != nil {
		return "", fmt.Errorf("elastic run (crash %d@%d): %w", crashRank, crashStep, err)
	}
	tag := fmt.Sprintf("crash %d@%d, persistent=%v", crashRank, crashStep, cfg.Persistent)
	if rep.FinalRanks != nranks {
		return "", fmt.Errorf("elastic %s: final ranks %d, want %d", tag, rep.FinalRanks, nranks)
	}
	if rep.Shrinks != 1 || rep.Grows != 1 {
		return "", fmt.Errorf("elastic %s: shrinks %d grows %d, want 1 and 1", tag, rep.Shrinks, rep.Grows)
	}
	if len(rep.CrashedRanks) != 1 || rep.CrashedRanks[0] != crashRank {
		return "", fmt.Errorf("elastic %s: crashed ranks %v", tag, rep.CrashedRanks)
	}
	diedAt, ok := plan.DeathTime(crashRank)
	if !ok {
		return "", fmt.Errorf("elastic %s: fault plan recorded no death", tag)
	}
	suspectedAt, ok := rep.SuspectedAt[crashRank]
	if !ok {
		return "", fmt.Errorf("elastic %s: detector never confirmed the death (suspected %v)", tag, rep.SuspectedAt)
	}
	if lat := suspectedAt - diedAt; lat <= 0 || lat > pol.WatchdogTimeout/2 {
		return "", fmt.Errorf("elastic %s: detection latency %v outside (0, %v]", tag, lat, pol.WatchdogTimeout/2)
	}
	if len(rep.Loss) != steps+rep.RollbackSteps {
		return "", fmt.Errorf("elastic %s: %d loss entries for %d steps + %d replayed",
			tag, len(rep.Loss), steps, rep.RollbackSteps)
	}
	got, wantLoss := rep.Loss[len(rep.Loss)-1], want.Loss[len(want.Loss)-1]
	if got != wantLoss {
		return "", fmt.Errorf("elastic %s: final loss %v, fault-free shadow %v", tag, got, wantLoss)
	}
	return fmt.Sprintf("elastic %s: recovered to %d ranks in %v, loss matches fault-free run",
		tag, rep.FinalRanks, suspectedAt-diedAt), nil
}

// chaosPartition trains across a randomized network partition on 2 nodes
// (12 ranks: 8 majority, 4 minority): the cut opens at a random point in
// the run, the majority must quorum-shrink and keep stepping, the
// minority must fence. Two thirds of the draws heal the cut — the fenced
// ranks must then rejoin to full width and the final loss must equal the
// fault-free run's. The rest are permanent — the majority must finish at
// width 8 and the fenced ranks must exit cleanly when the job drains.
func chaosPartition(rng *chaosRNG) (string, error) {
	const nranks, steps = 12, 6
	model := &dl.Model{Name: "chaos-mlp"}
	for i := 0; i < 8; i++ {
		model.Tensors = append(model.Tensors, dl.Tensor{Name: "fc", Elems: 128 << 10})
	}
	cfg := dl.Config{
		System: "thetagpu", Nodes: 2, Ranks: nranks,
		Model: model, Steps: steps, CheckpointEvery: 2,
		Persistent: rng.intn(2) == 1,
	}
	shadow := cfg
	want, err := dl.TrainElastic(shadow)
	if err != nil {
		return "", fmt.Errorf("partition shadow run: %w", err)
	}
	var total time.Duration
	for _, l := range want.StepLatency {
		total += l
	}
	total += time.Duration(want.Checkpoints) * dl.CheckpointTime(model)

	// The cut opens somewhere in the middle 30-60% of the fault-free
	// timeline, so it is always observed by a later dispatch (the replay
	// only extends the run).
	cut := time.Duration(float64(total) * (0.3 + 0.3*rng.float()))
	heals := rng.intn(3) > 0
	var heal time.Duration
	if heals {
		heal = cut + rng.dur(total/6, total/2)
	}
	cfg.Faults = fault.NewPlan(rng.raw()).AddPartitionRule(fault.PartitionRule{
		Name: "chaos-cut", Nodes: []int{1}, From: cut, Until: heal,
	})
	rep, err := dl.TrainElastic(cfg)
	if err != nil {
		return "", fmt.Errorf("partition run (cut %v heal %v): %w", cut, heal, err)
	}
	tag := fmt.Sprintf("cut %v heals=%v, persistent=%v", cut, heals, cfg.Persistent)
	if rep.Partitions != 1 || rep.Shrinks != 1 || rep.FencedRanks != 4 {
		return "", fmt.Errorf("partition %s: partitions %d shrinks %d fenced %d, want 1, 1, 4",
			tag, rep.Partitions, rep.Shrinks, rep.FencedRanks)
	}
	if len(rep.CrashedRanks) != 0 {
		return "", fmt.Errorf("partition %s: crashed ranks %v (a severed rank is alive)", tag, rep.CrashedRanks)
	}
	if !heals {
		if rep.FinalRanks != 8 || rep.Grows != 0 {
			return "", fmt.Errorf("partition %s: final ranks %d grows %d, want 8 and 0", tag, rep.FinalRanks, rep.Grows)
		}
		return fmt.Sprintf("partition %s: majority finished at 8 ranks, minority fenced cleanly", tag), nil
	}
	if rep.FinalRanks != nranks || rep.Grows < 1 {
		return "", fmt.Errorf("partition %s: final ranks %d grows %d, want %d and >=1", tag, rep.FinalRanks, rep.Grows, nranks)
	}
	if rep.Epoch != rep.Shrinks+rep.Grows {
		return "", fmt.Errorf("partition %s: epoch %d, want shrinks+grows = %d", tag, rep.Epoch, rep.Shrinks+rep.Grows)
	}
	got, wantLoss := rep.Loss[len(rep.Loss)-1], want.Loss[len(want.Loss)-1]
	if got != wantLoss {
		return "", fmt.Errorf("partition %s: final loss %v, fault-free shadow %v", tag, got, wantLoss)
	}
	return fmt.Sprintf("partition %s: healed to %d ranks after %d rollback steps, loss matches fault-free run",
		tag, rep.FinalRanks, rep.RollbackSteps), nil
}
