// Scale model: a hierarchical AllReduce at thousands of ranks, built
// directly on the sharded simulation engine. Unlike the paper exhibits —
// whose worlds share Go state freely across ranks and therefore run on one
// shard — this model is partitioned from the ground up: every node's
// processes, buffers, fabric pools, and fault state live on the shard that
// owns the node (topology.Partition, node-aligned), and the only cross-shard
// interaction is the leader ring's inter-node hop, carried as timestamped
// engine injections priced by the pure α–β formula (fabric.Sharded.InterTime).
//
// The collective is the PR 5 hierarchical decomposition writ large:
//
//	intra-node binomial reduce tree  →  inter-node leader ring  →  intra-node binomial fan-out
//
// Payload bytes are not moved: each rank carries a uint64 digest
// (splitmix64 of its world rank) and the full message cost is priced on the
// links — a staged first hop through the shard-local fabric's contention
// pools plus the pipelined remainder at channel rate. Every rank's final
// digest must equal the closed-form sum over all ranks, which proves
// cross-shard delivery end to end; the virtual clock must agree bit-exactly
// at every shard count, which the determinism tests assert.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/fault"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// ScaleConfig parameterizes one scale-model run.
type ScaleConfig struct {
	// System is the topology preset ("thetagpu", "mri", "voyager",
	// "aurora"); default thetagpu.
	System string
	// Ranks is the total device count; must be a multiple of the preset's
	// devices per node. Default 4096.
	Ranks int
	// Shards is the engine partition width; default 1 (serial).
	Shards int
	// Bytes is the modeled per-rank message size; default 4 MiB.
	Bytes int64
	// StageBytes is the staging-buffer granularity for intra-node hops;
	// default 32 KiB. Only timing-relevant for the pool-contended first
	// stage — the remainder is priced as a pipelined tail.
	StageBytes int64
	// Seed salts the per-rank digests. Default 1.
	Seed uint64
	// Faults, when set, is called once per shard and must return
	// identically-parameterized fault plans (state is shard-local; rules on
	// cross-shard links must be pure time-window rules — see
	// docs/ARCHITECTURE.md "Parallel simulation"). Crash rules target
	// global node indices (the ring leaders); link/corrupt rules use class
	// "inter" with global node indices; partition rules must be node-scoped
	// (Nodes, global indices) with Probability 0 — the ring consults only
	// the pure Severed/PartitionedUntil window queries.
	Faults func(shard int) *fault.Plan
	// DetectTimeout arms the ring-receive watchdog when Faults is set;
	// default 2ms.
	DetectTimeout time.Duration
}

// ScaleResult is the outcome of one scale-model run.
type ScaleResult struct {
	System               string
	Ranks, Nodes, Shards int
	Bytes                int64
	// VirtTime is the virtual completion time (identical across shard
	// counts); Wall is the host wall-clock the run took.
	VirtTime time.Duration
	Wall     time.Duration
	// OK reports that every rank converged to the closed-form digest.
	OK bool
	// BadRanks counts ranks whose digest mismatched or arrived tainted.
	BadRanks int
	// Crashed lists ring leaders (global node indices) that fail-stopped.
	Crashed []int
	// Timeouts counts ring receives that hit the detection watchdog
	// (crashed or upstream-broken predecessors).
	Timeouts int
	// Degraded counts ring sends priced under a brownout window.
	Degraded int
	// CorruptionsDetected / Retransmits / Unrecovered mirror the fabric's
	// integrity counters for the ring's cross-node hops.
	CorruptionsDetected int
	Retransmits         int
	Unrecovered         int
	// Dropped counts ring messages discarded at a stalled peer's full
	// mailbox (only possible once a fault has broken the ring downstream).
	Dropped int
	// Severed counts ring sends that found the route cut by a partition
	// rule. A healing cut holds the chunk and delivers it after the heal
	// (the run finishes late but OK); a permanent cut loses the chunk and
	// the ring breaks downstream.
	Severed int
}

// ringMsg is the leader-ring payload: an accumulating digest plus a
// validity bit that taints downstream sums when corruption goes
// unrecovered.
type ringMsg struct {
	val   uint64
	valid bool
}

// shardStats are per-shard fault counters, merged in shard order after the
// run (each instance is touched only by its shard's processes).
type shardStats struct {
	timeouts    int
	degraded    int
	detected    int
	retransmits int
	unrecovered int
	dropped     int
	severed     int
	crashed     []int
	// finish is the latest p.Now() observed by any of this shard's
	// processes. The result's VirtTime is the max across shards: measuring
	// inside processes (per the sim timeout contract) keeps the number
	// independent of stale-watchdog clock drift, which varies with
	// same-instant tie order and hence with the shard count.
	finish sim.Time
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const scaleMaxRetries = 2

func (c *ScaleConfig) fillDefaults() {
	if c.System == "" {
		c.System = "thetagpu"
	}
	if c.Ranks == 0 {
		c.Ranks = 4096
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Bytes == 0 {
		c.Bytes = 4 << 20
	}
	if c.StageBytes == 0 {
		c.StageBytes = 32 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = 2 * time.Millisecond
	}
}

// RunScale executes the scale model and reports the result.
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	cfg.fillDefaults()
	tcfg, err := topology.PresetConfig(cfg.System, 1)
	if err != nil {
		return ScaleResult{}, err
	}
	dpn := tcfg.DevicesPerNode
	if cfg.Ranks%dpn != 0 {
		return ScaleResult{}, fmt.Errorf("scale: %d ranks not a multiple of %s's %d devices/node", cfg.Ranks, cfg.System, dpn)
	}
	nodes := cfg.Ranks / dpn
	part := topology.PartitionNodes(nodes, cfg.Shards)
	eng := sim.NewSharded(part.Shards, part.Lookahead(tcfg.Inter))
	tcfg.NumNodes = nodes // NewSharded fabric re-slices per shard
	sf := fabric.NewSharded(eng, tcfg, part)

	// Shared arrays indexed by global rank / node. Disjoint index ranges per
	// shard: element i is touched only by processes of the shard owning it,
	// so there is no cross-thread sharing; the final read happens after
	// engine.Run returns.
	acc := make([]uint64, cfg.Ranks) // per-rank digest accumulator
	accOK := make([]bool, cfg.Ranks) // validity (taint) flag
	mail := make([]*sim.Chan[ringMsg], nodes)
	stats := make([]*shardStats, part.Shards)
	plans := make([]*fault.Plan, part.Shards)
	for s := 0; s < part.Shards; s++ {
		stats[s] = &shardStats{}
		if cfg.Faults != nil {
			plans[s] = cfg.Faults(s)
		}
	}
	for g := 0; g < nodes; g++ {
		mail[g] = sim.NewChan[ringMsg](eng.Kernel(part.ShardOf(g)), 8)
	}

	// Binomial-tree levels covering dpn devices.
	levels := 0
	for 1<<levels < dpn {
		levels++
	}

	// intraHop prices one full-message device-to-device hop inside a node:
	// the first stage goes through the shard-local fabric (α + contention
	// pools), the remainder is a pipelined tail at channel rate.
	intra := tcfg.Intra
	intraCh := intra.DirChannels
	tailBW := float64(intraCh) * intra.ChannelBW
	start := time.Now()

	for g := 0; g < nodes; g++ {
		g := g
		sh := part.ShardOf(g)
		k := eng.Kernel(sh)
		fab := sf.Fabric(sh)
		plan := plans[sh]
		local := part.LocalNode(g)
		devs := sf.System(sh).Nodes[local].Devices
		stage := make([]*device.Buffer, dpn)
		for d := 0; d < dpn; d++ {
			stage[d] = devs[d].MustMalloc(cfg.StageBytes)
		}
		sent := make([]*sim.Event, dpn)
		ready := make([]*sim.Event, dpn)
		for d := 0; d < dpn; d++ {
			sent[d] = sim.NewEvent(k)
			ready[d] = sim.NewEvent(k)
		}
		intraHop := func(p *sim.Proc, from, to int) {
			first := cfg.Bytes
			if first > cfg.StageBytes {
				first = cfg.StageBytes
			}
			fab.Transfer(p, stage[to], stage[from], first, fabric.Opts{Channels: intraCh, NoCopy: true})
			if rem := cfg.Bytes - first; rem > 0 {
				p.Sleep(time.Duration(float64(rem) / tailBW * float64(time.Second)))
			}
		}
		for d := 0; d < dpn; d++ {
			d := d
			rank := g*dpn + d
			acc[rank] = splitmix64(cfg.Seed + uint64(rank))
			accOK[rank] = true
			// entry is the lowest set-bit level of the local index: the tree
			// level at which this device hands its subtree sum upward.
			entry := levels
			if d != 0 {
				entry = 0
				for d&(1<<entry) == 0 {
					entry++
				}
			}
			k.Spawn(fmt.Sprintf("n%d.d%d", g, d), func(p *sim.Proc) {
				// Phase 1: binomial reduce toward device 0.
				for lvl := 0; lvl < entry; lvl++ {
					partner := d + 1<<lvl
					if partner >= dpn {
						continue
					}
					sent[partner].Wait(p)
					p.Sleep(devs[d].ReduceTime(cfg.Bytes))
					acc[rank] += acc[g*dpn+partner]
					if !accOK[g*dpn+partner] {
						accOK[rank] = false
					}
				}
				if d != 0 {
					intraHop(p, d, d-1<<entry)
					sent[d].Fire()
				} else {
					// Phase 2: device 0 is the node leader on the ring.
					runScaleRing(p, eng, sf, &cfg, g, nodes, sh, mail, stats, plan,
						&acc[rank], &accOK[rank])
				}
				// Phase 3: binomial fan-out of the reduced digest.
				if d != 0 {
					ready[d].Wait(p)
				}
				for lvl := entry - 1; lvl >= 0; lvl-- {
					partner := d + 1<<lvl
					if partner >= dpn {
						continue
					}
					intraHop(p, d, partner)
					acc[g*dpn+partner] = acc[rank]
					accOK[g*dpn+partner] = accOK[rank]
					ready[partner].Fire()
				}
				if t := p.Now(); t > stats[sh].finish {
					stats[sh].finish = t
				}
			})
		}
	}

	if err := eng.Run(); err != nil {
		return ScaleResult{}, err
	}

	res := ScaleResult{
		System: cfg.System, Ranks: cfg.Ranks, Nodes: nodes, Shards: part.Shards,
		Bytes: cfg.Bytes, Wall: time.Since(start),
	}
	// VirtTime is the latest process-observed instant, not eng.Now(): the
	// drained clock includes stale watchdog timers whose presence depends on
	// same-instant tie order, which varies with the shard count.
	for _, st := range stats {
		if st.finish > res.VirtTime {
			res.VirtTime = st.finish
		}
	}
	var want uint64
	for r := 0; r < cfg.Ranks; r++ {
		want += splitmix64(cfg.Seed + uint64(r))
	}
	for r := 0; r < cfg.Ranks; r++ {
		if !accOK[r] || acc[r] != want {
			res.BadRanks++
		}
	}
	res.OK = res.BadRanks == 0
	for _, st := range stats {
		res.Timeouts += st.timeouts
		res.Degraded += st.degraded
		res.CorruptionsDetected += st.detected
		res.Retransmits += st.retransmits
		res.Unrecovered += st.unrecovered
		res.Dropped += st.dropped
		res.Severed += st.severed
		res.Crashed = append(res.Crashed, st.crashed...)
	}
	return res, nil
}

// runScaleRing runs one leader's part of the inter-node ring: 2(N-1) steps
// of chunked sends, the first N-1 of which accumulate the global digest.
// Every hop — same-shard or not — goes through engine injection with
// identical α–β pricing, so virtual times and tie order are independent of
// the shard count.
func runScaleRing(p *sim.Proc, eng *sim.Sharded, sf *fabric.Sharded, cfg *ScaleConfig,
	g, nodes, sh int, mail []*sim.Chan[ringMsg], stats []*shardStats, plan *fault.Plan,
	acc *uint64, accOK *bool) {
	if nodes == 1 {
		return
	}
	st := stats[sh]
	next := (g + 1) % nodes
	nextShard := sf.Partition().ShardOf(next)
	// Drops are counted on the receiving shard: the injection callback runs
	// on the destination kernel's thread, so it must only touch that
	// shard's state.
	dstStats := stats[nextShard]
	chunk := cfg.Bytes / int64(nodes)
	if chunk < 1 {
		chunk = 1
	}
	carry, cvalid := *acc, *accOK
	sum, sumOK := *acc, *accOK
	alive := true
	held := 0
	for step := 0; step < 2*(nodes-1); step++ {
		if alive && plan != nil && plan.OpCrash("scale", "allreduce", g, p.Now()) {
			alive = false
			st.crashed = append(st.crashed, g)
		}
		if !alive {
			break
		}
		// A severed route (node-scoped partition rule, pure time-window
		// query) either loses the chunk — a permanent cut breaks the ring
		// and the downstream receive times out — or, when the cut heals,
		// the NIC holds the chunk and delivers it after the heal. The
		// sender does not block (its own mailbox keeps draining); held
		// chunks are staggered a full hop apart so their arrival order and
		// the receiver's drain rate are deterministic at any shard count.
		lost, healAt := false, time.Duration(0)
		if plan != nil && plan.Severed(g, next, p.Now()) {
			st.severed++
			if until, heals := plan.PartitionedUntil(p.Now()); heals && until > p.Now() {
				healAt = until
			} else {
				lost = true
			}
		}
		// Send this step's chunk to the successor — unless the successor is
		// known dead (pure liveness query; models the NIC's peer-down state).
		if !lost && (plan == nil || !plan.RankDead(next, p.Now())) {
			var lf fabric.LinkFault
			degraded := false
			if plan != nil {
				lf, degraded = plan.DegradedLink("inter", g, next, p.Now())
				if degraded {
					st.degraded++
				}
			}
			ser, alpha := sf.InterTime(chunk, sf.Inter().DirChannels, lf, degraded)
			p.Sleep(ser)
			valid := cvalid
			if plan != nil {
				// Detect-and-retransmit against corruption, mirroring the
				// fabric's integrity loop: each attempt re-probes, each
				// retransmit re-pays the wire.
				for attempt := 0; ; attempt++ {
					if len(plan.CorruptTransfer("inter", g, next, chunk, p.Now())) == 0 {
						break
					}
					st.detected++
					if attempt >= scaleMaxRetries {
						st.unrecovered++
						valid = false
						break
					}
					st.retransmits++
					p.Sleep(ser + alpha)
				}
			}
			msg := ringMsg{val: carry, valid: valid}
			dst := mail[next]
			deliver := p.Now() + alpha
			if healAt > 0 {
				held++
				if d := healAt + time.Duration(held)*(ser+alpha); d > deliver {
					deliver = d
				}
			}
			eng.Inject(sh, nextShard, deliver, func() {
				// A stalled (ring-broken) peer may stop draining its
				// mailbox; dropping models the NIC discarding to a hung
				// receiver and is deterministic in virtual time.
				if !dst.TrySend(msg) {
					dstStats.dropped++
				}
			})
		}
		// Receive the predecessor's chunk.
		var m ringMsg
		if plan != nil {
			var got bool
			m, got = mail[g].RecvTimeout(p, cfg.DetectTimeout)
			if !got {
				st.timeouts++
				alive = false
				sumOK = false
				break
			}
		} else {
			m = mail[g].Recv(p)
		}
		if step < nodes-1 {
			sum += m.val
			if !m.valid {
				sumOK = false
			}
		}
		carry, cvalid = m.val, m.valid
	}
	*acc, *accOK = sum, sumOK && alive
}

// FormatScaleTable renders a ranks × shards sweep as the CLI table.
func FormatScaleTable(results []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Scale: hierarchical AllReduce sweep (%s)\n", results[0].System)
	fmt.Fprintf(&b, "%8s %8s %8s %12s %14s %12s %8s\n",
		"ranks", "nodes", "shards", "msg", "virt-time", "wall", "check")
	for _, r := range results {
		check := "ok"
		if !r.OK {
			check = fmt.Sprintf("BAD:%d", r.BadRanks)
		}
		fmt.Fprintf(&b, "%8d %8d %8d %12s %14v %12v %8s\n",
			r.Ranks, r.Nodes, r.Shards, fmtBytes(r.Bytes), r.VirtTime,
			r.Wall.Round(time.Millisecond), check)
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
