package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mpixccl/internal/metrics"
)

// TestFig5MetricsParseBack is the acceptance check for the observability
// layer: rerunning Fig 5 with a registry must yield Prometheus text that
// parses back with per-op dispatch-path counters and latency histograms.
func TestFig5MetricsParseBack(t *testing.T) {
	reg := metrics.NewRegistry()
	if _, err := Fig5(Quick, reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := metrics.ParseText(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter emitted unparseable text: %v", err)
	}
	var mpiOps, cclOps, latSeries float64
	for key, v := range vals {
		switch {
		case strings.HasPrefix(key, `xccl_ops_total{`) && strings.Contains(key, `path="mpi"`):
			mpiOps += v
		case strings.HasPrefix(key, `xccl_ops_total{`) && strings.Contains(key, `path="ccl"`):
			cclOps += v
		case strings.HasPrefix(key, `xccl_op_latency_seconds_bucket{`) && strings.Contains(key, `le="+Inf"`):
			latSeries++
		}
	}
	if mpiOps == 0 || cclOps == 0 {
		t.Errorf("hybrid Fig 5 must exercise both paths: mpi ops = %v, ccl ops = %v", mpiOps, cclOps)
	}
	if latSeries == 0 {
		t.Error("no latency histogram series emitted")
	}
	// The hybrid stack's tuning table and the CCL launch counters must be
	// live through the whole stack, not just the dispatch layer.
	for _, prefix := range []string{"xccl_tuning_lookups_total{", "ccl_launches_total{", "mpi_sends_total{"} {
		found := false
		for key := range vals {
			if strings.HasPrefix(key, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series in Fig 5 output", prefix)
		}
	}
}
