package experiments

import (
	"fmt"
	"time"

	"mpixccl/internal/dl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
)

// partitionSeed fixes the exhibit's fault plan; the cut itself is
// deterministic (Probability 0), the seed keeps the constructor uniform
// with the other fault exhibits.
const partitionSeed = 0xcafe

// partitionOverride is the CLI's `-partition cutStep:healStep` hook; zero
// values mean "use the exhibit's defaults".
var partitionOverride struct{ cutStep, healStep int }

// SetPartition overrides during which training step (1-based) the exhibit's
// network cut opens and before which step it heals. A healStep of 0 makes
// the cut permanent (the majority finishes at the shrunken width); a
// cutStep of 0 keeps the defaults.
func SetPartition(cutStep, healStep int) {
	partitionOverride.cutStep, partitionOverride.healStep = cutStep, healStep
}

// Partition demonstrates failure model v3 end to end: ResNet-50 data
// parallel on 2 ThetaGPU nodes (12 ranks: 8 on node 0, 4 on node 1), a
// network partition severs node 1 mid-step, the 8-rank majority wins the
// quorum vote, shrinks, and keeps training; the 4-rank minority fences
// itself. After the cut heals the fenced ranks rejoin through the spare
// pool with a checkpoint restore, the majority's Grow rolls everyone back
// to the pre-cut checkpoint, and the run finishes at full width with the
// fault-free loss — the partition cost time, not examples.
//
// The cut window is calibrated from a fault-free shadow run of the same
// shape, so it lands mid-step regardless of scale. Both runs are
// deterministic: same scale + same overrides = same figure.
func Partition(scale Scale, reg *metrics.Registry) (*Figure, error) {
	steps, cutStep, healStep := 6, 3, 5
	if scale == Full {
		steps, cutStep, healStep = 12, 6, 9
	}
	if partitionOverride.cutStep != 0 {
		cutStep, healStep = partitionOverride.cutStep, partitionOverride.healStep
	}
	if cutStep < 1 || cutStep > steps || (healStep != 0 && healStep <= cutStep) {
		return nil, fmt.Errorf("partition: cut %d heal %d out of range (%d steps, heal must follow cut)", cutStep, healStep, steps)
	}
	base := dl.Config{
		System: "thetagpu", Nodes: 2, Ranks: 12,
		Steps: steps, CheckpointEvery: 2,
	}

	// Shadow run: fault-free, same shape. It anchors the cut window to
	// virtual step boundaries and provides the loss curve the healed run
	// must reproduce.
	shadow, err := dl.TrainElastic(base)
	if err != nil {
		return nil, fmt.Errorf("partition: shadow run: %w", err)
	}
	ckptTime := dl.CheckpointTime(dl.ResNet50())
	boundary := make([]time.Duration, len(shadow.StepLatency)+1)
	for i, l := range shadow.StepLatency {
		boundary[i+1] = boundary[i] + l
		if (i+1)%base.CheckpointEvery == 0 && i+1 < steps {
			boundary[i+1] += ckptTime
		}
	}
	avgStep := boundary[len(boundary)-1] / time.Duration(len(shadow.StepLatency))
	cut := boundary[cutStep-1] + shadow.StepLatency[cutStep-1]/2
	heal := time.Duration(0)
	if healStep != 0 {
		heal = cut + time.Duration(healStep-cutStep)*avgStep
	}

	cfg := base
	cfg.Metrics = reg
	cfg.Faults = fault.NewPlan(partitionSeed).AddPartitionRule(fault.PartitionRule{
		Name: "cut-node1", Nodes: []int{1}, From: cut, Until: heal,
	})
	rep, err := dl.TrainElastic(cfg)
	if err != nil {
		return nil, err
	}

	f := &Figure{ID: "partition",
		Title:  "Elastic training across a network partition (12 ranks, 2 nodes; node 1 severed)",
		XLabel: "step", Metric: "latency"}
	lat := Series{Name: "step-latency"}
	for i, st := range rep.StepLatency {
		lat.Points = append(lat.Points, Point{X: int64(i + 1), Latency: st})
	}
	// Format renders Value with %.0f, so the loss is scaled to milliunits.
	loss := Series{Name: "loss (x1000)"}
	for i, l := range rep.Loss {
		loss.Points = append(loss.Points, Point{X: int64(i + 1), Value: l * 1000})
	}
	f.Series = append(f.Series, lat, loss)
	f.Notes = append(f.Notes,
		fmt.Sprintf("cut opens mid-step %d; %s", cutStep, healNote(healStep)),
		fmt.Sprintf("partitions handled: %d, ranks fenced: %d, membership epoch: %d (shrinks %d + grows %d)",
			rep.Partitions, rep.FencedRanks, rep.Epoch, rep.Shrinks, rep.Grows),
		fmt.Sprintf("ranks %d -> %d, rollback steps replayed: %d", rep.StartRanks, rep.FinalRanks, rep.RollbackSteps),
		fmt.Sprintf("final loss %.4f after %d executed steps (fault-free shadow: %.4f)",
			rep.Loss[len(rep.Loss)-1], len(rep.Loss), shadow.Loss[len(shadow.Loss)-1]))
	return f, nil
}

func healNote(healStep int) string {
	if healStep == 0 {
		return "never heals (majority finishes at the shrunken width)"
	}
	return fmt.Sprintf("heals around step %d (minority rejoins via Grow)", healStep)
}
