package experiments

import (
	"context"
	"runtime"
	"runtime/pprof"
	"time"

	"mpixccl/internal/metrics"
)

// RunResult is one experiment's outcome from RunAll. Output and Err mirror
// the return values of RunWith; Wall is the host wall-clock time the
// experiment took (virtual time lives inside Output).
type RunResult struct {
	ID     string
	Output string
	Err    error
	Wall   time.Duration
}

// RunAll executes the given experiments across a bounded worker pool and
// returns results in the order of ids, regardless of completion order.
// Each experiment builds its own simulation kernel and world, so scenarios
// are independent and their virtual-time results are identical to a serial
// run; only host wall-clock ordering changes. workers <= 0 means one worker
// per available CPU; workers == 1 degenerates to a serial run.
//
// The shared metrics registry (may be nil) is safe for concurrent use, but
// note that with workers > 1 the aggregation order of histogram samples is
// not deterministic — counters and sums still converge to the same totals.
//
// Each experiment runs under a pprof label pair {experiment: id}, so CPU
// profiles taken while RunAll executes attribute samples per experiment.
func RunAll(ids []string, scale Scale, reg *metrics.Registry, workers int) []RunResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]RunResult, len(ids))
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				id := ids[i]
				start := time.Now()
				pprof.Do(context.Background(), pprof.Labels("experiment", id), func(context.Context) {
					out, err := RunWith(id, scale, reg)
					results[i] = RunResult{ID: id, Output: out, Err: err}
				})
				results[i].Wall = time.Since(start)
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
	return results
}
