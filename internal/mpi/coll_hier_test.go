package mpi

import (
	"testing"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

func hierJob(t *testing.T, nodes, nranks int, useHier bool) *Job {
	t.Helper()
	k := sim.NewKernel()
	sys := topology.ThetaGPU(k, nodes)
	prof := MVAPICHProfile()
	prof.UseHierarchical = useHier
	return NewJobOnSystem(fabric.New(k, sys), prof, sys, nranks)
}

func TestHierarchicalAllreduceCorrect(t *testing.T) {
	for _, shape := range []struct{ nodes, ranks int }{
		{2, 16}, {3, 24}, {2, 12} /* uneven: 8 + 4 */, {4, 32},
	} {
		j := hierJob(t, shape.nodes, shape.ranks, true)
		n := shape.ranks
		err := j.Run(func(c *Comm) {
			const count = 512 // 2 KB, inside the hierarchical band
			send := c.Device().MustMalloc(count * 4)
			recv := c.Device().MustMalloc(count * 4)
			for i := 0; i < count; i++ {
				send.SetFloat32(i, float32(c.Rank()+1))
			}
			c.Allreduce(send, recv, count, Float32, OpSum)
			want := float32(n*(n+1)) / 2
			for _, i := range []int{0, count / 2, count - 1} {
				if recv.Float32(i) != want {
					t.Errorf("shape %+v rank %d elem %d = %v, want %v", shape, c.Rank(), i, recv.Float32(i), want)
				}
			}
		})
		if err != nil {
			t.Fatalf("shape %+v: %v", shape, err)
		}
	}
}

func TestHierarchicalMatchesFlatResults(t *testing.T) {
	run := func(useHier bool) float32 {
		j := hierJob(t, 2, 16, useHier)
		var got float32
		err := j.Run(func(c *Comm) {
			send := c.Device().MustMalloc(4096)
			recv := c.Device().MustMalloc(4096)
			for i := 0; i < 1024; i++ {
				send.SetFloat32(i, float32((c.Rank()+1)*(i%7+1)))
			}
			c.Allreduce(send, recv, 1024, Float32, OpSum)
			if c.Rank() == 5 {
				got = recv.Float32(321)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if flat, hier := run(false), run(true); flat != hier {
		t.Fatalf("hierarchical result %v != flat result %v", hier, flat)
	}
}

// Hierarchy reduces inter-node bytes: flat recursive doubling moves the
// full payload across the network once per rank pair (8 concurrent
// transfers per direction with 8 ranks per node), while the two-level
// algorithm sends a single leader exchange. The win shows at medium sizes
// where the inter-node wire, not α, dominates.
func TestHierarchicalReducesInterNodeCost(t *testing.T) {
	const count = 8192 // 32 KB: top of the hierarchical band
	// A fat-node/thin-network system is where two-level pays off: flat
	// recursive doubling pushes every rank's payload through the slow
	// network each inter round, the hierarchy only the leaders'.
	slowNet := func(k *sim.Kernel) *topology.System {
		return topology.Build(k, topology.Config{
			Name: "fatnode", NumNodes: 4, DevicesPerNode: 8,
			DeviceSpec: device.SpecA100,
			Intra:      topology.NVLink3,
			Inter: topology.Link{Name: "slow-eth", Alpha: 10 * time.Microsecond,
				ChannelBW: 0.5e9, DirChannels: 2, TotalChannels: 3},
			HostLink: topology.PCIeHost,
		})
	}
	measure := func(useHier bool) time.Duration {
		k := sim.NewKernel()
		sys := slowNet(k)
		prof := MVAPICHProfile()
		prof.UseHierarchical = useHier
		j := NewJobOnSystem(fabric.New(k, sys), prof, sys, 32)
		var lat time.Duration
		err := j.Run(func(c *Comm) {
			send := c.Device().MustMalloc(count * 4)
			recv := c.Device().MustMalloc(count * 4)
			c.Allreduce(send, recv, count, Float32, OpSum) // warmup
			c.Barrier()
			start := c.Proc().Now()
			c.Allreduce(send, recv, count, Float32, OpSum)
			if d := c.Proc().Now() - start; d > lat {
				lat = d
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	flat := measure(false)
	hier := measure(true)
	if hier >= flat {
		t.Fatalf("hierarchical (%v) not faster than flat (%v) for 32KB multi-node allreduce", hier, flat)
	}
}

func TestHierarchicalSingleNodeFallsThrough(t *testing.T) {
	j := hierJob(t, 1, 8, true)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(1024)
		recv := c.Device().MustMalloc(1024)
		send.FillFloat32(1)
		c.Allreduce(send, recv, 256, Float32, OpSum)
		if recv.Float32(0) != 8 {
			t.Errorf("sum = %v", recv.Float32(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalLargeUsesRing(t *testing.T) {
	// Above AllreduceLong the dispatch must keep using the flat ring even
	// with the knob on (bandwidth beats hierarchy at scale).
	j := hierJob(t, 2, 16, true)
	err := j.Run(func(c *Comm) {
		const count = 1 << 20
		send := c.Device().MustMalloc(count * 4)
		recv := c.Device().MustMalloc(count * 4)
		send.FillFloat32(2)
		c.Allreduce(send, recv, count, Float32, OpSum)
		if recv.Float32(12345) != 32 {
			t.Errorf("sum = %v", recv.Float32(12345))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
