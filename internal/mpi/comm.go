package mpi

import (
	"fmt"
	"sort"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// Job is one MPI application run: a set of ranks placed on devices,
// sharing a fabric and a protocol profile.
type Job struct {
	fab     *fabric.Fabric
	profile Profile
	devices []*device.Device
	world   *commCtx
	nextCtx int
	metrics *metrics.Registry // nil = no instrumentation
}

// NewJob creates a job with one rank per given device, in rank order.
func NewJob(fab *fabric.Fabric, profile Profile, devices []*device.Device) *Job {
	if len(devices) == 0 {
		panic("mpi: job needs at least one device")
	}
	j := &Job{fab: fab, profile: profile, devices: devices}
	j.world = j.newCommCtx(identityGroup(len(devices)))
	return j
}

// NewJobOnSystem places one rank per accelerator of the system, in global
// device order (the mpirun default of consecutive local ranks per node).
func NewJobOnSystem(fab *fabric.Fabric, profile Profile, sys *topology.System, nranks int) *Job {
	if nranks <= 0 || nranks > sys.NumDevices() {
		panic(fmt.Sprintf("mpi: %d ranks on %d devices", nranks, sys.NumDevices()))
	}
	return NewJob(fab, profile, sys.Devices()[:nranks])
}

// Size returns the world communicator size.
func (j *Job) Size() int { return len(j.devices) }

// Profile returns the job's protocol constants.
func (j *Job) Profile() Profile { return j.profile }

// SetMetrics wires a registry into the runtime's hot paths: per-send
// protocol-choice counters (eager vs rendezvous) and byte totals. A nil
// registry disables instrumentation. Call before Run.
func (j *Job) SetMetrics(reg *metrics.Registry) { j.metrics = reg }

// Metrics returns the wired registry (nil when none).
func (j *Job) Metrics() *metrics.Registry { return j.metrics }

// countSend records one point-to-point send's protocol choice. The eager /
// rendezvous split is the runtime's small- vs large-message personality
// (Profile.EagerThreshold), so exposing it per run is what lets the paper's
// protocol-crossover claims be checked after the fact.
func (j *Job) countSend(protocol string, bytes int64) {
	if j.metrics == nil {
		return
	}
	lbl := metrics.Labels{"protocol": protocol, "profile": j.profile.Name}
	j.metrics.Counter("mpi_sends_total",
		"Point-to-point sends by wire protocol (eager or rendezvous).", lbl).Inc()
	j.metrics.Counter("mpi_send_bytes_total",
		"Point-to-point payload bytes by wire protocol.", lbl).Add(float64(bytes))
}

// Fabric returns the transport the job communicates over.
func (j *Job) Fabric() *fabric.Fabric { return j.fab }

func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// commCtx is the state shared by all ranks of one communicator: the
// matching engines and collective rendezvous helpers, indexed by the
// communicator-local rank.
type commCtx struct {
	job   *Job
	id    int
	group []int // world ranks, indexed by local rank
	match []*matchCtx
	split *splitPending
	dup   *splitPending
	sub   map[string]*subsetPending // in-flight Subset rendezvous by member list
}

func (j *Job) newCommCtx(group []int) *commCtx {
	ctx := &commCtx{job: j, id: j.nextCtx, group: group}
	j.nextCtx++
	ctx.match = make([]*matchCtx, len(group))
	for i := range ctx.match {
		ctx.match[i] = &matchCtx{}
	}
	return ctx
}

// Comm is one rank's handle on a communicator, valid only inside that
// rank's process. It carries the rank's device and sim process, so all
// blocking MPI calls are methods on Comm.
type Comm struct {
	ctx     *commCtx
	rank    int
	proc    *sim.Proc
	dev     *device.Device
	collSeq int
	// hierPlan caches this rank's node hierarchy (coll_hier.go); a
	// communicator's group is immutable, so it never invalidates.
	hierPlan *nodePlan
}

// Rank returns the calling rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ctx.group) }

// WorldRank returns the rank's id in the world communicator.
func (c *Comm) WorldRank() int { return c.ctx.group[c.rank] }

// WorldRankOf returns the world rank of communicator-local rank r — the
// stable identity layers above key fault attribution and survivor
// agreement on, since local ranks renumber across Split/Subset.
func (c *Comm) WorldRankOf(r int) int { return c.ctx.group[r] }

// Device returns the accelerator this rank drives.
func (c *Comm) Device() *device.Device { return c.dev }

// Proc returns the rank's simulation process.
func (c *Comm) Proc() *sim.Proc { return c.proc }

// Job returns the owning job.
func (c *Comm) Job() *Job { return c.ctx.job }

// Profile returns the job's protocol constants.
func (c *Comm) Profile() Profile { return c.ctx.job.profile }

// ContextID returns the communicator's unique context id within its job,
// usable as a cache key by layers above (e.g. the xCCL comm cache).
func (c *Comm) ContextID() int { return c.ctx.id }

// RankDevice returns the device driven by communicator-local rank r.
func (c *Comm) RankDevice(r int) *device.Device {
	return c.ctx.job.devices[c.ctx.group[r]]
}

// Launch spawns every rank's process running fn and returns their
// completion counter; drive the simulation with the kernel's Run.
func (j *Job) Launch(fn func(c *Comm)) *sim.Counter {
	k := j.fab.Kernel()
	counter := sim.NewCounter(k, len(j.devices))
	for r := range j.devices {
		r := r
		k.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			fn(&Comm{ctx: j.world, rank: r, proc: p, dev: j.devices[r]})
			counter.Done()
		})
	}
	return counter
}

// Run is the convenience harness: it launches fn on every rank and drives
// the kernel until the job completes, returning any simulation error.
func (j *Job) Run(fn func(c *Comm)) error {
	j.Launch(fn)
	return j.fab.Kernel().Run()
}

// splitPending coordinates a Comm.Split collective across ranks.
type splitPending struct {
	entries map[int][2]int // local rank -> (color, key)
	arrived int
	ready   *sim.Event
	result  map[int]*commCtx // color -> new context
}

// Split partitions the communicator by color, ordering ranks in each new
// communicator by (key, old rank), like MPI_Comm_split. Every rank of the
// communicator must call it. Color < 0 (MPI_UNDEFINED) yields a nil Comm.
func (c *Comm) Split(color, key int) *Comm {
	ctx := c.ctx
	if ctx.split == nil {
		ctx.split = &splitPending{
			entries: make(map[int][2]int),
			ready:   sim.NewEvent(c.proc.Kernel()),
		}
	}
	sp := ctx.split
	sp.entries[c.rank] = [2]int{color, key}
	sp.arrived++
	if sp.arrived < len(ctx.group) {
		sp.ready.Wait(c.proc)
	} else {
		// Last arrival computes the partition for everyone.
		sp.result = make(map[int]*commCtx)
		colors := make(map[int][]int)
		for lr, ck := range sp.entries {
			if ck[0] >= 0 {
				colors[ck[0]] = append(colors[ck[0]], lr)
			}
		}
		for color, members := range colors {
			sort.Slice(members, func(a, b int) bool {
				ka, kb := sp.entries[members[a]][1], sp.entries[members[b]][1]
				if ka != kb {
					return ka < kb
				}
				return members[a] < members[b]
			})
			group := make([]int, len(members))
			for i, lr := range members {
				group[i] = ctx.group[lr]
			}
			sp.result[color] = ctx.job.newCommCtx(group)
		}
		ctx.split = nil
		sp.ready.Fire()
	}
	color0 := sp.entries[c.rank][0]
	if color0 < 0 {
		return nil
	}
	newCtx := sp.result[color0]
	for i, wr := range newCtx.group {
		if wr == ctx.group[c.rank] {
			return &Comm{ctx: newCtx, rank: i, proc: c.proc, dev: c.dev}
		}
	}
	panic("mpi: split lost a rank")
}

// subsetPending coordinates a Comm.Subset collective across its members.
type subsetPending struct {
	arrived int
	ready   *sim.Event
	result  *commCtx
}

// Subset builds a communicator containing exactly the given local ranks of
// this communicator, in the given order — MPI_Comm_create_group semantics:
// only the listed members call it, with identical member lists, and ranks
// outside the list are not involved at all. That asymmetry is what the
// ULFM-style shrink needs: the excluded (dead) ranks cannot be asked to
// participate in anything. The caller must appear in members.
func (c *Comm) Subset(members []int) *Comm {
	ctx := c.ctx
	if ctx.sub == nil {
		ctx.sub = make(map[string]*subsetPending)
	}
	key := fmt.Sprint(members)
	sp := ctx.sub[key]
	if sp == nil {
		sp = &subsetPending{ready: sim.NewEvent(c.proc.Kernel())}
		ctx.sub[key] = sp
	}
	sp.arrived++
	if sp.arrived < len(members) {
		sp.ready.Wait(c.proc)
	} else {
		group := make([]int, len(members))
		for i, lr := range members {
			group[i] = ctx.group[lr]
		}
		sp.result = ctx.job.newCommCtx(group)
		delete(ctx.sub, key)
		sp.ready.Fire()
	}
	for i, lr := range members {
		if lr == c.rank {
			return &Comm{ctx: sp.result, rank: i, proc: c.proc, dev: c.dev}
		}
	}
	panic("mpi: Subset caller not in members")
}

// Dup returns a communicator with the same group but a fresh matching
// context, so traffic on the duplicate cannot match traffic on the parent.
func (c *Comm) Dup() *Comm {
	ctx := c.ctx
	if ctx.dup == nil {
		ctx.dup = &splitPending{
			entries: make(map[int][2]int),
			ready:   sim.NewEvent(c.proc.Kernel()),
		}
	}
	dp := ctx.dup
	dp.entries[c.rank] = [2]int{0, 0}
	dp.arrived++
	if dp.arrived < len(ctx.group) {
		dp.ready.Wait(c.proc)
	} else {
		dp.result = map[int]*commCtx{0: ctx.job.newCommCtx(append([]int(nil), ctx.group...))}
		ctx.dup = nil
		dp.ready.Fire()
	}
	return &Comm{ctx: dp.result[0], rank: c.rank, proc: c.proc, dev: c.dev}
}
