package mpi

import (
	"fmt"

	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// The vector ("v") collectives and scan family, completing the standard
// MPI collective surface on top of the same matching engine.

// Gatherv collects counts[r] elements from rank r into root's recvBuf at
// element offset displs[r]. recvBuf, counts, displs are significant only
// at root.
func (c *Comm) Gatherv(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer, counts, displs []int, root int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagGather)
	esz := int64(dt.Size())
	if c.rank == root {
		if counts[root] != count {
			panic(fmt.Sprintf("mpi: gatherv root count %d != counts[%d]=%d", count, root, counts[root]))
		}
		copy(recvBuf.Bytes()[int64(displs[root])*esz:int64(displs[root]+count)*esz], sendBuf.Bytes()[:int64(count)*esz])
		c.proc.Sleep(c.dev.CopyTime(int64(count) * esz))
		reqs := make([]*Request, 0, c.Size()-1)
		for r := 0; r < c.Size(); r++ {
			if r == root || counts[r] == 0 {
				continue
			}
			off, ln := int64(displs[r])*esz, int64(counts[r])*esz
			reqs = append(reqs, c.Irecv(recvBuf.Slice(off, ln), counts[r], dt, r, tag))
		}
		c.Waitall(reqs)
		return
	}
	if count > 0 {
		c.Send(sendBuf, count, dt, root, tag)
	}
}

// Scatterv distributes counts[r] elements from root's sendBuf at offset
// displs[r] to rank r's recvBuf.
func (c *Comm) Scatterv(sendBuf *device.Buffer, counts, displs []int, dt Datatype, recvBuf *device.Buffer, count int, root int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagScatter)
	esz := int64(dt.Size())
	if c.rank == root {
		if counts[root] != count {
			panic(fmt.Sprintf("mpi: scatterv root count %d != counts[%d]=%d", count, root, counts[root]))
		}
		reqs := make([]*Request, 0, c.Size()-1)
		for r := 0; r < c.Size(); r++ {
			off, ln := int64(displs[r])*esz, int64(counts[r])*esz
			if r == root {
				copy(recvBuf.Bytes()[:ln], sendBuf.Bytes()[off:off+ln])
				c.proc.Sleep(c.dev.CopyTime(ln))
				continue
			}
			if counts[r] == 0 {
				continue
			}
			reqs = append(reqs, c.Isend(sendBuf.Slice(off, ln), counts[r], dt, r, tag))
		}
		c.Waitall(reqs)
		return
	}
	if count > 0 {
		c.Recv(recvBuf, count, dt, root, tag)
	}
}

// Scan computes the inclusive prefix reduction: rank r's recvBuf holds
// op(sendBuf_0, …, sendBuf_r). Linear-chain algorithm, as MPICH uses for
// short communicators.
func (c *Comm) Scan(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagReduce)
	bytes := int64(count) * int64(dt.Size())
	copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[:bytes])
	if c.Size() == 1 || count == 0 {
		return
	}
	if c.rank > 0 {
		in := c.tmp(bytes)
		defer in.Free()
		c.Recv(in, count, dt, c.rank-1, tag)
		c.reduceLocal(op, dt, recvBuf, in, count)
	}
	if c.rank < c.Size()-1 {
		c.Send(recvBuf, count, dt, c.rank+1, tag)
	}
}

// Exscan computes the exclusive prefix reduction: rank r's recvBuf holds
// op(sendBuf_0, …, sendBuf_{r−1}); rank 0's recvBuf is untouched, per the
// MPI standard.
func (c *Comm) Exscan(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagReduce)
	bytes := int64(count) * int64(dt.Size())
	if c.Size() == 1 || count == 0 {
		return
	}
	// Each rank forwards op(prefix, own) down the chain; what it receives
	// is its exclusive prefix.
	acc := c.tmp(bytes)
	defer acc.Free()
	copy(acc.Bytes(), sendBuf.Bytes()[:bytes])
	if c.rank > 0 {
		c.Recv(recvBuf, count, dt, c.rank-1, tag)
		Reduce(op, dt, acc.Bytes(), recvBuf.Bytes(), count)
		c.proc.Sleep(c.dev.ReduceTime(bytes))
	}
	if c.rank < c.Size()-1 {
		c.Send(acc, count, dt, c.rank+1, tag)
	}
}

// Nonblocking collectives at the MPI level: each reserves its sequence slot
// at call time and runs the blocking algorithm on a progress process, per
// the MPI-3 nonblocking-collective matching rules.

func (c *Comm) icoll(name string, fn func(ac *Comm)) *Request {
	epoch := c.ReserveEpoch()
	p := c.proc.Kernel().Spawn(fmt.Sprintf("%s-r%d", name, c.rank), func(p *sim.Proc) {
		fn(c.BindAsync(p, epoch))
	})
	return &Request{done: p.Done()}
}

// Ibcast is the nonblocking MPI_Ibcast.
func (c *Comm) Ibcast(buf *device.Buffer, count int, dt Datatype, root int) *Request {
	return c.icoll("ibcast", func(ac *Comm) { ac.Bcast(buf, count, dt, root) })
}

// Iallreduce is the nonblocking MPI_Iallreduce.
func (c *Comm) Iallreduce(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) *Request {
	return c.icoll("iallreduce", func(ac *Comm) { ac.Allreduce(sendBuf, recvBuf, count, dt, op) })
}

// Ireduce is the nonblocking MPI_Ireduce.
func (c *Comm) Ireduce(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op, root int) *Request {
	return c.icoll("ireduce", func(ac *Comm) { ac.Reduce(sendBuf, recvBuf, count, dt, op, root) })
}

// Iallgather is the nonblocking MPI_Iallgather.
func (c *Comm) Iallgather(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer) *Request {
	return c.icoll("iallgather", func(ac *Comm) { ac.Allgather(sendBuf, count, dt, recvBuf) })
}

// Ialltoall is the nonblocking MPI_Ialltoall.
func (c *Comm) Ialltoall(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer) *Request {
	return c.icoll("ialltoall", func(ac *Comm) { ac.Alltoall(sendBuf, count, dt, recvBuf) })
}

// Ibarrier is the nonblocking MPI_Ibarrier.
func (c *Comm) Ibarrier() *Request {
	return c.icoll("ibarrier", func(ac *Comm) { ac.Barrier() })
}
