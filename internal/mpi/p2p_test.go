package mpi

import (
	"testing"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// newTestJob builds a ThetaGPU-like job with nranks ranks.
func newTestJob(t *testing.T, nranks int) *Job {
	t.Helper()
	k := sim.NewKernel()
	nodes := (nranks + 7) / 8
	sys := topology.ThetaGPU(k, nodes)
	return NewJobOnSystem(fabric.New(k, sys), MVAPICHProfile(), sys, nranks)
}

// fillRank writes a rank-specific pattern of float64s.
func fillRank(buf *device.Buffer, rank, count int) {
	for i := 0; i < count; i++ {
		buf.SetFloat64(i, float64(rank*1000+i))
	}
}

func TestSendRecvEagerDelivers(t *testing.T) {
	j := newTestJob(t, 2)
	const count = 64 // 512 B, well under eager threshold
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(count * 8)
		if c.Rank() == 0 {
			fillRank(buf, 0, count)
			c.Send(buf, count, Float64, 1, 7)
		} else {
			st := c.Recv(buf, count, Float64, 0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != count {
				t.Errorf("status = %+v", st)
			}
			for i := 0; i < count; i++ {
				if buf.Float64(i) != float64(i) {
					t.Fatalf("element %d = %v", i, buf.Float64(i))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRendezvousDelivers(t *testing.T) {
	j := newTestJob(t, 2)
	const count = 1 << 18 // 2 MB, rendezvous
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(count * 8)
		if c.Rank() == 0 {
			fillRank(buf, 0, count)
			c.Send(buf, count, Float64, 1, 0)
		} else {
			c.Recv(buf, count, Float64, 0, 0)
			for _, i := range []int{0, 1, count / 2, count - 1} {
				if buf.Float64(i) != float64(i) {
					t.Fatalf("element %d = %v", i, buf.Float64(i))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBeforeSendAndAfterSend(t *testing.T) {
	// Exercise both matching orders: posted-then-sent, sent-then-posted.
	for _, recvFirst := range []bool{true, false} {
		j := newTestJob(t, 2)
		err := j.Run(func(c *Comm) {
			buf := c.Device().MustMalloc(1024)
			if c.Rank() == 0 {
				if !recvFirst {
					c.Proc().Sleep(0)
				} else {
					c.Proc().Sleep(100 * time.Microsecond)
				}
				buf.FillBytes(0xCD)
				c.Send(buf, 1024, Byte, 1, 3)
			} else {
				if !recvFirst {
					c.Proc().Sleep(100 * time.Microsecond)
				}
				c.Recv(buf, 1024, Byte, 0, 3)
				if buf.Bytes()[500] != 0xCD {
					t.Error("payload lost")
				}
			}
		})
		if err != nil {
			t.Fatalf("recvFirst=%v: %v", recvFirst, err)
		}
	}
}

func TestTagMatchingSelectsCorrectMessage(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		a := c.Device().MustMalloc(8)
		b := c.Device().MustMalloc(8)
		if c.Rank() == 0 {
			a.SetFloat64(0, 1.0)
			b.SetFloat64(0, 2.0)
			c.Send(a, 1, Float64, 1, 10)
			c.Send(b, 1, Float64, 1, 20)
		} else {
			// Receive in reverse tag order.
			c.Recv(a, 1, Float64, 0, 20)
			c.Recv(b, 1, Float64, 0, 10)
			if a.Float64(0) != 2.0 || b.Float64(0) != 1.0 {
				t.Errorf("tag matching delivered %v/%v", a.Float64(0), b.Float64(0))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	j := newTestJob(t, 3)
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(8)
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				st := c.Recv(buf, 1, Float64, AnySource, AnyTag)
				seen[st.Source] = true
				if buf.Float64(0) != float64(st.Source)+0.5 {
					t.Errorf("payload %v from %d", buf.Float64(0), st.Source)
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			buf.SetFloat64(0, float64(c.Rank())+0.5)
			c.Send(buf, 1, Float64, 0, c.Rank()*11)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTagFIFO(t *testing.T) {
	j := newTestJob(t, 2)
	const msgs = 5
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(8)
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				buf.SetFloat64(0, float64(i))
				c.Send(buf, 1, Float64, 1, 1)
			}
		} else {
			for i := 0; i < msgs; i++ {
				c.Recv(buf, 1, Float64, 0, 1)
				if buf.Float64(0) != float64(i) {
					t.Fatalf("message %d out of order: %v", i, buf.Float64(0))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	j := newTestJob(t, 2)
	const count = 1 << 16
	err := j.Run(func(c *Comm) {
		tx := c.Device().MustMalloc(count * 8)
		rx := c.Device().MustMalloc(count * 8)
		fillRank(tx, c.Rank(), count)
		peer := 1 - c.Rank()
		rreq := c.Irecv(rx, count, Float64, peer, 0)
		sreq := c.Isend(tx, count, Float64, peer, 0)
		st := c.Wait(rreq)
		c.Wait(sreq)
		if st.Source != peer {
			t.Errorf("status source = %d", st.Source)
		}
		if rx.Float64(3) != float64(peer*1000+3) {
			t.Errorf("rank %d got %v", c.Rank(), rx.Float64(3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		tx := c.Device().MustMalloc(64)
		rx := c.Device().MustMalloc(64)
		tx.FillBytes(byte(c.Rank() + 1))
		peer := 1 - c.Rank()
		c.Sendrecv(tx, 64, Byte, peer, 0, rx, 64, Byte, peer, 0)
		if rx.Bytes()[10] != byte(peer+1) {
			t.Errorf("rank %d received %d", c.Rank(), rx.Bytes()[10])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerLatencyBeatsRendezvous(t *testing.T) {
	// The same payload sent just under vs just over the eager threshold:
	// the rendezvous handshake must add latency.
	measure := func(count int) time.Duration {
		j := newTestJob(t, 2)
		var elapsed time.Duration
		err := j.Run(func(c *Comm) {
			buf := c.Device().MustMalloc(int64(count))
			if c.Rank() == 0 {
				start := c.Proc().Now()
				c.Send(buf, count, Byte, 1, 0)
				elapsed = c.Proc().Now() - start
			} else {
				c.Recv(buf, count, Byte, 0, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	eager := measure(16 << 10)
	rndv := measure((16 << 10) + 1)
	if rndv <= eager {
		t.Fatalf("rendezvous (%v) not slower than eager (%v)", rndv, eager)
	}
}

func TestInterNodeSlowerThanIntraNode(t *testing.T) {
	j := newTestJob(t, 16) // 2 nodes
	var intra, inter time.Duration
	err := j.Run(func(c *Comm) {
		const count = 1 << 20
		buf := c.Device().MustMalloc(count)
		switch c.Rank() {
		case 0:
			start := c.Proc().Now()
			c.Send(buf, count, Byte, 1, 0) // same node
			intra = c.Proc().Now() - start
			start = c.Proc().Now()
			c.Send(buf, count, Byte, 8, 0) // next node
			inter = c.Proc().Now() - start
		case 1:
			c.Recv(buf, count, Byte, 0, 0)
		case 8:
			c.Recv(buf, count, Byte, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatalf("inter-node %v not slower than intra-node %v", inter, intra)
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		if c.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("send to rank 5 did not panic")
				}
			}()
			buf := c.Device().MustMalloc(8)
			c.Send(buf, 1, Float64, 5, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedOnMissingSend(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		if c.Rank() == 1 {
			buf := c.Device().MustMalloc(8)
			c.Recv(buf, 1, Float64, 0, 0) // never sent
		}
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}
