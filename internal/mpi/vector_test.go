package mpi

import "testing"

func TestPackUnpackVectorRoundTrip(t *testing.T) {
	j := newTestJob(t, 1)
	err := j.Run(func(c *Comm) {
		// A 4x8 float64 matrix; pack column 0..2 (blockLen 3, stride 8).
		v := Vector{Dt: Float64, Count: 4, BlockLen: 3, Stride: 8}
		src := c.Device().MustMalloc(v.SpanBytes())
		for i := 0; i < 4*8; i++ {
			if int64(i*8) < src.Len() {
				src.SetFloat64(i, float64(i))
			}
		}
		packed := c.Device().MustMalloc(v.Bytes())
		if err := c.PackVector(v, src, packed); err != nil {
			t.Fatal(err)
		}
		// Packed layout: rows' first 3 elements back to back.
		want := []float64{0, 1, 2, 8, 9, 10, 16, 17, 18, 24, 25, 26}
		for i, w := range want {
			if packed.Float64(i) != w {
				t.Fatalf("packed[%d] = %v, want %v", i, packed.Float64(i), w)
			}
		}
		out := c.Device().MustMalloc(v.SpanBytes())
		if err := c.UnpackVector(v, packed, out); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 4; b++ {
			for e := 0; e < 3; e++ {
				idx := b*8 + e
				if out.Float64(idx) != float64(idx) {
					t.Fatalf("unpacked[%d] = %v, want %v", idx, out.Float64(idx), idx)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorValidation(t *testing.T) {
	j := newTestJob(t, 1)
	err := j.Run(func(c *Comm) {
		bad := Vector{Dt: Float64, Count: 2, BlockLen: 4, Stride: 2} // stride < blockLen
		buf := c.Device().MustMalloc(1024)
		if err := c.PackVector(bad, buf, buf); err == nil {
			t.Error("invalid vector accepted")
		}
		small := Vector{Dt: Float64, Count: 100, BlockLen: 4, Stride: 8}
		if err := c.PackVector(small, buf, buf); err == nil {
			t.Error("undersized buffers accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvVector(t *testing.T) {
	j := newTestJob(t, 2)
	v := Vector{Dt: Float64, Count: 8, BlockLen: 2, Stride: 4}
	err := j.Run(func(c *Comm) {
		if c.Rank() == 0 {
			src := c.Device().MustMalloc(v.SpanBytes())
			for i := 0; i < int(v.SpanBytes()/8); i++ {
				src.SetFloat64(i, float64(i))
			}
			if err := c.SendVector(v, src, 1, 5); err != nil {
				t.Error(err)
			}
		} else {
			dst := c.Device().MustMalloc(v.SpanBytes())
			st, err := c.RecvVector(v, dst, 0, 5)
			if err != nil {
				t.Fatal(err)
			}
			if st.Source != 0 || st.Count != v.Elems() {
				t.Errorf("status = %+v", st)
			}
			// Strided positions carry the original values; gaps remain zero.
			if dst.Float64(0) != 0 || dst.Float64(1) != 1 || dst.Float64(4) != 4 || dst.Float64(5) != 5 {
				t.Errorf("strided payload wrong: %v %v %v %v",
					dst.Float64(0), dst.Float64(1), dst.Float64(4), dst.Float64(5))
			}
			if dst.Float64(2) != 0 || dst.Float64(3) != 0 {
				t.Errorf("gap elements written: %v %v", dst.Float64(2), dst.Float64(3))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvReplace(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(64)
		buf.FillFloat64(float64(c.Rank() + 1))
		peer := 1 - c.Rank()
		c.SendrecvReplace(buf, 8, Float64, peer, 0, peer, 0)
		if buf.Float64(3) != float64(peer+1) {
			t.Errorf("rank %d buffer = %v, want %v", c.Rank(), buf.Float64(3), peer+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestAndWaitany(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		if c.Rank() == 0 {
			fast := c.Device().MustMalloc(64)
			slow := c.Device().MustMalloc(1 << 20)
			fast.FillFloat64(1)
			slow.FillFloat64(2)
			r1 := c.Isend(slow, 1<<17, Float64, 1, 1) // rendezvous: completes late
			r2 := c.Isend(fast, 8, Float64, 1, 2)     // eager: completes fast
			idx, _ := c.Waitany([]*Request{r1, r2})
			if idx != 1 {
				t.Errorf("waitany picked %d, want the eager send (1)", idx)
			}
			c.Waitall([]*Request{r1, r2})
			if !c.Testall([]*Request{r1, r2}) {
				t.Error("testall false after waitall")
			}
		} else {
			buf := c.Device().MustMalloc(1 << 20)
			c.Proc().Sleep(1000) // let the sends race
			c.Recv(buf, 8, Float64, 0, 2)
			c.Recv(buf, 1<<17, Float64, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestNonblocking(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(1 << 20)
		if c.Rank() == 0 {
			req := c.Isend(buf, 1<<17, Float64, 1, 0)
			if ok, _ := c.Test(req); ok {
				t.Error("rendezvous send completed instantly")
			}
			c.Wait(req)
			if ok, _ := c.Test(req); !ok {
				t.Error("Test false after Wait")
			}
		} else {
			c.Proc().Sleep(1000)
			c.Recv(buf, 1<<17, Float64, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRequests(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(64)
		if c.Rank() == 0 {
			pr := c.SendInit(buf, 8, Float64, 1, 3)
			for round := 0; round < 3; round++ {
				buf.FillFloat64(float64(round))
				pr.Start()
				pr.Wait()
			}
		} else {
			pr := c.RecvInit(buf, 8, Float64, 0, 3)
			for round := 0; round < 3; round++ {
				pr.Start()
				st := pr.Wait()
				if st.Source != 0 || buf.Float64(2) != float64(round) {
					t.Errorf("round %d: status %+v payload %v", round, st, buf.Float64(2))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentDoubleStartPanics(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		if c.Rank() == 1 {
			buf := c.Device().MustMalloc(64)
			c.Recv(buf, 8, Float64, 0, 0)
			return
		}
		buf := c.Device().MustMalloc(64)
		pr := c.SendInit(buf, 8, Float64, 1, 0)
		pr.Start()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Start did not panic")
				}
			}()
			pr.Start()
		}()
		pr.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The collective matrix across every CCL-mappable datatype: allreduce
// sums must be exact for integer-valued payloads in every type.
func TestAllreduceDatatypeMatrix(t *testing.T) {
	for _, dt := range []Datatype{Byte, Int32, Int64, Float16, Float32, Float64} {
		const n = 4
		j := newTestJob(t, n)
		err := j.Run(func(c *Comm) {
			count := 32
			esz := int64(dt.Size())
			send := c.Device().MustMalloc(int64(count) * esz)
			recv := c.Device().MustMalloc(int64(count) * esz)
			for i := 0; i < count; i++ {
				setElement(dt, send.Bytes(), i, float64(c.Rank()%2+1), 0)
			}
			c.Allreduce(send, recv, count, dt, OpSum)
			want := 6.0 // 1+2+1+2
			for i := 0; i < count; i += 7 {
				re, _ := element(dt, recv.Bytes(), i)
				if re != want {
					t.Errorf("%v elem %d = %v, want %v", dt, i, re, want)
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
	}
}
