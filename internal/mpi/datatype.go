// Package mpi implements a simulated GPU-aware MPI runtime: communicators,
// point-to-point messaging with eager/rendezvous protocols and tag matching,
// and the classic collective algorithms (binomial trees, recursive doubling,
// Rabenseifner, ring, Bruck, pairwise exchange). Each rank runs as a sim
// process on an accelerator; payload bytes genuinely move between rank
// buffers over the fabric, so collectives are testable for correctness as
// well as timing.
//
// This is the "traditional MPI library" of the paper: the runtime whose
// small-message latency beats vendor CCLs and whose large-message bandwidth
// loses to them, motivating the hybrid xCCL design layered on top by
// package core.
package mpi

import (
	"fmt"

	"mpixccl/internal/elem"
)

// Datatype identifies an MPI basic datatype. Only contiguous basic types
// are modeled; derived datatypes are out of the paper's scope.
type Datatype int

const (
	// Byte is MPI_BYTE.
	Byte Datatype = iota
	// Int32 is MPI_INT.
	Int32
	// Int64 is MPI_LONG_LONG.
	Int64
	// Float16 is the half-precision type used by DL gradients (maps to
	// ncclFloat16's role in DL workloads).
	Float16
	// Float32 is MPI_FLOAT.
	Float32
	// Float64 is MPI_DOUBLE.
	Float64
	// DoubleComplex is MPI_DOUBLE_COMPLEX: a standard MPI type used by FFT
	// applications (e.g. heFFTe) that no vendor CCL implements — the
	// canonical trigger for the abstraction layer's MPI fallback.
	DoubleComplex
)

var datatypeInfo = map[Datatype]struct {
	name string
	kind elem.Kind
}{
	Byte:          {"MPI_BYTE", elem.U8},
	Int32:         {"MPI_INT", elem.I32},
	Int64:         {"MPI_LONG_LONG", elem.I64},
	Float16:       {"MPI_FLOAT16", elem.F16},
	Float32:       {"MPI_FLOAT", elem.F32},
	Float64:       {"MPI_DOUBLE", elem.F64},
	DoubleComplex: {"MPI_DOUBLE_COMPLEX", elem.C128},
}

// Kind returns the underlying element kind.
func (d Datatype) Kind() elem.Kind {
	info, ok := datatypeInfo[d]
	if !ok {
		panic(fmt.Sprintf("mpi: unknown datatype %d", int(d)))
	}
	return info.kind
}

// Size returns the datatype's extent in bytes.
func (d Datatype) Size() int { return d.Kind().Size() }

// String returns the MPI constant name.
func (d Datatype) String() string {
	if info, ok := datatypeInfo[d]; ok {
		return info.name
	}
	return fmt.Sprintf("Datatype(%d)", int(d))
}

// Datatypes lists every supported type, for capability-matrix iteration.
func Datatypes() []Datatype {
	return []Datatype{Byte, Int32, Int64, Float16, Float32, Float64, DoubleComplex}
}

// element and setElement are shorthands over the elem kernels used by the
// runtime and its tests.
func element(dt Datatype, b []byte, i int) (re, im float64) { return elem.Get(dt.Kind(), b, i) }

func setElement(dt Datatype, b []byte, i int, re, im float64) { elem.Set(dt.Kind(), b, i, re, im) }
