package mpi

import (
	"testing"
	"time"
)

func TestGathervScattervRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		j := newTestJob(t, n)
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = 10 * (r + 1)
			displs[r] = total
			total += counts[r]
		}
		err := j.Run(func(c *Comm) {
			root := n - 1
			mine := counts[c.Rank()]
			send := c.Device().MustMalloc(int64(mine) * 8)
			fillRank(send, c.Rank(), mine)
			gathered := c.Device().MustMalloc(int64(total) * 8)
			c.Gatherv(send, mine, Float64, gathered, counts, displs, root)
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					for i := 0; i < counts[r]; i += 3 {
						if got := gathered.Float64(displs[r] + i); got != float64(r*1000+i) {
							t.Errorf("n=%d block %d elem %d = %v", n, r, i, got)
						}
					}
				}
			}
			back := c.Device().MustMalloc(int64(mine) * 8)
			c.Scatterv(gathered, counts, displs, Float64, back, mine, root)
			for i := 0; i < mine; i += 3 {
				if got := back.Float64(i); got != float64(c.Rank()*1000+i) {
					t.Errorf("n=%d rank %d scatterv elem %d = %v", n, c.Rank(), i, got)
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGathervZeroCounts(t *testing.T) {
	j := newTestJob(t, 4)
	counts := []int{5, 0, 7, 0}
	displs := []int{0, 5, 5, 12}
	err := j.Run(func(c *Comm) {
		mine := counts[c.Rank()]
		send := c.Device().MustMalloc(64)
		fillRank(send, c.Rank(), mine)
		recv := c.Device().MustMalloc(96)
		c.Gatherv(send, mine, Float64, recv, counts, displs, 0)
		if c.Rank() == 0 {
			if recv.Float64(0) != 0 || recv.Float64(5) != 2000 {
				t.Errorf("gatherv with holes: %v %v", recv.Float64(0), recv.Float64(5))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanInclusive(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		j := newTestJob(t, n)
		err := j.Run(func(c *Comm) {
			send := c.Device().MustMalloc(16)
			recv := c.Device().MustMalloc(16)
			send.SetFloat64(0, float64(c.Rank()+1))
			send.SetFloat64(1, 1)
			c.Scan(send, recv, 2, Float64, OpSum)
			r := c.Rank()
			wantSum := float64((r + 1) * (r + 2) / 2)
			if recv.Float64(0) != wantSum || recv.Float64(1) != float64(r+1) {
				t.Errorf("n=%d rank %d scan = %v/%v, want %v/%v",
					n, r, recv.Float64(0), recv.Float64(1), wantSum, r+1)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestExscanExclusive(t *testing.T) {
	const n = 6
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(8)
		recv := c.Device().MustMalloc(8)
		send.SetFloat64(0, float64(c.Rank()+1))
		recv.SetFloat64(0, -99) // sentinel: rank 0's recv must stay untouched
		c.Exscan(send, recv, 1, Float64, OpSum)
		r := c.Rank()
		if r == 0 {
			if recv.Float64(0) != -99 {
				t.Errorf("rank 0 exscan wrote recv: %v", recv.Float64(0))
			}
			return
		}
		want := float64(r * (r + 1) / 2)
		if recv.Float64(0) != want {
			t.Errorf("rank %d exscan = %v, want %v", r, recv.Float64(0), want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanMaxOp(t *testing.T) {
	const n = 5
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(8)
		recv := c.Device().MustMalloc(8)
		// Values 3,1,4,1,5: running max 3,3,4,4,5.
		vals := []float64{3, 1, 4, 1, 5}
		maxes := []float64{3, 3, 4, 4, 5}
		send.SetFloat64(0, vals[c.Rank()])
		c.Scan(send, recv, 1, Float64, OpMax)
		if recv.Float64(0) != maxes[c.Rank()] {
			t.Errorf("rank %d scan-max = %v, want %v", c.Rank(), recv.Float64(0), maxes[c.Rank()])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingCollectivesOverlap(t *testing.T) {
	const n = 4
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		a := c.Device().MustMalloc(1 << 20)
		b := c.Device().MustMalloc(1 << 20)
		a.FillFloat32(1)
		r1 := c.Iallreduce(a, b, 1<<18, Float32, OpSum)
		bc := c.Device().MustMalloc(4096)
		if c.Rank() == 2 {
			bc.FillFloat32(7)
		}
		r2 := c.Ibcast(bc, 1024, Float32, 2)
		r3 := c.Ibarrier()
		c.Wait(r1)
		c.Wait(r2)
		c.Wait(r3)
		if b.Float32(5) != float32(n) {
			t.Errorf("iallreduce = %v", b.Float32(5))
		}
		if bc.Float32(5) != 7 {
			t.Errorf("ibcast = %v", bc.Float32(5))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Two nonblocking collectives of the same type issued back to back must
// match by issue order on every rank even if execution interleaves.
func TestNonblockingSameTypeOrdering(t *testing.T) {
	const n = 4
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		x := c.Device().MustMalloc(8)
		y := c.Device().MustMalloc(8)
		outX := c.Device().MustMalloc(8)
		outY := c.Device().MustMalloc(8)
		x.SetFloat64(0, 1)
		y.SetFloat64(0, 100)
		// Issue in the same order everywhere; stagger ranks so execution
		// interleaves differently per rank.
		c.Proc().Sleep(time.Duration(c.Rank()) * 7 * time.Microsecond)
		r1 := c.Iallreduce(x, outX, 1, Float64, OpSum)
		r2 := c.Iallreduce(y, outY, 1, Float64, OpSum)
		c.Wait(r2)
		c.Wait(r1)
		if outX.Float64(0) != float64(n) || outY.Float64(0) != float64(100*n) {
			t.Errorf("rank %d got %v/%v, want %d/%d", c.Rank(), outX.Float64(0), outY.Float64(0), n, 100*n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIreduceAndIgatherStyleOps(t *testing.T) {
	const n = 4
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(64)
		recv := c.Device().MustMalloc(64)
		all := c.Device().MustMalloc(64 * n)
		send.FillFloat32(float32(c.Rank() + 1))
		r1 := c.Ireduce(send, recv, 16, Float32, OpSum, 0)
		r2 := c.Iallgather(send, 16, Float32, all)
		a2a := c.Device().MustMalloc(64 * n)
		r3 := c.Ialltoall(all, 16, Float32, a2a)
		c.Wait(r1)
		c.Wait(r2)
		c.Wait(r3)
		if c.Rank() == 0 && recv.Float32(3) != 10 {
			t.Errorf("ireduce = %v", recv.Float32(3))
		}
		if all.Float32(16*2+3) != 3 {
			t.Errorf("iallgather = %v", all.Float32(16*2+3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
