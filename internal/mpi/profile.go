package mpi

import "time"

// Profile holds the protocol constants of one MPI implementation flavor.
// The runtime machinery is shared; a Profile is what distinguishes the
// MVAPICH-style GPU-aware library (the paper's base runtime) from the
// Open MPI + UCX baseline it is compared against.
type Profile struct {
	// Name labels the flavor in reports.
	Name string
	// EagerThreshold is the largest payload (bytes) sent eagerly; larger
	// messages use the rendezvous protocol (RTS/CTS handshake).
	EagerThreshold int64
	// SendOverhead and RecvOverhead are per-message software costs.
	SendOverhead, RecvOverhead time.Duration
	// CollOverhead is the software cost to enter one collective call.
	CollOverhead time.Duration
	// Channels is how many fabric channels one MPI transfer drives. MPI
	// runtimes pipeline on a small number of rails; vendor CCLs saturate
	// many more, which is why CCLs win at large sizes.
	Channels int
	// ChunkBytes is the pipeline chunk for large transfers.
	ChunkBytes int64
	// Switchover points between short- and long-message collective
	// algorithms, in payload bytes per rank.
	BcastLong, ReduceLong, AllreduceLong, AllgatherLong, AlltoallLong int64
	// UseHierarchical enables two-level (node-leader) algorithms for
	// small multi-node allreduces, the MVAPICH-style optimization. Off by
	// default so the calibrated flat baselines are unchanged.
	UseHierarchical bool
	// GPUBWEffIntra and GPUBWEffInter scale achievable wire bandwidth for
	// device-resident payloads on intra-node and inter-node links
	// respectively (0 or 1 = full GPU-direct speed). They model runtimes
	// without working GPUDirect paths, whose device traffic bounces
	// through host memory pipelines.
	GPUBWEffIntra, GPUBWEffInter float64
}

// gpuEff returns the effective (intra, inter) efficiencies with zero
// meaning "full speed".
func (p Profile) gpuEff() (intra, inter float64) {
	intra, inter = p.GPUBWEffIntra, p.GPUBWEffInter
	if intra <= 0 || intra > 1 {
		intra = 1
	}
	if inter <= 0 || inter > 1 {
		inter = 1
	}
	return intra, inter
}

// MVAPICHProfile returns the paper's base GPU-aware MPI runtime flavor:
// lean per-message software paths (what makes MPI win for small messages).
func MVAPICHProfile() Profile {
	return Profile{
		Name:           "mvapich-gpu",
		EagerThreshold: 16 << 10,
		SendOverhead:   400 * time.Nanosecond,
		RecvOverhead:   300 * time.Nanosecond,
		CollOverhead:   800 * time.Nanosecond,
		Channels:       2,
		ChunkBytes:     512 << 10,
		BcastLong:      64 << 10,
		ReduceLong:     32 << 10,
		AllreduceLong:  32 << 10,
		AllgatherLong:  64 << 10,
		AlltoallLong:   16 << 10,
	}
}

// OpenMPIUCXProfile returns the Open MPI + UCX baseline flavor: a heavier
// per-message path (PML/UCX dispatch layers) and later eager cutoff, which
// reproduces the overhead gap the paper measures against its designs.
func OpenMPIUCXProfile() Profile {
	p := MVAPICHProfile()
	p.Name = "openmpi-ucx"
	p.EagerThreshold = 8 << 10
	p.SendOverhead = 1100 * time.Nanosecond
	p.RecvOverhead = 900 * time.Nanosecond
	p.CollOverhead = 2600 * time.Nanosecond
	// The site build measured in the paper moves device buffers without a
	// working GPUDirect path inside the node (host bounce buffers), while
	// its IB transport retains most of the wire rate.
	p.GPUBWEffIntra = 0.06
	p.GPUBWEffInter = 0.55
	return p
}
