package mpi

import (
	"fmt"

	"mpixccl/internal/elem"
)

// Op identifies an MPI reduction operation.
type Op int

const (
	// OpSum is MPI_SUM.
	OpSum Op = iota
	// OpProd is MPI_PROD.
	OpProd
	// OpMax is MPI_MAX.
	OpMax
	// OpMin is MPI_MIN.
	OpMin
)

// String returns the MPI constant name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Ops lists every supported reduction, for capability-matrix iteration.
func Ops() []Op { return []Op{OpSum, OpProd, OpMax, OpMin} }

// ValidFor reports whether the op is defined on the datatype per the MPI
// standard: MAX/MIN are undefined on complex types.
func (o Op) ValidFor(dt Datatype) bool {
	if dt == DoubleComplex {
		return o == OpSum || o == OpProd
	}
	return true
}

func (o Op) elemOp() elem.Op {
	switch o {
	case OpSum:
		return elem.OpSum
	case OpProd:
		return elem.OpProd
	case OpMax:
		return elem.OpMax
	case OpMin:
		return elem.OpMin
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
}

// Reduce applies dst[i] = op(dst[i], src[i]) elementwise over count elements
// of the given datatype. It is the computational kernel of every reduction
// collective; callers charge device reduce time separately.
func Reduce(op Op, dt Datatype, dst, src []byte, count int) {
	if !op.ValidFor(dt) {
		panic(fmt.Sprintf("mpi: %v is not defined for %v", op, dt))
	}
	elem.Reduce(op.elemOp(), dt.Kind(), dst, src, count)
}
