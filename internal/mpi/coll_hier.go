package mpi

import (
	"sort"

	"mpixccl/internal/device"
)

// Hierarchical (two-level) collectives, the MVAPICH-style optimization for
// multi-node jobs: combine within each node over the fast intra-node
// fabric, exchange once between node leaders, then fan back out. Enabled
// by Profile.UseHierarchical; plain flat algorithms remain the default so
// the calibrated baseline behaviour is unchanged.

// nodePlan describes the calling rank's position in the node hierarchy.
type nodePlan struct {
	leader      int   // communicator rank of this node's leader
	localRanks  []int // comm ranks on this node, sorted ascending
	leaders     []int // one leader rank per node, sorted ascending
	leaderIndex int   // position of this node's leader within leaders
	localIndex  int   // position of this rank within localRanks
}

// plan computes (and caches) the hierarchy from device placement. The
// communicator group never changes, so the plan is built once per Comm.
func (c *Comm) plan() nodePlan {
	if c.hierPlan != nil {
		return *c.hierPlan
	}
	byNode := map[int][]int{}
	for r := 0; r < c.Size(); r++ {
		n := c.RankDevice(r).Node
		byNode[n] = append(byNode[n], r)
	}
	myNode := c.dev.Node
	var p nodePlan
	p.localRanks = byNode[myNode]
	p.leader = p.localRanks[0]
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	// Leaders in node order; node ids are dense from the topology builder,
	// but sort defensively over the map iteration.
	sort.Ints(nodes)
	for i, n := range nodes {
		p.leaders = append(p.leaders, byNode[n][0])
		if n == myNode {
			p.leaderIndex = i
		}
	}
	for i, r := range p.localRanks {
		if r == c.rank {
			p.localIndex = i
		}
	}
	c.hierPlan = &p
	return p
}

// spansMultipleNodes reports whether the communicator crosses nodes with
// more than one rank on some node (the shape hierarchy helps).
func (c *Comm) spansMultipleNodes() bool {
	first := c.RankDevice(0).Node
	multi, packed := false, false
	for r := 1; r < c.Size(); r++ {
		if c.RankDevice(r).Node != first {
			multi = true
		} else {
			packed = true
		}
	}
	return multi && packed
}

// AllreduceHierarchical is the explicit two-level allreduce: intra-node
// binomial reduction to the node leader, leader-level recursive-doubling
// allreduce, intra-node binomial broadcast. Allreduce dispatches here when
// Profile.UseHierarchical is set and the communicator shape qualifies.
func (c *Comm) AllreduceHierarchical(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) {
	c.enterColl()
	bytes := int64(count) * int64(dt.Size())
	if recvBuf != sendBuf {
		copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[:bytes])
	}
	if c.Size() == 1 || count == 0 {
		return
	}
	if !c.spansMultipleNodes() {
		epoch := c.nextEpoch()
		c.allreduceRecDoubling(recvBuf, count, dt, op, epoch)
		return
	}
	epoch := c.nextEpoch()
	p := c.plan()
	in := c.tmp(bytes)
	defer in.Free()

	// Phase 1: binomial reduce within the node, rooted at the leader.
	reduceTag := tagOf(epoch, tagReduce)
	c.treePhase(p.localRanks, p.localIndex, func(peer int, recvPhase bool) {
		if recvPhase {
			c.Recv(in, count, dt, peer, reduceTag)
			c.reduceLocal(op, dt, recvBuf, in, count)
		} else {
			c.Send(recvBuf, count, dt, peer, reduceTag)
		}
	})

	// Phase 2: recursive doubling among leaders.
	if c.rank == p.leader && len(p.leaders) > 1 {
		arTag := tagOf(epoch, tagAllreduce)
		nl := len(p.leaders)
		pof2 := 1
		for pof2*2 <= nl {
			pof2 *= 2
		}
		rem := nl - pof2
		idx := p.leaderIndex
		newIdx := -1
		switch {
		case idx < 2*rem && idx%2 == 0:
			c.Send(recvBuf, count, dt, p.leaders[idx+1], arTag)
		case idx < 2*rem:
			c.Recv(in, count, dt, p.leaders[idx-1], arTag)
			c.reduceLocal(op, dt, recvBuf, in, count)
			newIdx = idx / 2
		default:
			newIdx = idx - rem
		}
		if newIdx >= 0 {
			for mask := 1; mask < pof2; mask <<= 1 {
				peerNew := newIdx ^ mask
				peerIdx := peerNew + rem
				if peerNew < rem {
					peerIdx = peerNew*2 + 1
				}
				peer := p.leaders[peerIdx]
				c.Sendrecv(recvBuf, count, dt, peer, arTag, in, count, dt, peer, arTag)
				c.reduceLocal(op, dt, recvBuf, in, count)
			}
		}
		switch {
		case idx < 2*rem && idx%2 == 0:
			c.Recv(recvBuf, count, dt, p.leaders[idx+1], arTag)
		case idx < 2*rem:
			c.Send(recvBuf, count, dt, p.leaders[idx-1], arTag)
		}
	}

	// Phase 3: binomial broadcast within the node from the leader.
	bcastTag := tagOf(epoch, tagBcast)
	c.treeBcastPhase(p.localRanks, p.localIndex, func(peer int, recvPhase bool) {
		if recvPhase {
			c.Recv(recvBuf, count, dt, peer, bcastTag)
		} else {
			c.Send(recvBuf, count, dt, peer, bcastTag)
		}
	})
}

// treePhase runs a binomial reduction over the given rank group (rooted at
// index 0): leaves send up, internal nodes receive children then send up.
func (c *Comm) treePhase(group []int, idx int, exchange func(peer int, recvPhase bool)) {
	n := len(group)
	if n <= 1 {
		return
	}
	for mask := 1; mask < n; mask <<= 1 {
		if idx&mask != 0 {
			exchange(group[idx-mask], false)
			return
		}
		if idx+mask < n {
			exchange(group[idx+mask], true)
		}
	}
}

// treeBcastPhase runs a binomial broadcast over the rank group (rooted at
// index 0): receive from the parent, then forward down.
func (c *Comm) treeBcastPhase(group []int, idx int, exchange func(peer int, recvPhase bool)) {
	n := len(group)
	if n <= 1 {
		return
	}
	mask := 1
	for mask < n {
		if idx&mask != 0 {
			exchange(group[idx-mask], true)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if idx+mask < n {
			exchange(group[idx+mask], false)
		}
		mask >>= 1
	}
}
