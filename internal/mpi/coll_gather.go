package mpi

import (
	"fmt"

	"mpixccl/internal/device"
)

// Allgather concatenates count elements from every rank into every rank's
// recvBuf, laid out by rank. Small payloads use the Bruck algorithm
// (⌈log2 n⌉ rounds); large payloads use the bandwidth-optimal ring.
func (c *Comm) Allgather(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer) {
	c.enterColl()
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	if recvBuf.Len() < bytes*int64(n) {
		panic(fmt.Sprintf("mpi: allgather recv buffer %d < %d", recvBuf.Len(), bytes*int64(n)))
	}
	copy(recvBuf.Bytes()[int64(c.rank)*bytes:(int64(c.rank)+1)*bytes], sendBuf.Bytes()[:bytes])
	if n == 1 || count == 0 {
		return
	}
	epoch := c.nextEpoch()
	if bytes <= c.ctx.job.profile.AllgatherLong {
		c.allgatherBruck(recvBuf, count, dt, epoch)
		return
	}
	segs := make([]int, n+1)
	for i := range segs {
		segs[i] = i * count
	}
	c.ringAllgatherSegs(recvBuf, segs, dt, tagOf(epoch, tagAllgather))
}

// allgatherBruck runs Bruck's allgather: data is kept rotated so that each
// rank's own block is first, doubling the gathered prefix every round,
// then rotated back into rank order.
func (c *Comm) allgatherBruck(recvBuf *device.Buffer, count int, dt Datatype, epoch int) {
	tag := tagOf(epoch, tagAllgather)
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	work := c.tmp(bytes * int64(n))
	defer work.Free()
	// Start with own block first.
	copy(work.Bytes()[:bytes], recvBuf.Bytes()[int64(c.rank)*bytes:(int64(c.rank)+1)*bytes])
	have := 1
	for pof := 1; pof < n; pof <<= 1 {
		sendCnt := have
		if sendCnt > n-have {
			sendCnt = n - have
		}
		dst := (c.rank - pof + n) % n
		src := (c.rank + pof) % n
		c.Sendrecv(work.Slice(0, int64(sendCnt)*bytes), sendCnt*count, dt, dst, tag,
			work.Slice(int64(have)*bytes, int64(sendCnt)*bytes), sendCnt*count, dt, src, tag)
		have += sendCnt
	}
	// Rotate block i of work (which is rank (rank+i)%n's data) into place.
	for i := 0; i < n; i++ {
		r := (c.rank + i) % n
		copy(recvBuf.Bytes()[int64(r)*bytes:(int64(r)+1)*bytes], work.Bytes()[int64(i)*bytes:(int64(i)+1)*bytes])
	}
	c.proc.Sleep(c.dev.CopyTime(bytes * int64(n)))
}

// Allgatherv concatenates counts[r] elements from rank r into every rank's
// recvBuf at element offset displs[r] (a ring of n-1 steps).
func (c *Comm) Allgatherv(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer, counts, displs []int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagAllgather)
	n := c.Size()
	esz := int64(dt.Size())
	if count != counts[c.rank] {
		panic(fmt.Sprintf("mpi: allgatherv rank %d sends %d, counts says %d", c.rank, count, counts[c.rank]))
	}
	copy(recvBuf.Bytes()[int64(displs[c.rank])*esz:int64(displs[c.rank]+count)*esz], sendBuf.Bytes()[:int64(count)*esz])
	if n == 1 {
		return
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendBlk := (c.rank - step + n) % n
		recvBlk := (c.rank - step - 1 + 2*n) % n
		so := int64(displs[sendBlk]) * esz
		sl := int64(counts[sendBlk]) * esz
		ro := int64(displs[recvBlk]) * esz
		rl := int64(counts[recvBlk]) * esz
		c.Sendrecv(recvBuf.Slice(so, sl), counts[sendBlk], dt, right, tag,
			recvBuf.Slice(ro, rl), counts[recvBlk], dt, left, tag)
	}
}

// Alltoall sends block r of sendBuf to rank r and receives block s from
// rank s into recvBuf (count elements per block). Small payloads use the
// Bruck algorithm; large payloads use pairwise exchange.
func (c *Comm) Alltoall(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer) {
	c.enterColl()
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	copy(recvBuf.Bytes()[int64(c.rank)*bytes:(int64(c.rank)+1)*bytes],
		sendBuf.Bytes()[int64(c.rank)*bytes:(int64(c.rank)+1)*bytes])
	if n == 1 || count == 0 {
		return
	}
	epoch := c.nextEpoch()
	if bytes <= c.ctx.job.profile.AlltoallLong {
		c.alltoallBruck(sendBuf, recvBuf, count, dt, epoch)
		return
	}
	c.alltoallPairwise(sendBuf, recvBuf, count, dt, epoch)
}

// alltoallPairwise exchanges with peer rank^^step (XOR for power-of-two
// sizes, ring offsets otherwise), n-1 rounds of full-duplex transfers.
func (c *Comm) alltoallPairwise(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, epoch int) {
	tag := tagOf(epoch, tagAlltoall)
	n := c.Size()
	bytes := int64(count) * int64(dt.Size())
	pow2 := n&(n-1) == 0
	for step := 1; step < n; step++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = c.rank ^ step
			recvFrom = sendTo
		} else {
			sendTo = (c.rank + step) % n
			recvFrom = (c.rank - step + n) % n
		}
		c.Sendrecv(sendBuf.Slice(int64(sendTo)*bytes, bytes), count, dt, sendTo, tag,
			recvBuf.Slice(int64(recvFrom)*bytes, bytes), count, dt, recvFrom, tag)
	}
}

// alltoallBruck is the log-round small-message algorithm: blocks are
// rotated, exchanged by bit of the round index, and rotated back.
func (c *Comm) alltoallBruck(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, epoch int) {
	tag := tagOf(epoch, tagAlltoall)
	n := c.Size()
	bytes := int64(count) * int64(dt.Size())
	work := c.tmp(bytes * int64(n))
	defer work.Free()
	stage := c.tmp(bytes * int64(n))
	defer stage.Free()
	// Local rotation: work[i] = sendBuf[(rank+i) mod n].
	for i := 0; i < n; i++ {
		src := (c.rank + i) % n
		copy(work.Bytes()[int64(i)*bytes:(int64(i)+1)*bytes], sendBuf.Bytes()[int64(src)*bytes:(int64(src)+1)*bytes])
	}
	c.proc.Sleep(c.dev.CopyTime(bytes * int64(n)))
	for pof := 1; pof < n; pof <<= 1 {
		// Collect the blocks whose index has bit pof set.
		var idxs []int
		for i := 0; i < n; i++ {
			if i&pof != 0 {
				idxs = append(idxs, i)
			}
		}
		for j, i := range idxs {
			copy(stage.Bytes()[int64(j)*bytes:(int64(j)+1)*bytes], work.Bytes()[int64(i)*bytes:(int64(i)+1)*bytes])
		}
		dst := (c.rank + pof) % n
		src := (c.rank - pof + n) % n
		cnt := len(idxs) * count
		c.Sendrecv(stage.Slice(0, int64(len(idxs))*bytes), cnt, dt, dst, tag,
			stage.Slice(int64(len(idxs))*bytes, int64(len(idxs))*bytes), cnt, dt, src, tag)
		for j, i := range idxs {
			copy(work.Bytes()[int64(i)*bytes:(int64(i)+1)*bytes],
				stage.Bytes()[int64(len(idxs)+j)*bytes:(int64(len(idxs)+j)+1)*bytes])
		}
		c.proc.Sleep(c.dev.CopyTime(2 * bytes * int64(len(idxs))))
	}
	// Inverse rotation: recvBuf[r] = work[(rank-r) mod n] reversed ordering.
	for i := 0; i < n; i++ {
		r := (c.rank - i + n) % n
		copy(recvBuf.Bytes()[int64(r)*bytes:(int64(r)+1)*bytes], work.Bytes()[int64(i)*bytes:(int64(i)+1)*bytes])
	}
	c.proc.Sleep(c.dev.CopyTime(bytes * int64(n)))
}

// Alltoallv is the fully general personalized exchange of Listing 1:
// sendCounts[r] elements at element displacement sdispls[r] go to rank r;
// recvCounts[s] elements arrive at rdispls[s]. Implemented as posted
// receives plus nonblocking sends (the same shape as the xCCL group-call
// design it is compared with).
func (c *Comm) Alltoallv(sendBuf *device.Buffer, sendCounts, sdispls []int, dt Datatype,
	recvBuf *device.Buffer, recvCounts, rdispls []int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagAlltoall)
	n := c.Size()
	esz := int64(dt.Size())
	reqs := make([]*Request, 0, 2*n)
	for r := 0; r < n; r++ {
		if r == c.rank {
			continue
		}
		if recvCounts[r] > 0 {
			off := int64(rdispls[r]) * esz
			ln := int64(recvCounts[r]) * esz
			reqs = append(reqs, c.Irecv(recvBuf.Slice(off, ln), recvCounts[r], dt, r, tag))
		}
	}
	for i := 1; i <= n; i++ {
		r := (c.rank + i) % n
		if r == c.rank {
			// Self block: local copy.
			if sendCounts[c.rank] > 0 {
				so := int64(sdispls[c.rank]) * esz
				ro := int64(rdispls[c.rank]) * esz
				ln := int64(sendCounts[c.rank]) * esz
				copy(recvBuf.Bytes()[ro:ro+ln], sendBuf.Bytes()[so:so+ln])
				c.proc.Sleep(c.dev.CopyTime(ln))
			}
			continue
		}
		if sendCounts[r] > 0 {
			off := int64(sdispls[r]) * esz
			ln := int64(sendCounts[r]) * esz
			reqs = append(reqs, c.Isend(sendBuf.Slice(off, ln), sendCounts[r], dt, r, tag))
		}
	}
	c.Waitall(reqs)
}
