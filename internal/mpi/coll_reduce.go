package mpi

import "mpixccl/internal/device"

// reduceLocal combines src into dst (dst = op(dst, src)) over count
// elements, charging device reduction time.
func (c *Comm) reduceLocal(op Op, dt Datatype, dst, src *device.Buffer, count int) {
	Reduce(op, dt, dst.Bytes(), src.Bytes(), count)
	c.proc.Sleep(c.dev.ReduceTime(int64(count) * int64(dt.Size())))
}

// Reduce combines every rank's sendBuf with op, leaving the result in
// root's recvBuf. Small payloads use a binomial tree; large payloads use
// Rabenseifner's reduce-scatter + binomial gather.
func (c *Comm) Reduce(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op, root int) {
	c.enterColl()
	bytes := int64(count) * int64(dt.Size())
	if c.Size() == 1 {
		if c.rank == root && recvBuf != sendBuf {
			copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[:bytes])
		}
		return
	}
	epoch := c.nextEpoch()
	if bytes <= c.ctx.job.profile.ReduceLong || c.Size() == 2 {
		c.reduceBinomial(sendBuf, recvBuf, count, dt, op, root, epoch)
		return
	}
	c.reduceScatterGather(sendBuf, recvBuf, count, dt, op, root, epoch)
}

func (c *Comm) reduceBinomial(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op, root, epoch int) {
	tag := tagOf(epoch, tagReduce)
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	rel := (c.rank - root + n) % n
	// acc accumulates this rank's subtree.
	acc := c.tmp(bytes)
	defer acc.Free()
	copy(acc.Bytes(), sendBuf.Bytes()[:bytes])
	in := c.tmp(bytes)
	defer in.Free()
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			childRel := rel + mask
			if childRel < n {
				child := (childRel + root) % n
				c.Recv(in, count, dt, child, tag)
				c.reduceLocal(op, dt, acc, in, count)
			}
		} else {
			parent := ((rel - mask) + root) % n
			c.Send(acc, count, dt, parent, tag)
			break
		}
		mask <<= 1
	}
	if c.rank == root {
		copy(recvBuf.Bytes()[:bytes], acc.Bytes())
	}
}

// reduceScatterGather is Rabenseifner's large-message reduce: a ring
// reduce-scatter leaves each rank owning the reduced segment for its index,
// then segments are gathered to root.
func (c *Comm) reduceScatterGather(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op, root, epoch int) {
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	segs := segment(count, n)
	work := c.tmp(bytes)
	defer work.Free()
	copy(work.Bytes(), sendBuf.Bytes()[:bytes])
	c.ringReduceScatter(work, segs, dt, op, tagOf(epoch, tagReduceScatter))
	// Gather: every rank sends its owned segment to root.
	tag := tagOf(epoch, tagReduce)
	own := c.rank
	oOff, oLen := segRange(segs, own, own+1, esz)
	if c.rank == root {
		copy(recvBuf.Bytes()[oOff:oOff+oLen], work.Bytes()[oOff:oOff+oLen])
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			off, ln := segRange(segs, r, r+1, esz)
			if ln == 0 {
				continue
			}
			reqs = append(reqs, c.Irecv(recvBuf.Slice(off, ln), int(ln/esz), dt, r, tag))
		}
		c.Waitall(reqs)
		return
	}
	if oLen > 0 {
		c.Send(work.Slice(oOff, oLen), int(oLen/esz), dt, root, tag)
	}
}

// ringReduceScatter runs the ring reduce-scatter phase in place on work:
// after n-1 steps, rank r holds the fully reduced segment r.
func (c *Comm) ringReduceScatter(work *device.Buffer, segs []int, dt Datatype, op Op, tag int) {
	n := c.Size()
	esz := int64(dt.Size())
	if n == 1 {
		return
	}
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	maxSeg := int64(segs[1]-segs[0]) * esz
	in := c.tmp(maxSeg + esz)
	defer in.Free()
	for step := 0; step < n-1; step++ {
		// Indexed so that after n-1 steps rank r owns segment r reduced.
		sendSeg := (c.rank - step - 1 + 2*n) % n
		recvSeg := (c.rank - step - 2 + 2*n) % n
		so, sl := segRange(segs, sendSeg, sendSeg+1, esz)
		ro, rl := segRange(segs, recvSeg, recvSeg+1, esz)
		c.Sendrecv(work.Slice(so, sl), int(sl/esz), dt, right, tag,
			in.Slice(0, rl), int(rl/esz), dt, left, tag)
		if rl > 0 {
			c.reduceLocal(op, dt, work.Slice(ro, rl), in.Slice(0, rl), int(rl/esz))
		}
	}
}

// ringAllgatherSegs runs the ring allgather phase: each rank starts owning
// segment rank (as ringReduceScatter leaves it); after n-1 steps every rank
// holds all segments.
func (c *Comm) ringAllgatherSegs(work *device.Buffer, segs []int, dt Datatype, tag int) {
	n := c.Size()
	esz := int64(dt.Size())
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendSeg := (c.rank - step + n) % n
		recvSeg := (c.rank - step - 1 + 2*n) % n
		so, sl := segRange(segs, sendSeg, sendSeg+1, esz)
		ro, rl := segRange(segs, recvSeg, recvSeg+1, esz)
		c.Sendrecv(work.Slice(so, sl), int(sl/esz), dt, right, tag,
			work.Slice(ro, rl), int(rl/esz), dt, left, tag)
	}
}

// Allreduce combines every rank's sendBuf with op and leaves the full
// result in every rank's recvBuf. Small payloads use recursive doubling;
// large payloads use the ring (reduce-scatter + allgather) algorithm.
func (c *Comm) Allreduce(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) {
	if c.ctx.job.profile.UseHierarchical &&
		int64(count)*int64(dt.Size()) <= c.ctx.job.profile.AllreduceLong &&
		c.spansMultipleNodes() {
		c.AllreduceHierarchical(sendBuf, recvBuf, count, dt, op)
		return
	}
	c.enterColl()
	bytes := int64(count) * int64(dt.Size())
	if recvBuf != sendBuf {
		copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[:bytes])
	}
	if c.Size() == 1 || count == 0 {
		return
	}
	epoch := c.nextEpoch()
	if bytes <= c.ctx.job.profile.AllreduceLong || c.Size() == 2 || count < c.Size() {
		c.allreduceRecDoubling(recvBuf, count, dt, op, epoch)
		return
	}
	c.allreduceRing(recvBuf, count, dt, op, epoch)
}

// allreduceRecDoubling is the latency-optimal log2(n) algorithm, operating
// in place on buf (which already holds this rank's contribution).
func (c *Comm) allreduceRecDoubling(buf *device.Buffer, count int, dt Datatype, op Op, epoch int) {
	tag := tagOf(epoch, tagAllreduce)
	n := c.Size()
	bytes := int64(count) * int64(dt.Size())
	in := c.tmp(bytes)
	defer in.Free()

	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		// Fold: evens below 2*rem hand their data to the odd neighbor.
		c.Send(buf, count, dt, c.rank+1, tag)
	case c.rank < 2*rem:
		c.Recv(in, count, dt, c.rank-1, tag)
		c.reduceLocal(op, dt, buf, in, count)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}
	if newRank >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			peerNew := newRank ^ mask
			peer := peerNew + rem
			if peerNew < rem {
				peer = peerNew*2 + 1
			}
			c.Sendrecv(buf, count, dt, peer, tag, in, count, dt, peer, tag)
			c.reduceLocal(op, dt, buf, in, count)
		}
	}
	// Unfold: odds return the result to their even neighbor.
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		c.Recv(buf, count, dt, c.rank+1, tag)
	case c.rank < 2*rem:
		c.Send(buf, count, dt, c.rank-1, tag)
	}
}

// allreduceRing is the bandwidth-optimal algorithm: ring reduce-scatter
// followed by ring allgather, in place on buf.
func (c *Comm) allreduceRing(buf *device.Buffer, count int, dt Datatype, op Op, epoch int) {
	segs := segment(count, c.Size())
	c.ringReduceScatter(buf, segs, dt, op, tagOf(epoch, tagReduceScatter))
	c.ringAllgatherSegs(buf, segs, dt, tagOf(epoch, tagAllgather))
}

// ReduceScatterBlock reduces count×n elements with op and scatters the
// result: rank r receives elements [r·count, (r+1)·count) into recvBuf.
func (c *Comm) ReduceScatterBlock(sendBuf, recvBuf *device.Buffer, count int, dt Datatype, op Op) {
	c.enterColl()
	n := c.Size()
	esz := int64(dt.Size())
	total := count * n
	work := c.tmp(int64(total) * esz)
	defer work.Free()
	copy(work.Bytes(), sendBuf.Bytes()[:int64(total)*esz])
	segs := segment(total, n)
	c.ringReduceScatter(work, segs, dt, op, tagOf(c.nextEpoch(), tagReduceScatter))
	off, ln := segRange(segs, c.rank, c.rank+1, esz)
	copy(recvBuf.Bytes()[:ln], work.Bytes()[off:off+ln])
	c.proc.Sleep(c.dev.CopyTime(ln))
}
