package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatatypeSizes(t *testing.T) {
	want := map[Datatype]int{
		Byte: 1, Int32: 4, Int64: 8, Float16: 2, Float32: 4, Float64: 8, DoubleComplex: 16,
	}
	for dt, sz := range want {
		if dt.Size() != sz {
			t.Errorf("%v.Size() = %d, want %d", dt, dt.Size(), sz)
		}
	}
}

func TestDatatypeStrings(t *testing.T) {
	if Float64.String() != "MPI_DOUBLE" {
		t.Errorf("Float64 = %q", Float64.String())
	}
	if DoubleComplex.String() != "MPI_DOUBLE_COMPLEX" {
		t.Errorf("DoubleComplex = %q", DoubleComplex.String())
	}
	if Datatype(99).String() != "Datatype(99)" {
		t.Errorf("unknown = %q", Datatype(99).String())
	}
}

func TestUnknownDatatypeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Datatype(99).Size()
}

func TestDatatypesListsAll(t *testing.T) {
	if len(Datatypes()) != 7 {
		t.Fatalf("Datatypes() has %d entries", len(Datatypes()))
	}
}

func TestElementRoundTripAllTypes(t *testing.T) {
	for _, dt := range Datatypes() {
		b := make([]byte, 16*dt.Size())
		vals := []float64{0, 1, -1, 3.5, 100}
		switch dt {
		case Byte:
			vals = []float64{0, 1, 100, 255}
		case Int32, Int64:
			vals = []float64{0, 1, -1, 3, 100}
		}
		for i, v := range vals {
			setElement(dt, b, i, v, -v)
			re, im := element(dt, b, i)
			if re != v {
				t.Errorf("%v element %d: re = %v, want %v", dt, i, re, v)
			}
			if dt == DoubleComplex && im != -v {
				t.Errorf("%v element %d: im = %v, want %v", dt, i, im, -v)
			}
		}
	}
}

func TestOpStringsAndList(t *testing.T) {
	if OpSum.String() != "MPI_SUM" || OpMax.String() != "MPI_MAX" {
		t.Error("op names wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op name wrong")
	}
	if len(Ops()) != 4 {
		t.Error("Ops() incomplete")
	}
}

func TestOpValidFor(t *testing.T) {
	if !OpSum.ValidFor(DoubleComplex) || !OpProd.ValidFor(DoubleComplex) {
		t.Error("sum/prod must be valid for complex")
	}
	if OpMax.ValidFor(DoubleComplex) || OpMin.ValidFor(DoubleComplex) {
		t.Error("max/min must be invalid for complex")
	}
	if !OpMax.ValidFor(Float32) {
		t.Error("max must be valid for float")
	}
}

func TestReduceSumFloat64(t *testing.T) {
	n := 8
	dst := make([]byte, n*8)
	src := make([]byte, n*8)
	for i := 0; i < n; i++ {
		setElement(Float64, dst, i, float64(i), 0)
		setElement(Float64, src, i, 10*float64(i), 0)
	}
	Reduce(OpSum, Float64, dst, src, n)
	for i := 0; i < n; i++ {
		re, _ := element(Float64, dst, i)
		if re != 11*float64(i) {
			t.Fatalf("element %d = %v, want %v", i, re, 11*float64(i))
		}
	}
}

func TestReduceMaxMinInt32(t *testing.T) {
	dst := make([]byte, 8)
	src := make([]byte, 8)
	setElement(Int32, dst, 0, 5, 0)
	setElement(Int32, src, 0, -3, 0)
	setElement(Int32, dst, 1, -7, 0)
	setElement(Int32, src, 1, 2, 0)
	maxDst := append([]byte(nil), dst...)
	Reduce(OpMax, Int32, maxDst, src, 2)
	if re, _ := element(Int32, maxDst, 0); re != 5 {
		t.Errorf("max[0] = %v", re)
	}
	if re, _ := element(Int32, maxDst, 1); re != 2 {
		t.Errorf("max[1] = %v", re)
	}
	Reduce(OpMin, Int32, dst, src, 2)
	if re, _ := element(Int32, dst, 0); re != -3 {
		t.Errorf("min[0] = %v", re)
	}
	if re, _ := element(Int32, dst, 1); re != -7 {
		t.Errorf("min[1] = %v", re)
	}
}

func TestReduceComplexProd(t *testing.T) {
	dst := make([]byte, 16)
	src := make([]byte, 16)
	setElement(DoubleComplex, dst, 0, 1, 2)  // 1+2i
	setElement(DoubleComplex, src, 0, 3, -1) // 3-1i
	Reduce(OpProd, DoubleComplex, dst, src, 1)
	re, im := element(DoubleComplex, dst, 0)
	// (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
	if re != 5 || im != 5 {
		t.Fatalf("complex prod = %v+%vi, want 5+5i", re, im)
	}
}

func TestReduceComplexMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for MAX on complex")
		}
	}()
	Reduce(OpMax, DoubleComplex, make([]byte, 16), make([]byte, 16), 1)
}

// Property: sum-reduce is commutative over operand order for float64.
func TestReduceSumCommutativeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := make([]byte, n*8)
		y := make([]byte, n*8)
		x2 := make([]byte, n*8)
		y2 := make([]byte, n*8)
		for i := 0; i < n; i++ {
			setElement(Float64, x, i, a[i], 0)
			setElement(Float64, y, i, b[i], 0)
			setElement(Float64, x2, i, a[i], 0)
			setElement(Float64, y2, i, b[i], 0)
		}
		Reduce(OpSum, Float64, x, y, n) // x = a+b
		Reduce(OpSum, Float64, y2, x2, n)
		for i := 0; i < n; i++ {
			r1, _ := element(Float64, x, i)
			r2, _ := element(Float64, y2, i)
			if r1 != r2 && !(math.IsNaN(r1) && math.IsNaN(r2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
