package mpi

import (
	"fmt"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/sim"
)

// Wildcards for Recv matching.
const (
	// AnySource matches a message from any rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches any tag (MPI_ANY_TAG).
	AnyTag = -1
)

// Status describes a completed receive.
type Status struct {
	// Source is the sending rank (communicator-local).
	Source int
	// Tag is the matched message tag.
	Tag int
	// Count is the received element count.
	Count int
}

// envelope is one in-flight message at the receiver.
type envelope struct {
	src, tag  int
	dt        Datatype
	count     int
	eager     bool
	staged    *device.Buffer // eager: payload copy at the receiver
	srcBuf    *device.Buffer // rendezvous: sender's live buffer
	dstBuf    *device.Buffer // rendezvous: set when the receive is posted
	recvReady *sim.Event     // rendezvous: receiver has posted
	done      *sim.Event     // transfer complete
}

// postedRecv is a receive waiting for its message.
type postedRecv struct {
	src, tag int
	dt       Datatype
	count    int
	dst      *device.Buffer
	dev      *device.Device
	done     *sim.Event
	status   Status
}

// matchCtx is one rank's matching engine on one communicator: the posted
// receive queue and the unexpected message queue, searched in order as the
// MPI standard requires.
type matchCtx struct {
	posted     []*postedRecv
	unexpected []*envelope
}

func match(src, tag, wantSrc, wantTag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && (wantTag == AnyTag || wantTag == tag)
}

func (m *matchCtx) takeUnexpected(src, tag int) *envelope {
	for i, e := range m.unexpected {
		if match(e.src, e.tag, src, tag) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

func (m *matchCtx) takePosted(src, tag int) *postedRecv {
	for i, r := range m.posted {
		if match(src, tag, r.src, r.tag) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// Send transmits count elements of dt from buf to dest with the given tag,
// blocking until the send buffer is reusable (eager: after injection;
// rendezvous: after the transfer completes). buf must hold count elements.
func (c *Comm) Send(buf *device.Buffer, count int, dt Datatype, dest, tag int) {
	c.sendOn(c.proc, buf, count, dt, dest, tag)
}

func (c *Comm) sendOn(p *sim.Proc, buf *device.Buffer, count int, dt Datatype, dest, tag int) {
	if dest < 0 || dest >= c.Size() {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dest, c.Size()))
	}
	bytes := int64(count) * int64(dt.Size())
	if bytes > buf.Len() {
		panic(fmt.Sprintf("mpi: send of %d bytes from %d-byte buffer", bytes, buf.Len()))
	}
	prof := c.ctx.job.profile
	fab := c.ctx.job.fab
	p.Sleep(prof.SendOverhead)
	dstDev := c.ctx.job.devices[c.ctx.group[dest]]
	m := c.ctx.match[dest]
	opts := fabric.Opts{Channels: prof.Channels, ChunkBytes: prof.ChunkBytes}
	// Non-GPU-direct runtimes pay a staging penalty on device payloads,
	// proportional to the wire time (see Profile.GPUBWEff*).
	gpuPenalty := func() {
		if !buf.OnDevice() || c.dev == dstDev {
			return
		}
		effIntra, effInter := prof.gpuEff()
		eff := effIntra
		if c.dev.Node != dstDev.Node {
			eff = effInter
		}
		if eff >= 1 {
			return
		}
		link := fab.System().LinkBetween(c.dev, dstDev)
		wire := link.Time(bytes, prof.Channels) - link.Alpha
		p.Sleep(time.Duration(float64(wire) * (1/eff - 1)))
	}

	if bytes <= prof.EagerThreshold {
		c.ctx.job.countSend("eager", bytes)
		if r := m.takePosted(c.rank, tag); r != nil {
			if int64(r.count)*int64(r.dt.Size()) < bytes {
				panic("mpi: eager message longer than posted receive")
			}
			fab.Transfer(p, r.dst, buf, bytes, opts)
			gpuPenalty()
			r.status = Status{Source: c.rank, Tag: tag, Count: count}
			r.done.Fire()
			return
		}
		// No receive posted: stage a copy at the receiver (the eager
		// protocol's bounce buffer) and complete immediately.
		staged := device.NewHostBuffer(bytes)
		copy(staged.Bytes(), buf.Bytes()[:bytes])
		env := &envelope{src: c.rank, tag: tag, dt: dt, count: count, eager: true, staged: staged}
		m.unexpected = append(m.unexpected, env)
		// Charge the uncontended wire time (α + payload) for injecting
		// into the receiver's bounce buffer; eager messages are small
		// enough that link contention is negligible.
		p.Sleep(fab.System().LinkBetween(c.dev, dstDev).Time(bytes, prof.Channels))
		gpuPenalty()
		return
	}

	// Rendezvous: RTS, wait for the receive, then move data directly.
	c.ctx.job.countSend("rendezvous", bytes)
	env := &envelope{
		src: c.rank, tag: tag, dt: dt, count: count,
		srcBuf:    buf,
		recvReady: sim.NewEvent(p.Kernel()),
		done:      sim.NewEvent(p.Kernel()),
	}
	fab.ControlMsg(p, c.dev, dstDev) // RTS
	if r := m.takePosted(c.rank, tag); r != nil {
		env.dstBuf = r.dst
		env.recvReady.Fire()
		fab.Transfer(p, env.dstBuf, buf, bytes, opts)
		gpuPenalty()
		r.status = Status{Source: c.rank, Tag: tag, Count: count}
		env.done.Fire()
		r.done.Fire()
		return
	}
	m.unexpected = append(m.unexpected, env)
	env.recvReady.Wait(p)
	fab.ControlMsg(p, dstDev, c.dev) // CTS
	fab.Transfer(p, env.dstBuf, buf, bytes, opts)
	gpuPenalty()
	env.done.Fire()
}

// Recv blocks until a message matching (src, tag) arrives and is delivered
// into buf. src may be AnySource and tag AnyTag.
func (c *Comm) Recv(buf *device.Buffer, count int, dt Datatype, src, tag int) Status {
	return c.recvOn(c.proc, buf, count, dt, src, tag)
}

func (c *Comm) recvOn(p *sim.Proc, buf *device.Buffer, count int, dt Datatype, src, tag int) Status {
	bytes := int64(count) * int64(dt.Size())
	if bytes > buf.Len() {
		panic(fmt.Sprintf("mpi: recv of %d bytes into %d-byte buffer", bytes, buf.Len()))
	}
	prof := c.ctx.job.profile
	p.Sleep(prof.RecvOverhead)
	m := c.ctx.match[c.rank]
	if env := m.takeUnexpected(src, tag); env != nil {
		got := int64(env.count) * int64(env.dt.Size())
		if got > bytes {
			panic("mpi: message truncation (received longer than posted)")
		}
		if env.eager {
			// Drain the bounce buffer into the user buffer: a local copy.
			copy(buf.Bytes()[:got], env.staged.Bytes())
			p.Sleep(c.dev.CopyTime(got))
			return Status{Source: env.src, Tag: env.tag, Count: env.count}
		}
		env.dstBuf = buf
		env.recvReady.Fire()
		env.done.Wait(p)
		return Status{Source: env.src, Tag: env.tag, Count: env.count}
	}
	r := &postedRecv{src: src, tag: tag, dt: dt, count: count, dst: buf, dev: c.dev,
		done: sim.NewEvent(p.Kernel())}
	m.posted = append(m.posted, r)
	r.done.Wait(p)
	return r.status
}

// Request is a handle on a nonblocking operation.
type Request struct {
	done   *sim.Event
	status *Status
}

// Wait blocks the communicator's rank process until the operation completes
// and returns the receive status (zero Status for sends).
func (c *Comm) Wait(r *Request) Status {
	r.done.Wait(c.proc)
	if r.status != nil {
		return *r.status
	}
	return Status{}
}

// Waitall completes every request.
func (c *Comm) Waitall(reqs []*Request) {
	for _, r := range reqs {
		c.Wait(r)
	}
}

// Isend starts a nonblocking send; complete it with Wait.
func (c *Comm) Isend(buf *device.Buffer, count int, dt Datatype, dest, tag int) *Request {
	req := &Request{}
	p := c.proc.Kernel().Spawn(fmt.Sprintf("isend-r%d", c.rank), func(p *sim.Proc) {
		c.sendOn(p, buf, count, dt, dest, tag)
	})
	req.done = p.Done()
	return req
}

// Irecv starts a nonblocking receive; complete it with Wait.
func (c *Comm) Irecv(buf *device.Buffer, count int, dt Datatype, src, tag int) *Request {
	req := &Request{status: &Status{}}
	p := c.proc.Kernel().Spawn(fmt.Sprintf("irecv-r%d", c.rank), func(p *sim.Proc) {
		*req.status = c.recvOn(p, buf, count, dt, src, tag)
	})
	req.done = p.Done()
	return req
}

// Sendrecv performs a simultaneous send and receive, the workhorse of the
// ring and pairwise collective algorithms.
func (c *Comm) Sendrecv(
	sendBuf *device.Buffer, sendCount int, sendDt Datatype, dest, sendTag int,
	recvBuf *device.Buffer, recvCount int, recvDt Datatype, src, recvTag int,
) Status {
	sreq := c.Isend(sendBuf, sendCount, sendDt, dest, sendTag)
	st := c.Recv(recvBuf, recvCount, recvDt, src, recvTag)
	c.Wait(sreq)
	return st
}
