package mpi

import (
	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// Completion-testing extensions to the request API: MPI_Test, MPI_Waitany,
// and MPI_Testall semantics over the virtual-time events.

// Test reports without blocking whether the operation has completed,
// returning its status when it has (MPI_Test).
func (c *Comm) Test(r *Request) (bool, Status) {
	if !r.done.Fired() {
		return false, Status{}
	}
	if r.status != nil {
		return true, *r.status
	}
	return true, Status{}
}

// Testall reports whether every request has completed (MPI_Testall).
func (c *Comm) Testall(reqs []*Request) bool {
	for _, r := range reqs {
		if !r.done.Fired() {
			return false
		}
	}
	return true
}

// Waitany blocks until at least one request completes and returns its index
// and status (MPI_Waitany). The remaining requests stay in flight.
func (c *Comm) Waitany(reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		return -1, Status{}
	}
	events := make([]*sim.Event, len(reqs))
	for i, r := range reqs {
		events[i] = r.done
	}
	idx := sim.WaitAny(c.proc, events...)
	_, st := c.Test(reqs[idx])
	return idx, st
}

// PersistentRequest is an initialized-but-inactive point-to-point operation
// (MPI_Send_init / MPI_Recv_init): Start launches it, Wait completes it,
// and it can be started again.
type PersistentRequest struct {
	comm   *Comm
	isSend bool
	buf    *device.Buffer
	count  int
	dt     Datatype
	peer   int
	tag    int
	active *Request
}

// SendInit creates a persistent send (MPI_Send_init).
func (c *Comm) SendInit(buf *device.Buffer, count int, dt Datatype, dest, tag int) *PersistentRequest {
	return &PersistentRequest{comm: c, isSend: true, buf: buf, count: count, dt: dt, peer: dest, tag: tag}
}

// RecvInit creates a persistent receive (MPI_Recv_init).
func (c *Comm) RecvInit(buf *device.Buffer, count int, dt Datatype, src, tag int) *PersistentRequest {
	return &PersistentRequest{comm: c, buf: buf, count: count, dt: dt, peer: src, tag: tag}
}

// Start launches the operation (MPI_Start). Starting an already-active
// request panics, per the standard.
func (pr *PersistentRequest) Start() {
	if pr.active != nil {
		panic("mpi: Start on active persistent request")
	}
	if pr.isSend {
		pr.active = pr.comm.Isend(pr.buf, pr.count, pr.dt, pr.peer, pr.tag)
	} else {
		pr.active = pr.comm.Irecv(pr.buf, pr.count, pr.dt, pr.peer, pr.tag)
	}
}

// Wait completes the active operation and re-arms the request.
func (pr *PersistentRequest) Wait() Status {
	if pr.active == nil {
		panic("mpi: Wait on inactive persistent request")
	}
	st := pr.comm.Wait(pr.active)
	pr.active = nil
	return st
}
