package mpi

import (
	"fmt"

	"mpixccl/internal/device"
)

// Strided (vector) datatype support: the MPI_Type_vector / MPI_Pack surface
// used by halo exchanges and FFT transposes (the heFFTe-style workloads the
// paper's datatype discussion motivates). Packing charges device copy time,
// as a real pack kernel would.

// Vector describes count blocks of blockLen elements separated by a stride
// of stride elements (stride >= blockLen), over a basic datatype.
type Vector struct {
	Dt       Datatype
	Count    int
	BlockLen int
	Stride   int
}

// Elems returns the number of elements the vector selects.
func (v Vector) Elems() int { return v.Count * v.BlockLen }

// Bytes returns the packed size.
func (v Vector) Bytes() int64 { return int64(v.Elems()) * int64(v.Dt.Size()) }

// SpanBytes returns the extent the vector covers in the source buffer.
func (v Vector) SpanBytes() int64 {
	if v.Count == 0 {
		return 0
	}
	return int64((v.Count-1)*v.Stride+v.BlockLen) * int64(v.Dt.Size())
}

func (v Vector) validate() error {
	if v.Count < 0 || v.BlockLen <= 0 || v.Stride < v.BlockLen {
		return fmt.Errorf("mpi: invalid vector %+v", v)
	}
	return nil
}

// PackVector gathers the strided elements of src into contiguous dst
// (MPI_Pack), charging the device's copy bandwidth for the bytes moved.
func (c *Comm) PackVector(v Vector, src, dst *device.Buffer) error {
	if err := v.validate(); err != nil {
		return err
	}
	if src.Len() < v.SpanBytes() || dst.Len() < v.Bytes() {
		return fmt.Errorf("mpi: pack buffers too small (src %d < %d or dst %d < %d)",
			src.Len(), v.SpanBytes(), dst.Len(), v.Bytes())
	}
	esz := int64(v.Dt.Size())
	blk := int64(v.BlockLen) * esz
	for b := 0; b < v.Count; b++ {
		so := int64(b*v.Stride) * esz
		do := int64(b) * blk
		copy(dst.Bytes()[do:do+blk], src.Bytes()[so:so+blk])
	}
	c.proc.Sleep(c.dev.CopyTime(v.Bytes()))
	return nil
}

// UnpackVector scatters contiguous src back into the strided layout of dst
// (MPI_Unpack).
func (c *Comm) UnpackVector(v Vector, src, dst *device.Buffer) error {
	if err := v.validate(); err != nil {
		return err
	}
	if dst.Len() < v.SpanBytes() || src.Len() < v.Bytes() {
		return fmt.Errorf("mpi: unpack buffers too small (dst %d < %d or src %d < %d)",
			dst.Len(), v.SpanBytes(), src.Len(), v.Bytes())
	}
	esz := int64(v.Dt.Size())
	blk := int64(v.BlockLen) * esz
	for b := 0; b < v.Count; b++ {
		do := int64(b*v.Stride) * esz
		so := int64(b) * blk
		copy(dst.Bytes()[do:do+blk], src.Bytes()[so:so+blk])
	}
	c.proc.Sleep(c.dev.CopyTime(v.Bytes()))
	return nil
}

// SendVector packs a strided region and sends it (pack + send, as MPI
// implementations do for non-contiguous device datatypes).
func (c *Comm) SendVector(v Vector, src *device.Buffer, dest, tag int) error {
	tmp := c.tmp(v.Bytes())
	defer tmp.Free()
	if err := c.PackVector(v, src, tmp); err != nil {
		return err
	}
	c.Send(tmp, v.Elems(), v.Dt, dest, tag)
	return nil
}

// RecvVector receives a packed region and scatters it into the strided
// layout of dst.
func (c *Comm) RecvVector(v Vector, dst *device.Buffer, src, tag int) (Status, error) {
	tmp := c.tmp(v.Bytes())
	defer tmp.Free()
	st := c.Recv(tmp, v.Elems(), v.Dt, src, tag)
	if err := c.UnpackVector(v, tmp, dst); err != nil {
		return st, err
	}
	return st, nil
}

// SendrecvReplace is MPI_Sendrecv_replace: the buffer is sent to dest and
// overwritten by the message from src.
func (c *Comm) SendrecvReplace(buf *device.Buffer, count int, dt Datatype, dest, sendTag, src, recvTag int) Status {
	bytes := int64(count) * int64(dt.Size())
	tmp := c.tmp(bytes)
	defer tmp.Free()
	copy(tmp.Bytes(), buf.Bytes()[:bytes])
	c.proc.Sleep(c.dev.CopyTime(bytes))
	return c.Sendrecv(tmp, count, dt, dest, sendTag, buf, count, dt, src, recvTag)
}
