package mpi

import (
	"fmt"

	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// Internal tag space for collective traffic, disjoint from user tags by
// convention (user code should use small non-negative tags).
const collTagBase = 1 << 20

// Collective type ids for tag construction.
const (
	tagBarrier = iota
	tagBcast
	tagReduce
	tagAllreduce
	tagAllgather
	tagAlltoall
	tagGather
	tagScatter
	tagReduceScatter
)

// nextEpoch allocates the sequence number for one public collective call.
// Every rank calls collectives on a communicator in the same order, so
// epochs agree across ranks; combined with per-phase type ids (tagOf),
// concurrent collectives on the same communicator cannot cross-match.
// Epochs are allocated at call time, which is what lets nonblocking
// collectives execute later on a progress process and still match.
func (c *Comm) nextEpoch() int {
	e := c.collSeq
	c.collSeq++
	return e
}

// tagOf builds the wire tag for phase op of collective call #epoch.
func tagOf(epoch, op int) int {
	return collTagBase + (epoch%(1<<14))*16 + op
}

// ReserveEpoch allocates the next collective sequence number without
// running a collective. Pair it with BindAsync to issue the collective
// later from a progress process (the mechanism behind the nonblocking
// collectives offered by the xCCL layer).
func (c *Comm) ReserveEpoch() int { return c.nextEpoch() }

// BindAsync returns a one-shot view of the communicator bound to process p
// whose next collective call uses the reserved epoch. Only that single
// collective may be issued through the returned view.
func (c *Comm) BindAsync(p *sim.Proc, epoch int) *Comm {
	return &Comm{ctx: c.ctx, rank: c.rank, proc: p, dev: c.dev, collSeq: epoch}
}

// tmp allocates collective scratch space on the rank's device.
func (c *Comm) tmp(bytes int64) *device.Buffer {
	return c.dev.MustMalloc(bytes)
}

func (c *Comm) enterColl() {
	c.proc.Sleep(c.ctx.job.profile.CollOverhead)
}

// Barrier blocks until every rank of the communicator has entered it
// (dissemination algorithm: ⌈log2 n⌉ rounds of pairwise signals).
func (c *Comm) Barrier() {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagBarrier)
	n := c.Size()
	if n == 1 {
		return
	}
	token := c.tmp(1)
	defer token.Free()
	scratch := c.tmp(1)
	defer scratch.Free()
	for k := 1; k < n; k <<= 1 {
		dst := (c.rank + k) % n
		src := (c.rank - k + n) % n
		c.Sendrecv(token, 1, Byte, dst, tag, scratch, 1, Byte, src, tag)
	}
}

// Bcast broadcasts count elements from root's buf to every rank's buf.
// Small payloads use a binomial tree; large payloads use the van de Geijn
// scatter + ring-allgather algorithm.
func (c *Comm) Bcast(buf *device.Buffer, count int, dt Datatype, root int) {
	c.enterColl()
	bytes := int64(count) * int64(dt.Size())
	if c.Size() == 1 || count == 0 {
		return
	}
	epoch := c.nextEpoch()
	if bytes <= c.ctx.job.profile.BcastLong || c.Size() == 2 {
		c.bcastBinomial(buf, count, dt, root, epoch)
		return
	}
	c.bcastScatterRing(buf, count, dt, root, epoch)
}

func (c *Comm) bcastBinomial(buf *device.Buffer, count int, dt Datatype, root, epoch int) {
	tag := tagOf(epoch, tagBcast)
	n := c.Size()
	rel := (c.rank - root + n) % n
	// Receive once from the parent, then forward down the tree.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.rank - mask + n) % n
			c.Recv(buf, count, dt, src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.rank + mask) % n
			c.Send(buf, count, dt, dst, tag)
		}
		mask >>= 1
	}
}

func (c *Comm) bcastScatterRing(buf *device.Buffer, count int, dt Datatype, root, epoch int) {
	// Scatter the payload binomially, then ring-allgather the pieces.
	n := c.Size()
	esz := int64(dt.Size())
	segs := segment(count, n)
	// Phase 1: binomial scatter of segments relative to root.
	tag := tagOf(epoch, tagBcast)
	rel := (c.rank - root + n) % n
	// recvLow/recvHigh is the relative-rank segment range this rank holds.
	low, high := 0, n
	mask := nextPow2(n)
	for mask > 1 {
		mask >>= 1
		mid := low + mask
		if mid >= high {
			continue
		}
		if rel < mid { // this rank owns the lower half; send upper half away
			if rel == low {
				off, ln := segRange(segs, mid, high, esz)
				if ln > 0 {
					c.Send(buf.Slice(off, ln), int(ln/esz), dt, (low+mask+root)%n, tag)
				}
			}
			high = mid
		} else {
			if rel == mid {
				off, ln := segRange(segs, mid, high, esz)
				if ln > 0 {
					c.Recv(buf.Slice(off, ln), int(ln/esz), dt, (low+root)%n, tag)
				}
			}
			low = mid
		}
	}
	// Phase 2: ring allgather of the n segments (relative indexing).
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendSeg := (rel - step + n) % n
		recvSeg := (rel - step - 1 + n) % n
		so, sl := segRange(segs, sendSeg, sendSeg+1, esz)
		ro, rl := segRange(segs, recvSeg, recvSeg+1, esz)
		if sl == 0 && rl == 0 {
			continue
		}
		c.Sendrecv(buf.Slice(so, sl), int(sl/esz), dt, right, tag,
			buf.Slice(ro, rl), int(rl/esz), dt, left, tag)
	}
}

// segment splits count elements into n contiguous ranges, returning the
// start element of each range plus a final sentinel (len n+1).
func segment(count, n int) []int {
	bounds := make([]int, n+1)
	base, rem := count/n, count%n
	off := 0
	for i := 0; i < n; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[n] = count
	return bounds
}

// segRange maps segment range [a,b) to a byte (offset, length) in the
// full buffer.
func segRange(bounds []int, a, b int, esz int64) (off, ln int64) {
	if a >= b {
		return 0, 0
	}
	start, end := bounds[a], bounds[b]
	return int64(start) * esz, int64(end-start) * esz
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Gather collects count elements from every rank's sendBuf into root's
// recvBuf (laid out by rank). recvBuf may be nil on non-root ranks.
func (c *Comm) Gather(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer, root int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagGather)
	n := c.Size()
	esz := int64(dt.Size())
	bytes := int64(count) * esz
	if c.rank == root {
		if recvBuf.Len() < bytes*int64(n) {
			panic(fmt.Sprintf("mpi: gather recv buffer %d < %d", recvBuf.Len(), bytes*int64(n)))
		}
		copy(recvBuf.Bytes()[int64(root)*bytes:(int64(root)+1)*bytes], sendBuf.Bytes()[:bytes])
		c.proc.Sleep(c.dev.CopyTime(bytes))
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			reqs = append(reqs, c.Irecv(recvBuf.Slice(int64(r)*bytes, bytes), count, dt, r, tag))
		}
		c.Waitall(reqs)
		return
	}
	c.Send(sendBuf, count, dt, root, tag)
}

// Scatter distributes root's sendBuf (laid out by rank) so each rank
// receives count elements into recvBuf. sendBuf may be nil on non-roots.
func (c *Comm) Scatter(sendBuf *device.Buffer, count int, dt Datatype, recvBuf *device.Buffer, root int) {
	c.enterColl()
	tag := tagOf(c.nextEpoch(), tagScatter)
	n := c.Size()
	bytes := int64(count) * int64(dt.Size())
	if c.rank == root {
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == root {
				copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[int64(r)*bytes:(int64(r)+1)*bytes])
				c.proc.Sleep(c.dev.CopyTime(bytes))
				continue
			}
			reqs = append(reqs, c.Isend(sendBuf.Slice(int64(r)*bytes, bytes), count, dt, r, tag))
		}
		c.Waitall(reqs)
		return
	}
	c.Recv(recvBuf, count, dt, root, tag)
}
