package mpi

import (
	"testing"
	"time"

	"mpixccl/internal/sim"
)

// rankSizes covers power-of-two, non-power-of-two, and prime communicator
// sizes, exercising the fold/unfold and uneven-segment paths.
var rankSizes = []int{2, 3, 4, 5, 7, 8, 16}

// countSizes straddle every algorithm switchover in MVAPICHProfile.
var countSizes = []int{1, 3, 64, 4096, 100000}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range rankSizes {
		j := newTestJob(t, n)
		var maxArrive sim.Time
		releases := make([]sim.Time, n)
		err := j.Run(func(c *Comm) {
			d := time.Duration(c.Rank()) * 10 * time.Microsecond
			c.Proc().Sleep(d)
			if c.Proc().Now() > maxArrive {
				maxArrive = c.Proc().Now()
			}
			c.Barrier()
			releases[c.Rank()] = c.Proc().Now()
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r, rel := range releases {
			if rel < maxArrive {
				t.Fatalf("n=%d: rank %d released at %v before last arrival %v", n, r, rel, maxArrive)
			}
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range rankSizes {
		for _, count := range countSizes {
			for _, root := range []int{0, n - 1} {
				j := newTestJob(t, n)
				err := j.Run(func(c *Comm) {
					buf := c.Device().MustMalloc(int64(count) * 8)
					if c.Rank() == root {
						fillRank(buf, 42, count)
					}
					c.Bcast(buf, count, Float64, root)
					for i := 0; i < count; i += 1 + count/7 {
						if buf.Float64(i) != float64(42*1000+i) {
							t.Fatalf("n=%d count=%d root=%d rank=%d elem %d = %v",
								n, count, root, c.Rank(), i, buf.Float64(i))
						}
					}
				})
				if err != nil {
					t.Fatalf("n=%d count=%d root=%d: %v", n, count, root, err)
				}
			}
		}
	}
}

func TestReduceAllSizes(t *testing.T) {
	for _, n := range rankSizes {
		for _, count := range countSizes {
			root := n / 2
			j := newTestJob(t, n)
			err := j.Run(func(c *Comm) {
				send := c.Device().MustMalloc(int64(count) * 8)
				recv := c.Device().MustMalloc(int64(count) * 8)
				for i := 0; i < count; i++ {
					send.SetFloat64(i, float64(c.Rank()+1)*float64(i+1))
				}
				c.Reduce(send, recv, count, Float64, OpSum, root)
				if c.Rank() == root {
					sumRanks := float64(n*(n+1)) / 2
					for i := 0; i < count; i += 1 + count/7 {
						want := sumRanks * float64(i+1)
						if recv.Float64(i) != want {
							t.Fatalf("n=%d count=%d elem %d = %v, want %v", n, count, i, recv.Float64(i), want)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("n=%d count=%d: %v", n, count, err)
			}
		}
	}
}

func TestAllreduceAllSizes(t *testing.T) {
	for _, n := range rankSizes {
		for _, count := range countSizes {
			j := newTestJob(t, n)
			err := j.Run(func(c *Comm) {
				send := c.Device().MustMalloc(int64(count) * 8)
				recv := c.Device().MustMalloc(int64(count) * 8)
				for i := 0; i < count; i++ {
					send.SetFloat64(i, float64(c.Rank()+1)*float64(i+1))
				}
				c.Allreduce(send, recv, count, Float64, OpSum)
				sumRanks := float64(n*(n+1)) / 2
				for i := 0; i < count; i += 1 + count/7 {
					want := sumRanks * float64(i+1)
					if recv.Float64(i) != want {
						t.Fatalf("n=%d count=%d rank=%d elem %d = %v, want %v",
							n, count, c.Rank(), i, recv.Float64(i), want)
					}
				}
			})
			if err != nil {
				t.Fatalf("n=%d count=%d: %v", n, count, err)
			}
		}
	}
}

func TestAllreduceMaxOp(t *testing.T) {
	j := newTestJob(t, 5)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(16)
		recv := c.Device().MustMalloc(16)
		send.SetFloat64(0, float64(c.Rank()))
		send.SetFloat64(1, -float64(c.Rank()))
		c.Allreduce(send, recv, 2, Float64, OpMax)
		if recv.Float64(0) != 4 || recv.Float64(1) != 0 {
			t.Errorf("max = %v/%v", recv.Float64(0), recv.Float64(1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDoubleComplex(t *testing.T) {
	// The datatype no CCL supports must work through plain MPI.
	j := newTestJob(t, 4)
	err := j.Run(func(c *Comm) {
		send := c.Device().MustMalloc(32) // 2 complex elements
		recv := c.Device().MustMalloc(32)
		send.SetFloat64(0, float64(c.Rank()))
		send.SetFloat64(1, 1)
		send.SetFloat64(2, 2)
		send.SetFloat64(3, float64(c.Rank()))
		c.Allreduce(send, recv, 2, DoubleComplex, OpSum)
		if recv.Float64(0) != 6 || recv.Float64(1) != 4 || recv.Float64(2) != 8 || recv.Float64(3) != 6 {
			t.Errorf("complex allreduce = %v %v %v %v",
				recv.Float64(0), recv.Float64(1), recv.Float64(2), recv.Float64(3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherAllSizes(t *testing.T) {
	for _, n := range rankSizes {
		for _, count := range []int{1, 17, 4096, 20000} {
			j := newTestJob(t, n)
			err := j.Run(func(c *Comm) {
				send := c.Device().MustMalloc(int64(count) * 8)
				recv := c.Device().MustMalloc(int64(n*count) * 8)
				fillRank(send, c.Rank(), count)
				c.Allgather(send, count, Float64, recv)
				for r := 0; r < n; r++ {
					for i := 0; i < count; i += 1 + count/5 {
						got := recv.Float64(r*count + i)
						if got != float64(r*1000+i) {
							t.Fatalf("n=%d count=%d rank=%d block %d elem %d = %v",
								n, count, c.Rank(), r, i, got)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("n=%d count=%d: %v", n, count, err)
			}
		}
	}
}

func TestAllgathervUnevenCounts(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		j := newTestJob(t, n)
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		err := j.Run(func(c *Comm) {
			mine := counts[c.Rank()]
			send := c.Device().MustMalloc(int64(mine) * 8)
			recv := c.Device().MustMalloc(int64(total) * 8)
			fillRank(send, c.Rank(), mine)
			c.Allgatherv(send, mine, Float64, recv, counts, displs)
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					got := recv.Float64(displs[r] + i)
					if got != float64(r*1000+i) {
						t.Fatalf("n=%d rank=%d block %d elem %d = %v", n, c.Rank(), r, i, got)
					}
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAlltoallAllSizes(t *testing.T) {
	for _, n := range rankSizes {
		for _, count := range []int{1, 16, 3000} {
			j := newTestJob(t, n)
			err := j.Run(func(c *Comm) {
				send := c.Device().MustMalloc(int64(n*count) * 8)
				recv := c.Device().MustMalloc(int64(n*count) * 8)
				for r := 0; r < n; r++ {
					for i := 0; i < count; i++ {
						// Block destined to rank r encodes (sender, dest, i).
						send.SetFloat64(r*count+i, float64(c.Rank()*1e6+r*1e3+i))
					}
				}
				c.Alltoall(send, count, Float64, recv)
				for r := 0; r < n; r++ {
					for i := 0; i < count; i += 1 + count/5 {
						got := recv.Float64(r*count + i)
						want := float64(r*1e6 + c.Rank()*1e3 + i)
						if got != want {
							t.Fatalf("n=%d count=%d rank=%d from %d elem %d = %v, want %v",
								n, count, c.Rank(), r, i, got, want)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("n=%d count=%d: %v", n, count, err)
			}
		}
	}
}

func TestAlltoallvListing1Shape(t *testing.T) {
	// The exact operation of the paper's Listing 1: variable counts and
	// displacements per peer.
	const n = 4
	j := newTestJob(t, n)
	err := j.Run(func(c *Comm) {
		sendCounts := make([]int, n)
		sdispls := make([]int, n)
		recvCounts := make([]int, n)
		rdispls := make([]int, n)
		sTotal := 0
		for r := 0; r < n; r++ {
			sendCounts[r] = c.Rank() + r + 1 // what I send to r
			sdispls[r] = sTotal
			sTotal += sendCounts[r]
		}
		rTotal := 0
		for r := 0; r < n; r++ {
			recvCounts[r] = r + c.Rank() + 1 // what r sends me
			rdispls[r] = rTotal
			rTotal += recvCounts[r]
		}
		send := c.Device().MustMalloc(int64(sTotal) * 8)
		recv := c.Device().MustMalloc(int64(rTotal) * 8)
		for r := 0; r < n; r++ {
			for i := 0; i < sendCounts[r]; i++ {
				send.SetFloat64(sdispls[r]+i, float64(c.Rank()*100+r*10+i))
			}
		}
		c.Alltoallv(send, sendCounts, sdispls, Float64, recv, recvCounts, rdispls)
		for r := 0; r < n; r++ {
			for i := 0; i < recvCounts[r]; i++ {
				got := recv.Float64(rdispls[r] + i)
				want := float64(r*100 + c.Rank()*10 + i)
				if got != want {
					t.Fatalf("rank %d block %d elem %d = %v, want %v", c.Rank(), r, i, got, want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		const count = 128
		j := newTestJob(t, n)
		err := j.Run(func(c *Comm) {
			root := 0
			mine := c.Device().MustMalloc(count * 8)
			fillRank(mine, c.Rank(), count)
			gathered := c.Device().MustMalloc(int64(n) * count * 8)
			c.Gather(mine, count, Float64, gathered, root)
			if c.Rank() == root {
				for r := 0; r < n; r++ {
					if gathered.Float64(r*count+5) != float64(r*1000+5) {
						t.Errorf("gather block %d wrong", r)
					}
				}
			}
			// Scatter the gathered data back out; every rank must get its
			// original block.
			back := c.Device().MustMalloc(count * 8)
			c.Scatter(gathered, count, Float64, back, root)
			if back.Float64(7) != float64(c.Rank()*1000+7) {
				t.Errorf("scatter to rank %d wrong: %v", c.Rank(), back.Float64(7))
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		const count = 100
		j := newTestJob(t, n)
		err := j.Run(func(c *Comm) {
			send := c.Device().MustMalloc(int64(n*count) * 8)
			recv := c.Device().MustMalloc(count * 8)
			for i := 0; i < n*count; i++ {
				send.SetFloat64(i, float64(i)+float64(c.Rank()))
			}
			c.ReduceScatterBlock(send, recv, count, Float64, OpSum)
			sumRankOffsets := float64(n*(n-1)) / 2
			for i := 0; i < count; i += 9 {
				idx := c.Rank()*count + i
				want := float64(n)*float64(idx) + sumRankOffsets
				if recv.Float64(i) != want {
					t.Fatalf("n=%d rank=%d elem %d = %v, want %v", n, c.Rank(), i, recv.Float64(i), want)
				}
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCommSplitSubCommunicators(t *testing.T) {
	j := newTestJob(t, 8)
	err := j.Run(func(c *Comm) {
		// Two groups of 4 by parity; key reverses order inside the group.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 4 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Allreduce within the split must only sum the group's members.
		send := sub.Device().MustMalloc(8)
		recv := sub.Device().MustMalloc(8)
		send.SetFloat64(0, float64(c.Rank()))
		sub.Allreduce(send, recv, 1, Float64, OpSum)
		want := 0.0 + 2 + 4 + 6
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if recv.Float64(0) != want {
			t.Errorf("rank %d sub-sum = %v, want %v", c.Rank(), recv.Float64(0), want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitUndefinedColor(t *testing.T) {
	j := newTestJob(t, 4)
	err := j.Run(func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color returned a communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommDupIsolatesTraffic(t *testing.T) {
	j := newTestJob(t, 2)
	err := j.Run(func(c *Comm) {
		dup := c.Dup()
		buf := c.Device().MustMalloc(8)
		if c.Rank() == 0 {
			buf.SetFloat64(0, 1)
			c.Send(buf, 1, Float64, 1, 0)
			buf.SetFloat64(0, 2)
			dup.Send(buf, 1, Float64, 1, 0)
		} else {
			// Receive on the dup first: must get the dup's message even
			// though the parent's arrived first.
			dup.Recv(buf, 1, Float64, 0, 0)
			if buf.Float64(0) != 2 {
				t.Errorf("dup recv = %v, want 2", buf.Float64(0))
			}
			c.Recv(buf, 1, Float64, 0, 0)
			if buf.Float64(0) != 1 {
				t.Errorf("parent recv = %v, want 1", buf.Float64(0))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Collective timing sanity: for a fixed op, latency grows with message size
// and the large-message algorithm is bandwidth-bound, not latency-bound.
func TestAllreduceLatencyMonotoneInSize(t *testing.T) {
	var prev time.Duration
	for _, count := range []int{64, 1024, 16384, 262144} {
		j := newTestJob(t, 8)
		var lat time.Duration
		err := j.Run(func(c *Comm) {
			send := c.Device().MustMalloc(int64(count) * 4)
			recv := c.Device().MustMalloc(int64(count) * 4)
			c.Barrier()
			start := c.Proc().Now()
			c.Allreduce(send, recv, count, Float32, OpSum)
			if d := c.Proc().Now() - start; d > lat {
				lat = d
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Fatalf("latency not monotone: %v after %v at count %d", lat, prev, count)
		}
		prev = lat
	}
}

func TestCollectivesOnSingleRank(t *testing.T) {
	j := newTestJob(t, 1)
	err := j.Run(func(c *Comm) {
		buf := c.Device().MustMalloc(64)
		out := c.Device().MustMalloc(64)
		c.Barrier()
		c.Bcast(buf, 8, Float64, 0)
		buf.SetFloat64(0, 5)
		c.Allreduce(buf, out, 8, Float64, OpSum)
		if out.Float64(0) != 5 {
			t.Errorf("single-rank allreduce = %v", out.Float64(0))
		}
		c.Allgather(buf, 8, Float64, out)
		c.Alltoall(buf, 8, Float64, out)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSubsetExcludesNonMembers(t *testing.T) {
	j := newTestJob(t, 4)
	err := j.Run(func(c *Comm) {
		// Rank 1 sits out entirely — MPI_Comm_create_group semantics: the
		// excluded rank is not asked to participate in the rendezvous.
		if c.Rank() == 1 {
			return
		}
		sub := c.Subset([]int{0, 2, 3})
		if sub.Size() != 3 {
			t.Errorf("subset size = %d, want 3", sub.Size())
		}
		wantLocal := map[int]int{0: 0, 2: 1, 3: 2}[c.Rank()]
		if sub.Rank() != wantLocal {
			t.Errorf("rank %d got subset rank %d, want %d", c.Rank(), sub.Rank(), wantLocal)
		}
		if sub.WorldRank() != c.Rank() || sub.WorldRankOf(sub.Rank()) != c.Rank() {
			t.Errorf("rank %d: world identity lost across Subset", c.Rank())
		}
		// Traffic on the subset must only involve its members.
		send := sub.Device().MustMalloc(8)
		recv := sub.Device().MustMalloc(8)
		send.SetFloat64(0, float64(c.Rank()))
		sub.Allreduce(send, recv, 1, Float64, OpSum)
		if want := 0.0 + 2 + 3; recv.Float64(0) != want {
			t.Errorf("rank %d subset sum = %v, want %v", c.Rank(), recv.Float64(0), want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
