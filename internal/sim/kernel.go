// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue. Simulated activities
// are "processes": ordinary Go functions running on their own goroutines,
// but scheduled cooperatively so that exactly one process (or the kernel
// loop itself) executes at any moment. A process advances virtual time by
// sleeping, or blocks on synchronization primitives (Event, Chan, Resource,
// Barrier) until another process wakes it. Because hand-off between the
// kernel and processes is strictly sequential and the event queue breaks
// ties by insertion order, a simulation is fully deterministic: the same
// program produces the same virtual-time trace on every run.
//
// This kernel is the substrate for the simulated cluster: every MPI rank,
// device stream, and fabric transfer in this repository is a sim process.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time is an instant on the virtual clock, expressed as an offset from the
// simulation epoch (time zero). Durations use the standard library's
// time.Duration; one tick is one virtual nanosecond.
type Time = time.Duration

// event is a scheduled callback. seq orders events with equal fire times so
// the queue pops them in schedule order, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	yield   chan struct{}
	current *Proc
	procs   map[int]*Proc
	nextPID int
	alive   int
	running bool
	stopped bool
}

// NewKernel returns a kernel with an empty event queue and the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule enqueues fn to run at virtual time at. It may be called from the
// kernel loop or from the currently executing process; both are serialized.
func (k *Kernel) schedule(at Time, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// After schedules fn to run after delay d of virtual time. It is the
// non-blocking timer primitive; processes that want to block should use
// Proc.Sleep instead.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.schedule(k.now+d, fn)
}

// Spawn creates a new process running fn and schedules its first activation
// at the current virtual time. It may be called before Run or from inside a
// running process.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextPID,
		name:   name,
		resume: make(chan struct{}),
		done:   NewEvent(k),
	}
	k.nextPID++
	k.procs[p.id] = p
	k.alive++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		if !p.daemon {
			k.alive--
		}
		delete(k.procs, p.id)
		p.done.Fire()
		k.yield <- struct{}{}
	}()
	k.schedule(k.now, func() { k.activate(p) })
	return p
}

// SpawnDaemon creates a background service process. Daemons do not keep the
// simulation alive and are not reported as deadlocked: a run in which only
// daemons remain blocked (e.g. device streams waiting for work) terminates
// normally. Use daemons for server loops, streams, and progress engines.
func (k *Kernel) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := k.Spawn(name, fn)
	p.daemon = true
	k.alive--
	return p
}

// activate hands control to p and waits until p parks or exits. It must run
// from the kernel loop.
func (k *Kernel) activate(p *Proc) {
	if p.dead {
		return
	}
	prev := k.current
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	k.current = prev
}

// Stop aborts the simulation: Run returns after the current event completes.
// Outstanding processes are left parked; Run does not report them as a
// deadlock when stopped deliberately.
func (k *Kernel) Stop() { k.stopped = true }

// DeadlockError reports that the event queue drained while processes were
// still blocked — the virtual-time analogue of a hung program.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; blocked: %s", e.Now, strings.Join(e.Blocked, ", "))
}

// Run executes events until the queue drains or Stop is called. It returns a
// *DeadlockError if processes remain blocked with no pending events.
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.queue.Len() > 0 && !k.stopped {
		ev := heap.Pop(&k.queue).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		k.now = ev.at
		ev.fn()
	}
	if k.stopped {
		return nil
	}
	if k.alive > 0 {
		var blocked []string
		for _, p := range k.procs {
			if p.daemon {
				continue
			}
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.blocked))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: k.now, Blocked: blocked}
	}
	return nil
}

// RunFor executes events until virtual time advances past the given horizon,
// then stops. Events at exactly now+d still run.
func (k *Kernel) RunFor(d time.Duration) error {
	k.schedule(k.now+d, func() { k.Stop() })
	return k.Run()
}
