// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and an event queue. Simulated activities
// are "processes": ordinary Go functions running on their own goroutines,
// but scheduled cooperatively so that exactly one process (or the kernel
// loop itself) executes at any moment. A process advances virtual time by
// sleeping, or blocks on synchronization primitives (Event, Chan, Resource,
// Barrier) until another process wakes it. Because hand-off between the
// kernel and processes is strictly sequential and the event queue breaks
// ties by insertion order, a simulation is fully deterministic: the same
// program produces the same virtual-time trace on every run.
//
// This kernel is the substrate for the simulated cluster: every MPI rank,
// device stream, and fabric transfer in this repository is a sim process.
//
// # Scheduling internals
//
// Two hot-path design choices keep the kernel off the wall-clock profile
// (docs/ARCHITECTURE.md, "Simulator performance"):
//
//   - Events are values in a 4-ary index heap, not pointers in a
//     container/heap. The backing slice is the free list: popped slots are
//     reused by later pushes, so steady-state scheduling performs zero heap
//     allocations. Process activations carry the *Proc directly instead of
//     a heap-allocated closure.
//
//   - The dispatch loop migrates to whichever goroutine holds the
//     "scheduler token". When a process parks it does not bounce control
//     through a central kernel goroutine; it pops and executes events
//     itself until one activates another process (one channel hand-off)
//     or itself (zero hand-offs — the dominant Sleep/park/unpark cycle).
package sim

import (
	"fmt"
	"time"
)

// Time is an instant on the virtual clock, expressed as an offset from the
// simulation epoch (time zero). Durations use the standard library's
// time.Duration; one tick is one virtual nanosecond.
type Time = time.Duration

// event is a scheduled occurrence. seq orders events with equal fire times
// so the queue pops them in schedule order, keeping runs deterministic.
// Exactly one of proc and fn is set: proc marks a process activation (the
// allocation-free fast path), fn a general callback.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func()
}

// eventQueue is a 4-ary min-heap of event values ordered by (at, seq). The
// wider fan-out halves the tree depth of the binary heap it replaces, and
// value storage removes the per-event allocation and interface boxing of
// container/heap.
type eventQueue []event

func (q eventQueue) before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev event) {
	s := append(*q, ev)
	// Sift up with a hole instead of pairwise swaps.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.before(&ev, &s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ev
	*q = s
}

func (q *eventQueue) pop() event {
	s := *q
	top := s[0]
	last := len(s) - 1
	ev := s[last]
	s[last] = event{} // release proc/fn references into the free list slot
	s = s[:last]
	*q = s
	if last == 0 {
		return top
	}
	// Sift the former tail down from the root with a hole.
	i := 0
	for {
		c := i*4 + 1
		if c >= last {
			break
		}
		end := c + 4
		if end > last {
			end = last
		}
		min := c
		for j := c + 1; j < end; j++ {
			if s.before(&s[j], &s[min]) {
				min = j
			}
		}
		if !s.before(&s[min], &ev) {
			break
		}
		s[i] = s[min]
		i = min
	}
	s[i] = ev
	return top
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	idle    chan struct{} // returns the scheduler token to Run
	procs   map[int]*Proc
	nextPID int
	alive   int
	running bool
	stopped bool

	// Window-bounded dispatch (see shard.go): when bounded is set, dispatch
	// stops before popping any event at or after horizon, leaving the queue
	// and all parked processes intact for the next window.
	bounded bool
	horizon Time

	// Shard identity: a kernel created by (or adopted into) a Sharded engine
	// knows its shard index and owner so Run can delegate to the engine's
	// window loop.
	shard int
	owner *Sharded
}

// NewKernel returns a kernel with an empty event queue and the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		idle:  make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule enqueues fn to run at virtual time at. It may be called from the
// kernel loop or from the currently executing process; both are serialized.
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.queue.push(event{at: at, seq: k.seq, fn: fn})
	k.seq++
}

// scheduleProc enqueues an activation of p at virtual time at. This is the
// allocation-free fast path behind Sleep, unpark, and Spawn.
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	if at < k.now {
		at = k.now
	}
	k.queue.push(event{at: at, seq: k.seq, proc: p})
	k.seq++
}

// After schedules fn to run after delay d of virtual time. It is the
// non-blocking timer primitive; processes that want to block should use
// Proc.Sleep instead.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.schedule(k.now+d, fn)
}

// Spawn creates a new process running fn and schedules its first activation
// at the current virtual time. It may be called before Run or from inside a
// running process.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextPID,
		name:   name,
		resume: make(chan struct{}),
		done:   NewEvent(k),
	}
	k.nextPID++
	k.procs[p.id] = p
	k.alive++
	go func() {
		<-p.resume
		fn(p)
		p.dead = true
		if !p.daemon {
			k.alive--
		}
		delete(k.procs, p.id)
		p.done.Fire()
		// The goroutine exits holding the scheduler token: keep dispatching
		// until the token moves on. Self-activation cannot occur (p is dead,
		// so stale activations of p are skipped).
		k.dispatch(p)
	}()
	k.scheduleProc(k.now, p)
	return p
}

// SpawnDaemon creates a background service process. Daemons do not keep the
// simulation alive and are not reported as deadlocked: a run in which only
// daemons remain blocked (e.g. device streams waiting for work) terminates
// normally. Use daemons for server loops, streams, and progress engines.
func (k *Kernel) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := k.Spawn(name, fn)
	p.daemon = true
	k.alive--
	return p
}

// dispatch runs the event loop on the calling goroutine. Exactly one
// goroutine dispatches at a time — the "scheduler token" — so all kernel
// state stays single-threaded even though many goroutines exist. The loop
// exits when:
//
//   - an event activates self: dispatch returns false and the caller simply
//     keeps running (no channel operation at all);
//   - an event activates another process: the token is handed to it over
//     its resume channel and dispatch returns true;
//   - the queue drains or Stop was called: the token is returned to Run via
//     the idle channel (unless the Run goroutine itself, self == nil, is
//     dispatching) and dispatch returns true.
//
// A true return tells a parking process to wait for its own resume signal.
func (k *Kernel) dispatch(self *Proc) bool {
	for !k.stopped && len(k.queue) > 0 {
		if k.bounded && k.queue[0].at >= k.horizon {
			break // window exhausted: leave future events for the next window
		}
		ev := k.queue.pop()
		k.now = ev.at
		if p := ev.proc; p != nil {
			if p.dead {
				continue // stale activation of an exited process
			}
			if p == self {
				return false
			}
			p.resume <- struct{}{}
			return true
		}
		if ev.fn != nil {
			ev.fn()
		}
	}
	if self != nil {
		k.idle <- struct{}{}
		return true
	}
	return false
}

// Stop aborts the simulation: Run returns after the current event completes.
// Outstanding processes are left parked; Run does not report them as a
// deadlock when stopped deliberately.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns a
// *DeadlockError if processes remain blocked with no pending events.
//
// A kernel adopted into a Sharded engine delegates to the engine's window
// loop, so existing call sites (omb, dl, mpi job runners) work unchanged
// whether the world is serial or sharded.
func (k *Kernel) Run() error {
	if k.owner != nil {
		return k.owner.Run()
	}
	return k.runSerial()
}

func (k *Kernel) runSerial() error {
	if k.running {
		return fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()
	if k.dispatch(nil) {
		// The token went to a process; it comes back when the queue drains.
		<-k.idle
	}
	if k.stopped {
		return nil
	}
	if k.alive > 0 {
		return &DeadlockError{Now: k.now, Blocked: k.blockedNames()}
	}
	return nil
}

// runWindow executes events strictly before horizon on the calling goroutine
// and returns with the queue and parked processes intact. It is the per-shard
// body of one conservative synchronization window (see shard.go).
func (k *Kernel) runWindow(horizon Time) {
	k.running = true
	k.bounded, k.horizon = true, horizon
	if k.dispatch(nil) {
		<-k.idle
	}
	k.bounded = false
	k.running = false
}

// nextAt reports the fire time of the earliest pending event, if any.
func (k *Kernel) nextAt() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// Shard reports the kernel's shard index within its owning Sharded engine
// (0 for a standalone kernel).
func (k *Kernel) Shard() int { return k.shard }

// RunFor executes events until virtual time advances past the given horizon,
// then stops. Events at exactly now+d still run.
func (k *Kernel) RunFor(d time.Duration) error {
	k.schedule(k.now+d, func() { k.Stop() })
	return k.Run()
}
