package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRendezvousSenderBlocksUntilReceiver(t *testing.T) {
	k := NewKernel()
	ch := NewChan[string](k, 0)
	var sentAt, recvAt Time
	k.Spawn("sender", func(p *Proc) {
		ch.Send(p, "hi")
		sentAt = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(25 * us)
		if got := ch.Recv(p); got != "hi" {
			t.Errorf("recv = %q", got)
		}
		recvAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentAt != 25*us || recvAt != 25*us {
		t.Fatalf("sentAt=%v recvAt=%v, want both 25µs", sentAt, recvAt)
	}
}

func TestRendezvousReceiverBlocksUntilSender(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	var recvAt Time
	k.Spawn("receiver", func(p *Proc) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("sender", func(p *Proc) {
		p.Sleep(40 * us)
		ch.Send(p, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 40*us {
		t.Fatalf("recvAt = %v, want 40µs", recvAt)
	}
}

func TestBufferedSendDoesNotBlockUntilFull(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 2)
	var thirdSentAt Time
	k.Spawn("sender", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		if p.Now() != 0 {
			t.Errorf("buffered sends blocked, now=%v", p.Now())
		}
		ch.Send(p, 3) // blocks until a recv frees a slot
		thirdSentAt = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(15 * us)
		for i := 1; i <= 3; i++ {
			if got := ch.Recv(p); got != i {
				t.Errorf("recv = %d, want %d (FIFO)", got, i)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdSentAt != 15*us {
		t.Fatalf("third send completed at %v, want 15µs", thirdSentAt)
	}
}

func TestTrySendTryRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 1)
	k.Spawn("p", func(p *Proc) {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !ch.TrySend(7) {
			t.Error("TrySend with free buffer failed")
		}
		if ch.TrySend(8) {
			t.Error("TrySend on full buffer succeeded")
		}
		if ch.Len() != 1 {
			t.Errorf("Len = %d", ch.Len())
		}
		v, ok := ch.TryRecv()
		if !ok || v != 7 {
			t.Errorf("TryRecv = %d,%v", v, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanFIFOAmongBlockedSenders(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("sender", func(p *Proc) {
			p.Sleep(time.Duration(i) * us)
			ch.Send(p, i)
		})
	}
	k.Spawn("receiver", func(p *Proc) {
		p.Sleep(100 * us)
		for i := 0; i < 4; i++ {
			if got := ch.Recv(p); got != i {
				t.Errorf("recv %d = %d, want FIFO", i, got)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: every value sent is received exactly once, in order, for any
// buffer capacity and message count.
func TestChanDeliveryProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw % 8)
		n := int(nRaw%32) + 1
		k := NewKernel()
		ch := NewChan[int](k, capacity)
		var got []int
		k.Spawn("sender", func(p *Proc) {
			for i := 0; i < n; i++ {
				ch.Send(p, i)
			}
		})
		k.Spawn("receiver", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, ch.Recv(p))
				p.Sleep(us)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializesWhenFull(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, 1, 10*us)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * us, 20 * us, 30 * us}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelWithinCapacity(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 4)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Use(p, 1, 10*us)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range ends {
		if e != 10*us {
			t.Fatalf("ends = %v, want all 10µs", ends)
		}
	}
}

func TestResourceFIFOPreventsStarvation(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 2)
	var order []string
	k.Spawn("small1", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * us)
		r.Release(1)
		order = append(order, "small1")
	})
	k.Spawn("big", func(p *Proc) {
		p.Sleep(us)
		r.Acquire(p, 2) // queued behind small1's hold
		p.Sleep(10 * us)
		r.Release(2)
		order = append(order, "big")
	})
	k.Spawn("small2", func(p *Proc) {
		p.Sleep(2 * us)
		r.Acquire(p, 1) // must wait for big even though a unit is free
		p.Sleep(10 * us)
		r.Release(1)
		order = append(order, "small2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "small1" || order[1] != "big" || order[2] != "small2" {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceOversizedRequestClamps(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 2)
	k.Spawn("p", func(p *Proc) {
		r.Acquire(p, 10) // clamps to capacity rather than deadlocking
		if r.InUse() != 2 {
			t.Errorf("InUse = %d", r.InUse())
		}
		r.Release(2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
