package sim

import "time"

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All Proc methods must be called from the process's own function
// (the fn passed to Kernel.Spawn); they are not safe to call from outside
// the simulation.
type Proc struct {
	k       *Kernel
	id      int
	name    string
	resume  chan struct{}
	done    *Event
	dead    bool
	daemon  bool
	blocked string
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// ID returns the process id, unique within its kernel.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Done returns an event fired when the process function returns.
func (p *Proc) Done() *Event { return p.done }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park blocks the process until another event resumes it. reason is shown in
// deadlock reports. The parking goroutine keeps the scheduler token and
// dispatches further events itself; it only blocks on its resume channel
// when the token moves to another process (see Kernel.dispatch).
func (p *Proc) park(reason string) {
	p.blocked = reason
	if p.k.dispatch(p) {
		<-p.resume
	}
	p.blocked = ""
}

// unpark schedules the process to resume at the current virtual time.
func (p *Proc) unpark() {
	k := p.k
	k.scheduleProc(k.now, p)
}

// Sleep blocks the process for d of virtual time. Non-positive durations
// yield the processor (the process resumes at the same virtual instant,
// after already-queued events). When no other process is runnable earlier,
// the sleeping process re-activates itself without any goroutine hand-off.
func (p *Proc) Sleep(d time.Duration) {
	k := p.k
	if d < 0 {
		d = 0
	}
	k.scheduleProc(k.now+d, p)
	p.park("sleep")
}

// Yield lets other events scheduled for the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until q's function has returned. Joining an already-finished
// process returns immediately.
func (p *Proc) Join(q *Proc) { q.done.Wait(p) }
