package sim

import (
	"errors"
	"testing"
	"time"
)

// ringWorld builds the same token-ring model partitioned over a varying
// number of shards: nodes pass an accumulating token around a ring, each hop
// priced hopDelay (>= the engine lookahead), with per-node local busy-work
// sleeps to skew shard clocks. Virtual completion time and the accumulated
// sum must be identical for every shard count.
func ringWorld(t *testing.T, nodes, shards int, hop Time) (sum uint64, virt Time) {
	t.Helper()
	s := NewSharded(shards, hop)
	mail := make([]*Chan[uint64], nodes)
	shardOf := func(node int) int { return node * shards / nodes }
	for n := 0; n < nodes; n++ {
		mail[n] = NewChan[uint64](s.Kernel(shardOf(n)), 4)
	}
	var got uint64
	var last Time
	for n := 0; n < nodes; n++ {
		n := n
		k := s.Kernel(shardOf(n))
		k.Spawn("node", func(p *Proc) {
			// Skewed local work before joining the ring.
			p.Sleep(Time(n%3) * 100 * time.Nanosecond)
			if n == 0 {
				// Two full laps.
				v := uint64(1)
				next := (n + 1) % nodes
				s.Send(p, shardOf(next), hop, func() {
					if !mail[next].TrySend(v) {
						panic("mailbox full")
					}
				})
				for lap := 0; lap < 2; lap++ {
					v = mail[n].Recv(p)
					if lap == 0 {
						next := (n + 1) % nodes
						w := v + 1
						s.Send(p, shardOf(next), hop, func() {
							if !mail[next].TrySend(w) {
								panic("mailbox full")
							}
						})
					}
				}
				got, last = v, p.Now()
				return
			}
			for lap := 0; lap < 2; lap++ {
				v := mail[n].Recv(p)
				p.Sleep(50 * time.Nanosecond) // per-hop processing
				next := (n + 1) % nodes
				w := v + 1
				s.Send(p, shardOf(next), hop, func() {
					if !mail[next].TrySend(w) {
						panic("mailbox full")
					}
				})
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return got, last
}

func TestShardedRingDeterministic(t *testing.T) {
	const nodes = 8
	const hop = 2500 * time.Nanosecond
	baseSum, baseVirt := ringWorld(t, nodes, 1, hop)
	if baseSum != uint64(2*nodes) {
		t.Fatalf("serial sum = %d, want %d", baseSum, 2*nodes)
	}
	for _, shards := range []int{2, 4, 8} {
		sum, virt := ringWorld(t, nodes, shards, hop)
		if sum != baseSum || virt != baseVirt {
			t.Errorf("shards=%d: (sum,virt) = (%d,%v), serial = (%d,%v)",
				shards, sum, virt, baseSum, baseVirt)
		}
	}
}

func TestShardedBarrierAdvanceFallback(t *testing.T) {
	// Zero lookahead: the engine must fall back to one-tick windows and
	// still produce the serial result.
	const nodes = 4
	baseSum, baseVirt := ringWorld(t, nodes, 1, 0)
	sum, virt := ringWorld(t, nodes, 4, 0)
	if sum != baseSum || virt != baseVirt {
		t.Fatalf("barrier-advance: (sum,virt) = (%d,%v), serial = (%d,%v)",
			sum, virt, baseSum, baseVirt)
	}
}

func TestShardedInjectLookaheadViolationPanics(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	s.Kernel(0).Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Inject below lookahead did not panic")
			}
		}()
		s.Inject(0, 1, p.Now()+time.Nanosecond, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdoptedKernelRunsSerially(t *testing.T) {
	// The same single-kernel program must produce identical virtual results
	// standalone and adopted as shard 0 of a 4-shard engine (peers inert).
	build := func(k *Kernel) *Time {
		done := new(Time)
		ch := NewChan[int](k, 1)
		k.Spawn("producer", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(700 * time.Nanosecond)
				ch.Send(p, i)
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 100; i++ {
				ch.Recv(p)
				p.Sleep(300 * time.Nanosecond)
			}
			*done = p.Now()
		})
		return done
	}

	serial := NewKernel()
	sDone := build(serial)
	if err := serial.Run(); err != nil {
		t.Fatal(err)
	}

	adopted := NewKernel()
	eng := Adopt(adopted, 4, 2500*time.Nanosecond)
	aDone := build(adopted)
	if adopted.Shard() != 0 || eng.Shards() != 4 {
		t.Fatalf("adopt wiring: shard=%d shards=%d", adopted.Shard(), eng.Shards())
	}
	// kernel.Run must transparently delegate to the engine's window loop.
	if err := adopted.Run(); err != nil {
		t.Fatal(err)
	}
	if *aDone != *sDone || adopted.Now() != serial.Now() {
		t.Fatalf("adopted virt %v/%v, serial %v/%v", *aDone, adopted.Now(), *sDone, serial.Now())
	}
}

func TestShardedCrossShardDeadlock(t *testing.T) {
	s := NewSharded(2, time.Microsecond)
	ev := NewEvent(s.Kernel(1))
	s.Kernel(1).Spawn("waiter", func(p *Proc) {
		ev.Wait(p) // nobody ever fires this
	})
	s.Kernel(0).Spawn("worker", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
	})
	err := s.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "waiter(event)" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestShardedRunFor(t *testing.T) {
	// RunFor on an adopted kernel must stop the window loop exactly where
	// the serial kernel would stop.
	run := func(adopt bool) (ticks int) {
		k := NewKernel()
		if adopt {
			Adopt(k, 2, time.Microsecond)
		}
		k.SpawnDaemon("ticker", func(p *Proc) {
			for {
				p.Sleep(time.Millisecond)
				ticks++
			}
		})
		if err := k.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		return ticks
	}
	serial, sharded := run(false), run(true)
	if serial != sharded || serial == 0 {
		t.Fatalf("ticks: serial %d, sharded %d", serial, sharded)
	}
}

func TestAdoptRejectsDoubleAdoption(t *testing.T) {
	k := NewKernel()
	Adopt(k, 2, 0)
	defer func() {
		if recover() == nil {
			t.Error("second Adopt did not panic")
		}
	}()
	Adopt(k, 2, 0)
}
