package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * us)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*us {
		t.Fatalf("woke at %v, want 10µs", at)
	}
	if k.Now() != 10*us {
		t.Fatalf("kernel now %v, want 10µs", k.Now())
	}
}

func TestNegativeSleepClampsToNow(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(5 * us)
		p.Sleep(-3 * us)
		if p.Now() != 5*us {
			t.Errorf("negative sleep moved clock to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventOrderingByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(30*us, func() { order = append(order, 3) })
	k.After(10*us, func() { order = append(order, 1) })
	k.After(20*us, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakByScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.After(5*us, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(7 * us)
		child := k.Spawn("child", func(c *Proc) {
			c.Sleep(3 * us)
			childAt = c.Now()
		})
		p.Join(child)
		if p.Now() != 10*us {
			t.Errorf("parent resumed at %v, want 10µs", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 10*us {
		t.Fatalf("child finished at %v, want 10µs", childAt)
	}
}

func TestJoinFinishedProcReturnsImmediately(t *testing.T) {
	k := NewKernel()
	done := k.Spawn("fast", func(p *Proc) {})
	k.Spawn("joiner", func(p *Proc) {
		p.Sleep(50 * us)
		p.Join(done)
		if p.Now() != 50*us {
			t.Errorf("join of finished proc advanced clock to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	k.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
}

func TestStopEndsRunWithoutDeadlock(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	k.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	k.After(time.Millisecond, func() { k.Stop() })
	if err := k.Run(); err != nil {
		t.Fatalf("stopped run returned %v", err)
	}
}

func TestRunFor(t *testing.T) {
	k := NewKernel()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		k.After(10*us, tick)
	}
	k.After(10*us, tick)
	if err := k.RunFor(95 * us); err != nil {
		t.Fatal(err)
	}
	if ticks != 9 {
		t.Fatalf("ticks = %d, want 9", ticks)
	}
}

func TestEventBroadcastWakesAllAtSameInstant(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	wake := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			wake[i] = p.Now()
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(42 * us)
		ev.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, w := range wake {
		if w != 42*us {
			t.Fatalf("waiter %d woke at %v", i, w)
		}
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	ev.Fire()
	if !ev.Fired() {
		t.Fatal("Fired() = false after Fire")
	}
	k.Spawn("p", func(p *Proc) {
		ev.Wait(p)
		if p.Now() != 0 {
			t.Errorf("wait on fired event advanced clock")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFireIsNoop(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	ev.Fire()
	ev.Fire()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	k := NewKernel()
	c := NewCounter(k, 3)
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * 10 * us
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			c.Done()
		})
	}
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 30*us {
		t.Fatalf("counter released at %v, want 30µs", at)
	}
}

func TestCounterZeroIsImmediatelyDone(t *testing.T) {
	k := NewKernel()
	c := NewCounter(k, 0)
	k.Spawn("p", func(p *Proc) {
		c.Wait(p)
		if p.Now() != 0 {
			t.Errorf("zero counter blocked")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesTogetherAndIsReusable(t *testing.T) {
	k := NewKernel()
	const parties = 4
	b := NewBarrier(k, parties)
	rounds := make([][]Time, 2)
	rounds[0] = make([]Time, parties)
	rounds[1] = make([]Time, parties)
	for i := 0; i < parties; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i+1) * 10 * us)
			b.Wait(p)
			rounds[0][i] = p.Now()
			p.Sleep(time.Duration(parties-i) * 5 * us)
			b.Wait(p)
			rounds[1][i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parties; i++ {
		if rounds[0][i] != 40*us {
			t.Fatalf("round 0 party %d released at %v, want 40µs", i, rounds[0][i])
		}
		if rounds[1][i] != 60*us {
			t.Fatalf("round 1 party %d released at %v, want 60µs", i, rounds[1][i])
		}
	}
}

func TestBarrierSingleParty(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 1)
	k.Spawn("p", func(p *Proc) {
		b.Wait(p) // must not block
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		var trace []string
		k := NewKernel()
		ch := NewChan[int](k, 2)
		for i := 0; i < 5; i++ {
			i := i
			k.Spawn(fmt.Sprintf("send%d", i), func(p *Proc) {
				p.Sleep(time.Duration(i) * us)
				ch.Send(p, i)
				trace = append(trace, fmt.Sprintf("s%d@%v", i, p.Now()))
			})
		}
		k.Spawn("recv", func(p *Proc) {
			for j := 0; j < 5; j++ {
				v := ch.Recv(p)
				trace = append(trace, fmt.Sprintf("r%d@%v", v, p.Now()))
				p.Sleep(3 * us)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
	}
}

// Property: for any set of sleep durations, processes complete in sorted
// order of their durations and the kernel clock ends at the maximum.
func TestSleepOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		k := NewKernel()
		var finished []time.Duration
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r) * us
			if d > max {
				max = d
			}
			k.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, d)
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		if k.Now() != max {
			return false
		}
		for i := 1; i < len(finished); i++ {
			if finished[i] < finished[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
