package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Sharded is a partitioned discrete-event engine: N plain Kernels, each with
// its private clock, event heap, and scheduler token, executing concurrently
// on their own OS threads inside conservative synchronization windows.
//
// # Conservative lookahead
//
// The engine advances in windows [T, T+L) where T is the earliest pending
// event across all shards and L is the lookahead: the minimum virtual latency
// of any cross-shard interaction (for node-aligned partitions of an α–β
// fabric, the inter-node link α). Within a window every shard runs
// independently — no shard can receive a cross-shard message timestamped
// before T+L, so events below the horizon are safe to execute out of
// wall-clock order. When L degenerates to zero (a topology with zero-latency
// cross-shard edges), the engine falls back to barrier-advance: windows of a
// single virtual nanosecond, correct but with no intra-window parallelism.
//
// # Cross-shard messages
//
// Code running on shard i sends to shard j with Inject/Send: a timestamped
// event injection buffered in shard i's outbox (single-writer: only the
// goroutine holding shard i's scheduler token appends). At the window
// barrier the coordinator merges all outboxes, sorts by (timestamp, sender
// shard, sender issue order), and schedules each injection on its
// destination kernel. The sort makes delivery order independent of
// wall-clock interleaving; models must additionally keep same-timestamp
// injections to one destination commutative (or single-source), because two
// injections carrying equal timestamps from different senders may be
// enqueued in either relative order versus a different shard count's run.
//
// # Determinism
//
// Each shard is a full deterministic Kernel; all mutable model state must be
// shard-local (touched only by processes of one shard) or handed off through
// injections. Under that discipline the virtual-time trace is bit-identical
// for any shard count, which the golden-trace and scale tests assert.
type Sharded struct {
	shards    []*Kernel
	lookahead Time

	// outbox[i] holds injections issued by shard i during the current
	// window. Written only by shard i's token holder, drained only by the
	// coordinator between windows (the WaitGroup barrier orders the two).
	outbox [][]injection
	injSeq []uint64

	running bool
}

// injection is one buffered cross-shard event.
type injection struct {
	at   Time
	from int
	seq  uint64 // sender-local issue order, tie-break after (at, from)
	to   int
	fn   func()
}

// NewSharded creates a partitioned engine with n fresh kernels. lookahead is
// the conservative synchronization horizon: no cross-shard injection may be
// timestamped earlier than sender-now + lookahead. A lookahead of zero (or
// negative) selects the barrier-advance fallback.
func NewSharded(n int, lookahead Time) *Sharded {
	if n < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	s := &Sharded{
		lookahead: lookahead,
		outbox:    make([][]injection, n),
		injSeq:    make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		k := NewKernel()
		k.shard, k.owner = i, s
		s.shards = append(s.shards, k)
	}
	return s
}

// Adopt wraps an existing kernel as shard 0 of a new n-shard engine,
// creating n-1 fresh peers. Worlds whose processes share Go state freely
// (every exhibit world: cross-rank sim channels, shared schedules) cannot be
// partitioned after the fact; adopting keeps them on one shard — the peers
// stay inert and the engine degenerates to windowed serial execution with
// identical virtual-time results — while kernel.Run call sites transparently
// go through the window loop. Must be called before the kernel runs.
func Adopt(k *Kernel, n int, lookahead Time) *Sharded {
	if k.owner != nil {
		panic("sim: kernel already belongs to a sharded engine")
	}
	if k.running {
		panic("sim: cannot adopt a running kernel")
	}
	if n < 1 {
		panic("sim: Adopt needs at least one shard")
	}
	s := &Sharded{
		lookahead: lookahead,
		outbox:    make([][]injection, n),
		injSeq:    make([]uint64, n),
	}
	k.shard, k.owner = 0, s
	s.shards = append(s.shards, k)
	for i := 1; i < n; i++ {
		p := NewKernel()
		p.shard, p.owner = i, s
		s.shards = append(s.shards, p)
	}
	return s
}

// Shards reports the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Kernel returns shard i's kernel, for spawning processes and building
// shard-local worlds.
func (s *Sharded) Kernel(i int) *Kernel { return s.shards[i] }

// Lookahead reports the conservative horizon the engine was built with.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// Now reports the engine clock: the maximum shard clock (the completion time
// of the last event executed anywhere).
func (s *Sharded) Now() Time {
	var t Time
	for _, k := range s.shards {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// Inject schedules fn at virtual time at on shard to, issued by shard from.
// It must be called while holding shard from's scheduler token (i.e. from a
// process or event callback running on that shard). In conservative mode at
// must be at least sender-now + lookahead; violating that is a model bug
// (the event could land in the destination's past) and panics.
//
// Before the engine runs, Inject schedules directly — setup code may seed
// any shard at any time.
func (s *Sharded) Inject(from, to int, at Time, fn func()) {
	if to < 0 || to >= len(s.shards) || from < 0 || from >= len(s.shards) {
		panic("sim: Inject shard index out of range")
	}
	if !s.running {
		s.shards[to].schedule(at, fn)
		return
	}
	now := s.shards[from].now
	if s.lookahead > 0 && at < now+s.lookahead {
		panic(fmt.Sprintf("sim: Inject at t=%v violates lookahead (sender now %v + %v)", at, now, s.lookahead))
	}
	if at < now {
		panic(fmt.Sprintf("sim: Inject at t=%v is in the sender's past (now %v)", at, now))
	}
	s.outbox[from] = append(s.outbox[from], injection{at: at, from: from, seq: s.injSeq[from], to: to, fn: fn})
	s.injSeq[from]++
}

// Send is the process-level convenience over Inject: deliver fn on shard to
// after delay of virtual time from p's current instant. delay must be at
// least the lookahead (physically: a cross-shard hop costs at least the
// minimum link latency).
func (s *Sharded) Send(p *Proc, to int, delay Time, fn func()) {
	s.Inject(p.k.shard, to, p.Now()+delay, fn)
}

// minNext returns the earliest pending event time across all shards.
func (s *Sharded) minNext() (Time, bool) {
	var t Time
	ok := false
	for _, k := range s.shards {
		if at, has := k.nextAt(); has && (!ok || at < t) {
			t, ok = at, true
		}
	}
	return t, ok
}

// flush delivers all buffered injections in deterministic order:
// (timestamp, sender shard, sender issue order). Called only between
// windows, when no shard is dispatching.
func (s *Sharded) flush() {
	var batch []injection
	for i := range s.outbox {
		batch = append(batch, s.outbox[i]...)
		s.outbox[i] = s.outbox[i][:0]
	}
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(a, b int) bool {
		x, y := &batch[a], &batch[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.from != y.from {
			return x.from < y.from
		}
		return x.seq < y.seq
	})
	for _, inj := range batch {
		s.shards[inj.to].schedule(inj.at, inj.fn)
	}
}

func (s *Sharded) stopped() bool {
	for _, k := range s.shards {
		if k.stopped {
			return true
		}
	}
	return false
}

// Run executes the window loop until every shard drains or any shard is
// stopped. It returns a merged *DeadlockError if processes remain blocked
// engine-wide with no pending events anywhere (including a process on one
// shard waiting forever for an injection that no other shard will send).
func (s *Sharded) Run() error {
	if s.running {
		return fmt.Errorf("sim: sharded engine already running")
	}
	s.running = true
	defer func() { s.running = false }()

	for !s.stopped() {
		t, ok := s.minNext()
		if !ok {
			break
		}
		horizon := t + s.lookahead
		if s.lookahead <= 0 {
			horizon = t + 1 // barrier-advance fallback: one-tick windows
		}
		// Collect shards with work below the horizon; idle shards (empty
		// queue, possibly procs parked awaiting injections) cost nothing.
		var active []*Kernel
		for _, k := range s.shards {
			if at, has := k.nextAt(); has && at < horizon {
				active = append(active, k)
			}
		}
		switch len(active) {
		case 0:
			// Cannot happen: minNext found t < horizon on some shard.
			panic("sim: window with no active shard")
		case 1:
			// Single busy shard (the adopted-world degeneration): run it on
			// the coordinator goroutine, no hand-off.
			active[0].runWindow(horizon)
		default:
			var wg sync.WaitGroup
			for _, k := range active {
				wg.Add(1)
				go func(k *Kernel) {
					defer wg.Done()
					k.runWindow(horizon)
				}(k)
			}
			wg.Wait()
		}
		s.flush()
	}
	if s.stopped() {
		return nil
	}
	alive := 0
	for _, k := range s.shards {
		alive += k.alive
	}
	if alive > 0 {
		var blocked []string
		for _, k := range s.shards {
			blocked = append(blocked, k.blockedNames()...)
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: s.Now(), Blocked: blocked}
	}
	return nil
}
