// Cold diagnostic paths for the kernel. Everything here runs only when a
// simulation fails (deadlock reporting) — keeping it out of kernel.go keeps
// the hot-path file free of sort/strings and makes the scheduler loop easier
// to audit against the alloc-regression tests.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// DeadlockError reports that the event queue drained while processes were
// still blocked — the virtual-time analogue of a hung program.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; blocked: %s", e.Now, strings.Join(e.Blocked, ", "))
}

// blockedNames returns "name(reason)" for every non-daemon process still
// parked, sorted for stable error output.
func (k *Kernel) blockedNames() []string {
	var blocked []string
	for _, p := range k.procs {
		if p.daemon {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, p.blocked))
	}
	sort.Strings(blocked)
	return blocked
}
