package sim

import (
	"testing"
	"time"
)

// A waiter on an event that never fires must resolve to a timeout verdict at
// exactly now+d, and a waiter whose event fires in time must not observe the
// (uncancellable) stale timer.
func TestEventWaitTimeout(t *testing.T) {
	k := NewKernel()
	e := NewEvent(k)
	var fired bool
	var at time.Duration
	k.Spawn("waiter", func(p *Proc) {
		fired = e.WaitTimeout(p, 50*time.Microsecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired || at != 50*time.Microsecond {
		t.Errorf("wait on unfired event: fired=%v at %v; want timeout at 50µs", fired, at)
	}

	k2 := NewKernel()
	e2 := NewEvent(k2)
	k2.Spawn("firer", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		e2.Fire()
	})
	k2.Spawn("waiter", func(p *Proc) {
		fired = e2.WaitTimeout(p, 50*time.Microsecond)
		at = p.Now()
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || at != 10*time.Microsecond {
		t.Errorf("wait on fired event: fired=%v at %v; want fire at 10µs", fired, at)
	}
}

// A barrier party whose peer never arrives withdraws at its deadline; the
// arriving peers each time out on their own deadlines, so the whole group
// resolves in bounded virtual time. A full barrier releases normally.
func TestBarrierWaitTimeout(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 3) // only two parties will ever arrive
	results := make(map[int]bool)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("party", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // staggered arrival
			results[i] = b.WaitTimeout(p, 30*time.Microsecond)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if results[0] || results[1] {
		t.Errorf("short barrier released: %v; want both timeouts", results)
	}
	if len(b.waiting) != 0 {
		t.Errorf("%d waiters left behind after timeout", len(b.waiting))
	}

	k2 := NewKernel()
	b2 := NewBarrier(k2, 2)
	ok := [2]bool{}
	for i := 0; i < 2; i++ {
		i := i
		k2.Spawn("party", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond)
			ok[i] = b2.WaitTimeout(p, 30*time.Microsecond)
		})
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok[0] || !ok[1] {
		t.Errorf("full barrier: %v; want both released", ok)
	}
}

// RecvTimeout on a silent channel returns !ok at the deadline and withdraws
// its waiter node; a later send must then find no stale receiver. A send
// that beats the deadline delivers normally.
func TestChanRecvTimeout(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var got int
	var ok bool
	k.Spawn("rx", func(p *Proc) {
		got, ok = c.RecvTimeout(p, 20*time.Microsecond)
	})
	k.Spawn("late-tx", func(p *Proc) {
		p.Sleep(100 * time.Microsecond)
		if c.TrySend(7) {
			t.Error("send after receiver timeout was accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || got != 0 {
		t.Errorf("recv = %d, %v; want timeout", got, ok)
	}

	k2 := NewKernel()
	c2 := NewChan[int](k2, 0)
	k2.Spawn("tx", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		c2.Send(p, 42)
	})
	k2.Spawn("rx", func(p *Proc) {
		got, ok = c2.RecvTimeout(p, 20*time.Microsecond)
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Errorf("recv = %d, %v; want 42", got, ok)
	}
}

// SendTimeout on a full channel with no receiver reports failure without
// delivering; the buffered value count must be unchanged.
func TestChanSendTimeout(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 1)
	var accepted bool
	k.Spawn("tx", func(p *Proc) {
		c.Send(p, 1) // fills the buffer
		accepted = c.SendTimeout(p, 2, 20*time.Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Error("send into a full channel with no receiver reported success")
	}
	if c.Len() != 1 {
		t.Errorf("buffer holds %d values after timed-out send; want 1", c.Len())
	}
	if len(c.sendq) != 0 {
		t.Errorf("%d sender nodes left queued after timeout", len(c.sendq))
	}
}

// A waiter node recycled after a timeout must be safe to reuse immediately:
// the stale timer from the first wait must not disturb the second waiter.
func TestTimeoutNodeRecycling(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, 0)
	var first, second bool
	var got int
	k.Spawn("rx", func(p *Proc) {
		_, first = c.RecvTimeout(p, 10*time.Microsecond)
		// Immediately re-wait; the recycled node re-enters recvq while the
		// first timer is... already consumed, but a fresh deadline overlaps
		// the window where a buggy implementation would double-fire.
		got, second = c.RecvTimeout(p, 50*time.Microsecond)
	})
	k.Spawn("tx", func(p *Proc) {
		p.Sleep(30 * time.Microsecond)
		c.Send(p, 9)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Error("first recv should have timed out")
	}
	if !second || got != 9 {
		t.Errorf("second recv = %d, %v; want 9 delivered", got, second)
	}
}

// The watchdog must add nothing to the non-faulty path: a disarmed (d <= 0)
// timeout variant is the plain blocking call, so Send/Recv, Event.Wait, and
// Barrier.Wait through the *Timeout entry points stay at 0 allocs/op once
// the free lists are warm. This is the alloc-regression guard for the
// watchdog satellite: arming a deadline allocates (one timer closure), but
// nobody pays for it when no fault plan is attached.
func TestDisarmedTimeoutAllocs(t *testing.T) {
	k := NewKernel()
	warmQueue(k, 256)
	c := NewChan[int](k, 0)
	k.SpawnDaemon("rx", func(p *Proc) {
		for {
			if _, ok := c.RecvTimeout(p, 0); !ok {
				t.Error("disarmed RecvTimeout reported a timeout")
			}
		}
	})
	var sendAllocs, eventAllocs, barrierAllocs float64
	k.Spawn("tx", func(p *Proc) {
		c.SendTimeout(p, 0, 0) // warm the waiter free lists
		sendAllocs = testing.AllocsPerRun(100, func() {
			c.SendTimeout(p, 1, 0)
		})
		e := NewEvent(k)
		e.Fire()
		eventAllocs = testing.AllocsPerRun(100, func() {
			if !e.WaitTimeout(p, 0) {
				t.Error("disarmed WaitTimeout on fired event timed out")
			}
		})
		b := NewBarrier(k, 1)
		barrierAllocs = testing.AllocsPerRun(100, func() {
			if !b.WaitTimeout(p, 0) {
				t.Error("disarmed Barrier.WaitTimeout timed out")
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sendAllocs != 0 {
		t.Errorf("disarmed SendTimeout allocates %.2f objects per op; want 0", sendAllocs)
	}
	if eventAllocs != 0 {
		t.Errorf("disarmed Event.WaitTimeout allocates %.2f objects per op; want 0", eventAllocs)
	}
	if barrierAllocs != 0 {
		t.Errorf("disarmed Barrier.WaitTimeout allocates %.2f objects per op; want 0", barrierAllocs)
	}
}
