package sim

import (
	"testing"
	"time"
)

// These tests pin the allocation-free contract of the scheduler hot paths:
// steady-state event scheduling, the Sleep/park/unpark cycle, channel
// rendezvous, and Event.Fire must not allocate once their free lists and the
// event-queue backing array are warm. A regression here does not break
// correctness, but it puts the allocator back on the simulator's wall-clock
// profile, which is exactly what the PR-3 overhaul removed.

// warmQueue grows the event-queue backing array to at least n slots so that
// pushes during a measurement never trigger growslice.
func warmQueue(k *Kernel, n int) {
	fn := func() {}
	for i := 0; i < n; i++ {
		k.schedule(0, fn)
	}
	for len(k.queue) > 0 {
		k.queue.pop()
	}
}

func TestScheduleAllocs(t *testing.T) {
	k := NewKernel()
	warmQueue(k, 256)
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		k.schedule(0, fn)
		k.queue.pop()
	})
	if allocs != 0 {
		t.Errorf("Kernel.schedule allocates %.2f objects per call; want 0", allocs)
	}
}

func TestSleepAllocs(t *testing.T) {
	k := NewKernel()
	warmQueue(k, 256)
	var allocs float64
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Microsecond) // first pass through the path
		allocs = testing.AllocsPerRun(100, func() {
			p.Sleep(time.Microsecond)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("Proc.Sleep allocates %.2f objects per call; want 0", allocs)
	}
}

func TestChanSendRecvAllocs(t *testing.T) {
	k := NewKernel()
	warmQueue(k, 256)
	c := NewChan[int](k, 0)
	k.SpawnDaemon("rx", func(p *Proc) {
		for {
			c.Recv(p)
		}
	})
	var allocs float64
	k.Spawn("tx", func(p *Proc) {
		for i := 0; i < 8; i++ { // fill the waiter free lists
			c.Send(p, i)
		}
		allocs = testing.AllocsPerRun(100, func() {
			c.Send(p, 1)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("rendezvous Chan.Send/Recv allocates %.2f objects per round trip; want 0", allocs)
	}
}

func TestEventFireAllocs(t *testing.T) {
	k := NewKernel()
	warmQueue(k, 1024)
	const n = 101 // AllocsPerRun(100, f) invokes f 101 times
	events := make([]*Event, n)
	for i := range events {
		events[i] = NewEvent(k)
		ev := events[i]
		k.SpawnDaemon("waiter", func(p *Proc) { ev.Wait(p) })
	}
	var allocs float64
	k.Spawn("firer", func(p *Proc) {
		// All waiter daemons spawned before us have already parked in Wait.
		i := 0
		allocs = testing.AllocsPerRun(100, func() {
			events[i].Fire()
			i++
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("Event.Fire with one waiter allocates %.2f objects per call; want 0", allocs)
	}
}
