package sim

import (
	"testing"
	"time"
)

func TestDaemonDoesNotKeepSimulationAlive(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, 0)
	served := 0
	k.SpawnDaemon("server", func(p *Proc) {
		for {
			ch.Recv(p)
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Microsecond)
			ch.Send(p, i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("daemon reported as deadlock: %v", err)
	}
	if served != 3 {
		t.Fatalf("served = %d, want 3", served)
	}
}

func TestDeadlockReportExcludesDaemons(t *testing.T) {
	k := NewKernel()
	ev := NewEvent(k)
	k.SpawnDaemon("svc", func(p *Proc) { ev.Wait(p) })
	k.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck(event)" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}
