package sim

import (
	"testing"
	"time"
)

func TestAcquireUpToTakesAllFree(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 12)
	k.Spawn("p", func(p *Proc) {
		if got := r.AcquireUpTo(p, 16); got != 12 {
			t.Errorf("grant = %d, want 12 (clamped to capacity)", got)
		}
		r.Release(12)
		if got := r.AcquireUpTo(p, 4); got != 4 {
			t.Errorf("grant = %d, want 4", got)
		}
		r.Release(4)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireUpToTakesPartial(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 16)
	k.Spawn("first", func(p *Proc) {
		n := r.AcquireUpTo(p, 12)
		if n != 12 {
			t.Errorf("first grant = %d", n)
		}
		p.Sleep(10 * time.Microsecond)
		r.Release(n)
	})
	k.Spawn("second", func(p *Proc) {
		p.Sleep(time.Microsecond)
		n := r.AcquireUpTo(p, 12)
		if n != 4 {
			t.Errorf("second grant = %d, want leftover 4", n)
		}
		r.Release(n)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireUpToBlocksWhenEmptyThenGrants(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 8)
	k.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 8)
		p.Sleep(20 * time.Microsecond)
		r.Release(8)
	})
	var grantedAt Time
	var granted int
	k.Spawn("adaptive", func(p *Proc) {
		p.Sleep(time.Microsecond)
		granted = r.AcquireUpTo(p, 6)
		grantedAt = p.Now()
		r.Release(granted)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if grantedAt != 20*time.Microsecond {
		t.Fatalf("granted at %v, want 20µs", grantedAt)
	}
	if granted != 6 {
		t.Fatalf("granted = %d, want 6", granted)
	}
}

// Two opposing multi-channel users of a shared pool converge to roughly half
// each — the duplex-bandwidth-sharing behaviour the fabric relies on.
func TestAcquireUpToFairSharing(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, 16)
	totals := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("dir", func(p *Proc) {
			for chunk := 0; chunk < 50; chunk++ {
				n := r.AcquireUpTo(p, 12)
				totals[i] += n
				p.Sleep(time.Microsecond)
				r.Release(n)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	sum := totals[0] + totals[1]
	// Combined throughput should exceed a single direction's 12-channel cap.
	if sum < 50*14 {
		t.Fatalf("aggregate grants %d, want >= %d", sum, 50*14)
	}
	for i, tot := range totals {
		if tot < 50*4 {
			t.Fatalf("direction %d starved: %d", i, tot)
		}
	}
}
