package sim

// Chan is a virtual-time channel with Go-channel semantics: unbuffered
// channels rendezvous (the sender blocks until a receiver takes the value),
// buffered channels block the sender only when full. FIFO ordering holds for
// both values and blocked processes.
type Chan[T any] struct {
	k     *Kernel
	cap   int
	buf   []T
	sendq []*chanSend[T]
	recvq []*chanRecv[T]
}

type chanSend[T any] struct {
	p   *Proc
	val T
}

type chanRecv[T any] struct {
	p     *Proc
	val   T
	ready bool
}

// NewChan returns a channel with the given buffer capacity (0 = rendezvous).
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{k: k, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v on the channel, blocking p until a receiver or buffer slot
// is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	if len(c.recvq) > 0 {
		r := c.recvq[0]
		c.recvq = c.recvq[1:]
		r.val, r.ready = v, true
		r.p.unpark()
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := &chanSend[T]{p: p, val: v}
	c.sendq = append(c.sendq, w)
	p.park("chan send")
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted (a waiting receiver or free buffer slot existed).
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvq) > 0 {
		r := c.recvq[0]
		c.recvq = c.recvq[1:]
		r.val, r.ready = v, true
		r.p.unpark()
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv takes the next value, blocking p until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if v, ok := c.TryRecv(); ok {
		return v
	}
	w := &chanRecv[T]{p: p}
	c.recvq = append(c.recvq, w)
	p.park("chan recv")
	return w.val
}

// TryRecv takes the next value without blocking; ok reports success.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.val)
			s.p.unpark()
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		s := c.sendq[0]
		c.sendq = c.sendq[1:]
		s.p.unpark()
		return s.val, true
	}
	return v, false
}
