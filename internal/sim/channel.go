package sim

// Chan is a virtual-time channel with Go-channel semantics: unbuffered
// channels rendezvous (the sender blocks until a receiver takes the value),
// buffered channels block the sender only when full. FIFO ordering holds for
// both values and blocked processes.
//
// Waiter nodes are recycled through per-channel free lists, so steady-state
// Send/Recv traffic does not allocate (see the allocation-regression tests
// in alloc_test.go).
type Chan[T any] struct {
	k     *Kernel
	cap   int
	buf   []T
	sendq []*chanSend[T]
	recvq []*chanRecv[T]
	sfree []*chanSend[T]
	rfree []*chanRecv[T]
}

type chanSend[T any] struct {
	p   *Proc
	val T
}

type chanRecv[T any] struct {
	p     *Proc
	val   T
	ready bool
}

// NewChan returns a channel with the given buffer capacity (0 = rendezvous).
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	return &Chan[T]{k: k, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

func (c *Chan[T]) getSend(p *Proc, v T) *chanSend[T] {
	if n := len(c.sfree); n > 0 {
		w := c.sfree[n-1]
		c.sfree = c.sfree[:n-1]
		w.p, w.val = p, v
		return w
	}
	return &chanSend[T]{p: p, val: v}
}

func (c *Chan[T]) putSend(w *chanSend[T]) {
	var zero T
	w.p, w.val = nil, zero
	c.sfree = append(c.sfree, w)
}

func (c *Chan[T]) getRecv(p *Proc) *chanRecv[T] {
	if n := len(c.rfree); n > 0 {
		w := c.rfree[n-1]
		c.rfree = c.rfree[:n-1]
		w.p, w.ready = p, false
		return w
	}
	return &chanRecv[T]{p: p}
}

func (c *Chan[T]) putRecv(w *chanRecv[T]) {
	var zero T
	w.p, w.val = nil, zero
	c.rfree = append(c.rfree, w)
}

// Send delivers v on the channel, blocking p until a receiver or buffer slot
// is available.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.TrySend(v) {
		return
	}
	w := c.getSend(p, v)
	c.sendq = append(c.sendq, w)
	p.park("chan send")
	c.putSend(w)
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted (a waiting receiver or free buffer slot existed).
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvq) > 0 {
		r := c.recvq[0]
		c.recvq = dequeue(c.recvq)
		r.val, r.ready = v, true
		r.p.unpark()
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv takes the next value, blocking p until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if v, ok := c.TryRecv(); ok {
		return v
	}
	w := c.getRecv(p)
	c.recvq = append(c.recvq, w)
	p.park("chan recv")
	v := w.val
	c.putRecv(w)
	return v
}

// TryRecv takes the next value without blocking; ok reports success.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = dequeue(c.buf)
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = dequeue(c.sendq)
			c.buf = append(c.buf, s.val)
			s.p.unpark()
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		s := c.sendq[0]
		c.sendq = dequeue(c.sendq)
		s.p.unpark()
		return s.val, true
	}
	return v, false
}

// dequeue removes q[0] by shifting in place, keeping the backing array (and
// its capacity) alive for the next append. Slicing q[1:] instead would bleed
// one slot of capacity per operation and reallocate on every steady-state
// Send/Recv cycle. The vacated tail slot is zeroed so it does not retain a
// reference.
func dequeue[E any](q []E) []E {
	copy(q, q[1:])
	last := len(q) - 1
	var zero E
	q[last] = zero
	return q[:last]
}
