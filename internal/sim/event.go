package sim

// Event is a one-shot broadcast signal in virtual time. Processes block on
// Wait until some other activity calls Fire; waiting on an already-fired
// event returns immediately. Events are the building block for process
// completion (Proc.Done) and request/handle patterns in higher layers.
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event bound to k.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// Fired reports whether Fire has been called.
func (e *Event) Fired() bool { return e.fired }

// Fire signals the event, waking every waiter at the current virtual time.
// Firing twice is a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for i, w := range e.waiters {
		w.unpark()
		e.waiters[i] = nil // drop the reference, keep the capacity for Reset reuse
	}
	e.waiters = e.waiters[:0]
}

// Wait blocks p until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.park("event")
}

// Reset returns a fired event to the unfired state so persistent handles
// can reuse one event across waves instead of allocating a fresh one per
// operation. Resetting an event that still has blocked waiters would strand
// them silently, so that is a model bug and panics.
func (e *Event) Reset() {
	if len(e.waiters) > 0 {
		panic("sim: Event.Reset with blocked waiters")
	}
	e.fired = false
}

// Counter is a countdown latch: it fires an event when Add has been balanced
// by Done calls. It generalizes sync.WaitGroup into virtual time.
type Counter struct {
	k     *Kernel
	n     int
	event *Event
}

// NewCounter returns a latch expecting n completions.
func NewCounter(k *Kernel, n int) *Counter {
	c := &Counter{k: k, n: n, event: NewEvent(k)}
	if n <= 0 {
		c.event.Fire()
	}
	return c
}

// Done records one completion; the Wait event fires when the count reaches
// zero. Like sync.WaitGroup, overshooting the count is a model bug that
// would otherwise hang the simulation silently, so it panics.
func (c *Counter) Done() {
	c.n--
	if c.n == 0 {
		c.event.Fire()
	}
	if c.n < 0 {
		panic("sim: Counter.Done called more times than the count passed to NewCounter")
	}
}

// Wait blocks p until the count reaches zero.
func (c *Counter) Wait(p *Proc) { c.event.Wait(p) }

// Reset re-arms a drained latch for n more completions, reusing its event.
// Persistent schedules recycle one counter per resident helper instead of
// allocating a fresh latch per step. Resetting with completions still
// outstanding is a model bug and panics.
func (c *Counter) Reset(n int) {
	if c.n > 0 {
		panic("sim: Counter.Reset with completions outstanding")
	}
	c.event.Reset()
	c.n = n
	if n <= 0 {
		c.event.Fire()
	}
}

// Barrier synchronizes a fixed party count: each arrival blocks until all
// parties have arrived, then every party resumes and the barrier resets for
// reuse (a cyclic barrier).
type Barrier struct {
	k       *Kernel
	parties int
	waiting []*Proc
}

// NewBarrier returns a reusable barrier for the given number of parties.
func NewBarrier(k *Kernel, parties int) *Barrier {
	return &Barrier{k: k, parties: parties}
}

// Wait blocks p until all parties have arrived. The last arrival does not
// block; it releases the others.
func (b *Barrier) Wait(p *Proc) {
	if b.parties <= 1 {
		return
	}
	if len(b.waiting)+1 == b.parties {
		for _, w := range b.waiting {
			w.unpark()
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.park("barrier")
}

// WaitAny blocks p until at least one of the events has fired and returns
// the index of the first one observed. Events that fire later leave their
// watcher daemons to drain harmlessly.
func WaitAny(p *Proc, events ...*Event) int {
	for i, e := range events {
		if e.Fired() {
			return i
		}
	}
	k := p.Kernel()
	any := NewEvent(k)
	first := -1
	for i, e := range events {
		i, e := i, e
		k.SpawnDaemon("waitany", func(wp *Proc) {
			e.Wait(wp)
			if first < 0 {
				first = i
			}
			any.Fire()
		})
	}
	any.Wait(p)
	return first
}
