package sim

// Resource is a counting semaphore in virtual time with FIFO admission: a
// fixed capacity of units that processes acquire and release. It models
// contended hardware such as a link, a copy engine, or a NIC queue.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waitq    []*resWait
	wfree    []*resWait
}

type resWait struct {
	p *Proc
	n int
}

// getWait recycles waiter nodes so contended acquires do not allocate in
// steady state; the waiter frees its node after it resumes (Release has
// written the grant into n by then).
func (r *Resource) getWait(p *Proc, n int) *resWait {
	if l := len(r.wfree); l > 0 {
		w := r.wfree[l-1]
		r.wfree = r.wfree[:l-1]
		w.p, w.n = p, n
		return w
	}
	return &resWait{p: p, n: n}
}

func (r *Resource) putWait(w *resWait) {
	w.p = nil
	r.wfree = append(r.wfree, w)
}

// NewResource returns a resource with the given unit capacity.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity reports the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until n units are available, then takes them. Requests
// are granted strictly in arrival order, so a large request is not starved
// by a stream of small ones.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		n = r.capacity
	}
	if len(r.waitq) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := r.getWait(p, n)
	r.waitq = append(r.waitq, w)
	p.park("resource")
	r.putWait(w)
}

// AcquireUpTo takes between 1 and max units, preferring as many as are
// free right now. If nothing is free (or waiters are queued ahead), it
// blocks FIFO until at least one unit is available and then takes up to max.
// It returns the number of units granted. This adaptive grant is how
// multi-channel transfers share a link pool fairly: a lone transfer gets the
// whole pool, two opposing transfers converge to half each.
func (r *Resource) AcquireUpTo(p *Proc, max int) int {
	if max < 1 {
		max = 1
	}
	if max > r.capacity {
		max = r.capacity
	}
	if len(r.waitq) == 0 && r.inUse < r.capacity {
		n := r.capacity - r.inUse
		if n > max {
			n = max
		}
		r.inUse += n
		return n
	}
	w := r.getWait(p, -max) // negative marks an adaptive request
	r.waitq = append(r.waitq, w)
	p.park("resource")
	n := w.n
	r.putWait(w)
	return n
}

// Release returns n units and admits as many queued waiters as now fit.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		r.inUse = 0
	}
	for len(r.waitq) > 0 {
		w := r.waitq[0]
		if w.n < 0 { // adaptive request: grant whatever is free, up to -w.n
			free := r.capacity - r.inUse
			if free < 1 {
				break
			}
			grant := -w.n
			if grant > free {
				grant = free
			}
			w.n = grant
		} else if r.inUse+w.n > r.capacity {
			break
		}
		r.waitq = r.waitq[1:]
		r.inUse += w.n
		w.p.unpark()
	}
}

// Use acquires n units, runs for the given busy time, and releases. It is
// the common "hold the link while the bytes fly" pattern.
func (r *Resource) Use(p *Proc, n int, busy Time) {
	r.Acquire(p, n)
	p.Sleep(busy)
	r.Release(n)
}
