package sim

// Timeout-aware variants of the blocking primitives. They back the
// collective watchdog in internal/ccl: a process waiting on a peer that has
// fail-stopped resolves to a timeout verdict in bounded virtual time instead
// of deadlocking the kernel.
//
// A non-positive timeout means "no watchdog" and delegates to the plain
// blocking variant, so a disarmed call is byte-for-byte the ordinary path
// (including its zero-allocation guarantee — see alloc_test.go). An armed
// call schedules one timer closure; the timer is the only allocation.
//
// Timers cannot be cancelled. A timer whose waiter was legitimately woken
// finds the waiter gone from the wait queue (or its wait already completed)
// and does nothing; it may still advance the virtual clock at queue-drain
// time, which is harmless because all measurements are taken inside
// processes. Ties are resolved in favor of the timeout: if the wake and the
// deadline land on the same virtual instant and the timer's event pops
// first, the wait reports a timeout.

// indexOf returns the position of w in q, or -1. Wait queues are short
// (bounded by the party count), so a linear scan is fine.
func indexOf[E comparable](q []E, w E) int {
	for i, x := range q {
		if x == w {
			return i
		}
	}
	return -1
}

// removeAt deletes q[i] preserving FIFO order, zeroing the vacated tail slot
// so it does not retain a reference (same contract as dequeue).
func removeAt[E any](q []E, i int) []E {
	copy(q[i:], q[i+1:])
	last := len(q) - 1
	var zero E
	q[last] = zero
	return q[:last]
}

// WaitTimeout blocks p until the event fires or d elapses. It reports
// whether the event fired; false means the wait timed out. d <= 0 waits
// forever (plain Wait).
func (e *Event) WaitTimeout(p *Proc, d Time) bool {
	if e.fired {
		return true
	}
	if d <= 0 {
		e.Wait(p)
		return true
	}
	e.waiters = append(e.waiters, p)
	timedOut := false
	e.k.schedule(e.k.now+d, func() {
		// Presence in the wait queue is the authority: Fire empties it, so
		// a stale timer for a fired event finds nothing to do.
		if i := indexOf(e.waiters, p); i >= 0 {
			e.waiters = removeAt(e.waiters, i)
			timedOut = true
			p.unpark()
		}
	})
	p.park("event (watchdog)")
	return !timedOut
}

// WaitTimeout blocks p until the count reaches zero or d elapses, reporting
// whether the count drained. d <= 0 waits forever.
func (c *Counter) WaitTimeout(p *Proc, d Time) bool {
	return c.event.WaitTimeout(p, d)
}

// WaitTimeout blocks p until all parties arrive or d elapses. It reports
// whether the barrier released; on timeout p withdraws from the barrier, so
// a party that never shows up leaves the remaining waiters to time out on
// their own deadlines rather than hanging (the barrier can then no longer
// release this cycle — callers treat a timeout as a terminal verdict for
// the operation).
func (b *Barrier) WaitTimeout(p *Proc, d Time) bool {
	if b.parties <= 1 {
		return true
	}
	if d <= 0 {
		b.Wait(p)
		return true
	}
	if len(b.waiting)+1 == b.parties {
		for _, w := range b.waiting {
			w.unpark()
		}
		b.waiting = b.waiting[:0]
		return true
	}
	b.waiting = append(b.waiting, p)
	timedOut := false
	// done guards the cyclic-reuse hazard: the barrier may release and p may
	// re-enter the same barrier before the stale timer fires, putting p back
	// in b.waiting for a different cycle. done flips as soon as this wait
	// completes, before any re-entry is possible.
	done := false
	b.k.schedule(b.k.now+d, func() {
		if done {
			return
		}
		if i := indexOf(b.waiting, p); i >= 0 {
			b.waiting = removeAt(b.waiting, i)
			timedOut = true
			p.unpark()
		}
	})
	p.park("barrier (watchdog)")
	done = true
	return !timedOut
}

// RecvTimeout takes the next value, blocking p for at most d. ok reports
// whether a value arrived; false means the wait timed out and no value was
// consumed. d <= 0 blocks forever (plain Recv).
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	if d <= 0 {
		return c.Recv(p), true
	}
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	w := c.getRecv(p)
	c.recvq = append(c.recvq, w)
	timedOut := false
	// done guards node recycling: once this wait completes the node returns
	// to the free list and may be queued again for a different waiter; the
	// stale timer must not match it there.
	done := false
	c.k.schedule(c.k.now+d, func() {
		if done {
			return
		}
		if i := indexOf(c.recvq, w); i >= 0 {
			c.recvq = removeAt(c.recvq, i)
			timedOut = true
			w.p.unpark()
		}
	})
	p.park("chan recv (watchdog)")
	done = true
	v = w.val
	c.putRecv(w)
	if timedOut {
		var zero T
		return zero, false
	}
	return v, true
}

// SendTimeout delivers v, blocking p for at most d. It reports whether the
// value was accepted; false means the wait timed out and the value was not
// delivered. d <= 0 blocks forever (plain Send).
func (c *Chan[T]) SendTimeout(p *Proc, v T, d Time) bool {
	if d <= 0 {
		c.Send(p, v)
		return true
	}
	if c.TrySend(v) {
		return true
	}
	w := c.getSend(p, v)
	c.sendq = append(c.sendq, w)
	timedOut := false
	done := false
	c.k.schedule(c.k.now+d, func() {
		if done {
			return
		}
		if i := indexOf(c.sendq, w); i >= 0 {
			c.sendq = removeAt(c.sendq, i)
			timedOut = true
			w.p.unpark()
		}
	})
	p.park("chan send (watchdog)")
	done = true
	c.putSend(w)
	return !timedOut
}
