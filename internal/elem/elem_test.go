package elem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindSizes(t *testing.T) {
	want := map[Kind]int{U8: 1, I32: 4, I64: 8, F16: 2, F32: 4, F64: 8, C128: 16}
	for k, sz := range want {
		if k.Size() != sz {
			t.Errorf("kind %d size = %d, want %d", int(k), k.Size(), sz)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Kind(99).Size()
}

func TestGetSetRoundTrip(t *testing.T) {
	cases := map[Kind][]float64{
		U8:   {0, 1, 100, 255},
		I32:  {0, 1, -1, 3, 1 << 20},
		I64:  {0, -5, 1 << 40},
		F16:  {0, 1, -1, 0.5, 1024},
		F32:  {0, 1.5, -2.25},
		F64:  {0, 3.14159, -1e100},
		C128: {0, 1, -2.5},
	}
	for k, vals := range cases {
		b := make([]byte, 16*k.Size())
		for i, v := range vals {
			Set(k, b, i, v, -v)
			re, im := Get(k, b, i)
			if re != v {
				t.Errorf("kind %d elem %d re = %v, want %v", int(k), i, re, v)
			}
			if k == C128 && im != -v {
				t.Errorf("C128 elem %d im = %v, want %v", i, im, -v)
			}
		}
	}
}

func TestU8Clamping(t *testing.T) {
	b := make([]byte, 2)
	Set(U8, b, 0, 300, 0)
	Set(U8, b, 1, -5, 0)
	if b[0] != 255 || b[1] != 0 {
		t.Fatalf("clamped to %d, %d", b[0], b[1])
	}
}

func TestFloat16RoundTripExactValues(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, 2, 1024, 65504, -65504, 0.0009765625} {
		h := FloatToFloat16(v)
		if got := Float16ToFloat(h); got != v {
			t.Errorf("float16 round trip %v -> %v", v, got)
		}
	}
}

func TestFloat16Specials(t *testing.T) {
	if !math.IsInf(Float16ToFloat(FloatToFloat16(math.Inf(1))), 1) {
		t.Error("+inf lost")
	}
	if !math.IsInf(Float16ToFloat(FloatToFloat16(1e10)), 1) {
		t.Error("overflow should become +inf")
	}
	if !math.IsNaN(Float16ToFloat(FloatToFloat16(math.NaN()))) {
		t.Error("nan lost")
	}
	if Float16ToFloat(FloatToFloat16(1e-10)) != 0 {
		t.Error("deep underflow should flush to zero")
	}
}

// Property: any finite half value round-trips exactly through float64.
func TestFloat16RoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		v := Float16ToFloat(raw)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return Float16ToFloat(FloatToFloat16(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceOpsF64(t *testing.T) {
	mk := func(vals ...float64) []byte {
		b := make([]byte, len(vals)*8)
		for i, v := range vals {
			Set(F64, b, i, v, 0)
		}
		return b
	}
	read := func(b []byte, i int) float64 { re, _ := Get(F64, b, i); return re }

	dst := mk(1, -2, 3)
	Reduce(OpSum, F64, dst, mk(10, 20, 30), 3)
	if read(dst, 0) != 11 || read(dst, 1) != 18 || read(dst, 2) != 33 {
		t.Fatal("sum wrong")
	}
	dst = mk(2, 3, 4)
	Reduce(OpProd, F64, dst, mk(5, -1, 0.5), 3)
	if read(dst, 0) != 10 || read(dst, 1) != -3 || read(dst, 2) != 2 {
		t.Fatal("prod wrong")
	}
	dst = mk(1, 5)
	Reduce(OpMax, F64, dst, mk(3, 2), 2)
	if read(dst, 0) != 3 || read(dst, 1) != 5 {
		t.Fatal("max wrong")
	}
	dst = mk(1, 5)
	Reduce(OpMin, F64, dst, mk(3, 2), 2)
	if read(dst, 0) != 1 || read(dst, 1) != 2 {
		t.Fatal("min wrong")
	}
}

func TestReduceComplexProd(t *testing.T) {
	dst := make([]byte, 16)
	src := make([]byte, 16)
	Set(C128, dst, 0, 1, 2)
	Set(C128, src, 0, 3, -1)
	Reduce(OpProd, C128, dst, src, 1)
	re, im := Get(C128, dst, 0)
	if re != 5 || im != 5 { // (1+2i)(3-i) = 5+5i
		t.Fatalf("complex prod = %v+%vi", re, im)
	}
}

func TestReduceComplexMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Reduce(OpMax, C128, make([]byte, 16), make([]byte, 16), 1)
}

// Property: OpSum over I64 agrees with native integer addition for values
// that fit in the float64-exact range.
func TestReduceSumI64Property(t *testing.T) {
	f := func(a, b int32) bool {
		x := make([]byte, 8)
		y := make([]byte, 8)
		Set(I64, x, 0, float64(a), 0)
		Set(I64, y, 0, float64(b), 0)
		Reduce(OpSum, I64, x, y, 1)
		re, _ := Get(I64, x, 0)
		return re == float64(int64(a)+int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The specialized float32/float64 reduce paths must agree exactly with the
// generic elementwise path.
func TestSpecializedReduceMatchesGeneric(t *testing.T) {
	vals := []float64{0, 1, -1, 0.5, 3.25, -1e20, 1e-20, 7}
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin} {
		for _, k := range []Kind{F32, F64} {
			n := len(vals)
			dst := make([]byte, n*k.Size())
			src := make([]byte, n*k.Size())
			ref := make([]byte, n*k.Size())
			for i, v := range vals {
				Set(k, dst, i, v, 0)
				Set(k, ref, i, v, 0)
				Set(k, src, i, vals[(i+3)%n], 0)
			}
			Reduce(op, k, dst, src, n) // specialized
			// Generic reference via the scalar accessors.
			for i := 0; i < n; i++ {
				d, _ := Get(k, ref, i)
				s, _ := Get(k, src, i)
				var r float64
				switch op {
				case OpSum:
					r = d + s
				case OpProd:
					r = d * s
				case OpMax:
					r = d
					if s > d {
						r = s
					}
				case OpMin:
					r = d
					if s < d {
						r = s
					}
				}
				Set(k, ref, i, r, 0)
			}
			for i := 0; i < n; i++ {
				got, _ := Get(k, dst, i)
				want, _ := Get(k, ref, i)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("kind %d op %d elem %d: %v != %v", int(k), int(op), i, got, want)
				}
			}
		}
	}
}
