// Package elem implements elementwise typed operations on raw byte buffers:
// the compute kernels shared by the MPI runtime and the CCL backends for
// reductions over device memory. Values are little-endian, matching what a
// real device buffer of scalars would hold.
package elem

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the host lays out multi-byte scalars in
// little-endian order, in which case a []byte buffer can be reinterpreted
// as a typed slice directly. On big-endian hosts the portable per-element
// decode paths run instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f32view reinterprets b as count float32s when the host is little-endian
// and the buffer is element-aligned; it returns nil when the portable path
// must be used. The view produces bit-identical results to the decode path —
// it only removes the per-element byte shuffling.
func f32view(b []byte, count int) []float32 {
	if !hostLittleEndian || count == 0 || uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil
	}
	_ = b[count*4-1] // bounds check the full range up front
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), count)
}

func f64view(b []byte, count int) []float64 {
	if !hostLittleEndian || count == 0 || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil
	}
	_ = b[count*8-1]
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), count)
}

// Kind is a scalar element type.
type Kind int

const (
	// U8 is an unsigned byte.
	U8 Kind = iota
	// I32 is a little-endian int32.
	I32
	// I64 is a little-endian int64.
	I64
	// F16 is IEEE 754 binary16.
	F16
	// F32 is IEEE 754 binary32.
	F32
	// F64 is IEEE 754 binary64.
	F64
	// C128 is a pair of float64 (re, im).
	C128
)

// Size returns the element width in bytes.
func (k Kind) Size() int {
	switch k {
	case U8:
		return 1
	case F16:
		return 2
	case I32, F32:
		return 4
	case I64, F64:
		return 8
	case C128:
		return 16
	}
	panic(fmt.Sprintf("elem: unknown kind %d", int(k)))
}

// Op is a reduction operator.
type Op int

const (
	// OpSum adds.
	OpSum Op = iota
	// OpProd multiplies (complex-aware for C128).
	OpProd
	// OpMax keeps the maximum (undefined for C128).
	OpMax
	// OpMin keeps the minimum (undefined for C128).
	OpMin
)

// Get reads element i as (re, im); im is zero for real kinds.
func Get(k Kind, b []byte, i int) (re, im float64) {
	switch k {
	case U8:
		return float64(b[i]), 0
	case I32:
		return float64(int32(binary.LittleEndian.Uint32(b[i*4:]))), 0
	case I64:
		return float64(int64(binary.LittleEndian.Uint64(b[i*8:]))), 0
	case F16:
		return Float16ToFloat(binary.LittleEndian.Uint16(b[i*2:])), 0
	case F32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))), 0
	case F64:
		return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])), 0
	case C128:
		return math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:])),
			math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
	}
	panic(fmt.Sprintf("elem: get for kind %d", int(k)))
}

// Set stores (re, im) into element i; im is ignored for real kinds.
func Set(k Kind, b []byte, i int, re, im float64) {
	switch k {
	case U8:
		b[i] = byte(clamp(re, 0, 255))
	case I32:
		binary.LittleEndian.PutUint32(b[i*4:], uint32(int32(clamp(re, math.MinInt32, math.MaxInt32))))
	case I64:
		binary.LittleEndian.PutUint64(b[i*8:], uint64(int64(re)))
	case F16:
		binary.LittleEndian.PutUint16(b[i*2:], FloatToFloat16(re))
	case F32:
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(re)))
	case F64:
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(re))
	case C128:
		binary.LittleEndian.PutUint64(b[i*16:], math.Float64bits(re))
		binary.LittleEndian.PutUint64(b[i*16+8:], math.Float64bits(im))
	default:
		panic(fmt.Sprintf("elem: set for kind %d", int(k)))
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Reduce applies dst[i] = op(dst[i], src[i]) elementwise over count
// elements. OpMax/OpMin on C128 panic (undefined by both the MPI standard
// and every CCL). The float32/float64 cases — the hot paths of every
// gradient allreduce — use type-specialized loops.
func Reduce(op Op, k Kind, dst, src []byte, count int) {
	if k == C128 && (op == OpMax || op == OpMin) {
		panic("elem: max/min undefined for complex")
	}
	switch k {
	case F32:
		reduceF32(op, dst, src, count)
		return
	case F64:
		reduceF64(op, dst, src, count)
		return
	}
	for i := 0; i < count; i++ {
		dre, dim := Get(k, dst, i)
		sre, sim := Get(k, src, i)
		var re, im float64
		switch op {
		case OpSum:
			re, im = dre+sre, dim+sim
		case OpProd:
			if k == C128 {
				re = dre*sre - dim*sim
				im = dre*sim + dim*sre
			} else {
				re = dre * sre
			}
		case OpMax:
			re = dre
			if sre > dre {
				re = sre
			}
		case OpMin:
			re = dre
			if sre < dre {
				re = sre
			}
		}
		Set(k, dst, i, re, im)
	}
}

func reduceF32(op Op, dst, src []byte, count int) {
	// Fast path: operate on typed views with the operator switch hoisted out
	// of the loop. This is the single hottest compute kernel of every
	// gradient allreduce.
	if d, s := f32view(dst, count), f32view(src, count); d != nil && s != nil {
		switch op {
		case OpSum:
			for i, v := range s {
				d[i] += v
			}
		case OpProd:
			for i, v := range s {
				d[i] *= v
			}
		case OpMax:
			for i, v := range s {
				if v > d[i] {
					d[i] = v
				}
			}
		case OpMin:
			for i, v := range s {
				if v < d[i] {
					d[i] = v
				}
			}
		}
		return
	}
	for i := 0; i < count; i++ {
		d := math.Float32frombits(binary.LittleEndian.Uint32(dst[i*4:]))
		s := math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		switch op {
		case OpSum:
			d += s
		case OpProd:
			d *= s
		case OpMax:
			if s > d {
				d = s
			}
		case OpMin:
			if s < d {
				d = s
			}
		}
		binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(d))
	}
}

func reduceF64(op Op, dst, src []byte, count int) {
	if d, s := f64view(dst, count), f64view(src, count); d != nil && s != nil {
		switch op {
		case OpSum:
			for i, v := range s {
				d[i] += v
			}
		case OpProd:
			for i, v := range s {
				d[i] *= v
			}
		case OpMax:
			for i, v := range s {
				if v > d[i] {
					d[i] = v
				}
			}
		case OpMin:
			for i, v := range s {
				if v < d[i] {
					d[i] = v
				}
			}
		}
		return
	}
	for i := 0; i < count; i++ {
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst[i*8:]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
		switch op {
		case OpSum:
			d += s
		case OpProd:
			d *= s
		case OpMax:
			if s > d {
				d = s
			}
		case OpMin:
			if s < d {
				d = s
			}
		}
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(d))
	}
}

// Float16ToFloat converts an IEEE 754 binary16 value to float64.
func Float16ToFloat(h uint16) float64 {
	sign := uint64(h>>15) & 1
	exp := uint64(h>>10) & 0x1f
	frac := uint64(h) & 0x3ff
	var bits uint64
	switch {
	case exp == 0 && frac == 0:
		bits = sign << 63
	case exp == 0: // subnormal
		e := uint64(0)
		for frac&0x400 == 0 {
			frac <<= 1
			e++
		}
		frac &= 0x3ff
		bits = sign<<63 | (1023-15+1-e)<<52 | frac<<42
	case exp == 0x1f && frac == 0:
		bits = sign<<63 | 0x7ff<<52 // inf
	case exp == 0x1f:
		bits = sign<<63 | 0x7ff<<52 | frac<<42 // nan
	default:
		bits = sign<<63 | (exp-15+1023)<<52 | frac<<42
	}
	return math.Float64frombits(bits)
}

// FloatToFloat16 converts a float64 to IEEE 754 binary16 (truncating
// rounding, overflow to inf, deep underflow flushed to zero).
func FloatToFloat16(f float64) uint16 {
	bits := math.Float64bits(f)
	sign := uint16(bits>>48) & 0x8000
	exp := int((bits>>52)&0x7ff) - 1023
	frac := bits & 0xfffffffffffff
	switch {
	case math.IsNaN(f):
		return sign | 0x7e00
	case math.IsInf(f, 0) || exp > 15:
		return sign | 0x7c00
	case exp < -24:
		return sign
	case exp < -14: // subnormal
		shift := uint(-exp - 14)
		m := uint16((frac|1<<52)>>42) >> shift
		return sign | m
	default:
		return sign | uint16(exp+15)<<10 | uint16(frac>>42)
	}
}
