package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpixccl/internal/mpi"
)

// Cross-path equivalence: for random payloads, communicator sizes, and
// datatypes, the pure-MPI path, the pure-CCL path, and the hybrid path
// must produce bitwise-identical allreduce results (floating-point sums
// are order-sensitive, so this also pins down that every algorithm reduces
// in rank order or in an order-insensitive pattern for the values used).

// runAllreduce executes one allreduce on a fresh world and returns rank 0's
// result bytes.
func runAllreduce(t *testing.T, mode Mode, nranks, count int, dt mpi.Datatype, fill func(rank, i int) float64) []byte {
	t.Helper()
	rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: mode})
	out := make([]byte, count*dt.Size())
	err := rt.Run(func(x *Comm) {
		esz := int64(dt.Size())
		send := x.Device().MustMalloc(int64(count) * esz)
		recv := x.Device().MustMalloc(int64(count) * esz)
		for i := 0; i < count; i++ {
			v := fill(x.Rank(), i)
			switch dt {
			case mpi.Float32:
				send.SetFloat32(i, float32(v))
			case mpi.Float64:
				send.SetFloat64(i, v)
			case mpi.Int32:
				send.SetInt32(i, int32(v))
			}
		}
		x.Allreduce(send, recv, count, dt, mpi.OpSum)
		if x.Rank() == 0 {
			copy(out, recv.Bytes())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAllPathsAgreeProperty(t *testing.T) {
	f := func(seed int64, nRaw, countRaw uint8, dtRaw uint8) bool {
		nranks := 2 + int(nRaw%7)  // 2..8
		count := 1 + int(countRaw) // 1..256
		dts := []mpi.Datatype{mpi.Float32, mpi.Float64, mpi.Int32}
		dt := dts[int(dtRaw)%len(dts)]
		rng := rand.New(rand.NewSource(seed))
		// Small integer-valued floats: exactly representable, so any
		// reduction order yields identical bits.
		vals := make([][]float64, nranks)
		for r := range vals {
			vals[r] = make([]float64, count)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(64))
			}
		}
		fill := func(rank, i int) float64 { return vals[rank][i] }
		a := runAllreduce(t, PureMPI, nranks, count, dt, fill)
		b := runAllreduce(t, PureCCL, nranks, count, dt, fill)
		c := runAllreduce(t, Hybrid, nranks, count, dt, fill)
		if len(a) != len(b) || len(b) != len(c) {
			return false
		}
		for i := range a {
			if a[i] != b[i] || b[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Alltoall equivalence across paths and algorithm families (MPI uses Bruck
// below its threshold and pairwise above; the CCL path uses group p2p).
func TestAlltoallPathsAgreeProperty(t *testing.T) {
	f := func(seed int64, countRaw uint16) bool {
		nranks := 8
		count := 1 + int(countRaw%3000) // straddles the Bruck/pairwise split
		rng := rand.New(rand.NewSource(seed))
		vals := make([][]float64, nranks)
		for r := range vals {
			vals[r] = make([]float64, nranks*count)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(1000))
			}
		}
		run := func(mode Mode) []byte {
			rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: mode})
			out := make([]byte, nranks*count*4)
			err := rt.Run(func(x *Comm) {
				send := x.Device().MustMalloc(int64(nranks*count) * 4)
				recv := x.Device().MustMalloc(int64(nranks*count) * 4)
				for i := 0; i < nranks*count; i++ {
					send.SetFloat32(i, float32(vals[x.Rank()][i]))
				}
				x.Alltoall(send, count, mpi.Float32, recv)
				if x.Rank() == 3 {
					copy(out, recv.Bytes())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		a, b := run(PureMPI), run(PureCCL)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
