package core

import (
	"errors"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/metrics"
	"mpixccl/internal/trace"
)

// Resilience tunes how the dispatch layer reacts to CCL failures beyond
// the basic fall-back-to-MPI of §1.2: bounded retries for transient
// errors, a per-(backend, operation) circuit breaker that stops paying
// the CCL launch-and-fail cost under persistent errors, and a channel-
// budget reduction while the fabric reports a degraded link.
type Resilience struct {
	// MaxRetries bounds reissues of a transient CCL failure
	// (xcclRemoteError) before the call falls back to MPI. 0 disables
	// retries.
	MaxRetries int
	// RetryBackoff is the virtual-time wait before the first reissue; it
	// doubles per attempt.
	RetryBackoff time.Duration
	// BreakerThreshold opens the (backend, op) breaker after this many
	// consecutive CCL failures, demoting the op to the MPI path. 0
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects CCL dispatch
	// before letting one half-open probe wave through.
	BreakerCooldown time.Duration
	// WatchdogTimeout arms the CCL collective watchdog: a rank whose
	// stream task waits longer than this for its peers (collective start
	// rendezvous, point-to-point match) abandons the operation with an
	// ErrRankDead verdict instead of blocking forever on a fail-stopped
	// peer, bounding every collective in virtual time. 0 (the default)
	// leaves operations unbounded — pre-fail-stop behavior, and what keeps
	// the non-faulty hot paths allocation-free. The deadline must exceed
	// the largest healthy inter-rank skew (compute imbalance, injected
	// straggler delays) or slow ranks are misread as dead.
	WatchdogTimeout time.Duration
	// HeartbeatInterval arms the proactive heartbeat failure detector:
	// every rank runs a daemon that sends a control-message heartbeat to
	// its peers each interval and accrues suspicion (phi-accrual style,
	// calibrated to observed inter-arrival jitter) against peers whose
	// beats stop. A confirmed suspicion feeds the same ErrRankDead path
	// as the watchdog, so crashes are detected in a few intervals instead
	// of a full collective timeout. 0 (the default) disables the
	// detector. Pick an interval several times smaller than
	// WatchdogTimeout — detection latency is a small multiple of it.
	HeartbeatInterval time.Duration
	// HeartbeatPhi is the suspicion threshold, in units of inter-arrival
	// deviations beyond the mean, at which a silent peer is checked
	// against the fail-stop oracle. Higher values tolerate more jitter
	// (brownouts, stragglers) before suspecting. 0 means 8.
	HeartbeatPhi float64
	// Integrity turns on end-to-end CRC32C verification of fabric data
	// transfers with detect-and-retransmit: a corrupted payload (see
	// fault.CorruptRule) is caught by the checksum and retransmitted, up
	// to MaxRetries times per transfer. Off by default; the transfer hot
	// path is byte-identical in virtual time when off.
	Integrity bool
	// Disabled turns the whole policy off (PR-1 behavior: every CCL
	// error falls back immediately, no breaker).
	Disabled bool
}

// DefaultResilience is the policy used when Options.Resilience is nil.
func DefaultResilience() *Resilience {
	return &Resilience{
		MaxRetries:       2,
		RetryBackoff:     10 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Millisecond,
	}
}

// breakerKey scopes one circuit breaker: failures of one operation on one
// backend must not demote the others.
type breakerKey struct {
	backend BackendKind
	op      OpKind
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker is a consecutive-failure circuit breaker in virtual time.
type breaker struct {
	state    breakerState
	fails    int           // consecutive failures while closed
	openedAt time.Duration // virtual time of the open transition
}

// Wave-consistency bookkeeping: a collective deadlocks if its ranks
// disagree on the dispatch path (the CCL side would wait forever for the
// ranks that went to MPI), so breaker verdicts are memoized per call
// "wave". The i-th call of op on a communicator forms one wave across all
// its ranks; the first-arriving rank evaluates the breaker and peers of
// the same wave reuse the verdict.
type rankKey struct {
	ctx  int
	op   OpKind
	rank int
}

type waveKey struct {
	ctx int
	op  OpKind
	idx int
}

type waveVerdict struct {
	allow    bool
	consumed int
}

func (rt *Runtime) breakerFor(op OpKind) *breaker {
	key := breakerKey{rt.kind, op}
	b, ok := rt.breakers[key]
	if !ok {
		b = &breaker{}
		rt.breakers[key] = b
	}
	return b
}

// allowCCL gates one rank's CCL dispatch on the (backend, op) breaker,
// with wave-consistent verdicts (see above). Call it only for ranks whose
// decision chose the CCL path.
func (rt *Runtime) allowCCL(x *Comm, op OpKind) bool {
	pol := rt.policy
	if pol.Disabled || pol.BreakerThreshold <= 0 {
		return true
	}
	ctx := x.mpi.ContextID()
	rk := rankKey{ctx, op, x.Rank()}
	idx := rt.waveIdx[rk]
	rt.waveIdx[rk] = idx + 1
	wk := waveKey{ctx, op, idx}
	wv, ok := rt.waves[wk]
	if !ok {
		wv = &waveVerdict{allow: rt.breakerAllow(x, op)}
		rt.waves[wk] = wv
	}
	wv.consumed++
	if wv.consumed == x.Size() {
		delete(rt.waves, wk)
	}
	return wv.allow
}

// breakerAllow evaluates the breaker once per wave, moving an open breaker
// whose cooldown elapsed into half-open (the probe wave runs on the CCL).
func (rt *Runtime) breakerAllow(x *Comm, op OpKind) bool {
	b := rt.breakerFor(op)
	if b.state != breakerOpen {
		return true
	}
	now := x.mpi.Proc().Now()
	if now-b.openedAt >= rt.policy.BreakerCooldown {
		b.state = breakerHalfOpen
		rt.noteBreaker(op, breakerHalfOpen, now)
		return true
	}
	return false
}

// breakerSuccess records a completed CCL operation: consecutive-failure
// count resets and a half-open probe closes the breaker.
func (rt *Runtime) breakerSuccess(x *Comm, op OpKind) {
	pol := rt.policy
	if pol.Disabled || pol.BreakerThreshold <= 0 {
		return
	}
	b := rt.breakerFor(op)
	b.fails = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		rt.noteBreaker(op, breakerClosed, x.mpi.Proc().Now())
	}
}

// breakerFailure records a failed CCL operation (after retries): a failed
// half-open probe re-opens, and threshold consecutive failures open a
// closed breaker.
func (rt *Runtime) breakerFailure(x *Comm, op OpKind) {
	pol := rt.policy
	if pol.Disabled || pol.BreakerThreshold <= 0 {
		return
	}
	b := rt.breakerFor(op)
	now := x.mpi.Proc().Now()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.fails = 0
		b.openedAt = now
		rt.noteBreaker(op, breakerOpen, now)
	case breakerClosed:
		b.fails++
		if b.fails >= pol.BreakerThreshold {
			b.state = breakerOpen
			b.fails = 0
			b.openedAt = now
			rt.noteBreaker(op, breakerOpen, now)
		}
	case breakerOpen:
		// Late failures of the wave that opened the breaker: extend the
		// cooldown from the most recent evidence.
		b.openedAt = now
	}
}

// noteBreaker publishes a breaker transition to the metrics registry and
// the trace recorder (rank -1: the event belongs to the runtime, not to
// one rank).
func (rt *Runtime) noteBreaker(op OpKind, to breakerState, now time.Duration) {
	rt.opts.Metrics.Counter("xccl_breaker_transitions_total",
		"Circuit-breaker state transitions by backend, operation, and target state.",
		metrics.Labels{"backend": string(rt.kind), "op": string(op), "to": to.String()}).Inc()
	rec := trace.Record{
		Op: string(op), Backend: string(rt.kind), Rank: -1,
		Event: "breaker_" + to.String(), Start: now,
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// countRetry publishes one transient-failure reissue.
func (rt *Runtime) countRetry(x *Comm, op OpKind, err error) {
	rt.stats.Retries++
	result := "unknown"
	var ce *ccl.Error
	if errors.As(err, &ce) {
		result = ce.Result.String()
	}
	rt.opts.Metrics.Counter("xccl_retries_total",
		"CCL-path reissues of transient failures by operation, backend, and result code.",
		metrics.Labels{"op": string(op), "backend": string(rt.kind), "result": result}).Inc()
	rec := trace.Record{
		Op: string(op), Backend: string(rt.kind), Rank: x.Rank(),
		Event: "retry", Start: x.mpi.Proc().Now(),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// runResilient executes the CCL path under the retry policy: a transient
// failure (ccl.IsTransient) is reissued after a doubling virtual-time
// backoff, up to MaxRetries times. Transient validation errors fail before
// the rank enqueues its part of the collective, so a retried rank joins
// the same operation its peers are already waiting on.
func (x *Comm) runResilient(op OpKind, cclPath func(cc *ccl.Comm, s *device.Stream) error) error {
	pol := x.rt.policy
	err := x.runCCL(cclPath)
	if pol.Disabled || pol.MaxRetries <= 0 {
		return err
	}
	backoff := pol.RetryBackoff
	for attempt := 0; attempt < pol.MaxRetries && err != nil && ccl.IsTransient(err); attempt++ {
		x.rt.countRetry(x, op, err)
		if backoff > 0 {
			x.mpi.Proc().Sleep(backoff)
			backoff *= 2
		}
		err = x.runCCL(cclPath)
	}
	return err
}
