package core

import (
	"testing"

	"mpixccl/internal/fabric"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// newRuntime builds a job + runtime on a preset system.
func newRuntime(t *testing.T, system string, nranks int, opts Options) *Runtime {
	t.Helper()
	k := sim.NewKernel()
	perNode := map[string]int{"thetagpu": 8, "mri": 2, "voyager": 8}[system]
	nodes := (nranks + perNode - 1) / perNode
	sys, err := topology.Preset(k, system, nodes)
	if err != nil {
		t.Fatal(err)
	}
	job := mpi.NewJobOnSystem(fabric.New(k, sys), mpi.MVAPICHProfile(), sys, nranks)
	rt, err := NewRuntime(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestBackendAutoSelection(t *testing.T) {
	cases := map[string]BackendKind{"thetagpu": NCCL, "mri": RCCL, "voyager": HCCL}
	for system, want := range cases {
		rt := newRuntime(t, system, 2, Options{Backend: Auto, Mode: Hybrid})
		if rt.Backend() != want {
			t.Errorf("%s auto backend = %s, want %s", system, rt.Backend(), want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if Hybrid.String() != "hybrid-xccl" || PureCCL.String() != "pure-xccl" || PureMPI.String() != "pure-mpi" {
		t.Error("mode names wrong")
	}
}

func TestAllreduceCorrectBothPaths(t *testing.T) {
	// 64 elements (256 B) stays on the MPI path in hybrid mode; 1M elements
	// (4 MB) goes to NCCL. Both must produce identical correct sums.
	for _, count := range []int{64, 1 << 20} {
		rt := newRuntime(t, "thetagpu", 8, Options{Backend: Auto, Mode: Hybrid})
		err := rt.Run(func(x *Comm) {
			send := x.Device().MustMalloc(int64(count) * 4)
			recv := x.Device().MustMalloc(int64(count) * 4)
			for i := 0; i < count; i += 97 {
				send.SetFloat32(i, float32(x.Rank()+1))
			}
			x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
			for i := 0; i < count; i += 97 {
				if recv.Float32(i) != 36 {
					t.Errorf("count=%d rank=%d elem %d = %v, want 36", count, x.Rank(), i, recv.Float32(i))
				}
			}
		})
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
	}
}

func TestHybridDispatchBySize(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 8, Options{Backend: Auto, Mode: Hybrid})
	err := rt.Run(func(x *Comm) {
		small := x.Device().MustMalloc(1 << 10)
		large := x.Device().MustMalloc(1 << 20)
		x.Allreduce(small, small, 256, mpi.Float32, mpi.OpSum)   // 1 KB -> MPI
		x.Allreduce(large, large, 1<<18, mpi.Float32, mpi.OpSum) // 1 MB -> CCL
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.MPIOps != 8 || st.CCLOps != 8 {
		t.Fatalf("stats = %+v, want 8 MPI ops and 8 CCL ops", st)
	}
}

func TestPureModesForcePath(t *testing.T) {
	for _, mode := range []Mode{PureMPI, PureCCL} {
		rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: mode})
		err := rt.Run(func(x *Comm) {
			buf := x.Device().MustMalloc(64)
			out := x.Device().MustMalloc(64)
			buf.FillFloat32(1)
			x.Allreduce(buf, out, 16, mpi.Float32, mpi.OpSum)
			if out.Float32(5) != 4 {
				t.Errorf("mode %v sum = %v", mode, out.Float32(5))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := rt.Stats()
		if mode == PureMPI && (st.CCLOps != 0 || st.MPIOps != 4) {
			t.Errorf("PureMPI stats = %+v", st)
		}
		if mode == PureCCL && (st.MPIOps != 0 || st.CCLOps != 4) {
			t.Errorf("PureCCL stats = %+v", st)
		}
	}
}

func TestDoubleComplexFallsBackToMPI(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(32)
		recv := x.Device().MustMalloc(32)
		send.SetFloat64(0, float64(x.Rank()))
		send.SetFloat64(1, 1)
		x.Allreduce(send, recv, 2, mpi.DoubleComplex, mpi.OpSum)
		if recv.Float64(0) != 6 || recv.Float64(1) != 4 {
			t.Errorf("complex sum = %v+%vi", recv.Float64(0), recv.Float64(1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Fallbacks.Datatype != 4 {
		t.Errorf("datatype fallbacks = %d, want 4", st.Fallbacks.Datatype)
	}
	if st.CCLOps != 0 {
		t.Errorf("complex op reached CCL: %+v", st)
	}
}

func TestHCCLFloat64FallsBackFloat32Dispatches(t *testing.T) {
	rt := newRuntime(t, "voyager", 8, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		f64 := x.Device().MustMalloc(8 << 20)
		out64 := x.Device().MustMalloc(8 << 20)
		x.Allreduce(f64, out64, 1<<20, mpi.Float64, mpi.OpSum) // HCCL: unsupported -> MPI
		f32 := x.Device().MustMalloc(4 << 20)
		out32 := x.Device().MustMalloc(4 << 20)
		x.Allreduce(f32, out32, 1<<20, mpi.Float32, mpi.OpSum) // supported -> HCCL
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Fallbacks.Datatype != 8 {
		t.Errorf("datatype fallbacks = %d, want 8", st.Fallbacks.Datatype)
	}
	if st.CCLOps != 8 {
		t.Errorf("CCL ops = %d, want 8", st.CCLOps)
	}
}

func TestHostBufferFallsBack(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Job().Run(func(c *mpi.Comm) {
		x := rt.Wrap(c)
		host := c.Job().Fabric().System().Nodes[c.Device().Node].Host
		send := host.MustMalloc(1 << 20)
		recv := host.MustMalloc(1 << 20)
		x.Allreduce(send, recv, 1<<18, mpi.Float32, mpi.OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Fallbacks.HostBuffer != 2 {
		t.Errorf("host-buffer fallbacks = %d, want 2", rt.Stats().Fallbacks.HostBuffer)
	}
}

func TestCommCacheReused(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		buf := x.Device().MustMalloc(4 << 20)
		out := x.Device().MustMalloc(4 << 20)
		for i := 0; i < 3; i++ {
			x.Allreduce(buf, out, 1<<20, mpi.Float32, mpi.OpSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.cache) != 1 {
		t.Errorf("comm cache has %d entries, want 1 (reuse)", len(rt.cache))
	}
}

func TestAllCollectivesCorrectOnCCLPath(t *testing.T) {
	const n = 8
	const count = 1 << 17 // 512 KB of float32: CCL path everywhere
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		r := x.Rank()
		dev := x.Device()
		send := dev.MustMalloc(count * 4)
		recv := dev.MustMalloc(count * 4)
		for i := 0; i < count; i += 101 {
			send.SetFloat32(i, float32(r+1))
		}
		// Allreduce
		x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
		if recv.Float32(101) != 36 {
			t.Errorf("allreduce = %v", recv.Float32(101))
		}
		// Bcast
		bc := dev.MustMalloc(count * 4)
		if r == 3 {
			bc.FillFloat32(9)
		}
		x.Bcast(bc, count, mpi.Float32, 3)
		if bc.Float32(7) != 9 {
			t.Errorf("bcast = %v", bc.Float32(7))
		}
		// Reduce
		red := dev.MustMalloc(count * 4)
		x.Reduce(send, red, count, mpi.Float32, mpi.OpSum, 0)
		if r == 0 && red.Float32(101) != 36 {
			t.Errorf("reduce = %v", red.Float32(101))
		}
		// Allgather
		all := dev.MustMalloc(n * count * 4)
		x.Allgather(send, count, mpi.Float32, all)
		for blk := 0; blk < n; blk++ {
			if got := all.Float32(blk*count + 101); got != float32(blk+1) {
				t.Errorf("allgather block %d = %v", blk, got)
			}
		}
		// ReduceScatterBlock over the gathered data
		rsOut := dev.MustMalloc(count / 2 * 4)
		rsIn := dev.MustMalloc(int64(n) * (count / 2) * 4)
		rsIn.FillFloat32(2)
		x.ReduceScatterBlock(rsIn, rsOut, count/2, mpi.Float32, mpi.OpSum)
		if rsOut.Float32(3) != float32(2*n) {
			t.Errorf("reducescatter = %v", rsOut.Float32(3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallGroupPathCorrect(t *testing.T) {
	const n = 8
	const count = 4096 // 16 KB blocks: above the 4 KB alltoall crossover
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		send := dev.MustMalloc(n * count * 4)
		recv := dev.MustMalloc(n * count * 4)
		for peer := 0; peer < n; peer++ {
			for i := 0; i < count; i += 61 {
				send.SetFloat32(peer*count+i, float32(x.Rank()*100+peer))
			}
		}
		x.Alltoall(send, count, mpi.Float32, recv)
		for peer := 0; peer < n; peer++ {
			if got := recv.Float32(peer*count + 61); got != float32(peer*100+x.Rank()) {
				t.Errorf("rank %d block %d = %v", x.Rank(), peer, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CCLOps != n {
		t.Errorf("alltoall did not take CCL path: %+v", rt.Stats())
	}
}

func TestAlltoallvListing1OnCCL(t *testing.T) {
	const n = 4
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		r := x.Rank()
		sendCounts := make([]int, n)
		sdispls := make([]int, n)
		recvCounts := make([]int, n)
		rdispls := make([]int, n)
		sTotal, rTotal := 0, 0
		for p := 0; p < n; p++ {
			sendCounts[p] = 1000 * (r + p + 1)
			sdispls[p] = sTotal
			sTotal += sendCounts[p]
			recvCounts[p] = 1000 * (p + r + 1)
			rdispls[p] = rTotal
			rTotal += recvCounts[p]
		}
		send := x.Device().MustMalloc(int64(sTotal) * 4)
		recv := x.Device().MustMalloc(int64(rTotal) * 4)
		for p := 0; p < n; p++ {
			for i := 0; i < sendCounts[p]; i += 37 {
				send.SetFloat32(sdispls[p]+i, float32(r*10+p))
			}
		}
		x.Alltoallv(send, sendCounts, sdispls, mpi.Float32, recv, recvCounts, rdispls)
		for p := 0; p < n; p++ {
			if got := recv.Float32(rdispls[p] + 37); got != float32(p*10+r) {
				t.Errorf("rank %d from %d = %v, want %v", r, p, got, p*10+r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CCLOps != n {
		t.Errorf("alltoallv did not take CCL path: %+v", rt.Stats())
	}
}

func TestGatherScatterOnCCLPath(t *testing.T) {
	const n = 8
	const count = 1 << 16 // 256 KB: above gather/scatter crossover
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		mine := dev.MustMalloc(count * 4)
		mine.FillFloat32(float32(x.Rank()))
		gathered := dev.MustMalloc(n * count * 4)
		x.Gather(mine, count, mpi.Float32, gathered, 0)
		if x.Rank() == 0 {
			for r := 0; r < n; r++ {
				if gathered.Float32(r*count+5) != float32(r) {
					t.Errorf("gather block %d wrong", r)
				}
			}
		}
		back := dev.MustMalloc(count * 4)
		x.Scatter(gathered, count, mpi.Float32, back, 0)
		if back.Float32(9) != float32(x.Rank()) {
			t.Errorf("scatter rank %d = %v", x.Rank(), back.Float32(9))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.CCLOps != 2*n {
		t.Errorf("gather/scatter CCL ops = %d, want %d", st.CCLOps, 2*n)
	}
}

func TestNonblockingCollectives(t *testing.T) {
	const n = 4
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		a := dev.MustMalloc(1 << 20)
		b := dev.MustMalloc(1 << 20)
		a.FillFloat32(1)
		req1 := x.Iallreduce(a, b, 1<<18, mpi.Float32, mpi.OpSum)
		c := dev.MustMalloc(4096)
		if x.Rank() == 0 {
			c.FillFloat32(5)
		}
		req2 := x.Ibcast(c, 1024, mpi.Float32, 0)
		x.Wait(req1)
		x.Wait(req2)
		if b.Float32(10) != float32(n) {
			t.Errorf("iallreduce = %v", b.Float32(10))
		}
		if c.Float32(10) != 5 {
			t.Errorf("ibcast = %v", c.Float32(10))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitCommunicatorGetsOwnCCLComm(t *testing.T) {
	const n = 8
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) {
		sub := rt.Wrap(x.MPI().Split(x.Rank()%2, x.Rank()))
		buf := sub.Device().MustMalloc(4 << 20)
		out := sub.Device().MustMalloc(4 << 20)
		buf.FillFloat32(1)
		sub.Allreduce(buf, out, 1<<20, mpi.Float32, mpi.OpSum)
		if out.Float32(3) != 4 {
			t.Errorf("sub allreduce = %v, want 4", out.Float32(3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.cache) != 2 {
		t.Errorf("cache entries = %d, want 2 (one per split color)", len(rt.cache))
	}
}

func TestBarrierAlwaysMPI(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL})
	err := rt.Run(func(x *Comm) { x.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().MPIOps != 4 || rt.Stats().CCLOps != 0 {
		t.Errorf("barrier stats = %+v", rt.Stats())
	}
}
