package core

import (
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/trace"
)

// healthMonitor is the proactive heartbeat failure detector
// (Resilience.HeartbeatInterval). Every rank runs a daemon that sends one
// control-message heartbeat to each live peer per interval; the shared
// observation state models reception (the simulation is cooperatively
// scheduled, so the maps need no locking). Suspicion is phi-accrual style:
// each rank's beat inter-arrival statistics (EWMA mean and absolute
// deviation) calibrate a per-peer threshold, so a link-degradation window
// that slows every beat widens the model instead of killing the peer,
// while a fail-stopped rank's silence crosses the threshold within a
// couple of intervals. A crossing is confirmed against the fail-stop
// oracle before it becomes a verdict: confirmed suspicions feed the same
// ErrRankDead path as the collective watchdog (see Comm.suspectErr), and
// unconfirmed ones retract by widening the peer's model — the detector
// never kills a rank that is merely slow.
type healthMonitor struct {
	rt        *Runtime
	interval  time.Duration
	threshold float64 // suspicion threshold in deviations beyond the mean
	stopped   bool

	last      map[int]time.Duration // world rank -> virtual time of last beat
	mean      map[int]time.Duration // world rank -> EWMA beat inter-arrival
	dev       map[int]time.Duration // world rank -> EWMA absolute deviation
	suspected map[int]time.Duration // world rank -> virtual time of confirmed suspicion
	cutNoted  map[[2]int]bool       // (witness, peer) -> partitioned outcome noted for the current cut
}

func newHealthMonitor(rt *Runtime, interval time.Duration, threshold float64) *healthMonitor {
	return &healthMonitor{
		rt:        rt,
		interval:  interval,
		threshold: threshold,
		last:      make(map[int]time.Duration),
		mean:      make(map[int]time.Duration),
		dev:       make(map[int]time.Duration),
		suspected: make(map[int]time.Duration),
		cutNoted:  make(map[[2]int]bool),
	}
}

// start spawns the heartbeat daemon for one rank's world communicator.
// Daemons are staggered across the interval so the beats do not arrive as
// one synchronized burst, and they stop beating the moment their rank
// fail-stops — that silence is exactly what the peers detect.
func (hm *healthMonitor) start(c *mpi.Comm) {
	k := c.Job().Fabric().Kernel()
	self := c.WorldRank()
	size := c.Size()
	k.SpawnDaemon(fmt.Sprintf("xccl/heartbeat%d", self), func(p *sim.Proc) {
		p.Sleep(hm.interval * time.Duration(self+1) / time.Duration(size+1))
		if hm.stopped {
			return
		}
		hm.beat(c, self, p)
		for !hm.stopped {
			p.Sleep(hm.interval)
			if hm.stopped {
				return
			}
			if fs := c.Job().Fabric().FailStop(); fs != nil && fs.RankDead(self, p.Now()) {
				return
			}
			hm.beat(c, self, p)
			hm.check(c, self, p)
		}
	})
}

// stop winds the daemons down: each returns at its next wakeup.
func (hm *healthMonitor) stop() { hm.stopped = true }

// beat sends one heartbeat to every unsuspected peer and records the
// sender's beat epoch in the shared observation state.
func (hm *healthMonitor) beat(c *mpi.Comm, self int, p *sim.Proc) {
	fab := c.Job().Fabric()
	for r := 0; r < c.Size(); r++ {
		wr := c.WorldRankOf(r)
		if wr == self {
			continue
		}
		if _, bad := hm.suspected[wr]; bad {
			continue
		}
		// Routing failures are ignored: a missed beat is indistinguishable
		// from a late one, which is what the accrual model is for.
		_, _ = fab.TryControlMsg(p, c.Device(), c.RankDevice(r))
	}
	hm.observe(self, p.Now())
	hm.rt.opts.Metrics.Counter("xccl_heartbeats_sent_total",
		"Heartbeat rounds sent by the failure detector.",
		metrics.Labels{"backend": string(hm.rt.kind)}).Inc()
}

// observe folds one beat into the rank's inter-arrival model.
func (hm *healthMonitor) observe(rank int, now time.Duration) {
	if lastT, ok := hm.last[rank]; ok {
		ia := now - lastT
		m, d := hm.mean[rank], hm.dev[rank]
		if m == 0 {
			m, d = ia, ia/8
		} else {
			m = (4*m + ia) / 5
			diff := ia - m
			if diff < 0 {
				diff = -diff
			}
			d = (4*d + diff) / 5
		}
		hm.mean[rank], hm.dev[rank] = m, d
	}
	hm.last[rank] = now
}

// check accrues suspicion against peers whose beats have stopped. A peer
// whose silence exceeds threshold deviations beyond its mean inter-arrival
// is checked against the fail-stop oracle: dead peers become confirmed
// suspicions, live ones (jitter, brownout, straggler) get a fresh lease
// and a widened model so the same jitter does not re-trip immediately.
func (hm *healthMonitor) check(c *mpi.Comm, self int, p *sim.Proc) {
	now := p.Now()
	fs := c.Job().Fabric().FailStop()
	for r := 0; r < c.Size(); r++ {
		wr := c.WorldRankOf(r)
		if wr == self {
			continue
		}
		if _, bad := hm.suspected[wr]; bad {
			continue
		}
		if hm.rt.partitioner() != nil && hm.rt.severedPair(c, self, r, now) {
			// The peer is across an active cut: unreachable, not dead. Note
			// the episode once per (witness, peer) and skip phi accounting —
			// partition silence must never decay into a death verdict (the
			// quorum Shrink, not the detector, excludes severed ranks).
			key := [2]int{self, wr}
			if !hm.cutNoted[key] {
				hm.cutNoted[key] = true
				hm.noteSuspicion(wr, self, now, "partitioned")
			}
			continue
		}
		delete(hm.cutNoted, [2]int{self, wr})
		lastT, ok := hm.last[wr]
		if !ok {
			continue
		}
		m := hm.mean[wr]
		if m == 0 {
			continue
		}
		d := hm.dev[wr]
		if d < m/8 {
			d = m / 8
		}
		phi := float64(now-lastT-m) / float64(d)
		if phi < hm.threshold {
			continue
		}
		if fs != nil && fs.RankDead(wr, now) {
			hm.suspected[wr] = now
			hm.noteSuspicion(wr, self, now, "confirmed")
		} else {
			hm.last[wr] = now
			hm.mean[wr] = m * 2
			hm.noteSuspicion(wr, self, now, "retracted")
		}
	}
}

// noteSuspicion publishes one suspicion outcome. The trace record names
// the witnessing rank; Bytes carries the suspected peer's world rank.
func (hm *healthMonitor) noteSuspicion(peer, witness int, now time.Duration, outcome string) {
	rt := hm.rt
	if outcome == "confirmed" {
		rt.stats.Suspicions++
	}
	rt.opts.Metrics.Counter("xccl_suspicions_total",
		"Heartbeat suspicions by outcome (confirmed dead, retracted false positive, or partitioned peer).",
		metrics.Labels{"backend": string(rt.kind), "outcome": outcome}).Inc()
	event := "rank_suspected"
	switch outcome {
	case "retracted":
		event = "suspicion_retracted"
	case "partitioned":
		event = "rank_partitioned"
	}
	rec := trace.Record{
		Op: "heartbeat", Backend: string(rt.kind), Rank: witness,
		Event: event, Start: now, Bytes: int64(peer),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// suspectErr fast-fails a dispatch when the heartbeat detector has
// confirmed a member of this communicator dead: the caller gets the same
// ErrRankDead verdict the watchdog would produce, minus the watchdog's
// full timeout wait. Nil when the detector is off or every member is
// healthy.
func (x *Comm) suspectErr(op OpKind) error {
	hm := x.rt.health
	if hm == nil || len(hm.suspected) == 0 {
		return nil
	}
	self := x.mpi.WorldRank()
	for r := 0; r < x.Size(); r++ {
		wr := x.mpi.WorldRankOf(r)
		if wr == self {
			continue
		}
		if t, ok := hm.suspected[wr]; ok {
			return &ccl.Error{Backend: string(x.rt.kind), Result: ccl.ErrRankDead,
				Op: string(op), Rank: wr,
				Msg: fmt.Sprintf("heartbeat detector suspected rank %d dead at %v", wr, t)}
		}
	}
	return nil
}
