package core

import (
	"errors"
	"fmt"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/trace"
)

// The MPI-standard collective API of the xCCL layer. Every method keeps
// exact MPI semantics (blocking, standard buffers, mpi datatypes/ops) and
// transparently picks the MPI or CCL path per the dispatch decision.

// run executes one collective through the decided path, handling the
// CCL-error fallback (§1.2 advantage 3), the resilience policy (transient
// retries, circuit breaker), statistics, trace records, and metric
// aggregation.
func (x *Comm) run(op OpKind, bytes int64, d decision,
	cclPath func(cc *ccl.Comm, s *device.Stream) error, mpiPath func()) {
	// A fenced rank (minority side of a partition) no-ops before anything
	// else: it lost the quorum vote and must Rejoin, not dispatch.
	if _, bad := x.rt.fenced[x.mpi.WorldRank()]; bad {
		if x.failure == nil {
			x.failure = ErrFenced
		}
		return
	}
	// A failed handle no-ops: a dead rank must stop participating (its
	// peers' watchdogs already wrote it off), and a revoked communicator
	// accepts no new collectives until the survivors Shrink it.
	if x.dead || x.rt.revoked[x.mpi.ContextID()] {
		if x.failure == nil {
			x.failure = ErrCommRevoked
		}
		return
	}
	// A stale-epoch handle no-ops: a Grow superseded this member set, and
	// interleaving old-epoch collectives with the grown world would remix
	// the two sides of a healed partition.
	if x.rt.staleCtx[x.mpi.ContextID()] {
		if x.failure == nil {
			x.failure = ErrStaleEpoch
		}
		return
	}
	// Proactive fast-fail: a peer the heartbeat detector has confirmed
	// dead would stall this collective until the watchdog fires; surface
	// the same ErrRankDead verdict now instead of paying the timeout.
	if err := x.suspectErr(op); err != nil {
		x.noteRankFailure(op, err)
		return
	}
	// Partition fast-fail: a member on the far side of an active cut makes
	// the collective unrunnable; surface ErrUnreachable in bounded time so
	// the caller escalates to the quorum Shrink instead of timing out.
	if err := x.unreachableErr(op); err != nil {
		x.notePartition(op, err)
		return
	}
	start := x.mpi.Proc().Now()
	path := PathMPI
	if d.useCCL && !x.rt.allowCCL(x, op) {
		// Open breaker: demote to MPI without paying the CCL failure.
		d.useCCL = false
		x.rt.stats.BreakerSkips++
		x.rt.stats.Fallbacks.Error++
		x.rt.countFallback(op, "breaker_open")
	}
	if d.useCCL {
		if err := x.runResilient(op, cclPath); err != nil {
			if errors.Is(err, ccl.ErrRankDead) {
				// Fail-stop verdict: retrying cannot succeed and the MPI
				// fallback would block forever on the dead peer, so
				// neither the retry loop nor the breaker reacts — the
				// failure is surfaced for ULFM-style revoke/shrink.
				x.noteRankFailure(op, err)
				return
			}
			if errors.Is(err, ccl.ErrUnreachable) {
				// A transfer crossed the cut mid-schedule (the partition
				// opened after dispatch). Same policy as fail-stop: no
				// retry, no MPI fallback — surface it for the quorum vote.
				x.notePartition(op, err)
				return
			}
			x.rt.breakerFailure(x, op)
			x.rt.stats.Fallbacks.Error++
			x.rt.stats.MPIOps++
			x.rt.countFallback(op, "ccl_error")
			mpiPath()
		} else {
			x.rt.breakerSuccess(x, op)
			path = PathCCL
			x.rt.stats.CCLOps++
		}
	} else {
		x.rt.stats.MPIOps++
		mpiPath()
	}
	rec := trace.Record{
		Op: string(op), Path: path.String(), Backend: string(x.rt.kind),
		Rank: x.Rank(), Bytes: bytes,
		Start: start, Duration: x.mpi.Proc().Now() - start,
	}
	x.rt.opts.Trace.Add(rec)
	trace.RecordMetrics(x.rt.opts.Metrics, rec)
}

// Allreduce combines sendBuf into recvBuf across all ranks with op.
// Built-in CCL mapping: xcclAllReduce (§3.2).
func (x *Comm) Allreduce(sendBuf, recvBuf *device.Buffer, count int, dt mpi.Datatype, op mpi.Op) {
	bytes := int64(count) * int64(dt.Size())
	d := x.decide(OpAllreduce, bytes, dt, &op, sendBuf, recvBuf)
	x.run(OpAllreduce, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			cc.SetAlgorithm(d.algo, d.chunk)
			return cc.AllReduce(sendBuf, recvBuf, count, d.dt, d.op, s)
		},
		func() { x.mpi.Allreduce(sendBuf, recvBuf, count, dt, op) })
}

// Bcast broadcasts count elements from root. Built-in: xcclBroadcast.
func (x *Comm) Bcast(buf *device.Buffer, count int, dt mpi.Datatype, root int) {
	bytes := int64(count) * int64(dt.Size())
	d := x.decide(OpBcast, bytes, dt, nil, buf)
	x.run(OpBcast, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			cc.SetAlgorithm(d.algo, d.chunk)
			return cc.Broadcast(buf, buf, count, d.dt, root, s)
		},
		func() { x.mpi.Bcast(buf, count, dt, root) })
}

// Reduce combines sendBuf across ranks into root's recvBuf. Built-in:
// xcclReduce.
func (x *Comm) Reduce(sendBuf, recvBuf *device.Buffer, count int, dt mpi.Datatype, op mpi.Op, root int) {
	bytes := int64(count) * int64(dt.Size())
	bufs := []*device.Buffer{sendBuf}
	if x.Rank() == root {
		bufs = append(bufs, recvBuf)
	}
	d := x.decide(OpReduce, bytes, dt, &op, bufs...)
	// Non-root recv buffers may be nil in MPI; CCL needs a target only at
	// root, so pass sendBuf elsewhere (it is ignored).
	target := recvBuf
	if target == nil {
		target = sendBuf
	}
	x.run(OpReduce, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			cc.SetAlgorithm(d.algo, d.chunk)
			return cc.Reduce(sendBuf, target, count, d.dt, d.op, root, s)
		},
		func() { x.mpi.Reduce(sendBuf, recvBuf, count, dt, op, root) })
}

// Allgather concatenates every rank's sendBuf into recvBuf. Built-in:
// xcclAllGather.
func (x *Comm) Allgather(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer) {
	bytes := int64(count) * int64(dt.Size())
	d := x.decide(OpAllgather, bytes, dt, nil, sendBuf, recvBuf)
	x.run(OpAllgather, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			cc.SetAlgorithm(d.algo, d.chunk)
			return cc.AllGather(sendBuf, recvBuf, count, d.dt, s)
		},
		func() { x.mpi.Allgather(sendBuf, count, dt, recvBuf) })
}

// ReduceScatterBlock reduces count×n elements and scatters block r to rank
// r. Built-in: xcclReduceScatter.
func (x *Comm) ReduceScatterBlock(sendBuf, recvBuf *device.Buffer, count int, dt mpi.Datatype, op mpi.Op) {
	bytes := int64(count) * int64(dt.Size())
	d := x.decide(OpReduceScatter, bytes, dt, &op, sendBuf, recvBuf)
	x.run(OpReduceScatter, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			cc.SetAlgorithm(d.algo, d.chunk)
			return cc.ReduceScatter(sendBuf, recvBuf, count, d.dt, d.op, s)
		},
		func() { x.mpi.ReduceScatterBlock(sendBuf, recvBuf, count, dt, op) })
}

// Barrier always runs on the MPI path: a zero-byte synchronization gains
// nothing from a CCL kernel launch.
func (x *Comm) Barrier() {
	x.rt.stats.MPIOps++
	x.rt.opts.Metrics.Counter(trace.MetricOps,
		"Collective operations by dispatch path.",
		metrics.Labels{"op": "barrier", "path": PathMPI.String(),
			"backend": string(x.rt.kind), "size_bucket": metrics.SizeBucketLabel(0)}).Inc()
	x.mpi.Barrier()
}

// The send-recv-based collectives of §3.3: CCLs ship only five built-ins,
// so the layer synthesizes the rest from xcclSend/xcclRecv inside group
// calls, exactly as Listing 1 does for AlltoAllv.

// Alltoall exchanges count-element blocks between all rank pairs.
func (x *Comm) Alltoall(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer) {
	bytes := int64(count) * int64(dt.Size())
	d := x.decide(OpAlltoall, bytes, dt, nil, sendBuf, recvBuf)
	n := x.Size()
	blk := bytes
	x.run(OpAlltoall, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			if d.plan != "" {
				return cc.Alltoall(sendBuf, recvBuf, count, d.dt, d.plan, s)
			}
			if err := cc.GroupStart(); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if r == x.Rank() {
					copy(recvBuf.Bytes()[int64(r)*blk:(int64(r)+1)*blk], sendBuf.Bytes()[int64(r)*blk:(int64(r)+1)*blk])
					continue
				}
				if err := cc.Send(sendBuf.Slice(int64(r)*blk, blk), count, d.dt, r, s); err != nil {
					return err
				}
				if err := cc.Recv(recvBuf.Slice(int64(r)*blk, blk), count, d.dt, r, s); err != nil {
					return err
				}
			}
			return cc.GroupEnd()
		},
		func() { x.mpi.Alltoall(sendBuf, count, dt, recvBuf) })
}

// Alltoallv is the paper's Listing 1: per-peer counts and displacements
// over one xcclGroupStart/End.
func (x *Comm) Alltoallv(sendBuf *device.Buffer, sendCounts, sdispls []int, dt mpi.Datatype,
	recvBuf *device.Buffer, recvCounts, rdispls []int) {
	var maxBytes int64
	esz := int64(dt.Size())
	for _, c := range sendCounts {
		if b := int64(c) * esz; b > maxBytes {
			maxBytes = b
		}
	}
	d := x.decide(OpAlltoallv, maxBytes, dt, nil, sendBuf, recvBuf)
	n := x.Size()
	x.run(OpAlltoallv, maxBytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			if d.plan != "" {
				return cc.Alltoallv(sendBuf, sendCounts, sdispls, recvBuf, recvCounts, rdispls, d.dt, d.plan, s)
			}
			if err := cc.GroupStart(); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if r == x.Rank() {
					so, ln := int64(sdispls[r])*esz, int64(sendCounts[r])*esz
					ro := int64(rdispls[r]) * esz
					copy(recvBuf.Bytes()[ro:ro+ln], sendBuf.Bytes()[so:so+ln])
					continue
				}
				if sendCounts[r] > 0 {
					if err := cc.Send(sendBuf.Slice(int64(sdispls[r])*esz, int64(sendCounts[r])*esz), sendCounts[r], d.dt, r, s); err != nil {
						return err
					}
				}
				if recvCounts[r] > 0 {
					if err := cc.Recv(recvBuf.Slice(int64(rdispls[r])*esz, int64(recvCounts[r])*esz), recvCounts[r], d.dt, r, s); err != nil {
						return err
					}
				}
			}
			return cc.GroupEnd()
		},
		func() { x.mpi.Alltoallv(sendBuf, sendCounts, sdispls, dt, recvBuf, recvCounts, rdispls) })
}

// Gather collects every rank's block at root via group send/recv.
func (x *Comm) Gather(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer, root int) {
	bytes := int64(count) * int64(dt.Size())
	bufs := []*device.Buffer{sendBuf}
	if x.Rank() == root {
		bufs = append(bufs, recvBuf)
	}
	d := x.decide(OpGather, bytes, dt, nil, bufs...)
	n := x.Size()
	x.run(OpGather, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			if d.plan != "" {
				return cc.Gather(sendBuf, recvBuf, count, d.dt, root, d.plan, s)
			}
			if err := cc.GroupStart(); err != nil {
				return err
			}
			if x.Rank() == root {
				for r := 0; r < n; r++ {
					if r == root {
						copy(recvBuf.Bytes()[int64(r)*bytes:(int64(r)+1)*bytes], sendBuf.Bytes()[:bytes])
						continue
					}
					if err := cc.Recv(recvBuf.Slice(int64(r)*bytes, bytes), count, d.dt, r, s); err != nil {
						return err
					}
				}
			} else if err := cc.Send(sendBuf, count, d.dt, root, s); err != nil {
				return err
			}
			return cc.GroupEnd()
		},
		func() { x.mpi.Gather(sendBuf, count, dt, recvBuf, root) })
}

// Scatter distributes root's blocks via group send/recv.
func (x *Comm) Scatter(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer, root int) {
	bytes := int64(count) * int64(dt.Size())
	bufs := []*device.Buffer{recvBuf}
	if x.Rank() == root {
		bufs = append(bufs, sendBuf)
	}
	d := x.decide(OpScatter, bytes, dt, nil, bufs...)
	n := x.Size()
	x.run(OpScatter, bytes, d,
		func(cc *ccl.Comm, s *device.Stream) error {
			if d.plan != "" {
				return cc.Scatter(sendBuf, recvBuf, count, d.dt, root, d.plan, s)
			}
			if err := cc.GroupStart(); err != nil {
				return err
			}
			if x.Rank() == root {
				for r := 0; r < n; r++ {
					if r == root {
						copy(recvBuf.Bytes()[:bytes], sendBuf.Bytes()[int64(r)*bytes:(int64(r)+1)*bytes])
						continue
					}
					if err := cc.Send(sendBuf.Slice(int64(r)*bytes, bytes), count, d.dt, r, s); err != nil {
						return err
					}
				}
			} else if err := cc.Recv(recvBuf, count, d.dt, root, s); err != nil {
				return err
			}
			return cc.GroupEnd()
		},
		func() { x.mpi.Scatter(sendBuf, count, dt, recvBuf, root) })
}

// Nonblocking collectives (§1.2 advantage 4): CCLs only provide five
// blocking built-ins, so the layer offers the MPI non-blocking set by
// running the blocking operation on a progress process.

// Request is a handle on a nonblocking xCCL collective.
type Request struct {
	done func(x *Comm)
}

// Wait blocks until the operation completes.
func (x *Comm) Wait(r *Request) { r.done(x) }

func (x *Comm) async(name string, fn func(x *Comm)) *Request {
	// Reserve the collective's sequence slot now (at issue time, per MPI
	// nonblocking-collective matching rules), then run the blocking
	// operation on a progress process bound to that slot.
	epoch := x.mpi.ReserveEpoch()
	child := x.mpi.Proc().Kernel().Spawn(
		fmt.Sprintf("xccl/%s/r%d", name, x.Rank()),
		func(p *sim.Proc) { fn(&Comm{rt: x.rt, mpi: x.mpi.BindAsync(p, epoch)}) })
	return &Request{done: func(x *Comm) { x.mpi.Proc().Join(child) }}
}

// Iallreduce starts a nonblocking Allreduce.
func (x *Comm) Iallreduce(sendBuf, recvBuf *device.Buffer, count int, dt mpi.Datatype, op mpi.Op) *Request {
	return x.async("iallreduce", func(x *Comm) { x.Allreduce(sendBuf, recvBuf, count, dt, op) })
}

// Ibcast starts a nonblocking Bcast.
func (x *Comm) Ibcast(buf *device.Buffer, count int, dt mpi.Datatype, root int) *Request {
	return x.async("ibcast", func(x *Comm) { x.Bcast(buf, count, dt, root) })
}

// Ialltoall starts a nonblocking Alltoall.
func (x *Comm) Ialltoall(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer) *Request {
	return x.async("ialltoall", func(x *Comm) { x.Alltoall(sendBuf, count, dt, recvBuf) })
}

// Iallgather starts a nonblocking Allgather.
func (x *Comm) Iallgather(sendBuf *device.Buffer, count int, dt mpi.Datatype, recvBuf *device.Buffer) *Request {
	return x.async("iallgather", func(x *Comm) { x.Allgather(sendBuf, count, dt, recvBuf) })
}
