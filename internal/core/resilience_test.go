package core

import (
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// allreduceOnce runs one correctness-checked 4-byte-per-element Allreduce.
func allreduceOnce(t *testing.T, x *Comm, count int) {
	t.Helper()
	send := x.Device().MustMalloc(int64(count) * 4)
	recv := x.Device().MustMalloc(int64(count) * 4)
	defer send.Free()
	defer recv.Free()
	send.FillFloat32(float32(x.Rank() + 1))
	x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
	want := float32(x.Size() * (x.Size() + 1) / 2)
	if got := recv.Float32(count / 2); got != want {
		t.Errorf("allreduce sum = %v, want %v", got, want)
	}
}

// A transient xcclRemoteError on one rank's call must be absorbed by the
// retry policy: the operation still completes on the CCL path, no fallback,
// and the retry is visible in stats and the xccl_retries_total family.
func TestTransientErrorsAbsorbedByRetries(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL, Metrics: reg})
	plan := fault.NewPlan(1).AddRule(fault.Rule{
		Name: "transient", Op: "allreduce", Result: ccl.ErrRemote, Count: 1,
	})
	rt.Job().Fabric().SetFaults(plan)

	if err := rt.Run(func(x *Comm) { allreduceOnce(t, x, 1<<10) }); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
	if st.CCLOps != 4 || st.MPIOps != 0 || st.Fallbacks.Error != 0 {
		t.Errorf("ops = %+v, want all 4 on CCL with no fallback", st)
	}
	if got := plan.Fired("transient"); got != 1 {
		t.Errorf("rule fired %d times, want 1", got)
	}
	v, ok := reg.CounterValue("xccl_retries_total", metrics.Labels{
		"op": "allreduce", "backend": "nccl", "result": "xcclRemoteError"})
	if !ok || v != 1 {
		t.Errorf("xccl_retries_total = %v (exists %v), want exactly 1", v, ok)
	}
	if _, ok := reg.CounterValue("xccl_breaker_transitions_total", metrics.Labels{
		"backend": "nccl", "op": "allreduce", "to": "open"}); ok {
		t.Error("transient error must not trip the breaker")
	}
}

// A persistent failure burst must open the (backend, op) breaker: further
// calls skip the CCL without paying its failure, a half-open probe after
// the cooldown re-opens when it fails, and a clean probe closes it again.
// Every transition count is asserted exactly.
func TestPersistentFailureTripsBreakerAndRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 2, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg,
		Resilience: &Resilience{
			MaxRetries: 2, RetryBackoff: 10 * time.Microsecond,
			BreakerThreshold: 2, BreakerCooldown: time.Millisecond,
		},
	})
	// Four persistent failures: wave 1 (2 ranks) opens the breaker, the
	// half-open probe wave (2 ranks) exhausts the rule re-opening it.
	plan := fault.NewPlan(7).AddRule(fault.Rule{
		Name: "broken", Op: "allreduce", Result: ccl.ErrInternal, Count: 4,
	})
	rt.Job().Fabric().SetFaults(plan)

	if err := rt.Run(func(x *Comm) {
		allreduceOnce(t, x, 256) // wave 1: both ranks fail, breaker opens
		allreduceOnce(t, x, 256) // wave 2: breaker open, CCL skipped
		x.MPI().Proc().Sleep(2 * time.Millisecond)
		allreduceOnce(t, x, 256) // wave 3: half-open probe fails, re-opens
		x.MPI().Proc().Sleep(2 * time.Millisecond)
		allreduceOnce(t, x, 256) // wave 4: probe succeeds, breaker closes
	}); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.BreakerSkips != 2 {
		t.Errorf("breaker skips = %d, want 2 (wave 2)", st.BreakerSkips)
	}
	if st.CCLOps != 2 || st.MPIOps != 6 {
		t.Errorf("CCLOps=%d MPIOps=%d, want 2 and 6", st.CCLOps, st.MPIOps)
	}
	if st.Fallbacks.Error != 6 {
		t.Errorf("error fallbacks = %d, want 6 (4 ccl_error + 2 breaker_open)", st.Fallbacks.Error)
	}
	if st.Retries != 0 {
		t.Errorf("retries = %d, want 0 (xcclInternalError is not transient)", st.Retries)
	}
	for to, want := range map[string]float64{"open": 2, "half_open": 2, "closed": 1} {
		v, ok := reg.CounterValue("xccl_breaker_transitions_total", metrics.Labels{
			"backend": "nccl", "op": "allreduce", "to": to})
		if !ok || v != want {
			t.Errorf("breaker transitions to %s = %v (exists %v), want %v", to, v, ok, want)
		}
	}
	v, ok := reg.CounterValue("xccl_fallbacks_total", metrics.Labels{
		"op": "allreduce", "cause": "breaker_open", "backend": "nccl"})
	if !ok || v != 2 {
		t.Errorf("breaker_open fallbacks = %v (exists %v), want 2", v, ok)
	}
}

// An injected comm-init failure must fail every rendezvoused rank with the
// same error (Runtime.pending err propagation), fall back to MPI, and not
// be cached: the next collective wave retries the creation and succeeds.
func TestCommInitFailurePropagatesAndRetries(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 4, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg,
		// High threshold: this test isolates the init path from the breaker.
		Resilience: &Resilience{BreakerThreshold: 100, BreakerCooldown: time.Millisecond},
	})
	plan := fault.NewPlan(3).AddRule(fault.Rule{
		Name: "bad-init", Point: fault.CommInit, Result: ccl.ErrInternal, Count: 1,
	})
	rt.Job().Fabric().SetFaults(plan)

	if err := rt.Run(func(x *Comm) {
		allreduceOnce(t, x, 256) // wave 1: comm init fails, all ranks fall back
		allreduceOnce(t, x, 256) // wave 2: init retried and succeeds
	}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Fallbacks.Error != 4 || st.MPIOps != 4 {
		t.Errorf("stats after failed init = %+v, want 4 error fallbacks / 4 MPI ops", st)
	}
	if st.CCLOps != 4 {
		t.Errorf("CCLOps = %d, want 4 (second wave heals)", st.CCLOps)
	}
	if got := plan.Fired("bad-init"); got != 1 {
		t.Errorf("init rule fired %d times, want 1 (creation attempted once per wave)", got)
	}
}

// A link-degradation window must slow a CCL Allreduce sweep without
// deadlocking it, and the degraded transfers must be counted.
func TestLinkDegradationSlowsButCompletes(t *testing.T) {
	elapsed := func(plan *fault.Plan, reg *metrics.Registry) time.Duration {
		rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL, Metrics: reg})
		if plan != nil {
			rt.Job().Fabric().SetFaults(plan)
		}
		var total time.Duration
		if err := rt.Run(func(x *Comm) {
			start := x.MPI().Proc().Now()
			for count := 1 << 10; count <= 1<<18; count <<= 2 {
				allreduceOnce(t, x, count)
			}
			if x.Rank() == 0 {
				total = x.MPI().Proc().Now() - start
			}
		}); err != nil {
			t.Fatal(err)
		}
		return total
	}

	clean := elapsed(nil, nil)
	reg := metrics.NewRegistry()
	plan := fault.NewPlan(9).AddLinkRule(fault.LinkRule{
		Name: "brownout", Link: "intra", BWScale: 0.25, ChannelCap: 2,
	})
	degraded := elapsed(plan, reg)

	if degraded <= clean {
		t.Errorf("degraded sweep (%v) not slower than clean (%v)", degraded, clean)
	}
	if degraded > 64*clean {
		t.Errorf("degraded sweep %v unboundedly slower than clean %v", degraded, clean)
	}
	if v, ok := reg.CounterValue("xccl_degraded_transfers_total",
		metrics.Labels{"link": "intra"}); !ok || v <= 0 {
		t.Errorf("degraded transfers = %v (exists %v), want > 0", v, ok)
	}
}

// A failure inside a batched group (a send of an Alltoall) leaves the
// rank's group open; runCCL must abort it so the transient retry's
// GroupStart does not see a phantom "nested group". Wave 2's sends fail
// once per rank (transient), every rank retries into a clean group, and
// the whole run stays on the CCL path.
func TestMidGroupFailureAbortsGroupForRetry(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL})
	// Wave 1 issues 4 ranks × 3 sends = 12 clean calls; the next 4 send
	// validations (each rank's first send of wave 2) fail transiently.
	plan := fault.NewPlan(5).AddRule(fault.Rule{
		Name: "mid-group", Op: "send", Result: ccl.ErrRemote, After: 12, Count: 4,
	})
	rt.Job().Fabric().SetFaults(plan)

	if err := rt.Run(func(x *Comm) {
		n := x.Size()
		blk := int64(1024)
		send := x.Device().MustMalloc(blk * int64(n))
		recv := x.Device().MustMalloc(blk * int64(n))
		defer send.Free()
		defer recv.Free()
		for i := 0; i < 3; i++ {
			x.Alltoall(send, 256, mpi.Float32, recv)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Retries != 4 {
		t.Errorf("retries = %d, want 4 (one per rank)", st.Retries)
	}
	if st.CCLOps != 12 || st.MPIOps != 0 {
		t.Errorf("CCLOps=%d MPIOps=%d, want all 12 on the CCL path", st.CCLOps, st.MPIOps)
	}
}
