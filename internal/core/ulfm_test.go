package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// watchdogPolicy is the resilience policy the recovery tests run under:
// default retry/breaker knobs plus an armed collective watchdog.
func watchdogPolicy() *Resilience {
	pol := DefaultResilience()
	pol.WatchdogTimeout = 200 * time.Microsecond
	return pol
}

// The full fail-stop recovery path: rank 2 crashes on its third Allreduce,
// its own call fails fast, the survivors' watchdogs convert the stuck
// collective into ErrRankDead verdicts in bounded virtual time, and
// revoke+shrink yields a working 3-rank communicator that completes the
// run — all deterministic.
func TestCrashDetectShrinkContinue(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 4, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: watchdogPolicy(),
	})
	plan := fault.NewPlan(1).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{2}, Op: "allreduce", After: 2,
	})
	rt.Job().Fabric().SetFaults(plan)

	const count = 256
	if err := rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(count * 4)
		recv := x.Device().MustMalloc(count * 4)
		defer send.Free()
		defer recv.Free()
		for step := 0; step < 3 && x.Failure() == nil; step++ {
			send.FillFloat32(float32(x.Rank() + 1))
			x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
			if x.Failure() == nil && recv.Float32(0) != 10 {
				t.Errorf("rank %d step %d: sum = %v, want 10", x.Rank(), step, recv.Float32(0))
			}
		}
		err := x.Failure()
		if err == nil {
			t.Errorf("rank %d observed no failure", x.Rank())
			return
		}
		if !errors.Is(err, ccl.ErrRankDead) {
			t.Errorf("rank %d failure = %v, want ErrRankDead", x.Rank(), err)
		}
		var ce *ccl.Error
		if !errors.As(err, &ce) || ce.Rank != 2 {
			t.Errorf("rank %d failure attributes rank %d, want 2 (%v)", x.Rank(), ce.Rank, err)
		}
		if msg := err.Error(); !strings.Contains(msg, "rank 2") || !strings.Contains(msg, "allreduce") {
			t.Errorf("failure message %q does not name the failing rank and op", msg)
		}
		if x.Dead() {
			if x.Rank() != 2 {
				t.Errorf("rank %d reads as dead, only rank 2 crashed", x.Rank())
			}
			return // the crashed rank exits; survivors recover
		}
		x.Revoke()
		nx, err := x.Shrink()
		if err != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), err)
			return
		}
		if nx.Size() != 3 {
			t.Errorf("shrunk size = %d, want 3", nx.Size())
		}
		// The run completes on the survivors: a fresh CCL communicator is
		// built for the shrunk world and the crash rule (scoped to world
		// rank 2) does not re-fire on the renumbered ranks.
		send.FillFloat32(float32(nx.Rank() + 1))
		nx.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
		if err := nx.Failure(); err != nil {
			t.Errorf("rank %d post-shrink failure: %v", x.Rank(), err)
		} else if recv.Float32(0) != 6 {
			t.Errorf("post-shrink sum = %v, want 6", recv.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}

	if now := rt.Job().Fabric().Kernel().Now(); now > 100*time.Millisecond {
		t.Errorf("run took %v of virtual time; watchdog should bound the stuck collective", now)
	}
	st := rt.Stats()
	if st.RankFailures != 1 {
		t.Errorf("RankFailures = %d, want exactly 1 (counted on self-detection only)", st.RankFailures)
	}
	if st.Shrinks != 1 {
		t.Errorf("Shrinks = %d, want 1", st.Shrinks)
	}
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (ErrRankDead is not transient)", st.Retries)
	}
	if v, ok := reg.CounterValue("xccl_rank_failures_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_rank_failures_total = %v (exists %v), want 1", v, ok)
	}
	if v, ok := reg.CounterValue("xccl_shrink_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_shrink_total = %v (exists %v), want 1", v, ok)
	}
	// The crash must never reach the breaker or the MPI fallback: a dead
	// peer would hang the MPI path.
	if _, ok := reg.CounterValue("xccl_fallbacks_total", metrics.Labels{
		"op": "allreduce", "cause": "ccl_error", "backend": "nccl"}); ok {
		t.Error("ErrRankDead fell back to MPI; it must be intercepted")
	}
}

// Revoking a healthy communicator makes every subsequent collective on it
// a no-op with Failure() == ErrCommRevoked, and a Shrink with no dead
// ranks rebuilds a same-size working communicator — the pure agreement
// machinery, no faults involved.
func TestRevokeStopsDispatchAndShrinkRebuilds(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 2, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: watchdogPolicy(),
	})
	const count = 64
	if err := rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(count * 4)
		recv := x.Device().MustMalloc(count * 4)
		defer send.Free()
		defer recv.Free()
		allreduceOnce(t, x, count)
		if x.Rank() == 0 {
			x.Revoke()
		}
		x.Barrier() // all ranks alive: the MPI barrier is safe and orders the revoke
		recv.FillFloat32(-1)
		x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
		if !errors.Is(x.Failure(), ErrCommRevoked) {
			t.Errorf("rank %d failure = %v, want ErrCommRevoked", x.Rank(), x.Failure())
		}
		if recv.Float32(0) != -1 {
			t.Errorf("revoked collective wrote recv (%v); it must be a no-op", recv.Float32(0))
		}
		nx, err := x.Shrink()
		if err != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), err)
			return
		}
		if nx.Size() != 2 || nx.Failure() != nil {
			t.Errorf("shrunk comm size=%d failure=%v, want 2/nil", nx.Size(), nx.Failure())
		}
		allreduceOnce(t, nx, count)
	}); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Shrinks != 1 || st.RankFailures != 0 {
		t.Errorf("Shrinks=%d RankFailures=%d, want 1/0", st.Shrinks, st.RankFailures)
	}
}

// A time-triggered crash (dead from a virtual instant, no call budget)
// must be detected the same way: the dead rank's first call after From
// fails fast and the survivors shrink around it.
func TestTimeTriggeredCrashShrinks(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{
		Backend: Auto, Mode: PureCCL, Resilience: watchdogPolicy(),
	})
	plan := fault.NewPlan(1).AddRule(fault.Rule{
		Name: "late-crash", Crash: true, Ranks: []int{1}, From: 50 * time.Microsecond,
	})
	rt.Job().Fabric().SetFaults(plan)

	const count = 128
	if err := rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(count * 4)
		recv := x.Device().MustMalloc(count * 4)
		defer send.Free()
		defer recv.Free()
		for x.Failure() == nil {
			send.FillFloat32(1)
			x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
			x.MPI().Proc().Sleep(20 * time.Microsecond)
		}
		if x.Dead() {
			if x.Rank() != 1 {
				t.Errorf("rank %d dead, want only rank 1", x.Rank())
			}
			return
		}
		nx, err := x.Shrink() // implies the revoke
		if err != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), err)
			return
		}
		send.FillFloat32(1)
		nx.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
		if nx.Failure() != nil || recv.Float32(0) != 3 {
			t.Errorf("post-shrink: failure=%v sum=%v, want nil/3", nx.Failure(), recv.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.RankFailures != 1 || st.Shrinks != 1 {
		t.Errorf("RankFailures=%d Shrinks=%d, want 1/1", st.RankFailures, st.Shrinks)
	}
}
