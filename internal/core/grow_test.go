package core

import (
	"errors"
	"testing"
	"time"

	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// The full regrowth path: 4-device job, 3 active ranks plus 1 spare.
// Rank 1 crashes, the survivors shrink to 2, Grow adopts the spare (whose
// restore callback runs before the join), and an allreduce on the grown
// communicator completes at the restored width with correct results.
func TestGrowAdoptsSpareAfterShrink(t *testing.T) {
	const active = 3
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 4, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: watchdogPolicy(),
	})
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{1}, Op: "allreduce", After: 1,
	}))

	const count = 256
	restored := false
	if err := rt.Run(func(x *Comm) {
		if x.MPI().Rank() >= active {
			nx, adopted := x.WaitAsSpare(func() {
				x.MPI().Proc().Sleep(10 * time.Microsecond) // checkpoint read
				restored = true
			})
			if !adopted {
				t.Error("spare released without adoption despite a crash")
				return
			}
			x = nx
		} else {
			members := make([]int, active)
			for i := range members {
				members[i] = i
			}
			x = rt.Wrap(x.MPI().Subset(members))

			buf := x.Device().MustMalloc(count * 4)
			defer buf.Free()
			buf.FillFloat32(float32(x.Rank() + 1))
			x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
			x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum) // rank 1 dies here
			if x.Failure() == nil {
				t.Errorf("rank %d saw no failure", x.Rank())
				return
			}
			if x.Dead() {
				return
			}
			nx, err := x.Shrink()
			if err != nil {
				t.Errorf("rank %d shrink: %v", x.Rank(), err)
				return
			}
			if nx.Size() != active-1 {
				t.Errorf("shrunk size = %d, want %d", nx.Size(), active-1)
			}
			gx, adopted, err := nx.Grow(active - nx.Size())
			if err != nil {
				t.Errorf("rank %d grow: %v", x.Rank(), err)
				return
			}
			if len(adopted) != 1 || adopted[0] != 3 {
				t.Errorf("adopted = %v, want [3] (the parked spare)", adopted)
			}
			x = gx
		}
		// Survivors {0, 2} and the adopted spare {3}: the grown communicator
		// must be full-width and collective-capable.
		if x.Size() != active {
			t.Errorf("grown size = %d, want %d", x.Size(), active)
		}
		buf := x.Device().MustMalloc(count * 4)
		defer buf.Free()
		buf.FillFloat32(float32(x.Rank() + 1))
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if err := x.Failure(); err != nil {
			t.Errorf("world rank %d post-grow failure: %v", x.MPI().WorldRank(), err)
		} else if buf.Float32(0) != 6 {
			t.Errorf("post-grow sum = %v, want 6", buf.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Error("spare joined without running its restore callback")
	}
	st := rt.Stats()
	if st.Shrinks != 1 || st.Grows != 1 {
		t.Errorf("Shrinks, Grows = %d, %d; want 1, 1", st.Shrinks, st.Grows)
	}
	if v, ok := reg.CounterValue("xccl_grow_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_grow_total = %v (exists %v), want 1", v, ok)
	}
}

// A fault-free run must drain cleanly: the unused spare is released (not
// adopted), no grow happens, and the job terminates without deadlock.
func TestUnusedSpareReleasedAtDrain(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 3, Options{Backend: Auto, Mode: PureCCL})
	released := false
	if err := rt.Run(func(x *Comm) {
		if x.MPI().Rank() == 2 {
			if _, adopted := x.WaitAsSpare(nil); adopted {
				t.Error("spare adopted in a fault-free run")
			} else {
				released = true
			}
			return
		}
		x = rt.Wrap(x.MPI().Subset([]int{0, 1}))
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if buf.Float32(0) != 2 {
			t.Errorf("sum = %v, want 2", buf.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Error("spare never released")
	}
	if rt.Stats().Grows != 0 {
		t.Errorf("Grows = %d, want 0", rt.Stats().Grows)
	}
}

// Grow with an empty pool is a clean refusal: every caller gets
// ErrNoSpares and keeps its current width.
func TestGrowWithoutSpares(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: PureCCL})
	if err := rt.Run(func(x *Comm) {
		if _, _, err := x.Grow(1); !errors.Is(err, ErrNoSpares) {
			t.Errorf("rank %d: Grow on empty pool = %v, want ErrNoSpares", x.Rank(), err)
		}
		// Still collective-capable at the old width afterwards.
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if buf.Float32(0) != 2 {
			t.Errorf("sum = %v, want 2", buf.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
}
