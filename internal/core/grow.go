package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mpixccl/internal/metrics"
	"mpixccl/internal/sim"
	"mpixccl/internal/trace"
)

// Spare-rank regrowth: the inverse of the ULFM-style Shrink. A job is
// launched with more ranks than the application needs; the extras park in
// the runtime's spare pool (WaitAsSpare) until the survivors of a crash
// call Grow, which adopts spares via a join rendezvous and hands every
// participant a communicator at the restored width:
//
//	detect -> Revoke -> Shrink -> Grow (adopt spares) -> continue at full width
//
// Spares restore their replica state from the application's checkpoint
// (the restore callback) before joining, so the first collective on the
// grown communicator sees peers with consistent state.

// ErrNoSpares reports a Grow attempted with an empty spare pool: the
// communicator keeps its current (shrunk) width.
var ErrNoSpares = errors.New("xccl: no spare ranks available")

// spareSlot is one parked spare rank awaiting adoption.
type spareSlot struct {
	worldRank int
	join      *sim.Event
	members   []int // agreed member world ranks, set on adoption
	released  bool  // the job drained without adopting this spare
}

// growState coordinates one Grow across the survivors of a shrunk
// communicator, mirroring shrinkState: the first arrival fixes the adopted
// set, votes flow to the coordinator, and the last arrival invites the
// spares and broadcasts the decision.
type growState struct {
	members []int // agreed member world ranks, ascending
	adopted []int // spare world ranks being adopted, ascending
	arrived int
	ready   *sim.Event
	err     error
}

// WaitAsSpare parks this rank in the runtime's spare pool until a Grow
// adopts it or the job drains. Call it on the world communicator before
// any collective; ranks above the application's active width do this
// first thing. On adoption the restore callback (when non-nil) runs
// before the join completes — the place to load replica state from a
// checkpoint, paying its virtual-time cost while the survivors wait at
// the join rendezvous — and the returned communicator contains the
// survivors plus the adopted spares at their agreed world-rank order.
// The bool is false when the job finished without needing this spare.
func (x *Comm) WaitAsSpare(restore func()) (*Comm, bool) {
	rt := x.rt
	p := x.mpi.Proc()
	wr := x.mpi.WorldRank()
	slot := &spareSlot{worldRank: wr, join: sim.NewEvent(p.Kernel())}
	rt.sparePool[wr] = slot
	slot.join.Wait(p)
	if slot.released {
		return nil, false
	}
	if restore != nil {
		restore()
	}
	world := rt.worldMPI[wr]
	if world == nil {
		world = x.mpi
	}
	// World-communicator local ranks are world ranks, so the agreed member
	// list doubles as the Subset argument.
	return rt.Wrap(world.Subset(slot.members)), true
}

// Grow rebuilds the communicator at a larger width by adopting up to need
// ranks from the spare pool (fewer when the pool is short — inspect the
// returned world ranks). Every member of the (typically just-shrunk)
// communicator must call it, like Shrink; the adopted spares participate
// from their WaitAsSpare park. The returned communicator orders members
// by world rank and builds its CCL communicator lazily on first use.
// Grow requires ranks launched through Runtime.Run (the world handles it
// registers are how survivors and spares meet); ErrNoSpares means the
// pool was empty and the caller keeps its current width.
func (x *Comm) Grow(need int) (*Comm, []int, error) {
	if x.dead {
		return nil, nil, x.failure
	}
	rt := x.rt
	if need <= 0 {
		return x, nil, nil
	}
	p := x.mpi.Proc()
	world := rt.worldMPI[x.mpi.WorldRank()]
	if world == nil {
		return nil, nil, fmt.Errorf("xccl: Grow requires ranks launched through Runtime.Run")
	}
	ctx := x.mpi.ContextID()
	gs, ok := rt.grows[ctx]
	if !ok {
		// First arrival fixes the adopted set and the member list; later
		// pool changes would be a different epoch.
		gs = &growState{ready: sim.NewEvent(p.Kernel())}
		avail := rt.availableSpares()
		if len(avail) == 0 {
			gs.err = ErrNoSpares
		} else {
			if need > len(avail) {
				need = len(avail)
			}
			gs.adopted = avail[:need]
			members := make([]int, 0, x.Size()+need)
			for r := 0; r < x.Size(); r++ {
				members = append(members, x.mpi.WorldRankOf(r))
			}
			members = append(members, gs.adopted...)
			sort.Ints(members)
			gs.members = members
		}
		rt.grows[ctx] = gs
	}
	const coord = 0
	fab := x.mpi.Job().Fabric()
	if x.Rank() != coord {
		// Vote: one control message to the coordinator.
		_, _ = fab.TryControlMsg(p, x.Device(), x.mpi.RankDevice(coord))
	}
	gs.arrived++
	if gs.arrived < x.Size() {
		gs.ready.Wait(p)
	} else {
		// Last arrival closes the agreement: invite each adopted spare,
		// broadcast the decision to the other survivors, and publish.
		if gs.err == nil {
			for _, spare := range gs.adopted {
				slot := rt.sparePool[spare]
				if dev := rt.worldMPI[spare]; dev != nil {
					_, _ = fab.TryControlMsg(p, x.mpi.RankDevice(coord), dev.Device())
				}
				slot.members = gs.members
				delete(rt.sparePool, spare)
				// A rejoining fenced rank unfences itself before parking;
				// clearing here too keeps the invariant (no fenced member
				// in a live communicator) independent of the join path.
				rt.unfence(spare)
				slot.join.Fire()
			}
			for r := 0; r < x.Size(); r++ {
				if r == coord {
					continue
				}
				_, _ = fab.TryControlMsg(p, x.mpi.RankDevice(coord), x.mpi.RankDevice(r))
			}
			// The grown member set supersedes this context: collectives
			// still dispatched on the old handle would run at the shrunk
			// width against peers that moved on, so they are rejected with
			// ErrStaleEpoch (stale-epoch fencing of failure model v3).
			rt.staleCtx[ctx] = true
			rt.noteGrow(len(gs.members), p.Now())
		}
		delete(rt.grows, ctx)
		gs.ready.Fire()
	}
	if gs.err != nil {
		return nil, nil, gs.err
	}
	return rt.Wrap(world.Subset(gs.members)), gs.adopted, nil
}

// availableSpares lists the parked, unadopted spare world ranks ascending.
func (rt *Runtime) availableSpares() []int {
	out := make([]int, 0, len(rt.sparePool))
	for wr := range rt.sparePool {
		out = append(out, wr)
	}
	sort.Ints(out)
	return out
}

// releaseSpares wakes every parked spare without adoption (the job is
// draining). Iterates in rank order so the wakeups are deterministic.
func (rt *Runtime) releaseSpares() {
	for _, wr := range rt.availableSpares() {
		slot := rt.sparePool[wr]
		slot.released = true
		delete(rt.sparePool, wr)
		slot.join.Fire()
	}
}

// noteGrow publishes one completed grow (recorded once, by the rank that
// closed the agreement; rank -1: the event belongs to the runtime).
func (rt *Runtime) noteGrow(to int, now time.Duration) {
	rt.stats.Grows++
	rt.bumpEpoch()
	rt.opts.Metrics.Counter("xccl_grow_total",
		"Completed spare-rank communicator grows.",
		metrics.Labels{"backend": string(rt.kind)}).Inc()
	rec := trace.Record{
		Op: "grow", Backend: string(rt.kind), Rank: -1,
		Event: "comm_grow", Start: now, Bytes: int64(to),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}
