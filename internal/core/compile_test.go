package core

import (
	"testing"

	"mpixccl/internal/mpi"
)

// The compiled-executor dispatch path (Options.Compile / table v3 plans):
// the synthesized collectives must produce the same bytes whether they run
// through the group send-recv loop or a compiled plan.

func TestCompileDispatchAlltoallCorrect(t *testing.T) {
	const n = 16 // 2 ThetaGPU nodes: the compiled search has real choices
	const count = 4096
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid, Compile: true})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		send := dev.MustMalloc(n * count * 4)
		recv := dev.MustMalloc(n * count * 4)
		for peer := 0; peer < n; peer++ {
			for i := 0; i < count; i += 61 {
				send.SetFloat32(peer*count+i, float32(x.Rank()*100+peer))
			}
		}
		x.Alltoall(send, count, mpi.Float32, recv)
		for peer := 0; peer < n; peer++ {
			if got := recv.Float32(peer*count + 61); got != float32(peer*100+x.Rank()) {
				t.Errorf("rank %d block %d = %v", x.Rank(), peer, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CCLOps != n {
		t.Errorf("compiled alltoall did not take CCL path: %+v", rt.Stats())
	}
}

func TestCompileDispatchRootOpsCorrect(t *testing.T) {
	const n = 12 // uneven node split: 8 + 4
	const count = 1 << 16
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid, Compile: true})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		mine := dev.MustMalloc(count * 4)
		mine.FillFloat32(float32(x.Rank()))
		full := dev.MustMalloc(n * count * 4)
		x.Gather(mine, count, mpi.Float32, full, 3)
		if x.Rank() == 3 {
			for r := 0; r < n; r++ {
				if full.Float32(r*count+5) != float32(r) {
					t.Errorf("gather block %d wrong", r)
				}
			}
		}
		back := dev.MustMalloc(count * 4)
		x.Scatter(full, count, mpi.Float32, back, 3)
		if x.Rank() == 3 {
			if back.Float32(9) != float32(x.Rank()) {
				t.Errorf("scatter rank %d = %v", x.Rank(), back.Float32(9))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileDispatchAlltoallvCorrect(t *testing.T) {
	const n = 8
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: PureCCL, Compile: true})
	err := rt.Run(func(x *Comm) {
		r := x.Rank()
		sendCounts := make([]int, n)
		sdispls := make([]int, n)
		recvCounts := make([]int, n)
		rdispls := make([]int, n)
		sTotal, rTotal := 0, 0
		for p := 0; p < n; p++ {
			sendCounts[p] = 1000 * (r + p + 1)
			sdispls[p] = sTotal
			sTotal += sendCounts[p]
			recvCounts[p] = 1000 * (p + r + 1)
			rdispls[p] = rTotal
			rTotal += recvCounts[p]
		}
		send := x.Device().MustMalloc(int64(sTotal) * 4)
		recv := x.Device().MustMalloc(int64(rTotal) * 4)
		for p := 0; p < n; p++ {
			for i := 0; i < sendCounts[p]; i += 37 {
				send.SetFloat32(sdispls[p]+i, float32(r*10+p))
			}
		}
		x.Alltoallv(send, sendCounts, sdispls, mpi.Float32, recv, recvCounts, rdispls)
		for p := 0; p < n; p++ {
			if got := recv.Float32(rdispls[p] + 37); got != float32(p*10+r) {
				t.Errorf("rank %d from %d = %v, want %v", r, p, got, p*10+r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CCLOps != n {
		t.Errorf("compiled alltoallv did not take CCL path: %+v", rt.Stats())
	}
}

// A v3 table band naming an explicit plan key forces that strategy even
// with Compile off, and a native: plan on a built-in op upgrades its
// algorithm family.
func TestTablePlanForcesStrategy(t *testing.T) {
	const n = 8
	const count = 4096
	tab := DefaultTableFor("ThetaGPU", NCCL, false)
	tab.Set(OpAlltoall, []Threshold{{MaxBytes: 0, Path: PathCCL, Plan: "direct:chunk=4096"}})
	tab.Set(OpAllreduce, []Threshold{{MaxBytes: 0, Path: PathCCL, Plan: "native:hier"}})
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid, Table: tab})
	err := rt.Run(func(x *Comm) {
		dev := x.Device()
		send := dev.MustMalloc(n * count * 4)
		recv := dev.MustMalloc(n * count * 4)
		for peer := 0; peer < n; peer++ {
			send.SetFloat32(peer*count, float32(x.Rank()*100+peer))
		}
		x.Alltoall(send, count, mpi.Float32, recv)
		for peer := 0; peer < n; peer++ {
			if got := recv.Float32(peer * count); got != float32(peer*100+x.Rank()) {
				t.Errorf("rank %d block %d = %v", x.Rank(), peer, got)
			}
		}
		sum := dev.MustMalloc(256 * 4)
		sum.FillFloat32(1)
		x.Allreduce(sum, sum, 256, mpi.Float32, mpi.OpSum)
		if got := sum.Float32(7); got != float32(n) {
			t.Errorf("allreduce under native:hier plan = %v, want %d", got, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CCLOps != 2*n {
		t.Errorf("planned ops did not take CCL path: %+v", rt.Stats())
	}
}

// With Compile off and no table plans, decide must leave the plan empty —
// the invariant behind the goldens staying byte-identical.
func TestCompileOffLeavesPlanEmpty(t *testing.T) {
	const n = 4
	rt := newRuntime(t, "thetagpu", n, Options{Backend: Auto, Mode: Hybrid})
	err := rt.Run(func(x *Comm) {
		for _, op := range []OpKind{OpAlltoall, OpAlltoallv, OpGather, OpScatter} {
			buf := x.Device().MustMalloc(1 << 20)
			d := x.decide(op, 1<<20, mpi.Float32, nil, buf)
			if d.plan != "" {
				t.Errorf("%s: plan = %q with compile off", op, d.plan)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
