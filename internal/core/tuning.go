package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"mpixccl/internal/ccl/comp"
)

// OpKind names a collective for tuning-table lookup.
type OpKind string

// Tuned operations.
const (
	OpAllreduce     OpKind = "allreduce"
	OpReduce        OpKind = "reduce"
	OpBcast         OpKind = "bcast"
	OpAllgather     OpKind = "allgather"
	OpAlltoall      OpKind = "alltoall"
	OpAlltoallv     OpKind = "alltoallv"
	OpGather        OpKind = "gather"
	OpScatter       OpKind = "scatter"
	OpReduceScatter OpKind = "reducescatter"
)

// Path is the dispatch decision recorded in a tuning table.
type Path int

const (
	// PathMPI runs the traditional MPI algorithm.
	PathMPI Path = iota
	// PathCCL dispatches to the vendor library.
	PathCCL
)

// String names the path.
func (p Path) String() string {
	if p == PathCCL {
		return "ccl"
	}
	return "mpi"
}

// Algo names the CCL algorithm family a tuned band forces. The empty
// string ("auto") keeps the backend's built-in size-based split — the only
// choice version-1 tables could express.
type Algo string

// Tunable algorithm families for CCL-path bands.
const (
	AlgoAuto         Algo = ""
	AlgoFlatRing     Algo = "flat-ring"
	AlgoTree         Algo = "tree"
	AlgoHierarchical Algo = "hierarchical"
)

// ParseAlgo validates an algorithm name from a serialized table.
func ParseAlgo(s string) (Algo, error) {
	switch a := Algo(s); a {
	case AlgoAuto, AlgoFlatRing, AlgoTree, AlgoHierarchical:
		return a, nil
	case "auto":
		return AlgoAuto, nil
	}
	return AlgoAuto, fmt.Errorf("xccl: unknown algorithm %q", s)
}

// TableVersion is the current tuning-table schema: version 2 added the
// per-band algorithm selector and pipeline chunk size; version 3 added the
// compiled-plan key (Threshold.Plan). Version-1 tables (no version field)
// and version-2 tables parse unchanged — their bands read as algo "auto"
// with no plan.
const TableVersion = 3

// Threshold maps payload sizes up to MaxBytes (inclusive; 0 = unbounded)
// to a path. Entries in a rule are sorted ascending with the unbounded
// entry last. CCL-path bands may additionally force an algorithm family
// and, for the hierarchical pipeline, a chunk size.
type Threshold struct {
	MaxBytes int64 `json:"max_bytes"`
	Path     Path  `json:"path"`
	// Algo forces a CCL schedule family for this band ("" = backend auto).
	Algo Algo `json:"algo,omitempty"`
	// ChunkBytes is the hierarchical pipeline chunk (0 = backend default).
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
	// Plan is the compiled-plan strategy key for this band (v3; "" = no
	// compiled plan). For the synthesized collectives (alltoall(v),
	// scatter, gather) it names a comp strategy ("phased:chunk=1048576");
	// for the built-in collectives a "native:" family the search ranked.
	Plan string `json:"plan,omitempty"`
}

// TuningTable is the offline-tuned dispatch policy of §3.4: per operation,
// size-banded path choices for one (system, backend) pair.
type TuningTable struct {
	Version int                    `json:"version,omitempty"`
	System  string                 `json:"system"`
	Backend string                 `json:"backend"`
	Rules   map[OpKind][]Threshold `json:"rules"`
}

// Lookup returns the path for an operation at a payload size. Operations
// without a rule default to the CCL path (capability checks still guard it).
func (t *TuningTable) Lookup(op OpKind, bytes int64) Path {
	p, _ := t.LookupDetail(op, bytes)
	return p
}

// LookupDetail is Lookup plus whether a tuned rule decided the path (true)
// or the table fell through to the CCL default (false) — the hit/miss
// split the tuning-lookup metrics report.
func (t *TuningTable) LookupDetail(op OpKind, bytes int64) (Path, bool) {
	th, hit := t.Choice(op, bytes)
	return th.Path, hit
}

// Choice returns the full tuned band for an operation at a payload size
// — path plus any forced algorithm and chunk. A miss (no rule, or no band
// covering the size) returns the CCL-default band with hit=false.
func (t *TuningTable) Choice(op OpKind, bytes int64) (Threshold, bool) {
	if t == nil {
		return Threshold{Path: PathCCL}, false
	}
	rule, ok := t.Rules[op]
	if !ok {
		return Threshold{Path: PathCCL}, false
	}
	for _, th := range rule {
		if th.MaxBytes == 0 || bytes <= th.MaxBytes {
			return th, true
		}
	}
	return Threshold{Path: PathCCL}, false
}

// Set installs a rule, keeping thresholds sorted (unbounded entry last).
func (t *TuningTable) Set(op OpKind, rule []Threshold) {
	sorted := append([]Threshold(nil), rule...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].MaxBytes, sorted[j].MaxBytes
		if a == 0 {
			return false
		}
		if b == 0 {
			return true
		}
		return a < b
	})
	if t.Rules == nil {
		t.Rules = make(map[OpKind][]Threshold)
	}
	t.Rules[op] = sorted
}

// JSON serializes the table in the xccltuner output format, stamped with
// the current schema version.
func (t *TuningTable) JSON() ([]byte, error) {
	out := *t
	out.Version = TableVersion
	return json.MarshalIndent(&out, "", "  ")
}

// ParseTable loads a table from JSON (the xccltuner output format). Tables
// from older schema versions (including unversioned v1 tables) load
// unchanged; tables from a newer schema are rejected rather than silently
// misread. Algorithm names are validated per band.
func ParseTable(data []byte) (*TuningTable, error) {
	var t TuningTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("xccl: parse tuning table: %w", err)
	}
	if t.Version > TableVersion {
		return nil, fmt.Errorf("xccl: tuning table version %d is newer than supported version %d",
			t.Version, TableVersion)
	}
	for op, rule := range t.Rules {
		for i, th := range rule {
			a, err := ParseAlgo(string(th.Algo))
			if err != nil {
				return nil, fmt.Errorf("xccl: tuning table rule %s band %d: %w", op, i, err)
			}
			rule[i].Algo = a
			if th.Plan != "" {
				if err := comp.ValidKey(string(op), th.Plan); err != nil {
					return nil, fmt.Errorf("xccl: tuning table rule %s band %d: %w", op, i, err)
				}
			}
		}
	}
	return &t, nil
}

// crossover builds the common two-band rule: MPI up to cross bytes, CCL above.
func crossover(cross int64) []Threshold {
	return []Threshold{{MaxBytes: cross, Path: PathMPI}, {MaxBytes: 0, Path: PathCCL}}
}

// DefaultTable returns the built-in offline-tuned table for a (system,
// backend) pair. Crossover points mirror the paper's measurements: MPI wins
// below ~16 KB against NCCL Allreduce (Fig 1a), below ~64 KB against RCCL
// Allgather (Fig 1b), and much later against HCCL whose launch overhead is
// 270 µs. Unknown pairs get a conservative generic table.
func DefaultTable(system string, backend BackendKind) *TuningTable {
	return DefaultTableFor(system, backend, false)
}

// DefaultTableFor returns the built-in table, with the multi-node variants
// the offline tuner produces for cross-node jobs: RCCL's higher per-op
// costs across nodes push its crossovers right (it still wins large
// messages on its four HDR rails, per Fig 1b).
func DefaultTableFor(system string, backend BackendKind, multiNode bool) *TuningTable {
	t := &TuningTable{System: system, Backend: string(backend)}
	if multiNode && backend == RCCL {
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(128<<10))
		}
		return t
	}
	switch backend {
	case NCCL, MSCCL:
		t.Set(OpAllreduce, crossover(16<<10))
		t.Set(OpReduce, crossover(8<<10))
		t.Set(OpBcast, crossover(8<<10))
		t.Set(OpAllgather, crossover(16<<10))
		t.Set(OpAlltoall, crossover(4<<10))
		t.Set(OpAlltoallv, crossover(4<<10))
		t.Set(OpReduceScatter, crossover(16<<10))
		t.Set(OpGather, crossover(32<<10))
		t.Set(OpScatter, crossover(32<<10))
	case OneCCL:
		t.Set(OpAllreduce, crossover(16<<10))
		t.Set(OpReduce, crossover(8<<10))
		t.Set(OpBcast, crossover(8<<10))
		t.Set(OpAllgather, crossover(16<<10))
		t.Set(OpAlltoall, crossover(8<<10))
		t.Set(OpAlltoallv, crossover(8<<10))
		t.Set(OpReduceScatter, crossover(16<<10))
		t.Set(OpGather, crossover(32<<10))
		t.Set(OpScatter, crossover(32<<10))
	case RCCL:
		t.Set(OpAllreduce, crossover(32<<10))
		t.Set(OpReduce, crossover(16<<10))
		t.Set(OpBcast, crossover(16<<10))
		t.Set(OpAllgather, crossover(64<<10))
		t.Set(OpAlltoall, crossover(16<<10))
		t.Set(OpAlltoallv, crossover(16<<10))
		t.Set(OpReduceScatter, crossover(32<<10))
		t.Set(OpGather, crossover(64<<10))
		t.Set(OpScatter, crossover(64<<10))
	case HCCL:
		// HCCL's 270 µs launch floor pushes the crossover far right.
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(1<<20))
		}
	default:
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(32<<10))
		}
	}
	return t
}

// HierarchicalTableFor returns the builtin table with every CCL band of
// the collectives that have a hierarchical schedule (allreduce, bcast,
// allgather, reducescatter) upgraded to force it — the shape the offline
// tuner converges to on systems whose intra-node fabric outruns the
// inter-node links. chunkBytes sets the pipeline chunk (0 = the backend's
// HierChunkBytes default). Safe on any shape: the CCL layer degenerates
// hierarchical to the flat algorithms when the job spans a single node.
func HierarchicalTableFor(system string, backend BackendKind, multiNode bool, chunkBytes int64) *TuningTable {
	t := DefaultTableFor(system, backend, multiNode)
	for _, op := range []OpKind{OpAllreduce, OpBcast, OpAllgather, OpReduceScatter} {
		rule := t.Rules[op]
		for i := range rule {
			if rule[i].Path == PathCCL {
				rule[i].Algo = AlgoHierarchical
				rule[i].ChunkBytes = chunkBytes
			}
		}
	}
	return t
}
