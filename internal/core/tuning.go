package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

// OpKind names a collective for tuning-table lookup.
type OpKind string

// Tuned operations.
const (
	OpAllreduce     OpKind = "allreduce"
	OpReduce        OpKind = "reduce"
	OpBcast         OpKind = "bcast"
	OpAllgather     OpKind = "allgather"
	OpAlltoall      OpKind = "alltoall"
	OpAlltoallv     OpKind = "alltoallv"
	OpGather        OpKind = "gather"
	OpScatter       OpKind = "scatter"
	OpReduceScatter OpKind = "reducescatter"
)

// Path is the dispatch decision recorded in a tuning table.
type Path int

const (
	// PathMPI runs the traditional MPI algorithm.
	PathMPI Path = iota
	// PathCCL dispatches to the vendor library.
	PathCCL
)

// String names the path.
func (p Path) String() string {
	if p == PathCCL {
		return "ccl"
	}
	return "mpi"
}

// Threshold maps payload sizes up to MaxBytes (inclusive; 0 = unbounded)
// to a path. Entries in a rule are sorted ascending with the unbounded
// entry last.
type Threshold struct {
	MaxBytes int64 `json:"max_bytes"`
	Path     Path  `json:"path"`
}

// TuningTable is the offline-tuned dispatch policy of §3.4: per operation,
// size-banded path choices for one (system, backend) pair.
type TuningTable struct {
	System  string                 `json:"system"`
	Backend string                 `json:"backend"`
	Rules   map[OpKind][]Threshold `json:"rules"`
}

// Lookup returns the path for an operation at a payload size. Operations
// without a rule default to the CCL path (capability checks still guard it).
func (t *TuningTable) Lookup(op OpKind, bytes int64) Path {
	p, _ := t.LookupDetail(op, bytes)
	return p
}

// LookupDetail is Lookup plus whether a tuned rule decided the path (true)
// or the table fell through to the CCL default (false) — the hit/miss
// split the tuning-lookup metrics report.
func (t *TuningTable) LookupDetail(op OpKind, bytes int64) (Path, bool) {
	if t == nil {
		return PathCCL, false
	}
	rule, ok := t.Rules[op]
	if !ok {
		return PathCCL, false
	}
	for _, th := range rule {
		if th.MaxBytes == 0 || bytes <= th.MaxBytes {
			return th.Path, true
		}
	}
	return PathCCL, false
}

// Set installs a rule, keeping thresholds sorted (unbounded entry last).
func (t *TuningTable) Set(op OpKind, rule []Threshold) {
	sorted := append([]Threshold(nil), rule...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].MaxBytes, sorted[j].MaxBytes
		if a == 0 {
			return false
		}
		if b == 0 {
			return true
		}
		return a < b
	})
	if t.Rules == nil {
		t.Rules = make(map[OpKind][]Threshold)
	}
	t.Rules[op] = sorted
}

// MarshalJSON round-trips through a stable representation.
func (t *TuningTable) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// ParseTable loads a table from JSON (the xccltuner output format).
func ParseTable(data []byte) (*TuningTable, error) {
	var t TuningTable
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("xccl: parse tuning table: %w", err)
	}
	return &t, nil
}

// crossover builds the common two-band rule: MPI up to cross bytes, CCL above.
func crossover(cross int64) []Threshold {
	return []Threshold{{MaxBytes: cross, Path: PathMPI}, {MaxBytes: 0, Path: PathCCL}}
}

// DefaultTable returns the built-in offline-tuned table for a (system,
// backend) pair. Crossover points mirror the paper's measurements: MPI wins
// below ~16 KB against NCCL Allreduce (Fig 1a), below ~64 KB against RCCL
// Allgather (Fig 1b), and much later against HCCL whose launch overhead is
// 270 µs. Unknown pairs get a conservative generic table.
func DefaultTable(system string, backend BackendKind) *TuningTable {
	return DefaultTableFor(system, backend, false)
}

// DefaultTableFor returns the built-in table, with the multi-node variants
// the offline tuner produces for cross-node jobs: RCCL's higher per-op
// costs across nodes push its crossovers right (it still wins large
// messages on its four HDR rails, per Fig 1b).
func DefaultTableFor(system string, backend BackendKind, multiNode bool) *TuningTable {
	t := &TuningTable{System: system, Backend: string(backend)}
	if multiNode && backend == RCCL {
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(128<<10))
		}
		return t
	}
	switch backend {
	case NCCL, MSCCL:
		t.Set(OpAllreduce, crossover(16<<10))
		t.Set(OpReduce, crossover(8<<10))
		t.Set(OpBcast, crossover(8<<10))
		t.Set(OpAllgather, crossover(16<<10))
		t.Set(OpAlltoall, crossover(4<<10))
		t.Set(OpAlltoallv, crossover(4<<10))
		t.Set(OpReduceScatter, crossover(16<<10))
		t.Set(OpGather, crossover(32<<10))
		t.Set(OpScatter, crossover(32<<10))
	case OneCCL:
		t.Set(OpAllreduce, crossover(16<<10))
		t.Set(OpReduce, crossover(8<<10))
		t.Set(OpBcast, crossover(8<<10))
		t.Set(OpAllgather, crossover(16<<10))
		t.Set(OpAlltoall, crossover(8<<10))
		t.Set(OpAlltoallv, crossover(8<<10))
		t.Set(OpReduceScatter, crossover(16<<10))
		t.Set(OpGather, crossover(32<<10))
		t.Set(OpScatter, crossover(32<<10))
	case RCCL:
		t.Set(OpAllreduce, crossover(32<<10))
		t.Set(OpReduce, crossover(16<<10))
		t.Set(OpBcast, crossover(16<<10))
		t.Set(OpAllgather, crossover(64<<10))
		t.Set(OpAlltoall, crossover(16<<10))
		t.Set(OpAlltoallv, crossover(16<<10))
		t.Set(OpReduceScatter, crossover(32<<10))
		t.Set(OpGather, crossover(64<<10))
		t.Set(OpScatter, crossover(64<<10))
	case HCCL:
		// HCCL's 270 µs launch floor pushes the crossover far right.
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(1<<20))
		}
	default:
		for _, op := range []OpKind{OpAllreduce, OpReduce, OpBcast, OpAllgather,
			OpAlltoall, OpAlltoallv, OpReduceScatter, OpGather, OpScatter} {
			t.Set(op, crossover(32<<10))
		}
	}
	return t
}
