package core

import (
	"testing"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/device"
	"mpixccl/internal/mpi"
)

// The paper's §4.4 anecdote: pure NCCL 2.18.3 failed against the site's
// TensorFlow stack, while the xCCL designs "bypass such errors". Build a
// runtime whose cached communicator is the broken NCCL build: every
// collective must transparently complete on the MPI path with correct
// results, and the error fallback counter must account for it.
func TestBrokenNCCLBuildFallsBackTransparently(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 4, Options{Backend: Auto, Mode: PureCCL})
	// Pre-populate the communicator cache with the broken build, as if the
	// site's library path pointed at NCCL 2.18.3.
	sys := rt.Job().Fabric().System()
	devs := make([]*device.Device, 4)
	copy(devs, sys.Devices()[:4])
	broken, err := ccl.NewComms(rt.Job().Fabric(), devs, nccl.VersionConfig(nccl.BrokenVersion))
	if err != nil {
		t.Fatal(err)
	}
	rt.cache["0/nccl"] = broken

	const count = 1 << 20 // 4 MB: would dispatch to NCCL
	err = rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(count * 4)
		recv := x.Device().MustMalloc(count * 4)
		send.FillFloat32(float32(x.Rank() + 1))
		x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
		if recv.Float32(123) != 10 {
			t.Errorf("sum through fallback = %v, want 10", recv.Float32(123))
		}
		x.Bcast(send, count, mpi.Float32, 0)
		x.Allgather(send.Slice(0, 1024), 256, mpi.Float32, recv.Slice(0, 4096))
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Fallbacks.Error != 12 { // 3 ops × 4 ranks
		t.Errorf("error fallbacks = %d, want 12", st.Fallbacks.Error)
	}
	if st.CCLOps != 0 {
		t.Errorf("broken build executed %d CCL ops", st.CCLOps)
	}
	if st.MPIOps != 12 {
		t.Errorf("MPI ops = %d, want 12", st.MPIOps)
	}
}

// A broken build must also fail p2p operations at the CCL level.
func TestBrokenBuildFailsP2P(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: PureCCL})
	comms, err := ccl.NewComms(rt.Job().Fabric(), rt.Job().Fabric().System().Devices()[:2],
		nccl.VersionConfig(nccl.BrokenVersion))
	if err != nil {
		t.Fatal(err)
	}
	buf := comms[0].Device().MustMalloc(64)
	s := comms[0].Device().NewStream()
	if err := comms[0].Send(buf, 16, ccl.Float32, 1, s); err == nil {
		t.Fatal("broken build accepted a send")
	}
}
