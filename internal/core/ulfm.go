package core

import (
	"errors"
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/metrics"
	"mpixccl/internal/sim"
	"mpixccl/internal/trace"
)

// ULFM-style fail-stop recovery (User Level Failure Mitigation, the MPI
// forum's fault-tolerance proposal): the runtime detects a dead rank via
// the collective watchdog (Resilience.WatchdogTimeout), the application
// revokes the broken communicator, and the survivors agree on the member
// set and shrink to a working communicator:
//
//	detect (Failure != nil) -> Revoke -> Shrink -> continue on survivors
//
// A rank that observes its own crash (Dead) exits instead of shrinking.

// ErrCommRevoked reports a collective attempted on a revoked communicator:
// the operation did nothing, and the caller must Shrink (or abandon the
// communicator) to make progress.
var ErrCommRevoked = errors.New("xccl: communicator revoked")

// Failure returns the first fail-stop verdict this rank observed on the
// communicator: an ErrRankDead-wrapping CCL error from the watchdog or a
// crash probe, or ErrCommRevoked once the communicator is revoked. nil
// means every collective so far completed. Check it after each collective
// when running with the watchdog armed — the collectives themselves do not
// return errors (MPI semantics).
func (x *Comm) Failure() error { return x.failure }

// Dead reports whether this rank itself fail-stopped: its own CCL call
// failed with its own rank named. A dead rank must exit — it is the rank
// the survivors are agreeing to exclude.
func (x *Comm) Dead() bool { return x.dead }

// noteRankFailure records a fail-stop verdict on this rank's handle. Every
// verdict — the dead rank's own detection, a survivor's watchdog verdict,
// or a heartbeat suspicion — emits one "rank_dead" trace event (the Record
// names the observing rank; earlier PRs split this into rank_dead /
// rank_dead_detected, an undocumented drift this unifies). Only the dead
// rank's own detection increments the failure counters, so they stay exact
// rather than per-witness. Only the first verdict per handle is recorded —
// a caller that keeps dispatching on the broken communicator (legal until
// it revokes) fails again on every op, and those repeats must not inflate
// the counters or the trace.
func (x *Comm) noteRankFailure(op OpKind, err error) {
	var ce *ccl.Error
	if errors.As(err, &ce) && ce.Rank == x.mpi.WorldRank() {
		x.dead = true
	}
	if x.failure != nil {
		return
	}
	x.failure = err
	rt := x.rt
	if x.dead {
		// Self-detection: exactly one rank observes each crash as its own,
		// so the failure counter is exact, not per-witness.
		rt.stats.RankFailures++
		rt.opts.Metrics.Counter("xccl_rank_failures_total",
			"Fail-stopped ranks, counted once per crash on the dead rank's own detection.",
			metrics.Labels{"backend": string(rt.kind)}).Inc()
	}
	rec := trace.Record{
		Op: string(op), Backend: string(rt.kind), Rank: x.Rank(),
		Event: "rank_dead", Start: x.mpi.Proc().Now(),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// Revoke marks the communicator revoked (MPI_Comm_revoke): every rank's
// subsequent collectives on it no-op with Failure() == ErrCommRevoked, so
// no survivor can block on a collective the dead rank will never join.
// Any rank may revoke; duplicates are no-ops. The revoking rank pays one
// control message per surviving peer (the revoke flood).
func (x *Comm) Revoke() {
	rt := x.rt
	ctx := x.mpi.ContextID()
	if rt.revoked[ctx] {
		return
	}
	rt.revoked[ctx] = true
	fab := x.mpi.Job().Fabric()
	fs := fab.FailStop()
	now := x.mpi.Proc().Now()
	for r := 0; r < x.Size(); r++ {
		if r == x.Rank() || (fs != nil && fs.RankDead(x.mpi.WorldRankOf(r), now)) {
			continue
		}
		// Routing failures are ignored: revocation is best-effort
		// notification, and the shared runtime state already carries it.
		_, _ = fab.TryControlMsg(x.mpi.Proc(), x.Device(), x.mpi.RankDevice(r))
	}
	rec := trace.Record{
		Op: "revoke", Backend: string(rt.kind), Rank: x.Rank(),
		Event: "comm_revoked", Start: now,
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// shrinkState coordinates one Shrink across the survivors of a revoked
// communicator: every survivor contributes its arrival, the last one
// performs the agreement broadcast, and all leave with the same member set.
type shrinkState struct {
	survivors []int // agreed surviving local ranks, ascending
	cut       int   // alive ranks excluded as unreachable (partition episode)
	arrived   int
	ready     *sim.Event
}

// Shrink builds the survivor communicator (MPI_Comm_shrink): the ranks
// still alive agree on the member set — everyone the fail-stop detector
// has not declared dead — and derive a fresh communicator containing only
// them, with a fresh CCL communicator built lazily on first use. Every
// survivor must call it (dead ranks, by definition, cannot); a Dead rank
// gets its own failure back. The returned handle carries the caller's new
// rank and size; its CCL communicator probes fault rules by world rank,
// so the survivors' renumbering does not re-trigger the old crash rule.
//
// The agreement is modeled as one control-message round: each survivor
// votes to the lowest-ranked survivor (the coordinator), which broadcasts
// the decided member set back — the simulation's stand-in for ULFM's
// agreement protocol, charged at fabric control-message cost.
func (x *Comm) Shrink() (*Comm, error) {
	if x.dead {
		return nil, x.failure
	}
	rt := x.rt
	ctx := x.mpi.ContextID()
	if pt := rt.partitioner(); pt != nil {
		// Quorum gate (failure model v3): this rank may only shrink with
		// the peers it can actually reach — alive AND not severed from it.
		// Anything short of a strict majority of the pre-failure size
		// would fork the membership (the far side would shrink too), so
		// the minority — and both halves of an exact 50/50 split — fences
		// itself instead of entering the rendezvous. The gate never fires
		// without a partition oracle, keeping the crash-only path intact.
		gnow := x.mpi.Proc().Now()
		gfs := x.mpi.Job().Fabric().FailStop()
		reachable := 0
		for r := 0; r < x.Size(); r++ {
			if gfs != nil && gfs.RankDead(x.mpi.WorldRankOf(r), gnow) {
				continue
			}
			if r != x.Rank() && rt.severedPair(x.mpi, x.Rank(), r, gnow) {
				continue
			}
			reachable++
		}
		if reachable*2 <= x.Size() {
			rt.fence(x, gnow)
			return nil, ErrNoQuorum
		}
	}
	if !rt.revoked[ctx] {
		// Shrinking implies revocation: late ranks that skipped the
		// explicit Revoke must still stop dispatching on the old handle.
		x.Revoke()
	}
	p := x.mpi.Proc()
	now := p.Now()
	fs := x.mpi.Job().Fabric().FailStop()
	ss, ok := rt.shrinks[ctx]
	if !ok {
		// First arrival computes the survivor set. Later deaths would be
		// a different epoch: the set is fixed per shrink so every
		// participant waits for the same peers. Under a partition the set
		// also excludes ranks severed from this arrival — the cut is a
		// clean bipartition, so every majority rank computes the same
		// set, and the fenced minority never reaches this point.
		pt := rt.partitioner()
		var survivors []int
		cut := 0
		for r := 0; r < x.Size(); r++ {
			if fs != nil && fs.RankDead(x.mpi.WorldRankOf(r), now) {
				continue
			}
			if pt != nil && r != x.Rank() && rt.severedPair(x.mpi, x.Rank(), r, now) {
				cut++
				continue
			}
			survivors = append(survivors, r)
		}
		ss = &shrinkState{survivors: survivors, cut: cut, ready: sim.NewEvent(p.Kernel())}
		rt.shrinks[ctx] = ss
	}
	coord := ss.survivors[0]
	if x.Rank() != coord {
		// Vote: one control message to the coordinator.
		_, _ = x.mpi.Job().Fabric().TryControlMsg(p, x.Device(), x.mpi.RankDevice(coord))
	}
	ss.arrived++
	if ss.arrived < len(ss.survivors) {
		ss.ready.Wait(p)
	} else {
		// Last arrival closes the agreement: broadcast the decision and
		// retire the old communicator's cached CCL state.
		for _, r := range ss.survivors {
			if r == x.Rank() {
				continue
			}
			_, _ = x.mpi.Job().Fabric().TryControlMsg(p, x.mpi.RankDevice(coord), x.mpi.RankDevice(r))
		}
		delete(rt.shrinks, ctx)
		delete(rt.cache, fmt.Sprintf("%d/%s", ctx, rt.kind))
		rt.noteShrink(x, len(ss.survivors), ss.cut, p.Now())
		ss.ready.Fire()
	}
	sub := x.mpi.Subset(ss.survivors)
	return rt.Wrap(sub), nil
}

// noteShrink publishes one completed shrink (recorded once, by the rank
// that closed the agreement; rank -1: the event belongs to the runtime).
// cut is how many alive-but-unreachable ranks the survivor set excluded: a
// positive cut is one handled partition episode, and every shrink bumps
// the membership epoch.
func (rt *Runtime) noteShrink(x *Comm, to, cut int, now time.Duration) {
	rt.stats.Shrinks++
	rt.bumpEpoch()
	rt.opts.Metrics.Counter("xccl_shrink_total",
		"Completed ULFM-style communicator shrinks.",
		metrics.Labels{"backend": string(rt.kind)}).Inc()
	if cut > 0 {
		rt.stats.Partitions++
		rt.opts.Metrics.Counter("xccl_partitions_total",
			"Partition episodes handled: quorum shrinks that excluded alive-but-unreachable ranks.",
			metrics.Labels{"backend": string(rt.kind)}).Inc()
	}
	rec := trace.Record{
		Op: "shrink", Backend: string(rt.kind), Rank: -1,
		Event: "comm_shrink", Start: now, Bytes: int64(to),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}
