package core

import (
	"fmt"
	"strings"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/hccl"
	"mpixccl/internal/ccl/msccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/ccl/oneccl"
	"mpixccl/internal/ccl/rccl"
	"mpixccl/internal/device"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
)

// Comm is one rank's xCCL view of an MPI communicator: the same MPI
// collective API, with transparent CCL dispatch underneath. Obtain one via
// Runtime.Wrap or Runtime.Run; use it only from the owning rank's process.
type Comm struct {
	rt  *Runtime
	mpi *mpi.Comm
	// failure is the first fail-stop verdict this rank observed on the
	// communicator (ErrRankDead from the watchdog or a crash probe,
	// ErrCommRevoked after a revocation). Collectives on a failed handle
	// are no-ops; the application inspects Failure and runs the ULFM-style
	// recovery (Revoke, Shrink) or exits (Dead).
	failure error
	// dead marks the handle of a rank that fail-stopped itself: its own
	// CCL call failed fast with its own rank named. A dead rank must not
	// call Shrink — it is the rank the survivors are agreeing to exclude.
	dead bool
}

// MPI exposes the underlying MPI communicator (for p2p and escape hatches).
func (x *Comm) MPI() *mpi.Comm { return x.mpi }

// Rank returns the communicator-local rank.
func (x *Comm) Rank() int { return x.mpi.Rank() }

// Size returns the communicator size.
func (x *Comm) Size() int { return x.mpi.Size() }

// Device returns the rank's accelerator.
func (x *Comm) Device() *device.Device { return x.mpi.Device() }

// Runtime returns the owning xCCL runtime.
func (x *Comm) Runtime() *Runtime { return x.rt }

// backendConfig returns the personality of the runtime's backend without
// instantiating a communicator.
func backendConfig(kind BackendKind) (ccl.Config, error) {
	switch kind {
	case NCCL:
		return nccl.Config(), nil
	case RCCL:
		return rccl.Config(), nil
	case HCCL:
		return hccl.Config(), nil
	case MSCCL:
		return msccl.Config(), nil
	case OneCCL:
		return oneccl.Config(), nil
	case BackendKind(legacy):
		return nccl.VersionConfig(nccl.LegacyVersion), nil
	default:
		return ccl.Config{}, fmt.Errorf("xccl: no config for backend %q", kind)
	}
}

// cclComm returns (creating and caching on first use) this rank's CCL
// communicator mirroring the MPI communicator — the communicator
// maintenance box of Fig 2. Creation mirrors the real flow where the MPI
// communicator bootstraps the CCL unique id: every rank rendezvouses on
// the Runtime.pending entry, the last distinct rank performs the creation
// (ncclCommInitAll), and all waiters observe the same communicators or
// the same error. A failed creation is not cached — the next collective
// wave rendezvouses again, so a transient comm-init fault heals.
func (x *Comm) cclComm() (*ccl.Comm, error) {
	rt := x.rt
	key := fmt.Sprintf("%d/%s", x.mpi.ContextID(), rt.kind)
	if comms, ok := rt.cache[key]; ok {
		return comms[x.Rank()], nil
	}
	ci, ok := rt.pending[key]
	if !ok {
		ci = &commInit{
			seen:  make(map[int]bool),
			ready: sim.NewEvent(x.mpi.Proc().Kernel()),
		}
		rt.pending[key] = ci
	}
	// Count distinct ranks, not arrivals: concurrent nonblocking
	// collectives may bring the same rank here twice before creation.
	if !ci.seen[x.Rank()] {
		ci.seen[x.Rank()] = true
		if len(ci.seen) == x.Size() {
			devs := make([]*device.Device, x.Size())
			for r := range devs {
				devs[r] = x.mpi.RankDevice(r)
			}
			comms, err := newBackendComms(rt.kind, x.mpi.Job().Fabric(), devs)
			if err != nil {
				ci.err = err
			} else {
				// Backend-level instrumentation (launches, group fusion,
				// transfer bytes) reports into the same registry as the
				// dispatch metrics.
				if rt.opts.Metrics != nil && len(comms) > 0 {
					comms[0].SetMetrics(rt.opts.Metrics)
				}
				ci.comms = comms
				rt.cache[key] = comms
			}
			delete(rt.pending, key)
			ci.ready.Fire()
		}
	}
	// A fail-stopped peer never reaches the rendezvous, so with the
	// watchdog armed the wait is bounded like any other collective.
	if wd := rt.watchdogTimeout(); wd > 0 {
		if !ci.ready.WaitTimeout(x.mpi.Proc(), wd) {
			return nil, &ccl.Error{Backend: string(rt.kind), Result: ccl.ErrRankDead,
				Op: "comminit", Rank: -1,
				Msg: fmt.Sprintf("watchdog fired after %v waiting for peers at communicator creation", wd)}
		}
	} else {
		ci.ready.Wait(x.mpi.Proc())
	}
	if ci.err != nil {
		return nil, ci.err
	}
	comms := ci.comms
	if comms[0].RankIDs() == nil {
		// Fault rules and failure verdicts name world ranks; a shrunk
		// communicator's CCL handles are locally renumbered, so give them
		// the world identities to probe and report with.
		ids := make([]int, x.Size())
		for r := range ids {
			ids[r] = x.mpi.WorldRankOf(r)
		}
		comms[0].SetRankIDs(ids)
	}
	return comms[x.Rank()], nil
}

// decision is the outcome of the dispatch logic for one call.
type decision struct {
	useCCL bool
	dt     ccl.Datatype
	op     ccl.RedOp
	// algo/chunk carry the tuned band's forced CCL schedule family
	// (ccl.AlgoAuto = the backend's built-in split) and hierarchical
	// pipeline chunk.
	algo  ccl.Algorithm
	chunk int64
	// plan, when non-empty, routes a synthesized collective through the
	// compiled executor with this strategy key ("auto" = cost-model
	// search). Empty keeps the group send-recv loop.
	plan string
}

// compilableOps are the synthesized collectives the compiler lowers into
// primitive DAGs (the ops that today bypass the CCL built-ins entirely).
var compilableOps = map[OpKind]bool{
	OpAlltoall: true, OpAlltoallv: true, OpGather: true, OpScatter: true,
}

// applyPlan folds a tuned band's v3 plan key into the decision. Compilable
// ops carry the key straight to the CCL compiled executor; for the built-in
// collectives a "native:" key is the search's ranking of the existing
// schedule families, so it maps onto the algorithm selector (ParseTable
// already validated the key against the op).
func (d *decision) applyPlan(op OpKind, plan string) {
	if plan == "" {
		return
	}
	if compilableOps[op] {
		d.plan = plan
		return
	}
	switch {
	case strings.HasPrefix(plan, "native:hier"):
		d.algo = ccl.AlgoHierarchical
	case strings.HasPrefix(plan, "native:flat"):
		// Flat bcast runs the backend's tree schedule (there is no flat
		// ring bcast); everything else flat is the ring family.
		if op == OpBcast {
			d.algo = ccl.AlgoTree
		} else {
			d.algo = ccl.AlgoFlatRing
		}
	}
}

// mapAlgo translates a tuning-table algorithm name into the CCL selector.
func mapAlgo(a Algo) ccl.Algorithm {
	switch a {
	case AlgoFlatRing:
		return ccl.AlgoFlatRing
	case AlgoTree:
		return ccl.AlgoTree
	case AlgoHierarchical:
		return ccl.AlgoHierarchical
	}
	return ccl.AlgoAuto
}

// decide runs the §3.1–§3.4 checks: device-buffer identify, datatype and
// reduction support, then the mode policy (hybrid tuning table lookup).
// bufs are the user buffers that must live on the accelerator for a CCL
// dispatch.
func (x *Comm) decide(op OpKind, bytes int64, dt mpi.Datatype, rop *mpi.Op, bufs ...*device.Buffer) decision {
	rt := x.rt
	if rt.opts.Mode == PureMPI || rt.kind == "" || rt.kind == NoCCL {
		return decision{}
	}
	cfg, err := backendConfig(rt.kind)
	if err != nil {
		return decision{}
	}
	if !cfg.SupportsKind(x.Device().Kind) {
		rt.stats.Fallbacks.Device++
		rt.countFallback(op, "device")
		return decision{}
	}
	for _, b := range bufs {
		if b != nil && !b.OnDevice() {
			rt.stats.Fallbacks.HostBuffer++
			rt.countFallback(op, "host_buffer")
			return decision{}
		}
	}
	cdt, ok := mapDatatype(dt)
	if !ok || !cfg.Datatypes[cdt] {
		rt.stats.Fallbacks.Datatype++
		rt.countFallback(op, "datatype")
		return decision{}
	}
	var cop ccl.RedOp
	if rop != nil {
		cop, ok = mapOp(*rop)
		if !ok || !cfg.Ops[cop] {
			rt.stats.Fallbacks.Op++
			rt.countFallback(op, "op")
			return decision{}
		}
	}
	d := decision{useCCL: true, dt: cdt, op: cop}
	if rt.opts.Mode == Hybrid {
		th, hit := rt.table.Choice(op, bytes)
		rt.countTuning(op, th.Path, hit)
		if th.Path == PathMPI {
			return decision{}
		}
		d.algo, d.chunk = mapAlgo(th.Algo), th.ChunkBytes
		if th.Algo != AlgoAuto {
			rt.countAlgoChoice(op, th.Algo)
		}
		d.applyPlan(op, th.Plan)
	}
	if d.plan == "" && rt.opts.Compile && compilableOps[op] {
		d.plan = "auto"
	}
	return d
}

// runCCL executes fn against the cached CCL communicator and this rank's
// stream, blocking until the enqueued work completes (MPI semantics). A
// CCL error falls back to nothing here — the caller handles it (and may
// retry: a failed group call is aborted so the retry starts clean).
func (x *Comm) runCCL(fn func(cc *ccl.Comm, s *device.Stream) error) error {
	cc, err := x.cclComm()
	if err != nil {
		return err
	}
	if wd := x.rt.watchdogTimeout(); wd != cc.Watchdog() {
		cc.SetWatchdog(wd)
	}
	// React to an active link-degradation window: drive fewer fabric
	// channels so concurrent flows keep a fair share of the shrunken
	// pool. Cleared again once the window passes.
	if !x.rt.policy.Disabled {
		if lf, ok := x.mpi.Job().Fabric().DegradedNow(x.mpi.Proc().Now()); ok {
			budget := lf.ChannelCap
			if budget <= 0 {
				budget = (cc.Config().Channels + 1) / 2
			}
			cc.SetChannelCap(budget)
		} else if cc.ChannelCap() != 0 {
			cc.SetChannelCap(0)
		}
	}
	s := x.rt.stream(x.mpi.WorldRank(), x.Device())
	if err := fn(cc, s); err != nil {
		cc.GroupAbort()
		return err
	}
	s.Synchronize(x.mpi.Proc())
	// A watchdog abort lets the stream task complete, so synchronization
	// returns normally and the verdict is only visible here.
	if err := cc.TakeAsyncErr(); err != nil {
		return err
	}
	return nil
}
