package core

// Persistent collectives at the dispatch layer: the MPI-4
// MPI_Allreduce_init analogue over the xCCL abstraction. AllReduceInit
// pays the whole per-call dispatch pipeline exactly once — dead/revoked
// check, the §3.1–§3.4 decision (device identify, datatype/op mapping,
// hybrid tuning-table lookup), the circuit-breaker consult, CCL
// communicator rendezvous, algorithm forcing, and the CCL layer's own
// plan/scratch/helper setup — and returns a handle whose steady-state
// Start/Wait run the pre-built schedule with zero heap allocations.
//
// Per-wave semantics mirror run() in collectives.go: a fail-stop verdict
// (ccl.ErrRankDead) is surfaced through Failure() for ULFM-style
// revoke/shrink and permanently breaks the handle; any other CCL failure
// feeds the circuit breaker and falls the wave back to the blocking MPI
// path. The breaker is consulted at Init, not per Start — a per-wave
// consult would desynchronize the breaker's wave bookkeeping with the
// one-shot collectives sharing the communicator.

import (
	"errors"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/mpi"

	"mpixccl/internal/device"
	"mpixccl/internal/trace"
)

// ErrOpFreed reports a Start or Wait on a handle already released by Free.
// The wave did not run.
var ErrOpFreed = errors.New("xccl: persistent op used after Free")

// ErrOpDoubleFree reports a second Free of the same handle. The first
// Free already released the CCL-layer scratch; the second did nothing.
var ErrOpDoubleFree = errors.New("xccl: persistent op freed twice")

// PersistentOp is one rank's handle on a persistent collective (allreduce,
// bcast, or allgather). The state machine is Init → (Start → [Pready…] →
// Wait)* → Free:
//
//	Start   launches the pre-built schedule without blocking
//	Pready  marks one send-payload partition ready (partitioned handles)
//	Wait    blocks until the wave completes, handling fallback/failure
//	Do      = Start + PreadyAll + Wait, bytewise ≡ the one-shot call
//
// A handle is bound to the communicator it was built on: after a Shrink
// the application must Free it and Init a fresh handle on the survivor
// communicator (see dl.TrainElastic).
type PersistentOp struct {
	x          *Comm
	kind       OpKind
	send, recv *device.Buffer
	count      int
	dt         mpi.Datatype
	op         mpi.Op
	bytes      int64
	parts      int
	fb         func() // the blocking MPI algorithm, for demoted waves

	pc *ccl.PersistentColl // nil when the plan decided the MPI path
	cc *ccl.Comm           // the communicator pc was built on

	start    time.Duration // virtual start of the wave in flight
	inflight bool
	demoted  bool // this wave fell back to MPI at Start
	freed    bool
}

// AllReduceInit builds a persistent allreduce handle: the dispatch
// decision, breaker consult, CCL communicator rendezvous, and schedule
// construction run here, exactly once. Every rank of the communicator
// must call it with consistent arguments and in the same handle order
// (like collectives themselves). Handles whose decision chose the MPI
// path (pure-MPI mode, unsupported datatype/op, host buffers, tuning
// table, open breaker) are still valid: their waves run the blocking MPI
// algorithm in Wait.
func (x *Comm) AllReduceInit(send, recv *device.Buffer, count int, dt mpi.Datatype, op mpi.Op) (*PersistentOp, error) {
	return x.AllReduceInitPartitioned(send, recv, count, dt, op, 1)
}

// AllReduceInitPartitioned is AllReduceInit with the send payload split
// into parts contiguous element ranges whose readiness the application
// signals per wave with Pready (MPI_Pready), overlapping payload
// production with the collective. parts is clamped to count; parts = 1
// behaves like AllReduceInit. MPI-path handles ignore partitioning (the
// blocking MPI algorithm needs the whole payload).
func (x *Comm) AllReduceInitPartitioned(send, recv *device.Buffer, count int, dt mpi.Datatype, op mpi.Op, parts int) (*PersistentOp, error) {
	if err := x.persistAlive(); err != nil {
		return nil, err
	}
	bytes := int64(count) * int64(dt.Size())
	po := &PersistentOp{
		x: x, kind: OpAllreduce, send: send, recv: recv,
		count: count, dt: dt, op: op, bytes: bytes, parts: parts,
		fb: func() { x.mpi.Allreduce(send, recv, count, dt, op) },
	}
	d := x.decide(OpAllreduce, bytes, dt, &op, send, recv)
	return x.persistInit(po, d, func(cc *ccl.Comm, s *device.Stream) (*ccl.PersistentColl, error) {
		return cc.AllReduceInitPartitioned(send, recv, count, d.dt, d.op, parts, s)
	})
}

// BcastInit builds a persistent broadcast handle (MPI_Bcast_init) over buf,
// in place, rooted at root. Same Init-once contract as AllReduceInit;
// broadcast handles are not partitionable.
func (x *Comm) BcastInit(buf *device.Buffer, count int, dt mpi.Datatype, root int) (*PersistentOp, error) {
	if err := x.persistAlive(); err != nil {
		return nil, err
	}
	bytes := int64(count) * int64(dt.Size())
	po := &PersistentOp{
		x: x, kind: OpBcast, send: buf, recv: buf,
		count: count, dt: dt, bytes: bytes, parts: 1,
		fb: func() { x.mpi.Bcast(buf, count, dt, root) },
	}
	d := x.decide(OpBcast, bytes, dt, nil, buf)
	return x.persistInit(po, d, func(cc *ccl.Comm, s *device.Stream) (*ccl.PersistentColl, error) {
		return cc.BcastInit(buf, buf, count, d.dt, root, s)
	})
}

// AllgatherInit builds a persistent allgather handle (MPI_Allgather_init):
// each wave concatenates every rank's send buffer into recv (size count×n).
func (x *Comm) AllgatherInit(send *device.Buffer, count int, dt mpi.Datatype, recv *device.Buffer) (*PersistentOp, error) {
	if err := x.persistAlive(); err != nil {
		return nil, err
	}
	bytes := int64(count) * int64(dt.Size())
	po := &PersistentOp{
		x: x, kind: OpAllgather, send: send, recv: recv,
		count: count, dt: dt, bytes: bytes, parts: 1,
		fb: func() { x.mpi.Allgather(send, count, dt, recv) },
	}
	d := x.decide(OpAllgather, bytes, dt, nil, send, recv)
	return x.persistInit(po, d, func(cc *ccl.Comm, s *device.Stream) (*ccl.PersistentColl, error) {
		return cc.AllgatherInit(send, recv, count, d.dt, s)
	})
}

// persistAlive rejects Init on a dead or revoked communicator, before the
// dispatch decision runs (and records its tuning-lookup metrics).
func (x *Comm) persistAlive() error {
	if x.dead || x.rt.revoked[x.mpi.ContextID()] {
		if x.failure == nil {
			x.failure = ErrCommRevoked
		}
		return x.failure
	}
	return nil
}

// persistInit finishes handle construction for any persistent collective:
// liveness check, breaker consult, CCL communicator rendezvous, algorithm
// forcing, and the CCL layer's schedule build.
func (x *Comm) persistInit(po *PersistentOp, d decision,
	ccInit func(cc *ccl.Comm, s *device.Stream) (*ccl.PersistentColl, error)) (*PersistentOp, error) {
	if d.useCCL && !x.rt.allowCCL(x, po.kind) {
		// Open breaker at plan time: the handle is demoted to the MPI path
		// for its whole lifetime, exactly as one one-shot call would be for
		// one wave. Rebuild the handle after the breaker closes to return
		// to the CCL.
		d.useCCL = false
		x.rt.stats.BreakerSkips++
		x.rt.stats.Fallbacks.Error++
		x.rt.countFallback(po.kind, "breaker_open")
	}
	if !d.useCCL {
		return po, nil
	}
	cc, err := x.cclComm()
	if err != nil {
		// Communicator creation failures behave like any CCL error:
		// breaker feedback, fallback counters, MPI-path handle.
		x.rt.breakerFailure(x, po.kind)
		x.rt.stats.Fallbacks.Error++
		x.rt.countFallback(po.kind, "ccl_error")
		return po, nil
	}
	cc.SetAlgorithm(d.algo, d.chunk)
	s := x.rt.stream(x.mpi.WorldRank(), x.Device())
	pc, err := ccInit(cc, s)
	if err != nil {
		// Init-time CCL errors are argument/plan errors, not runtime
		// failures: surface them instead of silently demoting.
		return nil, err
	}
	po.pc = pc
	po.cc = cc
	return po, nil
}

// Start launches one execution of the pre-built schedule without
// blocking. Fault hooks are probed here, per wave, exactly as per
// one-shot call: a fail-stopped rank's Start fails fast and records the
// verdict on the handle's communicator. Any other injected failure
// demotes just this wave to the MPI path (executed in Wait) with breaker
// feedback. Start on a revoked communicator no-ops with ErrCommRevoked;
// Start on a freed handle no-ops with ErrOpFreed.
func (po *PersistentOp) Start() error {
	x := po.x
	if po.freed {
		return ErrOpFreed
	}
	if _, bad := x.rt.fenced[x.mpi.WorldRank()]; bad {
		if x.failure == nil {
			x.failure = ErrFenced
		}
		return x.failure
	}
	if x.dead || x.rt.revoked[x.mpi.ContextID()] {
		if x.failure == nil {
			x.failure = ErrCommRevoked
		}
		return x.failure
	}
	if x.rt.staleCtx[x.mpi.ContextID()] {
		if x.failure == nil {
			x.failure = ErrStaleEpoch
		}
		return x.failure
	}
	// Heartbeat fast-fail, mirroring run(): a confirmed-dead peer cannot
	// join this wave, so surface the verdict before launching.
	if err := x.suspectErr(po.kind); err != nil {
		x.noteRankFailure(po.kind, err)
		return err
	}
	// Partition fast-fail, mirroring run(): a severed peer cannot join
	// this wave either.
	if err := x.unreachableErr(po.kind); err != nil {
		x.notePartition(po.kind, err)
		return err
	}
	po.start = x.mpi.Proc().Now()
	po.inflight = true
	po.demoted = false
	if po.pc == nil {
		return nil
	}
	// Per-wave environment sync, as runCCL does per one-shot call: the
	// watchdog deadline may have been re-armed and a fabric degradation
	// window may have opened or closed since the last wave.
	if wd := x.rt.watchdogTimeout(); wd != po.cc.Watchdog() {
		po.cc.SetWatchdog(wd)
	}
	if !x.rt.policy.Disabled {
		if lf, ok := x.mpi.Job().Fabric().DegradedNow(x.mpi.Proc().Now()); ok {
			budget := lf.ChannelCap
			if budget <= 0 {
				budget = (po.cc.Config().Channels + 1) / 2
			}
			po.cc.SetChannelCap(budget)
		} else if po.cc.ChannelCap() != 0 {
			po.cc.SetChannelCap(0)
		}
	}
	if err := po.pc.Start(); err != nil {
		if errors.Is(err, ccl.ErrRankDead) {
			x.noteRankFailure(po.kind, err)
			po.inflight = false
			return err
		}
		if errors.Is(err, ccl.ErrUnreachable) {
			x.notePartition(po.kind, err)
			po.inflight = false
			return err
		}
		x.rt.breakerFailure(x, po.kind)
		x.rt.stats.Fallbacks.Error++
		x.rt.countFallback(po.kind, "ccl_error")
		po.demoted = true
	}
	return nil
}

// Pready marks partition k of the send buffer ready for the wave in
// flight (MPI_Pready). Valid between Start and Wait, once per partition
// per wave. Non-partitioned and MPI-path handles ignore it.
func (po *PersistentOp) Pready(k int) {
	if po.freed || po.pc == nil || po.demoted {
		return
	}
	po.pc.Pready(k)
}

// PreadyAll marks every partition of the wave in flight ready.
func (po *PersistentOp) PreadyAll() {
	if po.freed || po.pc == nil || po.demoted {
		return
	}
	po.pc.PreadyAll()
}

// Wait blocks until the launched wave completes, with run()'s full error
// handling: a fail-stop verdict surfaces through Failure() and returns
// without a trace record (the rank abandoned the operation); any other
// CCL failure feeds the breaker and re-executes the wave on the blocking
// MPI path; success credits the breaker. Every completed wave emits the
// same trace record and metric aggregates as a one-shot call.
func (po *PersistentOp) Wait() error {
	x := po.x
	if po.freed {
		return ErrOpFreed
	}
	if !po.inflight {
		return x.failure
	}
	po.inflight = false
	path := PathMPI
	if po.pc != nil && !po.demoted {
		err := po.pc.Wait(x.mpi.Proc())
		if err != nil {
			if errors.Is(err, ccl.ErrRankDead) {
				// Fail-stop: retrying cannot succeed and the MPI fallback
				// would block forever on the dead peer. The handle is
				// permanently broken; rebuild it after Shrink.
				x.noteRankFailure(po.kind, err)
				return err
			}
			if errors.Is(err, ccl.ErrUnreachable) {
				// Severed by a partition: same reasoning — the MPI fallback
				// crosses the same cut. Rebuild after the quorum shrink.
				x.notePartition(po.kind, err)
				return err
			}
			x.rt.breakerFailure(x, po.kind)
			x.rt.stats.Fallbacks.Error++
			x.rt.stats.MPIOps++
			x.rt.countFallback(po.kind, "ccl_error")
			po.fb()
		} else {
			x.rt.breakerSuccess(x, po.kind)
			path = PathCCL
			x.rt.stats.CCLOps++
		}
	} else {
		x.rt.stats.MPIOps++
		po.fb()
	}
	rec := trace.Record{
		Op: string(po.kind), Path: path.String(), Backend: string(x.rt.kind),
		Rank: x.Rank(), Bytes: po.bytes,
		Start: po.start, Duration: x.mpi.Proc().Now() - po.start,
	}
	x.rt.opts.Trace.Add(rec)
	trace.RecordMetrics(x.rt.opts.Metrics, rec)
	return nil
}

// Do runs one complete wave: Start, every partition ready, Wait. With
// pre-filled buffers it is bytewise equivalent to one-shot Allreduce.
func (po *PersistentOp) Do() error {
	if err := po.Start(); err != nil {
		return err
	}
	po.PreadyAll()
	return po.Wait()
}

// Parts reports the partition count (1 for a plain persistent op).
func (po *PersistentOp) Parts() int { return po.parts }

// UsesCCL reports whether the handle's plan chose the CCL path.
func (po *PersistentOp) UsesCCL() bool { return po.pc != nil }

// PlannedAlgorithm reports the CCL schedule family Init selected, or ""
// for MPI-path handles.
func (po *PersistentOp) PlannedAlgorithm() string {
	if po.pc == nil {
		return ""
	}
	return po.pc.PlannedAlgorithm().String()
}

// Free releases the handle's CCL-layer scratch once every rank handle
// has called it, after the final Wait. Freeing twice returns
// ErrOpDoubleFree (the handle stays freed; nothing is released twice),
// and a freed handle rejects Start and Wait with ErrOpFreed.
func (po *PersistentOp) Free() error {
	if po.freed {
		return ErrOpDoubleFree
	}
	po.freed = true
	if po.pc != nil {
		po.pc.Free()
	}
	return nil
}
