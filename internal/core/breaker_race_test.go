package core

import (
	"sync"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// The half-open probe under concurrency, two layers at once: inside each
// simulation, every rank issues three nonblocking Allreduces concurrently
// right as the breaker cooldown elapses, so multiple dispatch waves race
// through the open->half_open transition (wave-consistent verdicts must
// produce exactly one transition); and four such simulations run on real
// goroutines sharing one metrics registry, which `go test -race` checks
// for unsynchronized access (scripts/check.sh runs this package with
// -race).
func TestBreakerHalfOpenProbeConcurrentRanks(t *testing.T) {
	reg := metrics.NewRegistry()
	const nRuntimes = 4
	rts := make([]*Runtime, nRuntimes)
	for i := range rts {
		rts[i] = newRuntime(t, "thetagpu", 4, Options{
			Backend: Auto, Mode: PureCCL, Metrics: reg,
			Resilience: &Resilience{BreakerThreshold: 2, BreakerCooldown: time.Millisecond},
		})
		// Wave 1 fails on every rank (opening the breaker); the probe
		// waves after the cooldown find the budget exhausted and succeed.
		plan := fault.NewPlan(uint64(11 + i)).AddRule(fault.Rule{
			Name: "burst", Op: "allreduce", Result: ccl.ErrInternal, Count: 4,
		})
		rts[i].Job().Fabric().SetFaults(plan)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nRuntimes)
	for _, rt := range rts {
		rt := rt
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- rt.Run(func(x *Comm) {
				const count = 256
				send := x.Device().MustMalloc(count * 4)
				defer send.Free()
				send.FillFloat32(float32(x.Rank() + 1))
				recvs := make([]*device.Buffer, 3)
				for i := range recvs {
					recvs[i] = x.Device().MustMalloc(count * 4)
					defer recvs[i].Free()
				}
				// Wave 1: every rank's call fails, the breaker opens.
				x.Allreduce(send, recvs[0], count, mpi.Float32, mpi.OpSum)
				// Wave 2: breaker open, CCL dispatch skipped.
				x.Allreduce(send, recvs[0], count, mpi.Float32, mpi.OpSum)
				x.MPI().Proc().Sleep(2 * time.Millisecond)
				// Waves 3-5 race through the elapsed cooldown concurrently.
				var reqs []*Request
				for i := range recvs {
					reqs = append(reqs, x.Iallreduce(send, recvs[i], count, mpi.Float32, mpi.OpSum))
				}
				for _, r := range reqs {
					x.Wait(r)
				}
				for i, recv := range recvs {
					if got := recv.Float32(0); got != 10 {
						t.Errorf("rank %d probe %d: sum = %v, want 10", x.Rank(), i, got)
					}
				}
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i, rt := range rts {
		st := rt.Stats()
		if st.BreakerSkips != 4 {
			t.Errorf("runtime %d: BreakerSkips = %d, want 4 (wave 2)", i, st.BreakerSkips)
		}
		if st.CCLOps != 12 || st.MPIOps != 8 {
			t.Errorf("runtime %d: CCLOps=%d MPIOps=%d, want 12/8", i, st.CCLOps, st.MPIOps)
		}
	}
	// Exactly one transition per runtime and state: concurrent probe waves
	// must not re-trigger open->half_open, and only the first probe
	// success closes.
	for to, want := range map[string]float64{"open": nRuntimes, "half_open": nRuntimes, "closed": nRuntimes} {
		v, ok := reg.CounterValue("xccl_breaker_transitions_total", metrics.Labels{
			"backend": "nccl", "op": "allreduce", "to": to})
		if !ok || v != want {
			t.Errorf("breaker transitions to %s = %v (exists %v), want %v", to, v, ok, want)
		}
	}
}
