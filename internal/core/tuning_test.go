package core

import (
	"testing"
	"testing/quick"
)

func TestTuningLookupBands(t *testing.T) {
	tab := &TuningTable{System: "test", Backend: "nccl"}
	tab.Set(OpAllreduce, []Threshold{
		{MaxBytes: 16 << 10, Path: PathMPI},
		{MaxBytes: 0, Path: PathCCL},
	})
	cases := []struct {
		bytes int64
		want  Path
	}{
		{1, PathMPI}, {16 << 10, PathMPI}, {16<<10 + 1, PathCCL}, {1 << 30, PathCCL},
	}
	for _, c := range cases {
		if got := tab.Lookup(OpAllreduce, c.bytes); got != c.want {
			t.Errorf("lookup(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestTuningLookupDefaults(t *testing.T) {
	var nilTab *TuningTable
	if nilTab.Lookup(OpAllreduce, 1) != PathCCL {
		t.Error("nil table should default to CCL")
	}
	tab := &TuningTable{}
	if tab.Lookup(OpBcast, 1) != PathCCL {
		t.Error("missing rule should default to CCL")
	}
}

func TestTuningSetSortsThresholds(t *testing.T) {
	tab := &TuningTable{}
	tab.Set(OpReduce, []Threshold{
		{MaxBytes: 0, Path: PathCCL},
		{MaxBytes: 1024, Path: PathMPI},
		{MaxBytes: 64, Path: PathCCL},
	})
	rule := tab.Rules[OpReduce]
	if rule[0].MaxBytes != 64 || rule[1].MaxBytes != 1024 || rule[2].MaxBytes != 0 {
		t.Fatalf("rule order = %+v", rule)
	}
	if tab.Lookup(OpReduce, 32) != PathCCL || tab.Lookup(OpReduce, 512) != PathMPI {
		t.Fatal("banded lookup wrong after sort")
	}
}

func TestTuningJSONRoundTrip(t *testing.T) {
	tab := DefaultTable("ThetaGPU", NCCL)
	data, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.System != tab.System || back.Backend != tab.Backend {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	for _, bytes := range []int64{1, 4 << 10, 16 << 10, 64 << 10, 4 << 20} {
		for _, op := range []OpKind{OpAllreduce, OpAlltoall, OpBcast} {
			if back.Lookup(op, bytes) != tab.Lookup(op, bytes) {
				t.Fatalf("lookup diverges after round trip: %s %d", op, bytes)
			}
		}
	}
}

func TestParseTableRejectsGarbage(t *testing.T) {
	if _, err := ParseTable([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDefaultTableCrossovers(t *testing.T) {
	// The built-in tables must encode the paper's measured crossovers:
	// Fig 1a: MPI wins <=16 KB vs NCCL allreduce; Fig 1b: <=64 KB vs RCCL
	// allgather; HCCL's 270 µs launch pushes everything to 1 MB.
	nccl := DefaultTable("ThetaGPU", NCCL)
	if nccl.Lookup(OpAllreduce, 16<<10) != PathMPI || nccl.Lookup(OpAllreduce, 32<<10) != PathCCL {
		t.Error("NCCL allreduce crossover wrong")
	}
	if nccl.Lookup(OpAlltoall, 4<<10) != PathMPI || nccl.Lookup(OpAlltoall, 8<<10) != PathCCL {
		t.Error("NCCL alltoall crossover wrong")
	}
	rccl := DefaultTable("MRI", RCCL)
	if rccl.Lookup(OpAllgather, 64<<10) != PathMPI || rccl.Lookup(OpAllgather, 128<<10) != PathCCL {
		t.Error("RCCL allgather crossover wrong")
	}
	hccl := DefaultTable("Voyager", HCCL)
	if hccl.Lookup(OpAllreduce, 512<<10) != PathMPI || hccl.Lookup(OpAllreduce, 2<<20) != PathCCL {
		t.Error("HCCL crossover wrong")
	}
}

// Property: every lookup returns a decisive path and banding is monotone
// within two-band crossover rules (MPI below, CCL above).
func TestCrossoverMonotoneProperty(t *testing.T) {
	f := func(crossRaw uint16, probeRaw uint32) bool {
		cross := int64(crossRaw) + 1
		tab := &TuningTable{}
		tab.Set(OpAllreduce, crossover(cross))
		probe := int64(probeRaw)
		got := tab.Lookup(OpAllreduce, probe)
		if probe <= cross {
			return got == PathMPI
		}
		return got == PathCCL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathString(t *testing.T) {
	if PathMPI.String() != "mpi" || PathCCL.String() != "ccl" {
		t.Error("path names wrong")
	}
}
