package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTuningLookupBands(t *testing.T) {
	tab := &TuningTable{System: "test", Backend: "nccl"}
	tab.Set(OpAllreduce, []Threshold{
		{MaxBytes: 16 << 10, Path: PathMPI},
		{MaxBytes: 0, Path: PathCCL},
	})
	cases := []struct {
		bytes int64
		want  Path
	}{
		{1, PathMPI}, {16 << 10, PathMPI}, {16<<10 + 1, PathCCL}, {1 << 30, PathCCL},
	}
	for _, c := range cases {
		if got := tab.Lookup(OpAllreduce, c.bytes); got != c.want {
			t.Errorf("lookup(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestTuningLookupDefaults(t *testing.T) {
	var nilTab *TuningTable
	if nilTab.Lookup(OpAllreduce, 1) != PathCCL {
		t.Error("nil table should default to CCL")
	}
	tab := &TuningTable{}
	if tab.Lookup(OpBcast, 1) != PathCCL {
		t.Error("missing rule should default to CCL")
	}
}

func TestTuningSetSortsThresholds(t *testing.T) {
	tab := &TuningTable{}
	tab.Set(OpReduce, []Threshold{
		{MaxBytes: 0, Path: PathCCL},
		{MaxBytes: 1024, Path: PathMPI},
		{MaxBytes: 64, Path: PathCCL},
	})
	rule := tab.Rules[OpReduce]
	if rule[0].MaxBytes != 64 || rule[1].MaxBytes != 1024 || rule[2].MaxBytes != 0 {
		t.Fatalf("rule order = %+v", rule)
	}
	if tab.Lookup(OpReduce, 32) != PathCCL || tab.Lookup(OpReduce, 512) != PathMPI {
		t.Fatal("banded lookup wrong after sort")
	}
}

func TestTuningJSONRoundTrip(t *testing.T) {
	tab := DefaultTable("ThetaGPU", NCCL)
	data, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.System != tab.System || back.Backend != tab.Backend {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	for _, bytes := range []int64{1, 4 << 10, 16 << 10, 64 << 10, 4 << 20} {
		for _, op := range []OpKind{OpAllreduce, OpAlltoall, OpBcast} {
			if back.Lookup(op, bytes) != tab.Lookup(op, bytes) {
				t.Fatalf("lookup diverges after round trip: %s %d", op, bytes)
			}
		}
	}
}

func TestParseTableRejectsGarbage(t *testing.T) {
	if _, err := ParseTable([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDefaultTableCrossovers(t *testing.T) {
	// The built-in tables must encode the paper's measured crossovers:
	// Fig 1a: MPI wins <=16 KB vs NCCL allreduce; Fig 1b: <=64 KB vs RCCL
	// allgather; HCCL's 270 µs launch pushes everything to 1 MB.
	nccl := DefaultTable("ThetaGPU", NCCL)
	if nccl.Lookup(OpAllreduce, 16<<10) != PathMPI || nccl.Lookup(OpAllreduce, 32<<10) != PathCCL {
		t.Error("NCCL allreduce crossover wrong")
	}
	if nccl.Lookup(OpAlltoall, 4<<10) != PathMPI || nccl.Lookup(OpAlltoall, 8<<10) != PathCCL {
		t.Error("NCCL alltoall crossover wrong")
	}
	rccl := DefaultTable("MRI", RCCL)
	if rccl.Lookup(OpAllgather, 64<<10) != PathMPI || rccl.Lookup(OpAllgather, 128<<10) != PathCCL {
		t.Error("RCCL allgather crossover wrong")
	}
	hccl := DefaultTable("Voyager", HCCL)
	if hccl.Lookup(OpAllreduce, 512<<10) != PathMPI || hccl.Lookup(OpAllreduce, 2<<20) != PathCCL {
		t.Error("HCCL crossover wrong")
	}
}

// Property: every lookup returns a decisive path and banding is monotone
// within two-band crossover rules (MPI below, CCL above).
func TestCrossoverMonotoneProperty(t *testing.T) {
	f := func(crossRaw uint16, probeRaw uint32) bool {
		cross := int64(crossRaw) + 1
		tab := &TuningTable{}
		tab.Set(OpAllreduce, crossover(cross))
		probe := int64(probeRaw)
		got := tab.Lookup(OpAllreduce, probe)
		if probe <= cross {
			return got == PathMPI
		}
		return got == PathCCL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathString(t *testing.T) {
	if PathMPI.String() != "mpi" || PathCCL.String() != "ccl" {
		t.Error("path names wrong")
	}
}

// TestParseTableMigration pins the forward/backward-compat contract: v1
// (unversioned) and v2 tables load unchanged, v3 tables with compiled-plan
// keys load and validate, and anything newer than v3 is rejected with an
// error that names the offending version.
func TestParseTableMigration(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
		check   func(t *testing.T, tab *TuningTable)
	}{
		{
			name: "v1-unversioned",
			json: `{"system":"ThetaGPU","backend":"nccl","rules":{
				"allreduce":[{"max_bytes":16384,"path":0},{"max_bytes":0,"path":1}]}}`,
			check: func(t *testing.T, tab *TuningTable) {
				if tab.Lookup(OpAllreduce, 1<<10) != PathMPI || tab.Lookup(OpAllreduce, 1<<20) != PathCCL {
					t.Fatal("v1 bands misread")
				}
				th, _ := tab.Choice(OpAllreduce, 1<<20)
				if th.Algo != AlgoAuto || th.Plan != "" {
					t.Fatalf("v1 band gained fields: %+v", th)
				}
			},
		},
		{
			name: "v2-algo-chunk",
			json: `{"version":2,"system":"ThetaGPU","backend":"nccl","rules":{
				"allreduce":[{"max_bytes":0,"path":1,"algo":"hierarchical","chunk_bytes":1048576}]}}`,
			check: func(t *testing.T, tab *TuningTable) {
				th, _ := tab.Choice(OpAllreduce, 1<<20)
				if th.Algo != AlgoHierarchical || th.ChunkBytes != 1<<20 || th.Plan != "" {
					t.Fatalf("v2 band misread: %+v", th)
				}
			},
		},
		{
			name: "v3-compiled-plan",
			json: `{"version":3,"system":"ThetaGPU","backend":"nccl","rules":{
				"alltoall":[{"max_bytes":0,"path":1,"plan":"phased:chunk=1048576"}],
				"scatter":[{"max_bytes":0,"path":1,"plan":"staged:intra=tree,stripe=2,depth=1"}],
				"allreduce":[{"max_bytes":0,"path":1,"plan":"native:hier"}]}}`,
			check: func(t *testing.T, tab *TuningTable) {
				th, _ := tab.Choice(OpAlltoall, 1<<20)
				if th.Plan != "phased:chunk=1048576" {
					t.Fatalf("v3 plan misread: %+v", th)
				}
			},
		},
		{
			name:    "v4-rejected",
			json:    `{"version":4,"system":"ThetaGPU","backend":"nccl","rules":{}}`,
			wantErr: "version 4",
		},
		{
			name: "v3-bad-plan-key",
			json: `{"version":3,"system":"ThetaGPU","backend":"nccl","rules":{
				"alltoall":[{"max_bytes":0,"path":1,"plan":"warp-drive"}]}}`,
			wantErr: "warp-drive",
		},
		{
			name: "v3-plan-wrong-op",
			json: `{"version":3,"system":"ThetaGPU","backend":"nccl","rules":{
				"allreduce":[{"max_bytes":0,"path":1,"plan":"phased"}]}}`,
			wantErr: "allreduce",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tab, err := ParseTable([]byte(c.json))
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, tab)
		})
	}
}

// TestTuningJSONStampsV3 pins that re-serialized tables carry the current
// version so older binaries refuse them instead of dropping plan bands.
func TestTuningJSONStampsV3(t *testing.T) {
	tab := &TuningTable{System: "s", Backend: "nccl"}
	tab.Set(OpAlltoall, []Threshold{{MaxBytes: 0, Path: PathCCL, Plan: "phased"}})
	data, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 3`) {
		t.Fatalf("serialized table missing v3 stamp:\n%s", data)
	}
	back, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := back.Choice(OpAlltoall, 1)
	if th.Plan != "phased" {
		t.Fatalf("plan lost in round trip: %+v", th)
	}
}
