package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// Failure model v3 end to end, minus the heal: a permanent node-scoped cut
// severs node 1 (ranks 8-11) from node 0 (ranks 0-7) of a 12-rank job. The
// majority side quorum-shrinks to 8 and keeps computing; the minority side
// loses the quorum vote, fences itself, and every later dispatch fails
// fast with ErrFenced — all in bounded virtual time, no watchdog needed.
func TestPartitionQuorumShrinkMinorityFences(t *testing.T) {
	const nranks = 12
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: watchdogPolicy(),
	})
	cut := 50 * time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "cut", Nodes: []int{1}, From: cut,
	}))

	const count = 64
	if err := rt.Run(func(x *Comm) {
		p := x.MPI().Proc()
		buf := x.Device().MustMalloc(count * 4)
		defer buf.Free()

		// Before the cut: full-width collective completes everywhere.
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if err := x.Failure(); err != nil {
			t.Errorf("rank %d pre-cut failure: %v", x.Rank(), err)
			return
		}
		if buf.Float32(0) != nranks {
			t.Errorf("rank %d pre-cut sum = %v, want %d", x.Rank(), buf.Float32(0), nranks)
		}

		// After the cut: the dispatch fast-fails. The first rank to run sees
		// ErrUnreachable; its Shrink revokes the communicator, so later
		// ranks see ErrCommRevoked — either way, nobody blocks.
		p.Sleep(cut)
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if f := x.Failure(); !errors.Is(f, ccl.ErrUnreachable) && !errors.Is(f, ErrCommRevoked) {
			t.Errorf("rank %d post-cut failure = %v, want ErrUnreachable or ErrCommRevoked", x.Rank(), f)
			return
		}

		nx, serr := x.Shrink()
		if x.MPI().WorldRank() < 8 {
			// Majority: quorum holds (8 of 12), shrink succeeds, compute on.
			if serr != nil {
				t.Errorf("majority rank %d shrink: %v", x.Rank(), serr)
				return
			}
			if nx.Size() != 8 {
				t.Errorf("shrunk size = %d, want 8", nx.Size())
			}
			buf.FillFloat32(1)
			nx.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
			if err := nx.Failure(); err != nil {
				t.Errorf("majority rank %d post-shrink failure: %v", x.Rank(), err)
			} else if buf.Float32(0) != 8 {
				t.Errorf("post-shrink sum = %v, want 8", buf.Float32(0))
			}
			return
		}
		// Minority: the quorum vote fails without entering the rendezvous.
		if !errors.Is(serr, ErrNoQuorum) {
			t.Errorf("minority rank %d shrink = %v, want ErrNoQuorum", x.Rank(), serr)
			return
		}
		// Fencing is a property of the rank, not the handle: a fresh handle
		// on the same rank fast-fails with ErrFenced.
		fx := rt.Wrap(x.MPI())
		fx.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if !errors.Is(fx.Failure(), ErrFenced) {
			t.Errorf("minority rank %d fenced dispatch = %v, want ErrFenced", x.Rank(), fx.Failure())
		}
	}); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.Shrinks != 1 || st.Partitions != 1 || st.FencedRanks != 4 || st.Epoch != 1 {
		t.Errorf("Shrinks, Partitions, FencedRanks, Epoch = %d, %d, %d, %d; want 1, 1, 4, 1",
			st.Shrinks, st.Partitions, st.FencedRanks, st.Epoch)
	}
	if got := rt.Fenced(); len(got) != 4 {
		t.Errorf("Fenced() = %v, want 4 fenced ranks", got)
	}

	// Satellite: the partition metric families round-trip through the
	// Prometheus text exposition.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := metrics.ParseText(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for key, want := range map[string]float64{
		`xccl_partitions_total{backend="nccl"}`:   1,
		`xccl_fenced_ranks_total{backend="nccl"}`: 4,
		`xccl_epoch{backend="nccl"}`:              1,
	} {
		if got, ok := vals[key]; !ok || got != want {
			t.Errorf("%s = %v (exists %v), want %v", key, got, ok, want)
		}
	}
}

// The heal-and-rejoin arc: the cut is time-windowed, so the fenced
// minority Rejoins through the spare pool once it heals, the majority
// polls Grow until the rejoiners park, and the job finishes at full width
// with a working communicator. The superseded shrunk handle rejects
// further collectives with ErrStaleEpoch.
func TestPartitionHealRejoinRestoresFullWidth(t *testing.T) {
	const nranks = 12
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Resilience: watchdogPolicy(),
	})
	cut, heal := 50*time.Microsecond, 400*time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "cut", Nodes: []int{1}, From: cut, Until: heal,
	}))

	const count = 64
	restores := 0
	if err := rt.Run(func(x *Comm) {
		p := x.MPI().Proc()
		buf := x.Device().MustMalloc(count * 4)
		defer buf.Free()

		p.Sleep(cut)
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if f := x.Failure(); !errors.Is(f, ccl.ErrUnreachable) && !errors.Is(f, ErrCommRevoked) {
			t.Errorf("rank %d post-cut failure = %v, want ErrUnreachable or ErrCommRevoked", x.Rank(), f)
			return
		}
		nx, serr := x.Shrink()
		if errors.Is(serr, ErrNoQuorum) {
			// Minority: wait out the cut, resync, re-enter via Grow.
			gx, ok := x.Rejoin(func() {
				p.Sleep(5 * time.Microsecond) // checkpoint reload
				restores++
			})
			if !ok {
				t.Errorf("minority rank %d: Rejoin not adopted", x.MPI().WorldRank())
				return
			}
			if p.Now() < heal {
				t.Errorf("minority rank %d rejoined at %v, before the heal at %v",
					x.MPI().WorldRank(), p.Now(), heal)
			}
			x = gx
		} else if serr != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), serr)
			return
		} else {
			// Majority: poll Grow until the rejoiners have parked. Every
			// member calls Grow each round; ErrNoSpares is a shared verdict,
			// so the rounds stay in lockstep.
			for {
				gx, adopted, gerr := nx.Grow(nranks - nx.Size())
				if gerr == nil {
					if len(adopted) != 4 {
						t.Errorf("adopted = %v, want the 4 fenced ranks", adopted)
					}
					// The grown member set supersedes the shrunk handle.
					nx.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
					if !errors.Is(nx.Failure(), ErrStaleEpoch) {
						t.Errorf("stale handle failure = %v, want ErrStaleEpoch", nx.Failure())
					}
					x = gx
					break
				}
				if !errors.Is(gerr, ErrNoSpares) {
					t.Errorf("rank %d grow: %v", x.Rank(), gerr)
					return
				}
				p.Sleep(50 * time.Microsecond)
			}
		}
		// Full width restored: a collective on the grown communicator
		// completes with every rank contributing.
		if x.Size() != nranks {
			t.Errorf("rejoined size = %d, want %d", x.Size(), nranks)
		}
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if err := x.Failure(); err != nil {
			t.Errorf("world rank %d post-rejoin failure: %v", x.MPI().WorldRank(), err)
		} else if buf.Float32(0) != nranks {
			t.Errorf("post-rejoin sum = %v, want %d", buf.Float32(0), nranks)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if restores != 4 {
		t.Errorf("restore callbacks = %d, want 4", restores)
	}
	st := rt.Stats()
	if st.Shrinks != 1 || st.Grows != 1 || st.Partitions != 1 || st.FencedRanks != 4 {
		t.Errorf("Shrinks, Grows, Partitions, FencedRanks = %d, %d, %d, %d; want 1, 1, 1, 4",
			st.Shrinks, st.Grows, st.Partitions, st.FencedRanks)
	}
	if st.Epoch != 2 {
		t.Errorf("Epoch = %d, want 2 (one shrink + one grow)", st.Epoch)
	}
	if got := rt.Fenced(); got != nil {
		t.Errorf("Fenced() after rejoin = %v, want none", got)
	}
}

// An exact 50/50 split has no strict majority: both halves must fence
// rather than fork the membership into two shrunken worlds. The job still
// drains in bounded time (no deadlock, no divergent Shrink).
func TestPartitionEvenSplitFencesBothSides(t *testing.T) {
	const nranks = 16 // two thetagpu nodes, 8 + 8
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Resilience: watchdogPolicy(),
	})
	cut := 50 * time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "cut", Nodes: []int{1}, From: cut,
	}))

	if err := rt.Run(func(x *Comm) {
		x.MPI().Proc().Sleep(cut)
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if !errors.Is(x.Failure(), ccl.ErrUnreachable) {
			t.Errorf("rank %d failure = %v, want ErrUnreachable", x.Rank(), x.Failure())
			return
		}
		if _, serr := x.Shrink(); !errors.Is(serr, ErrNoQuorum) {
			t.Errorf("rank %d shrink = %v, want ErrNoQuorum on an even split", x.Rank(), serr)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Shrinks != 0 || st.FencedRanks != nranks {
		t.Errorf("Shrinks, FencedRanks = %d, %d; want 0, %d", st.Shrinks, st.FencedRanks, nranks)
	}
}

// Rank-scoped cuts live above the fabric (which routes by node): severing
// world rank 3 from an intra-node communicator is invisible to transfers
// but still drives the membership machinery — the isolated rank fences,
// the majority shrinks around it.
func TestPartitionRankScopedCut(t *testing.T) {
	const nranks = 4
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Resilience: watchdogPolicy(),
	})
	cut := 50 * time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "isolate3", Ranks: []int{3}, From: cut,
	}))

	if err := rt.Run(func(x *Comm) {
		x.MPI().Proc().Sleep(cut)
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if f := x.Failure(); !errors.Is(f, ccl.ErrUnreachable) && !errors.Is(f, ErrCommRevoked) {
			t.Errorf("rank %d failure = %v, want ErrUnreachable or ErrCommRevoked", x.Rank(), f)
			return
		}
		nx, serr := x.Shrink()
		if x.Rank() == 3 {
			if !errors.Is(serr, ErrNoQuorum) {
				t.Errorf("isolated rank shrink = %v, want ErrNoQuorum", serr)
			}
			return
		}
		if serr != nil {
			t.Errorf("rank %d shrink: %v", x.Rank(), serr)
			return
		}
		if nx.Size() != 3 {
			t.Errorf("shrunk size = %d, want 3", nx.Size())
		}
		buf.FillFloat32(1)
		nx.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if err := nx.Failure(); err != nil {
			t.Errorf("rank %d post-shrink failure: %v", x.Rank(), err)
		} else if buf.Float32(0) != 3 {
			t.Errorf("post-shrink sum = %v, want 3", buf.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Partitions != 1 || st.FencedRanks != 1 {
		t.Errorf("Partitions, FencedRanks = %d, %d; want 1, 1", st.Partitions, st.FencedRanks)
	}
}

// A cut that lands mid-schedule (after dispatch, before the transfers
// finish) aborts the collective instead of deadlocking: the fabric fails
// the severed hop fast, the shared verdict propagates to every
// participant after the run, and all ranks observe ErrUnreachable in
// bounded virtual time.
func TestPartitionMidScheduleAbortsCollective(t *testing.T) {
	const nranks = 12
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Resilience: watchdogPolicy(),
	})
	// Dispatch at 100us sails past the pre-dispatch check; the cut opens
	// 1us later, while the big allreduce's transfers are in flight.
	start := 100 * time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "midcut", Nodes: []int{1}, From: start + time.Microsecond,
	}))

	const count = 1 << 20 // 4 MiB: transfer time far exceeds the 1us gap
	if err := rt.Run(func(x *Comm) {
		x.MPI().Proc().Sleep(start)
		buf := x.Device().MustMalloc(count * 4)
		defer buf.Free()
		buf.FillFloat32(1)
		x.Allreduce(buf, buf, count, mpi.Float32, mpi.OpSum)
		if !errors.Is(x.Failure(), ccl.ErrUnreachable) {
			t.Errorf("rank %d mid-schedule failure = %v, want ErrUnreachable",
				x.Rank(), x.Failure())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// The heartbeat detector must not convert partition silence into a death
// verdict: while the cut is open the detector notes "partitioned" for
// severed peers, hm.suspected stays empty, and Stats().Suspicions stays 0.
func TestHeartbeatPartitionedOutcomeIsNotDeath(t *testing.T) {
	const nranks = 12
	pol := DefaultResilience()
	pol.WatchdogTimeout = 200 * time.Microsecond
	pol.HeartbeatInterval = 20 * time.Microsecond
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", nranks, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: pol,
	})
	cut, heal := 60*time.Microsecond, 300*time.Microsecond
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddPartitionRule(fault.PartitionRule{
		Name: "cut", Nodes: []int{1}, From: cut, Until: heal,
	}))

	if err := rt.Run(func(x *Comm) {
		p := x.MPI().Proc()
		// Let the detector observe healthy beats, the cut, and the heal.
		p.Sleep(heal + 100*time.Microsecond)
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		buf.FillFloat32(1)
		// Post-heal: the full world is reachable again, no fence, no death.
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
		if err := x.Failure(); err != nil {
			t.Errorf("rank %d post-heal failure: %v", x.Rank(), err)
		} else if buf.Float32(0) != nranks {
			t.Errorf("post-heal sum = %v, want %d", buf.Float32(0), nranks)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Suspicions != 0 {
		t.Errorf("Suspicions = %d, want 0 (partitioned peers are alive)", st.Suspicions)
	}
	v, ok := reg.CounterValue("xccl_suspicions_total",
		metrics.Labels{"backend": "nccl", "outcome": "partitioned"})
	if !ok || v == 0 {
		t.Errorf("partitioned suspicion outcome = %v (exists %v), want > 0", v, ok)
	}
	if v, ok := reg.CounterValue("xccl_suspicions_total",
		metrics.Labels{"backend": "nccl", "outcome": "confirmed"}); ok && v != 0 {
		t.Errorf("confirmed suspicions = %v, want none during a pure partition", v)
	}
}
