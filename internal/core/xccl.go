// Package core implements the paper's primary contribution: the xCCL
// abstraction layer inside a GPU-aware MPI runtime (Fig 2).
//
// Applications keep calling standard MPI collectives on an mpi.Comm; the
// layer transparently decides, per call, whether to run the traditional MPI
// algorithm or to dispatch to the vendor collective communication library
// (NCCL, RCCL, HCCL, or MSCCL) appropriate for the accelerator:
//
//   - It identifies device buffers, manages per-rank streams, and caches
//     one CCL communicator per MPI communicator (§3.1).
//   - It maps MPI datatypes and reduction ops onto the backend's matrix and
//     falls back to the MPI path when the CCL cannot serve the request —
//     e.g. MPI_DOUBLE_COMPLEX anywhere, or anything but float on HCCL
//     (§3.2), or any runtime CCL error (§1.2 advantage 3).
//   - It synthesizes the collectives CCLs do not provide (Alltoall(v),
//     Gather, Scatter, ...) from xcclSend/xcclRecv group calls (§3.3,
//     Listing 1).
//   - In hybrid mode it consults an offline-tuned table to pick the faster
//     path per (operation, communicator, message size) (§3.4).
package core

import (
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/ccl/hccl"
	"mpixccl/internal/ccl/msccl"
	"mpixccl/internal/ccl/nccl"
	"mpixccl/internal/ccl/oneccl"
	"mpixccl/internal/ccl/rccl"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/trace"
)

// Mode selects the dispatch policy.
type Mode int

const (
	// Hybrid consults the tuning table per call (the proposed design).
	Hybrid Mode = iota
	// PureCCL always uses the CCL path when the backend is capable
	// ("Proposed xCCL w/ Pure ..." in the evaluation).
	PureCCL
	// PureMPI never dispatches to a CCL (the traditional-MPI baseline).
	PureMPI
)

// String names the mode as the evaluation labels it.
func (m Mode) String() string {
	switch m {
	case Hybrid:
		return "hybrid-xccl"
	case PureCCL:
		return "pure-xccl"
	case PureMPI:
		return "pure-mpi"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// BackendKind names a CCL backend, or Auto to pick by accelerator vendor.
type BackendKind string

// Backend kinds.
const (
	Auto   BackendKind = "auto"
	NCCL   BackendKind = "nccl"
	RCCL   BackendKind = "rccl"
	HCCL   BackendKind = "hccl"
	MSCCL  BackendKind = "msccl"
	OneCCL BackendKind = "oneccl"
	NoCCL  BackendKind = "none"
	legacy             = "nccl-legacy" // internal: NCCL 2.12 for MSCCL baselines
)

// backendFor resolves Auto using the device kind (the per-vendor mapping
// of Fig 2's bottom row).
func backendFor(kind BackendKind, dev device.Kind) (BackendKind, error) {
	if kind != Auto {
		return kind, nil
	}
	switch dev {
	case device.NvidiaGPU:
		return NCCL, nil
	case device.AMDGPU:
		return RCCL, nil
	case device.HabanaHPU:
		return HCCL, nil
	case device.IntelGPU:
		return OneCCL, nil
	default:
		return "", fmt.Errorf("xccl: no CCL for device kind %v", dev)
	}
}

// newBackendComms instantiates the backend's communicators.
func newBackendComms(kind BackendKind, fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	switch kind {
	case NCCL:
		return nccl.New(fab, devs)
	case RCCL:
		return rccl.New(fab, devs)
	case HCCL:
		return hccl.New(fab, devs)
	case MSCCL:
		return msccl.New(fab, devs)
	case OneCCL:
		return oneccl.New(fab, devs)
	case BackendKind(legacy):
		return nccl.NewVersion(fab, devs, nccl.LegacyVersion)
	default:
		return nil, fmt.Errorf("xccl: unknown backend %q", kind)
	}
}

// ResolveBackend resolves Auto against a device kind (exported for
// harnesses that drive raw CCL communicators, e.g. the OMB pure-CCL
// benchmarks).
func ResolveBackend(kind BackendKind, dev device.Kind) (BackendKind, error) {
	return backendFor(kind, dev)
}

// NewBackendComms instantiates raw communicators for a backend kind
// (ncclCommInitAll and friends), for pure-CCL benchmarking.
func NewBackendComms(kind BackendKind, fab *fabric.Fabric, devs []*device.Device) ([]*ccl.Comm, error) {
	return newBackendComms(kind, fab, devs)
}

// LegacyNCCL names the NCCL 2.12 backend used as the MSCCL comparison
// baseline in Fig 5d.
const LegacyNCCL = BackendKind(legacy)

// Stats counts dispatch decisions, for tests and reporting.
type Stats struct {
	// CCLOps and MPIOps count operations executed on each path.
	CCLOps, MPIOps int
	// Retries counts CCL-path reissues of transient failures.
	Retries int
	// BreakerSkips counts CCL dispatches suppressed by an open circuit
	// breaker (the operations ride the MPI path without trying the CCL).
	BreakerSkips int
	// RankFailures counts fail-stopped ranks: each crash increments it
	// exactly once, on the dead rank's own fast-failing call (survivors'
	// watchdog verdicts detect the same crash but do not re-count it).
	RankFailures int
	// Suspicions counts confirmed heartbeat suspicions: peers whose beats
	// stopped and whom the fail-stop oracle confirmed dead. Retracted
	// (false-positive) suspicions are not counted here; see the
	// xccl_suspicions_total metric's outcome label.
	Suspicions int
	// Shrinks counts completed ULFM-style communicator shrinks.
	Shrinks int
	// Grows counts completed spare-rank communicator grows.
	Grows int
	// Partitions counts handled partition episodes: quorum shrinks that
	// excluded at least one alive-but-unreachable rank.
	Partitions int
	// FencedRanks counts ranks that fenced themselves on the minority
	// side of a partition (once per rank per fencing).
	FencedRanks int
	// Epoch is the current membership epoch: completed membership changes
	// (shrinks and grows) since the job started.
	Epoch int
	// Fallbacks counts MPI fallbacks by cause.
	Fallbacks struct {
		Datatype, Op, Device, HostBuffer, Error int
	}
}

// Options configures a Runtime.
type Options struct {
	// Backend picks the CCL; Auto selects by accelerator vendor.
	Backend BackendKind
	// Mode is the dispatch policy; Hybrid is the paper's proposed design.
	Mode Mode
	// Table overrides the built-in tuning table (Hybrid mode only).
	Table *TuningTable
	// Trace, when non-nil, records every collective call (op, path,
	// bytes, virtual duration).
	Trace *trace.Recorder
	// Metrics, when non-nil, aggregates runtime counters and latency
	// histograms: per-op path selection, fallback activations, tuning-table
	// hits/misses, plus the MPI- and CCL-layer instrumentation of the
	// communicators this runtime creates. Do not also Mirror the same
	// registry into Trace, or operations count twice.
	Metrics *metrics.Registry
	// Resilience tunes the retry/circuit-breaker/degradation policy; nil
	// uses DefaultResilience().
	Resilience *Resilience
	// Compile turns on the collective compiler for the synthesized
	// collectives (alltoall(v), gather, scatter): when the tuning table
	// names no plan for a CCL band, the cost-model search picks one
	// instead of the group send-recv loop. Off by default — dispatch is
	// then byte-identical to the pre-compiler layer.
	Compile bool
}

// Runtime is the per-job xCCL state: backend choice, communicator cache,
// and per-rank streams. One Runtime serves every rank of the job (ranks
// share it safely because the simulation is cooperatively scheduled).
type Runtime struct {
	job   *mpi.Job
	opts  Options
	kind  BackendKind
	table *TuningTable
	stats Stats

	streams map[int]*device.Stream // world rank -> stream
	cache   map[string][]*ccl.Comm // comm cache key -> per-local-rank CCL comms
	pending map[string]*commInit   // in-flight collective comm creation

	policy   *Resilience              // resolved resilience policy (never nil)
	breakers map[breakerKey]*breaker  // per-(backend, op) circuit breakers
	waves    map[waveKey]*waveVerdict // in-flight wave-consistent verdicts
	waveIdx  map[rankKey]int          // per-rank collective call indices

	revoked  map[int]bool          // revoked communicator context ids (ULFM)
	shrinks  map[int]*shrinkState  // in-flight Shrink rendezvous by context id
	grows    map[int]*growState    // in-flight Grow rendezvous by context id
	fenced   map[int]time.Duration // fenced world ranks -> fence time (partition minority)
	staleCtx map[int]bool          // context ids superseded by a Grow (stale epoch)

	health    *healthMonitor     // heartbeat failure detector (nil when off)
	worldMPI  map[int]*mpi.Comm  // world rank -> its world communicator handle
	sparePool map[int]*spareSlot // parked spare ranks by world rank
}

// watchdogTimeout resolves the armed collective-watchdog deadline
// (0 = disarmed, also when the whole resilience policy is off).
func (rt *Runtime) watchdogTimeout() time.Duration {
	if rt.policy.Disabled {
		return 0
	}
	return rt.policy.WatchdogTimeout
}

// commInit is one in-flight CCL communicator creation: ranks rendezvous
// here (like the MPI-bootstrapped ncclCommInitRank exchange), the last
// distinct rank performs the creation, and everyone observes the same
// comms or the same error. A failed init is not cached, so a later
// collective wave retries it.
type commInit struct {
	seen  map[int]bool // distinct ranks arrived at the rendezvous
	ready *sim.Event
	comms []*ccl.Comm
	err   error
}

// NewRuntime builds the xCCL layer for a job. With Backend Auto the CCL is
// chosen from the job's first device; with Mode Hybrid and no explicit
// Table the built-in table for (system, backend) is used.
func NewRuntime(job *mpi.Job, opts Options) (*Runtime, error) {
	rt := &Runtime{
		job:       job,
		opts:      opts,
		streams:   make(map[int]*device.Stream),
		cache:     make(map[string][]*ccl.Comm),
		pending:   make(map[string]*commInit),
		breakers:  make(map[breakerKey]*breaker),
		waves:     make(map[waveKey]*waveVerdict),
		waveIdx:   make(map[rankKey]int),
		revoked:   make(map[int]bool),
		shrinks:   make(map[int]*shrinkState),
		grows:     make(map[int]*growState),
		fenced:    make(map[int]time.Duration),
		staleCtx:  make(map[int]bool),
		worldMPI:  make(map[int]*mpi.Comm),
		sparePool: make(map[int]*spareSlot),
	}
	rt.policy = opts.Resilience
	if rt.policy == nil {
		rt.policy = DefaultResilience()
	}
	if !rt.policy.Disabled {
		if rt.policy.Integrity {
			job.Fabric().SetIntegrity(fabric.Integrity{Enabled: true, MaxRetries: rt.policy.MaxRetries})
		}
		if rt.policy.HeartbeatInterval > 0 {
			phi := rt.policy.HeartbeatPhi
			if phi <= 0 {
				phi = 8
			}
			rt.health = newHealthMonitor(rt, rt.policy.HeartbeatInterval, phi)
		}
	}
	if opts.Mode != PureMPI {
		kind, err := backendFor(opts.Backend, job.Fabric().System().Device(0).Kind)
		if err != nil {
			return nil, err
		}
		rt.kind = kind
	}
	rt.table = opts.Table
	if rt.table == nil {
		sys := job.Fabric().System()
		rt.table = DefaultTableFor(sys.Name, rt.kind, sys.NumNodes() > 1)
	}
	// One registry observes the whole stack: the MPI runtime's protocol
	// counters and the fabric's degraded-transfer counter ride the same
	// sink as the xCCL dispatch metrics.
	if opts.Metrics != nil {
		job.SetMetrics(opts.Metrics)
		job.Fabric().SetMetrics(opts.Metrics)
	}
	return rt, nil
}

// Resilience returns the active (resolved) resilience policy.
func (rt *Runtime) Resilience() *Resilience { return rt.policy }

// Metrics returns the runtime's registry (nil when none was wired).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.opts.Metrics }

// countFallback bumps the per-cause MPI-fallback counter.
func (rt *Runtime) countFallback(op OpKind, cause string) {
	rt.opts.Metrics.Counter("xccl_fallbacks_total",
		"MPI-path fallbacks by cause (datatype, op, device, host_buffer, ccl_error).",
		metrics.Labels{"op": string(op), "cause": cause, "backend": string(rt.kind)}).Inc()
}

// countTuning bumps the tuning-table lookup counter: decision is the path
// the table chose, hit reports whether a tuned rule decided it (vs the
// CCL default for ops without a rule).
func (rt *Runtime) countTuning(op OpKind, decision Path, hit bool) {
	table := "default"
	if hit {
		table = "hit"
	}
	rt.opts.Metrics.Counter("xccl_tuning_lookups_total",
		"Hybrid-mode tuning-table lookups by decided path and rule hit/miss.",
		metrics.Labels{"op": string(op), "decision": decision.String(), "table": table}).Inc()
}

// countAlgoChoice bumps the algorithm-selection counter when a tuned band
// forces a CCL schedule family (v2 tables; auto bands are not counted).
func (rt *Runtime) countAlgoChoice(op OpKind, algo Algo) {
	rt.opts.Metrics.Counter("xccl_algo_selections_total",
		"CCL algorithm families forced by tuned table bands.",
		metrics.Labels{"op": string(op), "algo": string(algo), "backend": string(rt.kind)}).Inc()
}

// Backend reports the resolved CCL backend.
func (rt *Runtime) Backend() BackendKind { return rt.kind }

// Job returns the MPI job the runtime layers over.
func (rt *Runtime) Job() *mpi.Job { return rt.job }

// Mode reports the dispatch policy.
func (rt *Runtime) Mode() Mode { return rt.opts.Mode }

// Stats returns dispatch counters.
func (rt *Runtime) Stats() Stats { return rt.stats }

// Table returns the active tuning table.
func (rt *Runtime) Table() *TuningTable { return rt.table }

// stream returns (creating lazily) the xCCL-internal stream for a rank's
// device — the stream handling the layer manages for the user (§1.2
// advantage 2).
func (rt *Runtime) stream(worldRank int, dev *device.Device) *device.Stream {
	s, ok := rt.streams[worldRank]
	if !ok {
		s = dev.NewStream()
		rt.streams[worldRank] = s
	}
	return s
}

// Wrap returns the rank's xCCL view of an MPI communicator. Call it from
// the rank's process.
func (rt *Runtime) Wrap(c *mpi.Comm) *Comm {
	return &Comm{rt: rt, mpi: c}
}

// Run launches fn on every rank of the job with a wrapped world
// communicator and drives the simulation to completion. It also hosts the
// runtime's ambient health machinery: world communicator handles are
// registered for the spare-rank Grow path, heartbeat daemons (when the
// policy arms them) start per rank, and both wind down when every
// non-spare rank has returned — parked spares are released so the job can
// drain.
func (rt *Runtime) Run(fn func(x *Comm)) error {
	done := 0
	return rt.job.Run(func(c *mpi.Comm) {
		rt.worldMPI[c.Rank()] = c
		if rt.health != nil {
			rt.health.start(c)
		}
		fn(rt.Wrap(c))
		done++
		if done+len(rt.sparePool) == rt.job.Size() {
			// Every rank still computing is a parked spare: release them
			// (they return without adoption) and stop the heartbeats so
			// the kernel can drain. Released spares re-enter this check
			// with an empty pool, which re-fires the idempotent stop.
			rt.releaseSpares()
			if rt.health != nil {
				rt.health.stop()
			}
		}
	})
}

// Suspected returns a copy of the heartbeat detector's confirmed
// suspicions: world rank -> virtual time of suspicion. Nil when the
// detector is off or has suspected nobody.
func (rt *Runtime) Suspected() map[int]time.Duration {
	if rt.health == nil || len(rt.health.suspected) == 0 {
		return nil
	}
	out := make(map[int]time.Duration, len(rt.health.suspected))
	for r, t := range rt.health.suspected {
		out[r] = t
	}
	return out
}

// mapDatatype translates an MPI datatype to the CCL's, reporting false for
// types no CCL implements (the DoubleComplex fallback of §3.2).
func mapDatatype(dt mpi.Datatype) (ccl.Datatype, bool) {
	switch dt {
	case mpi.Byte:
		return ccl.Int8, true
	case mpi.Int32:
		return ccl.Int32, true
	case mpi.Int64:
		return ccl.Int64, true
	case mpi.Float16:
		return ccl.Float16, true
	case mpi.Float32:
		return ccl.Float32, true
	case mpi.Float64:
		return ccl.Float64, true
	default:
		return 0, false
	}
}

// mapOp translates an MPI reduction to the CCL's.
func mapOp(op mpi.Op) (ccl.RedOp, bool) {
	switch op {
	case mpi.OpSum:
		return ccl.Sum, true
	case mpi.OpProd:
		return ccl.Prod, true
	case mpi.OpMax:
		return ccl.Max, true
	case mpi.OpMin:
		return ccl.Min, true
	default:
		return 0, false
	}
}
