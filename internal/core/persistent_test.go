package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mpixccl/internal/mpi"
)

// Persistent-op equivalence: a handle's Do() must be bytewise identical
// to the one-shot Allreduce for the same payload, across datatypes,
// reduction ops, dispatch modes, schedule families (ranks spanning one
// node exercise tree/ring, multiple nodes the hierarchical plan), and
// partition counts. Values are small integers, exactly representable in
// every datatype, so any reduction order yields identical bits.

// runPersistent executes waves allreduces through one persistent handle
// (refilling the send buffer per wave) and returns rank 0's result bytes
// per wave.
func runPersistent(t *testing.T, mode Mode, nranks, count, parts, waves int,
	dt mpi.Datatype, op mpi.Op, fill func(wave, rank, i int) float64) [][]byte {
	t.Helper()
	rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: mode})
	out := make([][]byte, waves)
	for w := range out {
		out[w] = make([]byte, count*dt.Size())
	}
	err := rt.Run(func(x *Comm) {
		esz := int64(dt.Size())
		send := x.Device().MustMalloc(int64(count) * esz)
		recv := x.Device().MustMalloc(int64(count) * esz)
		po, err := x.AllReduceInitPartitioned(send, recv, count, dt, op, parts)
		if err != nil {
			t.Errorf("AllReduceInit: %v", err)
			return
		}
		defer po.Free()
		for w := 0; w < waves; w++ {
			for i := 0; i < count; i++ {
				v := fill(w, x.Rank(), i)
				switch dt {
				case mpi.Float32:
					send.SetFloat32(i, float32(v))
				case mpi.Float64:
					send.SetFloat64(i, v)
				case mpi.Int32:
					send.SetInt32(i, int32(v))
				}
			}
			if err := po.Do(); err != nil {
				t.Errorf("wave %d: %v", w, err)
				return
			}
			if x.Rank() == 0 {
				copy(out[w], recv.Bytes())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runOneShotWaves is the one-shot reference for runPersistent.
func runOneShotWaves(t *testing.T, mode Mode, nranks, count, waves int,
	dt mpi.Datatype, op mpi.Op, fill func(wave, rank, i int) float64) [][]byte {
	t.Helper()
	rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: mode})
	out := make([][]byte, waves)
	for w := range out {
		out[w] = make([]byte, count*dt.Size())
	}
	err := rt.Run(func(x *Comm) {
		esz := int64(dt.Size())
		send := x.Device().MustMalloc(int64(count) * esz)
		recv := x.Device().MustMalloc(int64(count) * esz)
		for w := 0; w < waves; w++ {
			for i := 0; i < count; i++ {
				v := fill(w, x.Rank(), i)
				switch dt {
				case mpi.Float32:
					send.SetFloat32(i, float32(v))
				case mpi.Float64:
					send.SetFloat64(i, v)
				case mpi.Int32:
					send.SetInt32(i, int32(v))
				}
			}
			x.Allreduce(send, recv, count, dt, op)
			if x.Rank() == 0 {
				copy(out[w], recv.Bytes())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPersistentMatchesOneShotProperty(t *testing.T) {
	f := func(seed int64, nRaw, countRaw, dtRaw, opRaw, partsRaw, modeRaw uint8) bool {
		nranks := 2 + int(nRaw%11)   // 2..12: single- and multi-node plans
		count := 1 + int(countRaw)   // 1..256
		parts := 1 + int(partsRaw%4) // 1..4
		const waves = 3              // first wave warms caches; later reuse them
		dts := []mpi.Datatype{mpi.Float32, mpi.Float64, mpi.Int32}
		dt := dts[int(dtRaw)%len(dts)]
		ops := []mpi.Op{mpi.OpSum, mpi.OpMax, mpi.OpMin}
		op := ops[int(opRaw)%len(ops)]
		modes := []Mode{PureCCL, Hybrid, PureMPI}
		mode := modes[int(modeRaw)%len(modes)]
		rng := rand.New(rand.NewSource(seed))
		vals := make([][][]float64, waves)
		for w := range vals {
			vals[w] = make([][]float64, nranks)
			for r := range vals[w] {
				vals[w][r] = make([]float64, count)
				for i := range vals[w][r] {
					vals[w][r][i] = float64(rng.Intn(64))
				}
			}
		}
		fill := func(w, r, i int) float64 { return vals[w][r][i] }
		got := runPersistent(t, mode, nranks, count, parts, waves, dt, op, fill)
		want := runOneShotWaves(t, mode, nranks, count, waves, dt, op, fill)
		for w := range want {
			if len(got[w]) != len(want[w]) {
				return false
			}
			for i := range want[w] {
				if got[w][i] != want[w][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPersistentForcedAlgorithms pins the equivalence per schedule family:
// a tuned table band forces each CCL algorithm and the persistent result
// must still match the one-shot run under the same table.
func TestPersistentForcedAlgorithms(t *testing.T) {
	const nranks, count, waves = 16, 2048, 3
	for _, algo := range []Algo{AlgoTree, AlgoFlatRing, AlgoHierarchical} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			table := &TuningTable{System: "test", Backend: string(NCCL), Version: TableVersion}
			table.Set(OpAllreduce, []Threshold{{Path: PathCCL, Algo: algo}})
			mk := func(persistent bool) [][]byte {
				rt := newRuntime(t, "thetagpu", nranks,
					Options{Backend: Auto, Mode: Hybrid, Table: table})
				out := make([][]byte, waves)
				for w := range out {
					out[w] = make([]byte, count*4)
				}
				err := rt.Run(func(x *Comm) {
					send := x.Device().MustMalloc(count * 4)
					recv := x.Device().MustMalloc(count * 4)
					var po *PersistentOp
					if persistent {
						var err error
						po, err = x.AllReduceInit(send, recv, count, mpi.Float32, mpi.OpSum)
						if err != nil {
							t.Errorf("init: %v", err)
							return
						}
						defer po.Free()
					}
					for w := 0; w < waves; w++ {
						for i := 0; i < count; i++ {
							send.SetFloat32(i, float32((x.Rank()+i+w)%32))
						}
						if persistent {
							if err := po.Do(); err != nil {
								t.Errorf("wave %d: %v", w, err)
								return
							}
						} else {
							x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
						}
						if x.Rank() == 0 {
							copy(out[w], recv.Bytes())
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			got, want := mk(true), mk(false)
			for w := range want {
				for i := range want[w] {
					if got[w][i] != want[w][i] {
						t.Fatalf("algo %s wave %d byte %d: persistent %d != one-shot %d",
							algo, w, i, got[w][i], want[w][i])
					}
				}
			}
		})
	}
}

// TestPersistentPreadyOrder runs a partitioned handle with partitions
// marked ready in a shuffled order per wave: results must not depend on
// readiness order.
func TestPersistentPreadyOrder(t *testing.T) {
	const nranks, count, parts, waves = 16, 4096, 8, 4
	rng := rand.New(rand.NewSource(7))
	orders := make([][]int, waves)
	for w := range orders {
		orders[w] = rng.Perm(parts)
	}
	run := func(shuffled bool) [][]byte {
		rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: PureCCL})
		out := make([][]byte, waves)
		for w := range out {
			out[w] = make([]byte, count*4)
		}
		err := rt.Run(func(x *Comm) {
			send := x.Device().MustMalloc(count * 4)
			recv := x.Device().MustMalloc(count * 4)
			po, err := x.AllReduceInitPartitioned(send, recv, count, mpi.Float32, mpi.OpSum, parts)
			if err != nil {
				t.Errorf("init: %v", err)
				return
			}
			defer po.Free()
			for w := 0; w < waves; w++ {
				for i := 0; i < count; i++ {
					send.SetFloat32(i, float32((x.Rank()*31+i+w)%64))
				}
				if err := po.Start(); err != nil {
					t.Errorf("start: %v", err)
					return
				}
				if shuffled {
					for _, k := range orders[w] {
						po.Pready(k)
					}
				} else {
					po.PreadyAll()
				}
				if err := po.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				if x.Rank() == 0 {
					copy(out[w], recv.Bytes())
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := run(true), run(false)
	for w := range want {
		for i := range want[w] {
			if got[w][i] != want[w][i] {
				t.Fatalf("wave %d byte %d: shuffled Pready %d != in-order %d",
					w, i, got[w][i], want[w][i])
			}
		}
	}
}

// TestPersistentStats pins the dispatch accounting: CCL-path waves count
// as CCLOps, MPI-path (PureMPI) waves as MPIOps, one per wave per rank.
func TestPersistentStats(t *testing.T) {
	const nranks, count, waves = 4, 256, 5
	for _, tc := range []struct {
		mode Mode
		ccl  bool
	}{{PureCCL, true}, {PureMPI, false}} {
		rt := newRuntime(t, "thetagpu", nranks, Options{Backend: Auto, Mode: tc.mode})
		err := rt.Run(func(x *Comm) {
			send := x.Device().MustMalloc(count * 4)
			recv := x.Device().MustMalloc(count * 4)
			po, err := x.AllReduceInit(send, recv, count, mpi.Float32, mpi.OpSum)
			if err != nil {
				t.Errorf("init: %v", err)
				return
			}
			defer po.Free()
			if tc.ccl != po.UsesCCL() {
				t.Errorf("mode %v: UsesCCL = %v, want %v", tc.mode, po.UsesCCL(), tc.ccl)
			}
			for w := 0; w < waves; w++ {
				if err := po.Do(); err != nil {
					t.Errorf("wave %d: %v", w, err)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := rt.Stats()
		want := nranks * waves
		if tc.ccl && st.CCLOps != want {
			t.Errorf("mode %v: CCLOps = %d, want %d", tc.mode, st.CCLOps, want)
		}
		if !tc.ccl && st.MPIOps != want {
			t.Errorf("mode %v: MPIOps = %d, want %d", tc.mode, st.MPIOps, want)
		}
	}
}

// The handle lifecycle must reject use-after-Free and double-Free with
// distinct sentinel errors, on both the CCL-path and MPI-path variants,
// and Pready on a freed handle must be a silent no-op (its wave already
// cannot run).
func TestPersistentFreeStateMachine(t *testing.T) {
	for _, mode := range []Mode{PureCCL, PureMPI} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: mode})
			if err := rt.Run(func(x *Comm) {
				buf := x.Device().MustMalloc(1024)
				defer buf.Free()
				po, err := x.AllReduceInitPartitioned(buf, buf, 256, mpi.Float32, mpi.OpSum, 2)
				if err != nil {
					t.Errorf("init: %v", err)
					return
				}
				if po.UsesCCL() != (mode == PureCCL) {
					t.Errorf("UsesCCL = %v in %v mode", po.UsesCCL(), mode)
				}
				if err := po.Do(); err != nil {
					t.Errorf("wave before Free: %v", err)
				}
				if err := po.Free(); err != nil {
					t.Errorf("first Free = %v, want nil", err)
				}
				if err := po.Free(); !errors.Is(err, ErrOpDoubleFree) {
					t.Errorf("second Free = %v, want ErrOpDoubleFree", err)
				}
				if err := po.Start(); !errors.Is(err, ErrOpFreed) {
					t.Errorf("Start after Free = %v, want ErrOpFreed", err)
				}
				po.Pready(0) // must not panic or reach the freed schedule
				po.PreadyAll()
				if err := po.Wait(); !errors.Is(err, ErrOpFreed) {
					t.Errorf("Wait after Free = %v, want ErrOpFreed", err)
				}
				if x.Failure() != nil {
					t.Errorf("freed-handle misuse poisoned the communicator: %v", x.Failure())
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Persistent bcast and allgather: a handle's waves must be bytewise
// identical to the one-shot calls, across dispatch modes and schedule
// families (16 ranks on 2 nodes exercise the hierarchical plans), and
// MPI-path handles (PureMPI) must work via the blocking fallback.
func TestPersistentBcastMatchesOneShot(t *testing.T) {
	const nranks, count, waves, root = 16, 2048, 3, 3
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"pure-ccl", Options{Backend: Auto, Mode: PureCCL}},
		{"pure-mpi", Options{Backend: Auto, Mode: PureMPI}},
		{"hybrid-hier", func() Options {
			table := &TuningTable{System: "test", Backend: string(NCCL), Version: TableVersion}
			table.Set(OpBcast, []Threshold{{Path: PathCCL, Algo: AlgoHierarchical}})
			return Options{Backend: Auto, Mode: Hybrid, Table: table}
		}()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mk := func(persistent bool) [][]byte {
				rt := newRuntime(t, "thetagpu", nranks, tc.opts)
				out := make([][]byte, waves)
				for w := range out {
					out[w] = make([]byte, count*4)
				}
				err := rt.Run(func(x *Comm) {
					buf := x.Device().MustMalloc(count * 4)
					var po *PersistentOp
					if persistent {
						var err error
						po, err = x.BcastInit(buf, count, mpi.Float32, root)
						if err != nil {
							t.Errorf("init: %v", err)
							return
						}
						defer po.Free()
					}
					for w := 0; w < waves; w++ {
						for i := 0; i < count; i++ {
							if x.Rank() == root {
								buf.SetFloat32(i, float32((i*7+w)%97))
							} else {
								buf.SetFloat32(i, -1)
							}
						}
						if persistent {
							if err := po.Do(); err != nil {
								t.Errorf("wave %d: %v", w, err)
								return
							}
						} else {
							x.Bcast(buf, count, mpi.Float32, root)
						}
						if x.Rank() == nranks-1 {
							copy(out[w], buf.Bytes())
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			got, want := mk(true), mk(false)
			for w := range want {
				for i := range want[w] {
					if got[w][i] != want[w][i] {
						t.Fatalf("wave %d byte %d: persistent %d != one-shot %d",
							w, i, got[w][i], want[w][i])
					}
				}
			}
		})
	}
}

func TestPersistentAllgatherMatchesOneShot(t *testing.T) {
	const nranks, count, waves = 16, 1024, 3
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"pure-ccl", Options{Backend: Auto, Mode: PureCCL}},
		{"pure-mpi", Options{Backend: Auto, Mode: PureMPI}},
		{"hybrid-hier", func() Options {
			table := &TuningTable{System: "test", Backend: string(NCCL), Version: TableVersion}
			table.Set(OpAllgather, []Threshold{{Path: PathCCL, Algo: AlgoHierarchical}})
			return Options{Backend: Auto, Mode: Hybrid, Table: table}
		}()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mk := func(persistent bool) [][]byte {
				rt := newRuntime(t, "thetagpu", nranks, tc.opts)
				out := make([][]byte, waves)
				for w := range out {
					out[w] = make([]byte, nranks*count*4)
				}
				err := rt.Run(func(x *Comm) {
					send := x.Device().MustMalloc(count * 4)
					recv := x.Device().MustMalloc(nranks * count * 4)
					var po *PersistentOp
					if persistent {
						var err error
						po, err = x.AllgatherInit(send, count, mpi.Float32, recv)
						if err != nil {
							t.Errorf("init: %v", err)
							return
						}
						defer po.Free()
					}
					for w := 0; w < waves; w++ {
						for i := 0; i < count; i++ {
							send.SetFloat32(i, float32((x.Rank()*31+i+w)%113))
						}
						if persistent {
							if err := po.Do(); err != nil {
								t.Errorf("wave %d: %v", w, err)
								return
							}
						} else {
							x.Allgather(send, count, mpi.Float32, recv)
						}
						if x.Rank() == 0 {
							copy(out[w], recv.Bytes())
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			got, want := mk(true), mk(false)
			for w := range want {
				for i := range want[w] {
					if got[w][i] != want[w][i] {
						t.Fatalf("wave %d byte %d: persistent %d != one-shot %d",
							w, i, got[w][i], want[w][i])
					}
				}
			}
		})
	}
}

// Mixing persistent-op kinds at the same Init position across ranks must
// be rejected at the CCL layer, not deadlock.
func TestPersistentKindMismatchRejected(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: PureCCL})
	errs := make([]error, 2)
	err := rt.Run(func(x *Comm) {
		buf := x.Device().MustMalloc(1024 * 4)
		recv := x.Device().MustMalloc(2 * 1024 * 4)
		if x.Rank() == 0 {
			_, errs[0] = x.BcastInit(buf, 1024, mpi.Float32, 0)
		} else {
			_, errs[1] = x.AllgatherInit(buf, 1024, mpi.Float32, recv)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whichever rank rendezvoused second saw the mismatch; the first
	// succeeded (its handle is simply never used).
	if errs[0] == nil && errs[1] == nil {
		t.Error("mismatched persistent kinds not rejected on either rank")
	}
}
