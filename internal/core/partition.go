package core

import (
	"errors"
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/trace"
)

// Epoch-based quorum membership (failure model v3). Crashes (v1, PR 4) and
// heartbeat suspicion with spare regrowth (v2, PR 7) both assume every
// survivor can reach every other; a network partition breaks that and would
// either deadlock both sides or let each half Shrink into its own divergent
// world (split brain). This layer makes membership changes safe under
// partitions:
//
//   - The communicator carries a membership epoch, bumped by every Shrink
//     and Grow. Handles whose context a Grow superseded reject further
//     collectives with ErrStaleEpoch, so operations from the two sides of
//     a healed cut can never interleave on one member set.
//   - Shrink takes a quorum vote: each caller computes its reachable
//     survivor view (alive AND not severed from it), and only a strict
//     majority of the pre-failure size may shrink. The minority — and both
//     halves of an exact 50/50 split, the price of strict quorum — fences
//     itself instead: Shrink returns ErrNoQuorum, the rank is marked
//     fenced, and every later collective on any of its handles fails fast
//     with ErrFenced in bounded virtual time.
//   - After the cut heals, fenced ranks Rejoin: wait out the partition (a
//     single deterministic sleep on the oracle's heal time), unfence, and
//     park in the spare pool, re-entering through the same Grow rendezvous
//     a cold spare uses — checkpoint resync included via the restore
//     callback.
//
// Detection is oracle-driven: the fault plan's partition rules are pure
// time-window functions (fabric.Partitioner), so every rank and every
// engine shard derives the same verdict at the same virtual time — the
// property the cross-shard determinism tests pin. The heartbeat detector
// observes cuts too ("partitioned" suspicion outcome) but never converts
// them into death verdicts: a severed peer is alive.

// ErrNoQuorum reports a Shrink attempted from the minority side of a
// network partition: fewer than a strict majority of the communicator's
// ranks are reachable, so shrinking would fork the membership. The rank is
// now fenced; after the cut heals it may Rejoin.
var ErrNoQuorum = errors.New("xccl: no quorum: this rank is on the minority side of a network partition")

// ErrFenced reports a collective attempted by a fenced rank (the minority
// side of a partition after a failed quorum vote). The operation did
// nothing; the rank must Rejoin after the partition heals.
var ErrFenced = errors.New("xccl: rank is fenced (minority side of a network partition)")

// ErrStaleEpoch reports a collective attempted on a communicator whose
// membership epoch has been superseded by a Grow: the handle describes a
// member set that no longer exists. Use the communicator returned by
// Grow/Rejoin instead.
var ErrStaleEpoch = errors.New("xccl: stale membership epoch (communicator superseded by a Grow)")

// partitioner returns the fault plan's partition oracle, or nil when the
// attached agent does not model network partitions.
func (rt *Runtime) partitioner() fabric.Partitioner {
	return rt.job.Fabric().Partitioner()
}

// HasPartitions reports whether the job's fault plan carries any armed
// partition rule. Partition-aware training loops (dl.TrainElastic) use it
// to decide whether to poll for regrowth after a quorum shrink.
func (rt *Runtime) HasPartitions() bool {
	pt := rt.partitioner()
	return pt != nil && pt.HasPartitions()
}

// Epoch reports the current membership epoch: the number of completed
// membership changes (Shrinks and Grows) since the job started.
func (rt *Runtime) Epoch() int { return rt.stats.Epoch }

// Fenced returns a copy of the fenced-rank set: world rank -> virtual time
// of fencing. Nil when no rank is fenced.
func (rt *Runtime) Fenced() map[int]time.Duration {
	if len(rt.fenced) == 0 {
		return nil
	}
	out := make(map[int]time.Duration, len(rt.fenced))
	for r, t := range rt.fenced {
		out[r] = t
	}
	return out
}

// bumpEpoch advances the membership epoch and publishes the gauge. Called
// once per completed membership change, by the rank closing the agreement.
func (rt *Runtime) bumpEpoch() {
	rt.stats.Epoch++
	rt.opts.Metrics.Gauge("xccl_epoch",
		"Current membership epoch: completed membership changes (shrinks and grows).",
		metrics.Labels{"backend": string(rt.kind)}).Set(float64(rt.stats.Epoch))
}

// fence marks this rank fenced (once), counting it and emitting the trace
// event. A fenced rank's collectives fail fast with ErrFenced until Rejoin.
func (rt *Runtime) fence(x *Comm, now time.Duration) {
	wr := x.mpi.WorldRank()
	if _, ok := rt.fenced[wr]; ok {
		return
	}
	rt.fenced[wr] = now
	rt.stats.FencedRanks++
	rt.opts.Metrics.Counter("xccl_fenced_ranks_total",
		"Ranks that fenced themselves on the minority side of a network partition.",
		metrics.Labels{"backend": string(rt.kind)}).Inc()
	rec := trace.Record{
		Op: "partition", Backend: string(rt.kind), Rank: x.Rank(),
		Event: "rank_fenced", Start: now, Bytes: int64(wr),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// unfence clears a rank's fence (it is rejoining through the spare pool).
func (rt *Runtime) unfence(wr int) { delete(rt.fenced, wr) }

// severedPair reports whether the oracle severs local ranks a and b of c at
// now — by their devices' nodes (node-scoped cuts, the ones the fabric also
// enforces) or by their world ranks (rank-scoped membership cuts).
func (rt *Runtime) severedPair(c *mpi.Comm, a, b int, now time.Duration) bool {
	pt := rt.partitioner()
	if pt == nil {
		return false
	}
	da, db := c.RankDevice(a), c.RankDevice(b)
	if da != nil && db != nil && pt.Severed(da.Node, db.Node, now) {
		return true
	}
	return pt.RanksSevered(c.WorldRankOf(a), c.WorldRankOf(b), now)
}

// unreachableErr fast-fails a dispatch when a member of this communicator
// is on the far side of an active cut: the collective could only end in a
// watchdog timeout (or a mid-schedule abort), so surface the ErrUnreachable
// verdict now — the partition analogue of the heartbeat fast-fail.
func (x *Comm) unreachableErr(op OpKind) error {
	pt := x.rt.partitioner()
	if pt == nil {
		return nil
	}
	now := x.mpi.Proc().Now()
	if !pt.PartitionedNow(now) {
		return nil
	}
	self := x.Rank()
	for r := 0; r < x.Size(); r++ {
		if r == self {
			continue
		}
		if x.rt.severedPair(x.mpi, self, r, now) {
			wr := x.mpi.WorldRankOf(r)
			return &ccl.Error{Backend: string(x.rt.kind), Result: ccl.ErrUnreachable,
				Op: string(op), Rank: wr,
				Msg: fmt.Sprintf("rank %d unreachable across a network partition", wr)}
		}
	}
	return nil
}

// notePartition records an unreachable-peer verdict on this rank's handle
// (first verdict wins, like noteRankFailure). The severed peer is alive, so
// no failure counter moves here — partition episodes are counted once, by
// the quorum Shrink that excludes the unreachable ranks.
func (x *Comm) notePartition(op OpKind, err error) {
	if x.failure != nil {
		return
	}
	x.failure = err
	rt := x.rt
	rec := trace.Record{
		Op: string(op), Backend: string(rt.kind), Rank: x.Rank(),
		Event: "rank_unreachable", Start: x.mpi.Proc().Now(),
	}
	rt.opts.Trace.Add(rec)
	trace.RecordMetrics(rt.opts.Metrics, rec)
}

// Rejoin re-enters the job after this rank fenced itself: it waits out the
// active partition (one deterministic sleep to the oracle's heal time),
// unfences, and parks in the spare pool, where the majority's next Grow
// adopts it — the same join rendezvous a cold spare uses, so the returned
// communicator's members all hold consistent replica state once restore
// (the checkpoint reload) has run. The bool is false when the partition
// never heals or the job drains first: the caller should return, letting
// the job finish at its shrunken width.
func (x *Comm) Rejoin(restore func()) (*Comm, bool) {
	rt := x.rt
	p := x.mpi.Proc()
	if pt := rt.partitioner(); pt != nil {
		for {
			until, heals := pt.PartitionedUntil(p.Now())
			if !heals {
				return nil, false
			}
			if until <= p.Now() {
				break
			}
			p.Sleep(until - p.Now())
		}
	}
	rt.unfence(x.mpi.WorldRank())
	return x.WaitAsSpare(restore)
}
