package core

import (
	"testing"

	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/trace"
)

func TestMetricsFallbackCounterDoubleComplexOnHCCL(t *testing.T) {
	// HCCL has no complex datatype, so every rank's Allreduce must divert
	// to MPI and count a datatype fallback (§3.4 in the paper; the same
	// case Fig 2's dispatch diagram routes left).
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "voyager", 8, Options{Backend: Auto, Mode: PureCCL, Metrics: reg})
	err := rt.Run(func(x *Comm) {
		send := x.Device().MustMalloc(32)
		recv := x.Device().MustMalloc(32)
		send.SetFloat64(0, 1)
		x.Allreduce(send, recv, 2, mpi.DoubleComplex, mpi.OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := reg.CounterValue("xccl_fallbacks_total",
		metrics.Labels{"op": "allreduce", "cause": "datatype", "backend": "hccl"})
	if !ok || fb != 8 {
		t.Errorf("datatype fallback counter = %v, %v; want 8, true", fb, ok)
	}
	ops, ok := reg.CounterValue(trace.MetricOps, metrics.Labels{
		"op": "allreduce", "path": "mpi", "backend": "hccl", "size_bucket": "0-1KiB"})
	if !ok || ops != 8 {
		t.Errorf("mpi-path op counter = %v, %v; want 8, true", ops, ok)
	}
	if _, ok := reg.CounterValue(trace.MetricOps, metrics.Labels{
		"op": "allreduce", "path": "ccl", "backend": "hccl", "size_bucket": "0-1KiB"}); ok {
		t.Error("complex allreduce must not count a ccl-path op")
	}
}

func TestMetricsHybridDispatchCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 8, Options{Backend: Auto, Mode: Hybrid, Metrics: reg})
	err := rt.Run(func(x *Comm) {
		small := x.Device().MustMalloc(1 << 10)
		large := x.Device().MustMalloc(1 << 20)
		x.Allreduce(small, small, 256, mpi.Float32, mpi.OpSum)   // 1 KB -> MPI
		x.Allreduce(large, large, 1<<18, mpi.Float32, mpi.OpSum) // 1 MB -> CCL
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		path, bucket string
	}{{"mpi", "0-1KiB"}, {"ccl", "256KiB-4MiB"}} {
		v, ok := reg.CounterValue(trace.MetricOps, metrics.Labels{
			"op": "allreduce", "path": want.path, "backend": "nccl", "size_bucket": want.bucket})
		if !ok || v != 8 {
			t.Errorf("path=%s op counter = %v, %v; want 8, true", want.path, v, ok)
		}
	}
	// Both dispatches consult the tuning table; the decisions split by path.
	for _, decision := range []string{"mpi", "ccl"} {
		v, ok := reg.CounterValue("xccl_tuning_lookups_total",
			metrics.Labels{"op": "allreduce", "decision": decision, "table": "hit"})
		if !ok || v != 8 {
			t.Errorf("tuning decision=%s = %v, %v; want 8, true", decision, v, ok)
		}
	}
	// The MPI-path allreduce rides on point-to-point sends, so protocol
	// counters must be live too.
	if c, _ := reg.CounterValue("mpi_sends_total",
		metrics.Labels{"protocol": "eager", "profile": rt.Job().Profile().Name}); c == 0 {
		t.Error("expected eager mpi sends from the small allreduce")
	}
}
