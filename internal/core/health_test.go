package core

import (
	"errors"
	"testing"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
)

// heartbeatPolicy arms both the watchdog and the proactive detector, with
// the dl-layer default ratio (heartbeats 8× faster than the watchdog).
func heartbeatPolicy() *Resilience {
	pol := DefaultResilience()
	pol.WatchdogTimeout = 200 * time.Microsecond
	pol.HeartbeatInterval = pol.WatchdogTimeout / 8
	return pol
}

// A fail-stopped rank's silence must be confirmed by the heartbeat
// detector within half a watchdog timeout of the death, and a collective
// attempted afterwards must fast-fail with the ErrRankDead verdict
// instead of waiting out the watchdog.
func TestHeartbeatDetectsCrashWithinHalfWatchdog(t *testing.T) {
	const crashAt = time.Millisecond
	pol := heartbeatPolicy()
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 4, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: pol,
	})
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddRule(fault.Rule{
		Name: "die", Crash: true, Ranks: []int{2}, From: crashAt,
	}))

	if err := rt.Run(func(x *Comm) {
		p := x.MPI().Proc()
		if x.Rank() == 2 {
			p.Sleep(crashAt) // fail-stop: the heartbeat daemon falls silent
			return
		}
		// Idle past the crash, long enough for several detection intervals.
		p.Sleep(crashAt + pol.WatchdogTimeout)
		at, ok := rt.Suspected()[2]
		if !ok {
			t.Errorf("rank %d: detector has not suspected rank 2 by %v", x.Rank(), p.Now())
			return
		}
		if lat := at - crashAt; lat > pol.WatchdogTimeout/2 {
			t.Errorf("detection latency %v exceeds half the watchdog (%v)", lat, pol.WatchdogTimeout/2)
		}
		// The verdict short-circuits dispatch: no schedule launches, no
		// watchdog wait, same error shape as the reactive path.
		buf := x.Device().MustMalloc(1024)
		defer buf.Free()
		before := p.Now()
		x.Allreduce(buf, buf, 256, mpi.Float32, mpi.OpSum)
		err := x.Failure()
		if !errors.Is(err, ccl.ErrRankDead) {
			t.Errorf("rank %d failure = %v, want ErrRankDead", x.Rank(), err)
		}
		var ce *ccl.Error
		if !errors.As(err, &ce) || ce.Rank != 2 {
			t.Errorf("rank %d verdict names rank %v, want 2", x.Rank(), err)
		}
		if waited := p.Now() - before; waited >= pol.WatchdogTimeout/2 {
			t.Errorf("fast-fail waited %v, should undercut the %v watchdog", waited, pol.WatchdogTimeout)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats().Suspicions; s != 1 {
		t.Errorf("Suspicions = %d, want 1 (first witness only)", s)
	}
	lbl := metrics.Labels{"backend": "nccl", "outcome": "confirmed"}
	if v, ok := reg.CounterValue("xccl_suspicions_total", lbl); !ok || v != 1 {
		t.Errorf("confirmed suspicions counter = %v (exists %v), want 1", v, ok)
	}
	if v, ok := reg.CounterValue("xccl_heartbeats_sent_total", metrics.Labels{"backend": "nccl"}); !ok || v == 0 {
		t.Error("no heartbeat rounds counted")
	}
}

// A brownout window that stretches every heartbeat must produce
// retractions, not kills: the accrual model widens and no rank is ever
// confirmed dead.
func TestHeartbeatRetractsOnBrownout(t *testing.T) {
	pol := DefaultResilience()
	pol.WatchdogTimeout = 2 * time.Millisecond
	pol.HeartbeatInterval = 50 * time.Microsecond
	reg := metrics.NewRegistry()
	rt := newRuntime(t, "thetagpu", 2, Options{
		Backend: Auto, Mode: PureCCL, Metrics: reg, Resilience: pol,
	})
	// 200× α on the intra link turns each ~1.8µs beat send into ~360µs —
	// far past the suspicion threshold — while both ranks stay alive.
	rt.Job().Fabric().SetFaults(fault.NewPlan(1).AddLinkRule(fault.LinkRule{
		Name: "brownout", Link: "intra",
		From: time.Millisecond, Until: 2 * time.Millisecond, AlphaScale: 200,
	}))

	if err := rt.Run(func(x *Comm) {
		p := x.MPI().Proc()
		p.Sleep(3 * time.Millisecond) // idle across the whole brownout
		buf := x.Device().MustMalloc(1024)
		defer buf.Free()
		buf.FillFloat32(float32(x.Rank() + 1))
		x.Allreduce(buf, buf, 256, mpi.Float32, mpi.OpSum)
		if err := x.Failure(); err != nil {
			t.Errorf("rank %d: brownout escalated to failure: %v", x.Rank(), err)
		} else if buf.Float32(0) != 3 {
			t.Errorf("post-brownout sum = %v, want 3", buf.Float32(0))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if m := rt.Suspected(); m != nil {
		t.Errorf("Suspected = %v, want none (both ranks alive)", m)
	}
	if s := rt.Stats().Suspicions; s != 0 {
		t.Errorf("Suspicions = %d, want 0", s)
	}
	v, ok := reg.CounterValue("xccl_suspicions_total",
		metrics.Labels{"backend": "nccl", "outcome": "retracted"})
	if !ok || v == 0 {
		t.Error("brownout produced no retractions; the detector never crossed its threshold")
	}
	if v, ok := reg.CounterValue("xccl_suspicions_total",
		metrics.Labels{"backend": "nccl", "outcome": "confirmed"}); ok && v != 0 {
		t.Errorf("brownout confirmed %v suspicions; live ranks must only retract", v)
	}
}

// With the detector off (the default), Suspected reports nothing and
// collectives rely on the watchdog alone — the feature must be inert.
func TestHeartbeatOffByDefault(t *testing.T) {
	rt := newRuntime(t, "thetagpu", 2, Options{Backend: Auto, Mode: PureCCL})
	if err := rt.Run(func(x *Comm) {
		buf := x.Device().MustMalloc(64)
		defer buf.Free()
		x.Allreduce(buf, buf, 16, mpi.Float32, mpi.OpSum)
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Suspected() != nil {
		t.Error("detector produced suspicions while disabled")
	}
	if rt.Stats().Suspicions != 0 {
		t.Error("Suspicions counted while disabled")
	}
}
