package omb

import (
	"fmt"

	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/sim"
)

// RunMultiBW is osu_mbw_mr: aggregate multi-pair bandwidth and message
// rate. Pairs are split across the first two nodes when cfg.Nodes > 1
// (rank i on node 0 paired with rank i on node 1), otherwise split within
// one node — the saturation test for NIC and switch pools.
func RunMultiBW(cfg Config, pairs int) ([]Result, error) {
	cfg.fillDefaults()
	w, err := buildWorld(&cfg)
	if err != nil {
		return nil, err
	}
	perNode := w.sys.DevicesPerNode()
	if pairs <= 0 {
		pairs = perNode / 2
		if cfg.Nodes > 1 {
			pairs = perNode
		}
	}
	devs := w.sys.Devices()
	type pair struct{ a, b int }
	var plan []pair
	if cfg.Nodes > 1 {
		if pairs > perNode {
			pairs = perNode
		}
		for i := 0; i < pairs; i++ {
			plan = append(plan, pair{i, perNode + i})
		}
	} else {
		if pairs > perNode/2 {
			pairs = perNode / 2
		}
		for i := 0; i < pairs; i++ {
			plan = append(plan, pair{2 * i, 2*i + 1})
		}
	}
	kind, err := core.ResolveBackend(cfg.Backend, devs[0].Kind)
	if err != nil {
		return nil, err
	}
	// Build a communicator over exactly the participating devices, in plan
	// order: even comm-ranks send, odd comm-ranks receive.
	commDevs := devs[:0:0]
	for _, pr := range plan {
		commDevs = append(commDevs, devs[pr.a], devs[pr.b])
	}
	comms, err := core.NewBackendComms(kind, w.fab, commDevs)
	if err != nil {
		return nil, err
	}
	sizes := Sizes(cfg.MinBytes, cfg.MaxBytes)
	results := make([]Result, len(sizes))
	bar := sim.NewBarrier(w.k, len(comms))
	for r := range comms {
		r := r
		cc := comms[r]
		w.k.Spawn(fmt.Sprintf("mbw-%d", r), func(p *sim.Proc) {
			s := cc.Device().NewStream()
			buf := cc.Device().MustMalloc(sizes[len(sizes)-1])
			ack := cc.Device().MustMalloc(4)
			peer := r ^ 1
			sender := r%2 == 0
			for si, bytes := range sizes {
				count := int(bytes / 4)
				if count == 0 {
					count = 1
				}
				msg := buf.Slice(0, int64(count)*4)
				bar.Wait(p)
				start := p.Now()
				check(cc.GroupStart())
				for wi := 0; wi < bwWindow; wi++ {
					if sender {
						check(cc.Send(msg, count, ccl.Float32, peer, s))
					} else {
						check(cc.Recv(msg, count, ccl.Float32, peer, s))
					}
				}
				check(cc.GroupEnd())
				if sender {
					check(cc.Recv(ack, 1, ccl.Float32, peer, s))
				} else {
					check(cc.Send(ack, 1, ccl.Float32, peer, s))
				}
				s.Synchronize(p)
				elapsed := p.Now() - start
				bar.Wait(p)
				if r == 0 {
					payload := float64(bytes) * bwWindow * float64(len(plan))
					results[si].Bytes = bytes
					results[si].Latency = elapsed
					results[si].BandwidthMBs = payload / elapsed.Seconds() / 1e6
				}
			}
		})
	}
	if err := w.k.Run(); err != nil {
		return nil, err
	}
	return results, nil
}
