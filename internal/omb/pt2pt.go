package omb

import (
	"fmt"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// Pt2PtKind names an OMB point-to-point benchmark.
type Pt2PtKind string

// Point-to-point benchmarks.
const (
	// LatencyBench is osu_latency: ping-pong, reported one-way.
	LatencyBench Pt2PtKind = "latency"
	// BandwidthBench is osu_bw: windowed back-to-back sends.
	BandwidthBench Pt2PtKind = "bw"
	// BiBandwidthBench is osu_bibw: simultaneous windows both ways.
	BiBandwidthBench Pt2PtKind = "bibw"
)

// bwWindow is OMB's default window size (reduced from 64 to bound event
// counts; bandwidth is window-size independent once the pipe is full).
const bwWindow = 16

// RunPt2Pt measures a point-to-point benchmark between two ranks over the
// vendor CCL (xcclSend/xcclRecv), the paper's Fig 3 (intra-node) and
// Fig 4 (inter-node) depending on cfg.Nodes: with one node both endpoints
// share it; with two or more, the peer sits on the second node.
func RunPt2Pt(cfg Config, bench Pt2PtKind) ([]Result, error) {
	switch bench {
	case LatencyBench, BandwidthBench, BiBandwidthBench:
	default:
		return nil, fmt.Errorf("omb: unknown pt2pt bench %q", bench)
	}
	cfg.fillDefaults()
	w, err := buildWorld(&cfg)
	if err != nil {
		return nil, err
	}
	a := w.sys.Device(0)
	b := w.sys.Device(1)
	if cfg.Nodes > 1 {
		b = w.sys.Nodes[1].Devices[0]
	}
	kind, err := core.ResolveBackend(cfg.Backend, a.Kind)
	if err != nil {
		return nil, err
	}
	comms, err := core.NewBackendComms(kind, w.fab, []*device.Device{a, b})
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		comms[0].SetMetrics(cfg.Metrics)
	}
	sizes := Sizes(cfg.MinBytes, cfg.MaxBytes)
	results := make([]Result, len(sizes))
	bar := sim.NewBarrier(w.k, 2)

	run := func(rank int, p *sim.Proc) {
		cc := comms[rank]
		s := cc.Device().NewStream()
		buf := cc.Device().MustMalloc(sizes[len(sizes)-1])
		buf2 := cc.Device().MustMalloc(sizes[len(sizes)-1])
		ack := cc.Device().MustMalloc(4)
		for si, bytes := range sizes {
			// Elements are float32 so the same loop drives HCCL, whose
			// datatype matrix is float-only (the paper's OMB Habana port).
			count := int(bytes / 4)
			if count == 0 {
				count = 1
			}
			msgBytes := int64(count) * 4
			msg := buf.Slice(0, msgBytes)
			msg2 := buf2.Slice(0, msgBytes)
			bar.Wait(p)
			start := p.Now()
			iters := cfg.Iterations
			for it := 0; it < iters; it++ {
				switch bench {
				case LatencyBench:
					if rank == 0 {
						check(cc.Send(msg, count, ccl.Float32, 1, s))
						check(cc.Recv(msg, count, ccl.Float32, 1, s))
					} else {
						check(cc.Recv(msg, count, ccl.Float32, 0, s))
						check(cc.Send(msg, count, ccl.Float32, 0, s))
					}
					s.Synchronize(p)
				case BandwidthBench:
					// The window is fused into one group (a single launch),
					// as OMB's CCL bandwidth benchmark does with grouped
					// isend/irecv.
					check(cc.GroupStart())
					if rank == 0 {
						for wi := 0; wi < bwWindow; wi++ {
							check(cc.Send(msg, count, ccl.Float32, 1, s))
						}
					} else {
						for wi := 0; wi < bwWindow; wi++ {
							check(cc.Recv(msg, count, ccl.Float32, 0, s))
						}
					}
					check(cc.GroupEnd())
					if rank == 0 {
						check(cc.Recv(ack, 1, ccl.Float32, 1, s))
					} else {
						check(cc.Send(ack, 1, ccl.Float32, 0, s))
					}
					s.Synchronize(p)
				case BiBandwidthBench:
					peer := 1 - rank
					check(cc.GroupStart())
					for wi := 0; wi < bwWindow; wi++ {
						check(cc.Send(msg, count, ccl.Float32, peer, s))
						check(cc.Recv(msg2, count, ccl.Float32, peer, s))
					}
					check(cc.GroupEnd())
					s.Synchronize(p)
				default:
					panic(fmt.Sprintf("omb: unknown pt2pt bench %q", bench))
				}
			}
			elapsed := p.Now() - start
			if rank == 0 {
				results[si].Bytes = bytes
				switch bench {
				case LatencyBench:
					results[si].Latency = elapsed / time.Duration(2*iters)
				case BandwidthBench:
					payload := float64(bytes) * bwWindow * float64(iters)
					results[si].Latency = elapsed / time.Duration(iters)
					results[si].BandwidthMBs = payload / elapsed.Seconds() / 1e6
				case BiBandwidthBench:
					payload := 2 * float64(bytes) * bwWindow * float64(iters)
					results[si].Latency = elapsed / time.Duration(iters)
					results[si].BandwidthMBs = payload / elapsed.Seconds() / 1e6
				}
			}
			bar.Wait(p)
		}
	}
	for r := 0; r < 2; r++ {
		r := r
		w.k.Spawn(fmt.Sprintf("pt2pt-%d", r), func(p *sim.Proc) { run(r, p) })
	}
	if err := w.k.Run(); err != nil {
		return nil, err
	}
	return results, nil
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
