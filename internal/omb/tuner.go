package omb

import (
	"fmt"

	"mpixccl/internal/core"
)

// defaultChunkSweep is the hierarchical pipeline chunk sizes Tune tries
// when the caller does not override Config.ChunkSweep.
var defaultChunkSweep = []int64{256 << 10, 1 << 20}

// hierOps marks the collectives with a hierarchical CCL schedule worth
// sweeping (the rest only have the binary MPI/CCL decision).
func hierOp(op Collective) bool {
	switch op {
	case Allreduce, Bcast, Allgather:
		return true
	}
	return false
}

// planSweep lists the compiled-plan strategy keys Tune measures for a
// synthesized collective (the ops the compiler lowers). Phased pairing and
// leader-staged trees only exist across nodes; on one node the compiled
// direct fan is the sole alternative to the group send-recv loop.
func planSweep(op Collective, multiNode bool) []string {
	switch op {
	case Alltoall:
		if multiNode {
			return []string{"direct", "phased", "phased:chunk=1048576"}
		}
		return []string{"direct"}
	case Gather, Scatter:
		if multiNode {
			return []string{"direct",
				"staged:intra=flat,stripe=2,depth=2",
				"staged:intra=tree,stripe=2,depth=1"}
		}
		return []string{"direct"}
	}
	return nil
}

// tuneVariant is one CCL candidate in the sweep: the table band that
// selects it and its measured per-size results.
type tuneVariant struct {
	band core.Threshold
	res  []Result
}

// Tune performs the offline tuning of §3.4, extended with algorithm-level
// selection: for every operation it measures the MPI path, the flat CCL
// path, on multi-node shapes the hierarchical CCL schedule at each
// candidate pipeline chunk size, and — for the synthesized collectives —
// every compiled-plan strategy the collective compiler offers, then
// records the winner per size band. The resulting v3 table carries the
// algorithm family, chunk, and winning plan key alongside the MPI/CCL
// path, ready for the hybrid runtime to honor.
func Tune(cfg Config, ops []Collective) (*core.TuningTable, error) {
	cfg.fillDefaults()
	if len(ops) == 0 {
		ops = []Collective{Allreduce, Reduce, Bcast, Alltoall, Allgather, Gather, Scatter}
	}
	chunks := cfg.ChunkSweep
	if chunks == nil {
		chunks = defaultChunkSweep
	}
	table := &core.TuningTable{System: cfg.System, Backend: string(cfg.Backend)}
	for _, op := range ops {
		mpiCfg := cfg
		mpiCfg.Stack = StackMPI
		mpiRes, err := RunCollective(mpiCfg, op)
		if err != nil {
			return nil, fmt.Errorf("tune %s (mpi): %w", op, err)
		}
		cclCfg := cfg
		cclCfg.Stack = StackPureXCCL
		cclRes, err := RunCollective(cclCfg, op)
		if err != nil {
			return nil, fmt.Errorf("tune %s (ccl): %w", op, err)
		}
		variants := []tuneVariant{{band: core.Threshold{Path: core.PathCCL}, res: cclRes}}
		if !cfg.NoAlgoSweep && cfg.Nodes > 1 && hierOp(op) {
			for _, chunk := range chunks {
				band := core.Threshold{Path: core.PathCCL,
					Algo: core.AlgoHierarchical, ChunkBytes: chunk}
				// Force the candidate through a single-band table on the
				// hybrid stack — the exact dispatch plumbing production
				// tables use, so measurements include its overheads.
				forced := &core.TuningTable{System: cfg.System, Backend: string(cfg.Backend)}
				forced.Set(tuneOpKind(op), []core.Threshold{band})
				hierCfg := cfg
				hierCfg.Stack = StackHybrid
				hierCfg.Table = forced
				res, err := RunCollective(hierCfg, op)
				if err != nil {
					return nil, fmt.Errorf("tune %s (hierarchical/%d): %w", op, chunk, err)
				}
				variants = append(variants, tuneVariant{band: band, res: res})
			}
		}
		if !cfg.NoAlgoSweep {
			for _, key := range planSweep(op, cfg.Nodes > 1) {
				band := core.Threshold{Path: core.PathCCL, Plan: key}
				forced := &core.TuningTable{System: cfg.System, Backend: string(cfg.Backend)}
				forced.Set(tuneOpKind(op), []core.Threshold{band})
				planCfg := cfg
				planCfg.Stack = StackHybrid
				planCfg.Table = forced
				res, err := RunCollective(planCfg, op)
				if err != nil {
					return nil, fmt.Errorf("tune %s (plan %s): %w", op, key, err)
				}
				variants = append(variants, tuneVariant{band: band, res: res})
			}
		}
		var rule []core.Threshold
		have := false
		var last core.Threshold
		for i := range mpiRes {
			best := mpiRes[i].Latency
			win := core.Threshold{Path: core.PathMPI}
			for _, v := range variants {
				if i < len(v.res) && v.res[i].Latency < best {
					best = v.res[i].Latency
					win = v.band
				}
			}
			if have && win.Path == last.Path && win.Algo == last.Algo &&
				win.ChunkBytes == last.ChunkBytes && win.Plan == last.Plan {
				// Extend the current band.
				rule[len(rule)-1].MaxBytes = mpiRes[i].Bytes
				continue
			}
			win.MaxBytes = mpiRes[i].Bytes
			rule = append(rule, win)
			last, have = win, true
		}
		if len(rule) > 0 {
			rule[len(rule)-1].MaxBytes = 0 // open-ended final band
		}
		table.Set(tuneOpKind(op), rule)
	}
	return table, nil
}

func tuneOpKind(op Collective) core.OpKind {
	switch op {
	case Allreduce:
		return core.OpAllreduce
	case Reduce:
		return core.OpReduce
	case Bcast:
		return core.OpBcast
	case Alltoall:
		return core.OpAlltoall
	case Allgather:
		return core.OpAllgather
	case Gather:
		return core.OpGather
	case Scatter:
		return core.OpScatter
	}
	return core.OpKind(op)
}
