package omb

import (
	"fmt"

	"mpixccl/internal/core"
)

// Tune performs the offline tuning of §3.4: for every operation it measures
// the MPI path and the CCL path across the size sweep on the given system
// shape and records which wins per size band, producing the tuning table
// the hybrid runtime consults.
func Tune(cfg Config, ops []Collective) (*core.TuningTable, error) {
	cfg.fillDefaults()
	if len(ops) == 0 {
		ops = []Collective{Allreduce, Reduce, Bcast, Alltoall, Allgather}
	}
	table := &core.TuningTable{System: cfg.System, Backend: string(cfg.Backend)}
	for _, op := range ops {
		mpiCfg := cfg
		mpiCfg.Stack = StackMPI
		mpiRes, err := RunCollective(mpiCfg, op)
		if err != nil {
			return nil, fmt.Errorf("tune %s (mpi): %w", op, err)
		}
		cclCfg := cfg
		cclCfg.Stack = StackPureXCCL
		cclRes, err := RunCollective(cclCfg, op)
		if err != nil {
			return nil, fmt.Errorf("tune %s (ccl): %w", op, err)
		}
		var rule []core.Threshold
		var lastPath core.Path = -1
		for i := range mpiRes {
			path := core.PathMPI
			if i < len(cclRes) && cclRes[i].Latency < mpiRes[i].Latency {
				path = core.PathCCL
			}
			if path == lastPath {
				// Extend the current band.
				rule[len(rule)-1].MaxBytes = mpiRes[i].Bytes
				continue
			}
			rule = append(rule, core.Threshold{MaxBytes: mpiRes[i].Bytes, Path: path})
			lastPath = path
		}
		if len(rule) > 0 {
			rule[len(rule)-1].MaxBytes = 0 // open-ended final band
		}
		table.Set(tuneOpKind(op), rule)
	}
	return table, nil
}

func tuneOpKind(op Collective) core.OpKind {
	switch op {
	case Allreduce:
		return core.OpAllreduce
	case Reduce:
		return core.OpReduce
	case Bcast:
		return core.OpBcast
	case Alltoall:
		return core.OpAlltoall
	case Allgather:
		return core.OpAllgather
	}
	return core.OpKind(op)
}
