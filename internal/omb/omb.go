// Package omb reimplements the OSU Micro-Benchmarks measurement loops over
// the simulated stacks: point-to-point latency / bandwidth / bidirectional
// bandwidth (osu_latency, osu_bw, osu_bibw) and collective latency
// (osu_allreduce, osu_reduce, osu_bcast, osu_alltoall, osu_allgather).
//
// Benchmarks run against any of the evaluated software stacks: the
// proposed hybrid xCCL design, its pure-CCL mode, the plain GPU-aware MPI
// runtime, Open MPI + UCX, Open MPI + UCX + UCC, and the raw vendor CCLs
// (the "pure NCCL/MSCCL" dashed lines of Figs 5–6). Device buffers are
// used throughout — including on the simulated Habana system, mirroring
// the paper's OMB port to SynapseAI device memory.
package omb

import (
	"fmt"
	"time"

	"mpixccl/internal/baseline"
	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// Stack identifies the software under test.
type Stack string

// Stacks.
const (
	// StackHybrid is the paper's proposed hybrid xCCL design.
	StackHybrid Stack = "hybrid-xccl"
	// StackPureXCCL is the proposed layer forced to the CCL path.
	StackPureXCCL Stack = "pure-xccl"
	// StackMPI is the plain GPU-aware MPI runtime (MVAPICH flavor).
	StackMPI Stack = "mpi"
	// StackOpenMPI is Open MPI + UCX.
	StackOpenMPI Stack = "openmpi-ucx"
	// StackUCC is Open MPI + UCX + UCC.
	StackUCC Stack = "openmpi-ucx-ucc"
	// StackPureCCL is the raw vendor library through OMB's CCL benchmarks.
	StackPureCCL Stack = "pure-ccl"
)

// Collective names an OMB collective benchmark.
type Collective string

// Collectives.
const (
	Allreduce Collective = "allreduce"
	Reduce    Collective = "reduce"
	Bcast     Collective = "bcast"
	Alltoall  Collective = "alltoall"
	Allgather Collective = "allgather"
	Gather    Collective = "gather"
	Scatter   Collective = "scatter"
)

// Config parameterizes one benchmark run.
type Config struct {
	// System is the topology preset: "thetagpu", "mri", or "voyager".
	System string
	// Nodes is the node count.
	Nodes int
	// Shards runs the event engine windowed across that many scheduler
	// shards (0/1 = plain serial kernel). Exhibit worlds share rank state
	// through Go memory, so they adopt the engine with the whole world on
	// shard 0 and inert peers — results are byte-identical at any shard
	// count; true parallel speedup comes from partitionable models
	// (experiments.RunScale).
	Shards int
	// Ranks is the total rank count (0 = one per device).
	Ranks int
	// Stack is the software under test.
	Stack Stack
	// Backend picks the CCL (Auto = by vendor).
	Backend core.BackendKind
	// MinBytes and MaxBytes bound the size sweep (powers of two).
	MinBytes, MaxBytes int64
	// Iterations and Warmup control the timing loop.
	Iterations, Warmup int
	// Table overrides the hybrid tuning table.
	Table *core.TuningTable
	// ChunkSweep lists the hierarchical pipeline chunk sizes Tune tries on
	// multi-node shapes (nil = 256 KiB and 1 MiB).
	ChunkSweep []int64
	// NoAlgoSweep restricts Tune to the original binary MPI/CCL decision,
	// skipping the hierarchical algorithm candidates.
	NoAlgoSweep bool
	// Metrics, when non-nil, aggregates the stack-under-test's runtime
	// counters (dispatch paths, fallbacks, protocol choices, CCL launches)
	// into the registry for post-run inspection.
	Metrics *metrics.Registry
	// Faults, when non-nil, is a fault agent (typically a *fault.Plan)
	// attached to the run's fabric: CCL call/comm-init injection plus
	// link-degradation windows.
	Faults any
	// Resilience overrides the xCCL runtime's retry/breaker policy
	// (hybrid and pure-xccl stacks); nil uses the defaults.
	Resilience *core.Resilience
	// Persistent runs the allreduce sweep on persistent handles (hybrid
	// and pure-xccl stacks): one handle per message size, built on the
	// first call for that size, with every timed iteration a
	// Start/Wait wave — the MPI-4 MPI_Allreduce_init measurement mode.
	// Other operations and stacks ignore the flag.
	Persistent bool
	// Compile turns on the collective compiler in the xCCL stacks: the
	// synthesized collectives (alltoall(v), gather, scatter) run compiled
	// plans picked by the cost-model search instead of the group
	// send-recv loop (core.Options.Compile).
	Compile bool
}

func (c *Config) fillDefaults() {
	if c.System == "" {
		c.System = "thetagpu"
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Shards == 0 {
		c.Shards = defaultShards
	}
	if c.MinBytes == 0 {
		c.MinBytes = 4
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 4 << 20
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	}
	if c.Backend == "" {
		c.Backend = core.Auto
	}
	if c.Stack == "" {
		c.Stack = StackHybrid
	}
}

// Result is one row of an OMB table.
type Result struct {
	// Bytes is the per-rank message size.
	Bytes int64
	// Latency is the average operation latency (max across ranks).
	Latency time.Duration
	// MinLatency and MaxLatency are the extremes across ranks (the
	// osu_* "-f" full-results columns); zero when only one rank reports.
	MinLatency, MaxLatency time.Duration
	// BandwidthMBs is payload megabytes per second (pt2pt benches only).
	BandwidthMBs float64
}

// Sizes returns the power-of-two sweep [min, max].
func Sizes(min, max int64) []int64 {
	var out []int64
	for s := min; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// world is a constructed simulation universe for one run.
type world struct {
	k   *sim.Kernel
	sys *topology.System
	fab *fabric.Fabric
}

// defaultShards is the package-wide shard count applied when Config.Shards
// is zero; the xcclbench/ombrun -shards flag sets it via SetDefaultShards.
var defaultShards = 1

// SetDefaultShards sets the engine shard count used by configs that leave
// Shards unset. Call before RunCollective/RunPt2Pt.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

func buildWorld(cfg *Config) (*world, error) {
	k := sim.NewKernel()
	sys, err := topology.Preset(k, cfg.System, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		// Adopt the world into a windowed engine: k becomes shard 0 and
		// k.Run() delegates to the engine, so everything downstream is
		// unchanged. Lookahead is the inter-node α, as for any node-aligned
		// partition of this topology.
		sim.Adopt(k, cfg.Shards, sys.Inter.Alpha)
	}
	fab := fabric.New(k, sys)
	if cfg.Faults != nil {
		fab.SetFaults(cfg.Faults)
	}
	if cfg.Metrics != nil {
		fab.SetMetrics(cfg.Metrics)
	}
	return &world{k: k, sys: sys, fab: fab}, nil
}

func (cfg *Config) ranks(sys *topology.System) int {
	if cfg.Ranks > 0 {
		return cfg.Ranks
	}
	return sys.NumDevices()
}

// collDriver abstracts one rank's collective entry point across stacks.
type collDriver struct {
	do      func(op Collective, send, recv *device.Buffer, count int)
	barrier func()
	proc    *sim.Proc
	dev     *device.Device
	rank    int
}

// RunCollective measures collective latency across the size sweep and
// returns one Result per size.
func RunCollective(cfg Config, op Collective) ([]Result, error) {
	cfg.fillDefaults()
	w, err := buildWorld(&cfg)
	if err != nil {
		return nil, err
	}
	nranks := cfg.ranks(w.sys)
	sizes := Sizes(cfg.MinBytes, cfg.MaxBytes)
	results := make([]Result, len(sizes))

	body := func(d *collDriver) {
		// Only the gather-family ops need n-scaled buffers.
		n := int64(1)
		if op == Alltoall || op == Allgather || op == Gather || op == Scatter {
			n = int64(nranks)
		}
		maxBuf := sizes[len(sizes)-1]
		send := d.dev.MustMalloc(maxBuf * n)
		recv := d.dev.MustMalloc(maxBuf * n)
		for si, bytes := range sizes {
			count := int(bytes / 4) // float32 elements, like OMB defaults
			if count == 0 {
				count = 1
			}
			for i := 0; i < cfg.Warmup; i++ {
				d.do(op, send, recv, count)
			}
			d.barrier()
			var total time.Duration
			for i := 0; i < cfg.Iterations; i++ {
				start := d.proc.Now()
				d.do(op, send, recv, count)
				total += d.proc.Now() - start
			}
			avg := total / time.Duration(cfg.Iterations)
			if avg > results[si].Latency {
				results[si].Latency = avg
			}
			if avg > results[si].MaxLatency {
				results[si].MaxLatency = avg
			}
			if results[si].MinLatency == 0 || avg < results[si].MinLatency {
				results[si].MinLatency = avg
			}
			results[si].Bytes = bytes
			d.barrier()
		}
	}

	if err := launchCollective(&cfg, w, nranks, body); err != nil {
		return nil, err
	}
	return results, nil
}

// launchCollective builds the requested stack and runs body per rank.
func launchCollective(cfg *Config, w *world, nranks int, body func(d *collDriver)) error {
	switch cfg.Stack {
	case StackHybrid, StackPureXCCL:
		mode := core.Hybrid
		if cfg.Stack == StackPureXCCL {
			mode = core.PureCCL
		}
		job := mpi.NewJobOnSystem(w.fab, mpi.MVAPICHProfile(), w.sys, nranks)
		rt, err := core.NewRuntime(job, core.Options{Backend: cfg.Backend, Mode: mode,
			Table: cfg.Table, Metrics: cfg.Metrics, Resilience: cfg.Resilience,
			Compile: cfg.Compile})
		if err != nil {
			return err
		}
		return rt.Run(func(x *core.Comm) {
			// Persistent mode: the allreduce sweep reuses one handle per
			// message size, rebuilt when the size changes (every rank hits
			// the same sequence points, so the Init rendezvous lines up).
			var po *core.PersistentOp
			poCount := -1
			body(&collDriver{
				do: func(op Collective, send, recv *device.Buffer, count int) {
					if cfg.Persistent && op == Allreduce {
						if count != poCount {
							if po != nil {
								po.Free()
							}
							var err error
							po, err = x.AllReduceInit(send.Slice(0, int64(count)*4),
								recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum)
							if err != nil {
								panic(fmt.Sprintf("omb: persistent init: %v", err))
							}
							poCount = count
						}
						if err := po.Do(); err != nil {
							panic(fmt.Sprintf("omb: persistent allreduce: %v", err))
						}
						return
					}
					xcclOp(x, op, send, recv, count)
				},
				barrier: func() { x.MPI().Barrier() },
				proc:    x.MPI().Proc(), dev: x.Device(), rank: x.Rank(),
			})
		})
	case StackMPI:
		job := mpi.NewJobOnSystem(w.fab, mpi.MVAPICHProfile(), w.sys, nranks)
		job.SetMetrics(cfg.Metrics)
		return job.Run(func(c *mpi.Comm) {
			body(&collDriver{
				do: func(op Collective, send, recv *device.Buffer, count int) {
					mpiOp(c, op, send, recv, count)
				},
				barrier: func() { c.Barrier() },
				proc:    c.Proc(), dev: c.Device(), rank: c.Rank(),
			})
		})
	case StackOpenMPI:
		job := baseline.NewOpenMPIJob(w.fab, w.sys, nranks)
		job.SetMetrics(cfg.Metrics)
		return job.Run(func(c *mpi.Comm) {
			body(&collDriver{
				do: func(op Collective, send, recv *device.Buffer, count int) {
					mpiOp(c, op, send, recv, count)
				},
				barrier: func() { c.Barrier() },
				proc:    c.Proc(), dev: c.Device(), rank: c.Rank(),
			})
		})
	case StackUCC:
		job := baseline.NewOpenMPIJob(w.fab, w.sys, nranks)
		job.SetMetrics(cfg.Metrics)
		ucc := baseline.NewUCC(job)
		return ucc.Run(func(x *baseline.Comm) {
			body(&collDriver{
				do: func(op Collective, send, recv *device.Buffer, count int) {
					uccOp(x, op, send, recv, count)
				},
				barrier: func() { x.Barrier() },
				proc:    x.MPI().Proc(), dev: x.Device(), rank: x.Rank(),
			})
		})
	case StackPureCCL:
		return runPureCCLCollective(cfg, w, nranks, body)
	default:
		return fmt.Errorf("omb: unknown stack %q", cfg.Stack)
	}
}

func xcclOp(x *core.Comm, op Collective, send, recv *device.Buffer, count int) {
	switch op {
	case Allreduce:
		x.Allreduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum)
	case Reduce:
		x.Reduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum, 0)
	case Bcast:
		x.Bcast(send.Slice(0, int64(count)*4), count, mpi.Float32, 0)
	case Alltoall:
		n := int64(x.Size())
		x.Alltoall(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Allgather:
		n := int64(x.Size())
		x.Allgather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Gather:
		n := int64(x.Size())
		x.Gather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n), 0)
	case Scatter:
		n := int64(x.Size())
		x.Scatter(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4), 0)
	}
}

func mpiOp(c *mpi.Comm, op Collective, send, recv *device.Buffer, count int) {
	switch op {
	case Allreduce:
		c.Allreduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum)
	case Reduce:
		c.Reduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum, 0)
	case Bcast:
		c.Bcast(send.Slice(0, int64(count)*4), count, mpi.Float32, 0)
	case Alltoall:
		n := int64(c.Size())
		c.Alltoall(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Allgather:
		n := int64(c.Size())
		c.Allgather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Gather:
		n := int64(c.Size())
		c.Gather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n), 0)
	case Scatter:
		n := int64(c.Size())
		c.Scatter(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4), 0)
	}
}

func uccOp(x *baseline.Comm, op Collective, send, recv *device.Buffer, count int) {
	switch op {
	case Allreduce:
		x.Allreduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum)
	case Reduce:
		x.Reduce(send.Slice(0, int64(count)*4), recv.Slice(0, int64(count)*4), count, mpi.Float32, mpi.OpSum, 0)
	case Bcast:
		x.Bcast(send.Slice(0, int64(count)*4), count, mpi.Float32, 0)
	case Alltoall:
		n := int64(x.Size())
		x.Alltoall(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Allgather:
		n := int64(x.Size())
		x.Allgather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n))
	case Gather, Scatter:
		// UCC has no gather/scatter team collective here; run them on the
		// underlying Open MPI communicator, as the real stack does.
		n := int64(x.MPI().Size())
		if op == Gather {
			x.MPI().Gather(send.Slice(0, int64(count)*4), count, mpi.Float32, recv.Slice(0, int64(count)*4*n), 0)
		} else {
			x.MPI().Scatter(send.Slice(0, int64(count)*4*n), count, mpi.Float32, recv.Slice(0, int64(count)*4), 0)
		}
	}
}
