package omb

import (
	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

// runPureCCLCollective drives the vendor library directly — the dashed
// "Pure NCCL/MSCCL" lines extracted from OMB's CCL benchmarks.
func runPureCCLCollective(cfg *Config, w *world, nranks int, body func(d *collDriver)) error {
	kind, err := core.ResolveBackend(cfg.Backend, w.sys.Device(0).Kind)
	if err != nil {
		return err
	}
	comms, err := core.NewBackendComms(kind, w.fab, w.sys.Devices()[:nranks])
	if err != nil {
		return err
	}
	if cfg.Metrics != nil {
		comms[0].SetMetrics(cfg.Metrics)
	}
	bar := sim.NewBarrier(w.k, nranks)
	counter := sim.NewCounter(w.k, nranks)
	for r := 0; r < nranks; r++ {
		r := r
		cc := comms[r]
		w.k.Spawn("omb-rank", func(p *sim.Proc) {
			s := cc.Device().NewStream()
			body(&collDriver{
				do: func(op Collective, send, recv *device.Buffer, count int) {
					pureCCLOp(cc, s, p, op, send, recv, count)
				},
				barrier: func() { bar.Wait(p) },
				proc:    p, dev: cc.Device(), rank: r,
			})
			counter.Done()
		})
	}
	return w.k.Run()
}

// pureCCLOp issues one blocking collective on the raw CCL. Operations the
// CCL does not provide (alltoall) use group send/recv, as OMB's NCCL
// benchmarks do.
func pureCCLOp(cc *ccl.Comm, s *device.Stream, p *sim.Proc, op Collective, send, recv *device.Buffer, count int) {
	dt := ccl.Float32
	bytes := int64(count) * 4
	var err error
	switch op {
	case Allreduce:
		err = cc.AllReduce(send.Slice(0, bytes), recv.Slice(0, bytes), count, dt, ccl.Sum, s)
	case Reduce:
		err = cc.Reduce(send.Slice(0, bytes), recv.Slice(0, bytes), count, dt, ccl.Sum, 0, s)
	case Bcast:
		err = cc.Broadcast(send.Slice(0, bytes), send.Slice(0, bytes), count, dt, 0, s)
	case Allgather:
		err = cc.AllGather(send.Slice(0, bytes), recv.Slice(0, bytes*int64(cc.Size())), count, dt, s)
	case Alltoall:
		if err = cc.GroupStart(); err != nil {
			break
		}
		for peer := 0; peer < cc.Size(); peer++ {
			if peer == cc.Rank() {
				continue
			}
			if err = cc.Send(send.Slice(int64(peer)*bytes, bytes), count, dt, peer, s); err != nil {
				break
			}
			if err = cc.Recv(recv.Slice(int64(peer)*bytes, bytes), count, dt, peer, s); err != nil {
				break
			}
		}
		if err == nil {
			err = cc.GroupEnd()
		}
	case Gather, Scatter:
		// Synthesized at root via group send/recv, like alltoall.
		if err = cc.GroupStart(); err != nil {
			break
		}
		root := 0
		if cc.Rank() == root {
			for peer := 0; peer < cc.Size(); peer++ {
				if peer == root {
					continue
				}
				if op == Gather {
					err = cc.Recv(recv.Slice(int64(peer)*bytes, bytes), count, dt, peer, s)
				} else {
					err = cc.Send(send.Slice(int64(peer)*bytes, bytes), count, dt, peer, s)
				}
				if err != nil {
					break
				}
			}
		} else if op == Gather {
			err = cc.Send(send.Slice(0, bytes), count, dt, root, s)
		} else {
			err = cc.Recv(recv.Slice(0, bytes), count, dt, root, s)
		}
		if err == nil {
			err = cc.GroupEnd()
		}
	}
	if err != nil {
		panic(err)
	}
	s.Synchronize(p)
}
