package omb

import (
	"testing"
	"time"

	"mpixccl/internal/core"
)

func find(results []Result, bytes int64) Result {
	for _, r := range results {
		if r.Bytes == bytes {
			return r
		}
	}
	return Result{}
}

func TestSizesSweep(t *testing.T) {
	s := Sizes(4, 64)
	want := []int64{4, 8, 16, 32, 64}
	if len(s) != len(want) {
		t.Fatalf("sizes = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
}

// Fig 3a/b: intra-node NCCL latency — ~20 µs small-message floor (launch
// overhead) and ≈56 µs at 4 MB.
func TestPt2PtLatencyNCCLIntraNode(t *testing.T) {
	res, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 1, MinBytes: 4, MaxBytes: 4 << 20, Iterations: 2}, LatencyBench)
	if err != nil {
		t.Fatal(err)
	}
	small := find(res, 4).Latency
	if small < 18*time.Microsecond || small > 35*time.Microsecond {
		t.Errorf("4B latency = %v, want ≈20-30µs (launch floor)", small)
	}
	large := find(res, 4<<20).Latency
	if large < 45*time.Microsecond || large > 75*time.Microsecond {
		t.Errorf("4MB latency = %v, want ≈56µs", large)
	}
}

// Fig 3c: NCCL intra-node bandwidth ≈137 031 MB/s at 4 MB.
func TestPt2PtBandwidthNCCLIntraNode(t *testing.T) {
	res, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 1, MinBytes: 1 << 20, MaxBytes: 4 << 20, Iterations: 2}, BandwidthBench)
	if err != nil {
		t.Fatal(err)
	}
	bw := find(res, 4<<20).BandwidthMBs
	if bw < 100000 || bw > 145000 {
		t.Errorf("4MB bandwidth = %.0f MB/s, want ≈137000", bw)
	}
}

// Fig 3d: bidirectional bandwidth ≈181 204 MB/s — more than unidirectional
// but well under 2×.
func TestPt2PtBiBandwidthNCCLIntraNode(t *testing.T) {
	uni, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, BandwidthBench)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, BiBandwidthBench)
	if err != nil {
		t.Fatal(err)
	}
	u, b := uni[0].BandwidthMBs, bi[0].BandwidthMBs
	if b <= u*1.1 {
		t.Errorf("bibw %.0f not > bw %.0f", b, u)
	}
	if b >= u*1.9 {
		t.Errorf("bibw %.0f suspiciously close to 2× bw %.0f", b, u)
	}
}

// Fig 4: inter-node latency at 4 MB ≈255 µs for NCCL.
func TestPt2PtLatencyNCCLInterNode(t *testing.T) {
	res, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 2, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, LatencyBench)
	if err != nil {
		t.Fatal(err)
	}
	lat := res[0].Latency
	if lat < 200*time.Microsecond || lat > 320*time.Microsecond {
		t.Errorf("inter-node 4MB latency = %v, want ≈255µs", lat)
	}
}

// HCCL's point-to-point on Voyager: ≈1651 µs at 4 MB (270 µs launch +
// ~1380 µs wire).
func TestPt2PtLatencyHCCLIntraNode(t *testing.T) {
	res, err := RunPt2Pt(Config{System: "voyager", Nodes: 1, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, LatencyBench)
	if err != nil {
		t.Fatal(err)
	}
	lat := res[0].Latency
	if lat < 1400*time.Microsecond || lat > 1900*time.Microsecond {
		t.Errorf("HCCL 4MB latency = %v, want ≈1651µs", lat)
	}
}

// RCCL on MRI: ≈836 µs at 4 MB, ≈6351 MB/s peak.
func TestPt2PtRCCLCalibration(t *testing.T) {
	lat, err := RunPt2Pt(Config{System: "mri", Nodes: 1, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, LatencyBench)
	if err != nil {
		t.Fatal(err)
	}
	if l := lat[0].Latency; l < 600*time.Microsecond || l > 1000*time.Microsecond {
		t.Errorf("RCCL 4MB latency = %v, want ≈700-840µs", l)
	}
	bw, err := RunPt2Pt(Config{System: "mri", Nodes: 1, MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2}, BandwidthBench)
	if err != nil {
		t.Fatal(err)
	}
	if b := bw[0].BandwidthMBs; b < 5000 || b > 7000 {
		t.Errorf("RCCL bandwidth = %.0f MB/s, want ≈6351", b)
	}
}

// Fig 1a's shape: on 4 nodes / 32 GPUs, MPI allreduce beats pure NCCL for
// small messages and loses for large ones, crossing over in the tens of KB.
func TestFig1aCrossoverShape(t *testing.T) {
	cfg := Config{System: "thetagpu", Nodes: 4, MinBytes: 256, MaxBytes: 1 << 20, Iterations: 1}
	cfg.Stack = StackMPI
	mpiRes, err := RunCollective(cfg, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stack = StackPureCCL
	ncclRes, err := RunCollective(cfg, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	small := find(mpiRes, 256).Latency < find(ncclRes, 256).Latency
	large := find(mpiRes, 1<<20).Latency > find(ncclRes, 1<<20).Latency
	if !small {
		t.Errorf("MPI (%v) not faster than NCCL (%v) at 256B",
			find(mpiRes, 256).Latency, find(ncclRes, 256).Latency)
	}
	if !large {
		t.Errorf("NCCL (%v) not faster than MPI (%v) at 1MB",
			find(ncclRes, 1<<20).Latency, find(mpiRes, 1<<20).Latency)
	}
}

// The hybrid design must track the winner on both sides of the crossover
// (Fig 5 claim: pure-xCCL ≈ vendor CCL, hybrid better for small messages).
func TestHybridTracksWinner(t *testing.T) {
	base := Config{System: "thetagpu", Nodes: 1, MinBytes: 256, MaxBytes: 4 << 20, Iterations: 1}
	hyb := base
	hyb.Stack = StackHybrid
	hybRes, err := RunCollective(hyb, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	pure := base
	pure.Stack = StackPureXCCL
	pureRes, err := RunCollective(pure, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	if h, p := find(hybRes, 256).Latency, find(pureRes, 256).Latency; h >= p {
		t.Errorf("hybrid (%v) not faster than pure xCCL (%v) at 256B", h, p)
	}
	h, p := find(hybRes, 4<<20).Latency, find(pureRes, 4<<20).Latency
	ratio := float64(h) / float64(p)
	if ratio > 1.05 {
		t.Errorf("hybrid (%v) slower than pure xCCL (%v) at 4MB", h, p)
	}
}

// §4.3 claim: the proposed pure-xCCL layer adds only marginal overhead over
// the raw vendor CCL (±3% in the paper; we allow a slightly wider band for
// the extra MPI entry hop).
func TestPureXCCLOverheadSmall(t *testing.T) {
	base := Config{System: "thetagpu", Nodes: 1, MinBytes: 64 << 10, MaxBytes: 4 << 20, Iterations: 2}
	x := base
	x.Stack = StackPureXCCL
	xr, err := RunCollective(x, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Stack = StackPureCCL
	pr, err := RunCollective(p, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xr {
		over := float64(xr[i].Latency)/float64(pr[i].Latency) - 1
		if over > 0.08 || over < -0.05 {
			t.Errorf("size %d: xCCL overhead vs pure CCL = %+.1f%%", xr[i].Bytes, over*100)
		}
	}
}

// The proposed design must beat Open MPI + UCX + UCC at 4 KB (paper: 1.1×
// for allreduce, 2.8× for alltoall).
func TestBeatsUCCAt4KB(t *testing.T) {
	base := Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 10, MaxBytes: 4 << 10, Iterations: 2}
	hyb := base
	hyb.Stack = StackHybrid
	ucc := base
	ucc.Stack = StackUCC
	for _, op := range []Collective{Allreduce, Alltoall} {
		hr, err := RunCollective(hyb, op)
		if err != nil {
			t.Fatal(err)
		}
		ur, err := RunCollective(ucc, op)
		if err != nil {
			t.Fatal(err)
		}
		if hr[0].Latency >= ur[0].Latency {
			t.Errorf("%s at 4KB: hybrid %v not faster than UCC %v", op, hr[0].Latency, ur[0].Latency)
		}
	}
}

// MSCCL with its custom algorithm must beat its embedded NCCL 2.12 in the
// medium window (Fig 5d) while matching it outside.
func TestMSCCLBeatsLegacyNCCLMediumSizes(t *testing.T) {
	msccl := Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 10, MaxBytes: 64 << 10,
		Iterations: 2, Stack: StackPureCCL, Backend: core.MSCCL}
	mr, err := RunCollective(msccl, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	legacy := msccl
	legacy.Backend = core.LegacyNCCL
	lr, err := RunCollective(legacy, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i := range mr {
		if mr[i].Latency < lr[i].Latency {
			wins++
		}
	}
	if wins < len(mr)-1 {
		t.Errorf("MSCCL won only %d/%d medium sizes vs NCCL 2.12", wins, len(mr))
	}
}

// HCCL multi-node collectives show step-curve degradations crossing 16 B
// and 64 B (Fig 6c: 7–12× jumps).
func TestHCCLStepCurves(t *testing.T) {
	cfg := Config{System: "voyager", Nodes: 4, MinBytes: 4, MaxBytes: 256,
		Iterations: 1, Stack: StackPureXCCL, Backend: core.HCCL,
		Table: nil}
	res, err := RunCollective(cfg, Allreduce)
	if err != nil {
		t.Fatal(err)
	}
	at8 := find(res, 8).Latency
	at32 := find(res, 32).Latency
	at128 := find(res, 128).Latency
	if float64(at32) < 1.5*float64(at8) {
		t.Errorf("no step at 16B boundary: 8B=%v 32B=%v", at8, at32)
	}
	if float64(at128) < 2.0*float64(at32) {
		t.Errorf("no step at 64B boundary: 32B=%v 128B=%v", at32, at128)
	}
}

func TestUnknownStackAndSystem(t *testing.T) {
	if _, err := RunCollective(Config{Stack: "nope"}, Allreduce); err == nil {
		t.Error("unknown stack accepted")
	}
	if _, err := RunCollective(Config{System: "summit"}, Allreduce); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := RunPt2Pt(Config{MinBytes: 4, MaxBytes: 4}, Pt2PtKind("nope")); err == nil {
		t.Error("unknown pt2pt bench accepted")
	}
}

// All five collectives complete and return monotone-in-size latency on
// every system preset (smoke coverage for Figs 5–6 machinery).
func TestAllCollectivesAllSystemsSmoke(t *testing.T) {
	for _, system := range []string{"thetagpu", "mri", "voyager"} {
		for _, op := range []Collective{Allreduce, Reduce, Bcast, Alltoall, Allgather} {
			cfg := Config{System: system, Nodes: 1, MinBytes: 4 << 10, MaxBytes: 32 << 10,
				Iterations: 1, Stack: StackHybrid}
			res, err := RunCollective(cfg, op)
			if err != nil {
				t.Fatalf("%s/%s: %v", system, op, err)
			}
			if len(res) == 0 || res[0].Latency <= 0 {
				t.Fatalf("%s/%s: empty results", system, op)
			}
			last := res[len(res)-1]
			if last.Latency < res[0].Latency/4 {
				t.Errorf("%s/%s: latency collapsed with size: %v -> %v", system, op, res[0].Latency, last.Latency)
			}
		}
	}
}

// osu_mbw_mr: aggregate bandwidth over multiple concurrent pairs must
// exceed one pair's but stay under pairs× (shared pool contention).
func TestMultiBWAggregates(t *testing.T) {
	single, err := RunPt2Pt(Config{System: "thetagpu", Nodes: 2,
		MinBytes: 1 << 20, MaxBytes: 1 << 20, Iterations: 1}, BandwidthBench)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMultiBW(Config{System: "thetagpu", Nodes: 2,
		MinBytes: 1 << 20, MaxBytes: 1 << 20, Iterations: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, m := single[0].BandwidthMBs, multi[0].BandwidthMBs
	if m <= s*1.05 {
		t.Fatalf("8-pair aggregate %.0f MB/s not above single-pair %.0f MB/s", m, s)
	}
	if m >= s*8 {
		t.Fatalf("8-pair aggregate %.0f MB/s shows no NIC contention vs single %.0f MB/s", m, s)
	}
}

func TestMultiBWIntraNode(t *testing.T) {
	res, err := RunMultiBW(Config{System: "thetagpu", Nodes: 1,
		MinBytes: 1 << 20, MaxBytes: 1 << 20, Iterations: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 NVLink pairs are independent: aggregate ≈ 4×137 GB/s.
	if res[0].BandwidthMBs < 300000 {
		t.Fatalf("4-pair NVLink aggregate = %.0f MB/s, want >300 GB/s", res[0].BandwidthMBs)
	}
}

// The offline tuner must discover a crossover consistent with Fig 1a: MPI
// below some band, CCL above.
func TestTunerFindsCrossover(t *testing.T) {
	table, err := Tune(Config{System: "thetagpu", Nodes: 1,
		MinBytes: 1 << 10, MaxBytes: 1 << 20, Iterations: 1}, []Collective{Allreduce})
	if err != nil {
		t.Fatal(err)
	}
	if table.Lookup(core.OpAllreduce, 1<<10) != core.PathMPI {
		t.Error("tuner should pick MPI at 1KB")
	}
	if table.Lookup(core.OpAllreduce, 1<<20) != core.PathCCL {
		t.Error("tuner should pick CCL at 1MB")
	}
	// The tuned table must be loadable by a hybrid runtime.
	cfg := Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 10, MaxBytes: 4 << 10,
		Iterations: 1, Stack: StackHybrid, Table: table}
	if _, err := RunCollective(cfg, Allreduce); err != nil {
		t.Fatal(err)
	}
}

func TestFullResultsMinMax(t *testing.T) {
	res, err := RunCollective(Config{System: "thetagpu", Nodes: 1, MinBytes: 4 << 10,
		MaxBytes: 4 << 10, Iterations: 2, Stack: StackHybrid}, Reduce)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.MinLatency <= 0 || r.MaxLatency < r.MinLatency || r.Latency != r.MaxLatency {
		t.Fatalf("full stats inconsistent: %+v", r)
	}
	// Reduce is root-asymmetric, so min (leaf ranks) < max (root path).
	if r.MinLatency == r.MaxLatency {
		t.Fatalf("expected rank spread on reduce, got min==max==%v", r.MinLatency)
	}
}

func TestTuneSweepsHierarchical(t *testing.T) {
	table, err := Tune(Config{System: "thetagpu", Nodes: 2,
		MinBytes: 256 << 10, MaxBytes: 4 << 20, Iterations: 1}, []Collective{Allreduce})
	if err != nil {
		t.Fatal(err)
	}
	th, ok := table.Choice(core.OpAllreduce, 4<<20)
	if !ok || th.Path != core.PathCCL {
		t.Fatalf("tuner should pick CCL at 4MB on 2 nodes, got %+v (hit=%v)", th, ok)
	}
	if th.Algo != core.AlgoHierarchical {
		t.Fatalf("tuner should pick the hierarchical schedule at 4MB, got %+v", th)
	}
	if th.ChunkBytes <= 0 {
		t.Fatalf("hierarchical band must carry a chunk size, got %+v", th)
	}
	// The algorithm choice must survive a JSON round trip (v2 table format).
	js, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ParseTable(js)
	if err != nil {
		t.Fatal(err)
	}
	th2, ok := loaded.Choice(core.OpAllreduce, 4<<20)
	if !ok || th2 != th {
		t.Fatalf("round-tripped band %+v != tuned band %+v", th2, th)
	}
	// Regression guard: the tuned table must not lose to the builtin default
	// on the shape it was tuned for.
	at4MB := func(tb *core.TuningTable) time.Duration {
		res, err := RunCollective(Config{System: "thetagpu", Nodes: 2,
			MinBytes: 4 << 20, MaxBytes: 4 << 20, Iterations: 2,
			Stack: StackHybrid, Table: tb}, Allreduce)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Latency
	}
	tuned, builtin := at4MB(loaded), at4MB(nil)
	if tuned >= builtin {
		t.Errorf("tuned table must beat builtin at 4MB: tuned=%v builtin=%v", tuned, builtin)
	}
}

func TestTuneNoAlgoSweep(t *testing.T) {
	table, err := Tune(Config{System: "thetagpu", Nodes: 2, NoAlgoSweep: true,
		MinBytes: 1 << 20, MaxBytes: 4 << 20, Iterations: 1}, []Collective{Allreduce})
	if err != nil {
		t.Fatal(err)
	}
	for _, band := range table.Rules[core.OpAllreduce] {
		if band.Algo != core.AlgoAuto || band.ChunkBytes != 0 {
			t.Fatalf("NoAlgoSweep table must stay path-only, got %+v", band)
		}
	}
}

// The new synthesized-collective benchmarks run on every stack, and the
// compiled path (Config.Compile) matches the group-loop latency curve's
// shape (monotone, no collapse).
func TestGatherScatterAllStacksSmoke(t *testing.T) {
	for _, stack := range []Stack{StackHybrid, StackPureXCCL, StackMPI, StackOpenMPI, StackUCC, StackPureCCL} {
		for _, op := range []Collective{Gather, Scatter} {
			cfg := Config{System: "thetagpu", Nodes: 1, MinBytes: 64 << 10, MaxBytes: 256 << 10,
				Iterations: 1, Stack: stack}
			res, err := RunCollective(cfg, op)
			if err != nil {
				t.Fatalf("%s/%s: %v", stack, op, err)
			}
			if len(res) == 0 || res[0].Latency <= 0 {
				t.Fatalf("%s/%s: empty results", stack, op)
			}
		}
	}
}

// Compiled dispatch through OMB: the phased alltoall must beat the group
// send-recv loop at large sizes on a multi-node shape (the Fig 6 claim
// BENCH_pr10.json records; this is the small always-on guard).
func TestCompiledAlltoallBeatsLoopMultiNode(t *testing.T) {
	// 4 full ThetaGPU nodes: 8 flows per node share each NIC, so the flat
	// loop convoys (HOL) and the phased pairing schedule wins. 256 KB keeps
	// the event count test-sized; the 4 MB Fig 6 sweep lives in the bench.
	base := Config{System: "thetagpu", Nodes: 4,
		MinBytes: 256 << 10, MaxBytes: 256 << 10, Iterations: 2, Stack: StackPureXCCL}
	loop, err := RunCollective(base, Alltoall)
	if err != nil {
		t.Fatal(err)
	}
	comp := base
	comp.Compile = true
	compiled, err := RunCollective(comp, Alltoall)
	if err != nil {
		t.Fatal(err)
	}
	if compiled[0].Latency >= loop[0].Latency {
		t.Errorf("compiled alltoall %v not faster than loop %v at 256KB over 4 nodes",
			compiled[0].Latency, loop[0].Latency)
	}
}

func TestTuneSweepsCompiledPlans(t *testing.T) {
	table, err := Tune(Config{System: "thetagpu", Nodes: 4,
		MinBytes: 256 << 10, MaxBytes: 256 << 10, Iterations: 1}, []Collective{Alltoall})
	if err != nil {
		t.Fatal(err)
	}
	th, ok := table.Choice(core.OpAlltoall, 256<<10)
	if !ok || th.Path != core.PathCCL {
		t.Fatalf("tuner should pick CCL alltoall at 256KB on 4 nodes, got %+v (hit=%v)", th, ok)
	}
	if th.Plan == "" {
		t.Fatalf("tuner should pick a compiled plan at 256KB on 4 nodes, got %+v", th)
	}
	// The plan key must survive a v3 JSON round trip.
	js, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ParseTable(js)
	if err != nil {
		t.Fatal(err)
	}
	th2, _ := loaded.Choice(core.OpAlltoall, 256<<10)
	if th2.Plan != th.Plan {
		t.Fatalf("plan lost in round trip: %+v != %+v", th2, th)
	}
}
