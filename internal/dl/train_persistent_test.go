package dl

import "testing"

// TestTrainPersistentBeatsOneShot pins the tentpole win in the training hot
// loop: the same workload on persistent partitioned handles must report a
// shorter average step (CoordOverhead amortized to Init, partition fills
// overlapped with the collective) and therefore higher img/s.
func TestTrainPersistentBeatsOneShot(t *testing.T) {
	cfg := Config{System: "thetagpu", Nodes: 1, BatchSize: 32, Steps: 2, Engine: EngineXCCL}
	base, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Persistent = true
	pers, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pers.StepTime >= base.StepTime {
		t.Fatalf("persistent step %v not faster than one-shot %v", pers.StepTime, base.StepTime)
	}
	if pers.ImgPerSec <= base.ImgPerSec {
		t.Fatalf("persistent img/s %.0f not above one-shot %.0f", pers.ImgPerSec, base.ImgPerSec)
	}
	if pers.Ranks != base.Ranks || pers.Buckets != base.Buckets {
		t.Fatalf("run shape diverged: persistent %d ranks/%d buckets, one-shot %d/%d",
			pers.Ranks, pers.Buckets, base.Ranks, base.Buckets)
	}
}

// TestTrainPersistentIgnoredOffXCCL: non-xCCL engines ignore the flag and
// still train.
func TestTrainPersistentIgnoredOffXCCL(t *testing.T) {
	rep, err := Train(Config{System: "thetagpu", Nodes: 1, BatchSize: 32, Steps: 1,
		Engine: EngineOpenMPI, Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ImgPerSec <= 0 {
		t.Fatalf("img/s = %f", rep.ImgPerSec)
	}
}
