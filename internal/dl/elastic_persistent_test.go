package dl

import (
	"testing"

	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
)

// Persistent handles under fail-stop recovery: a crash breaks the
// handles with the communicator they were built on, the survivors
// shrink, re-Init fresh handles on the survivor communicator, and the
// run completes — proving the Init → Shrink → re-Init lifecycle works
// end to end.

// TestTrainElasticPersistentCrashRecovers is the persistent twin of
// TestTrainElasticCrashRecovers: same fault plan, same recovery outcome.
func TestTrainElasticPersistentCrashRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := elasticConfig(reg)
	cfg.Persistent = true
	nb := tinyBuckets()
	cfg.Faults = fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{5}, Op: "allreduce",
		After: 2*nb + nb/2,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartRanks != 8 || rep.FinalRanks != 7 {
		t.Errorf("ranks %d -> %d, want 8 -> 7", rep.StartRanks, rep.FinalRanks)
	}
	if len(rep.CrashedRanks) != 1 || rep.CrashedRanks[0] != 5 {
		t.Errorf("CrashedRanks = %v, want [5]", rep.CrashedRanks)
	}
	if rep.Shrinks != 1 {
		t.Errorf("Shrinks = %d, want 1", rep.Shrinks)
	}
	// All 6 steps complete exactly once (the crash interrupted the first
	// step after a checkpoint), on re-Initialized handles after the shrink.
	if len(rep.Loss) != 6 {
		t.Fatalf("len(Loss) = %d, want 6", len(rep.Loss))
	}
	if rep.RollbackSteps != 0 {
		t.Errorf("RollbackSteps = %d, want 0", rep.RollbackSteps)
	}
	if v, ok := reg.CounterValue("xccl_rank_failures_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_rank_failures_total = %v (exists %v), want 1", v, ok)
	}
}

// TestTrainElasticPersistentHealthyMatchesOneShot pins that persistence
// changes only the cost model, not the training semantics: a healthy
// persistent run reports the identical loss curve and recovery-free shape
// as the one-shot run.
func TestTrainElasticPersistentHealthyMatchesOneShot(t *testing.T) {
	base, err := TrainElastic(elasticConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	cfg := elasticConfig(nil)
	cfg.Persistent = true
	pers, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pers.Shrinks != 0 || pers.RollbackSteps != 0 || len(pers.CrashedRanks) != 0 {
		t.Errorf("healthy persistent run reported Shrinks=%d RollbackSteps=%d CrashedRanks=%v",
			pers.Shrinks, pers.RollbackSteps, pers.CrashedRanks)
	}
	if pers.FinalRanks != base.FinalRanks || len(pers.Loss) != len(base.Loss) {
		t.Fatalf("shape diverged: FinalRanks %d vs %d, len(Loss) %d vs %d",
			pers.FinalRanks, base.FinalRanks, len(pers.Loss), len(base.Loss))
	}
	for i := range base.Loss {
		if pers.Loss[i] != base.Loss[i] {
			t.Errorf("loss diverged at step %d: persistent %v vs one-shot %v",
				i, pers.Loss[i], base.Loss[i])
		}
	}
	// The persistent run pays negotiation at Init instead of per step, so
	// its steady-state steps must not be slower.
	if pers.StepTime > base.StepTime {
		t.Errorf("persistent StepTime %v slower than one-shot %v", pers.StepTime, base.StepTime)
	}
}

// TestTrainElasticPersistentRollback replays a lost step on rebuilt
// handles: crash after an uncheckpointed step forces rollback, and the
// replay runs on the re-Initialized handles of the shrunken world.
func TestTrainElasticPersistentRollback(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := elasticConfig(reg)
	cfg.Persistent = true
	nb := tinyBuckets()
	cfg.Faults = fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{3}, Op: "allreduce",
		After: 3*nb + nb/2,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RollbackSteps != 1 {
		t.Errorf("RollbackSteps = %d, want 1", rep.RollbackSteps)
	}
	if len(rep.Loss) != 7 {
		t.Fatalf("len(Loss) = %d, want 7 (6 steps + 1 replay)", len(rep.Loss))
	}
	if rep.FinalRanks != 7 || rep.Shrinks != 1 {
		t.Errorf("FinalRanks=%d Shrinks=%d, want 7/1", rep.FinalRanks, rep.Shrinks)
	}
}
