package dl

import (
	"fmt"
	"time"

	"mpixccl/internal/baseline"
	"mpixccl/internal/ccl"
	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// Engine selects the gradient-communication stack.
type Engine string

// Engines evaluated in §4.4.
const (
	// EngineXCCL is the proposed hybrid design inside the MPI runtime:
	// Horovod keeps calling MPI_Allreduce (the paper's Habana methodology
	// of replacing hcclAllreduce with MPI_Allreduce generalized).
	EngineXCCL Engine = "xccl-hybrid"
	// EnginePureCCL is Horovod's native CCL integration: the vendor
	// library driven directly, with Horovod's background-thread completion
	// polling on every fused operation.
	EnginePureCCL Engine = "pure-ccl"
	// EngineOpenMPI is Horovod over Open MPI + UCX.
	EngineOpenMPI Engine = "openmpi-ucx"
	// EngineUCC is Horovod over Open MPI + UCX + UCC.
	EngineUCC Engine = "openmpi-ucx-ucc"
)

// computeRate returns sustained single-accelerator training throughput
// (images/second) for the ResNet-50-class workload, per device kind —
// the no-communication upper bound, calibrated so the paper's absolute
// img/sec figures land in range.
func computeRate(kind device.Kind) float64 {
	switch kind {
	case device.NvidiaGPU:
		return 855 // A100, fp32 ResNet-50
	case device.AMDGPU:
		return 600 // MI100
	case device.HabanaHPU:
		return 1250 // Gaudi
	default:
		return 100
	}
}

// Config parameterizes a training run.
type Config struct {
	// System is the topology preset.
	System string
	// Nodes is the node count.
	Nodes int
	// Shards runs the event engine windowed across that many scheduler
	// shards (0/1 = plain serial kernel). Training worlds share gradient
	// state through Go memory, so they adopt the engine with the whole
	// world on shard 0 — reports are byte-identical at any shard count.
	Shards int
	// Ranks is the worker count (0 = one per device).
	Ranks int
	// Model is the network (nil = ResNet50).
	Model *Model
	// BatchSize is the per-worker batch.
	BatchSize int
	// Steps is the measured step count (after one warmup step).
	Steps int
	// Engine is the gradient communication stack.
	Engine Engine
	// Backend picks the CCL for the xCCL and pure-CCL engines.
	Backend core.BackendKind
	// FusionBytes is Horovod's tensor-fusion threshold.
	FusionBytes int64
	// PollOverhead is the per-fused-op completion cost of Horovod's own
	// CCL integration (background-thread polling plus framework callback);
	// the MPI-integrated engines don't pay it because completion rides the
	// blocking MPI call.
	PollOverhead time.Duration
	// CoordOverhead is Horovod's per-op negotiation/bookkeeping cost,
	// paid by every engine.
	CoordOverhead time.Duration
	// Table overrides the xCCL runtime's tuning table (EngineXCCL only) —
	// e.g. a hierarchical-collectives table from the offline tuner. nil
	// keeps the builtin table for the (system, backend) pair.
	Table *core.TuningTable
	// Metrics, when non-nil, aggregates training-loop instrumentation:
	// fusion-buffer fill levels, per-step duration, and per-bucket
	// allreduce latency distributions (rank 0's view), plus the runtime
	// layers' own counters for the engines that support them.
	Metrics *metrics.Registry
	// Faults, when non-nil, is attached to the fabric before the run
	// (typically a *fault.Plan carrying fail-stop crash rules). Only
	// TrainElastic consults it; Train assumes a healthy cluster.
	Faults any
	// Resilience overrides the xCCL resilience policy. TrainElastic
	// defaults it to DefaultResilience plus a 2 ms collective watchdog —
	// the deadline that turns a dead peer into a detectable failure.
	Resilience *core.Resilience
	// CheckpointEvery is TrainElastic's checkpoint interval in completed
	// steps (0 = every 2 steps). A crash rolls the survivors back to the
	// last checkpoint.
	CheckpointEvery int
	// Persistent moves the gradient exchange onto persistent allreduce
	// handles (EngineXCCL only): one handle per fusion bucket, built
	// before the first step, so Horovod's per-op negotiation
	// (CoordOverhead) and the dispatch/plan/scratch work are paid once
	// per run instead of once per step, and the steady-state loop
	// allocates nothing. Partitioned readiness overlaps backprop's
	// fusion-buffer fill with the collective (see Partitions). Other
	// engines ignore the flag.
	Persistent bool
	// Partitions is the per-bucket partition count for the persistent
	// path (0 = 4): backprop marks each gradient partition ready as it is
	// produced, letting the intra-node phase and the inter-node leader
	// ring consume partitions while later ones are still being computed.
	Partitions int
	// Spares is TrainElastic's pre-provisioned spare-rank count: the job
	// launches Ranks+Spares processes, the extras park in the runtime's
	// spare pool, and after a crash the survivors Shrink and then Grow
	// back to the original width by adopting spares (which restore their
	// replica from the last checkpoint). When the resilience policy is
	// defaulted, Spares > 0 also arms the heartbeat failure detector at
	// an eighth of the watchdog timeout, so crashes are caught in a few
	// heartbeat intervals instead of a full collective timeout. Other
	// train entry points ignore the field.
	Spares int
	// Compile turns on the collective compiler in the xCCL engine
	// (core.Options.Compile). Gradient exchange is allreduce-only, so the
	// flag changes nothing today; it exists so application runs stay
	// option-compatible with the benchmark stacks. Other engines ignore it.
	Compile bool
}

func (c *Config) fillDefaults() {
	if c.System == "" {
		c.System = "thetagpu"
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Shards == 0 {
		c.Shards = defaultShards
	}
	if c.Model == nil {
		c.Model = ResNet50()
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Steps == 0 {
		c.Steps = 2
	}
	if c.Engine == "" {
		c.Engine = EngineXCCL
	}
	if c.Backend == "" {
		c.Backend = core.Auto
	}
	if c.FusionBytes == 0 {
		c.FusionBytes = 2 << 20
	}
	if c.PollOverhead == 0 {
		c.PollOverhead = 240 * time.Microsecond
		if c.System == "mri" {
			// ROCm-era Horovod completion polling (hipEvent queries on a
			// busy background thread) was far costlier than CUDA's.
			c.PollOverhead = 1100 * time.Microsecond
		}
	}
	if c.CoordOverhead == 0 {
		c.CoordOverhead = 240 * time.Microsecond
	}
	if c.Partitions == 0 {
		c.Partitions = 4
	}
}

// Report summarizes a training run.
type Report struct {
	// ImgPerSec is aggregate cluster throughput.
	ImgPerSec float64
	// StepTime is the average measured step duration.
	StepTime time.Duration
	// Ranks and BatchSize echo the run shape.
	Ranks, BatchSize int
	// Buckets is the fused-allreduce count per step.
	Buckets int
}

// gradEngine is the per-rank allreduce entry point.
type gradEngine interface {
	allreduce(send, recv *device.Buffer, count int)
	barrier()
	proc() *sim.Proc
	dev() *device.Device
}

// defaultShards is the package-wide shard count applied when Config.Shards
// is zero; the xcclbench -shards flag sets it via SetDefaultShards.
var defaultShards = 1

// SetDefaultShards sets the engine shard count used by configs that leave
// Shards unset. Call before Train/TrainElastic.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

// adoptShards moves an exhibit world onto a windowed sharded engine when
// shards > 1: k becomes shard 0 and k.Run() delegates to the engine, so
// downstream code is unchanged. Lookahead is the inter-node α, as for any
// node-aligned partition of the topology.
func adoptShards(k *sim.Kernel, sys *topology.System, shards int) {
	if shards > 1 {
		sim.Adopt(k, shards, sys.Inter.Alpha)
	}
}

// Train runs the synchronous data-parallel training loop and reports
// throughput in virtual time.
func Train(cfg Config) (Report, error) {
	cfg.fillDefaults()
	k := sim.NewKernel()
	sys, err := topology.Preset(k, cfg.System, cfg.Nodes)
	if err != nil {
		return Report{}, err
	}
	adoptShards(k, sys, cfg.Shards)
	fab := fabric.New(k, sys)
	nranks := cfg.Ranks
	if nranks == 0 {
		nranks = sys.NumDevices()
	}
	buckets := FuseBuckets(cfg.Model.Tensors, cfg.FusionBytes)
	var maxBucket int64
	for _, b := range buckets {
		if b.Bytes > maxBucket {
			maxBucket = b.Bytes
		}
	}
	// Fusion-buffer fill levels: how much of the FusionBytes budget each
	// fused bucket actually carries (ratio in [0,1]; a low tail means the
	// threshold is oversized for this model's gradient inventory).
	fillHist := cfg.Metrics.Histogram("dl_fusion_fill_ratio",
		"Fusion-buffer fill level per fused bucket (bucket bytes / fusion threshold).",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1},
		metrics.Labels{"model": cfg.Model.Name, "engine": string(cfg.Engine)})
	for _, b := range buckets {
		fillHist.Observe(float64(b.Bytes) / float64(cfg.FusionBytes))
	}
	allreduceHist := cfg.Metrics.Histogram("dl_allreduce_latency_seconds",
		"Per-fused-bucket allreduce virtual latency (rank 0).",
		metrics.LatencyBuckets(), metrics.Labels{"engine": string(cfg.Engine)})
	stepHist := cfg.Metrics.Histogram("dl_step_seconds",
		"Training-step virtual duration (rank 0, warmup excluded).",
		[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5},
		metrics.Labels{"engine": string(cfg.Engine)})
	rate := computeRate(sys.Device(0).Kind)
	computeTime := time.Duration(float64(cfg.BatchSize) / rate * float64(time.Second))

	var stepTimes []time.Duration
	persistent := cfg.Persistent && cfg.Engine == EngineXCCL
	body := func(ge gradEngine) {
		if persistent {
			xe := ge.(*xcclEngine)
			// Only rank 0 measures; adopt its non-empty result rather than
			// assigning unconditionally, or the last rank to finish would
			// overwrite the shared slice with its own empty one.
			if st := trainPersistent(&cfg, xe, buckets, computeTime,
				allreduceHist, stepHist); len(st) > 0 {
				stepTimes = st
			}
			return
		}
		// Horovod allreduces gradients in place (send == recv).
		grad := ge.dev().MustMalloc(maxBucket)
		p := ge.proc()
		for step := 0; step < cfg.Steps+1; step++ {
			start := p.Now()
			// Forward + backward compute.
			p.Sleep(computeTime)
			// Gradient exchange, bucket by bucket in production order.
			measured := step > 0 && ge.dev().ID == 0 // rank 0, after warmup
			for _, b := range buckets {
				p.Sleep(cfg.CoordOverhead)
				bucket := grad.Slice(0, b.Bytes)
				arStart := p.Now()
				ge.allreduce(bucket, bucket, int(b.Bytes/4))
				if measured {
					metrics.StartTimer(allreduceHist, arStart).Stop(p.Now())
				}
			}
			ge.barrier()
			if measured {
				stepTimes = append(stepTimes, p.Now()-start)
				metrics.StartTimer(stepHist, start).Stop(p.Now())
			}
		}
	}

	if err := launch(&cfg, k, sys, fab, nranks, body); err != nil {
		return Report{}, err
	}
	var total time.Duration
	for _, st := range stepTimes {
		total += st
	}
	if len(stepTimes) == 0 {
		return Report{}, fmt.Errorf("dl: no steps measured")
	}
	avg := total / time.Duration(len(stepTimes))
	imgs := float64(cfg.BatchSize*nranks) / avg.Seconds()
	return Report{
		ImgPerSec: imgs, StepTime: avg,
		Ranks: nranks, BatchSize: cfg.BatchSize, Buckets: len(buckets),
	}, nil
}

// trainPersistent is the EngineXCCL hot loop on persistent handles: one
// partitioned allreduce handle per fusion bucket, built (with Horovod's
// per-op negotiation) before the first step. Gradient production is
// modeled as spread uniformly across the step's compute time; each
// partition is marked ready (MPI_Pready) the moment backprop would have
// filled it, so the collective consumes partitions while later ones are
// still being computed, and the handles are drained in production order
// at the end of the step. The buckets live at distinct offsets of one
// fusion arena because every bucket's exchange is in flight at once.
// Returns this rank's measured step times (empty except on rank 0).
func trainPersistent(cfg *Config, xe *xcclEngine, buckets []Bucket,
	computeTime time.Duration, allreduceHist, stepHist *metrics.Histogram,
) []time.Duration {
	var stepTimes []time.Duration
	x := xe.x
	p := x.MPI().Proc()
	var total int64
	offs := make([]int64, len(buckets))
	for i, b := range buckets {
		offs[i] = total
		total += b.Bytes
	}
	arena := x.Device().MustMalloc(total)
	handles := make([]*core.PersistentOp, len(buckets))
	slices := 0
	for i, b := range buckets {
		// The negotiation Horovod pays per op per step becomes a one-time
		// Init cost.
		p.Sleep(cfg.CoordOverhead)
		buf := arena.Slice(offs[i], b.Bytes)
		h, err := x.AllReduceInitPartitioned(buf, buf, int(b.Bytes/4),
			mpi.Float32, mpi.OpSum, cfg.Partitions)
		if err != nil {
			panic(fmt.Sprintf("dl: persistent init: %v", err))
		}
		handles[i] = h
		slices += h.Parts()
	}
	defer func() {
		for _, h := range handles {
			h.Free()
		}
	}()
	for step := 0; step < cfg.Steps+1; step++ {
		start := p.Now()
		measured := step > 0 && x.Device().ID == 0
		for _, h := range handles {
			if err := h.Start(); err != nil {
				panic(fmt.Sprintf("dl: persistent start: %v", err))
			}
		}
		// Forward + backward compute, with per-partition readiness
		// signaled as the gradients are produced (cumulative division, so
		// the slices sum to computeTime exactly).
		var done time.Duration
		idx := 0
		for _, h := range handles {
			for k := 0; k < h.Parts(); k++ {
				idx++
				target := computeTime * time.Duration(idx) / time.Duration(slices)
				p.Sleep(target - done)
				done = target
				h.Pready(k)
			}
		}
		for i, h := range handles {
			arStart := p.Now()
			if err := h.Wait(); err != nil {
				panic(fmt.Sprintf("dl: persistent wait (bucket %d): %v", i, err))
			}
			if measured {
				metrics.StartTimer(allreduceHist, arStart).Stop(p.Now())
			}
		}
		xe.barrier()
		if measured {
			stepTimes = append(stepTimes, p.Now()-start)
			metrics.StartTimer(stepHist, start).Stop(p.Now())
		}
	}
	return stepTimes
}

// launch builds the engine-specific world and runs body on every rank.
func launch(cfg *Config, k *sim.Kernel, sys *topology.System, fab *fabric.Fabric, nranks int, body func(ge gradEngine)) error {
	switch cfg.Engine {
	case EngineXCCL:
		job := mpi.NewJobOnSystem(fab, mpi.MVAPICHProfile(), sys, nranks)
		rt, err := core.NewRuntime(job, core.Options{Backend: cfg.Backend, Mode: core.Hybrid,
			Table: cfg.Table, Metrics: cfg.Metrics, Compile: cfg.Compile})
		if err != nil {
			return err
		}
		return rt.Run(func(x *core.Comm) { body(&xcclEngine{x: x}) })
	case EngineOpenMPI:
		job := baseline.NewOpenMPIJob(fab, sys, nranks)
		job.SetMetrics(cfg.Metrics)
		return job.Run(func(c *mpi.Comm) { body(&mpiEngine{c: c}) })
	case EngineUCC:
		job := baseline.NewOpenMPIJob(fab, sys, nranks)
		job.SetMetrics(cfg.Metrics)
		ucc := baseline.NewUCC(job)
		return ucc.Run(func(x *baseline.Comm) { body(&uccEngine{x: x}) })
	case EnginePureCCL:
		kind, err := core.ResolveBackend(cfg.Backend, sys.Device(0).Kind)
		if err != nil {
			return err
		}
		comms, err := core.NewBackendComms(kind, fab, sys.Devices()[:nranks])
		if err != nil {
			return err
		}
		if cfg.Metrics != nil {
			comms[0].SetMetrics(cfg.Metrics)
		}
		bar := sim.NewBarrier(k, nranks)
		for r := 0; r < nranks; r++ {
			cc := comms[r]
			k.Spawn(fmt.Sprintf("worker%d", r), func(p *sim.Proc) {
				body(&cclEngine{cc: cc, s: cc.Device().NewStream(), p: p, bar: bar,
					poll: cfg.PollOverhead})
			})
		}
		return k.Run()
	default:
		return fmt.Errorf("dl: unknown engine %q", cfg.Engine)
	}
}

type xcclEngine struct{ x *core.Comm }

func (e *xcclEngine) allreduce(send, recv *device.Buffer, count int) {
	e.x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
}
func (e *xcclEngine) barrier()            { e.x.Barrier() }
func (e *xcclEngine) proc() *sim.Proc     { return e.x.MPI().Proc() }
func (e *xcclEngine) dev() *device.Device { return e.x.Device() }

type mpiEngine struct{ c *mpi.Comm }

func (e *mpiEngine) allreduce(send, recv *device.Buffer, count int) {
	e.c.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
}
func (e *mpiEngine) barrier()            { e.c.Barrier() }
func (e *mpiEngine) proc() *sim.Proc     { return e.c.Proc() }
func (e *mpiEngine) dev() *device.Device { return e.c.Device() }

type uccEngine struct{ x *baseline.Comm }

func (e *uccEngine) allreduce(send, recv *device.Buffer, count int) {
	e.x.Allreduce(send, recv, count, mpi.Float32, mpi.OpSum)
}
func (e *uccEngine) barrier()            { e.x.Barrier() }
func (e *uccEngine) proc() *sim.Proc     { return e.x.MPI().Proc() }
func (e *uccEngine) dev() *device.Device { return e.x.Device() }

type cclEngine struct {
	cc   *ccl.Comm
	s    *device.Stream
	p    *sim.Proc
	bar  *sim.Barrier
	poll time.Duration
}

func (e *cclEngine) allreduce(send, recv *device.Buffer, count int) {
	if err := e.cc.AllReduce(send, recv, count, ccl.Float32, ccl.Sum, e.s); err != nil {
		panic(err)
	}
	e.s.Synchronize(e.p)
	// Horovod's background thread polls the CCL event and re-enters the
	// framework per fused op.
	e.p.Sleep(e.poll)
}
func (e *cclEngine) barrier()            { e.bar.Wait(e.p) }
func (e *cclEngine) proc() *sim.Proc     { return e.p }
func (e *cclEngine) dev() *device.Device { return e.cc.Device() }
