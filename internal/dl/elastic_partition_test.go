package dl

import (
	"math"
	"testing"
	"time"

	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
)

// The full partition arc on a 2-node, 12-rank job: a time-windowed cut
// severs node 1 (ranks 8-11) mid-training, the 8-rank majority
// quorum-shrinks and keeps stepping, the fenced minority waits out the
// cut and rejoins through Grow with a checkpoint restore, and the run
// finishes at full width. Checkpoints are suppressed while shrunk and
// the regrow rolls the majority back to the pre-cut checkpoint, so the
// final loss is exactly the fault-free run's — the partition cost time,
// not examples.
func TestTrainElasticPartitionHealsToFullLoss(t *testing.T) {
	base := Config{
		System: "thetagpu", Nodes: 2, Ranks: 12, Model: tinyModel(),
		Steps: 6, CheckpointEvery: 2,
	}
	shadow := base
	want, err := TrainElastic(shadow)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	cfg := base
	cfg.Metrics = reg
	// Steps run ~37ms of virtual time each (batch 32 at the A100 rate), so
	// the cut opens during step 3 — after the step-2 checkpoint — and
	// heals during step 5 of the shrunken majority's replay.
	cut, heal := 80*time.Millisecond, 150*time.Millisecond
	cfg.Faults = fault.NewPlan(7).AddPartitionRule(fault.PartitionRule{
		Name: "cut-node1", Nodes: []int{1}, From: cut, Until: heal,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartRanks != 12 || rep.FinalRanks != 12 {
		t.Errorf("ranks %d -> %d, want 12 -> 12 (healed to full width)", rep.StartRanks, rep.FinalRanks)
	}
	if len(rep.CrashedRanks) != 0 {
		t.Errorf("CrashedRanks = %v, want none (a severed rank is alive)", rep.CrashedRanks)
	}
	if rep.Partitions != 1 {
		t.Errorf("Partitions = %d, want 1", rep.Partitions)
	}
	if rep.FencedRanks != 4 {
		t.Errorf("FencedRanks = %d, want 4 (all of node 1)", rep.FencedRanks)
	}
	if rep.Shrinks != 1 {
		t.Errorf("Shrinks = %d, want 1", rep.Shrinks)
	}
	if rep.Grows < 1 {
		t.Errorf("Grows = %d, want >= 1 (the rejoin)", rep.Grows)
	}
	if rep.Epoch != rep.Shrinks+rep.Grows {
		t.Errorf("Epoch = %d, want Shrinks+Grows = %d", rep.Epoch, rep.Shrinks+rep.Grows)
	}
	if len(rep.AdoptedRanks) != 4 {
		t.Errorf("AdoptedRanks = %v, want the 4 rejoined ranks", rep.AdoptedRanks)
	}
	if rep.RollbackSteps == 0 {
		t.Error("RollbackSteps = 0, want > 0 (shrunk-width steps are replayed)")
	}
	// The partition must cost time, not examples: the recorder replays the
	// rolled-back steps (longer Loss trace) but the final loss — a pure
	// function of cumulative examples — matches the fault-free shadow.
	if len(rep.Loss) <= len(want.Loss) {
		t.Errorf("len(Loss) = %d, want > %d (replayed steps appear twice)", len(rep.Loss), len(want.Loss))
	}
	got, fwant := rep.Loss[len(rep.Loss)-1], want.Loss[len(want.Loss)-1]
	if math.Abs(got-fwant) > 1e-12 {
		t.Errorf("final loss = %v, shadow %v", got, fwant)
	}
	for key, min := range map[string]float64{
		"xccl_partitions_total":   1,
		"xccl_fenced_ranks_total": 4,
	} {
		if v, ok := reg.CounterValue(key, metrics.Labels{"backend": "nccl"}); !ok || v < min {
			t.Errorf("%s = %v (exists %v), want >= %v", key, v, ok, min)
		}
	}
}

// A cut that never heals degrades gracefully: the majority finishes the
// run at the shrunken width (its Grow polls keep returning ErrNoSpares),
// and the fenced minority exits when the job drains — no deadlock.
func TestTrainElasticPartitionPermanentCutShrinks(t *testing.T) {
	cfg := Config{
		System: "thetagpu", Nodes: 2, Ranks: 12, Model: tinyModel(),
		Steps: 6, CheckpointEvery: 2,
	}
	cfg.Faults = fault.NewPlan(7).AddPartitionRule(fault.PartitionRule{
		Name: "cut-node1", Nodes: []int{1}, From: 80 * time.Millisecond,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartRanks != 12 || rep.FinalRanks != 8 {
		t.Errorf("ranks %d -> %d, want 12 -> 8 (majority trains on)", rep.StartRanks, rep.FinalRanks)
	}
	if rep.Partitions != 1 || rep.FencedRanks != 4 || rep.Grows != 0 {
		t.Errorf("Partitions, FencedRanks, Grows = %d, %d, %d; want 1, 4, 0",
			rep.Partitions, rep.FencedRanks, rep.Grows)
	}
}

// Determinism under partitions: same config + same fault plan = same
// report, including the membership verdicts and the loss trace.
func TestTrainElasticPartitionDeterministic(t *testing.T) {
	run := func() ElasticReport {
		cfg := Config{
			System: "thetagpu", Nodes: 2, Ranks: 12, Model: tinyModel(),
			Steps: 6, CheckpointEvery: 2,
		}
		cfg.Faults = fault.NewPlan(7).AddPartitionRule(fault.PartitionRule{
			Name: "cut-node1", Nodes: []int{1},
			From: 80 * time.Millisecond, Until: 150 * time.Millisecond,
		})
		rep, err := TrainElastic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Partitions != b.Partitions || a.FencedRanks != b.FencedRanks || a.Epoch != b.Epoch {
		t.Errorf("membership verdicts diverged: %+v vs %+v", a, b)
	}
	if len(a.Loss) != len(b.Loss) {
		t.Fatalf("len(Loss) diverged: %d vs %d", len(a.Loss), len(b.Loss))
	}
	for i := range a.Loss {
		if a.Loss[i] != b.Loss[i] {
			t.Fatalf("Loss[%d] diverged: %v vs %v", i, a.Loss[i], b.Loss[i])
		}
	}
	for i := range a.StepLatency {
		if a.StepLatency[i] != b.StepLatency[i] {
			t.Fatalf("StepLatency[%d] diverged: %v vs %v", i, a.StepLatency[i], b.StepLatency[i])
		}
	}
}
