package dl

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mpixccl/internal/core"
	"mpixccl/internal/device"
	"mpixccl/internal/fabric"
	"mpixccl/internal/metrics"
	"mpixccl/internal/mpi"
	"mpixccl/internal/sim"
	"mpixccl/internal/topology"
)

// ckptBandwidth is the sustained device-to-host serialization rate a
// checkpoint pays (NVMe-backed host staging, ~12 GB/s).
const ckptBandwidth = 12 << 30

// CheckpointTime returns the virtual time one synchronous checkpoint of
// model m costs (write and restore pay the same serialization).
// Exhibits use it to place fault windows relative to step boundaries.
func CheckpointTime(m *Model) time.Duration {
	return time.Duration(float64(m.Params()*4) / ckptBandwidth * float64(time.Second))
}

// ElasticReport extends Report with the fail-stop recovery outcome of one
// TrainElastic run.
type ElasticReport struct {
	Report
	// StartRanks and FinalRanks are the worker counts before the first
	// step and after the last (without spares they differ by the crashed
	// ranks; with spares a successful Grow restores the original width).
	StartRanks, FinalRanks int
	// CrashedRanks lists the world ranks that fail-stopped.
	CrashedRanks []int
	// Shrinks counts completed communicator shrinks.
	Shrinks int
	// Grows counts completed spare-rank communicator grows.
	Grows int
	// AdoptedRanks lists the spare world ranks adopted by Grows, in
	// adoption order.
	AdoptedRanks []int
	// SuspectedAt maps world ranks the heartbeat detector confirmed dead
	// to the virtual time of suspicion (nil when the detector is off).
	SuspectedAt map[int]time.Duration
	// Partitions counts handled network-partition episodes (quorum shrinks
	// that excluded alive-but-unreachable ranks).
	Partitions int
	// FencedRanks counts ranks that fenced themselves on the minority side
	// of a partition (cumulative; they clear the fence when they rejoin).
	FencedRanks int
	// Epoch is the final membership epoch: completed shrinks plus grows.
	Epoch int
	// RollbackSteps is the total training steps re-executed after
	// rollbacks to the last checkpoint.
	RollbackSteps int
	// Checkpoints counts checkpoints taken (recorder rank's view).
	Checkpoints int
	// StepLatency is the recorder rank's per-executed-step wall time, in
	// execution order — re-executed steps appear again, so a crashed run
	// shows the rollback as repeated entries.
	StepLatency []time.Duration
	// Loss is the recorder rank's loss after each executed step: a
	// deterministic function of cumulative examples seen, so rollback and
	// the shrunken world are visible as a replayed, slower-improving tail.
	Loss []float64
}

// lossAfter is the deterministic stand-in loss curve: purely a function of
// cumulative examples contributed to the model, so two runs that process
// the same example count — regardless of crashes and rollbacks — report
// the same loss.
func lossAfter(examples int64) float64 {
	return 8 / math.Sqrt(1+float64(examples)/1000)
}

// TrainElastic runs the synchronous data-parallel loop with fail-stop
// recovery: gradients ride the xCCL layer's CCL path with the collective
// watchdog armed, periodic checkpoints bound the work a crash can destroy,
// and when a rank fail-stops mid-step the survivors revoke the
// communicator, shrink to a new one (ULFM-style), roll back to the last
// checkpoint, and continue training on the smaller world. The run is
// deterministic: same config + same fault plan = same report.
//
// With Config.Spares > 0 the run recovers to full width instead: the job
// launches extra ranks that park in the runtime's spare pool, the
// heartbeat failure detector (armed by default alongside spares) catches
// crashes in a few intervals, and after the Shrink the survivors Grow the
// communicator back by adopting spares, which restore their replica from
// the last checkpoint before joining. A recovered run processes exactly
// the examples a fault-free one does, so the final loss matches.
//
// The engine is the xCCL runtime in PureCCL mode — recovery needs every
// gradient exchange on the watchdog-guarded CCL path, since an MPI
// collective would block forever on the dead peer.
func TrainElastic(cfg Config) (ElasticReport, error) {
	cfg.fillDefaults()
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2
	}
	pol := cfg.Resilience
	if pol == nil {
		pol = core.DefaultResilience()
		pol.WatchdogTimeout = 2 * time.Millisecond
		if cfg.Spares > 0 {
			// Proactive detection: heartbeats a few times faster than the
			// watchdog, so the detector confirms a crash well before a
			// blocked collective would time out.
			pol.HeartbeatInterval = pol.WatchdogTimeout / 8
		}
	}
	k := sim.NewKernel()
	sys, err := topology.Preset(k, cfg.System, cfg.Nodes)
	if err != nil {
		return ElasticReport{}, err
	}
	adoptShards(k, sys, cfg.Shards)
	fab := fabric.New(k, sys)
	if cfg.Faults != nil {
		fab.SetFaults(cfg.Faults)
	}
	nranks := cfg.Ranks
	if nranks == 0 {
		nranks = sys.NumDevices() - cfg.Spares
	}
	if nranks <= 0 {
		return ElasticReport{}, fmt.Errorf("dl: no active ranks left after %d spares on %d devices", cfg.Spares, sys.NumDevices())
	}
	nprocs := nranks + cfg.Spares
	if nprocs > sys.NumDevices() {
		return ElasticReport{}, fmt.Errorf("dl: %d ranks + %d spares exceed the %d devices of %s", nranks, cfg.Spares, sys.NumDevices(), cfg.System)
	}
	buckets := FuseBuckets(cfg.Model.Tensors, cfg.FusionBytes)
	var maxBucket int64
	for _, b := range buckets {
		if b.Bytes > maxBucket {
			maxBucket = b.Bytes
		}
	}
	ckptTime := CheckpointTime(cfg.Model)
	rate := computeRate(sys.Device(0).Kind)
	computeTime := time.Duration(float64(cfg.BatchSize) / rate * float64(time.Second))

	job := mpi.NewJobOnSystem(fab, mpi.MVAPICHProfile(), sys, nprocs)
	rt, err := core.NewRuntime(job, core.Options{
		Backend: cfg.Backend, Mode: core.PureCCL, Metrics: cfg.Metrics, Resilience: pol,
	})
	if err != nil {
		return ElasticReport{}, err
	}
	rollbackCtr := cfg.Metrics.Counter("xccl_rollback_steps_total",
		"Training steps re-executed after rollback to the last checkpoint.",
		metrics.Labels{"model": cfg.Model.Name})

	rep := ElasticReport{StartRanks: nranks}
	rep.Ranks, rep.BatchSize, rep.Buckets = nranks, cfg.BatchSize, len(buckets)
	// Partition-aware mode: when the fault plan can cut the network, the
	// loop adds the heal-and-rejoin arc — the fenced minority re-enters
	// through the spare pool after the heal, and the majority polls Grow
	// each step while below full width. Without partition rules every
	// branch below is dead code and the loop is byte-identical to before.
	partAware := rt.HasPartitions()
	// ckpt is the checkpoint store's view of training progress, written by
	// every worker at each (synchronous, globally consistent) checkpoint.
	// Adopted spares restore from it before joining the grown world.
	var ckpt struct {
		step     int
		examples int64
	}
	if err := rt.Run(func(x *core.Comm) {
		p := x.MPI().Proc()
		step := 0
		var examples, examplesAtCkpt int64
		lastCkpt := 0
		if cfg.Spares > 0 {
			if x.MPI().Rank() >= nranks {
				// Spare: park until a Grow adopts this rank. Restoring the
				// replica pays one checkpoint read (same serialization cost
				// as a write) before the join completes, and resumes the
				// training state the checkpoint froze.
				nx, adopted := x.WaitAsSpare(func() {
					p.Sleep(ckptTime)
					step, examples = ckpt.step, ckpt.examples
					lastCkpt, examplesAtCkpt = step, examples
				})
				if !adopted {
					return
				}
				x = nx
				p = x.MPI().Proc()
			} else {
				// Active ranks narrow to their own communicator: a world
				// collective would wait forever on the parked spares.
				active := make([]int, nranks)
				for i := range active {
					active[i] = i
				}
				x = rt.Wrap(x.MPI().Subset(active))
				p = x.MPI().Proc()
			}
		}
		grad := x.Device().MustMalloc(maxBucket)
		defer grad.Free()
		// Persistent mode: one handle per fusion bucket, rebuilt on the
		// survivor communicator after every Shrink (handles are bound to
		// the communicator their Init rendezvoused on; a shrink breaks
		// them permanently). Buckets get distinct arena offsets because
		// re-Init must see stable, non-aliased buffers.
		var handles []*core.PersistentOp
		var arena *device.Buffer
		buildHandles := func() {
			var total int64
			for _, b := range buckets {
				total += b.Bytes
			}
			if arena == nil {
				arena = x.Device().MustMalloc(total)
			}
			handles = handles[:0]
			var off int64
			for _, b := range buckets {
				p.Sleep(cfg.CoordOverhead)
				buf := arena.Slice(off, b.Bytes)
				off += b.Bytes
				h, err := x.AllReduceInitPartitioned(buf, buf, int(b.Bytes/4),
					mpi.Float32, mpi.OpSum, cfg.Partitions)
				if err != nil {
					panic(fmt.Sprintf("dl: persistent init: %v", err))
				}
				handles = append(handles, h)
			}
		}
		if cfg.Persistent {
			buildHandles()
		}
		for step < cfg.Steps {
			if partAware && x.Size() < nranks {
				// Below full width after a quorum shrink: poll Grow once per
				// step until the fenced minority has rejoined the spare pool.
				// Every member calls Grow each round and ErrNoSpares is a
				// shared verdict, so the rounds stay in lockstep. On success
				// everyone rolls back to the pre-cut checkpoint — the state
				// the rejoiners restored — so the merged world is consistent
				// and the examples trajectory matches a fault-free run.
				gx, adopted, gerr := x.Grow(nranks - x.Size())
				if gerr == nil {
					x = gx
					p = x.MPI().Proc()
					if x.Rank() == 0 {
						rep.AdoptedRanks = append(rep.AdoptedRanks, adopted...)
						rep.RollbackSteps += step - lastCkpt
						rollbackCtr.Add(float64(step - lastCkpt))
					}
					step = lastCkpt
					examples = examplesAtCkpt
					if cfg.Persistent {
						buildHandles()
					}
				} else if !errors.Is(gerr, core.ErrNoSpares) {
					panic(fmt.Sprintf("dl: regrow after partition failed: %v", gerr))
				}
			}
			start := p.Now()
			p.Sleep(computeTime)
			if cfg.Persistent {
				for _, h := range handles {
					if h.Do() != nil || x.Failure() != nil {
						break
					}
				}
			} else {
				for _, b := range buckets {
					p.Sleep(cfg.CoordOverhead)
					bucket := grad.Slice(0, b.Bytes)
					x.Allreduce(bucket, bucket, int(b.Bytes/4), mpi.Float32, mpi.OpSum)
					if x.Failure() != nil {
						break
					}
				}
			}
			if x.Failure() != nil {
				if x.Dead() {
					// This rank is the casualty: record and exit; the
					// survivors shrink around it.
					rep.CrashedRanks = append(rep.CrashedRanks, x.MPI().WorldRank())
					return
				}
				nx, serr := x.Shrink() // implies the revoke
				if errors.Is(serr, core.ErrNoQuorum) {
					// Minority side of a network partition: this rank is
					// fenced. Wait out the cut, restore the pre-cut
					// checkpoint (the majority suppresses checkpoints while
					// shrunk, so the store still holds it), and re-enter
					// through the majority's Grow rendezvous.
					gx, ok := x.Rejoin(func() {
						p.Sleep(ckptTime)
						step, examples = ckpt.step, ckpt.examples
						lastCkpt, examplesAtCkpt = step, examples
					})
					if !ok {
						// The cut never heals (or the job drained): this
						// rank's training is over.
						return
					}
					x = gx
					p = x.MPI().Proc()
					if cfg.Persistent {
						buildHandles()
					}
					continue
				}
				if serr != nil {
					panic(fmt.Sprintf("dl: shrink failed: %v", serr))
				}
				x = nx
				p = x.MPI().Proc()
				if cfg.Spares > 0 && x.Size() < nranks {
					// Recover to full width: adopt spares for the lost
					// ranks. An exhausted pool is not fatal — training
					// continues at the shrunk width, like the no-spare mode.
					gx, adopted, gerr := x.Grow(nranks - x.Size())
					if gerr == nil {
						x = gx
						p = x.MPI().Proc()
						if x.Rank() == 0 {
							rep.AdoptedRanks = append(rep.AdoptedRanks, adopted...)
						}
					} else if !errors.Is(gerr, core.ErrNoSpares) {
						panic(fmt.Sprintf("dl: grow failed: %v", gerr))
					}
				}
				if cfg.Persistent {
					// The old handles died with the revoked communicator;
					// re-Init on the survivors (same bucket plan, same
					// arena, fresh CCL communicator and schedules).
					buildHandles()
				}
				if x.Rank() == 0 {
					rep.RollbackSteps += step - lastCkpt
					rollbackCtr.Add(float64(step - lastCkpt))
				}
				step = lastCkpt
				examples = examplesAtCkpt
				continue
			}
			step++
			examples += int64(x.Size()) * int64(cfg.BatchSize)
			if x.Rank() == 0 {
				rep.StepLatency = append(rep.StepLatency, p.Now()-start)
				rep.Loss = append(rep.Loss, lossAfter(examples))
			}
			if step%cfg.CheckpointEvery == 0 && step < cfg.Steps &&
				!(partAware && x.Size() < nranks) {
				// Synchronous checkpoint: every worker serializes its
				// replica to host storage before the next step. While the
				// world is shrunk by a partition the checkpoint is
				// suppressed: the store must keep the pre-cut state the
				// fenced minority will restore from, and the regrow rolls
				// the majority back to that same point.
				p.Sleep(ckptTime)
				lastCkpt, examplesAtCkpt = step, examples
				ckpt.step, ckpt.examples = step, examples
				if x.Rank() == 0 {
					rep.Checkpoints++
				}
			}
		}
		if x.Rank() == 0 {
			rep.FinalRanks = x.Size()
		}
	}); err != nil {
		return ElasticReport{}, err
	}
	if len(rep.StepLatency) == 0 {
		return ElasticReport{}, fmt.Errorf("dl: no steps completed")
	}
	var total time.Duration
	for _, st := range rep.StepLatency {
		total += st
	}
	rep.StepTime = total / time.Duration(len(rep.StepLatency))
	rep.Shrinks = rt.Stats().Shrinks
	rep.Grows = rt.Stats().Grows
	rep.Partitions = rt.Stats().Partitions
	rep.FencedRanks = rt.Stats().FencedRanks
	rep.Epoch = rt.Stats().Epoch
	rep.SuspectedAt = rt.Suspected()
	rep.ImgPerSec = float64(cfg.BatchSize*rep.FinalRanks) / rep.StepTime.Seconds()
	return rep, nil
}
