// Package dl simulates the paper's application-level evaluation:
// TensorFlow + Horovod synchronous data-parallel training (§4.4). A Model
// describes a network's gradient tensors; the Trainer runs training steps
// where each rank computes forward/backward in virtual time and then
// allreduces gradients through one of the evaluated communication engines
// (the proposed xCCL designs, the raw vendor CCL as Horovod drives it, or
// the Open MPI baselines), reporting images/second.
package dl

import "fmt"

// Tensor is one gradient tensor (float32 elements).
type Tensor struct {
	// Name identifies the layer parameter.
	Name string
	// Elems is the element count.
	Elems int64
}

// Bytes returns the tensor's gradient payload size.
func (t Tensor) Bytes() int64 { return t.Elems * 4 }

// Model is a neural network's trainable-parameter inventory, in backward
// (gradient production) order.
type Model struct {
	// Name labels the model.
	Name string
	// Tensors lists gradients in the order backprop produces them
	// (output layers first).
	Tensors []Tensor
}

// Params returns the total parameter count.
func (m *Model) Params() int64 {
	var sum int64
	for _, t := range m.Tensors {
		sum += t.Elems
	}
	return sum
}

// GradBytes returns the total per-step gradient traffic per rank.
func (m *Model) GradBytes() int64 { return m.Params() * 4 }

// ResNet50 builds the standard ResNet-50 v1 parameter inventory: conv stem,
// four bottleneck stages of [3,4,6,3] blocks, and the 1000-way classifier —
// about 25.6M parameters across 161 tensors, matching the network the
// paper's Horovod benchmark trains.
func ResNet50() *Model {
	m := &Model{Name: "resnet50"}
	add := func(name string, elems int64) {
		m.Tensors = append(m.Tensors, Tensor{Name: name, Elems: elems})
	}
	conv := func(name string, kh, kw, cin, cout int64) {
		add(name+"/kernel", kh*kw*cin*cout)
		add(name+"/bn_gamma", cout)
		add(name+"/bn_beta", cout)
	}
	// Built forward, then reversed into backprop order.
	conv("conv1", 7, 7, 3, 64)
	stages := []struct {
		blocks     int
		width, out int64
	}{
		{3, 64, 256}, {4, 128, 512}, {6, 256, 1024}, {3, 512, 2048},
	}
	cin := int64(64)
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			prefix := fmt.Sprintf("stage%d/block%d", si+1, b)
			conv(prefix+"/conv1", 1, 1, cin, st.width)
			conv(prefix+"/conv2", 3, 3, st.width, st.width)
			conv(prefix+"/conv3", 1, 1, st.width, st.out)
			if b == 0 {
				conv(prefix+"/downsample", 1, 1, cin, st.out)
			}
			cin = st.out
		}
	}
	add("fc/kernel", 2048*1000)
	add("fc/bias", 1000)
	// Reverse into gradient production order.
	for i, j := 0, len(m.Tensors)-1; i < j; i, j = i+1, j-1 {
		m.Tensors[i], m.Tensors[j] = m.Tensors[j], m.Tensors[i]
	}
	return m
}

// Bucket is a Horovod fusion buffer: consecutive gradients fused into one
// allreduce.
type Bucket struct {
	// Tensors are the fused members.
	Tensors []Tensor
	// Bytes is the fused payload.
	Bytes int64
}

// FuseBuckets greedily packs tensors (in production order) into buckets of
// at most fusionBytes, Horovod's tensor-fusion behaviour. Tensors larger
// than the threshold travel alone.
func FuseBuckets(tensors []Tensor, fusionBytes int64) []Bucket {
	if fusionBytes <= 0 {
		fusionBytes = 1
	}
	var out []Bucket
	var cur Bucket
	for _, t := range tensors {
		b := t.Bytes()
		if cur.Bytes > 0 && cur.Bytes+b > fusionBytes {
			out = append(out, cur)
			cur = Bucket{}
		}
		cur.Tensors = append(cur.Tensors, t)
		cur.Bytes += b
	}
	if cur.Bytes > 0 {
		out = append(out, cur)
	}
	return out
}
