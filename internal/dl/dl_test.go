package dl

import (
	"testing"

	"mpixccl/internal/core"
)

func TestResNet50Inventory(t *testing.T) {
	m := ResNet50()
	params := m.Params()
	// Canonical ResNet-50 has ≈25.6M parameters.
	if params < 25_000_000 || params > 26_200_000 {
		t.Fatalf("params = %d, want ≈25.6M", params)
	}
	if len(m.Tensors) < 150 || len(m.Tensors) > 175 {
		t.Fatalf("tensor count = %d, want ≈161", len(m.Tensors))
	}
	// Backprop order: the classifier gradients come first.
	if m.Tensors[0].Name != "fc/bias" {
		t.Fatalf("first tensor = %s, want fc/bias", m.Tensors[0].Name)
	}
	if m.Tensors[len(m.Tensors)-1].Name != "conv1/kernel" {
		t.Fatalf("last tensor = %s, want conv1/kernel", m.Tensors[len(m.Tensors)-1].Name)
	}
}

func TestFuseBuckets(t *testing.T) {
	tensors := []Tensor{{"a", 100}, {"b", 100}, {"c", 300}, {"d", 50}}
	buckets := FuseBuckets(tensors, 900) // bytes: 400,400,1200,200
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	if len(buckets[0].Tensors) != 2 || buckets[0].Bytes != 800 {
		t.Fatalf("bucket 0 = %+v", buckets[0])
	}
	if len(buckets[1].Tensors) != 1 || buckets[1].Bytes != 1200 {
		t.Fatalf("oversized tensor should travel alone: %+v", buckets[1])
	}
	if buckets[2].Bytes != 200 {
		t.Fatalf("bucket 2 = %+v", buckets[2])
	}
	// Every tensor appears exactly once.
	total := 0
	for _, b := range buckets {
		total += len(b.Tensors)
	}
	if total != len(tensors) {
		t.Fatalf("fused %d tensors, want %d", total, len(tensors))
	}
}

func TestFuseBucketsDegenerate(t *testing.T) {
	if got := FuseBuckets(nil, 1024); len(got) != 0 {
		t.Fatal("empty tensor list should fuse to nothing")
	}
	buckets := FuseBuckets([]Tensor{{"x", 10}}, 0)
	if len(buckets) != 1 {
		t.Fatal("non-positive fusion threshold should still work")
	}
}

// Fig 7a shape: on one ThetaGPU node the proposed design beats Horovod's
// native NCCL integration by ≈20% at batch 32, and the gap narrows at 128.
func TestFig7aShapeXCCLBeatsPureNCCL(t *testing.T) {
	run := func(engine Engine, bs int) float64 {
		rep, err := Train(Config{System: "thetagpu", Nodes: 1, BatchSize: bs, Steps: 1, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ImgPerSec
	}
	x32, n32 := run(EngineXCCL, 32), run(EnginePureCCL, 32)
	ratio32 := x32 / n32
	if ratio32 < 1.08 || ratio32 > 1.35 {
		t.Errorf("bs32 xccl/nccl = %.2f (%.0f vs %.0f), want ≈1.2", ratio32, x32, n32)
	}
	// Absolute throughputs in the paper's range (4850 / 4050 img/s).
	if x32 < 4300 || x32 > 5400 {
		t.Errorf("xccl bs32 = %.0f img/s, want ≈4850", x32)
	}
	if n32 < 3600 || n32 > 4600 {
		t.Errorf("pure nccl bs32 = %.0f img/s, want ≈4050", n32)
	}
	x128, n128 := run(EngineXCCL, 128), run(EnginePureCCL, 128)
	ratio128 := x128 / n128
	if ratio128 >= ratio32 {
		t.Errorf("gap should narrow with batch size: bs32 %.2f, bs128 %.2f", ratio32, ratio128)
	}
	if ratio128 < 1.0 {
		t.Errorf("xccl fell behind pure NCCL at bs128: %.2f", ratio128)
	}
}

// Fig 7a baselines: Open MPI + UCX trails the proposed design by ≈44% at
// batch 128, UCC by ≈28%.
func TestFig7aBaselineGaps(t *testing.T) {
	run := func(engine Engine) float64 {
		rep, err := Train(Config{System: "thetagpu", Nodes: 1, BatchSize: 128, Steps: 1, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ImgPerSec
	}
	x := run(EngineXCCL)
	ucx := run(EngineOpenMPI)
	ucc := run(EngineUCC)
	ucxBelow := 1 - ucx/x
	uccBelow := 1 - ucc/x
	if ucxBelow < 0.35 || ucxBelow > 0.52 {
		t.Errorf("UCX below xccl by %.0f%%, want ≈44%% (%.0f vs %.0f)", ucxBelow*100, ucx, x)
	}
	if uccBelow < 0.18 || uccBelow > 0.38 {
		t.Errorf("UCC below xccl by %.0f%%, want ≈28%% (%.0f vs %.0f)", uccBelow*100, ucc, x)
	}
	if ucc <= ucx {
		t.Errorf("single-node UCC (%.0f) should beat plain UCX (%.0f)", ucc, ucx)
	}
}

// Fig 8 shape: on multi-node MRI the hybrid design beats Horovod-over-RCCL
// by ≈20–25%.
func TestFig8ShapeAMD(t *testing.T) {
	run := func(engine Engine, nodes, bs int) float64 {
		rep, err := Train(Config{System: "mri", Nodes: nodes, BatchSize: bs, Steps: 1,
			Engine: engine, Backend: core.RCCL})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ImgPerSec
	}
	x := run(EngineXCCL, 4, 64) // 4 nodes × 2 GPUs = 8 GPUs
	r := run(EnginePureCCL, 4, 64)
	ratio := x / r
	if ratio < 1.12 || ratio > 1.45 {
		t.Errorf("8-GPU xccl/rccl = %.2f (%.0f vs %.0f), want ≈1.25", ratio, x, r)
	}
	if x < 2700 || x > 3700 {
		t.Errorf("xccl mri bs64 = %.0f img/s, want ≈3192", x)
	}
}

// Fig 9 shape: on Voyager the proposed design matches pure HCCL within a
// few percent (the layer's overhead is negligible; §4.4).
func TestFig9ShapeHabana(t *testing.T) {
	run := func(engine Engine) float64 {
		rep, err := Train(Config{System: "voyager", Nodes: 1, BatchSize: 128, Steps: 1,
			Engine: engine, Backend: core.HCCL})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ImgPerSec
	}
	x := run(EngineXCCL)
	h := run(EnginePureCCL)
	ratio := x / h
	if ratio < 0.97 || ratio > 1.16 {
		t.Errorf("voyager xccl/hccl = %.2f (%.0f vs %.0f), want ≈1.04", ratio, x, h)
	}
	if x < 4600 || x > 6100 {
		t.Errorf("xccl voyager bs128 = %.0f img/s, want ≈5139", x)
	}
}

// Fig 10 shape: MSCCL-backed training mirrors the NCCL trend on 2 nodes.
func TestFig10ShapeMSCCL(t *testing.T) {
	rep, err := Train(Config{System: "thetagpu", Nodes: 2, BatchSize: 128, Steps: 1,
		Engine: EngineXCCL, Backend: core.MSCCL})
	if err != nil {
		t.Fatal(err)
	}
	// 16 GPUs; paper reports 12300 img/s.
	if rep.ImgPerSec < 9500 || rep.ImgPerSec > 15500 {
		t.Errorf("msccl 2-node bs128 = %.0f img/s, want ≈12300", rep.ImgPerSec)
	}
}

func TestThroughputScalesWithBatch(t *testing.T) {
	var prev float64
	for _, bs := range []int{32, 64, 128} {
		rep, err := Train(Config{System: "thetagpu", Nodes: 1, BatchSize: bs, Steps: 1, Engine: EngineXCCL})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ImgPerSec <= prev {
			t.Fatalf("throughput not increasing with batch: bs%d = %.0f after %.0f", bs, rep.ImgPerSec, prev)
		}
		prev = rep.ImgPerSec
	}
}

func TestUnknownEngine(t *testing.T) {
	if _, err := Train(Config{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestUnknownSystem(t *testing.T) {
	if _, err := Train(Config{System: "summit"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}
