package dl

import "fmt"

// Additional model inventories beyond ResNet-50, for workloads with
// different gradient-size mixes: VGG-16 (few huge FC tensors — bandwidth
// bound) and BERT-Base (many same-sized transformer blocks — latency and
// fusion sensitive). They let the harness explore how the hybrid design's
// win varies with tensor-size distribution.

// VGG16 builds the VGG-16 parameter inventory: 13 conv layers, 3 fully
// connected layers (≈138M parameters, dominated by the 102M-parameter fc1).
func VGG16() *Model {
	m := &Model{Name: "vgg16"}
	add := func(name string, elems int64) {
		m.Tensors = append(m.Tensors, Tensor{Name: name, Elems: elems})
	}
	conv := func(name string, cin, cout int64) {
		add(name+"/kernel", 3*3*cin*cout)
		add(name+"/bias", cout)
	}
	cfg := []struct {
		blocks    int
		cin, cout int64
	}{
		{2, 3, 64}, {2, 64, 128}, {3, 128, 256}, {3, 256, 512}, {3, 512, 512},
	}
	for si, st := range cfg {
		cin := st.cin
		for b := 0; b < st.blocks; b++ {
			conv(fmt.Sprintf("conv%d_%d", si+1, b+1), cin, st.cout)
			cin = st.cout
		}
	}
	add("fc1/kernel", 25088*4096)
	add("fc1/bias", 4096)
	add("fc2/kernel", 4096*4096)
	add("fc2/bias", 4096)
	add("fc3/kernel", 4096*1000)
	add("fc3/bias", 1000)
	reverse(m.Tensors)
	return m
}

// BERTBase builds the BERT-Base parameter inventory: 12 transformer layers
// of hidden size 768 with 4×768 feed-forward, plus embeddings
// (≈110M parameters across ~200 tensors).
func BERTBase() *Model {
	m := &Model{Name: "bert-base"}
	add := func(name string, elems int64) {
		m.Tensors = append(m.Tensors, Tensor{Name: name, Elems: elems})
	}
	const h = 768
	const ff = 4 * h
	add("embeddings/word", 30522*h)
	add("embeddings/position", 512*h)
	add("embeddings/token_type", 2*h)
	add("embeddings/ln_gamma", h)
	add("embeddings/ln_beta", h)
	for l := 0; l < 12; l++ {
		p := fmt.Sprintf("layer%d", l)
		for _, part := range []string{"query", "key", "value", "attn_out"} {
			add(p+"/"+part+"/kernel", h*h)
			add(p+"/"+part+"/bias", h)
		}
		add(p+"/attn_ln_gamma", h)
		add(p+"/attn_ln_beta", h)
		add(p+"/ffn_in/kernel", h*ff)
		add(p+"/ffn_in/bias", ff)
		add(p+"/ffn_out/kernel", ff*h)
		add(p+"/ffn_out/bias", h)
		add(p+"/ffn_ln_gamma", h)
		add(p+"/ffn_ln_beta", h)
	}
	add("pooler/kernel", h*h)
	add("pooler/bias", h)
	reverse(m.Tensors)
	return m
}

func reverse(ts []Tensor) {
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
}

// Models returns the built-in model inventories by name.
func Models() map[string]func() *Model {
	return map[string]func() *Model{
		"resnet50": ResNet50,
		"vgg16":    VGG16,
		"bert":     BERTBase,
	}
}
