package dl

import (
	"math"
	"testing"
	"time"

	"mpixccl/internal/fault"
	"mpixccl/internal/metrics"
)

// tinyModel keeps the recovery tests fast: 8 half-MB tensors fuse into 2
// buckets at the default 2 MB threshold, so each step is 2 allreduces
// instead of ResNet-50's ~50 (the elastic experiments exhibit covers the
// full model).
func tinyModel() *Model {
	m := &Model{Name: "tiny"}
	for i := 0; i < 8; i++ {
		m.Tensors = append(m.Tensors, Tensor{Name: "t", Elems: 128 << 10})
	}
	return m
}

// elasticConfig is the shared shape of the recovery tests: 8 NCCL ranks on
// one thetagpu node, checkpointing every 2 steps.
func elasticConfig(reg *metrics.Registry) Config {
	return Config{
		System: "thetagpu", Nodes: 1, Ranks: 8, Model: tinyModel(),
		Steps: 6, CheckpointEvery: 2, Metrics: reg,
	}
}

// buckets of the tiny model at the default fusion threshold.
func tinyBuckets() int {
	return len(FuseBuckets(tinyModel().Tensors, 2<<20))
}

// A crash mid-run rolls the survivors back to the last checkpoint and the
// run completes on the shrunken world, deterministically.
func TestTrainElasticCrashRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := elasticConfig(reg)
	// Rank 5 dies partway through step 3's bucket loop (after 2 checkpointed
	// steps), so the survivors shrink to 7 and replay step 3 from the
	// step-2 checkpoint.
	nb := tinyBuckets()
	cfg.Faults = fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{5}, Op: "allreduce",
		After: 2*nb + nb/2,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartRanks != 8 || rep.FinalRanks != 7 {
		t.Errorf("ranks %d -> %d, want 8 -> 7", rep.StartRanks, rep.FinalRanks)
	}
	if len(rep.CrashedRanks) != 1 || rep.CrashedRanks[0] != 5 {
		t.Errorf("CrashedRanks = %v, want [5]", rep.CrashedRanks)
	}
	if rep.Shrinks != 1 {
		t.Errorf("Shrinks = %d, want 1", rep.Shrinks)
	}
	// The crash interrupts step 3 before it completes, and step 2 was just
	// checkpointed — no completed step is lost.
	if rep.RollbackSteps != 0 {
		t.Errorf("RollbackSteps = %d, want 0 (crash interrupted the first step after a checkpoint)", rep.RollbackSteps)
	}
	// All 6 steps complete exactly once; the interrupted attempt at step 3
	// recorded nothing.
	if len(rep.Loss) != 6 {
		t.Fatalf("len(Loss) = %d, want 6", len(rep.Loss))
	}
	// Loss is a pure function of cumulative examples: 2 steps at 8 ranks,
	// then 4 at 7.
	examples := int64(2*8*rep.BatchSize + 4*7*rep.BatchSize)
	if got, want := rep.Loss[5], lossAfter(examples); math.Abs(got-want) > 1e-12 {
		t.Errorf("final loss = %v, want %v", got, want)
	}
	if rep.Checkpoints != 2 {
		t.Errorf("Checkpoints = %d, want 2 (after steps 2 and 4)", rep.Checkpoints)
	}
	if v, ok := reg.CounterValue("xccl_rank_failures_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_rank_failures_total = %v (exists %v), want 1", v, ok)
	}
	if v, ok := reg.CounterValue("xccl_shrink_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_shrink_total = %v (exists %v), want 1", v, ok)
	}
}

// A crash one step before the next checkpoint loses that step: the
// survivors replay it, and the rollback is visible in the counters and in
// the repeated step latencies.
func TestTrainElasticRollbackReplaysLostStep(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := elasticConfig(reg)
	nb := tinyBuckets()
	// Rank 3 dies during step 4's exchange: step 3 completed but was not
	// yet checkpointed, so the survivors roll back one step.
	cfg.Faults = fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{3}, Op: "allreduce",
		After: 3*nb + nb/2,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RollbackSteps != 1 {
		t.Errorf("RollbackSteps = %d, want 1 (step 3 was past the checkpoint)", rep.RollbackSteps)
	}
	// Step 3 executed twice: once at 8 ranks (recorded), then replayed at 7.
	if len(rep.Loss) != 7 {
		t.Fatalf("len(Loss) = %d, want 7 (6 steps + 1 replay)", len(rep.Loss))
	}
	// The replayed step 3 contributes fewer examples than its first
	// execution, so the recorded loss after the replay is higher.
	if rep.Loss[3] <= rep.Loss[2] {
		t.Errorf("replayed-step loss %v should regress past the pre-crash loss %v", rep.Loss[3], rep.Loss[2])
	}
	if v, ok := reg.CounterValue("xccl_rollback_steps_total", metrics.Labels{"model": "tiny"}); !ok || v != 1 {
		t.Errorf("xccl_rollback_steps_total = %v (exists %v), want 1", v, ok)
	}
	if rep.FinalRanks != 7 || rep.Shrinks != 1 {
		t.Errorf("FinalRanks=%d Shrinks=%d, want 7/1", rep.FinalRanks, rep.Shrinks)
	}
}

// Without faults, TrainElastic matches Train's healthy-path shape: no
// shrink, no rollback, monotone loss — and determinism across two runs.
func TestTrainElasticHealthyDeterministic(t *testing.T) {
	run := func() ElasticReport {
		rep, err := TrainElastic(elasticConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Shrinks != 0 || a.RollbackSteps != 0 || len(a.CrashedRanks) != 0 {
		t.Errorf("healthy run reported Shrinks=%d RollbackSteps=%d CrashedRanks=%v", a.Shrinks, a.RollbackSteps, a.CrashedRanks)
	}
	if a.FinalRanks != 8 || len(a.Loss) != 6 {
		t.Errorf("FinalRanks=%d len(Loss)=%d, want 8/6", a.FinalRanks, len(a.Loss))
	}
	for i := 1; i < len(a.Loss); i++ {
		if a.Loss[i] >= a.Loss[i-1] {
			t.Errorf("loss not monotone at step %d: %v -> %v", i, a.Loss[i-1], a.Loss[i])
		}
	}
	if a.StepTime != b.StepTime || a.ImgPerSec != b.ImgPerSec {
		t.Errorf("two identical runs diverged: %v/%v vs %v/%v", a.StepTime, a.ImgPerSec, b.StepTime, b.ImgPerSec)
	}
	for i := range a.Loss {
		if a.Loss[i] != b.Loss[i] {
			t.Errorf("loss diverged at step %d: %v vs %v", i, a.Loss[i], b.Loss[i])
		}
	}
}

// A crash during the very first step (nothing checkpointed yet) restarts
// from step 0 on the survivors and still completes — the whole run stays
// bounded because the watchdog converts the stuck collective into a
// verdict instead of deadlocking the kernel (a hang here would trip the
// test timeout).
func TestTrainElasticFirstStepCrash(t *testing.T) {
	cfg := elasticConfig(nil)
	cfg.Steps = 2
	nb := tinyBuckets()
	cfg.Faults = fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{1}, Op: "allreduce", After: nb / 2,
	})
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalRanks != 7 {
		t.Errorf("FinalRanks = %d, want 7", rep.FinalRanks)
	}
	if rep.RollbackSteps != 0 || rep.Shrinks != 1 {
		t.Errorf("RollbackSteps=%d Shrinks=%d, want 0/1 (no step had completed)", rep.RollbackSteps, rep.Shrinks)
	}
	if len(rep.Loss) != 2 {
		t.Errorf("len(Loss) = %d, want 2", len(rep.Loss))
	}
}

// With a spare rank, a crashed run recovers to full width: the heartbeat
// detector confirms the death within half a watchdog, the survivors
// shrink and immediately grow by adopting the spare, and — because every
// completed step runs at the original width — the loss curve is identical
// to a fault-free run.
func TestTrainElasticSparesRecoverFullWidth(t *testing.T) {
	shadow := elasticConfig(nil)
	shadow.Ranks = 7
	want, err := TrainElastic(shadow)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	cfg := elasticConfig(reg)
	cfg.Ranks, cfg.Spares = 7, 1 // 7 workers + 1 parked spare on the 8-GPU node
	nb := tinyBuckets()
	plan := fault.NewPlan(7).AddRule(fault.Rule{
		Name: "crash", Crash: true, Ranks: []int{5}, Op: "allreduce",
		After: 2*nb + nb/2,
	})
	cfg.Faults = plan
	rep, err := TrainElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartRanks != 7 || rep.FinalRanks != 7 {
		t.Errorf("ranks %d -> %d, want 7 -> 7 (recovered to full width)", rep.StartRanks, rep.FinalRanks)
	}
	if len(rep.CrashedRanks) != 1 || rep.CrashedRanks[0] != 5 {
		t.Errorf("CrashedRanks = %v, want [5]", rep.CrashedRanks)
	}
	if rep.Shrinks != 1 || rep.Grows != 1 {
		t.Errorf("Shrinks, Grows = %d, %d; want 1, 1", rep.Shrinks, rep.Grows)
	}
	if len(rep.AdoptedRanks) != 1 || rep.AdoptedRanks[0] != 7 {
		t.Errorf("AdoptedRanks = %v, want [7] (the spare's world rank)", rep.AdoptedRanks)
	}
	// Proactive detection: the heartbeat detector (armed by default when
	// spares are configured) confirmed the death well before the 2ms
	// collective watchdog would have.
	diedAt, ok := plan.DeathTime(5)
	if !ok {
		t.Fatal("fault plan did not record rank 5's death time")
	}
	suspectedAt, ok := rep.SuspectedAt[5]
	if !ok {
		t.Fatalf("SuspectedAt = %v, missing rank 5", rep.SuspectedAt)
	}
	const wd = 2 * time.Millisecond // TrainElastic's default watchdog
	if lat := suspectedAt - diedAt; lat <= 0 || lat > wd/2 {
		t.Errorf("detection latency = %v, want within (0, %v]", lat, wd/2)
	}
	// Every completed step ran at 7 ranks, so the whole loss curve — not
	// just the final value — matches the fault-free shadow run.
	if len(rep.Loss) != len(want.Loss) {
		t.Fatalf("len(Loss) = %d, want %d", len(rep.Loss), len(want.Loss))
	}
	for i := range rep.Loss {
		if math.Abs(rep.Loss[i]-want.Loss[i]) > 1e-12 {
			t.Errorf("Loss[%d] = %v, shadow %v", i, rep.Loss[i], want.Loss[i])
		}
	}
	if v, ok := reg.CounterValue("xccl_grow_total", metrics.Labels{"backend": "nccl"}); !ok || v != 1 {
		t.Errorf("xccl_grow_total = %v (exists %v), want 1", v, ok)
	}
}
