package dl

import "testing"

func TestVGG16Inventory(t *testing.T) {
	m := VGG16()
	params := m.Params()
	// Canonical VGG-16 has ≈138M parameters.
	if params < 134_000_000 || params > 140_000_000 {
		t.Fatalf("params = %d, want ≈138M", params)
	}
	// fc1 dominates: one tensor with 102M parameters.
	var biggest int64
	for _, ts := range m.Tensors {
		if ts.Elems > biggest {
			biggest = ts.Elems
		}
	}
	if biggest != 25088*4096 {
		t.Fatalf("largest tensor = %d, want fc1's %d", biggest, 25088*4096)
	}
	// Backprop order: classifier first.
	if m.Tensors[0].Name != "fc3/bias" {
		t.Fatalf("first tensor = %s", m.Tensors[0].Name)
	}
}

func TestBERTBaseInventory(t *testing.T) {
	m := BERTBase()
	params := m.Params()
	// BERT-Base is ≈110M parameters.
	if params < 106_000_000 || params > 113_000_000 {
		t.Fatalf("params = %d, want ≈110M", params)
	}
	if len(m.Tensors) < 180 || len(m.Tensors) > 210 {
		t.Fatalf("tensor count = %d, want ≈197", len(m.Tensors))
	}
}

func TestModelsRegistry(t *testing.T) {
	reg := Models()
	for _, name := range []string{"resnet50", "vgg16", "bert"} {
		mk, ok := reg[name]
		if !ok {
			t.Fatalf("registry missing %s", name)
		}
		if mk().Params() == 0 {
			t.Fatalf("%s has no parameters", name)
		}
	}
}

// Workload sensitivity: VGG's giant FC tensors make training bandwidth
// bound, so the hybrid design's win over pure CCL shrinks versus BERT's
// many medium tensors.
func TestHybridWinVariesByModel(t *testing.T) {
	ratio := func(model *Model) float64 {
		run := func(engine Engine) float64 {
			rep, err := Train(Config{System: "thetagpu", Nodes: 1, BatchSize: 64,
				Steps: 1, Engine: engine, Model: model})
			if err != nil {
				t.Fatal(err)
			}
			return rep.ImgPerSec
		}
		return run(EngineXCCL) / run(EnginePureCCL)
	}
	bert := ratio(BERTBase())
	vgg := ratio(VGG16())
	if bert <= 1.0 {
		t.Errorf("hybrid should win on BERT, ratio %.3f", bert)
	}
	if vgg >= bert {
		t.Errorf("bandwidth-bound VGG (%.3f) should show a smaller hybrid win than BERT (%.3f)", vgg, bert)
	}
}
