// Package fault provides deterministic, seeded fault plans for the
// simulated xCCL stack. A Plan is a list of declarative rules scoped by
// backend, operation, rank, call count, virtual-time window, and
// probability; it implements both injection hooks the runtime exposes:
//
//   - ccl.Injector — per-call CCL errors (transient xcclRemoteError or
//     persistent xcclInternalError), straggler latency, and communicator-
//     init failures. Attach with ccl.Config.Faults or ambiently with
//     fabric.Fabric.SetFaults.
//   - fabric.Degrader — link-degradation windows that scale a link class's
//     α/bandwidth or cap its channel grant over a virtual-time interval.
//     Attach with fabric.Fabric.SetFaults.
//   - fabric.FailStop — fail-stop crash rules (Rule.Crash) that kill a rank
//     permanently at a virtual time or after a call budget; the collective
//     watchdog, the heartbeat failure detector, and the ULFM-style shrink in
//     internal/core consume this hook.
//   - fabric.Corrupter — payload-corruption rules (CorruptRule) that flip
//     bytes of matching fabric data transfers, the silent-data-corruption
//     model the fabric's CRC32C integrity checking defends against.
//   - fabric.Partitioner — network-partition rules (PartitionRule) that cut
//     the fabric along a node or rank-set bipartition over a virtual-time
//     window, with an optional heal time. The fabric fails cross-cut
//     transfers fast, and the quorum membership layer in internal/core
//     (epoch bumps, minority fencing, heal-and-rejoin) consumes the pure
//     Severed/RanksSevered/PartitionedUntil queries.
//
// Determinism: all probabilistic decisions come from one splitmix64 stream
// seeded at construction, advanced once per probabilistic match, so two
// plans with the same seed driving the same simulation fire identically.
// Partition rules draw their Probability coin once, at AddPartitionRule
// time — an active cut must answer every Severed query the same way no
// matter which shard (or rank) asks first.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mpixccl/internal/ccl"
	"mpixccl/internal/fabric"
)

// Point names the call site a Rule applies to.
type Point int

const (
	// OpCall injects at collective and point-to-point call sites.
	OpCall Point = iota
	// CommInit injects at communicator creation.
	CommInit
)

// Rule is one fault-injection rule. Zero-valued scope fields match
// everything; a rule fires when every set field matches. A rule should
// inject either an error (Result != Success) or straggler latency
// (Delay > 0), not both — each is consumed by a different hook and they
// would share one call budget.
type Rule struct {
	// Name labels the rule for Fired-count introspection.
	Name string
	// Point selects the call site (OpCall or CommInit).
	Point Point
	// Backend, when non-empty, must equal the backend name ("nccl", ...).
	Backend string
	// Op, when non-empty, must equal the lower-case operation name
	// ("allreduce", "broadcast", "reduce", "allgather", "reducescatter",
	// "send", "recv", "group"). Ignored for CommInit rules.
	Op string
	// Ranks, when non-nil, restricts the rule to these ranks.
	Ranks []int
	// After skips the first After otherwise-matching calls before the
	// rule becomes eligible.
	After int
	// Count bounds how many times the rule fires; 0 means unbounded.
	Count int
	// Probability fires the rule on each eligible call with this chance;
	// 0 means always (deterministic). Draws come from the plan's seed.
	Probability float64
	// Result is the CCL error to inject (ErrRemote for transient faults
	// the dispatch layer retries, ErrInternal for persistent ones).
	Result ccl.Result
	// Msg overrides the injected error message.
	Msg string
	// Delay is straggler latency added to the rank's stream execution.
	Delay time.Duration
	// From/Until bound the rule to a virtual-time window. Zero Until
	// means no end.
	From, Until time.Duration
	// Crash marks a fail-stop rule: instead of injecting an error into a
	// call, the matched rank dies permanently. A crash rule must name its
	// Ranks explicitly and triggers either at a virtual time (From set,
	// After zero — the rank is dead from From onward, regardless of
	// Backend/Op scope) or after a call budget (After = N — the rank dies
	// on its N+1-th matching liveness probe; Backend/Op scope which probes
	// count, and the budget is shared across the rule's ranks, so scope
	// one rule per rank for per-rank counts). Crash rules are permanent
	// and deterministic: Result, Delay, Count, Probability, and Until must
	// be unset. Dead ranks are reported through OpCrash/RankDead/DeadRanks
	// (the fabric.FailStop hook), never through OpError.
	Crash bool
}

// LinkRule degrades a fabric link class over a virtual-time window.
type LinkRule struct {
	// Name labels the rule.
	Name string
	// Link, when non-empty, restricts the rule to one route class
	// ("intra", "inter", "host").
	Link string
	// Nodes, when non-nil, restricts the rule to routes touching one of
	// these nodes (as source or destination).
	Nodes []int
	// From/Until bound the window. Zero Until means no end.
	From, Until time.Duration
	// BWScale multiplies per-channel bandwidth (0 < s ≤ 1 degrades);
	// zero leaves it unchanged.
	BWScale float64
	// AlphaScale multiplies link α (> 1 degrades); zero leaves it.
	AlphaScale float64
	// ChannelCap caps channels per transfer; zero leaves it.
	ChannelCap int
}

// CorruptRule flips payload bytes of matching fabric data transfers,
// modeling silent data corruption on the wire (bit rot, a flaky PCIe lane,
// a misbehaving switch). The fabric probes the hook once per transfer
// attempt — including retransmissions, which re-draw independently — and
// XORs the returned offsets in the destination buffer after the copy.
// Without integrity checking (core.Resilience.Integrity) corruption is
// silent; with it, the CRC32C mismatch triggers a bounded retransmit.
type CorruptRule struct {
	// Name labels the rule for Fired-count introspection.
	Name string
	// Link, when non-empty, restricts the rule to one route class
	// ("intra", "inter", "host").
	Link string
	// Nodes, when non-nil, restricts the rule to routes touching one of
	// these nodes (as source or destination).
	Nodes []int
	// From/Until bound the rule to a virtual-time window. Zero Until
	// means no end.
	From, Until time.Duration
	// Probability corrupts each eligible transfer with this chance;
	// 0 means always (deterministic).
	Probability float64
	// After skips the first After otherwise-matching transfers.
	After int
	// Count bounds how many transfers the rule corrupts; 0 means
	// unbounded.
	Count int
	// FlipBytes is how many distinct byte offsets to flip per corrupted
	// transfer; 0 means 1.
	FlipBytes int
}

// PartitionRule cuts the fabric into two sides over a virtual-time window,
// modeling a network partition (a failed spine switch, a mis-pushed ACL, a
// severed inter-rack cable). Exactly one of Nodes or Ranks names group A of
// the bipartition; every endpoint pair with exactly one member in group A is
// severed while the rule is active. Node-scoped rules are enforced by the
// fabric itself (cross-cut transfers and control messages fail fast with
// fabric.ErrPartitioned); rank-scoped rules are membership-level cuts
// consumed by the quorum layer in internal/core and the scale model. From
// is the moment of the cut and Until the heal time; Until == 0 means the
// partition never heals.
type PartitionRule struct {
	// Name labels the rule for Fired-count introspection.
	Name string
	// Nodes names group A of the bipartition by node id. Exactly one of
	// Nodes/Ranks must be non-empty.
	Nodes []int
	// Ranks names group A of the bipartition by world rank.
	Ranks []int
	// From is the virtual time of the cut; Until the heal time (0 = the
	// partition is permanent). Until must be strictly after From.
	From, Until time.Duration
	// Probability arms the rule with this chance; 0 means always
	// (deterministic). Unlike per-call rules the coin is drawn once, at
	// AddPartitionRule time — a cut is a single event, and every shard
	// and rank must see the same verdict.
	Probability float64
}

type partitionState struct {
	PartitionRule
	armed bool // probability draw, taken once at AddPartitionRule
	fired int  // 1 once the active window has been observed
}

type ruleState struct {
	Rule
	matched int // eligible calls seen (drives After)
	fired   int // times the rule actually fired (drives Count)
}

type corruptState struct {
	CorruptRule
	matched int
	fired   int
}

// Plan is a seeded, concurrency-safe fault plan. The zero value is not
// usable; construct with NewPlan.
type Plan struct {
	mu         sync.Mutex
	state      uint64
	rules      []*ruleState
	links      []LinkRule
	corrupt    []*corruptState
	partitions []*partitionState
	dead       map[int]time.Duration // rank -> virtual time of fail-stop
}

// Compile-time hook conformance.
var (
	_ ccl.Injector       = (*Plan)(nil)
	_ fabric.Degrader    = (*Plan)(nil)
	_ fabric.FailStop    = (*Plan)(nil)
	_ fabric.Corrupter   = (*Plan)(nil)
	_ fabric.Partitioner = (*Plan)(nil)
)

// NewPlan returns an empty plan whose probabilistic draws derive from seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{state: seed}
}

// ruleLabel names a rule in validation errors.
func ruleLabel(name string) string {
	if name == "" {
		return "(unnamed)"
	}
	return name
}

// CheckRule validates a call-site rule at construction, returning a
// descriptive error for rules that could never fire or contradict
// themselves. An inverted time window or a negative budget used to be
// accepted and silently never fired — a fault plan that looks armed but
// injects nothing.
func CheckRule(r Rule) error {
	n := ruleLabel(r.Name)
	if r.Until != 0 && r.Until <= r.From {
		return fmt.Errorf("fault: rule %s has an inverted time window (from %v, until %v): it would never fire", n, r.From, r.Until)
	}
	if r.After < 0 {
		return fmt.Errorf("fault: rule %s has a negative After budget (%d)", n, r.After)
	}
	if r.Count < 0 {
		return fmt.Errorf("fault: rule %s has a negative Count budget (%d)", n, r.Count)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("fault: rule %s has Probability %v outside [0, 1]", n, r.Probability)
	}
	if r.Delay < 0 {
		return fmt.Errorf("fault: rule %s has a negative Delay (%v)", n, r.Delay)
	}
	if r.Crash {
		if r.Point != OpCall {
			return fmt.Errorf("fault: crash rule %s must use Point OpCall", n)
		}
		if len(r.Ranks) == 0 {
			return fmt.Errorf("fault: crash rule %s must name its Ranks explicitly", n)
		}
		if r.Result != ccl.Success || r.Delay != 0 {
			return fmt.Errorf("fault: crash rule %s must not set Result or Delay (a fail-stop is not an injected call error)", n)
		}
		if r.Count != 0 || r.Probability != 0 || r.Until != 0 {
			return fmt.Errorf("fault: crash rule %s must not set Count, Probability, or Until (a fail-stop is permanent and deterministic)", n)
		}
		return nil
	}
	if r.Result == ccl.Success && r.Delay == 0 {
		return fmt.Errorf("fault: rule %s injects neither an error nor a delay: it would never fire", n)
	}
	return nil
}

// CheckLinkRule validates a link-degradation window at construction.
func CheckLinkRule(r LinkRule) error {
	n := ruleLabel(r.Name)
	if r.Until != 0 && r.Until <= r.From {
		return fmt.Errorf("fault: link rule %s has an inverted time window (from %v, until %v): it would never fire", n, r.From, r.Until)
	}
	if r.BWScale < 0 || r.BWScale > 1 {
		return fmt.Errorf("fault: link rule %s has BWScale %v outside (0, 1]", n, r.BWScale)
	}
	if r.AlphaScale < 0 {
		return fmt.Errorf("fault: link rule %s has a negative AlphaScale (%v)", n, r.AlphaScale)
	}
	if r.ChannelCap < 0 {
		return fmt.Errorf("fault: link rule %s has a negative ChannelCap (%d)", n, r.ChannelCap)
	}
	if r.BWScale == 0 && r.AlphaScale == 0 && r.ChannelCap == 0 {
		return fmt.Errorf("fault: link rule %s degrades nothing: it would never fire", n)
	}
	return nil
}

// AddRule appends a call-site rule, panicking with a descriptive error if
// the rule is invalid (use CheckRule to validate without panicking).
// Returns the plan for chaining.
func (p *Plan) AddRule(r Rule) *Plan {
	if err := CheckRule(r); err != nil {
		panic(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, &ruleState{Rule: r})
	return p
}

// CheckCorruptRule validates a payload-corruption rule at construction.
func CheckCorruptRule(r CorruptRule) error {
	n := ruleLabel(r.Name)
	if r.Until != 0 && r.Until <= r.From {
		return fmt.Errorf("fault: corrupt rule %s has an inverted time window (from %v, until %v): it would never fire", n, r.From, r.Until)
	}
	if r.After < 0 {
		return fmt.Errorf("fault: corrupt rule %s has a negative After budget (%d)", n, r.After)
	}
	if r.Count < 0 {
		return fmt.Errorf("fault: corrupt rule %s has a negative Count budget (%d)", n, r.Count)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("fault: corrupt rule %s has Probability %v outside [0, 1]", n, r.Probability)
	}
	if r.FlipBytes < 0 {
		return fmt.Errorf("fault: corrupt rule %s has a negative FlipBytes (%d)", n, r.FlipBytes)
	}
	return nil
}

// AddCorruptRule appends a payload-corruption rule, panicking with a
// descriptive error if the rule is invalid (use CheckCorruptRule to
// validate without panicking). Returns the plan.
func (p *Plan) AddCorruptRule(r CorruptRule) *Plan {
	if err := CheckCorruptRule(r); err != nil {
		panic(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.corrupt = append(p.corrupt, &corruptState{CorruptRule: r})
	return p
}

// CheckPartitionRule validates a network-partition rule at construction.
// A heal time at or before the cut, an empty (or doubly-specified) group,
// or an out-of-range probability are rejected with descriptive errors —
// partition + crash on the same rank is deliberately allowed, the faults
// compose (a dead rank stays dead on both sides of the cut).
func CheckPartitionRule(r PartitionRule) error {
	n := ruleLabel(r.Name)
	if len(r.Nodes) == 0 && len(r.Ranks) == 0 {
		return fmt.Errorf("fault: partition rule %s names neither Nodes nor Ranks: there is no cut to make", n)
	}
	if len(r.Nodes) > 0 && len(r.Ranks) > 0 {
		return fmt.Errorf("fault: partition rule %s names both Nodes and Ranks: a cut follows exactly one boundary", n)
	}
	if r.Until != 0 && r.Until <= r.From {
		return fmt.Errorf("fault: partition rule %s heals at %v, at or before the cut at %v: it would never fire", n, r.Until, r.From)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("fault: partition rule %s has Probability %v outside [0, 1]", n, r.Probability)
	}
	return nil
}

// AddPartitionRule appends a network-partition rule, panicking with a
// descriptive error if the rule is invalid (use CheckPartitionRule to
// validate without panicking). The probability coin is drawn here, once —
// never per query — so the verdict is fixed before the simulation starts
// and identical across shards. Returns the plan.
func (p *Plan) AddPartitionRule(r PartitionRule) *Plan {
	if err := CheckPartitionRule(r); err != nil {
		panic(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ps := &partitionState{PartitionRule: r, armed: true}
	if r.Probability > 0 && r.Probability < 1 && p.coin() >= r.Probability {
		ps.armed = false
	}
	p.partitions = append(p.partitions, ps)
	return p
}

// activePartitionLocked reports whether rule ps is cutting the fabric at
// now, crediting its Fired count on first observation. Callers hold p.mu.
func (p *Plan) activePartitionLocked(ps *partitionState, now time.Duration) bool {
	if !ps.armed || !inWindow(ps.From, ps.Until, now) {
		return false
	}
	if ps.fired == 0 {
		ps.fired = 1
	}
	return true
}

// splitBy reports whether the group-A set splits endpoints a and b: exactly
// one of the two is in the set.
func splitBy(group []int, a, b int) bool {
	ina, inb := false, false
	for _, g := range group {
		if g == a {
			ina = true
		}
		if g == b {
			inb = true
		}
	}
	return ina != inb
}

// Severed implements fabric.Partitioner: a node-scoped partition rule
// active at now cuts the (srcNode, dstNode) route. Rank-scoped rules are
// invisible here — the fabric routes by node, so rank cuts are enforced at
// the membership layer through RanksSevered.
func (p *Plan) Severed(srcNode, dstNode int, now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ps := range p.partitions {
		if len(ps.Nodes) == 0 {
			continue
		}
		if splitBy(ps.Nodes, srcNode, dstNode) && p.activePartitionLocked(ps, now) {
			return true
		}
	}
	return false
}

// RanksSevered implements fabric.Partitioner: a rank-scoped partition rule
// active at now cuts the world-rank pair (a, b).
func (p *Plan) RanksSevered(a, b int, now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ps := range p.partitions {
		if len(ps.Ranks) == 0 {
			continue
		}
		if splitBy(ps.Ranks, a, b) && p.activePartitionLocked(ps, now) {
			return true
		}
	}
	return false
}

// PartitionedNow implements fabric.Partitioner: any partition rule (node-
// or rank-scoped) is cutting the fabric at now. Dispatch layers use this as
// a cheap guard before per-pair Severed probes.
func (p *Plan) PartitionedNow(now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ps := range p.partitions {
		if p.activePartitionLocked(ps, now) {
			return true
		}
	}
	return false
}

// PartitionedUntil implements fabric.Partitioner: the virtual time the last
// partition active at now heals. heals == false means at least one active
// cut is permanent (Until == 0); no active cut returns (0, true). Fenced
// ranks sleep on this to time their rejoin.
func (p *Plan) PartitionedUntil(now time.Duration) (until time.Duration, heals bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	heals = true
	for _, ps := range p.partitions {
		if !p.activePartitionLocked(ps, now) {
			continue
		}
		if ps.Until == 0 {
			return 0, false
		}
		if ps.Until > until {
			until = ps.Until
		}
	}
	return until, heals
}

// HasPartitions implements fabric.Partitioner: the plan carries at least
// one armed partition rule. Partition-aware training loops use this to
// decide whether to poll for regrowth; it never consults the clock.
func (p *Plan) HasPartitions() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ps := range p.partitions {
		if ps.armed {
			return true
		}
	}
	return false
}

// AddLinkRule appends a link-degradation window, panicking with a
// descriptive error if the window is invalid (use CheckLinkRule to validate
// without panicking). Returns the plan.
func (p *Plan) AddLinkRule(r LinkRule) *Plan {
	if err := CheckLinkRule(r); err != nil {
		panic(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links = append(p.links, r)
	return p
}

// Fired reports how many times the named rule(s) have fired.
func (p *Plan) Fired(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.rules {
		if r.Name == name {
			n += r.fired
		}
	}
	for _, r := range p.corrupt {
		if r.Name == name {
			n += r.fired
		}
	}
	for _, r := range p.partitions {
		if r.Name == name {
			n += r.fired
		}
	}
	return n
}

// coin draws the next splitmix64 variate in [0, 1). Callers hold p.mu.
func (p *Plan) coin() float64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func inWindow(from, until, now time.Duration) bool {
	return now >= from && (until == 0 || now < until)
}

func rankIn(ranks []int, rank int) bool {
	if ranks == nil {
		return true
	}
	for _, r := range ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// fire decides whether rule r fires for a matching call, advancing its
// After/Count bookkeeping and the PRNG. Callers hold p.mu and have
// already checked the scope fields.
func (p *Plan) fire(r *ruleState) bool {
	r.matched++
	if r.matched <= r.After {
		return false
	}
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	if r.Probability > 0 && r.Probability < 1 && p.coin() >= r.Probability {
		return false
	}
	r.fired++
	return true
}

func (p *Plan) matchOp(r *ruleState, backend, op string, rank int, now time.Duration) bool {
	if r.Point != OpCall {
		return false
	}
	if r.Backend != "" && r.Backend != backend {
		return false
	}
	if r.Op != "" && r.Op != op {
		return false
	}
	if !rankIn(r.Ranks, rank) {
		return false
	}
	return inWindow(r.From, r.Until, now)
}

// markDead records a rank's fail-stop (once) and credits the rule's Fired
// count. Callers hold p.mu.
func (p *Plan) markDead(r *ruleState, rank int, at time.Duration) {
	if _, ok := p.dead[rank]; ok {
		return
	}
	if p.dead == nil {
		p.dead = make(map[int]time.Duration)
	}
	p.dead[rank] = at
	r.fired++
}

// rankDeadLocked answers the pure liveness query: the rank is dead if a
// probe already killed it or a time-triggered crash rule's From has passed.
// Time-triggered deaths ignore Backend/Op scope — a fail-stopped rank is
// dead for every call site. Callers hold p.mu.
func (p *Plan) rankDeadLocked(rank int, now time.Duration) bool {
	if t, ok := p.dead[rank]; ok {
		return t <= now
	}
	for _, r := range p.rules {
		if !r.Crash || r.After > 0 {
			continue
		}
		if rankIn(r.Ranks, rank) && now >= r.From {
			p.markDead(r, rank, r.From)
			return true
		}
	}
	return false
}

// OpCrash implements fabric.FailStop's liveness probe: it reports whether
// rank has fail-stopped, advancing call-counted crash rules — each probe
// from a live matching rank consumes one call of the rule's After budget,
// so a rule with After=N kills the rank on its N+1-th matching call. The
// CCL validation path probes once per op call on the calling rank.
func (p *Plan) OpCrash(backend, op string, rank int, now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rankDeadLocked(rank, now) {
		return true
	}
	for _, r := range p.rules {
		if !r.Crash || r.After <= 0 || !p.matchOp(r, backend, op, rank, now) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		p.markDead(r, rank, now)
		return true
	}
	return false
}

// RankDead implements fabric.FailStop: a pure liveness query that never
// advances call budgets. Watchdog verdicts and survivor agreement use this.
func (p *Plan) RankDead(rank int, now time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rankDeadLocked(rank, now)
}

// DeadRanks implements fabric.FailStop: every rank known dead at now, in
// ascending order. Like RankDead it is a pure query.
func (p *Plan) DeadRanks(now time.Duration) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[int]bool, len(p.dead))
	for rank, t := range p.dead {
		if t <= now {
			seen[rank] = true
		}
	}
	for _, r := range p.rules {
		if !r.Crash || r.After > 0 || now < r.From {
			continue
		}
		for _, rank := range r.Ranks {
			if !seen[rank] {
				p.markDead(r, rank, r.From)
				seen[rank] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(seen))
	for rank := range seen {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	return ranks
}

// OpError implements ccl.Injector: the first firing error rule wins. Crash
// rules never inject call errors; they surface through OpCrash instead.
func (p *Plan) OpError(backend, op string, rank int, now time.Duration) *ccl.Error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if r.Crash || r.Result == ccl.Success || !p.matchOp(r, backend, op, rank, now) {
			continue
		}
		if !p.fire(r) {
			continue
		}
		msg := r.Msg
		if msg == "" {
			msg = "injected fault"
		}
		return &ccl.Error{Backend: backend, Result: r.Result, Msg: msg}
	}
	return nil
}

// OpDelay implements ccl.Injector: straggler delays of all firing delay
// rules accumulate.
func (p *Plan) OpDelay(backend, op string, rank int, now time.Duration) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d time.Duration
	for _, r := range p.rules {
		if r.Delay <= 0 || r.Result != ccl.Success || !p.matchOp(r, backend, op, rank, now) {
			continue
		}
		if p.fire(r) {
			d += r.Delay
		}
	}
	return d
}

// CommInitError implements ccl.Injector.
func (p *Plan) CommInitError(backend string, rank int, now time.Duration) *ccl.Error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if r.Point != CommInit || r.Result == ccl.Success {
			continue
		}
		if r.Backend != "" && r.Backend != backend {
			continue
		}
		if !rankIn(r.Ranks, rank) || !inWindow(r.From, r.Until, now) {
			continue
		}
		if !p.fire(r) {
			continue
		}
		msg := r.Msg
		if msg == "" {
			msg = "injected comm-init fault"
		}
		return &ccl.Error{Backend: backend, Result: r.Result, Msg: msg}
	}
	return nil
}

func nodeIn(nodes []int, src, dst int) bool {
	if nodes == nil {
		return true
	}
	for _, n := range nodes {
		if n == src || n == dst {
			return true
		}
	}
	return false
}

func compose(lf fabric.LinkFault, r LinkRule) fabric.LinkFault {
	if r.BWScale > 0 {
		if lf.BWScale == 0 {
			lf.BWScale = 1
		}
		lf.BWScale *= r.BWScale
	}
	if r.AlphaScale > 0 {
		if lf.AlphaScale == 0 {
			lf.AlphaScale = 1
		}
		lf.AlphaScale *= r.AlphaScale
	}
	if r.ChannelCap > 0 && (lf.ChannelCap == 0 || r.ChannelCap < lf.ChannelCap) {
		lf.ChannelCap = r.ChannelCap
	}
	return lf
}

// DegradedLink implements fabric.Degrader: all windows active for the
// route at now compose (scales multiply, the tightest channel cap wins).
func (p *Plan) DegradedLink(class string, srcNode, dstNode int, now time.Duration) (fabric.LinkFault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lf fabric.LinkFault
	hit := false
	for _, r := range p.links {
		if r.Link != "" && r.Link != class {
			continue
		}
		if !nodeIn(r.Nodes, srcNode, dstNode) || !inWindow(r.From, r.Until, now) {
			continue
		}
		lf = compose(lf, r)
		hit = true
	}
	return lf, hit
}

// CorruptTransfer implements fabric.Corrupter: for an n-byte transfer over
// the route at now, it returns the distinct destination-buffer offsets to
// flip, or nil when no rule fires. Every matching rule contributes its own
// draws; duplicate offsets are resolved by linear probing so two rules (or
// FlipBytes > 1 within one) never cancel each other's XOR.
func (p *Plan) CorruptTransfer(class string, srcNode, dstNode int, n int64, now time.Duration) []int64 {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var offs []int64
	for _, r := range p.corrupt {
		if r.Link != "" && r.Link != class {
			continue
		}
		if !nodeIn(r.Nodes, srcNode, dstNode) || !inWindow(r.From, r.Until, now) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && p.coin() >= r.Probability {
			continue
		}
		r.fired++
		flips := r.FlipBytes
		if flips <= 0 {
			flips = 1
		}
		for i := 0; i < flips && int64(len(offs)) < n; i++ {
			off := int64(p.coin() * float64(n))
			if off >= n {
				off = n - 1
			}
			for contains(offs, off) {
				off = (off + 1) % n
			}
			offs = append(offs, off)
		}
	}
	return offs
}

func contains(offs []int64, off int64) bool {
	for _, o := range offs {
		if o == off {
			return true
		}
	}
	return false
}

// DeathTime reports the virtual time a rank fail-stopped, if it is known
// dead. Like RankDead it is a pure query that never advances call budgets;
// the chaos harness uses it to bound detection latency against the actual
// moment of death.
func (p *Plan) DeathTime(rank int) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.dead[rank]
	return t, ok
}

// DegradedNow implements fabric.Degrader: the composition of every window
// active at now, regardless of class or nodes — the aggregate signal the
// dispatch layer uses to shrink its channel budget.
func (p *Plan) DegradedNow(now time.Duration) (fabric.LinkFault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lf fabric.LinkFault
	hit := false
	for _, r := range p.links {
		if !inWindow(r.From, r.Until, now) {
			continue
		}
		lf = compose(lf, r)
		hit = true
	}
	return lf, hit
}
