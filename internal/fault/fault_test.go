package fault

import (
	"sync"
	"testing"
	"time"

	"mpixccl/internal/ccl"
)

func TestRuleScoping(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "scoped", Backend: "nccl", Op: "allreduce",
		Ranks: []int{2}, Result: ccl.ErrInternal})

	if e := p.OpError("rccl", "allreduce", 2, 0); e != nil {
		t.Errorf("wrong backend fired: %v", e)
	}
	if e := p.OpError("nccl", "bcast", 2, 0); e != nil {
		t.Errorf("wrong op fired: %v", e)
	}
	if e := p.OpError("nccl", "allreduce", 1, 0); e != nil {
		t.Errorf("wrong rank fired: %v", e)
	}
	e := p.OpError("nccl", "allreduce", 2, 0)
	if e == nil || e.Result != ccl.ErrInternal {
		t.Fatalf("scoped rule did not fire: %v", e)
	}
	if got := p.Fired("scoped"); got != 1 {
		t.Errorf("fired = %d, want 1", got)
	}
}

func TestAfterAndCountBudget(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "burst", Op: "send", Result: ccl.ErrRemote, After: 2, Count: 3})

	var fires []bool
	for i := 0; i < 8; i++ {
		fires = append(fires, p.OpError("nccl", "send", 0, 0) != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (After=2 skips two, Count=3 bounds)", i, fires[i], want[i])
		}
	}
}

func TestTimeWindow(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "window", Op: "recv", Result: ccl.ErrInternal,
		From: 10 * time.Microsecond, Until: 20 * time.Microsecond})

	if e := p.OpError("nccl", "recv", 0, 5*time.Microsecond); e != nil {
		t.Error("fired before the window")
	}
	if e := p.OpError("nccl", "recv", 0, 15*time.Microsecond); e == nil {
		t.Error("did not fire inside the window")
	}
	if e := p.OpError("nccl", "recv", 0, 25*time.Microsecond); e != nil {
		t.Error("fired after the window")
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		p := NewPlan(seed)
		p.AddRule(Rule{Name: "coin", Op: "allreduce", Result: ccl.ErrRemote, Probability: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.OpError("nccl", "allreduce", 0, 0) != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// 64 p=0.5 draws: both all-fire and no-fire mean a broken PRNG.
	if fires == 0 || fires == 64 {
		t.Errorf("p=0.5 rule fired %d/64 times", fires)
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fire patterns")
	}
}

func TestDelayRulesAccumulateSeparately(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "slow", Op: "allreduce", Ranks: []int{1}, Delay: 3 * time.Microsecond})
	p.AddRule(Rule{Name: "slower", Op: "allreduce", Ranks: []int{1}, Delay: 4 * time.Microsecond})

	if d := p.OpDelay("nccl", "allreduce", 1, 0); d != 7*time.Microsecond {
		t.Errorf("delay = %v, want 7µs (rules accumulate)", d)
	}
	if d := p.OpDelay("nccl", "allreduce", 0, 0); d != 0 {
		t.Errorf("unscoped rank delayed %v", d)
	}
	// Delay rules must not leak into the error hook.
	if e := p.OpError("nccl", "allreduce", 1, 0); e != nil {
		t.Errorf("delay rule injected an error: %v", e)
	}
}

func TestCommInitRules(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "init", Point: CommInit, Backend: "hccl",
		Result: ccl.ErrInternal, Count: 1})

	if e := p.CommInitError("nccl", 0, 0); e != nil {
		t.Errorf("wrong backend failed init: %v", e)
	}
	if e := p.CommInitError("hccl", 0, 0); e == nil {
		t.Error("comm-init rule did not fire")
	}
	if e := p.CommInitError("hccl", 0, 0); e != nil {
		t.Errorf("count budget exceeded: %v", e)
	}
	// CommInit rules must not fire at op call sites.
	p2 := NewPlan(1)
	p2.AddRule(Rule{Point: CommInit, Result: ccl.ErrInternal})
	if e := p2.OpError("hccl", "allreduce", 0, 0); e != nil {
		t.Errorf("comm-init rule fired at an op call: %v", e)
	}
}

func TestLinkWindowsCompose(t *testing.T) {
	p := NewPlan(1)
	p.AddLinkRule(LinkRule{Name: "a", Link: "inter", BWScale: 0.5, ChannelCap: 8,
		Until: 100 * time.Microsecond})
	p.AddLinkRule(LinkRule{Name: "b", Link: "inter", Nodes: []int{3},
		BWScale: 0.5, AlphaScale: 2, ChannelCap: 4})

	// Both windows active for a node-3 route: scales multiply, tightest cap.
	lf, ok := p.DegradedLink("inter", 0, 3, 50*time.Microsecond)
	if !ok || lf.BWScale != 0.25 || lf.AlphaScale != 2 || lf.ChannelCap != 4 {
		t.Fatalf("composed fault = %+v (ok %v)", lf, ok)
	}
	// Node scope: a route not touching node 3 only sees rule a.
	lf, ok = p.DegradedLink("inter", 0, 1, 50*time.Microsecond)
	if !ok || lf.BWScale != 0.5 || lf.ChannelCap != 8 || lf.AlphaScale != 0 {
		t.Fatalf("node-scoped fault = %+v (ok %v)", lf, ok)
	}
	// Class scope.
	if _, ok := p.DegradedLink("intra", 0, 3, 0); ok {
		t.Error("inter rules degraded an intra route")
	}
	// Window expiry: after rule a ends only rule b remains.
	lf, ok = p.DegradedLink("inter", 3, 0, 200*time.Microsecond)
	if !ok || lf.BWScale != 0.5 || lf.AlphaScale != 2 {
		t.Fatalf("post-window fault = %+v (ok %v)", lf, ok)
	}
	// DegradedNow ignores class/node scope: the aggregate signal.
	if _, ok := p.DegradedNow(50 * time.Microsecond); !ok {
		t.Error("DegradedNow missed active windows")
	}
	p2 := NewPlan(1)
	if _, ok := p2.DegradedNow(0); ok {
		t.Error("empty plan reported degradation")
	}
}

// The plan must be safe under concurrent callers (go test -race exercises
// this): rule state and the PRNG share one mutex.
func TestConcurrentAccess(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "any", Result: ccl.ErrRemote, Probability: 0.5})
	p.AddLinkRule(LinkRule{Name: "lnk", BWScale: 0.5})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.OpError("nccl", "allreduce", rank, time.Duration(i))
				p.OpDelay("nccl", "allreduce", rank, time.Duration(i))
				p.CommInitError("nccl", rank, time.Duration(i))
				p.DegradedLink("intra", 0, 1, time.Duration(i))
				p.DegradedNow(time.Duration(i))
				p.Fired("any")
			}
		}(g)
	}
	wg.Wait()
}
