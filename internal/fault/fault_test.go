package fault

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mpixccl/internal/ccl"
)

func TestRuleScoping(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "scoped", Backend: "nccl", Op: "allreduce",
		Ranks: []int{2}, Result: ccl.ErrInternal})

	if e := p.OpError("rccl", "allreduce", 2, 0); e != nil {
		t.Errorf("wrong backend fired: %v", e)
	}
	if e := p.OpError("nccl", "bcast", 2, 0); e != nil {
		t.Errorf("wrong op fired: %v", e)
	}
	if e := p.OpError("nccl", "allreduce", 1, 0); e != nil {
		t.Errorf("wrong rank fired: %v", e)
	}
	e := p.OpError("nccl", "allreduce", 2, 0)
	if e == nil || e.Result != ccl.ErrInternal {
		t.Fatalf("scoped rule did not fire: %v", e)
	}
	if got := p.Fired("scoped"); got != 1 {
		t.Errorf("fired = %d, want 1", got)
	}
}

func TestAfterAndCountBudget(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "burst", Op: "send", Result: ccl.ErrRemote, After: 2, Count: 3})

	var fires []bool
	for i := 0; i < 8; i++ {
		fires = append(fires, p.OpError("nccl", "send", 0, 0) != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (After=2 skips two, Count=3 bounds)", i, fires[i], want[i])
		}
	}
}

func TestTimeWindow(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "window", Op: "recv", Result: ccl.ErrInternal,
		From: 10 * time.Microsecond, Until: 20 * time.Microsecond})

	if e := p.OpError("nccl", "recv", 0, 5*time.Microsecond); e != nil {
		t.Error("fired before the window")
	}
	if e := p.OpError("nccl", "recv", 0, 15*time.Microsecond); e == nil {
		t.Error("did not fire inside the window")
	}
	if e := p.OpError("nccl", "recv", 0, 25*time.Microsecond); e != nil {
		t.Error("fired after the window")
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		p := NewPlan(seed)
		p.AddRule(Rule{Name: "coin", Op: "allreduce", Result: ccl.ErrRemote, Probability: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.OpError("nccl", "allreduce", 0, 0) != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// 64 p=0.5 draws: both all-fire and no-fire mean a broken PRNG.
	if fires == 0 || fires == 64 {
		t.Errorf("p=0.5 rule fired %d/64 times", fires)
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fire patterns")
	}
}

func TestDelayRulesAccumulateSeparately(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "slow", Op: "allreduce", Ranks: []int{1}, Delay: 3 * time.Microsecond})
	p.AddRule(Rule{Name: "slower", Op: "allreduce", Ranks: []int{1}, Delay: 4 * time.Microsecond})

	if d := p.OpDelay("nccl", "allreduce", 1, 0); d != 7*time.Microsecond {
		t.Errorf("delay = %v, want 7µs (rules accumulate)", d)
	}
	if d := p.OpDelay("nccl", "allreduce", 0, 0); d != 0 {
		t.Errorf("unscoped rank delayed %v", d)
	}
	// Delay rules must not leak into the error hook.
	if e := p.OpError("nccl", "allreduce", 1, 0); e != nil {
		t.Errorf("delay rule injected an error: %v", e)
	}
}

func TestCommInitRules(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "init", Point: CommInit, Backend: "hccl",
		Result: ccl.ErrInternal, Count: 1})

	if e := p.CommInitError("nccl", 0, 0); e != nil {
		t.Errorf("wrong backend failed init: %v", e)
	}
	if e := p.CommInitError("hccl", 0, 0); e == nil {
		t.Error("comm-init rule did not fire")
	}
	if e := p.CommInitError("hccl", 0, 0); e != nil {
		t.Errorf("count budget exceeded: %v", e)
	}
	// CommInit rules must not fire at op call sites.
	p2 := NewPlan(1)
	p2.AddRule(Rule{Point: CommInit, Result: ccl.ErrInternal})
	if e := p2.OpError("hccl", "allreduce", 0, 0); e != nil {
		t.Errorf("comm-init rule fired at an op call: %v", e)
	}
}

func TestLinkWindowsCompose(t *testing.T) {
	p := NewPlan(1)
	p.AddLinkRule(LinkRule{Name: "a", Link: "inter", BWScale: 0.5, ChannelCap: 8,
		Until: 100 * time.Microsecond})
	p.AddLinkRule(LinkRule{Name: "b", Link: "inter", Nodes: []int{3},
		BWScale: 0.5, AlphaScale: 2, ChannelCap: 4})

	// Both windows active for a node-3 route: scales multiply, tightest cap.
	lf, ok := p.DegradedLink("inter", 0, 3, 50*time.Microsecond)
	if !ok || lf.BWScale != 0.25 || lf.AlphaScale != 2 || lf.ChannelCap != 4 {
		t.Fatalf("composed fault = %+v (ok %v)", lf, ok)
	}
	// Node scope: a route not touching node 3 only sees rule a.
	lf, ok = p.DegradedLink("inter", 0, 1, 50*time.Microsecond)
	if !ok || lf.BWScale != 0.5 || lf.ChannelCap != 8 || lf.AlphaScale != 0 {
		t.Fatalf("node-scoped fault = %+v (ok %v)", lf, ok)
	}
	// Class scope.
	if _, ok := p.DegradedLink("intra", 0, 3, 0); ok {
		t.Error("inter rules degraded an intra route")
	}
	// Window expiry: after rule a ends only rule b remains.
	lf, ok = p.DegradedLink("inter", 3, 0, 200*time.Microsecond)
	if !ok || lf.BWScale != 0.5 || lf.AlphaScale != 2 {
		t.Fatalf("post-window fault = %+v (ok %v)", lf, ok)
	}
	// DegradedNow ignores class/node scope: the aggregate signal.
	if _, ok := p.DegradedNow(50 * time.Microsecond); !ok {
		t.Error("DegradedNow missed active windows")
	}
	p2 := NewPlan(1)
	if _, ok := p2.DegradedNow(0); ok {
		t.Error("empty plan reported degradation")
	}
}

// The plan must be safe under concurrent callers (go test -race exercises
// this): rule state and the PRNG share one mutex.
func TestConcurrentAccess(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "any", Result: ccl.ErrRemote, Probability: 0.5})
	p.AddLinkRule(LinkRule{Name: "lnk", BWScale: 0.5})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.OpError("nccl", "allreduce", rank, time.Duration(i))
				p.OpDelay("nccl", "allreduce", rank, time.Duration(i))
				p.CommInitError("nccl", rank, time.Duration(i))
				p.DegradedLink("intra", 0, 1, time.Duration(i))
				p.DegradedNow(time.Duration(i))
				p.Fired("any")
			}
		}(g)
	}
	wg.Wait()
}

// A time-triggered crash rule kills its ranks from From onward for every
// query path, without consuming probes; call paths and other ranks are
// unaffected before the trigger.
func TestCrashRuleTimeTriggered(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "die", Crash: true, Ranks: []int{2}, From: 100 * time.Microsecond})

	if p.RankDead(2, 99*time.Microsecond) {
		t.Error("rank 2 dead before its crash time")
	}
	if p.OpCrash("nccl", "allreduce", 2, 50*time.Microsecond) {
		t.Error("probe before the crash time killed the rank")
	}
	if got := p.DeadRanks(99 * time.Microsecond); got != nil {
		t.Errorf("DeadRanks before trigger = %v; want none", got)
	}
	if !p.RankDead(2, 100*time.Microsecond) {
		t.Error("rank 2 alive at its crash time")
	}
	if !p.OpCrash("nccl", "allreduce", 2, 200*time.Microsecond) {
		t.Error("probe after the crash time reported the rank alive")
	}
	if p.RankDead(3, 200*time.Microsecond) {
		t.Error("unscoped rank reported dead")
	}
	if got := p.DeadRanks(200 * time.Microsecond); len(got) != 1 || got[0] != 2 {
		t.Errorf("DeadRanks = %v; want [2]", got)
	}
	if p.Fired("die") != 1 {
		t.Errorf("crash rule fired %d times; want 1", p.Fired("die"))
	}
	// A crash never surfaces as an injected call error.
	if e := p.OpError("nccl", "allreduce", 2, 200*time.Microsecond); e != nil {
		t.Errorf("crash rule injected a call error: %v", e)
	}
}

// A call-counted crash rule (After=N) kills the rank on its N+1-th matching
// probe; pure queries never advance the budget.
func TestCrashRuleCallCounted(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "die", Crash: true, Ranks: []int{1}, Op: "allreduce", After: 2})

	// Pure queries must not consume the budget.
	for i := 0; i < 10; i++ {
		if p.RankDead(1, 0) {
			t.Fatal("pure query killed the rank")
		}
	}
	if p.OpCrash("nccl", "allreduce", 1, 0) || p.OpCrash("nccl", "allreduce", 1, 0) {
		t.Fatal("rank died inside its After budget")
	}
	// Probes from other ranks or other ops must not count.
	if p.OpCrash("nccl", "allreduce", 0, 0) || p.OpCrash("nccl", "broadcast", 1, 0) {
		t.Fatal("out-of-scope probe killed the rank")
	}
	if !p.OpCrash("nccl", "allreduce", 1, 0) {
		t.Fatal("third matching probe did not kill the rank")
	}
	if !p.RankDead(1, 0) {
		t.Error("death not visible to the pure query")
	}
	if got := p.DeadRanks(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("DeadRanks = %v; want [1]", got)
	}
}

// Invalid rules must be rejected at construction with a descriptive error
// instead of silently never firing.
func TestRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string
	}{
		{"inverted window", Rule{Name: "w", Result: ccl.ErrRemote, From: 10, Until: 5}, "inverted time window"},
		{"negative after", Rule{Name: "a", Result: ccl.ErrRemote, After: -1}, "negative After budget"},
		{"negative count", Rule{Name: "c", Result: ccl.ErrRemote, Count: -2}, "negative Count budget"},
		{"bad probability", Rule{Name: "p", Result: ccl.ErrRemote, Probability: 1.5}, "outside [0, 1]"},
		{"negative delay", Rule{Name: "d", Delay: -time.Microsecond}, "negative Delay"},
		{"no effect", Rule{Name: "n"}, "neither an error nor a delay"},
		{"crash without ranks", Rule{Name: "x", Crash: true}, "must name its Ranks"},
		{"crash with result", Rule{Name: "x", Crash: true, Ranks: []int{1}, Result: ccl.ErrInternal}, "must not set Result or Delay"},
		{"crash with count", Rule{Name: "x", Crash: true, Ranks: []int{1}, Count: 1}, "must not set Count"},
	}
	for _, tc := range cases {
		err := CheckRule(tc.rule)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: CheckRule = %v; want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := CheckRule(Rule{Name: "ok", Result: ccl.ErrRemote, From: 5, Until: 10}); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}

	if err := CheckLinkRule(LinkRule{Name: "lw", BWScale: 0.5, From: 10, Until: 5}); err == nil ||
		!strings.Contains(err.Error(), "inverted time window") {
		t.Errorf("inverted link window: CheckLinkRule = %v", err)
	}
	if err := CheckLinkRule(LinkRule{Name: "ln"}); err == nil ||
		!strings.Contains(err.Error(), "degrades nothing") {
		t.Errorf("no-effect link rule: CheckLinkRule = %v", err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddRule accepted an invalid rule without panicking")
		}
		if !strings.Contains(fmt.Sprint(r), "inverted time window") {
			t.Errorf("AddRule panic = %v; want the CheckRule error", r)
		}
	}()
	NewPlan(1).AddRule(Rule{Name: "bad", Result: ccl.ErrRemote, From: 10, Until: 5})
}

// Two degradation windows that overlap only partially in time must compose
// during the overlap and act alone outside it.
func TestOverlappingDegradationWindows(t *testing.T) {
	p := NewPlan(1)
	p.AddLinkRule(LinkRule{Name: "early", Link: "intra",
		From: 0, Until: 100 * time.Microsecond, BWScale: 0.5})
	p.AddLinkRule(LinkRule{Name: "late", Link: "intra",
		From: 50 * time.Microsecond, Until: 150 * time.Microsecond, BWScale: 0.4, AlphaScale: 3})

	lf, ok := p.DegradedLink("intra", 0, 0, 25*time.Microsecond)
	if !ok || lf.BWScale != 0.5 || lf.AlphaScale != 0 {
		t.Fatalf("early-only window = %+v (ok %v)", lf, ok)
	}
	lf, ok = p.DegradedLink("intra", 0, 0, 75*time.Microsecond)
	if !ok || lf.BWScale != 0.5*0.4 || lf.AlphaScale != 3 {
		t.Fatalf("overlap = %+v (ok %v); want scales multiplied", lf, ok)
	}
	lf, ok = p.DegradedLink("intra", 0, 0, 125*time.Microsecond)
	if !ok || lf.BWScale != 0.4 || lf.AlphaScale != 3 {
		t.Fatalf("late-only window = %+v (ok %v)", lf, ok)
	}
	if _, ok = p.DegradedLink("intra", 0, 0, 150*time.Microsecond); ok {
		t.Error("window fired at its exclusive Until bound")
	}
}

// Probability 0 means "always" (deterministic) and probability 1 must also
// fire every time — the boundaries must not consult the coin in a way that
// can round them into sometimes-misses.
func TestProbabilityBoundaries(t *testing.T) {
	p := NewPlan(7)
	p.AddRule(Rule{Name: "always0", Op: "send", Result: ccl.ErrRemote, Probability: 0})
	p.AddRule(Rule{Name: "always1", Op: "recv", Result: ccl.ErrRemote, Probability: 1})
	for i := 0; i < 50; i++ {
		if p.OpError("nccl", "send", 0, 0) == nil {
			t.Fatalf("P=0 (always) rule missed call %d", i)
		}
		if p.OpError("nccl", "recv", 0, 0) == nil {
			t.Fatalf("P=1 rule missed call %d", i)
		}
	}
}

// A call-counted crash rule whose After budget is never reached must leave
// the rank alive on every query path and report zero fires.
func TestCrashRuleAfterBudgetNeverReached(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "die", Crash: true, Ranks: []int{1}, Op: "allreduce", After: 5})

	for i := 0; i < 5; i++ {
		if p.OpCrash("nccl", "allreduce", 1, 0) {
			t.Fatalf("rank died on probe %d, inside its After=5 budget", i)
		}
	}
	if p.RankDead(1, time.Hour) {
		t.Error("rank dead without its budget consumed")
	}
	if got := p.DeadRanks(time.Hour); got != nil {
		t.Errorf("DeadRanks = %v; want none", got)
	}
	if _, ok := p.DeathTime(1); ok {
		t.Error("DeathTime set for a rank that never died")
	}
	if p.Fired("die") != 0 {
		t.Errorf("unreached crash rule fired %d times", p.Fired("die"))
	}
}

// Corrupt rules honor class/node/window scope and their After/Count
// budgets, return in-range distinct offsets, and report through Fired.
func TestCorruptRuleScopingAndOffsets(t *testing.T) {
	p := NewPlan(3)
	p.AddCorruptRule(CorruptRule{Name: "flip", Link: "inter", Nodes: []int{2},
		After: 1, Count: 2, FlipBytes: 4})

	if offs := p.CorruptTransfer("intra", 2, 2, 64, 0); offs != nil {
		t.Errorf("wrong link class corrupted: %v", offs)
	}
	if offs := p.CorruptTransfer("inter", 0, 1, 64, 0); offs != nil {
		t.Errorf("wrong nodes corrupted: %v", offs)
	}
	if offs := p.CorruptTransfer("inter", 0, 2, 64, 0); offs != nil {
		t.Errorf("After budget not honored: %v", offs)
	}
	for call := 0; call < 2; call++ {
		offs := p.CorruptTransfer("inter", 2, 0, 64, 0)
		if len(offs) != 4 {
			t.Fatalf("call %d: %d offsets, want 4", call, len(offs))
		}
		seen := map[int64]bool{}
		for _, o := range offs {
			if o < 0 || o >= 64 {
				t.Fatalf("offset %d out of range [0, 64)", o)
			}
			if seen[o] {
				t.Fatalf("duplicate offset %d (duplicate XORs would cancel)", o)
			}
			seen[o] = true
		}
	}
	if offs := p.CorruptTransfer("inter", 2, 0, 64, 0); offs != nil {
		t.Errorf("Count budget exceeded: %v", offs)
	}
	if p.Fired("flip") != 2 {
		t.Errorf("Fired = %d, want 2", p.Fired("flip"))
	}
	// More flips than bytes: every offset of a tiny transfer, no dupes.
	p2 := NewPlan(3)
	p2.AddCorruptRule(CorruptRule{Name: "all", FlipBytes: 10})
	if offs := p2.CorruptTransfer("intra", 0, 0, 3, 0); len(offs) != 3 {
		t.Errorf("3-byte transfer got %d offsets, want all 3", len(offs))
	}
	if offs := p2.CorruptTransfer("intra", 0, 0, 0, 0); offs != nil {
		t.Errorf("zero-byte transfer corrupted: %v", offs)
	}
}

func TestCorruptRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule CorruptRule
		want string
	}{
		{"inverted window", CorruptRule{Name: "w", From: 10, Until: 5}, "inverted time window"},
		{"negative after", CorruptRule{Name: "a", After: -1}, "negative After budget"},
		{"negative count", CorruptRule{Name: "c", Count: -1}, "negative Count budget"},
		{"bad probability", CorruptRule{Name: "p", Probability: -0.5}, "outside [0, 1]"},
		{"negative flips", CorruptRule{Name: "f", FlipBytes: -1}, "negative FlipBytes"},
	}
	for _, tc := range cases {
		err := CheckCorruptRule(tc.rule)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: CheckCorruptRule = %v; want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := CheckCorruptRule(CorruptRule{Name: "ok", Probability: 0.5}); err != nil {
		t.Errorf("valid corrupt rule rejected: %v", err)
	}
}

// DeathTime reports the moment a probe-counted crash fired, for bounding
// detection latency against the actual death.
func TestDeathTime(t *testing.T) {
	p := NewPlan(1)
	p.AddRule(Rule{Name: "die", Crash: true, Ranks: []int{0}, After: 1})
	if p.OpCrash("nccl", "allreduce", 0, 5*time.Microsecond) {
		t.Fatal("died inside budget")
	}
	if !p.OpCrash("nccl", "allreduce", 0, 9*time.Microsecond) {
		t.Fatal("second probe did not kill")
	}
	at, ok := p.DeathTime(0)
	if !ok || at != 9*time.Microsecond {
		t.Errorf("DeathTime = %v, %v; want 9µs, true", at, ok)
	}
}
