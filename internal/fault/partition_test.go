package fault

import (
	"strings"
	"testing"
	"time"
)

const us = time.Microsecond

// Construction-time validation: partition rules that could never cut, cut
// nothing, or contradict themselves are rejected with descriptive errors.
func TestCheckPartitionRule(t *testing.T) {
	cases := []struct {
		name    string
		rule    PartitionRule
		wantErr string // substring; "" means valid
	}{
		{"valid node cut", PartitionRule{Name: "a", Nodes: []int{1}}, ""},
		{"valid rank cut", PartitionRule{Name: "b", Ranks: []int{0, 3}}, ""},
		{"valid windowed", PartitionRule{Name: "c", Nodes: []int{0}, From: 10 * us, Until: 20 * us}, ""},
		{"probability zero is deterministic", PartitionRule{Name: "d", Nodes: []int{1}, Probability: 0}, ""},
		{"probability one always fires", PartitionRule{Name: "e", Nodes: []int{1}, Probability: 1}, ""},
		{"neither nodes nor ranks", PartitionRule{Name: "f"}, "neither Nodes nor Ranks"},
		{"both nodes and ranks", PartitionRule{Name: "g", Nodes: []int{1}, Ranks: []int{2}}, "both Nodes and Ranks"},
		{"heal equals cut", PartitionRule{Name: "h", Nodes: []int{1}, From: 10 * us, Until: 10 * us}, "would never fire"},
		{"heal before cut", PartitionRule{Name: "i", Nodes: []int{1}, From: 10 * us, Until: 5 * us}, "would never fire"},
		{"probability below zero", PartitionRule{Name: "j", Nodes: []int{1}, Probability: -0.1}, "outside [0, 1]"},
		{"probability above one", PartitionRule{Name: "k", Nodes: []int{1}, Probability: 1.5}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckPartitionRule(tc.rule)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckPartitionRule(%+v) = %v, want nil", tc.rule, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckPartitionRule(%+v) = %v, want error containing %q", tc.rule, err, tc.wantErr)
			}
		})
	}
}

// The probability coin is drawn exactly once, at AddPartitionRule time:
// the verdict is fixed before any query, identical for every (pair, time)
// probe order, and reproducible from the seed alone. This is the property
// that keeps partition verdicts consistent across engine shards.
func TestPartitionProbabilityDrawnOnceAtAdd(t *testing.T) {
	rule := PartitionRule{Name: "maybe", Nodes: []int{1}, Probability: 0.5}
	armed := 0
	for seed := uint64(1); seed <= 64; seed++ {
		a := NewPlan(seed).AddPartitionRule(rule)
		b := NewPlan(seed).AddPartitionRule(rule)
		// Same seed, same verdict — regardless of query count or order.
		for i := 0; i < 3; i++ {
			if a.Severed(0, 1, 0) != b.Severed(0, 1, 0) {
				t.Fatalf("seed %d: verdict diverged between identical plans", seed)
			}
		}
		if a.Severed(0, 1, 0) != a.Severed(1, 0, time.Second) {
			t.Fatalf("seed %d: verdict changed with query time or direction", seed)
		}
		if a.Severed(0, 1, 0) {
			armed++
		}
	}
	if armed == 0 || armed == 64 {
		t.Errorf("P=0.5 armed %d/64 rules: the coin is not being consulted", armed)
	}
	// The edge probabilities are deterministic, never coin-consulting:
	// 0 follows the plan convention (always fires), 1 always fires.
	for _, p := range []float64{0, 1} {
		plan := NewPlan(7).AddPartitionRule(PartitionRule{Name: "edge", Nodes: []int{1}, Probability: p})
		if !plan.Severed(0, 1, 0) {
			t.Errorf("Probability %v rule did not fire", p)
		}
	}
}

// Node cuts and rank cuts follow their own boundaries, respect the time
// window, and report heal times through PartitionedUntil.
func TestPartitionWindowAndScope(t *testing.T) {
	p := NewPlan(1).
		AddPartitionRule(PartitionRule{Name: "nodes", Nodes: []int{1}, From: 10 * us, Until: 20 * us}).
		AddPartitionRule(PartitionRule{Name: "ranks", Ranks: []int{5}, From: 30 * us})

	// Node scope: only routes crossing the {1} | rest boundary sever, and
	// only inside [From, Until).
	for _, tc := range []struct {
		src, dst int
		at       time.Duration
		want     bool
	}{
		{0, 1, 9 * us, false},  // before the cut
		{0, 1, 10 * us, true},  // cut opens (inclusive)
		{1, 0, 15 * us, true},  // symmetric
		{0, 2, 15 * us, false}, // same side, not cut
		{0, 1, 20 * us, false}, // healed (exclusive)
	} {
		if got := p.Severed(tc.src, tc.dst, tc.at); got != tc.want {
			t.Errorf("Severed(%d, %d, %v) = %v, want %v", tc.src, tc.dst, tc.at, got, tc.want)
		}
	}
	// Rank scope is invisible to the node query and vice versa.
	if p.Severed(5, 0, 40*us) {
		t.Error("rank-scoped rule leaked into the node-scoped Severed query")
	}
	if p.RanksSevered(0, 1, 15*us) {
		t.Error("node-scoped rule leaked into RanksSevered")
	}
	if !p.RanksSevered(5, 2, 30*us) || p.RanksSevered(5, 2, 29*us) {
		t.Error("rank-scoped window wrong")
	}

	// PartitionedUntil: inside the windowed cut it reports the heal time;
	// inside the permanent cut it reports heals=false; outside any cut it
	// reports heals=true immediately.
	if until, heals := p.PartitionedUntil(15 * us); !heals || until != 20*us {
		t.Errorf("PartitionedUntil(15us) = %v, %v; want 20us, true", until, heals)
	}
	if _, heals := p.PartitionedUntil(35 * us); heals {
		t.Error("PartitionedUntil inside a permanent cut reported a heal")
	}
	if until, heals := p.PartitionedUntil(25 * us); !heals || until != 0 {
		t.Errorf("PartitionedUntil(25us) = %v, %v; want 0, true (no active cut)", until, heals)
	}
	if !p.PartitionedNow(12*us) || p.PartitionedNow(25*us) {
		t.Error("PartitionedNow window wrong")
	}
	if !p.HasPartitions() {
		t.Error("HasPartitions = false with two armed rules")
	}
}

// A partition and a crash on the same rank compose: the rank is dead on
// both sides of the cut, and each fault answers its own oracle without
// masking the other. Fired() credits the partition once it is observed.
func TestPartitionAndCrashCompose(t *testing.T) {
	p := NewPlan(1).
		AddRule(Rule{Name: "crash1", Crash: true, Ranks: []int{1}, Op: "allreduce", After: 1}).
		AddPartitionRule(PartitionRule{Name: "cut1", Ranks: []int{1}, From: 10 * us})

	// Trip the crash: second matching call fires it.
	if p.OpCrash("nccl", "allreduce", 1, 5*us) {
		t.Fatal("crash fired before its After budget")
	}
	if !p.OpCrash("nccl", "allreduce", 1, 6*us) {
		t.Fatal("crash did not fire")
	}
	if !p.RankDead(1, 7*us) {
		t.Fatal("rank 1 not dead after its crash")
	}
	// The cut opens while the rank is already dead: both oracles hold.
	if !p.RanksSevered(1, 0, 12*us) {
		t.Error("partition did not sever the dead rank (faults must compose)")
	}
	if !p.RankDead(1, 12*us) {
		t.Error("crash verdict lost once the partition opened")
	}
	if p.Fired("cut1") != 1 {
		t.Errorf("Fired(cut1) = %d, want 1", p.Fired("cut1"))
	}
	if p.Fired("crash1") != 1 {
		t.Errorf("Fired(crash1) = %d, want 1", p.Fired("crash1"))
	}
}
