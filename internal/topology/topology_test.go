package topology

import (
	"math"
	"testing"
	"time"

	"mpixccl/internal/device"
	"mpixccl/internal/sim"
)

func TestBuildShape(t *testing.T) {
	k := sim.NewKernel()
	s := ThetaGPU(k, 4)
	if s.NumNodes() != 4 || s.DevicesPerNode() != 8 || s.NumDevices() != 32 {
		t.Fatalf("shape = %d nodes × %d = %d", s.NumNodes(), s.DevicesPerNode(), s.NumDevices())
	}
	for i, d := range s.Devices() {
		if d.ID != i {
			t.Fatalf("device %d has ID %d", i, d.ID)
		}
		if d.Node != i/8 || d.Local != i%8 {
			t.Fatalf("device %d placed at node %d local %d", i, d.Node, d.Local)
		}
	}
	for _, n := range s.Nodes {
		if n.Host == nil || n.Host.Kind != device.Host {
			t.Fatal("node missing host device")
		}
	}
}

func TestBuildInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0-node system")
		}
	}()
	Build(sim.NewKernel(), Config{NumNodes: 0, DevicesPerNode: 8})
}

func TestSameNodeAndLinkBetween(t *testing.T) {
	k := sim.NewKernel()
	s := ThetaGPU(k, 2)
	a, b, c := s.Device(0), s.Device(7), s.Device(8)
	if !s.SameNode(a, b) || s.SameNode(a, c) {
		t.Fatal("SameNode wrong")
	}
	if s.LinkBetween(a, b).Name != "NVLink3" {
		t.Fatalf("intra link = %s", s.LinkBetween(a, b).Name)
	}
	if s.LinkBetween(a, c).Name != "IB-HDR" {
		t.Fatalf("inter link = %s", s.LinkBetween(a, c).Name)
	}
}

func TestLinkTime(t *testing.T) {
	l := Link{Alpha: 2 * time.Microsecond, ChannelBW: 1e9, DirChannels: 4, TotalChannels: 4}
	if got := l.Time(0, 4); got != 2*time.Microsecond {
		t.Fatalf("zero-byte time = %v", got)
	}
	// 4e9 bytes at 4×1e9 B/s = 1s + alpha.
	if got := l.Time(4e9, 4); got != time.Second+2*time.Microsecond {
		t.Fatalf("time = %v", got)
	}
	// Channel counts clamp to [1, DirChannels].
	if l.Time(1e9, 99) != l.Time(1e9, 4) {
		t.Fatal("over-request not clamped")
	}
	if l.Time(1e9, 0) != l.Time(1e9, 1) {
		t.Fatal("zero channels not clamped to 1")
	}
}

// The NVLink preset must reproduce the paper's NCCL 4 MB intra-node numbers:
// ~137 GB/s peak and wire time ≈ 31 µs for 4 MiB.
func TestNVLinkCalibration(t *testing.T) {
	peak := NVLink3.PeakBW()
	if math.Abs(peak-137e9)/137e9 > 0.02 {
		t.Fatalf("NVLink peak = %.1f GB/s, want ≈137", peak/1e9)
	}
	wire := NVLink3.Time(4<<20, 12)
	if wire < 28*time.Microsecond || wire > 36*time.Microsecond {
		t.Fatalf("NVLink 4MiB wire time = %v, want ≈31µs", wire)
	}
}

// The RoCE preset must reproduce HCCL's ~3 GB/s intra-node bandwidth, which
// with HCCL's 270 µs launch overhead yields the paper's 1651 µs at 4 MB.
func TestRoCECalibration(t *testing.T) {
	peak := RoCEGaudi.PeakBW()
	if math.Abs(peak-3.06e9)/3.06e9 > 0.05 {
		t.Fatalf("RoCE peak = %.2f GB/s, want ≈3.05", peak/1e9)
	}
	wire := RoCEGaudi.Time(4<<20, 3)
	if wire < 1300*time.Microsecond || wire > 1450*time.Microsecond {
		t.Fatalf("RoCE 4MiB wire time = %v, want ≈1375µs", wire)
	}
}

func TestPCIeCalibration(t *testing.T) {
	peak := PCIe4MRI.PeakBW()
	if math.Abs(peak-6.36e9)/6.36e9 > 0.02 {
		t.Fatalf("PCIe peak = %.2f GB/s, want ≈6.36", peak/1e9)
	}
}

func TestPresets(t *testing.T) {
	k := sim.NewKernel()
	cases := []struct {
		name    string
		perNode int
		kind    device.Kind
	}{
		{"thetagpu", 8, device.NvidiaGPU},
		{"mri", 2, device.AMDGPU},
		{"voyager", 8, device.HabanaHPU},
	}
	for _, c := range cases {
		s, err := Preset(k, c.name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if s.DevicesPerNode() != c.perNode {
			t.Errorf("%s: %d devices/node, want %d", c.name, s.DevicesPerNode(), c.perNode)
		}
		if s.Device(0).Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", c.name, s.Device(0).Kind, c.kind)
		}
	}
	if _, err := Preset(k, "summit", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	want := []struct {
		sys, acc string
		n        int
	}{
		{"ThetaGPU", "A100-SXM4-40GB", 8},
		{"MRI", "MI100-32GB", 2},
		{"Voyager", "Gaudi-32GB", 8},
	}
	for i, w := range want {
		if rows[i].System != w.sys || rows[i].Accelerator != w.acc || rows[i].PerNode != w.n {
			t.Errorf("row %d = %+v", i, rows[i])
		}
	}
	if rows[0].DeviceMem != "40GB" {
		t.Errorf("A100 mem = %s", rows[0].DeviceMem)
	}
}
